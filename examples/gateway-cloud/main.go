// Gateway-cloud: the full GalioT pipeline in one process. A simulated
// antenna feeds duty-cycled traffic of all three technologies into the
// gateway, which detects packets with the universal preamble and ships
// segments over an in-process TCP connection to the cloud decoder; decoded
// frames stream back to the gateway.
//
//	go run ./examples/gateway-cloud
package main

import (
	"fmt"
	"log"
	"net"

	"repro/galiot"
	"repro/internal/rng"
	"repro/internal/sim"
)

func main() {
	techs := galiot.Technologies()

	// Cloud side: TCP server on a loopback port.
	svc := galiot.NewCloud(techs...)
	srv := &galiot.CloudServer{Service: svc}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("cloud listening on %s\n", srv.Addr())

	// Gateway side.
	gw, err := galiot.NewGateway(galiot.GatewayConfig{
		ID:         "example-gw",
		Techs:      techs,
		Frontend:   galiot.IdealFrontend(),
		EdgeDecode: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	// Simulated antenna: half a second of duty-cycled traffic with
	// collisions.
	gen := rng.New(2026)
	captures := make(chan []complex128, 2)
	onAir := 0
	go func() {
		defer close(captures)
		for i := 0; i < 2; i++ {
			scen, err := sim.GenTraffic(sim.TrafficConfig{
				Techs:      techs,
				SampleRate: galiot.SampleRate,
				Duration:   1 << 18,
				MeanGap:    0.04,
				SNRMin:     8,
				SNRMax:     16,
			}, gen.Split(uint64(i)))
			if err != nil {
				log.Fatal(err)
			}
			onAir += len(scen.Packets)
			captures <- scen.Capture
		}
	}()

	decoded := 0
	if err := gw.Run(conn, captures, func(r galiot.FramesReport) {
		for _, f := range r.Frames {
			decoded++
			fmt.Printf("cloud -> %-5s @%-8d crc=%v payload=%x\n", f.Tech, f.Offset, f.CRCOK, f.Payload)
		}
	}); err != nil {
		log.Fatal(err)
	}

	st := gw.Stats()
	fmt.Printf("\n%d packets on air | %d detections | %d segments shipped | %d edge frames | %d cloud frames\n",
		onAir, st.Detections, st.SegmentsShipped, st.EdgeFrames, decoded)
	fmt.Printf("backhaul: %d wire bytes vs %d raw (%.1f%% of streaming everything)\n",
		st.WireBytes, st.RawBytes, 100*float64(st.WireBytes)/float64(st.RawBytes))
	if decoded+st.EdgeFrames == 0 {
		log.Fatal("pipeline decoded nothing")
	}
}
