// Gateway-cloud: the full GalioT pipeline in one process. A simulated
// antenna feeds duty-cycled traffic of all three technologies into the
// gateway, which detects packets with the universal preamble and ships
// segments over an in-process TCP connection to the cloud decoder; decoded
// frames stream back to the gateway.
//
// Gateway and cloud share one metrics registry and one tracer, so a single
// snapshot covers the whole pipeline and /trace/recent shows each segment's
// detect → ship → decode journey end to end.
//
//	go run ./examples/gateway-cloud
//	go run ./examples/gateway-cloud -obs-addr 127.0.0.1:8077
//
// With -obs-addr the process keeps serving the introspection endpoints
// after the pipeline finishes until interrupted, so the metrics can be
// curled.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/galiot"
	"repro/internal/rng"
	"repro/internal/sim"
)

func main() {
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /trace/recent and pprof on this address (empty = off)")
	flag.Parse()

	techs := galiot.Technologies()

	// One registry + tracer for both halves of the pipeline; the trace
	// store stitches the gateway-side and cloud-side spans of each segment
	// into one tree behind /trace/tree and /trace/slowest.
	reg := galiot.NewObsRegistry()
	tracer := galiot.NewObsTracer(0)
	tracer.SetClock(func() int64 { return time.Now().UnixNano() })
	tracer.SetSite("example")
	traces := galiot.NewObsTraceStore(galiot.ObsTraceStoreConfig{Obs: reg})
	tracer.SetSink(traces.Ingest)
	if *obsAddr != "" {
		obsSrv := &galiot.ObsServer{Registry: reg, Tracer: tracer, Traces: traces}
		if err := obsSrv.Start(*obsAddr); err != nil {
			log.Fatal(err)
		}
		defer obsSrv.Close()
		fmt.Printf("observability endpoints on http://%s/metrics\n", obsSrv.Addr())
	}

	// Cloud side: TCP server on a loopback port, decoding through the farm
	// so the queue-wait histogram fills in.
	svc := galiot.NewCloud(techs...)
	svc.UseObs(reg, tracer)
	svc.StartFarm(galiot.FarmConfig{Workers: 2})
	defer svc.Close()
	srv := &galiot.CloudServer{Service: svc}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("cloud listening on %s\n", srv.Addr())

	// Gateway side.
	gw, err := galiot.NewGateway(galiot.GatewayConfig{
		ID:         "example-gw",
		Techs:      techs,
		Frontend:   galiot.IdealFrontend(),
		EdgeDecode: true,
		Obs:        reg,
		Tracer:     tracer,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Simulated antenna: half a second of duty-cycled traffic with
	// collisions.
	gen := rng.New(2026)
	captures := make(chan []complex128, 2)
	onAir := 0
	go func() {
		defer close(captures)
		for i := 0; i < 2; i++ {
			scen, err := sim.GenTraffic(sim.TrafficConfig{
				Techs:      techs,
				SampleRate: galiot.SampleRate,
				Duration:   1 << 18,
				MeanGap:    0.04,
				SNRMin:     8,
				SNRMax:     16,
			}, gen.Split(uint64(i)))
			if err != nil {
				log.Fatal(err)
			}
			onAir += len(scen.Packets)
			captures <- scen.Capture
		}
	}()

	// The resilient client dials the cloud itself and redials (replaying
	// the unacked window) if the backhaul drops; the reports callback runs
	// concurrently with the pipeline, so guard the counter.
	var mu sync.Mutex
	decoded := 0
	if err := gw.RunResilient(galiot.GatewayResilient{
		Dial: func() (io.ReadWriteCloser, error) {
			return net.Dial("tcp", srv.Addr().String())
		},
		Epoch: uint64(time.Now().UnixNano()),
	}, captures, func(r galiot.FramesReport) {
		mu.Lock()
		defer mu.Unlock()
		for _, f := range r.Frames {
			decoded++
			fmt.Printf("cloud -> %-5s @%-8d crc=%v payload=%x\n", f.Tech, f.Offset, f.CRCOK, f.Payload)
		}
	}); err != nil {
		log.Fatal(err)
	}

	st := gw.Stats()
	mu.Lock()
	got := decoded
	mu.Unlock()
	fmt.Printf("\n%d packets on air | %d detections | %d segments shipped | %d edge frames | %d cloud frames\n",
		onAir, st.Detections, st.SegmentsShipped, st.EdgeFrames, got)
	fmt.Printf("backhaul: %d wire bytes vs %d raw (%.1f%% of streaming everything)\n",
		st.WireBytes, st.RawBytes, 100*float64(st.WireBytes)/float64(st.RawBytes))
	if got+st.EdgeFrames == 0 {
		log.Fatal("pipeline decoded nothing")
	}

	if data, err := json.Marshal(reg.Snapshot()); err == nil {
		fmt.Printf("metrics: %s\n", data)
	}

	if *obsAddr != "" {
		fmt.Println("pipeline done; serving observability endpoints until interrupted")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
}
