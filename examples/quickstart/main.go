// Quickstart: modulate a LoRa frame, pass it through an AWGN channel and
// the RTL-SDR front-end model, and decode it back — the smallest possible
// GalioT round trip.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/galiot"
	"repro/internal/channel"
	"repro/internal/rng"
)

func main() {
	techs := galiot.Technologies()
	lora := techs[0]

	payload := []byte("hello, GalioT!")
	sig, err := lora.Modulate(payload, galiot.SampleRate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modulated %d payload bytes into %d I/Q samples (%.1f ms airtime)\n",
		len(payload), len(sig), 1000*float64(len(sig))/galiot.SampleRate)

	// Put the burst on the air at 0 dB SNR — at or below the noise floor,
	// where LoRa's chirp processing gain still decodes cleanly.
	gen := rng.New(42)
	antenna := channel.Mix(len(sig)+20000, []channel.Emission{
		{Samples: sig, Offset: 8000, SNRdB: 0},
	}, gen, galiot.SampleRate)

	// Receive through the impaired RTL-SDR model (8-bit ADC, DC offset, IQ
	// imbalance, 500 Hz tuner error).
	rx := galiot.DefaultFrontend().Capture(antenna)

	frame, err := lora.Demodulate(rx, galiot.SampleRate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoded tech=%s crc=%v offset=%d payload=%q\n",
		frame.Tech, frame.CRCOK, frame.Offset, frame.Payload)
	if !frame.CRCOK || string(frame.Payload) != string(payload) {
		log.Fatal("round trip failed")
	}
	fmt.Println("round trip OK at 0 dB SNR through the 8-bit front-end")
}
