// Collision: the paper's headline scenario. LoRa, XBee and Z-Wave frames
// collide in time inside one 1 MHz capture; the strict SIC baseline stalls
// while GalioT's kill-filter decoder (Algorithm 1) separates all three.
//
//	go run ./examples/collision
package main

import (
	"fmt"
	"log"

	"repro/galiot"
	"repro/internal/channel"
	"repro/internal/rng"
)

func main() {
	techs := galiot.Technologies()
	payloads := map[string][]byte{
		"lora":  []byte("soil moisture 41%"),
		"xbee":  []byte("door sensor: open"),
		"zwave": []byte("dimmer to 70"),
	}

	// Render the three frames and overlap them in time at comparable
	// received powers — the regime where plain SIC cannot pick a winner.
	gen := rng.New(7)
	var emissions []channel.Emission
	longest := 0
	for i, tech := range techs {
		sig, err := tech.Modulate(payloads[tech.Name()], galiot.SampleRate)
		if err != nil {
			log.Fatal(err)
		}
		emissions = append(emissions, channel.Emission{
			Samples: sig,
			Offset:  6000 + i*3000,   // staggered starts, fully overlapping
			SNRdB:   11 + float64(i), // comparable powers within 2 dB
		})
		if len(sig) > longest {
			longest = len(sig)
		}
	}
	capture := channel.Mix(longest+30000, emissions, gen, galiot.SampleRate)
	fmt.Printf("capture: %d samples with a 3-way cross-technology collision\n\n", len(capture))

	run := func(name string, dec *galiot.CollisionDecoder) int {
		frames, stats := dec.Decode(capture)
		fmt.Printf("%s recovered %d frame(s):\n", name, len(frames))
		for _, f := range frames {
			fmt.Printf("  %-5s crc=%v payload=%q\n", f.Tech, f.CRCOK, f.Payload)
		}
		fmt.Printf("  decoder stats: %+v\n\n", stats)
		return len(frames)
	}

	nSIC := run("strict SIC baseline", galiot.NewSICBaseline(techs))
	nCloud := run("GalioT (SIC + kill filters)", galiot.NewCollisionDecoder(techs))

	fmt.Printf("SIC: %d/3, GalioT: %d/3\n", nSIC, nCloud)
	if nCloud < 3 {
		log.Fatal("expected GalioT to recover all three frames")
	}
}
