// Sensing: the paper's Sec. 6 "multi-technology wireless sensing" future
// direction as a working toy. The cloud aggregates I/Q from many
// heterogeneous low-power transmitters; the per-frame channel gains GalioT
// already estimates for interference cancellation double as a sensing
// signal — a person crossing the room perturbs the channel magnitude of
// every device, and collectively the wimpy devices reveal the event even
// though each transmits only occasionally.
//
//	go run ./examples/sensing
package main

import (
	"fmt"
	"log"
	"math"

	"repro/galiot"
	"repro/internal/channel"
	"repro/internal/rng"
	"repro/internal/sensing"
)

func main() {
	techs := galiot.Technologies()
	dec := galiot.NewCollisionDecoder(techs)
	tracker := sensing.NewTracker(2) // flag deviations beyond 2 dB
	gen := rng.New(99)

	// Simulate 30 sequential transmissions from a mix of devices. Between
	// transmissions 12 and 22 an "occupancy event" attenuates every link
	// by 4 dB (a body blocking the strongest path).
	const n = 30
	fmt.Println("frame  tech   flagged  deviation")
	for i := 0; i < n; i++ {
		tech := techs[i%len(techs)]
		payload := []byte{byte(i), 0xCA, 0xFE}
		sig, err := tech.Modulate(payload, galiot.SampleRate)
		if err != nil {
			log.Fatal(err)
		}
		amp := 1.0
		if i >= 12 && i < 22 {
			amp = math.Pow(10, -4.0/20)
		}
		amp *= 1 + 0.03*gen.NormFloat64() // mild fading
		rx := channel.Mix(len(sig)+20000, []channel.Emission{{
			Samples: sig, Offset: 5000,
			SNRdB: 18 + 20*math.Log10(amp),
			Phase: 2 * math.Pi * gen.Float64(),
		}}, gen.Split(uint64(i)), galiot.SampleRate)

		frames, _ := dec.Decode(rx)
		if len(frames) == 0 {
			fmt.Printf("%5d  %-5s  (not decoded)\n", i, tech.Name())
			continue
		}
		flagged, dev := tracker.Observe(sensing.Observation{
			Tech: tech.Name(),
			Time: float64(i),
			Gain: frames[0].Gain,
		})
		mark := ""
		if flagged {
			mark = "  <-- occupancy"
		}
		fmt.Printf("%5d  %-5s  %-7v  %+6.2f dB%s\n", i, tech.Name(), flagged, dev, mark)
	}

	events := tracker.Events()
	fmt.Printf("\n%d event(s) detected across %d technologies\n", len(events), tracker.Coverage())
	for _, ev := range events {
		fmt.Printf("  event frames %.0f..%.0f (%d observations, mean drop %.1f dB)\n",
			ev.Start, ev.End, ev.Count, ev.MeanDropDB)
	}
	if len(events) == 0 || tracker.Coverage() < 2 {
		log.Fatal("sensing toy failed to see the event collectively")
	}
}
