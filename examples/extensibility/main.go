// Extensibility: the paper's core pitch — a software radio gateway gains a
// new technology "through a simple software update", not a new radio chip.
// This example starts a gateway+cloud on the three prototype technologies,
// then "updates" both with two more (SigFox-class D-BPSK and WiFi
// HaLow-class OFDM) by rebuilding the universal preamble and the decoder
// over the larger set — no other change — and decodes a five-technology
// airspace, including a LoRa×HaLow collision.
//
//	go run ./examples/extensibility
package main

import (
	"fmt"
	"log"

	"repro/galiot"
	"repro/internal/channel"
	"repro/internal/detect"
	"repro/internal/rng"
)

func main() {
	before := galiot.Technologies()   // lora, xbee, zwave
	after := galiot.TechnologiesAll() // + oqpsk, dbpsk, halow

	// The "software update": the universal preamble is rebuilt from the new
	// technology list. Its length is still that of the longest preamble —
	// detection cost does not grow with the technology count.
	uniBefore, err := detect.BuildUniversal(before, galiot.SampleRate)
	if err != nil {
		log.Fatal(err)
	}
	uniAfter, err := detect.BuildUniversal(after, galiot.SampleRate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("universal preamble: %d techs -> template %d samples (%d groups)\n",
		len(before), len(uniBefore.Template), len(uniBefore.Groups))
	fmt.Printf("after update:       %d techs -> template %d samples (%d groups)\n\n",
		len(after), len(uniAfter.Template), len(uniAfter.Groups))

	// Put all five 1 MHz-capable technologies on the air, with a full
	// time+frequency overlap between LoRa and HaLow OFDM.
	gen := rng.New(11)
	payloads := map[string][]byte{
		"lora":  []byte("lora frame"),
		"xbee":  []byte("xbee frame"),
		"zwave": []byte("zwave frame"),
		"oqpsk": []byte("oqpsk frame"),
		"dbpsk": []byte{0xD0, 0x0D},
		"halow": []byte("halow frame"),
	}
	var emissions []channel.Emission
	longest := 0
	for i, tech := range after {
		sig, err := tech.Modulate(payloads[tech.Name()], galiot.SampleRate)
		if err != nil {
			log.Fatal(err)
		}
		emissions = append(emissions, channel.Emission{
			Samples: sig,
			Offset:  5000 + i*2500,
			SNRdB:   14,
		})
		if end := 5000 + i*2500 + len(sig); end > longest {
			longest = end
		}
	}
	capture := channel.Mix(longest+20000, emissions, gen, galiot.SampleRate)

	// Decode with the updated technology set.
	dec := galiot.NewCollisionDecoder(after)
	frames, stats := dec.Decode(capture)
	fmt.Printf("decoded %d of %d technologies from one capture:\n", len(frames), len(after))
	got := map[string]bool{}
	for _, f := range frames {
		fmt.Printf("  %-6s crc=%v payload=%q\n", f.Tech, f.CRCOK, f.Payload)
		got[f.Tech] = true
	}
	fmt.Printf("decoder stats: %+v\n", stats)

	missing := 0
	for _, tech := range after {
		if !got[tech.Name()] {
			fmt.Printf("  (missing: %s)\n", tech.Name())
			missing++
		}
	}
	if missing > 1 {
		log.Fatalf("software update failed: %d technologies undecoded", missing)
	}
	fmt.Println("\nsoftware update complete: new technologies decoded with zero new hardware")
}
