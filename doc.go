// Package repro is the root of the GalioT reproduction — see README.md for
// the project overview, DESIGN.md for the system inventory and
// paper-to-module mapping, and EXPERIMENTS.md for the paper-vs-measured
// record of every table and figure.
//
// The public API lives in package repro/galiot; the benchmark harness that
// regenerates the paper's evaluation artifacts is bench_test.go in this
// directory (go test -bench=. -benchmem).
package repro
