package gateway

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/backhaul"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/resilience/wal"
)

// DefaultSpoolCapacity bounds the in-memory segment spool when
// Resilient.SpoolCapacity is zero.
const DefaultSpoolCapacity = 64

// DefaultWALBacklogMax is the replay-backlog readiness threshold when
// Resilient.WALBacklogMax is zero: a gateway sitting on more unacked WAL
// records than this would dump an oversized replay burst on restart, so
// /readyz reports it out of headroom.
const DefaultWALBacklogMax = 4096

// Resilient configures RunResilient, the reconnecting flavor of Run.
type Resilient struct {
	// Dial opens one backhaul connection attempt. RunResilient owns the
	// returned stream and closes it when the session ends.
	Dial func() (io.ReadWriteCloser, error)
	// Retry paces reconnect attempts (see resilience.RetryPolicy; the zero
	// value applies the package defaults). The budget is consecutive: a
	// successfully established session restores it in full.
	Retry resilience.RetryPolicy
	// SpoolCapacity bounds the segment spool between the detection pipeline
	// and the backhaul sender (default DefaultSpoolCapacity). When the
	// spool saturates during an outage the oldest segment is dropped to the
	// degraded edge-only decode path.
	SpoolCapacity int
	// ReadTimeout bounds silence on the wire: if the cloud sends nothing
	// for this long the session is declared dead and redialed. Zero
	// disables the watchdog.
	ReadTimeout time.Duration
	// WriteTimeout bounds each backhaul write. Zero disables it.
	WriteTimeout time.Duration
	// Epoch identifies this gateway process lifetime in the hello so the
	// cloud can deduplicate segments replayed across connection flaps.
	// Every session of one RunResilient call repeats the same epoch; a
	// restarted gateway should pass a fresh value. Zero is replaced by 1.
	Epoch uint64
	// WALDir enables crash-durable shipping: every admitted segment is
	// journaled to a write-ahead log in this directory before it is
	// spooled, acks are journaled as the shipped window advances, and a
	// restarted gateway replays the unacknowledged window (oldest first,
	// under its fresh Epoch) ahead of new traffic. Empty disables the WAL
	// — behavior is then byte-identical to the purely in-memory spool.
	WALDir string
	// WALSync selects the WAL fsync policy (default wal.SyncBatched).
	WALSync wal.SyncPolicy
	// WALFileBytes caps one WAL file before rotation (default
	// wal.DefaultFileBytes).
	WALFileBytes int64
	// WALBacklogMax bounds the wal_backlog_headroom readiness check
	// (default DefaultWALBacklogMax).
	WALBacklogMax int
}

// resMetrics is the registry-backed counter set of the resilience layer.
type resMetrics struct {
	reconnects     *obs.Counter            // gateway_reconnects_total
	dialAttempts   *obs.Counter            // gateway_dial_attempts_total
	dialFailures   *obs.Counter            // gateway_dial_failures_total
	spoolDepth     *obs.Gauge              // gateway_spool_depth_count
	spoolDropped   *obs.Counter            // gateway_spool_dropped_total
	techDropped    map[string]*obs.Counter // gateway_spool_dropped_<tech>_total, read-only after wiring
	unknownDropped *obs.Counter            // gateway_spool_dropped_unknown_total
	degradedFrames *obs.Counter            // gateway_degraded_frames_total
	replayed       *obs.Counter            // gateway_replayed_segments_total
	connected      *obs.Gauge              // gateway_connected_state (1 = session established)
	backoffMillis  *obs.Gauge              // gateway_backoff_current_millis (0 when not backing off)
}

func (g *Gateway) newResMetrics() *resMetrics {
	rm := &resMetrics{
		reconnects:     g.reg.Counter("gateway_reconnects_total"),
		dialAttempts:   g.reg.Counter("gateway_dial_attempts_total"),
		dialFailures:   g.reg.Counter("gateway_dial_failures_total"),
		spoolDepth:     g.reg.Gauge("gateway_spool_depth_count"),
		spoolDropped:   g.reg.Counter("gateway_spool_dropped_total"),
		techDropped:    make(map[string]*obs.Counter, len(g.cfg.Techs)),
		unknownDropped: g.reg.Counter("gateway_spool_dropped_unknown_total"),
		degradedFrames: g.reg.Counter("gateway_degraded_frames_total"),
		replayed:       g.reg.Counter("gateway_replayed_segments_total"),
		connected:      g.reg.Gauge("gateway_connected_state"),
		backoffMillis:  g.reg.Gauge("gateway_backoff_current_millis"),
	}
	for _, t := range g.cfg.Techs {
		name := t.Name()
		rm.techDropped[name] = g.reg.Counter("gateway_spool_dropped_" + obs.SanitizeToken(name) + "_total")
	}
	return rm
}

// carried is a spooled segment moving between sessions. sent marks items
// that were shipped at least once and never acknowledged — shipping them
// again counts as a replay.
type carried struct {
	it   resilience.Item
	sent bool
}

// flight is one unacknowledged in-window segment of the current session.
type flight struct {
	it  resilience.Item
	seq uint64
}

// ackEvent is one cloud reply routed from the session reader to the sender.
type ackEvent struct {
	seq    uint64
	busy   bool
	report backhaul.FramesReport
}

// degrade is the drop path: a segment the backhaul will never carry gets
// one edge-only decode pass, any CRC-clean frames are reported locally, and
// the drop is charged to the per-technology counters (by the technology of
// the first recovered frame, or the unknown bucket when nothing decodes).
// Only the capture feeder and the post-exhaustion drain call this, never
// concurrently, so reusing the gateway's edge decoder is safe.
func (g *Gateway) degrade(rm *resMetrics, it resilience.Item, reports func(backhaul.FramesReport)) {
	tEdge := it.Span.Now()
	frames, _ := g.edge.DecodeTraced(it.Seg.Samples, it.Span)
	rep := backhaul.FramesReport{SegmentStart: it.Seg.Start}
	tech := ""
	for _, f := range frames {
		if !f.CRCOK {
			continue
		}
		if tech == "" {
			tech = f.Tech
		}
		rep.Frames = append(rep.Frames, backhaul.FrameReport{
			Tech:    f.Tech,
			Payload: f.Payload,
			CRCOK:   true,
			Offset:  it.Seg.Start + int64(f.Offset),
			SNRdB:   f.SNRdB,
		})
	}
	rm.spoolDropped.Inc()
	if c, ok := rm.techDropped[tech]; ok {
		c.Inc()
	} else {
		rm.unknownDropped.Inc()
	}
	rm.degradedFrames.Add(uint64(len(rep.Frames)))
	it.Span.Stage("spool_drop", it.Span.Now()-tEdge, float64(len(rep.Frames)))
	it.Span.End()
	if len(rep.Frames) > 0 && reports != nil {
		reports(rep)
	}
}

// segSpool abstracts over the in-memory spool and its WAL-backed flavor so
// the feeder and session loop are indifferent to durability.
type segSpool interface {
	Put(resilience.Item) (resilience.Item, bool)
	C() <-chan resilience.Item
	Len() int
	Cap() int
	Close()
}

// resilientRun is the cross-session state of one RunResilient call.
type resilientRun struct {
	g       *Gateway
	rc      Resilient
	rm      *resMetrics
	window  int
	auto    bool // Config.Window was unset: ack capacity hints may grow it
	spool   segSpool
	wal     *wal.Log // nil when WALDir is unset
	reports func(backhaul.FramesReport)
	hello   backhaul.Hello

	pending  []carried // backlog awaiting (re)shipment, oldest first
	drained  bool      // spool closed and fully consumed
	sessions int       // established sessions so far
	backoff  *resilience.Backoff
	// degraded marks an active degraded-mode episode (spool overflow is
	// dropping segments to edge-only decode). The feeder enters it and the
	// session goroutine exits it, hence the CAS discipline: each transition
	// is journaled exactly once no matter how the two goroutines interleave.
	degraded atomic.Bool
}

// degradeItem routes one segment through the degraded edge-only path and
// journals the enter edge of the episode. The edge-only decode is the
// item's final disposition, so its WAL record (if any) is acked.
func (r *resilientRun) degradeItem(it resilience.Item) {
	if r.degraded.CompareAndSwap(false, true) {
		r.g.cfg.Journal.Record("gateway_degraded_enter", int64(r.spool.Len()))
	}
	r.g.degrade(r.rm, it, r.reports)
	r.ack(it)
}

// ack retires the item's WAL record once the item is finally handled.
func (r *resilientRun) ack(it resilience.Item) {
	if r.wal != nil && it.WAL != 0 {
		r.wal.Ack(it.WAL)
	}
}

// closeWAL closes the log on the orderly-shutdown paths, where every
// admitted segment has been finally handled (acked or degraded-drained) and
// the close therefore clears the directory.
func (r *resilientRun) closeWAL() {
	if r.wal != nil {
		// A close failure only forfeits the final compaction, which the
		// next open redoes.
		_ = r.wal.Close()
	}
}

// RunResilient is Run behind a reconnecting backhaul client. Captures are
// consumed continuously by a feeder goroutine into a bounded spool, so the
// detection pipeline never stalls on a dead link; the sender drains the
// spool over a sequence of v2 sessions, re-helloing (same epoch) after
// every connection failure and replaying the unacknowledged window so no
// admitted segment is lost to a flap. When the spool saturates the oldest
// segment falls back to a local edge-only decode (degraded mode) and is
// counted dropped. The error is non-nil only when Retry's consecutive
// attempt budget is exhausted; everything still spooled at that point is
// drained through the degraded path before returning.
//
// Unlike Run, the reports callback may be invoked concurrently (cloud
// reports from the session loop, degraded-mode reports from the feeder) —
// callers must synchronize.
func (g *Gateway) RunResilient(rc Resilient, captures <-chan []complex128, reports func(backhaul.FramesReport)) error {
	if rc.Dial == nil {
		return errors.New("gateway: RunResilient requires a Dial function")
	}
	if g.cfg.Protocol == 1 {
		return errors.New("gateway: RunResilient requires backhaul protocol v2 (replay needs sequence acks)")
	}
	if rc.Epoch == 0 {
		rc.Epoch = 1
	}
	// Salt this lifetime's trace IDs with the epoch before the capture
	// feeder can mint any (the feeder goroutine starts below, so this
	// write happens-before every handle call).
	g.traceSalt = obs.MintTraceID(rc.Epoch, 0)
	if rc.SpoolCapacity <= 0 {
		rc.SpoolCapacity = DefaultSpoolCapacity
	}
	version := g.cfg.Protocol
	if version == 0 {
		version = backhaul.Version
	}
	techs := make([]string, 0, len(g.cfg.Techs))
	for _, t := range g.cfg.Techs {
		techs = append(techs, t.Name())
	}
	auto := g.cfg.Window <= 0
	window := g.cfg.Window
	if auto {
		window = DefaultWindow
	}
	rm := g.newResMetrics()
	r := &resilientRun{
		g:       g,
		rc:      rc,
		rm:      rm,
		window:  window,
		auto:    auto,
		reports: reports,
		backoff: resilience.NewBackoff(rc.Retry),
		hello: backhaul.Hello{
			Version:    version,
			GatewayID:  g.cfg.ID,
			SampleRate: g.cfg.Frontend.SampleRate(),
			Techs:      techs,
			Epoch:      rc.Epoch,
		},
	}
	if rc.WALDir != "" {
		// The WAL re-encodes segments it journals; detach the codec metrics
		// so those encodes do not double-count the backhaul encode totals.
		codec := g.cfg.Codec
		codec.Metrics = nil
		wlog, recovered, err := wal.Open(wal.Options{
			Dir:       rc.WALDir,
			FileBytes: rc.WALFileBytes,
			Sync:      rc.WALSync,
			Codec:     codec,
			Metrics:   wal.NewMetrics(g.reg),
			Journal:   g.cfg.Journal,
		})
		if err != nil {
			return fmt.Errorf("gateway: wal: %w", err)
		}
		// Recovered entries are requeued ahead of fresh traffic, oldest
		// first, with sent=false: this process never shipped them, so their
		// first ship is not a same-session replay — wal_records_replayed_total
		// already accounts for the restart replay. Recovered marks them so
		// the sender re-opens a wal_replay span on each segment's original
		// trace (the trace context journaled with the segment survives the
		// crash byte-for-byte).
		for _, e := range recovered {
			r.pending = append(r.pending, carried{it: resilience.Item{Seg: e.Seg, WAL: e.ID, Recovered: true}})
		}
		r.spool, r.wal = resilience.NewDurableSpool(rc.SpoolCapacity, wlog), wlog
	} else {
		r.spool = resilience.NewSpool(rc.SpoolCapacity)
	}
	if h := g.cfg.Health; h != nil {
		// Liveness follows the session state: a gateway mid-redial is
		// unhealthy until the next hello completes.
		h.Register("gateway_backhaul_connected", func() obs.CheckResult {
			if rm.connected.Value() == 1 {
				return obs.Healthy("session established")
			}
			return obs.Unhealthy("no backhaul session")
		})
		// Saturation is a readiness problem, not a liveness one: the
		// gateway is alive and degrading gracefully, but new load drops.
		h.RegisterReadiness("gateway_spool_headroom", func() obs.CheckResult {
			depth := r.spool.Len()
			if depth >= rc.SpoolCapacity {
				return obs.Unhealthy(fmt.Sprintf("spool saturated at %d/%d", depth, rc.SpoolCapacity))
			}
			return obs.Healthy(fmt.Sprintf("%d/%d spooled", depth, rc.SpoolCapacity))
		})
		if r.wal != nil {
			backlogMax := rc.WALBacklogMax
			if backlogMax <= 0 {
				backlogMax = DefaultWALBacklogMax
			}
			// A wedged WAL cannot journal anything: the gateway still ships
			// from memory but has lost its crash durability, which is a
			// liveness-grade fault for a durably-configured gateway.
			h.Register("wal_dir_ready", func() obs.CheckResult {
				if err := r.wal.Wedged(); err != nil {
					return obs.Unhealthy(fmt.Sprintf("wal wedged: %v", err))
				}
				return obs.Healthy("wal dir writable")
			})
			// Backlog is readiness: an oversized unacked window means the next
			// restart replays a burst the cloud has to chew through before new
			// traffic flows.
			h.RegisterReadiness("wal_backlog_headroom", func() obs.CheckResult {
				depth := r.wal.Backlog()
				if depth > backlogMax {
					return obs.Unhealthy(fmt.Sprintf("replay backlog %d exceeds %d", depth, backlogMax))
				}
				return obs.Healthy(fmt.Sprintf("%d/%d unacked records", depth, backlogMax))
			})
		}
	}

	// Feeder: keep detecting no matter what the backhaul is doing. Spool
	// overflow routes the evicted (oldest) segment through degrade.
	quit := make(chan struct{})
	feederDone := make(chan struct{})
	go func() {
		defer close(feederDone)
		defer r.spool.Close()
		put := func(res Result) {
			for i, seg := range res.Shipped {
				var sp *obs.Span
				if i < len(res.Spans) {
					sp = res.Spans[i]
				}
				if ev, dropped := r.spool.Put(resilience.Item{Seg: seg, Span: sp}); dropped {
					r.degradeItem(ev)
				}
				rm.spoolDepth.Set(int64(r.spool.Len()))
			}
		}
		for {
			select {
			case capture, ok := <-captures:
				if !ok {
					put(g.Flush())
					return
				}
				put(g.Process(capture))
			case <-quit:
				return
			}
		}
	}()

	var lastErr error
	for {
		rm.dialAttempts.Inc()
		rwc, err := rc.Dial()
		if err != nil {
			rm.dialFailures.Inc()
			lastErr = err
		} else {
			finished, serr := r.session(rwc)
			if finished {
				close(quit)
				<-feederDone
				r.closeWAL()
				return nil
			}
			lastErr = serr
		}
		if errors.Is(lastErr, resilience.ErrKilled) {
			// Simulated SIGKILL: abandon all process state in place — no
			// degraded drain, no WAL sync or compaction — so a restart
			// exercises the genuine crash-recovery path against whatever
			// happened to reach the platter.
			close(quit)
			<-feederDone
			if r.wal != nil {
				r.wal.Abandon()
			}
			return lastErr
		}
		d, ok := r.backoff.Next()
		if !ok {
			rm.backoffMillis.Set(0)
			close(quit)
			<-feederDone
			// The backhaul is gone for good: drain everything still queued
			// through the degraded path so it is accounted as dropped, then
			// surface the failure.
			for it := range r.spool.C() {
				r.degradeItem(it)
			}
			rm.spoolDepth.Set(0)
			for _, c := range r.pending {
				r.degradeItem(c.it)
			}
			r.pending = nil
			r.closeWAL()
			return r.backoff.Err(lastErr)
		}
		// Surface the wait on /metrics while it is happening: an operator
		// watching a flapping gateway sees the current backoff delay, not
		// just a reconnect counter after the fact.
		g.cfg.Journal.Record("gateway_redial_backoff", d.Milliseconds())
		rm.backoffMillis.Set(d.Milliseconds())
		time.Sleep(d)
		rm.backoffMillis.Set(0)
	}
}

// session drives one connection from hello to death or completion. It
// returns finished=true when every admitted segment has been acknowledged
// and the capture stream is exhausted; otherwise the unacknowledged window
// and unsent backlog are carried over in r.pending for the next session.
func (r *resilientRun) session(rwc io.ReadWriteCloser) (finished bool, err error) {
	g := r.g
	defer rwc.Close()
	// Session spans get their own trace, minted from the gateway ID and
	// session ordinal under a salt that cannot collide with segment traces,
	// so per-gateway session timelines stay distinct fleet-wide.
	sp := g.tracer.Start("gateway-session", obs.MintTraceID(g.idHash^obs.SiteID("session"), int64(r.sessions)+1))
	defer sp.End()
	conn := backhaul.NewConn(resilience.WithDeadlines(rwc, r.rc.ReadTimeout, r.rc.WriteTimeout))
	conn.SetMetrics(backhaul.NewConnMetrics(g.reg))
	if err := conn.SendHello(r.hello); err != nil {
		return false, fmt.Errorf("gateway: hello: %w", err)
	}
	typ, payload, err := conn.ReadMessage()
	if err != nil {
		return false, fmt.Errorf("gateway: hello ack: %w", err)
	}
	if typ != backhaul.MsgHelloAck {
		return false, fmt.Errorf("gateway: expected hello ack, got message type %d", typ)
	}
	ack, err := backhaul.ParseHelloAck(payload)
	if err != nil {
		return false, fmt.Errorf("gateway: bad hello ack: %w", err)
	}
	// The ack's version is what this session actually speaks; renegotiated
	// every redial because a flap may land on an older cloud. Below v3 the
	// trace extension is stripped before segments hit the wire.
	negotiated := r.hello.Version
	if ack.Version > 0 && ack.Version < negotiated {
		negotiated = ack.Version
	}
	// Window sizing is re-derived every session: a redial may land on a
	// plane whose shard count or admission bounds changed.
	window := scaleWindow(r.auto, r.window, ack)
	// Established: renegotiated and ready to ship. Consecutive-failure
	// accounting restarts here, and anything after the first session is by
	// definition a reconnect.
	sp.Stage("established", 0, float64(window))
	g.cfg.Journal.Record("gateway_session_establish", int64(window))
	// A fresh session ends any degraded episode: the backhaul is carrying
	// segments again.
	if r.degraded.CompareAndSwap(true, false) {
		g.cfg.Journal.Record("gateway_degraded_exit", int64(r.spool.Len()))
	}
	r.rm.connected.Set(1)
	defer r.rm.connected.Set(0)
	if r.sessions > 0 {
		r.rm.reconnects.Inc()
	}
	r.sessions++
	r.backoff.Reset()

	// Reader: parse cloud replies into ack events. Capacity covers the
	// deepest possible in-flight window plus slack, so the sends below can
	// never block long enough to deadlock session teardown.
	acks := make(chan ackEvent, 2*window+16)
	readerDone := make(chan error, 1)
	go func() {
		// The terminal error is buffered and the channel then closed, so
		// every teardown path can wait on readerDone even after another
		// path already consumed the error value.
		defer close(readerDone)
		for {
			typ, payload, err := conn.ReadMessage()
			if err != nil {
				readerDone <- err
				return
			}
			switch typ {
			case backhaul.MsgFrames:
				rep, err := backhaul.ParseFrames(payload)
				if err != nil {
					g.countBadReport()
					continue
				}
				acks <- ackEvent{seq: rep.Seq, report: rep}
			case backhaul.MsgBusy:
				seq, err := backhaul.ParseBusy(payload)
				if err != nil {
					g.countBadReport()
					continue
				}
				acks <- ackEvent{seq: seq, busy: true}
			case backhaul.MsgBye:
				readerDone <- io.EOF
				return
			default:
				g.countBadReport()
			}
		}
	}()

	var (
		inflight []flight
		seq      uint64
	)
	apply := func(a ackEvent) {
		idx := -1
		for i := range inflight {
			if inflight[i].seq == a.seq {
				idx = i
				break
			}
		}
		if idx < 0 {
			return // reply for a seq we no longer track; harmless
		}
		fl := inflight[idx]
		inflight = append(inflight[:idx], inflight[idx+1:]...)
		// Either reply is the segment's final disposition — a busy reject is
		// never reshipped — so the WAL record retires here.
		r.ack(fl.it)
		if a.busy {
			g.m.busyRejects.Inc()
			g.cfg.Journal.Record("gateway_busy_reject", int64(a.seq))
			return
		}
		if r.reports != nil {
			r.reports(a.report)
		}
	}
	// die tears the session down after a failure: force the reader out,
	// apply every reply that did arrive (so only truly unacknowledged
	// segments replay), and carry the rest to the next session.
	die := func(e error) (bool, error) {
		// The session is already failing for error e; the close is only
		// there to force the reader out of its blocked ReadMessage.
		//lint:ignore errdrop close error is superseded by the session error being returned
		_ = rwc.Close()
		for {
			select {
			case a := <-acks:
				apply(a)
			case <-readerDone:
				for {
					select {
					case a := <-acks:
						apply(a)
					default:
						left := make([]carried, 0, len(inflight)+len(r.pending))
						for _, fl := range inflight {
							left = append(left, carried{it: fl.it, sent: true})
						}
						left = append(left, r.pending...)
						r.pending = left
						sp.Stage("died", 0, float64(len(left)))
						g.cfg.Journal.Record("gateway_session_die", int64(len(left)))
						return false, e
					}
				}
			}
		}
	}
	sendItem := func(c carried) error {
		itsp := c.it.Span
		ephemeral := false
		if itsp == nil && c.it.Seg.Trace != 0 && (c.sent || c.it.Recovered) {
			// The segment's original span closed with an earlier ship (or
			// died with a previous process), but the segment still carries
			// its minted trace ID: open a short replay span on that same
			// trace and re-parent the wire context to it, so the cloud-side
			// span of this shipment stitches under a span that exists.
			itsp = g.tracer.Start("gateway-replay", c.it.Seg.Trace)
			ephemeral = itsp != nil
			stage := "replay"
			if c.it.Recovered {
				stage = "wal_replay"
			}
			itsp.Stage(stage, 0, float64(len(c.it.Seg.Samples)))
			if ephemeral {
				c.it.Seg.Parent = itsp.SpanID()
			}
		} else if c.sent {
			// Reship of an item whose first attempt died mid-write: the
			// span is still live, the replay lands on it.
			itsp.Stage("replay", 0, float64(len(c.it.Seg.Samples)))
		}
		seg := c.it.Seg
		if negotiated < 3 {
			// Pre-v3 peers reject the trace flag bit (seg is a copy; the
			// carried item keeps its identity for later sessions).
			seg.Trace, seg.Parent = 0, 0
		}
		tShip := itsp.Now()
		n, err := conn.SendSegmentSeq(g.cfg.Codec, seq, seg)
		if err != nil {
			// End an ephemeral replay span even on failure: the write may
			// have reached the cloud before the connection died, and its
			// child span must not be orphaned. The next attempt re-parents
			// to a fresh replay span.
			if ephemeral {
				itsp.End()
			}
			return err
		}
		g.m.wireBytes.Add(uint64(n))
		if c.sent {
			r.rm.replayed.Inc()
		}
		// The span is still live on first successful ship (and on the
		// reship of an item whose first attempt died mid-write).
		if itsp != nil {
			itsp.Stage("encode_ship", itsp.Now()-tShip, float64(n))
			itsp.End()
			c.it.Span = nil
		}
		inflight = append(inflight, flight{it: c.it, seq: seq})
		seq++
		return nil
	}

	for {
		// Fill the window: carried backlog first (oldest segments, replay
		// order), then fresh segments from the spool.
		for len(inflight) < window && len(r.pending) > 0 {
			c := r.pending[0]
			if err := sendItem(c); err != nil {
				return die(fmt.Errorf("gateway: replay ship: %w", err))
			}
			r.pending = r.pending[1:]
		}
		if r.drained && len(r.pending) == 0 && len(inflight) == 0 {
			// Every admitted segment acknowledged and no more captures:
			// orderly shutdown. The work is complete even if the bye
			// exchange itself fails.
			if err := conn.SendBye(); err != nil {
				_, _ = die(err)
				return true, nil
			}
			for {
				select {
				case a := <-acks:
					apply(a)
				case <-readerDone:
					return true, nil
				}
			}
		}
		var spoolC <-chan resilience.Item
		if len(inflight) < window && len(r.pending) == 0 && !r.drained {
			spoolC = r.spool.C()
		}
		select {
		case it, ok := <-spoolC:
			if !ok {
				r.drained = true
				continue
			}
			r.rm.spoolDepth.Set(int64(r.spool.Len()))
			if err := sendItem(carried{it: it}); err != nil {
				// The item left the spool but never made it into the
				// in-flight window: requeue it ahead of the backlog (it is
				// older than anything still spooled, newer than inflight,
				// which die prepends) or it would be lost with the session.
				// It touched the wire, so its reshipment is a replay.
				r.pending = append([]carried{{it: it, sent: true}}, r.pending...)
				return die(fmt.Errorf("gateway: ship: %w", err))
			}
		case a := <-acks:
			apply(a)
		case err := <-readerDone:
			return die(fmt.Errorf("gateway: session read: %w", err))
		}
	}
}
