package gateway

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backhaul"
	"repro/internal/channel"
	"repro/internal/cloud"
	"repro/internal/farm"
	"repro/internal/frontend"
	"repro/internal/phy"
	"repro/internal/phy/xbee"
	"repro/internal/phy/zwave"
	"repro/internal/resilience"
	"repro/internal/rng"
)

// resTechs is the short-range tech set used by the resilience tests. It
// deliberately omits LoRa: segment extraction pads every detection by the
// largest packet airtime in the set, and LoRa's (~174k samples at 1 MHz)
// would merge every capture in these tests into one giant segment. With
// xbee+zwave the pad is 42k samples, so captures spaced ~100k apart ship
// as individual segments — which is what replay and drop accounting need.
func resTechs() []phy.Technology {
	return []phy.Technology{xbee.Default(), zwave.Default()}
}

// techCapture builds a capture holding one clean packet of the given
// technology, hot enough that a single edge-decode pass recovers it. The
// 100k-sample noise tail keeps consecutive captures' packets farther apart
// than twice resTechs' maximum packet airtime, so each one becomes its own
// stream segment instead of merging with its neighbors.
func techCapture(t *testing.T, tech phy.Technology, seed uint64, payload []byte) []complex128 {
	t.Helper()
	gen := rng.New(seed)
	sig, err := tech.Modulate(payload, fs)
	if err != nil {
		t.Fatal(err)
	}
	return channel.Mix(len(sig)+100000, []channel.Emission{{Samples: sig, Offset: 30000, SNRdB: 15}}, gen, fs)
}

func counter(t *testing.T, g *Gateway, name string) uint64 {
	t.Helper()
	return g.Registry().Counter(name).Value()
}

// TestRunResilientReplaysUnacked kills the connection mid-window and checks
// the reconnect contract: unacked segments are replayed on the next session
// with fresh monotonic sequence numbers, the acked segment is not replayed,
// every segment is reported exactly once, and the epoch repeats across the
// re-hello.
func TestRunResilientReplaysUnacked(t *testing.T) {
	ts := resTechs()
	g, err := New(Config{Techs: ts, Frontend: frontend.Ideal(fs), Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	captures := make(chan []complex128, 3)
	payloads := [][]byte{[]byte("segment zero"), []byte("segment one"), []byte("segment two")}
	for i, p := range payloads {
		captures <- techCapture(t, ts[0], uint64(60+i), p)
	}
	close(captures)

	a1, b1 := net.Pipe()
	a2, b2 := net.Pipe()
	conns := make(chan net.Conn, 2)
	conns <- a1
	conns <- a2
	dial := func() (io.ReadWriteCloser, error) {
		select {
		case c := <-conns:
			return c, nil
		default:
			return nil, errors.New("no more conns")
		}
	}

	type seen struct {
		seq   uint64
		start int64
	}
	script := make(chan error, 2)
	var epoch1, epoch2 uint64
	var conn1Segs, conn2Segs []seen

	// Session 1: ack the hello, read three segments, ack only the first,
	// then die mid-window.
	go func() {
		script <- func() error {
			c := backhaul.NewConn(b1)
			_, payload, err := c.ReadMessage()
			if err != nil {
				return err
			}
			h, err := backhaul.ParseHello(payload)
			if err != nil {
				return err
			}
			epoch1 = h.Epoch
			if err := c.SendHelloAck(backhaul.HelloAck{Version: 2, Window: 8}); err != nil {
				return err
			}
			for i := 0; i < 3; i++ {
				typ, payload, err := c.ReadMessage()
				if err != nil {
					return err
				}
				if typ != backhaul.MsgSegmentSeq {
					return errors.New("conn1: expected sequenced segment")
				}
				seq, seg, err := backhaul.DecodeSegmentSeq(payload)
				if err != nil {
					return err
				}
				conn1Segs = append(conn1Segs, seen{seq, seg.Start})
			}
			// Ack seq 0, then drop the connection with seqs 1 and 2 unacked.
			if err := c.SendFrames(backhaul.FramesReport{SegmentStart: conn1Segs[0].start, Seq: 0}); err != nil {
				return err
			}
			return b1.Close()
		}()
	}()
	// Session 2: same epoch, replayed window, clean shutdown.
	go func() {
		script <- func() error {
			c := backhaul.NewConn(b2)
			_, payload, err := c.ReadMessage()
			if err != nil {
				return err
			}
			h, err := backhaul.ParseHello(payload)
			if err != nil {
				return err
			}
			epoch2 = h.Epoch
			if err := c.SendHelloAck(backhaul.HelloAck{Version: 2, Window: 8}); err != nil {
				return err
			}
			for {
				typ, payload, err := c.ReadMessage()
				if err != nil {
					return err
				}
				switch typ {
				case backhaul.MsgSegmentSeq:
					seq, seg, err := backhaul.DecodeSegmentSeq(payload)
					if err != nil {
						return err
					}
					conn2Segs = append(conn2Segs, seen{seq, seg.Start})
					if err := c.SendFrames(backhaul.FramesReport{SegmentStart: seg.Start, Seq: seq}); err != nil {
						return err
					}
				case backhaul.MsgBye:
					return c.SendBye()
				default:
					return errors.New("conn2: unexpected message")
				}
			}
		}()
	}()

	var mu sync.Mutex
	var reports []backhaul.FramesReport
	err = g.RunResilient(Resilient{
		Dial:  dial,
		Retry: resiliencePolicy(1 * time.Millisecond),
	}, captures, func(r backhaul.FramesReport) {
		mu.Lock()
		reports = append(reports, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-script; err != nil {
			t.Fatal(err)
		}
	}

	if epoch1 == 0 || epoch1 != epoch2 {
		t.Fatalf("epoch must repeat across re-hello: %d vs %d", epoch1, epoch2)
	}
	// Per-session sequence numbers are monotonic from zero.
	for i, s := range conn1Segs {
		if s.seq != uint64(i) {
			t.Fatalf("conn1 seg %d has seq %d", i, s.seq)
		}
	}
	for i, s := range conn2Segs {
		if s.seq != uint64(i) {
			t.Fatalf("conn2 seg %d has seq %d", i, s.seq)
		}
	}
	// Exactly the two unacked segments replay, oldest first.
	if len(conn1Segs) != 3 || len(conn2Segs) != 2 {
		t.Fatalf("conn1 saw %d segments, conn2 saw %d; want 3 and 2", len(conn1Segs), len(conn2Segs))
	}
	if conn2Segs[0].start != conn1Segs[1].start || conn2Segs[1].start != conn1Segs[2].start {
		t.Fatalf("replayed starts %v, want %v", conn2Segs, conn1Segs[1:])
	}
	// Every shipped segment reported exactly once.
	mu.Lock()
	startCount := map[int64]int{}
	for _, r := range reports {
		startCount[r.SegmentStart]++
	}
	mu.Unlock()
	for _, s := range conn1Segs {
		if startCount[s.start] != 1 {
			t.Fatalf("segment %d reported %d times", s.start, startCount[s.start])
		}
	}
	if got := counter(t, g, "gateway_reconnects_total"); got != 1 {
		t.Fatalf("reconnects = %d, want 1", got)
	}
	if got := counter(t, g, "gateway_replayed_segments_total"); got != 2 {
		t.Fatalf("replayed = %d, want 2", got)
	}
	if got := counter(t, g, "gateway_spool_dropped_total"); got != 0 {
		t.Fatalf("drops = %d, want 0", got)
	}
	if st := g.Stats(); st.SegmentsShipped != 3 {
		t.Fatalf("shipped = %d, want 3", st.SegmentsShipped)
	}
}

// resiliencePolicy is a fast deterministic retry policy for tests.
func resiliencePolicy(base time.Duration) resilience.RetryPolicy {
	return resilience.RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   base,
		MaxDelay:    4 * base,
		Seed:        1,
	}
}

// TestRunResilientSpoolOverflowDegraded saturates a capacity-1 spool while
// the dial is held off, then lets one session through: the four oldest
// segments must be dropped in order to the degraded edge-decode path (with
// per-technology drop counters), and the survivor decoded by a real cloud.
func TestRunResilientSpoolOverflowDegraded(t *testing.T) {
	ts := resTechs()
	g, err := New(Config{Techs: ts, Frontend: frontend.Ideal(fs), Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	svc := cloud.NewService(ts)
	svc.StartFarm(farm.Config{Workers: 2, QueueDepth: 8})
	defer svc.Close()

	xb, zw := ts[0], ts[1]
	specs := []struct {
		tech    phy.Technology
		payload string
	}{
		{xb, "drop zero"}, {xb, "drop one"}, {zw, "drop two"}, {zw, "drop three"}, {xb, "survivor"},
	}
	captures := make(chan []complex128, len(specs))
	for i, s := range specs {
		captures <- techCapture(t, s.tech, uint64(70+i), []byte(s.payload))
	}
	close(captures)

	dropped := g.Registry().Counter("gateway_spool_dropped_total")
	svcErr := make(chan error, 1)
	dial := func() (io.ReadWriteCloser, error) {
		// Hold the backhaul down until the spool has overflowed four times,
		// then come back up with a real cloud on the other end.
		for dropped.Value() < 4 {
			time.Sleep(time.Millisecond)
		}
		a, b := net.Pipe()
		go func() { svcErr <- svc.ServeConn(b) }()
		return a, nil
	}

	var mu sync.Mutex
	var reports []backhaul.FramesReport
	err = g.RunResilient(Resilient{
		Dial:          dial,
		Retry:         resiliencePolicy(time.Millisecond),
		SpoolCapacity: 1,
	}, captures, func(r backhaul.FramesReport) {
		mu.Lock()
		reports = append(reports, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-svcErr; err != nil {
		t.Fatal(err)
	}

	if got := dropped.Value(); got != 4 {
		t.Fatalf("dropped = %d, want 4", got)
	}
	if x := counter(t, g, "gateway_spool_dropped_xbee_total"); x != 2 {
		t.Fatalf("xbee drops = %d, want 2", x)
	}
	if z := counter(t, g, "gateway_spool_dropped_zwave_total"); z != 2 {
		t.Fatalf("zwave drops = %d, want 2", z)
	}
	if u := counter(t, g, "gateway_spool_dropped_unknown_total"); u != 0 {
		t.Fatalf("unknown drops = %d, want 0", u)
	}
	if df := counter(t, g, "gateway_degraded_frames_total"); df != 4 {
		t.Fatalf("degraded frames = %d, want 4", df)
	}
	if rc := counter(t, g, "gateway_reconnects_total"); rc != 0 {
		t.Fatalf("reconnects = %d, want 0", rc)
	}

	// Degraded reports carry the dropped payloads oldest-first; the
	// survivor arrives from the cloud.
	mu.Lock()
	defer mu.Unlock()
	var degraded []string
	cloudSeen := false
	for _, r := range reports {
		if len(r.Frames) != 1 {
			t.Fatalf("report %+v has %d frames, want 1", r.SegmentStart, len(r.Frames))
		}
		p := string(r.Frames[0].Payload)
		if p == "survivor" {
			cloudSeen = true
			continue
		}
		degraded = append(degraded, p)
	}
	want := []string{"drop zero", "drop one", "drop two", "drop three"}
	if len(degraded) != len(want) {
		t.Fatalf("degraded payloads %v, want %v", degraded, want)
	}
	for i := range want {
		if degraded[i] != want[i] {
			t.Fatalf("drop order %v, want oldest-first %v", degraded, want)
		}
	}
	if !cloudSeen {
		t.Fatal("surviving segment never decoded by the cloud")
	}
}

func TestRunResilientRetriesExhausted(t *testing.T) {
	g, err := New(Config{Techs: techs(), Frontend: frontend.Ideal(fs)})
	if err != nil {
		t.Fatal(err)
	}
	captures := make(chan []complex128)
	close(captures)
	dial := func() (io.ReadWriteCloser, error) { return nil, errors.New("network down") }
	err = g.RunResilient(Resilient{
		Dial: dial,
		Retry: resilience.RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
			MaxDelay:    2 * time.Millisecond,
		},
	}, captures, nil)
	if err == nil || !strings.Contains(err.Error(), "retries exhausted") {
		t.Fatalf("err = %v, want retries-exhausted", err)
	}
	if !strings.Contains(err.Error(), "network down") {
		t.Fatalf("err = %v, must wrap the last dial failure", err)
	}
	// The initial attempt plus MaxAttempts retries.
	if got := counter(t, g, "gateway_dial_attempts_total"); got != 4 {
		t.Fatalf("dial attempts = %d, want 4", got)
	}
	if got := counter(t, g, "gateway_dial_failures_total"); got != 4 {
		t.Fatalf("dial failures = %d, want 4", got)
	}
	if got := counter(t, g, "gateway_reconnects_total"); got != 0 {
		t.Fatalf("reconnects = %d, want 0", got)
	}
}

func TestRunResilientValidation(t *testing.T) {
	g, err := New(Config{Techs: techs(), Frontend: frontend.Ideal(fs)})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RunResilient(Resilient{}, nil, nil); err == nil {
		t.Fatal("nil Dial must be rejected")
	}
	g1, err := New(Config{Techs: techs(), Frontend: frontend.Ideal(fs), Protocol: 1})
	if err != nil {
		t.Fatal(err)
	}
	dial := func() (io.ReadWriteCloser, error) { return nil, errors.New("unused") }
	if err := g1.RunResilient(Resilient{Dial: dial}, nil, nil); err == nil {
		t.Fatal("protocol v1 must be rejected")
	}
}
