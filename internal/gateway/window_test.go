package gateway

import (
	"testing"

	"repro/internal/backhaul"
)

func TestScaleWindow(t *testing.T) {
	cases := []struct {
		name   string
		auto   bool
		window int
		ack    backhaul.HelloAck
		want   int
	}{
		{"unsharded ack leaves auto window alone", true, DefaultWindow, backhaul.HelloAck{}, DefaultWindow},
		{"single shard is not a fleet", true, DefaultWindow, backhaul.HelloAck{Shards: 1}, DefaultWindow},
		{"auto window grows with the shard count", true, DefaultWindow, backhaul.HelloAck{Shards: 4}, 4 * DefaultWindow},
		{"landing shard's bound caps the growth", true, DefaultWindow, backhaul.HelloAck{Shards: 4, Window: 12}, 12},
		{"pinned window never grows", false, 4, backhaul.HelloAck{Shards: 4}, 4},
		{"pinned window still shrinks to the shard bound", false, 16, backhaul.HelloAck{Shards: 4, Window: 6}, 6},
		{"legacy ack shrinks as before sharding", false, 16, backhaul.HelloAck{Window: 6}, 6},
		{"shard bound below default shrinks auto too", true, DefaultWindow, backhaul.HelloAck{Shards: 2, Window: 3}, 3},
	}
	for _, c := range cases {
		if got := scaleWindow(c.auto, c.window, c.ack); got != c.want {
			t.Errorf("%s: scaleWindow(%v, %d, %+v) = %d, want %d", c.name, c.auto, c.window, c.ack, got, c.want)
		}
	}
}
