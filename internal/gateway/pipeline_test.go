package gateway

import (
	"bytes"
	"net"
	"testing"

	"repro/internal/backhaul"
	"repro/internal/channel"
	"repro/internal/cloud"
	"repro/internal/farm"
	"repro/internal/frontend"
	"repro/internal/phy/xbee"
	"repro/internal/rng"
)

// shipCapture builds a capture holding one XBee packet that the gateway
// will detect and ship.
func shipCapture(t *testing.T, seed uint64, payload []byte) []complex128 {
	t.Helper()
	gen := rng.New(seed)
	sig, err := xbee.Default().Modulate(payload, fs)
	if err != nil {
		t.Fatal(err)
	}
	return channel.Mix(len(sig)+60000, []channel.Emission{{Samples: sig, Offset: 30000, SNRdB: 12}}, gen, fs)
}

func TestRunWindowedPipelineWithFarm(t *testing.T) {
	// A v2 gateway pipelines several captures' segments into a farm-backed
	// cloud; every segment must come back as a frames report, none as busy.
	ts := techs()
	g, err := New(Config{Techs: ts, Frontend: frontend.Ideal(fs), Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	svc := cloud.NewService(ts)
	svc.StartFarm(farm.Config{Workers: 2, QueueDepth: 8})
	defer svc.Close()

	const captureCount = 3
	payloads := [][]byte{[]byte("capture zero"), []byte("capture one"), []byte("capture two")}
	captures := make(chan []complex128, captureCount)
	for i := 0; i < captureCount; i++ {
		captures <- shipCapture(t, uint64(40+i), payloads[i])
	}
	close(captures)

	a, b := net.Pipe()
	errCh := make(chan error, 2)
	var reports []backhaul.FramesReport
	go func() { errCh <- svc.ServeConn(b) }()
	go func() {
		errCh <- g.Run(a, captures, func(r backhaul.FramesReport) {
			reports = append(reports, r)
		})
	}()
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	st := g.Stats()
	if st.SegmentsShipped == 0 {
		t.Fatal("nothing shipped")
	}
	if len(reports) != st.SegmentsShipped {
		t.Fatalf("%d reports for %d shipped segments", len(reports), st.SegmentsShipped)
	}
	// Replies must be sequenced in shipping order.
	for i, r := range reports {
		if r.Seq != uint64(i) {
			t.Fatalf("report %d has seq %d", i, r.Seq)
		}
	}
	got := map[string]bool{}
	for _, r := range reports {
		for _, f := range r.Frames {
			got[string(f.Payload)] = true
		}
	}
	for _, p := range payloads {
		if !got[string(p)] {
			t.Fatalf("payload %q never reported (got %v)", p, got)
		}
	}
	if st.BusyRejects != 0 || st.BadReports != 0 {
		t.Fatalf("stats %+v", st)
	}
	if _, _, fst := svc.Totals(); int(fst.Admitted) != st.SegmentsShipped || fst.Rejected != 0 {
		t.Fatalf("farm stats %+v vs shipped %d", fst, st.SegmentsShipped)
	}
}

func TestRunCountsBadReports(t *testing.T) {
	// A misbehaving cloud answers each segment with an unparseable frames
	// payload; the gateway must count it instead of silently dropping it.
	g, err := New(Config{Techs: techs(), Frontend: frontend.Ideal(fs), Protocol: 1})
	if err != nil {
		t.Fatal(err)
	}
	captures := make(chan []complex128, 1)
	captures <- shipCapture(t, 50, []byte("garbled reply"))
	close(captures)

	a, b := net.Pipe()
	srvErr := make(chan error, 1)
	go func() {
		srvErr <- func() error {
			conn := backhaul.NewConn(b)
			for {
				typ, _, err := conn.ReadMessage()
				if err != nil {
					return err
				}
				switch typ {
				case backhaul.MsgHello:
				case backhaul.MsgSegment:
					// Not JSON: ParseFrames must fail on the gateway.
					if err := conn.WriteMessage(backhaul.MsgFrames, []byte{0xff, 0xfe}); err != nil {
						return err
					}
				case backhaul.MsgBye:
					return conn.SendBye()
				}
			}
		}()
	}()
	if err := g.Run(a, captures, nil); err != nil {
		t.Fatal(err)
	}
	if err := <-srvErr; err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.SegmentsShipped == 0 {
		t.Fatal("nothing shipped")
	}
	if st.BadReports != st.SegmentsShipped {
		t.Fatalf("bad reports %d, want %d", st.BadReports, st.SegmentsShipped)
	}
}

func TestRunBusyRejectCounted(t *testing.T) {
	// A v2 "cloud" that rejects every segment with busy: the gateway must
	// count the rejects, free its window, and finish the session cleanly.
	g, err := New(Config{Techs: techs(), Frontend: frontend.Ideal(fs), Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	captures := make(chan []complex128, 1)
	captures <- shipCapture(t, 51, []byte("rejected"))
	close(captures)

	a, b := net.Pipe()
	srvErr := make(chan error, 1)
	go func() {
		srvErr <- func() error {
			conn := backhaul.NewConn(b)
			for {
				typ, payload, err := conn.ReadMessage()
				if err != nil {
					return err
				}
				switch typ {
				case backhaul.MsgHello:
					if err := conn.SendHelloAck(backhaul.HelloAck{Version: 2}); err != nil {
						return err
					}
				case backhaul.MsgSegmentSeq:
					seq, _, err := backhaul.DecodeSegmentSeq(payload)
					if err != nil {
						return err
					}
					if err := conn.SendBusy(seq); err != nil {
						return err
					}
				case backhaul.MsgBye:
					return conn.SendBye()
				}
			}
		}()
	}()
	if err := g.Run(a, captures, nil); err != nil {
		t.Fatal(err)
	}
	if err := <-srvErr; err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.SegmentsShipped == 0 || st.BusyRejects != st.SegmentsShipped {
		t.Fatalf("stats %+v", st)
	}
}

func TestLikelyCollisionIgnoresDecodedTech(t *testing.T) {
	g, err := New(Config{Techs: techs(), Frontend: frontend.Ideal(fs), EdgeDecode: true})
	if err != nil {
		t.Fatal(err)
	}
	gen := rng.New(52)
	payload := []byte("clean xbee frame")
	sig, _ := xbee.Default().Modulate(payload, fs)
	samples := channel.Mix(len(sig)+20000, []channel.Emission{{Samples: sig, Offset: 8000, SNRdB: 15}}, gen, fs)
	frames, _ := g.edge.Decode(samples)
	if len(frames) != 1 || !bytes.Equal(frames[0].Payload, payload) {
		t.Fatalf("edge decode %+v", frames)
	}
	// The segment contains exactly the decoded packet: its own preamble
	// score must not be mistaken for a second colliding transmission.
	if g.likelyCollision(samples, frames[0]) {
		t.Fatal("clean single-tech segment classified as collision")
	}
}
