package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/backhaul"
	"repro/internal/cloud"
	"repro/internal/farm"
	"repro/internal/faults"
	"repro/internal/frontend"
	"repro/internal/obs"
	"repro/internal/resilience"
)

const (
	soakSegments = 8 // admitted before the kill
	soakForward  = 3 // segments the relay lets through before killing
	soakFresh    = 2 // new segments admitted after the restart
)

// soakRelay is a deterministic man-in-the-middle between the gateway and
// the cloud: it forwards the hello, the first soakForward sequenced
// segments (swallowing later ones while still consuming them, so the
// gateway keeps filling its window), the hello ack and the first
// soakForward frames reports — then tears every pipe end down. Because
// backhaul connections are unbuffered and net.Pipe is synchronous, a
// forwarded message has always been fully consumed by its receiver before
// the relay moves on, which pins the kill point exactly: the gateway has
// parsed soakForward acks, the cloud has decoded soakForward segments, and
// nothing else got through.
func soakRelay(t *testing.T, svc *cloud.Service) io.ReadWriteCloser {
	t.Helper()
	gw, gwPeer := net.Pipe()
	cl, clPeer := net.Pipe()
	go func() {
		//lint:ignore errdrop the relay kills this session by design; the soak's counters are the contract
		_ = svc.ServeConn(clPeer)
	}()
	up := backhaul.NewConn(gwPeer)   // gateway -> relay
	down := backhaul.NewConn(cl)     // relay -> cloud (and back)
	closeAll := func() {
		gwPeer.Close()
		cl.Close()
	}
	// Upstream: hello through, first soakForward segments through, the rest
	// swallowed (still read, so the gateway's writes keep completing).
	go func() {
		defer closeAll()
		forwarded := 0
		for {
			typ, payload, err := up.ReadMessage()
			if err != nil {
				return
			}
			if typ == backhaul.MsgSegmentSeq {
				if forwarded >= soakForward {
					continue
				}
				forwarded++
			}
			if err := down.WriteMessage(typ, payload); err != nil {
				return
			}
		}
	}()
	// Downstream: hello ack through, then exactly soakForward frames
	// reports; the teardown after the last one is the simulated SIGKILL's
	// trigger point.
	go func() {
		defer closeAll()
		reports := 0
		for {
			typ, payload, err := down.ReadMessage()
			if err != nil {
				return
			}
			if err := up.WriteMessage(typ, payload); err != nil {
				return
			}
			if typ == backhaul.MsgFrames {
				reports++
				if reports >= soakForward {
					return
				}
			}
		}
	}()
	return gw
}

// soakCounters is the machine-readable ledger the soak asserts on; when
// WAL_SOAK_REPORT names a file the ledger is written there so CI can keep
// it as an artifact.
type soakCounters struct {
	Phase1Appended  uint64 `json:"phase1_wal_appended"`
	Phase1Acked     uint64 `json:"phase1_wal_acked"`
	Phase1Decoded   uint64 `json:"phase1_cloud_decoded"`
	Phase2Replayed  uint64 `json:"phase2_wal_replayed"`
	Phase2Truncated uint64 `json:"phase2_wal_truncated"`
	Phase2Appended  uint64 `json:"phase2_wal_appended"`
	Phase2Acked     uint64 `json:"phase2_wal_acked"`
	Phase2Compacted uint64 `json:"phase2_wal_compacted"`
	CloudDecoded    uint64 `json:"cloud_decoded_total"`
	CloudDeduped    uint64 `json:"cloud_deduped_total"`
	CloudSuperseded uint64 `json:"cloud_superseded_total"`
	DistinctPackets int    `json:"distinct_packets"`
	TraceStitched   int    `json:"trace_stitched"`
	TraceWALReplays int    `json:"trace_wal_replays"`
	TraceOrphans    int    `json:"trace_orphans"`
}

// TestWALRestartSoak SIGKILL-simulates a durably-configured gateway mid
// window and restarts it over the same WAL directory: phase one admits
// soakSegments segments, gets exactly soakForward of them decoded and
// acked through a man-in-the-middle relay, and then dies with the rest of
// the window unacknowledged; phase two reopens the WAL under a fresh
// epoch, replays the persisted window ahead of new traffic, and must end
// with every admitted segment decoded exactly once across the restart —
// asserted with exact counters on both sides.
func TestWALRestartSoak(t *testing.T) {
	ts := resTechs()
	walDir := t.TempDir()
	// One store assembles spans across the kill: each phase's gateway gets
	// its own tracer site (as two incarnations of a process would), the
	// cloud keeps one tracer across both, and the WAL carries each
	// segment's trace ID over the restart.
	store := obs.NewTraceStore(obs.TraceStoreConfig{SampleEvery: 1})
	cloudTracer := obs.NewTracer(0)
	cloudTracer.SetSite("cloud")
	cloudTracer.SetSink(store.Ingest)
	phaseTracer := func(site string) *obs.Tracer {
		tr := obs.NewTracer(0)
		tr.SetSite(site)
		tr.SetSink(store.Ingest)
		return tr
	}
	svc := cloud.NewService(ts)
	svc.UseObs(nil, cloudTracer)
	svc.StartFarm(farm.Config{Workers: 2, QueueDepth: 8})
	defer svc.Close()
	cloudCounter := func(name string) uint64 { return svc.Registry().Counter(name).Value() }

	allPayloads := make([]string, 0, soakSegments+soakFresh)

	// ---- Phase 1: admit, ship three, die mid-window. ----
	j1 := obs.NewJournal(obs.DefaultJournalRing)
	g1, err := New(Config{Techs: ts, Frontend: frontend.Ideal(fs), Window: 4, Journal: j1, Tracer: phaseTracer("gateway-p1")})
	if err != nil {
		t.Fatal(err)
	}
	captures1 := make(chan []complex128, soakSegments)
	for i := 0; i < soakSegments; i++ {
		payload := fmt.Sprintf("soak packet %d", i)
		allPayloads = append(allPayloads, payload)
		captures1 <- techCapture(t, ts[i%len(ts)], uint64(700+i), []byte(payload))
	}
	close(captures1)

	walAppended := func(g *Gateway) uint64 { return counter(t, g, "wal_records_appended_total") }
	dials := 0
	dial1 := func() (io.ReadWriteCloser, error) {
		dials++
		if dials > 1 {
			// The second dial is the kill switch: the process "dies" here,
			// abandoning the WAL exactly as it sits on disk.
			return nil, resilience.ErrKilled
		}
		// Let the feeder journal every admitted segment before the session
		// ships anything, so the pre-kill WAL contents are exact.
		deadline := time.Now().Add(30 * time.Second)
		for walAppended(g1) < soakSegments {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("wal never reached %d appends", soakSegments)
			}
			time.Sleep(time.Millisecond)
		}
		return soakRelay(t, svc), nil
	}

	var mu sync.Mutex
	var reports1 []backhaul.FramesReport
	err = g1.RunResilient(Resilient{
		Dial:          dial1,
		Retry:         resiliencePolicy(time.Millisecond),
		SpoolCapacity: 16,
		Epoch:         7,
		WALDir:        walDir,
	}, captures1, func(r backhaul.FramesReport) {
		mu.Lock()
		reports1 = append(reports1, r)
		mu.Unlock()
	})
	if !errors.Is(err, resilience.ErrKilled) {
		t.Fatalf("phase 1 returned %v, want ErrKilled", err)
	}

	var c soakCounters
	c.Phase1Appended = walAppended(g1)
	c.Phase1Acked = counter(t, g1, "wal_records_acked_total")
	c.Phase1Decoded = cloudCounter("cloud_segments_decoded_total")
	if c.Phase1Appended != soakSegments {
		t.Fatalf("phase 1 wal appended = %d, want %d", c.Phase1Appended, soakSegments)
	}
	if c.Phase1Acked != soakForward {
		t.Fatalf("phase 1 wal acked = %d, want %d", c.Phase1Acked, soakForward)
	}
	if c.Phase1Decoded != soakForward {
		t.Fatalf("phase 1 cloud decodes = %d, want %d", c.Phase1Decoded, soakForward)
	}
	if got := counter(t, g1, "gateway_spool_dropped_total"); got != 0 {
		t.Fatalf("phase 1 drops = %d, want 0", got)
	}
	if got := len(payloadSet(reports1)); got != soakForward {
		t.Fatalf("phase 1 delivered %d packets, want %d", got, soakForward)
	}
	names, err := faults.OS().List(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("kill left no WAL files behind")
	}

	// ---- Phase 2: restart over the same WAL dir under a fresh epoch. ----
	j2 := obs.NewJournal(obs.DefaultJournalRing)
	h2 := obs.NewHealth()
	g2, err := New(Config{Techs: ts, Frontend: frontend.Ideal(fs), Window: 4, Journal: j2, Health: h2, Tracer: phaseTracer("gateway-p2")})
	if err != nil {
		t.Fatal(err)
	}
	captures2 := make(chan []complex128, soakFresh)
	for i := 0; i < soakFresh; i++ {
		payload := fmt.Sprintf("soak packet %d", soakSegments+i)
		allPayloads = append(allPayloads, payload)
		captures2 <- techCapture(t, ts[i%len(ts)], uint64(800+i), []byte(payload))
	}
	close(captures2)

	dial2 := func() (io.ReadWriteCloser, error) {
		a, b := net.Pipe()
		go func() {
			//lint:ignore errdrop the session ends with the gateway's bye; the decode ledger is the contract
			_ = svc.ServeConn(b)
		}()
		return a, nil
	}
	var reports2 []backhaul.FramesReport
	err = g2.RunResilient(Resilient{
		Dial:          dial2,
		Retry:         resiliencePolicy(time.Millisecond),
		SpoolCapacity: 16,
		Epoch:         8,
		WALDir:        walDir,
	}, captures2, func(r backhaul.FramesReport) {
		mu.Lock()
		reports2 = append(reports2, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("phase 2: %v", err)
	}

	const replayCount = soakSegments - soakForward
	c.Phase2Replayed = counter(t, g2, "wal_records_replayed_total")
	c.Phase2Truncated = counter(t, g2, "wal_truncated_records_total")
	c.Phase2Appended = counter(t, g2, "wal_records_appended_total")
	c.Phase2Acked = counter(t, g2, "wal_records_acked_total")
	c.Phase2Compacted = counter(t, g2, "wal_files_compacted_total")
	c.CloudDecoded = cloudCounter("cloud_segments_decoded_total")
	c.CloudDeduped = cloudCounter("cloud_segments_deduped_total")
	c.CloudSuperseded = cloudCounter("cloud_dedup_superseded_total")

	if c.Phase2Replayed != replayCount {
		t.Fatalf("phase 2 replayed = %d, want %d", c.Phase2Replayed, replayCount)
	}
	if c.Phase2Truncated != 0 {
		t.Fatalf("phase 2 truncated = %d, want 0 (clean record boundaries only)", c.Phase2Truncated)
	}
	if c.Phase2Appended != soakFresh {
		t.Fatalf("phase 2 appended = %d, want %d (recovered entries must not re-journal)", c.Phase2Appended, soakFresh)
	}
	if want := uint64(replayCount + soakFresh); c.Phase2Acked != want {
		t.Fatalf("phase 2 acked = %d, want %d", c.Phase2Acked, want)
	}
	if c.Phase2Compacted == 0 {
		t.Fatal("clean shutdown compacted no WAL files")
	}
	if got := counter(t, g2, "gateway_reconnects_total"); got != 0 {
		t.Fatalf("phase 2 reconnects = %d, want 0", got)
	}
	if got := counter(t, g2, "gateway_dial_attempts_total"); got != 1 {
		t.Fatalf("phase 2 dials = %d, want 1", got)
	}

	// Exactly-once across the restart: every admitted segment decoded once,
	// no duplicate ever reached the farm (fresh epoch, so nothing was even
	// answered from the dedup cache), and the dead epoch's cache entries
	// were superseded at the re-hello.
	if want := uint64(soakSegments + soakFresh); c.CloudDecoded != want {
		t.Fatalf("cloud decodes across restart = %d, want %d", c.CloudDecoded, want)
	}
	if c.CloudDeduped != 0 {
		t.Fatalf("cloud dedup answered %d replays, want 0 (fresh epoch)", c.CloudDeduped)
	}
	if c.CloudSuperseded != soakForward {
		t.Fatalf("cloud superseded %d dead-epoch entries, want %d", c.CloudSuperseded, soakForward)
	}
	combined := payloadSet(append(append([]backhaul.FramesReport(nil), reports1...), reports2...))
	c.DistinctPackets = len(combined)
	if len(combined) != soakSegments+soakFresh {
		t.Fatalf("recovered %d packets across restart, want %d: %v", len(combined), soakSegments+soakFresh, combined)
	}
	seen := make(map[string]bool, len(combined))
	for _, p := range combined {
		if seen[p] {
			t.Fatalf("packet %q delivered more than once across the restart", p)
		}
		seen[p] = true
	}
	for _, p := range allPayloads {
		if !seen[p] {
			t.Fatalf("packet %q lost across the restart", p)
		}
	}

	// Trace continuity across the kill: every segment decoded on either
	// side of the restart assembles into one trace stitched across the
	// gateway/cloud boundary; each of the five WAL-recovered segments kept
	// its original trace identity (the ID rode through the WAL and back
	// onto the wire) and gained a wal_replay span on that same trace; no
	// span anywhere lost its parent, and every cloud span was parented
	// from the wire.
	l := traceAudit(store)
	c.TraceStitched = l.stitched
	c.TraceWALReplays = l.walReplays
	c.TraceOrphans = l.orphans
	if want := soakSegments + soakFresh; l.stitched != want {
		t.Fatalf("stitched traces = %d, want %d (one per decoded segment)", l.stitched, want)
	}
	if l.walReplays != replayCount {
		t.Fatalf("wal_replay traces = %d, want %d", l.walReplays, replayCount)
	}
	if l.replays != 0 {
		t.Fatalf("in-session replay traces = %d, want 0 (phase 2 never reconnects)", l.replays)
	}
	if l.orphans != 0 || l.unparented != 0 {
		t.Fatalf("orphans = %d, unparented cloud spans = %d, want 0/0", l.orphans, l.unparented)
	}

	// The recovery is journaled before the session establishes, with the
	// replay count as its value.
	events := j2.Recent()
	recoverIdx, establishIdx := -1, -1
	for i, e := range events {
		switch e.Name {
		case "wal_window_recover":
			if recoverIdx == -1 {
				recoverIdx = i
				if e.Value != replayCount {
					t.Fatalf("wal_window_recover value = %d, want %d", e.Value, replayCount)
				}
			}
		case "gateway_session_establish":
			if establishIdx == -1 {
				establishIdx = i
			}
		}
	}
	if recoverIdx == -1 {
		t.Fatalf("no wal_window_recover event journaled: %+v", events)
	}
	if establishIdx == -1 || recoverIdx > establishIdx {
		t.Fatalf("wal_window_recover (idx %d) must precede establish (idx %d)", recoverIdx, establishIdx)
	}

	// The readiness surface carries both WAL checks, healthy after the run.
	ready := h2.Readiness()
	checkNames := make(map[string]bool, len(ready.Checks))
	for _, chk := range ready.Checks {
		checkNames[chk.Name] = chk.Healthy
	}
	for _, name := range []string{"wal_dir_ready", "wal_backlog_headroom"} {
		healthy, ok := checkNames[name]
		if !ok {
			t.Fatalf("readiness check %q not registered (got %v)", name, checkNames)
		}
		if !healthy {
			t.Fatalf("readiness check %q unhealthy after clean run", name)
		}
	}

	// A clean shutdown with an empty backlog leaves no WAL files: the next
	// start recovers nothing.
	names, err = faults.OS().List(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("WAL dir not empty after clean shutdown: %v", names)
	}

	if path := os.Getenv("WAL_SOAK_REPORT"); path != "" {
		data, err := json.MarshalIndent(c, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("write soak report: %v", err)
		}
	}
}
