// Package gateway implements the GalioT gateway runtime: the pipeline that
// takes front-end captures through universal-preamble detection, attempts
// cheap edge decoding for uncollided packets, and ships everything it
// cannot resolve locally to the cloud over the backhaul protocol
// (paper Sec. 3-4, including the "Edge vs. the Cloud" policy: I/Q samples
// are decoded at the edge assuming no collision, and shipped only when
// that fails).
package gateway

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/backhaul"
	"repro/internal/cancel"
	"repro/internal/detect"
	"repro/internal/frontend"
	"repro/internal/phy"
)

// Config assembles a gateway.
type Config struct {
	ID         string           // gateway identifier for the hello handshake
	Techs      []phy.Technology // technologies to detect and decode
	Frontend   *frontend.Receiver
	Detector   detect.Detector // nil: universal-preamble detector at threshold 0.08
	EdgeDecode bool            // try single-technology decode locally first
	Codec      backhaul.SegmentCodec
}

// Stats counts what a gateway did.
type Stats struct {
	CapturesProcessed int
	Detections        int
	SegmentsShipped   int
	SegmentsResolved  int // resolved at the edge, not shipped
	EdgeFrames        int
	WireBytes         int // backhaul bytes actually sent
	RawBytes          int // what streaming every capture raw (cu8) would have cost
}

// Gateway runs the detection/edge/ship pipeline. Captures are fed through
// a streaming detector, so packets that straddle capture boundaries are
// detected once enough samples have arrived; call Flush when the stream
// ends to drain segments still held back at the buffer tail.
type Gateway struct {
	cfg       Config
	det       detect.Detector
	stream    *detect.Stream
	edge      *cancel.Decoder
	maxPacket int

	mu    sync.Mutex // guards stats; Run's reader goroutine made Gateway shared
	stats Stats
}

// New builds a gateway. The default detector is the universal-preamble
// correlator over cfg.Techs.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Techs) == 0 {
		return nil, errors.New("gateway: no technologies configured")
	}
	if cfg.Frontend == nil {
		cfg.Frontend = frontend.Ideal(1e6)
	}
	if cfg.ID == "" {
		cfg.ID = "galiot-gw"
	}
	if cfg.Codec.Format == 0 && !cfg.Codec.Compress {
		cfg.Codec = backhaul.DefaultCodec
	}
	fs := cfg.Frontend.SampleRate()
	det := cfg.Detector
	if det == nil {
		var err error
		det, err = detect.NewUniversal(cfg.Techs, fs, 0.08)
		if err != nil {
			return nil, fmt.Errorf("gateway: %w", err)
		}
	}
	maxPacket := 0
	for _, t := range cfg.Techs {
		if n := t.MaxPacketSamples(fs); n > maxPacket {
			maxPacket = n
		}
	}
	// Edge decoding assumes no collision: single pass, no kill filters.
	edge := cancel.NewSIC(cfg.Techs, fs)
	edge.MaxRounds = 1
	return &Gateway{
		cfg:       cfg,
		det:       det,
		stream:    detect.NewStream(det, maxPacket),
		edge:      edge,
		maxPacket: maxPacket,
	}, nil
}

// SampleRate returns the gateway's front-end sample rate.
func (g *Gateway) SampleRate() float64 { return g.cfg.Frontend.SampleRate() }

// Stats returns a snapshot of the gateway's counters.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Result is the outcome of processing one capture.
type Result struct {
	EdgeFrames []*phy.Frame       // frames fully resolved at the edge
	Shipped    []backhaul.Segment // segments that need the cloud
}

// Process runs one antenna capture through the pipeline: front-end
// impairments, streaming detection, optional edge decode, and returns what
// must be shipped. Offsets in the returned segments are absolute
// (monotonic across captures). Segments near the end of the buffered
// stream are withheld until the next Process or Flush call, because the
// packets they cover may continue into samples not yet received.
func (g *Gateway) Process(antenna []complex128) Result {
	rx := g.cfg.Frontend.Capture(antenna)
	g.mu.Lock()
	g.stats.CapturesProcessed++
	g.stats.RawBytes += 2 * len(rx) // cu8 raw stream cost
	g.mu.Unlock()
	return g.handle(g.stream.Push(rx))
}

// Flush drains segments still held in the streaming detector. Call once
// when no more captures will arrive.
func (g *Gateway) Flush() Result {
	return g.handle(g.stream.Flush())
}

// handle routes completed segments through edge decode or shipping.
func (g *Gateway) handle(segments []detect.StreamSegment) Result {
	fs := g.cfg.Frontend.SampleRate()
	var res Result
	edgeFrames, resolved := 0, 0
	for _, seg := range segments {
		if g.cfg.EdgeDecode {
			frames, _ := g.edge.Decode(seg.Samples)
			if len(frames) == 1 && frames[0].CRCOK && !g.likelyCollision(seg.Samples, frames[0]) {
				for _, f := range frames {
					f.Offset += int(seg.Start)
				}
				res.EdgeFrames = append(res.EdgeFrames, frames...)
				edgeFrames += len(frames)
				resolved++
				continue
			}
		}
		res.Shipped = append(res.Shipped, backhaul.Segment{
			Start:      seg.Start,
			SampleRate: fs,
			Samples:    seg.Samples,
		})
	}
	g.mu.Lock()
	g.stats.Detections += len(segments)
	g.stats.EdgeFrames += edgeFrames
	g.stats.SegmentsResolved += resolved
	g.stats.SegmentsShipped += len(res.Shipped)
	g.mu.Unlock()
	return res
}

// likelyCollision reports whether a segment still contains significant
// structure after the edge decode, meaning more transmissions may be
// hiding; such segments go to the cloud despite the local success.
func (g *Gateway) likelyCollision(samples []complex128, decoded *phy.Frame) bool {
	// More than one technology's preamble above threshold indicates a
	// cross-technology collision the edge (single-pass, no kill filters)
	// should not trust itself with.
	found := 0
	for _, cand := range g.edge.Classify(samples) {
		if cand.Score > 0.15 {
			found++
		}
	}
	return found > 1
}

// Run drives a session over a backhaul connection: hello, then one segment
// message per shipped segment from each capture delivered on captures,
// then bye. Decode reports arriving from the cloud are delivered to the
// reports callback (may be nil).
func (g *Gateway) Run(rw io.ReadWriter, captures <-chan []complex128, reports func(backhaul.FramesReport)) error {
	conn := backhaul.NewConn(rw)
	techs := make([]string, 0, len(g.cfg.Techs))
	for _, t := range g.cfg.Techs {
		techs = append(techs, t.Name())
	}
	if err := conn.SendHello(backhaul.Hello{
		Version:    backhaul.Version,
		GatewayID:  g.cfg.ID,
		SampleRate: g.cfg.Frontend.SampleRate(),
		Techs:      techs,
	}); err != nil {
		return err
	}
	// Reader side: collect decode reports until EOF.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			typ, payload, err := conn.ReadMessage()
			if err != nil {
				return
			}
			if typ == backhaul.MsgFrames && reports != nil {
				if r, err := backhaul.ParseFrames(payload); err == nil {
					reports(r)
				}
			}
			if typ == backhaul.MsgBye {
				return
			}
		}
	}()
	ship := func(res Result) error {
		for _, seg := range res.Shipped {
			n, err := conn.SendSegment(g.cfg.Codec, seg)
			if err != nil {
				return err
			}
			g.mu.Lock()
			g.stats.WireBytes += n
			g.mu.Unlock()
		}
		return nil
	}
	for capture := range captures {
		if err := ship(g.Process(capture)); err != nil {
			return err
		}
	}
	if err := ship(g.Flush()); err != nil {
		return err
	}
	if err := conn.SendBye(); err != nil {
		return err
	}
	<-done
	return nil
}
