// Package gateway implements the GalioT gateway runtime: the pipeline that
// takes front-end captures through universal-preamble detection, attempts
// cheap edge decoding for uncollided packets, and ships everything it
// cannot resolve locally to the cloud over the backhaul protocol
// (paper Sec. 3-4, including the "Edge vs. the Cloud" policy: I/Q samples
// are decoded at the edge assuming no collision, and shipped only when
// that fails).
package gateway

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/backhaul"
	"repro/internal/cancel"
	"repro/internal/detect"
	"repro/internal/frontend"
	"repro/internal/phy"
)

// DefaultWindow is how many shipped segments Run keeps in flight
// unacknowledged on a v2 session before blocking.
const DefaultWindow = 8

// Config assembles a gateway.
type Config struct {
	ID         string           // gateway identifier for the hello handshake
	Techs      []phy.Technology // technologies to detect and decode
	Frontend   *frontend.Receiver
	Detector   detect.Detector // nil: universal-preamble detector at threshold 0.08
	EdgeDecode bool            // try single-technology decode locally first
	Codec      backhaul.SegmentCodec
	// Protocol pins the backhaul version Run offers in its hello
	// (default: backhaul.Version). Set 1 to speak the legacy strict
	// request/reply protocol.
	Protocol int
	// Window bounds the unacknowledged segments Run pipelines on a v2
	// session (default DefaultWindow). The cloud's hello ack may shrink it.
	Window int
}

// Stats counts what a gateway did.
type Stats struct {
	CapturesProcessed int
	Detections        int
	SegmentsShipped   int
	SegmentsResolved  int // resolved at the edge, not shipped
	EdgeFrames        int
	BadReports        int // cloud replies the gateway could not parse
	BusyRejects       int // segments the cloud rejected with a busy message
	WireBytes         int // backhaul bytes actually sent
	RawBytes          int // what streaming every capture raw (cu8) would have cost
}

// Gateway runs the detection/edge/ship pipeline. Captures are fed through
// a streaming detector, so packets that straddle capture boundaries are
// detected once enough samples have arrived; call Flush when the stream
// ends to drain segments still held back at the buffer tail.
type Gateway struct {
	cfg       Config
	det       detect.Detector
	stream    *detect.Stream
	edge      *cancel.Decoder
	maxPacket int

	mu    sync.Mutex // guards stats; Run's reader goroutine made Gateway shared
	stats Stats
}

// New builds a gateway. The default detector is the universal-preamble
// correlator over cfg.Techs.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Techs) == 0 {
		return nil, errors.New("gateway: no technologies configured")
	}
	if cfg.Frontend == nil {
		cfg.Frontend = frontend.Ideal(1e6)
	}
	if cfg.ID == "" {
		cfg.ID = "galiot-gw"
	}
	if cfg.Codec.Format == 0 && !cfg.Codec.Compress {
		cfg.Codec = backhaul.DefaultCodec
	}
	fs := cfg.Frontend.SampleRate()
	det := cfg.Detector
	if det == nil {
		var err error
		det, err = detect.NewUniversal(cfg.Techs, fs, 0.08)
		if err != nil {
			return nil, fmt.Errorf("gateway: %w", err)
		}
	}
	maxPacket := 0
	for _, t := range cfg.Techs {
		if n := t.MaxPacketSamples(fs); n > maxPacket {
			maxPacket = n
		}
	}
	// Edge decoding assumes no collision: single pass, no kill filters.
	edge := cancel.NewSIC(cfg.Techs, fs)
	edge.MaxRounds = 1
	return &Gateway{
		cfg:       cfg,
		det:       det,
		stream:    detect.NewStream(det, maxPacket),
		edge:      edge,
		maxPacket: maxPacket,
	}, nil
}

// SampleRate returns the gateway's front-end sample rate.
func (g *Gateway) SampleRate() float64 { return g.cfg.Frontend.SampleRate() }

// Stats returns a snapshot of the gateway's counters.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Result is the outcome of processing one capture.
type Result struct {
	EdgeFrames []*phy.Frame       // frames fully resolved at the edge
	Shipped    []backhaul.Segment // segments that need the cloud
}

// Process runs one antenna capture through the pipeline: front-end
// impairments, streaming detection, optional edge decode, and returns what
// must be shipped. Offsets in the returned segments are absolute
// (monotonic across captures). Segments near the end of the buffered
// stream are withheld until the next Process or Flush call, because the
// packets they cover may continue into samples not yet received.
func (g *Gateway) Process(antenna []complex128) Result {
	rx := g.cfg.Frontend.Capture(antenna)
	g.mu.Lock()
	g.stats.CapturesProcessed++
	g.stats.RawBytes += 2 * len(rx) // cu8 raw stream cost
	g.mu.Unlock()
	return g.handle(g.stream.Push(rx))
}

// Flush drains segments still held in the streaming detector. Call once
// when no more captures will arrive.
func (g *Gateway) Flush() Result {
	return g.handle(g.stream.Flush())
}

// handle routes completed segments through edge decode or shipping.
func (g *Gateway) handle(segments []detect.StreamSegment) Result {
	fs := g.cfg.Frontend.SampleRate()
	var res Result
	edgeFrames, resolved := 0, 0
	for _, seg := range segments {
		if g.cfg.EdgeDecode {
			frames, _ := g.edge.Decode(seg.Samples)
			if len(frames) == 1 && frames[0].CRCOK && !g.likelyCollision(seg.Samples, frames[0]) {
				for _, f := range frames {
					f.Offset += int(seg.Start)
				}
				res.EdgeFrames = append(res.EdgeFrames, frames...)
				edgeFrames += len(frames)
				resolved++
				continue
			}
		}
		res.Shipped = append(res.Shipped, backhaul.Segment{
			Start:      seg.Start,
			SampleRate: fs,
			Samples:    seg.Samples,
		})
	}
	g.mu.Lock()
	g.stats.Detections += len(segments)
	g.stats.EdgeFrames += edgeFrames
	g.stats.SegmentsResolved += resolved
	g.stats.SegmentsShipped += len(res.Shipped)
	g.mu.Unlock()
	return res
}

// likelyCollision reports whether a segment still contains significant
// structure after the edge decode, meaning more transmissions may be
// hiding; such segments go to the cloud despite the local success.
func (g *Gateway) likelyCollision(samples []complex128, decoded *phy.Frame) bool {
	// The decoded frame's own preamble is expected to correlate; any other
	// technology above threshold indicates a cross-technology collision the
	// edge (single-pass, no kill filters) should not trust itself with.
	for _, cand := range g.edge.Classify(samples) {
		if cand.Tech.Name() == decoded.Tech {
			continue
		}
		if cand.Score > 0.15 {
			return true
		}
	}
	return false
}

// countBadReport records a cloud reply the gateway could not parse, so
// malformed traffic shows up in Stats instead of being silently discarded.
func (g *Gateway) countBadReport() {
	g.mu.Lock()
	g.stats.BadReports++
	g.mu.Unlock()
}

// Run drives a session over a backhaul connection: hello (with version
// negotiation), then the shipped segments of each capture delivered on
// captures, then bye. On a v2 session shipping is pipelined: up to
// Config.Window sequence-numbered segments stay in flight unacknowledged,
// and each cloud reply — a frames report or an explicit busy reject —
// frees a window slot. Decode reports arriving from the cloud are
// delivered to the reports callback (may be nil).
func (g *Gateway) Run(rw io.ReadWriter, captures <-chan []complex128, reports func(backhaul.FramesReport)) error {
	conn := backhaul.NewConn(rw)
	version := g.cfg.Protocol
	if version == 0 {
		version = backhaul.Version
	}
	techs := make([]string, 0, len(g.cfg.Techs))
	for _, t := range g.cfg.Techs {
		techs = append(techs, t.Name())
	}
	if err := conn.SendHello(backhaul.Hello{
		Version:    version,
		GatewayID:  g.cfg.ID,
		SampleRate: g.cfg.Frontend.SampleRate(),
		Techs:      techs,
	}); err != nil {
		return err
	}
	window := g.cfg.Window
	if window <= 0 {
		window = DefaultWindow
	}
	if version >= 2 {
		// The hello ack closes negotiation; the cloud may shrink the window
		// to what its admission queue is willing to hold.
		typ, payload, err := conn.ReadMessage()
		if err != nil {
			return err
		}
		if typ != backhaul.MsgHelloAck {
			return fmt.Errorf("gateway: expected hello ack, got message type %d", typ)
		}
		ack, err := backhaul.ParseHelloAck(payload)
		if err != nil {
			return fmt.Errorf("gateway: bad hello ack: %w", err)
		}
		if ack.Window > 0 && ack.Window < window {
			window = ack.Window
		}
	}
	// Reader side: collect decode reports and busy rejects until the bye
	// ack. On v2 sessions every reply returns one window token.
	done := make(chan struct{})
	tokens := make(chan struct{}, window)
	release := func() {
		select {
		case <-tokens:
		default: // spurious reply with nothing in flight
		}
	}
	go func() {
		defer close(done)
		for {
			typ, payload, err := conn.ReadMessage()
			if err != nil {
				return
			}
			switch typ {
			case backhaul.MsgFrames:
				if r, err := backhaul.ParseFrames(payload); err != nil {
					g.countBadReport()
				} else if reports != nil {
					reports(r)
				}
				release()
			case backhaul.MsgBusy:
				if _, err := backhaul.ParseBusy(payload); err != nil {
					g.countBadReport()
				} else {
					g.mu.Lock()
					g.stats.BusyRejects++
					g.mu.Unlock()
				}
				release()
			case backhaul.MsgBye:
				return
			default:
				g.countBadReport()
			}
		}
	}()
	var seq uint64
	ship := func(res Result) error {
		for _, seg := range res.Shipped {
			var n int
			var err error
			if version >= 2 {
				select {
				case tokens <- struct{}{}: // claim a window slot
				case <-done:
					return errors.New("gateway: connection closed while shipping")
				}
				n, err = conn.SendSegmentSeq(g.cfg.Codec, seq, seg)
				seq++
			} else {
				n, err = conn.SendSegment(g.cfg.Codec, seg)
			}
			if err != nil {
				return err
			}
			g.mu.Lock()
			g.stats.WireBytes += n
			g.mu.Unlock()
		}
		return nil
	}
	for capture := range captures {
		if err := ship(g.Process(capture)); err != nil {
			return err
		}
	}
	if err := ship(g.Flush()); err != nil {
		return err
	}
	if err := conn.SendBye(); err != nil {
		return err
	}
	<-done
	return nil
}
