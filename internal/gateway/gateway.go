// Package gateway implements the GalioT gateway runtime: the pipeline that
// takes front-end captures through universal-preamble detection, attempts
// cheap edge decoding for uncollided packets, and ships everything it
// cannot resolve locally to the cloud over the backhaul protocol
// (paper Sec. 3-4, including the "Edge vs. the Cloud" policy: I/Q samples
// are decoded at the edge assuming no collision, and shipped only when
// that fails).
package gateway

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/backhaul"
	"repro/internal/cancel"
	"repro/internal/detect"
	"repro/internal/frontend"
	"repro/internal/obs"
	"repro/internal/phy"
)

// DefaultWindow is how many shipped segments Run keeps in flight
// unacknowledged on a v2 session before blocking.
const DefaultWindow = 8

// Config assembles a gateway.
type Config struct {
	ID         string           // gateway identifier for the hello handshake
	Techs      []phy.Technology // technologies to detect and decode
	Frontend   *frontend.Receiver
	Detector   detect.Detector // nil: universal-preamble detector at threshold 0.08
	EdgeDecode bool            // try single-technology decode locally first
	Codec      backhaul.SegmentCodec
	// Protocol pins the backhaul version Run offers in its hello
	// (default: backhaul.Version). Set 1 to speak the legacy strict
	// request/reply protocol.
	Protocol int
	// Window bounds the unacknowledged segments Run pipelines on a v2
	// session (default DefaultWindow). The cloud's hello ack may shrink it.
	Window int
	// Obs receives the gateway's metrics (gateway_*, detect_* and
	// backhaul_* series). Nil creates a private registry; Stats reads from
	// it either way.
	Obs *obs.Registry
	// Tracer enables per-segment trace spans (detect, edge decode, window
	// wait, encode+ship stages). Nil disables tracing at the cost of one
	// branch per stage.
	Tracer *obs.Tracer
	// Journal records resilience state transitions (session establish/die,
	// redial backoff, degraded-mode enter/exit, busy-reject bursts) for
	// /events/recent and fault dumps. Nil disables event recording.
	Journal *obs.Journal
	// Health receives the gateway's health checks when RunResilient starts:
	// gateway_backhaul_connected (liveness) and gateway_spool_headroom
	// (readiness). Nil skips registration.
	Health *obs.Health
}

// Stats counts what a gateway did. It is assembled on demand from the
// gateway's metric registry (the gateway_* counters), kept as a struct for
// callers and log lines that predate the registry.
type Stats struct {
	CapturesProcessed int
	Detections        int
	SegmentsShipped   int
	SegmentsResolved  int // resolved at the edge, not shipped
	EdgeFrames        int
	BadReports        int // cloud replies the gateway could not parse
	BusyRejects       int // segments the cloud rejected with a busy message
	WireBytes         int // backhaul bytes actually sent
	RawBytes          int // what streaming every capture raw (cu8) would have cost
}

// metrics is the gateway's registry-backed counter set; one atomic add per
// event, no lock (the registry lock is only taken at wiring time).
type metrics struct {
	captures    *obs.Counter
	detections  *obs.Counter
	shipped     *obs.Counter
	resolved    *obs.Counter
	edgeFrames  *obs.Counter
	badReports  *obs.Counter
	busyRejects *obs.Counter
	wireBytes   *obs.Counter
	rawBytes    *obs.Counter
	techFrames  map[string]*obs.Counter // per-technology edge frames, read-only after wiring
}

func newMetrics(reg *obs.Registry, techs []phy.Technology) metrics {
	m := metrics{
		captures:    reg.Counter("gateway_captures_processed_total"),
		detections:  reg.Counter("gateway_segments_detected_total"),
		shipped:     reg.Counter("gateway_segments_shipped_total"),
		resolved:    reg.Counter("gateway_segments_resolved_total"),
		edgeFrames:  reg.Counter("gateway_edge_frames_total"),
		badReports:  reg.Counter("gateway_bad_reports_total"),
		busyRejects: reg.Counter("gateway_busy_rejects_total"),
		wireBytes:   reg.Counter("gateway_wire_bytes_total"),
		rawBytes:    reg.Counter("gateway_raw_bytes_total"),
		techFrames:  make(map[string]*obs.Counter, len(techs)),
	}
	for _, t := range techs {
		name := t.Name()
		m.techFrames[name] = reg.Counter("gateway_frames_" + obs.SanitizeToken(name) + "_total")
	}
	return m
}

// Gateway runs the detection/edge/ship pipeline. Captures are fed through
// a streaming detector, so packets that straddle capture boundaries are
// detected once enough samples have arrived; call Flush when the stream
// ends to drain segments still held back at the buffer tail.
type Gateway struct {
	cfg       Config
	det       detect.Detector
	stream    *detect.Stream
	edge      *cancel.Decoder
	maxPacket int

	reg    *obs.Registry
	m      metrics
	tracer *obs.Tracer
	idHash uint64 // SiteID(cfg.ID), the minting key for wire trace IDs
	// traceSalt folds the session epoch into trace minting (set by
	// RunResilient before the capture feeder starts). Restarted gateways
	// restart their absolute sample clock, so without the salt a fresh
	// segment could mint the trace ID a previous incarnation used for a
	// different segment at the same Start. WAL-recovered segments never
	// re-mint — their journaled trace ID rides in Segment.Trace — so
	// replay identity still holds across the salt change.
	traceSalt uint64
}

// New builds a gateway. The default detector is the universal-preamble
// correlator over cfg.Techs.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Techs) == 0 {
		return nil, errors.New("gateway: no technologies configured")
	}
	if cfg.Frontend == nil {
		cfg.Frontend = frontend.Ideal(1e6)
	}
	if cfg.ID == "" {
		cfg.ID = "galiot-gw"
	}
	if cfg.Codec.Format == 0 && !cfg.Codec.Compress {
		cfg.Codec = backhaul.DefaultCodec
	}
	fs := cfg.Frontend.SampleRate()
	det := cfg.Detector
	if det == nil {
		var err error
		det, err = detect.NewUniversal(cfg.Techs, fs, 0.08)
		if err != nil {
			return nil, fmt.Errorf("gateway: %w", err)
		}
	}
	maxPacket := 0
	for _, t := range cfg.Techs {
		if n := t.MaxPacketSamples(fs); n > maxPacket {
			maxPacket = n
		}
	}
	// Edge decoding assumes no collision: single pass, no kill filters.
	edge := cancel.NewSIC(cfg.Techs, fs)
	edge.MaxRounds = 1
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	stream := detect.NewStream(det, maxPacket)
	stream.SetMetrics(detect.NewStreamMetrics(reg))
	return &Gateway{
		cfg:       cfg,
		det:       det,
		stream:    stream,
		edge:      edge,
		maxPacket: maxPacket,
		reg:       reg,
		m:         newMetrics(reg, cfg.Techs),
		tracer:    cfg.Tracer,
		idHash:    obs.SiteID(cfg.ID),
	}, nil
}

// Registry exposes the gateway's metric registry (Config.Obs, or the
// private one), for the obs HTTP server and shutdown dumps.
func (g *Gateway) Registry() *obs.Registry { return g.reg }

// SampleRate returns the gateway's front-end sample rate.
func (g *Gateway) SampleRate() float64 { return g.cfg.Frontend.SampleRate() }

// Stats returns a snapshot of the gateway's counters, reconstructed from
// the metric registry (the registry is the single source of truth).
func (g *Gateway) Stats() Stats {
	return Stats{
		CapturesProcessed: int(g.m.captures.Value()),
		Detections:        int(g.m.detections.Value()),
		SegmentsShipped:   int(g.m.shipped.Value()),
		SegmentsResolved:  int(g.m.resolved.Value()),
		EdgeFrames:        int(g.m.edgeFrames.Value()),
		BadReports:        int(g.m.badReports.Value()),
		BusyRejects:       int(g.m.busyRejects.Value()),
		WireBytes:         int(g.m.wireBytes.Value()),
		RawBytes:          int(g.m.rawBytes.Value()),
	}
}

// Result is the outcome of processing one capture.
type Result struct {
	EdgeFrames []*phy.Frame       // frames fully resolved at the edge
	Shipped    []backhaul.Segment // segments that need the cloud
	// Spans holds the open trace span of each Shipped segment (parallel to
	// Shipped; all nil when tracing is disabled). Run closes them as the
	// segments go out; callers driving Process directly may End or drop
	// them.
	Spans []*obs.Span
}

// Process runs one antenna capture through the pipeline: front-end
// impairments, streaming detection, optional edge decode, and returns what
// must be shipped. Offsets in the returned segments are absolute
// (monotonic across captures). Segments near the end of the buffered
// stream are withheld until the next Process or Flush call, because the
// packets they cover may continue into samples not yet received.
func (g *Gateway) Process(antenna []complex128) Result {
	rx := g.cfg.Frontend.Capture(antenna)
	g.m.captures.Inc()
	g.m.rawBytes.Add(uint64(2 * len(rx))) // cu8 raw stream cost
	t0 := g.tracer.Now()
	segments := g.stream.Push(rx)
	return g.handle(segments, g.tracer.Now()-t0)
}

// Flush drains segments still held in the streaming detector. Call once
// when no more captures will arrive.
func (g *Gateway) Flush() Result {
	t0 := g.tracer.Now()
	segments := g.stream.Flush()
	return g.handle(segments, g.tracer.Now()-t0)
}

// handle routes completed segments through edge decode or shipping. Each
// segment opens a trace span whose trace ID is minted here, at detect
// time, from the gateway's ID hash, the session epoch salt and the
// segment's absolute start sample (obs.MintTraceID) — deterministic
// within a process lifetime, distinct across restarts. A WAL-recovered
// segment keeps the identity it was journaled with. Spans of edge-resolved
// segments end here; spans of shipped segments travel with Result, and
// the segment carries the trace ID plus this span's ID as its wire trace
// context. detectDur is the detection cost of the capture that completed
// these segments (charged to every segment it produced — detection is a
// per-capture pass, not per-segment).
func (g *Gateway) handle(segments []detect.StreamSegment, detectDur int64) Result {
	fs := g.cfg.Frontend.SampleRate()
	var res Result
	for _, seg := range segments {
		sp := g.tracer.Start("gateway-segment", obs.MintTraceID(g.idHash^g.traceSalt, seg.Start))
		sp.Stage("detect", detectDur, float64(len(seg.Samples)))
		if g.cfg.EdgeDecode {
			tEdge := sp.Now()
			frames, _ := g.edge.DecodeTraced(seg.Samples, sp)
			sp.Stage("edge_decode", sp.Now()-tEdge, float64(len(frames)))
			if len(frames) == 1 && frames[0].CRCOK && !g.likelyCollision(seg.Samples, frames[0]) {
				for _, f := range frames {
					f.Offset += int(seg.Start)
					if c, ok := g.m.techFrames[f.Tech]; ok {
						c.Inc()
					}
				}
				res.EdgeFrames = append(res.EdgeFrames, frames...)
				g.m.edgeFrames.Add(uint64(len(frames)))
				g.m.resolved.Inc()
				sp.End()
				continue
			}
		}
		res.Shipped = append(res.Shipped, backhaul.Segment{
			Start:      seg.Start,
			SampleRate: fs,
			Samples:    seg.Samples,
			Trace:      sp.TraceID(),
			Parent:     sp.SpanID(),
		})
		res.Spans = append(res.Spans, sp)
	}
	g.m.detections.Add(uint64(len(segments)))
	g.m.shipped.Add(uint64(len(res.Shipped)))
	return res
}

// scaleWindow applies the cloud's hello-ack capacity advice to the shipping
// window. An auto-sized window (Config.Window unset) grows with the decode
// plane: a sharded cloud serves each session from one shard but spreads the
// fleet over all of them, so a gateway can keep DefaultWindow segments in
// flight per advertised shard. The landing shard's own admission bound
// (ack.Window) then caps the result either way — pipelining past what the
// shard will queue only buys busy rejects. A caller-pinned window is never
// grown, only shrunk by the shard bound.
func scaleWindow(auto bool, window int, ack backhaul.HelloAck) int {
	if auto && ack.Shards > 1 {
		if w := DefaultWindow * ack.Shards; w > window {
			window = w
		}
	}
	if ack.Window > 0 && ack.Window < window {
		window = ack.Window
	}
	return window
}

// likelyCollision reports whether a segment still contains significant
// structure after the edge decode, meaning more transmissions may be
// hiding; such segments go to the cloud despite the local success.
func (g *Gateway) likelyCollision(samples []complex128, decoded *phy.Frame) bool {
	// The decoded frame's own preamble is expected to correlate; any other
	// technology above threshold indicates a cross-technology collision the
	// edge (single-pass, no kill filters) should not trust itself with.
	for _, cand := range g.edge.Classify(samples) {
		if cand.Tech.Name() == decoded.Tech {
			continue
		}
		if cand.Score > 0.15 {
			return true
		}
	}
	return false
}

// countBadReport records a cloud reply the gateway could not parse, so
// malformed traffic shows up in Stats instead of being silently discarded.
func (g *Gateway) countBadReport() { g.m.badReports.Inc() }

// Run drives a session over a backhaul connection: hello (with version
// negotiation), then the shipped segments of each capture delivered on
// captures, then bye. On a v2 session shipping is pipelined: up to
// Config.Window sequence-numbered segments stay in flight unacknowledged,
// and each cloud reply — a frames report or an explicit busy reject —
// frees a window slot. Decode reports arriving from the cloud are
// delivered to the reports callback (may be nil).
func (g *Gateway) Run(rw io.ReadWriter, captures <-chan []complex128, reports func(backhaul.FramesReport)) error {
	conn := backhaul.NewConn(rw)
	conn.SetMetrics(backhaul.NewConnMetrics(g.reg))
	version := g.cfg.Protocol
	if version == 0 {
		version = backhaul.Version
	}
	techs := make([]string, 0, len(g.cfg.Techs))
	for _, t := range g.cfg.Techs {
		techs = append(techs, t.Name())
	}
	if err := conn.SendHello(backhaul.Hello{
		Version:    version,
		GatewayID:  g.cfg.ID,
		SampleRate: g.cfg.Frontend.SampleRate(),
		Techs:      techs,
	}); err != nil {
		return err
	}
	auto := g.cfg.Window <= 0
	window := g.cfg.Window
	if auto {
		window = DefaultWindow
	}
	negotiated := version
	if version >= 2 {
		// The hello ack closes negotiation; the cloud may shrink the window
		// to what its admission queue is willing to hold, and its version is
		// the one the session actually speaks — a v2 cloud answering a v3
		// hello pins the session to v2, which gates the trace extension off.
		typ, payload, err := conn.ReadMessage()
		if err != nil {
			return err
		}
		if typ != backhaul.MsgHelloAck {
			return fmt.Errorf("gateway: expected hello ack, got message type %d", typ)
		}
		ack, err := backhaul.ParseHelloAck(payload)
		if err != nil {
			return fmt.Errorf("gateway: bad hello ack: %w", err)
		}
		if ack.Version > 0 && ack.Version < negotiated {
			negotiated = ack.Version
		}
		window = scaleWindow(auto, window, ack)
	}
	// Reader side: collect decode reports and busy rejects until the bye
	// ack. On v2 sessions every reply returns one window token.
	done := make(chan struct{})
	tokens := make(chan struct{}, window)
	release := func() {
		select {
		case <-tokens:
		default: // spurious reply with nothing in flight
		}
	}
	go func() {
		defer close(done)
		for {
			typ, payload, err := conn.ReadMessage()
			if err != nil {
				return
			}
			switch typ {
			case backhaul.MsgFrames:
				if r, err := backhaul.ParseFrames(payload); err != nil {
					g.countBadReport()
				} else if reports != nil {
					reports(r)
				}
				release()
			case backhaul.MsgBusy:
				if _, err := backhaul.ParseBusy(payload); err != nil {
					g.countBadReport()
				} else {
					g.m.busyRejects.Inc()
				}
				release()
			case backhaul.MsgBye:
				return
			default:
				g.countBadReport()
			}
		}
	}()
	var seq uint64
	ship := func(res Result) error {
		for i, seg := range res.Shipped {
			var sp *obs.Span
			if i < len(res.Spans) {
				sp = res.Spans[i]
			}
			if negotiated < 3 {
				// Pre-v3 peers reject the trace flag bit; strip the context
				// (seg is a loop copy, the queued segment keeps its identity).
				seg.Trace, seg.Parent = 0, 0
			}
			var n int
			var err error
			if version >= 2 {
				tWait := sp.Now()
				select {
				case tokens <- struct{}{}: // claim a window slot
				case <-done:
					return errors.New("gateway: connection closed while shipping")
				}
				sp.Stage("ship_wait", sp.Now()-tWait, float64(len(tokens)))
				tShip := sp.Now()
				n, err = conn.SendSegmentSeq(g.cfg.Codec, seq, seg)
				sp.Stage("encode_ship", sp.Now()-tShip, float64(n))
				seq++
			} else {
				tShip := sp.Now()
				n, err = conn.SendSegment(g.cfg.Codec, seg)
				sp.Stage("encode_ship", sp.Now()-tShip, float64(n))
			}
			sp.End()
			if err != nil {
				return err
			}
			g.m.wireBytes.Add(uint64(n))
		}
		return nil
	}
	for capture := range captures {
		if err := ship(g.Process(capture)); err != nil {
			return err
		}
	}
	if err := ship(g.Flush()); err != nil {
		return err
	}
	if err := conn.SendBye(); err != nil {
		return err
	}
	<-done
	return nil
}
