package gateway

import (
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/backhaul"
	"repro/internal/cloud"
	"repro/internal/farm"
	"repro/internal/faults"
	"repro/internal/frontend"
)

// chaosRun drives RunResilient over chaosSegments captures against a fresh
// farm-backed cloud, wrapping each dialed connection with the fault
// schedule (nil = fault-free control). It returns the gateway, the cloud
// service, and the reports the gateway delivered.
const chaosSegments = 8

func chaosRun(t *testing.T, sched *faults.Schedule, epoch uint64) (*Gateway, *cloud.Service, []backhaul.FramesReport) {
	t.Helper()
	ts := resTechs()
	g, err := New(Config{Techs: ts, Frontend: frontend.Ideal(fs), Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	svc := cloud.NewService(ts)
	svc.StartFarm(farm.Config{Workers: 2, QueueDepth: 8})
	defer svc.Close()

	captures := make(chan []complex128, chaosSegments)
	for i := 0; i < chaosSegments; i++ {
		tech := ts[i%len(ts)]
		captures <- techCapture(t, tech, uint64(90+i), []byte(fmt.Sprintf("chaos packet %d", i)))
	}
	close(captures)

	dials := 0
	dial := func() (io.ReadWriteCloser, error) {
		a, b := net.Pipe()
		go func() {
			// Session errors are expected on faulted connections; the
			// assertions below check the decode ledger instead.
			//lint:ignore errdrop faulted sessions fail by design, the decode counters are the contract
			_ = svc.ServeConn(b)
		}()
		var rwc io.ReadWriteCloser = a
		if sched != nil {
			rwc = sched.Wrap(dials, a)
		}
		dials++
		return rwc, nil
	}

	var mu sync.Mutex
	var reports []backhaul.FramesReport
	err = g.RunResilient(Resilient{
		Dial:  dial,
		Retry: resiliencePolicy(time.Millisecond),
		Epoch: epoch,
	}, captures, func(r backhaul.FramesReport) {
		mu.Lock()
		reports = append(reports, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, svc, reports
}

// payloadSet flattens the CRC-clean frame payloads of a run, sorted.
func payloadSet(reports []backhaul.FramesReport) []string {
	var out []string
	for _, r := range reports {
		for _, f := range r.Frames {
			if f.CRCOK {
				out = append(out, string(f.Payload))
			}
		}
	}
	sort.Strings(out)
	return out
}

// TestChaosSoak runs the full resilient gateway↔cloud pipeline twice over
// identical traffic: once fault-free, once through a seeded fault injector
// that corrupts and kills the backhaul mid-frame on six consecutive
// connections. The chaos run must recover every packet the control run
// recovered, reconnect exactly as many times as the schedule kills, drop
// nothing, and get every segment decoded exactly once by the cloud.
func TestChaosSoak(t *testing.T) {
	// Control: no faults — zero reconnects, zero drops, every segment
	// decoded exactly once.
	g0, svc0, rep0 := chaosRun(t, nil, 3)
	if got := counter(t, g0, "gateway_reconnects_total"); got != 0 {
		t.Fatalf("control reconnects = %d, want 0", got)
	}
	if got := counter(t, g0, "gateway_spool_dropped_total"); got != 0 {
		t.Fatalf("control drops = %d, want 0", got)
	}
	if got := counter(t, g0, "gateway_dial_attempts_total"); got != 1 {
		t.Fatalf("control dials = %d, want 1", got)
	}
	if got := svc0.Registry().Counter("cloud_segments_decoded_total").Value(); got != chaosSegments {
		t.Fatalf("control cloud decodes = %d, want %d", got, chaosSegments)
	}
	control := payloadSet(rep0)
	if len(control) != chaosSegments {
		t.Fatalf("control recovered %d packets, want %d: %v", len(control), chaosSegments, control)
	}

	// Chaos: six consecutive connections die mid-frame (one corrupted
	// first), starting past the hello so every session establishes.
	sched := faults.GenSchedule(11, 6, 600, 3000)
	if sched.Faulty() != 6 {
		t.Fatalf("schedule kills %d connections, want 6", sched.Faulty())
	}
	g1, svc1, rep1 := chaosRun(t, &sched, 4)

	if got, want := counter(t, g1, "gateway_reconnects_total"), uint64(sched.Faulty()); got != want {
		t.Fatalf("chaos reconnects = %d, want %d (one per scheduled kill)", got, want)
	}
	if got := counter(t, g1, "gateway_spool_dropped_total"); got != 0 {
		t.Fatalf("chaos drops = %d, want 0", got)
	}
	if got := counter(t, g1, "gateway_dial_attempts_total"); got != uint64(sched.Faulty()+1) {
		t.Fatalf("chaos dials = %d, want %d", got, sched.Faulty()+1)
	}
	// Every faulted session dies during its first segment write, so the
	// oldest segment finally ships on the clean session — one replay.
	if got := counter(t, g1, "gateway_replayed_segments_total"); got != 1 {
		t.Fatalf("chaos replays = %d, want 1", got)
	}
	// Exactly-once decode: the cloud decoded each segment once, and the
	// dedup cache never had to answer (no segment survived a faulted
	// connection intact).
	if got := svc1.Registry().Counter("cloud_segments_decoded_total").Value(); got != chaosSegments {
		t.Fatalf("chaos cloud decodes = %d, want %d", got, chaosSegments)
	}
	chaos := payloadSet(rep1)
	if len(chaos) != len(control) {
		t.Fatalf("chaos recovered %d packets, control %d", len(chaos), len(control))
	}
	for i := range control {
		if chaos[i] != control[i] {
			t.Fatalf("chaos run lost packets:\nchaos   %v\ncontrol %v", chaos, control)
		}
	}
	if st := g1.Stats(); st.SegmentsShipped != chaosSegments {
		t.Fatalf("chaos shipped = %d, want %d", st.SegmentsShipped, chaosSegments)
	}
}
