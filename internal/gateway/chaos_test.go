package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backhaul"
	"repro/internal/cloud"
	"repro/internal/farm"
	"repro/internal/faults"
	"repro/internal/frontend"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// chaosRun drives RunResilient over chaosSegments captures against a fresh
// farm-backed cloud, wrapping each dialed connection with the fault
// schedule (nil = fault-free control). It returns the gateway, the cloud
// service, and the reports the gateway delivered.
const chaosSegments = 8

// chaosTracers wires a gateway-side and a cloud-side tracer (distinct
// sites, as two processes would have) into one shared trace store — the
// same assembly galiot-fleet does across real process boundaries.
func chaosTracers(store *obs.TraceStore, gwSite string) (*obs.Tracer, *obs.Tracer) {
	gw := obs.NewTracer(0)
	gw.SetSite(gwSite)
	gw.SetSink(store.Ingest)
	cl := obs.NewTracer(0)
	cl.SetSite("cloud")
	cl.SetSink(store.Ingest)
	return gw, cl
}

func chaosRun(t *testing.T, sched *faults.Schedule, epoch uint64, j *obs.Journal, store *obs.TraceStore) (*Gateway, *cloud.Service, []backhaul.FramesReport) {
	t.Helper()
	ts := resTechs()
	gwTracer, cloudTracer := chaosTracers(store, "gateway")
	g, err := New(Config{Techs: ts, Frontend: frontend.Ideal(fs), Window: 4, Journal: j, Tracer: gwTracer})
	if err != nil {
		t.Fatal(err)
	}
	svc := cloud.NewService(ts)
	svc.UseObs(nil, cloudTracer)
	svc.StartFarm(farm.Config{Workers: 2, QueueDepth: 8})
	defer svc.Close()

	captures := make(chan []complex128, chaosSegments)
	for i := 0; i < chaosSegments; i++ {
		tech := ts[i%len(ts)]
		captures <- techCapture(t, tech, uint64(90+i), []byte(fmt.Sprintf("chaos packet %d", i)))
	}
	close(captures)

	dials := 0
	dial := func() (io.ReadWriteCloser, error) {
		a, b := net.Pipe()
		go func() {
			// Session errors are expected on faulted connections; the
			// assertions below check the decode ledger instead.
			//lint:ignore errdrop faulted sessions fail by design, the decode counters are the contract
			_ = svc.ServeConn(b)
		}()
		var rwc io.ReadWriteCloser = a
		if sched != nil {
			rwc = sched.Wrap(dials, a)
		}
		dials++
		return rwc, nil
	}

	var mu sync.Mutex
	var reports []backhaul.FramesReport
	err = g.RunResilient(Resilient{
		Dial:  dial,
		Retry: resiliencePolicy(time.Millisecond),
		Epoch: epoch,
	}, captures, func(r backhaul.FramesReport) {
		mu.Lock()
		reports = append(reports, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, svc, reports
}

// traceLedger reduces an assembled trace store to the numbers the soaks
// assert on: how many traces were stitched across the gateway/cloud
// boundary, how many carry replay evidence, and whether any span's parent
// failed to assemble.
type traceLedger struct {
	traces     int // assembled traces in the store
	stitched   int // traces with both gateway-side and cloud-side spans
	replays    int // traces carrying a "replay" stage (in-session re-send)
	walReplays int // traces carrying a "wal_replay" stage (post-restart re-send)
	orphans    int // spans whose parent never assembled into their trace
	unparented int // cloud spans that arrived without a wire-propagated parent
}

func traceAudit(store *obs.TraceStore) traceLedger {
	var l traceLedger
	for _, tree := range store.Trees() {
		l.traces++
		l.orphans += tree.Orphans
		var gw, cl, replay, walReplay bool
		for _, sp := range tree.Spans {
			switch {
			case strings.HasPrefix(sp.Kind, "gateway"):
				gw = true
			case strings.HasPrefix(sp.Kind, "cloud"):
				cl = true
				if sp.Parent == 0 {
					l.unparented++
				}
			}
			for _, st := range sp.Stages {
				switch st.Name {
				case "replay":
					replay = true
				case "wal_replay":
					walReplay = true
				}
			}
		}
		if gw && cl {
			l.stitched++
		}
		if replay {
			l.replays++
		}
		if walReplay {
			l.walReplays++
		}
	}
	return l
}

// payloadSet flattens the CRC-clean frame payloads of a run, sorted.
func payloadSet(reports []backhaul.FramesReport) []string {
	var out []string
	for _, r := range reports {
		for _, f := range r.Frames {
			if f.CRCOK {
				out = append(out, string(f.Payload))
			}
		}
	}
	sort.Strings(out)
	return out
}

// TestChaosSoak runs the full resilient gateway↔cloud pipeline twice over
// identical traffic: once fault-free, once through a seeded fault injector
// that corrupts and kills the backhaul mid-frame on six consecutive
// connections. The chaos run must recover every packet the control run
// recovered, reconnect exactly as many times as the schedule kills, drop
// nothing, and get every segment decoded exactly once by the cloud.
func TestChaosSoak(t *testing.T) {
	// Control: no faults — zero reconnects, zero drops, every segment
	// decoded exactly once.
	j0 := obs.NewJournal(obs.DefaultJournalRing)
	store0 := obs.NewTraceStore(obs.TraceStoreConfig{SampleEvery: 1})
	g0, svc0, rep0 := chaosRun(t, nil, 3, j0, store0)
	if got := counter(t, g0, "gateway_reconnects_total"); got != 0 {
		t.Fatalf("control reconnects = %d, want 0", got)
	}
	if got := counter(t, g0, "gateway_spool_dropped_total"); got != 0 {
		t.Fatalf("control drops = %d, want 0", got)
	}
	if got := counter(t, g0, "gateway_dial_attempts_total"); got != 1 {
		t.Fatalf("control dials = %d, want 1", got)
	}
	if got := svc0.Registry().Counter("cloud_segments_decoded_total").Value(); got != chaosSegments {
		t.Fatalf("control cloud decodes = %d, want %d", got, chaosSegments)
	}
	control := payloadSet(rep0)
	if len(control) != chaosSegments {
		t.Fatalf("control recovered %d packets, want %d: %v", len(control), chaosSegments, control)
	}
	// The control journal is a single clean session: establish, nothing else.
	if evs := j0.Recent(); len(evs) != 1 || evs[0].Name != "gateway_session_establish" {
		t.Fatalf("control journal = %+v, want exactly one establish", evs)
	}
	// Trace continuity, fault-free: every decoded segment assembled into
	// one trace whose gateway and cloud spans share the wire-propagated
	// trace ID — no orphans, no replays, every cloud span parented from the
	// wire. The single session span forms its own (unstitched) trace.
	l0 := traceAudit(store0)
	if l0.stitched != chaosSegments {
		t.Fatalf("control stitched traces = %d, want %d", l0.stitched, chaosSegments)
	}
	if l0.traces != chaosSegments+1 {
		t.Fatalf("control traces = %d, want %d segments + 1 session", l0.traces, chaosSegments+1)
	}
	if l0.orphans != 0 || l0.unparented != 0 {
		t.Fatalf("control orphans = %d, unparented cloud spans = %d, want 0/0", l0.orphans, l0.unparented)
	}
	if l0.replays != 0 || l0.walReplays != 0 {
		t.Fatalf("control replay traces = %d/%d, want 0/0", l0.replays, l0.walReplays)
	}

	// Chaos: six consecutive connections die mid-frame (one corrupted
	// first), starting past the hello so every session establishes.
	sched := faults.GenSchedule(11, 6, 600, 3000)
	if sched.Faulty() != 6 {
		t.Fatalf("schedule kills %d connections, want 6", sched.Faulty())
	}
	j1 := obs.NewJournal(obs.DefaultJournalRing)
	store1 := obs.NewTraceStore(obs.TraceStoreConfig{SampleEvery: 1})
	g1, svc1, rep1 := chaosRun(t, &sched, 4, j1, store1)

	if got, want := counter(t, g1, "gateway_reconnects_total"), uint64(sched.Faulty()); got != want {
		t.Fatalf("chaos reconnects = %d, want %d (one per scheduled kill)", got, want)
	}
	if got := counter(t, g1, "gateway_spool_dropped_total"); got != 0 {
		t.Fatalf("chaos drops = %d, want 0", got)
	}
	if got := counter(t, g1, "gateway_dial_attempts_total"); got != uint64(sched.Faulty()+1) {
		t.Fatalf("chaos dials = %d, want %d", got, sched.Faulty()+1)
	}
	// Every faulted session dies during its first segment write, so the
	// oldest segment finally ships on the clean session — one replay.
	if got := counter(t, g1, "gateway_replayed_segments_total"); got != 1 {
		t.Fatalf("chaos replays = %d, want 1", got)
	}
	// Exactly-once decode: the cloud decoded each segment once, and the
	// dedup cache never had to answer (no segment survived a faulted
	// connection intact).
	if got := svc1.Registry().Counter("cloud_segments_decoded_total").Value(); got != chaosSegments {
		t.Fatalf("chaos cloud decodes = %d, want %d", got, chaosSegments)
	}
	chaos := payloadSet(rep1)
	if len(chaos) != len(control) {
		t.Fatalf("chaos recovered %d packets, control %d", len(chaos), len(control))
	}
	for i := range control {
		if chaos[i] != control[i] {
			t.Fatalf("chaos run lost packets:\nchaos   %v\ncontrol %v", chaos, control)
		}
	}
	if st := g1.Stats(); st.SegmentsShipped != chaosSegments {
		t.Fatalf("chaos shipped = %d, want %d", st.SegmentsShipped, chaosSegments)
	}

	// Trace continuity under faults: the kills cost no trace identity.
	// Every decoded segment still assembles into one gateway+cloud trace,
	// the one replayed segment carries its replay stage on the SAME trace
	// it was detected on (the wire re-propagated the original context),
	// and no span anywhere lost its parent. Each of the seven sessions
	// contributes its own session-only trace.
	l1 := traceAudit(store1)
	if l1.stitched != chaosSegments {
		t.Fatalf("chaos stitched traces = %d, want %d", l1.stitched, chaosSegments)
	}
	if want := chaosSegments + sched.Faulty() + 1; l1.traces != want {
		t.Fatalf("chaos traces = %d, want %d segments + %d sessions", l1.traces, want, sched.Faulty()+1)
	}
	if l1.orphans != 0 || l1.unparented != 0 {
		t.Fatalf("chaos orphans = %d, unparented cloud spans = %d, want 0/0", l1.orphans, l1.unparented)
	}
	if l1.replays != 1 {
		t.Fatalf("chaos replay traces = %d, want 1 (the re-shipped oldest segment)", l1.replays)
	}
	if l1.walReplays != 0 {
		t.Fatalf("chaos wal_replay traces = %d, want 0 (no WAL in this soak)", l1.walReplays)
	}

	// The event journal is fully deterministic for this schedule: the first
	// session establishes, each of the six kills appends die+backoff+establish
	// (RunResilient's single control flow orders them strictly), and the
	// clean seventh session ends the run without dying. Assert the exact
	// sequence as served by /events/recent — the same bytes an operator or
	// the fault dump would see.
	events := fetchEvents(t, j1)
	want := []string{"gateway_session_establish"}
	for i := 0; i < sched.Faulty(); i++ {
		want = append(want, "gateway_session_die", "gateway_redial_backoff", "gateway_session_establish")
	}
	if len(events) != len(want) {
		t.Fatalf("/events/recent returned %d events, want %d:\n%+v", len(events), len(want), events)
	}
	for i, e := range events {
		if e.Name != want[i] {
			t.Fatalf("event %d = %q, want %q (full: %+v)", i, e.Name, want[i], events)
		}
		if e.Count != 1 {
			t.Fatalf("event %d (%s) coalesced count = %d, want 1", i, e.Name, e.Count)
		}
		if e.Seq != uint64(i) {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, i)
		}
	}
}

// fetchEvents serves j on a real obs endpoint and fetches /events/recent,
// so the assertion covers the HTTP surface, not just the in-process ring.
func fetchEvents(t *testing.T, j *obs.Journal) []obs.Event {
	t.Helper()
	srv := &obs.Server{Journal: j}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("obs server close: %v", err)
		}
	}()
	resp, err := http.Get("http://" + srv.Addr().String() + "/events/recent")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/events/recent status = %d", resp.StatusCode)
	}
	var events []obs.Event
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestHealthzFlipsAcrossOutage drives /healthz through an induced backhaul
// outage: while every dial fails the gateway_backhaul_connected check
// reports unhealthy (503), and once the outage lifts and the session
// re-establishes the endpoint recovers to 200.
func TestHealthzFlipsAcrossOutage(t *testing.T) {
	ts := resTechs()
	h := obs.NewHealth()
	g, err := New(Config{Techs: ts, Frontend: frontend.Ideal(fs), Window: 4, Health: h})
	if err != nil {
		t.Fatal(err)
	}
	svc := cloud.NewService(ts)
	svc.StartFarm(farm.Config{Workers: 1, QueueDepth: 8})
	defer svc.Close()

	srv := &obs.Server{Health: h}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("obs server close: %v", err)
		}
	}()
	healthz := "http://" + srv.Addr().String() + "/healthz"

	var outage atomic.Bool
	outage.Store(true)
	dial := func() (io.ReadWriteCloser, error) {
		if outage.Load() {
			return nil, fmt.Errorf("induced outage")
		}
		a, b := net.Pipe()
		go func() {
			//lint:ignore errdrop the session ends when the test closes captures; its error is not the contract here
			_ = svc.ServeConn(b)
		}()
		return a, nil
	}

	captures := make(chan []complex128)
	done := make(chan error, 1)
	go func() {
		done <- g.RunResilient(Resilient{
			Dial: dial,
			// A deep consecutive-attempt budget: the outage must outlast
			// however long the status poll below takes, never the budget.
			Retry: resilience.RetryPolicy{MaxAttempts: 1 << 20, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 1},
			Epoch: 9,
		}, captures, nil)
	}()

	// Poll until the registered check reports the outage...
	waitStatus(t, healthz, http.StatusServiceUnavailable)
	// ...lift it, and the next successful hello must flip the check back.
	outage.Store(false)
	waitStatus(t, healthz, http.StatusOK)

	close(captures)
	if err := <-done; err != nil {
		t.Fatalf("RunResilient: %v", err)
	}
}

// waitStatus polls url until it answers with the wanted status code.
func waitStatus(t *testing.T, url string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == want {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s never reached status %d", url, want)
}
