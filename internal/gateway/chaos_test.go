package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backhaul"
	"repro/internal/cloud"
	"repro/internal/farm"
	"repro/internal/faults"
	"repro/internal/frontend"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// chaosRun drives RunResilient over chaosSegments captures against a fresh
// farm-backed cloud, wrapping each dialed connection with the fault
// schedule (nil = fault-free control). It returns the gateway, the cloud
// service, and the reports the gateway delivered.
const chaosSegments = 8

func chaosRun(t *testing.T, sched *faults.Schedule, epoch uint64, j *obs.Journal) (*Gateway, *cloud.Service, []backhaul.FramesReport) {
	t.Helper()
	ts := resTechs()
	g, err := New(Config{Techs: ts, Frontend: frontend.Ideal(fs), Window: 4, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	svc := cloud.NewService(ts)
	svc.StartFarm(farm.Config{Workers: 2, QueueDepth: 8})
	defer svc.Close()

	captures := make(chan []complex128, chaosSegments)
	for i := 0; i < chaosSegments; i++ {
		tech := ts[i%len(ts)]
		captures <- techCapture(t, tech, uint64(90+i), []byte(fmt.Sprintf("chaos packet %d", i)))
	}
	close(captures)

	dials := 0
	dial := func() (io.ReadWriteCloser, error) {
		a, b := net.Pipe()
		go func() {
			// Session errors are expected on faulted connections; the
			// assertions below check the decode ledger instead.
			//lint:ignore errdrop faulted sessions fail by design, the decode counters are the contract
			_ = svc.ServeConn(b)
		}()
		var rwc io.ReadWriteCloser = a
		if sched != nil {
			rwc = sched.Wrap(dials, a)
		}
		dials++
		return rwc, nil
	}

	var mu sync.Mutex
	var reports []backhaul.FramesReport
	err = g.RunResilient(Resilient{
		Dial:  dial,
		Retry: resiliencePolicy(time.Millisecond),
		Epoch: epoch,
	}, captures, func(r backhaul.FramesReport) {
		mu.Lock()
		reports = append(reports, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, svc, reports
}

// payloadSet flattens the CRC-clean frame payloads of a run, sorted.
func payloadSet(reports []backhaul.FramesReport) []string {
	var out []string
	for _, r := range reports {
		for _, f := range r.Frames {
			if f.CRCOK {
				out = append(out, string(f.Payload))
			}
		}
	}
	sort.Strings(out)
	return out
}

// TestChaosSoak runs the full resilient gateway↔cloud pipeline twice over
// identical traffic: once fault-free, once through a seeded fault injector
// that corrupts and kills the backhaul mid-frame on six consecutive
// connections. The chaos run must recover every packet the control run
// recovered, reconnect exactly as many times as the schedule kills, drop
// nothing, and get every segment decoded exactly once by the cloud.
func TestChaosSoak(t *testing.T) {
	// Control: no faults — zero reconnects, zero drops, every segment
	// decoded exactly once.
	j0 := obs.NewJournal(obs.DefaultJournalRing)
	g0, svc0, rep0 := chaosRun(t, nil, 3, j0)
	if got := counter(t, g0, "gateway_reconnects_total"); got != 0 {
		t.Fatalf("control reconnects = %d, want 0", got)
	}
	if got := counter(t, g0, "gateway_spool_dropped_total"); got != 0 {
		t.Fatalf("control drops = %d, want 0", got)
	}
	if got := counter(t, g0, "gateway_dial_attempts_total"); got != 1 {
		t.Fatalf("control dials = %d, want 1", got)
	}
	if got := svc0.Registry().Counter("cloud_segments_decoded_total").Value(); got != chaosSegments {
		t.Fatalf("control cloud decodes = %d, want %d", got, chaosSegments)
	}
	control := payloadSet(rep0)
	if len(control) != chaosSegments {
		t.Fatalf("control recovered %d packets, want %d: %v", len(control), chaosSegments, control)
	}
	// The control journal is a single clean session: establish, nothing else.
	if evs := j0.Recent(); len(evs) != 1 || evs[0].Name != "gateway_session_establish" {
		t.Fatalf("control journal = %+v, want exactly one establish", evs)
	}

	// Chaos: six consecutive connections die mid-frame (one corrupted
	// first), starting past the hello so every session establishes.
	sched := faults.GenSchedule(11, 6, 600, 3000)
	if sched.Faulty() != 6 {
		t.Fatalf("schedule kills %d connections, want 6", sched.Faulty())
	}
	j1 := obs.NewJournal(obs.DefaultJournalRing)
	g1, svc1, rep1 := chaosRun(t, &sched, 4, j1)

	if got, want := counter(t, g1, "gateway_reconnects_total"), uint64(sched.Faulty()); got != want {
		t.Fatalf("chaos reconnects = %d, want %d (one per scheduled kill)", got, want)
	}
	if got := counter(t, g1, "gateway_spool_dropped_total"); got != 0 {
		t.Fatalf("chaos drops = %d, want 0", got)
	}
	if got := counter(t, g1, "gateway_dial_attempts_total"); got != uint64(sched.Faulty()+1) {
		t.Fatalf("chaos dials = %d, want %d", got, sched.Faulty()+1)
	}
	// Every faulted session dies during its first segment write, so the
	// oldest segment finally ships on the clean session — one replay.
	if got := counter(t, g1, "gateway_replayed_segments_total"); got != 1 {
		t.Fatalf("chaos replays = %d, want 1", got)
	}
	// Exactly-once decode: the cloud decoded each segment once, and the
	// dedup cache never had to answer (no segment survived a faulted
	// connection intact).
	if got := svc1.Registry().Counter("cloud_segments_decoded_total").Value(); got != chaosSegments {
		t.Fatalf("chaos cloud decodes = %d, want %d", got, chaosSegments)
	}
	chaos := payloadSet(rep1)
	if len(chaos) != len(control) {
		t.Fatalf("chaos recovered %d packets, control %d", len(chaos), len(control))
	}
	for i := range control {
		if chaos[i] != control[i] {
			t.Fatalf("chaos run lost packets:\nchaos   %v\ncontrol %v", chaos, control)
		}
	}
	if st := g1.Stats(); st.SegmentsShipped != chaosSegments {
		t.Fatalf("chaos shipped = %d, want %d", st.SegmentsShipped, chaosSegments)
	}

	// The event journal is fully deterministic for this schedule: the first
	// session establishes, each of the six kills appends die+backoff+establish
	// (RunResilient's single control flow orders them strictly), and the
	// clean seventh session ends the run without dying. Assert the exact
	// sequence as served by /events/recent — the same bytes an operator or
	// the fault dump would see.
	events := fetchEvents(t, j1)
	want := []string{"gateway_session_establish"}
	for i := 0; i < sched.Faulty(); i++ {
		want = append(want, "gateway_session_die", "gateway_redial_backoff", "gateway_session_establish")
	}
	if len(events) != len(want) {
		t.Fatalf("/events/recent returned %d events, want %d:\n%+v", len(events), len(want), events)
	}
	for i, e := range events {
		if e.Name != want[i] {
			t.Fatalf("event %d = %q, want %q (full: %+v)", i, e.Name, want[i], events)
		}
		if e.Count != 1 {
			t.Fatalf("event %d (%s) coalesced count = %d, want 1", i, e.Name, e.Count)
		}
		if e.Seq != uint64(i) {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, i)
		}
	}
}

// fetchEvents serves j on a real obs endpoint and fetches /events/recent,
// so the assertion covers the HTTP surface, not just the in-process ring.
func fetchEvents(t *testing.T, j *obs.Journal) []obs.Event {
	t.Helper()
	srv := &obs.Server{Journal: j}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("obs server close: %v", err)
		}
	}()
	resp, err := http.Get("http://" + srv.Addr().String() + "/events/recent")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/events/recent status = %d", resp.StatusCode)
	}
	var events []obs.Event
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestHealthzFlipsAcrossOutage drives /healthz through an induced backhaul
// outage: while every dial fails the gateway_backhaul_connected check
// reports unhealthy (503), and once the outage lifts and the session
// re-establishes the endpoint recovers to 200.
func TestHealthzFlipsAcrossOutage(t *testing.T) {
	ts := resTechs()
	h := obs.NewHealth()
	g, err := New(Config{Techs: ts, Frontend: frontend.Ideal(fs), Window: 4, Health: h})
	if err != nil {
		t.Fatal(err)
	}
	svc := cloud.NewService(ts)
	svc.StartFarm(farm.Config{Workers: 1, QueueDepth: 8})
	defer svc.Close()

	srv := &obs.Server{Health: h}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("obs server close: %v", err)
		}
	}()
	healthz := "http://" + srv.Addr().String() + "/healthz"

	var outage atomic.Bool
	outage.Store(true)
	dial := func() (io.ReadWriteCloser, error) {
		if outage.Load() {
			return nil, fmt.Errorf("induced outage")
		}
		a, b := net.Pipe()
		go func() {
			//lint:ignore errdrop the session ends when the test closes captures; its error is not the contract here
			_ = svc.ServeConn(b)
		}()
		return a, nil
	}

	captures := make(chan []complex128)
	done := make(chan error, 1)
	go func() {
		done <- g.RunResilient(Resilient{
			Dial: dial,
			// A deep consecutive-attempt budget: the outage must outlast
			// however long the status poll below takes, never the budget.
			Retry: resilience.RetryPolicy{MaxAttempts: 1 << 20, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 1},
			Epoch: 9,
		}, captures, nil)
	}()

	// Poll until the registered check reports the outage...
	waitStatus(t, healthz, http.StatusServiceUnavailable)
	// ...lift it, and the next successful hello must flip the check back.
	outage.Store(false)
	waitStatus(t, healthz, http.StatusOK)

	close(captures)
	if err := <-done; err != nil {
		t.Fatalf("RunResilient: %v", err)
	}
}

// waitStatus polls url until it answers with the wanted status code.
func waitStatus(t *testing.T, url string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == want {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s never reached status %d", url, want)
}
