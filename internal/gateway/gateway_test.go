package gateway

import (
	"bytes"
	"net"
	"testing"

	"repro/internal/backhaul"
	"repro/internal/channel"
	"repro/internal/cloud"
	"repro/internal/frontend"
	"repro/internal/phy"
	"repro/internal/phy/lora"
	"repro/internal/phy/xbee"
	"repro/internal/phy/zwave"
	"repro/internal/rng"
)

const fs = 1e6

func techs() []phy.Technology {
	return []phy.Technology{lora.Default(), xbee.Default(), zwave.Default()}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no technologies should error")
	}
	g, err := New(Config{Techs: techs()})
	if err != nil {
		t.Fatal(err)
	}
	if g.SampleRate() != 1e6 {
		t.Fatal("default sample rate")
	}
}

func TestProcessQuietCapture(t *testing.T) {
	g, err := New(Config{Techs: techs(), Frontend: frontend.Ideal(fs)})
	if err != nil {
		t.Fatal(err)
	}
	gen := rng.New(1)
	res := g.Process(channel.AWGN(100000, gen))
	flush := g.Flush()
	if n := len(res.Shipped) + len(flush.Shipped); n > 1 {
		t.Fatalf("quiet capture shipped %d segments", n)
	}
	st := g.Stats()
	if st.CapturesProcessed != 1 || st.RawBytes != 200000 {
		t.Fatalf("stats %+v", st)
	}
}

func TestProcessShipsDetectedPacket(t *testing.T) {
	g, err := New(Config{Techs: techs(), Frontend: frontend.Ideal(fs)})
	if err != nil {
		t.Fatal(err)
	}
	gen := rng.New(2)
	sig, _ := xbee.Default().Modulate([]byte{1, 2, 3, 4, 5, 6, 7, 8}, fs)
	capture := channel.Mix(len(sig)+60000, []channel.Emission{{Samples: sig, Offset: 30000, SNRdB: 12}}, gen, fs)
	res := g.Process(capture)
	res.Shipped = append(res.Shipped, g.Flush().Shipped...)
	if len(res.Shipped) == 0 {
		t.Fatal("detected packet was not shipped")
	}
	// shipped segment must contain the packet
	seg := res.Shipped[0]
	if seg.Start > 30000 || seg.Start+int64(len(seg.Samples)) < int64(30000+len(sig)) {
		t.Fatalf("segment [%d, %d) does not cover packet [30000, %d)",
			seg.Start, seg.Start+int64(len(seg.Samples)), 30000+len(sig))
	}
}

func TestEdgeDecodeResolvesCleanPacket(t *testing.T) {
	g, err := New(Config{Techs: techs(), Frontend: frontend.Ideal(fs), EdgeDecode: true})
	if err != nil {
		t.Fatal(err)
	}
	gen := rng.New(3)
	payload := []byte("edge decodes me")
	sig, _ := xbee.Default().Modulate(payload, fs)
	capture := channel.Mix(len(sig)+60000, []channel.Emission{{Samples: sig, Offset: 30000, SNRdB: 15}}, gen, fs)
	res := g.Process(capture)
	flush := g.Flush()
	res.EdgeFrames = append(res.EdgeFrames, flush.EdgeFrames...)
	res.Shipped = append(res.Shipped, flush.Shipped...)
	if len(res.EdgeFrames) != 1 || !bytes.Equal(res.EdgeFrames[0].Payload, payload) {
		t.Fatalf("edge frames: %+v (shipped %d)", res.EdgeFrames, len(res.Shipped))
	}
	if res.EdgeFrames[0].Offset < 29990 || res.EdgeFrames[0].Offset > 30010 {
		t.Fatalf("absolute offset %d", res.EdgeFrames[0].Offset)
	}
	if len(res.Shipped) != 0 {
		t.Fatal("edge-resolved segment should not ship")
	}
}

func TestCollisionGoesToCloudDespiteEdge(t *testing.T) {
	g, err := New(Config{Techs: techs(), Frontend: frontend.Ideal(fs), EdgeDecode: true})
	if err != nil {
		t.Fatal(err)
	}
	gen := rng.New(4)
	l, _ := lora.Default().Modulate([]byte("lora here"), fs)
	x, _ := xbee.Default().Modulate([]byte("xbee here"), fs)
	capture := channel.Mix(len(l)+60000, []channel.Emission{
		{Samples: l, Offset: 20000, SNRdB: 10},
		{Samples: x, Offset: 24000, SNRdB: 10},
	}, gen, fs)
	res := g.Process(capture)
	res.Shipped = append(res.Shipped, g.Flush().Shipped...)
	if len(res.Shipped) == 0 {
		t.Fatal("collision should be shipped to the cloud")
	}
}

func TestAbsoluteOffsetsAcrossCaptures(t *testing.T) {
	g, err := New(Config{Techs: techs(), Frontend: frontend.Ideal(fs)})
	if err != nil {
		t.Fatal(err)
	}
	gen := rng.New(5)
	sig, _ := xbee.Default().Modulate([]byte{1, 2, 3, 4}, fs)
	quiet := channel.AWGN(50000, gen)
	g.Process(quiet) // advances absolute clock by 50000
	capture := channel.Mix(len(sig)+40000, []channel.Emission{{Samples: sig, Offset: 20000, SNRdB: 12}}, gen, fs)
	res := g.Process(capture)
	res.Shipped = append(res.Shipped, g.Flush().Shipped...)
	if len(res.Shipped) == 0 {
		t.Fatal("packet not shipped")
	}
	// the packet's absolute position is 50000 (first capture) + 20000
	pktStart, pktLen := int64(70000), int64(len(sig))
	seg := res.Shipped[0]
	if seg.Start > pktStart || seg.Start+int64(len(seg.Samples)) < pktStart+pktLen {
		t.Fatalf("segment [%d, %d) does not cover packet at absolute [%d, %d)",
			seg.Start, seg.Start+int64(len(seg.Samples)), pktStart, pktStart+pktLen)
	}
}

func TestEndToEndGatewayCloud(t *testing.T) {
	// Full pipeline over an in-memory network: gateway detects and ships;
	// cloud decodes and reports back.
	ts := techs()
	g, err := New(Config{Techs: ts, Frontend: frontend.Ideal(fs)})
	if err != nil {
		t.Fatal(err)
	}
	svc := cloud.NewService(ts)

	gen := rng.New(6)
	payloadL := []byte("from lora")
	payloadX := []byte("from xbee")
	l, _ := lora.Default().Modulate(payloadL, fs)
	x, _ := xbee.Default().Modulate(payloadX, fs)
	capture := channel.Mix(len(l)+60000, []channel.Emission{
		{Samples: l, Offset: 20000, SNRdB: 12},
		{Samples: x, Offset: 25000, SNRdB: 12},
	}, gen, fs)

	a, b := net.Pipe()
	captures := make(chan []complex128, 1)
	captures <- capture
	close(captures)

	var reports []backhaul.FramesReport
	errCh := make(chan error, 2)
	go func() { errCh <- svc.ServeConn(b) }()
	go func() {
		errCh <- g.Run(a, captures, func(r backhaul.FramesReport) {
			reports = append(reports, r)
		})
	}()
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	got := map[string][]byte{}
	for _, r := range reports {
		for _, f := range r.Frames {
			got[f.Tech] = f.Payload
		}
	}
	if !bytes.Equal(got["lora"], payloadL) || !bytes.Equal(got["xbee"], payloadX) {
		t.Fatalf("cloud reports incomplete: %+v", got)
	}
	if n, _, _ := svc.Totals(); n < 2 {
		t.Fatalf("cloud totals %d", n)
	}
	if g.Stats().WireBytes == 0 {
		t.Fatal("wire bytes not counted")
	}
}
