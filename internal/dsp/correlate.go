package dsp

import "math"

// CrossCorrelate returns the sliding cross-correlation of x against the
// reference template ref:
//
//	out[k] = Σ_j x[k+j] · conj(ref[j]),  k in [0, len(x)-len(ref)]
//
// This is the matched-filter output used for preamble detection. The method
// switches to FFT-based correlation for large inputs. It returns nil when
// ref is longer than x or either is empty.
func CrossCorrelate(x, ref []complex128) []complex128 {
	n, k := len(x), len(ref)
	if k == 0 || n < k {
		return nil
	}
	outLen := n - k + 1
	if n*k <= 1<<17 {
		out := make([]complex128, outLen)
		for i := 0; i < outLen; i++ {
			var acc complex128
			seg := x[i : i+k]
			for j, r := range ref {
				acc += seg[j] * complex(real(r), -imag(r))
			}
			out[i] = acc
		}
		return out
	}
	// FFT method: linear cross-correlation equals IFFT(X · conj(R)) after
	// zero-padding both vectors to at least n+k-1.
	m := NextPow2(n + k - 1)
	fx := make([]complex128, m)
	copy(fx, x)
	fr := make([]complex128, m)
	copy(fr, ref)
	FFTInPlace(fx)
	FFTInPlace(fr)
	for i := range fx {
		fx[i] *= complex(real(fr[i]), -imag(fr[i]))
	}
	IFFTInPlace(fx)
	// Correlation lag k corresponds to output index k.
	out := make([]complex128, outLen)
	copy(out, fx[:outLen])
	return out
}

// NormalizedCorrelate returns |CrossCorrelate| normalized by the local
// energy of x and the energy of ref, giving values in [0, 1] where 1 means a
// perfect (scaled) match. This normalization makes the detector threshold
// independent of signal and noise power, which is what lets the GalioT
// gateway detect packets buried below the noise floor without tracking the
// noise level.
func NormalizedCorrelate(x, ref []complex128) []float64 {
	n, k := len(x), len(ref)
	corr := CrossCorrelate(x, ref)
	if corr == nil {
		return nil
	}
	refE := Energy(ref)
	if refE == 0 {
		return make([]float64, len(corr))
	}
	// Sliding window energy of x.
	out := make([]float64, len(corr))
	var winE float64
	for j := 0; j < k; j++ {
		v := x[j]
		winE += real(v)*real(v) + imag(v)*imag(v)
	}
	for i := range out {
		den := math.Sqrt(winE * refE)
		if den > 0 {
			c := corr[i]
			out[i] = math.Hypot(real(c), imag(c)) / den
		}
		if i+k < n {
			a, b := x[i+k], x[i]
			winE += real(a)*real(a) + imag(a)*imag(a)
			winE -= real(b)*real(b) + imag(b)*imag(b)
			if winE < 0 {
				winE = 0
			}
		}
	}
	return out
}

// NormalizedCorrelateReal returns the sliding normalized cross-correlation
// of the real sequence x against template ref, with the local mean of each
// window (and the template mean) removed first:
//
//	out[k] = Σ (x[k+j]-μx)(ref[j]-μr) / √(Σ(x[k+j]-μx)² · Σ(ref[j]-μr)²)
//
// Values lie in [-1, 1]. Mean removal makes the metric invariant to any DC
// offset of x — exactly what frequency-discriminator synchronization needs,
// since a carrier frequency offset appears there as a constant bias.
func NormalizedCorrelateReal(x, ref []float64) []float64 {
	n, k := len(x), len(ref)
	if k == 0 || n < k {
		return nil
	}
	var refMean float64
	for _, v := range ref {
		refMean += v
	}
	refMean /= float64(k)
	refC := make([]float64, k)
	var refE float64
	for i, v := range ref {
		refC[i] = v - refMean
		refE += refC[i] * refC[i]
	}
	outLen := n - k + 1
	out := make([]float64, outLen)
	if refE == 0 {
		return out
	}
	// All sliding dot products at once via FFT correlation. Since
	// Σ refC = 0, Σ x·refC equals Σ (x-μ)·refC for any window mean μ.
	cx := make([]complex128, n)
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	cr := make([]complex128, k)
	for i, v := range refC {
		cr[i] = complex(v, 0)
	}
	dots := CrossCorrelate(cx, cr)
	// sliding sums for window mean and energy
	var winSum, winSq float64
	for j := 0; j < k; j++ {
		winSum += x[j]
		winSq += x[j] * x[j]
	}
	for i := 0; i < outLen; i++ {
		mu := winSum / float64(k)
		winE := winSq - float64(k)*mu*mu
		if winE > 0 {
			out[i] = real(dots[i]) / math.Sqrt(winE*refE)
		}
		if i+k < n {
			a, b := x[i+k], x[i]
			winSum += a - b
			winSq += a*a - b*b
		}
	}
	return out
}

// AutoCorrelate returns the autocorrelation of x at lags [0, maxLag].
func AutoCorrelate(x []complex128, maxLag int) []complex128 {
	if maxLag >= len(x) {
		maxLag = len(x) - 1
	}
	if maxLag < 0 {
		return nil
	}
	out := make([]complex128, maxLag+1)
	for lag := 0; lag <= maxLag; lag++ {
		var acc complex128
		for i := 0; i+lag < len(x); i++ {
			v := x[i+lag]
			acc += v * complex(real(x[i]), -imag(x[i]))
		}
		out[lag] = acc
	}
	return out
}

// Peak describes a local maximum in a detection metric.
type Peak struct {
	Index int     // sample index of the maximum
	Value float64 // metric value at the maximum
}

// FindPeaks returns all local maxima of metric that exceed threshold, with
// non-maximum suppression over a guard of minDistance samples: of any two
// peaks closer than minDistance, only the larger survives. Peaks are
// returned in index order.
func FindPeaks(metric []float64, threshold float64, minDistance int) []Peak {
	if minDistance < 1 {
		minDistance = 1
	}
	var peaks []Peak
	for i := range metric {
		v := metric[i]
		if v < threshold {
			continue
		}
		// local maximum over [i-1, i+1]
		if i > 0 && metric[i-1] > v {
			continue
		}
		if i+1 < len(metric) && metric[i+1] >= v {
			continue
		}
		if n := len(peaks); n > 0 && i-peaks[n-1].Index < minDistance {
			if v > peaks[n-1].Value {
				peaks[n-1] = Peak{Index: i, Value: v}
			}
			continue
		}
		peaks = append(peaks, Peak{Index: i, Value: v})
	}
	return peaks
}

// MaxPeak returns the global maximum of metric as a Peak, or a Peak with
// Index -1 if metric is empty.
func MaxPeak(metric []float64) Peak {
	best := Peak{Index: -1}
	for i, v := range metric {
		if v > best.Value || best.Index < 0 {
			best = Peak{Index: i, Value: v}
		}
	}
	return best
}

// ParabolicInterp refines a peak location using three-point parabolic
// interpolation around index i of metric. It returns the fractional offset
// in (-0.5, 0.5) to add to i; 0 when i is at a boundary or the curvature is
// degenerate.
func ParabolicInterp(metric []float64, i int) float64 {
	if i <= 0 || i+1 >= len(metric) {
		return 0
	}
	a, b, c := metric[i-1], metric[i], metric[i+1]
	den := a - 2*b + c
	if den == 0 {
		return 0
	}
	d := 0.5 * (a - c) / den
	if d > 0.5 {
		d = 0.5
	} else if d < -0.5 {
		d = -0.5
	}
	return d
}
