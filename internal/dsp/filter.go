package dsp

import "math"

// FIR is a finite-impulse-response filter described by its real tap weights.
type FIR struct {
	Taps []float64
}

// Sinc returns sin(πx)/(πx) with the removable singularity handled.
func Sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// LowPass designs a windowed-sinc low-pass FIR filter with the given cutoff
// frequency (Hz), sample rate (Hz) and odd tap count, using a Hamming
// window. Taps are normalized to unit DC gain.
func LowPass(cutoff, sampleRate float64, taps int) FIR {
	if taps < 3 {
		taps = 3
	}
	if taps%2 == 0 {
		taps++
	}
	fc := cutoff / sampleRate
	mid := taps / 2
	h := make([]float64, taps)
	var sum float64
	for i := range h {
		n := float64(i - mid)
		w := 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(taps-1))
		h[i] = 2 * fc * Sinc(2*fc*n) * w
		sum += h[i]
	}
	for i := range h {
		h[i] /= sum
	}
	return FIR{Taps: h}
}

// Gaussian designs a Gaussian pulse-shaping filter with the given
// bandwidth-time product bt, spanning span symbol periods at sps samples per
// symbol. This is the shaping filter used by GFSK transmitters (bt = 0.5 for
// XBee-class radios, 0.3 for BLE-class). Taps are normalized to unit sum so
// that filtering a constant stream preserves its level.
func Gaussian(bt float64, sps, span int) FIR {
	if span < 1 {
		span = 1
	}
	n := span*sps + 1
	mid := n / 2
	// Standard Gaussian filter: h(t) ∝ exp(-2π²B²t²/ln 2) with B = bt/T.
	alpha := 2 * math.Pi * math.Pi * bt * bt / math.Ln2
	h := make([]float64, n)
	var sum float64
	for i := range h {
		t := float64(i-mid) / float64(sps) // in symbol periods
		h[i] = math.Exp(-alpha * t * t)
		sum += h[i]
	}
	for i := range h {
		h[i] /= sum
	}
	return FIR{Taps: h}
}

// ApplyComplex filters a complex vector with "same" alignment: the output
// has the same length as the input and is aligned so that the filter's group
// delay is removed (for symmetric filters).
func (f FIR) ApplyComplex(x []complex128) []complex128 {
	n := len(x)
	k := len(f.Taps)
	if n == 0 || k == 0 {
		return Clone(x)
	}
	full := convolveComplex(x, f.Taps)
	off := (k - 1) / 2
	out := make([]complex128, n)
	copy(out, full[off:off+n])
	return out
}

// ApplyReal filters a real vector with "same" alignment.
func (f FIR) ApplyReal(x []float64) []float64 {
	n := len(x)
	k := len(f.Taps)
	if n == 0 || k == 0 {
		out := make([]float64, n)
		copy(out, x)
		return out
	}
	full := make([]float64, n+k-1)
	for i, t := range f.Taps {
		if t == 0 {
			continue
		}
		for j, v := range x {
			full[i+j] += t * v
		}
	}
	off := (k - 1) / 2
	out := make([]float64, n)
	copy(out, full[off:off+n])
	return out
}

// convolveComplex computes the full linear convolution of x with real taps
// h, choosing a direct or FFT method by size.
func convolveComplex(x []complex128, h []float64) []complex128 {
	n, k := len(x), len(h)
	outLen := n + k - 1
	// Direct method for small work; FFT overlap otherwise.
	if n*k <= 1<<16 {
		out := make([]complex128, outLen)
		for i, t := range h {
			if t == 0 {
				continue
			}
			ct := complex(t, 0)
			for j, v := range x {
				out[i+j] += ct * v
			}
		}
		return out
	}
	m := NextPow2(outLen)
	fx := make([]complex128, m)
	copy(fx, x)
	fh := make([]complex128, m)
	for i, t := range h {
		fh[i] = complex(t, 0)
	}
	FFTInPlace(fx)
	FFTInPlace(fh)
	for i := range fx {
		fx[i] *= fh[i]
	}
	IFFTInPlace(fx)
	return fx[:outLen]
}

// Decimate returns every factor-th sample of x after low-pass filtering at
// 0.45× the output Nyquist rate to suppress aliasing. factor must be >= 1.
func Decimate(x []complex128, factor int, sampleRate float64) []complex128 {
	if factor <= 1 {
		return Clone(x)
	}
	outRate := sampleRate / float64(factor)
	lp := LowPass(0.45*outRate, sampleRate, 4*factor+1)
	filtered := lp.ApplyComplex(x)
	out := make([]complex128, 0, len(x)/factor+1)
	for i := 0; i < len(filtered); i += factor {
		out = append(out, filtered[i])
	}
	return out
}

// Interpolate upsamples x by an integer factor with zero stuffing followed
// by low-pass interpolation filtering. factor must be >= 1.
func Interpolate(x []complex128, factor int, sampleRate float64) []complex128 {
	if factor <= 1 {
		return Clone(x)
	}
	up := make([]complex128, len(x)*factor)
	for i, v := range x {
		up[i*factor] = v
	}
	outRate := sampleRate * float64(factor)
	lp := LowPass(0.45*sampleRate, outRate, 4*factor+1)
	filtered := lp.ApplyComplex(up)
	return Scale(filtered, float64(factor))
}

// MovingAverage returns the centered moving average of x over a window of
// the given odd width (even widths are rounded up).
func MovingAverage(x []float64, width int) []float64 {
	if width < 1 {
		width = 1
	}
	if width%2 == 0 {
		width++
	}
	half := width / 2
	out := make([]float64, len(x))
	var sum float64
	count := 0
	for i := 0; i < len(x); i++ {
		if i == 0 {
			for j := 0; j <= half && j < len(x); j++ {
				sum += x[j]
				count++
			}
		} else {
			if add := i + half; add < len(x) {
				sum += x[add]
				count++
			}
			if rem := i - half - 1; rem >= 0 {
				sum -= x[rem]
				count--
			}
		}
		out[i] = sum / float64(count)
	}
	return out
}
