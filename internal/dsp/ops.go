package dsp

import "math"

// Energy returns the sum of |x[i]|² over the vector.
func Energy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// Power returns the mean of |x[i]|² (average power). It returns 0 for an
// empty vector.
func Power(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	return Energy(x) / float64(len(x))
}

// PowerDB returns the average power of x in decibels relative to unit power.
// It returns -inf for a zero or empty vector.
func PowerDB(x []complex128) float64 {
	return 10 * math.Log10(Power(x))
}

// DB converts a linear power ratio to decibels.
func DB(ratio float64) float64 { return 10 * math.Log10(ratio) }

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// Scale multiplies every sample by the real gain g in place and returns x.
func Scale(x []complex128, g float64) []complex128 {
	for i := range x {
		x[i] = complex(real(x[i])*g, imag(x[i])*g)
	}
	return x
}

// ScaleComplex multiplies every sample by the complex gain g in place and
// returns x.
func ScaleComplex(x []complex128, g complex128) []complex128 {
	for i := range x {
		x[i] *= g
	}
	return x
}

// Normalize scales x in place to unit average power and returns x. A zero
// vector is returned unchanged.
func Normalize(x []complex128) []complex128 {
	p := Power(x)
	if p == 0 {
		return x
	}
	return Scale(x, 1/math.Sqrt(p))
}

// Add accumulates src into dst element-wise starting at dst[offset]. Samples
// of src that would fall outside dst are ignored; negative offsets clip the
// head of src. It returns dst.
func Add(dst, src []complex128, offset int) []complex128 {
	start := 0
	if offset < 0 {
		start = -offset
		offset = 0
	}
	for i := start; i < len(src); i++ {
		j := offset + i - start
		if j >= len(dst) {
			break
		}
		dst[j] += src[i]
	}
	return dst
}

// Sub subtracts src from dst element-wise starting at dst[offset], with the
// same clipping rules as Add. It returns dst.
func Sub(dst, src []complex128, offset int) []complex128 {
	start := 0
	if offset < 0 {
		start = -offset
		offset = 0
	}
	for i := start; i < len(src); i++ {
		j := offset + i - start
		if j >= len(dst) {
			break
		}
		dst[j] -= src[i]
	}
	return dst
}

// Mul returns the element-wise product of a and b in a new slice. The
// result has the length of the shorter input.
func Mul(a, b []complex128) []complex128 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		out[i] = a[i] * b[i]
	}
	return out
}

// Conj returns the complex conjugate of x in a new slice.
func Conj(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = complex(real(v), -imag(v))
	}
	return out
}

// Clone returns a copy of x.
func Clone(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	return out
}

// Mix multiplies x in place by a complex exponential of the given frequency
// (Hz) and initial phase (radians) at the given sample rate, shifting the
// spectrum by +freq. It returns x.
func Mix(x []complex128, freq, phase, sampleRate float64) []complex128 {
	if freq == 0 && phase == 0 {
		return x
	}
	// Use a recurrence (rotator) for speed; renormalize periodically to
	// contain numerical drift.
	s, c := math.Sincos(phase)
	cur := complex(c, s)
	ds, dc := math.Sincos(2 * math.Pi * freq / sampleRate)
	step := complex(dc, ds)
	for i := range x {
		x[i] *= cur
		cur *= step
		if i&1023 == 1023 {
			mag := math.Hypot(real(cur), imag(cur))
			cur = complex(real(cur)/mag, imag(cur)/mag)
		}
	}
	return x
}

// Tone returns n samples of a complex exponential at the given frequency
// (Hz) and initial phase (radians) at the given sample rate.
func Tone(n int, freq, phase, sampleRate float64) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = 1
	}
	return Mix(out, freq, phase, sampleRate)
}

// Delay returns x prepended with n zero samples (n >= 0).
func Delay(x []complex128, n int) []complex128 {
	if n < 0 {
		panic("dsp: negative delay")
	}
	out := make([]complex128, n+len(x))
	copy(out[n:], x)
	return out
}

// PadTo returns x zero-padded (or truncated) to exactly n samples.
func PadTo(x []complex128, n int) []complex128 {
	out := make([]complex128, n)
	copy(out, x)
	return out
}

// MaxAbs returns the index and magnitude of the sample with the largest
// absolute value. It returns (-1, 0) for an empty vector.
func MaxAbs(x []complex128) (idx int, mag float64) {
	idx = -1
	for i, v := range x {
		m := real(v)*real(v) + imag(v)*imag(v)
		if m > mag {
			mag, idx = m, i
		}
	}
	return idx, math.Sqrt(mag)
}

// Abs returns |x[i]| in a new float64 slice.
func Abs(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = math.Hypot(real(v), imag(v))
	}
	return out
}

// AbsSq returns |x[i]|² in a new float64 slice.
func AbsSq(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	return out
}

// Phase returns the instantaneous phase (radians, in (-π, π]) of each sample.
func Phase(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = math.Atan2(imag(v), real(v))
	}
	return out
}

// FreqDiscriminator returns the per-sample instantaneous frequency estimate
// f[i] = angle(x[i] · conj(x[i-1])) · sampleRate / 2π, the standard
// polar discriminator used for FSK demodulation. The output has length
// len(x)-1 (or 0 for shorter inputs).
func FreqDiscriminator(x []complex128, sampleRate float64) []float64 {
	if len(x) < 2 {
		return nil
	}
	out := make([]float64, len(x)-1)
	k := sampleRate / (2 * math.Pi)
	for i := 1; i < len(x); i++ {
		p := x[i] * complex(real(x[i-1]), -imag(x[i-1]))
		out[i-1] = math.Atan2(imag(p), real(p)) * k
	}
	return out
}

// RMS returns the root-mean-square magnitude of x.
func RMS(x []complex128) float64 { return math.Sqrt(Power(x)) }
