package dsp

import (
	"fmt"
	"math"
)

// Resample converts x from one sample rate to another using rational
// polyphase resampling (upsample by L, anti-alias/anti-image filter,
// downsample by M, computed without materializing the upsampled signal).
// Rates must be positive; the rational factor L/M is derived from the rate
// ratio with a denominator cap of 1024, which covers every pair of
// standard SDR rates exactly (e.g. 1 MHz ↔ 250 kHz, 8 MHz ↔ 1 MHz,
// 2.048 MHz ↔ 1 MHz).
//
// Use cases in this repository: feeding a 2.4 GHz BLE capture (≥5 MHz)
// into analysis built for other rates, and converting external cu8
// recordings made at rtl_sdr's customary 2.048 MHz down to the gateway's
// 1 MHz pipeline.
func Resample(x []complex128, fromRate, toRate float64) ([]complex128, error) {
	if fromRate <= 0 || toRate <= 0 {
		return nil, fmt.Errorf("dsp: resample rates must be positive")
	}
	if len(x) == 0 {
		return nil, nil
	}
	L, M, err := rationalRatio(toRate/fromRate, 1024)
	if err != nil {
		return nil, err
	}
	if L == M {
		return Clone(x), nil
	}
	// Anti-alias/anti-image low-pass at the tighter of the two Nyquist
	// limits, designed at the upsampled rate.
	upRate := fromRate * float64(L)
	cutoff := 0.45 * math.Min(fromRate, toRate)
	taps := designResampleTaps(cutoff, upRate, L)

	// Polyphase: output sample k sits at upsampled index k*M; its value is
	// Σ_j h[j]·u[kM-j] where u is the zero-stuffed input (u[i]=L·x[i/L]
	// when L divides i). Only every L-th tap contributes.
	outLen := (len(x)*L + M - 1) / M
	out := make([]complex128, 0, outLen)
	half := (len(taps) - 1) / 2
	gain := float64(L)
	for k := 0; ; k++ {
		center := k * M
		if center >= len(x)*L {
			break
		}
		// j must satisfy (center-j) ≡ 0 mod L and 0 <= (center-j)/L < len(x)
		var acc complex128
		// smallest j >= center-half with (center-j) % L == 0
		start := center - half
		if start < 0 {
			start = 0
		}
		rem := (center - start) % L
		start += rem
		for j := start; j <= center+half; j += L {
			tapIdx := center - j + half
			if tapIdx < 0 || tapIdx >= len(taps) {
				continue
			}
			srcIdx := j / L
			if srcIdx >= len(x) {
				continue
			}
			acc += complex(taps[tapIdx]*gain, 0) * x[srcIdx]
		}
		out = append(out, acc)
	}
	return out, nil
}

// designResampleTaps returns a windowed-sinc low-pass sized to span several
// input samples per phase.
func designResampleTaps(cutoff, rate float64, L int) []float64 {
	n := 16*L + 1
	return LowPass(cutoff, rate, n).Taps
}

// rationalRatio approximates ratio as L/M with M <= maxDen using continued
// fractions, requiring an exact-enough match (1e-9 relative).
func rationalRatio(ratio float64, maxDen int) (int, int, error) {
	if ratio <= 0 {
		return 0, 0, fmt.Errorf("dsp: ratio must be positive")
	}
	// continued fraction expansion
	h0, h1 := 0, 1
	k0, k1 := 1, 0
	x := ratio
	for i := 0; i < 64; i++ {
		a := int(math.Floor(x))
		h0, h1 = h1, a*h1+h0
		k0, k1 = k1, a*k1+k0
		if k1 > maxDen {
			return 0, 0, fmt.Errorf("dsp: resample ratio %g needs denominator > %d", ratio, maxDen)
		}
		if frac := x - float64(a); frac > 1e-12 {
			x = 1 / frac
		} else {
			break
		}
		if math.Abs(float64(h1)/float64(k1)-ratio) < 1e-9*ratio {
			break
		}
	}
	if k1 == 0 || math.Abs(float64(h1)/float64(k1)-ratio) > 1e-9*ratio {
		return 0, 0, fmt.Errorf("dsp: resample ratio %g is not rational within tolerance", ratio)
	}
	// reduce
	g := gcd(h1, k1)
	return h1 / g, k1 / g, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}
