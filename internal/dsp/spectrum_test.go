package dsp

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/rng"
)

func TestWindowShapes(t *testing.T) {
	t.Parallel()
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		c := w.Coefficients(65)
		if len(c) != 65 {
			t.Fatalf("%v length %d", w, len(c))
		}
		for i, v := range c {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("%v coefficient %d out of range: %v", w, i, v)
			}
		}
		// symmetric
		for i := range c {
			if math.Abs(c[i]-c[len(c)-1-i]) > 1e-12 {
				t.Fatalf("%v not symmetric", w)
			}
		}
	}
	if Hann.Coefficients(1)[0] != 1 {
		t.Fatal("length-1 window should be 1")
	}
	if Hann.String() != "hann" || Rectangular.String() != "rectangular" {
		t.Fatal("window names")
	}
}

func TestHannEndpointsZero(t *testing.T) {
	t.Parallel()
	c := Hann.Coefficients(33)
	if math.Abs(c[0]) > 1e-12 || math.Abs(c[32]) > 1e-12 {
		t.Fatalf("hann endpoints %v %v", c[0], c[32])
	}
}

func TestPeriodogramTone(t *testing.T) {
	t.Parallel()
	const n, fs = 1024, 1e6
	x := Tone(n, 125e3, 0, fs)
	p := Periodogram(x, Hann)
	best, bv := 0, 0.0
	for i, v := range p {
		if v > bv {
			best, bv = i, v
		}
	}
	f := BinToFreq(best, n, fs)
	if math.Abs(f-125e3) > 2*fs/n {
		t.Fatalf("periodogram peak at %v Hz", f)
	}
}

func TestWelchLowerVariance(t *testing.T) {
	t.Parallel()
	r := rng.New(1)
	x := make([]complex128, 8192)
	for i := range x {
		x[i] = r.Complex()
	}
	single := Periodogram(x, Hann)
	welch := WelchPSD(x, 512, Hann)
	varOf := func(p []float64) float64 {
		var mean float64
		for _, v := range p {
			mean += v
		}
		mean /= float64(len(p))
		var s float64
		for _, v := range p {
			s += (v - mean) * (v - mean)
		}
		return s / float64(len(p)) / (mean * mean) // normalized variance
	}
	if varOf(welch) >= varOf(single) {
		t.Fatalf("welch variance %v not below periodogram %v", varOf(welch), varOf(single))
	}
}

func TestGoertzelMatchesFFT(t *testing.T) {
	t.Parallel()
	r := rng.New(2)
	const n, fs = 256, 1e6
	x := randomVec(r, n)
	spec := FFT(x)
	for _, bin := range []int{0, 3, 128, 200} {
		freq := float64(bin) * fs / n
		g := Goertzel(x, freq, fs)
		if cmplx.Abs(g-spec[bin]) > 1e-6 {
			t.Fatalf("goertzel bin %d: %v vs %v", bin, g, spec[bin])
		}
	}
}

func TestDominantFrequencyInterpolated(t *testing.T) {
	t.Parallel()
	const n, fs = 2048, 1e6
	// frequency between bins
	target := 100e3 + fs/n/3
	x := Tone(n, target, 0, fs)
	f := DominantFrequency(x, fs)
	if math.Abs(f-target) > fs/n/4 {
		t.Fatalf("estimated %v, want %v (bin width %v)", f, target, fs/n)
	}
}

func TestEstimateCFO(t *testing.T) {
	t.Parallel()
	const fs = 1e6
	for _, cfo := range []float64{1000, -7500, 30000} {
		x := Tone(4000, cfo, 0.7, fs)
		got := EstimateCFO(x, fs)
		if math.Abs(got-cfo) > 5 {
			t.Fatalf("cfo %v estimated as %v", cfo, got)
		}
	}
}

func TestEstimateSNR(t *testing.T) {
	t.Parallel()
	r := rng.New(3)
	tmpl := randomVec(r, 2000)
	Normalize(tmpl)
	for _, snrDB := range []float64{0, 10, 20} {
		rx := make([]complex128, len(tmpl))
		amp := complex(math.Sqrt(FromDB(snrDB)), 0)
		for i := range rx {
			rx[i] = amp*tmpl[i] + r.Complex()
		}
		est := DB(EstimateSNR(rx, tmpl))
		if math.Abs(est-snrDB) > 1.5 {
			t.Fatalf("snr %v dB estimated as %v dB", snrDB, est)
		}
	}
	if EstimateSNR(nil, nil) != 0 {
		t.Fatal("degenerate SNR should be 0")
	}
	clean := Clone(tmpl)
	if !math.IsInf(EstimateSNR(clean, tmpl), 1) {
		t.Fatal("noiseless SNR should be +Inf")
	}
}

func TestNoiseFloorRobustToSpikes(t *testing.T) {
	t.Parallel()
	r := rng.New(4)
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = r.Complex()
	}
	base := NoiseFloor(x)
	// add a huge sparse spike; median must barely move
	x[100] = 1000
	spiked := NoiseFloor(x)
	if spiked > base*1.5 {
		t.Fatalf("noise floor jumped from %v to %v on one spike", base, spiked)
	}
	// |CN(0,1)|² is Exp(1); its median is ln 2 ≈ 0.693
	if math.Abs(base-math.Ln2) > 0.08 {
		t.Fatalf("noise floor %v, want ~%v", base, math.Ln2)
	}
}

func BenchmarkPeriodogram4096(b *testing.B) {
	x := randomVec(rng.New(1), 4096)
	for i := 0; i < b.N; i++ {
		_ = Periodogram(x, Hann)
	}
}
