package dsp

import (
	"math"
	"testing"
)

func TestRationalRatio(t *testing.T) {
	t.Parallel()
	cases := []struct {
		ratio float64
		l, m  int
	}{
		{0.25, 1, 4},
		{4, 4, 1},
		{1, 1, 1},
		{2.048, 256, 125},
		{1.0 / 2.048, 125, 256},
		{0.5, 1, 2},
	}
	for _, c := range cases {
		l, m, err := rationalRatio(c.ratio, 1024)
		if err != nil {
			t.Fatalf("ratio %v: %v", c.ratio, err)
		}
		if l != c.l || m != c.m {
			t.Fatalf("ratio %v: got %d/%d want %d/%d", c.ratio, l, m, c.l, c.m)
		}
	}
	if _, _, err := rationalRatio(math.Pi, 1024); err == nil {
		t.Fatal("irrational ratio accepted")
	}
	if _, _, err := rationalRatio(-1, 1024); err == nil {
		t.Fatal("negative ratio accepted")
	}
}

func TestResampleIdentity(t *testing.T) {
	t.Parallel()
	x := Tone(1000, 10e3, 0, 1e6)
	y, err := Resample(x, 1e6, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if y[i] != x[i] {
			t.Fatal("identity resample altered samples")
		}
	}
}

func TestResampleDownPreservesTone(t *testing.T) {
	t.Parallel()
	const from, to = 1e6, 250e3
	x := Tone(8000, 30e3, 0, from)
	y, err := Resample(x, from, to)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := 2000
	if len(y) < wantLen-2 || len(y) > wantLen+2 {
		t.Fatalf("length %d, want ~%d", len(y), wantLen)
	}
	f := DominantFrequency(y[100:1900], to)
	if math.Abs(f-30e3) > 500 {
		t.Fatalf("tone at %v after downsample", f)
	}
	// power preserved within filter tolerance
	if p := Power(y[100 : len(y)-100]); math.Abs(p-1) > 0.1 {
		t.Fatalf("power %v after downsample", p)
	}
}

func TestResampleUpPreservesTone(t *testing.T) {
	t.Parallel()
	const from, to = 1e6, 4e6
	x := Tone(2000, 100e3, 0, from)
	y, err := Resample(x, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) < 7990 || len(y) > 8010 {
		t.Fatalf("length %d, want ~8000", len(y))
	}
	f := DominantFrequency(y[500:7500], to)
	if math.Abs(f-100e3) > 1000 {
		t.Fatalf("tone at %v after upsample", f)
	}
	if p := Power(y[500:7500]); math.Abs(p-1) > 0.1 {
		t.Fatalf("power %v after upsample", p)
	}
}

func TestResampleRationalRTLRate(t *testing.T) {
	t.Parallel()
	// rtl_sdr's customary 2.048 MHz down to the gateway's 1 MHz: ratio
	// 125/256.
	const from, to = 2.048e6, 1e6
	x := Tone(16384, 50e3, 0, from)
	y, err := Resample(x, from, to)
	if err != nil {
		t.Fatal(err)
	}
	want := int(float64(len(x)) * to / from)
	if len(y) < want-2 || len(y) > want+2 {
		t.Fatalf("length %d, want ~%d", len(y), want)
	}
	f := DominantFrequency(y[500:len(y)-500], to)
	if math.Abs(f-50e3) > 500 {
		t.Fatalf("tone at %v", f)
	}
}

func TestResampleRejectsAliases(t *testing.T) {
	t.Parallel()
	// A 400 kHz tone cannot survive a 1 MHz -> 500 kHz conversion; the
	// anti-alias filter must remove it rather than fold it to 100 kHz.
	x := Tone(8000, 400e3, 0, 1e6)
	y, err := Resample(x, 1e6, 500e3)
	if err != nil {
		t.Fatal(err)
	}
	if p := Power(y[200 : len(y)-200]); p > 0.02 {
		t.Fatalf("alias power %v", p)
	}
}

func TestResampleErrors(t *testing.T) {
	t.Parallel()
	if _, err := Resample([]complex128{1}, 0, 1e6); err == nil {
		t.Fatal("zero rate accepted")
	}
	if out, err := Resample(nil, 1e6, 2e6); err != nil || out != nil {
		t.Fatal("empty input should be a no-op")
	}
}
