package dsp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPowerAndEnergy(t *testing.T) {
	t.Parallel()
	x := []complex128{1, complex(0, 2), complex(3, 4)}
	if e := Energy(x); math.Abs(e-(1+4+25)) > eps {
		t.Fatalf("energy %v", e)
	}
	if p := Power(x); math.Abs(p-10) > eps {
		t.Fatalf("power %v", p)
	}
	if p := Power(nil); p != 0 {
		t.Fatalf("power of empty = %v", p)
	}
}

func TestDBConversions(t *testing.T) {
	t.Parallel()
	for _, db := range []float64{-30, -10, 0, 3, 20} {
		if got := DB(FromDB(db)); math.Abs(got-db) > 1e-9 {
			t.Fatalf("db round trip %v -> %v", db, got)
		}
	}
}

func TestNormalizeUnitPower(t *testing.T) {
	t.Parallel()
	r := rng.New(1)
	x := randomVec(r, 500)
	Scale(x, 3.7)
	Normalize(x)
	if p := Power(x); math.Abs(p-1) > 1e-9 {
		t.Fatalf("normalized power %v", p)
	}
	// zero vector must not produce NaN
	z := make([]complex128, 4)
	Normalize(z)
	for _, v := range z {
		if v != 0 {
			t.Fatal("normalize of zero vector changed values")
		}
	}
}

func TestAddSubOffsets(t *testing.T) {
	t.Parallel()
	dst := make([]complex128, 5)
	Add(dst, []complex128{1, 2, 3}, 1)
	want := []complex128{0, 1, 2, 3, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Add got %v", dst)
		}
	}
	// clipping at the tail
	dst2 := make([]complex128, 3)
	Add(dst2, []complex128{1, 2, 3}, 2)
	if dst2[2] != 1 || dst2[0] != 0 {
		t.Fatalf("Add tail clip got %v", dst2)
	}
	// negative offset clips the head of src
	dst3 := make([]complex128, 3)
	Add(dst3, []complex128{1, 2, 3}, -1)
	if dst3[0] != 2 || dst3[1] != 3 || dst3[2] != 0 {
		t.Fatalf("Add negative offset got %v", dst3)
	}
	// Sub then Add must cancel
	dst4 := make([]complex128, 5)
	sig := []complex128{1, complex(2, -1), 3}
	Add(dst4, sig, 1)
	Sub(dst4, sig, 1)
	for _, v := range dst4 {
		if v != 0 {
			t.Fatalf("Add/Sub did not cancel: %v", dst4)
		}
	}
}

func TestMixShiftsSpectrum(t *testing.T) {
	t.Parallel()
	const n, fs = 4096, 1e6
	x := Tone(n, 10000, 0, fs)
	Mix(x, 50000, 0, fs)
	f := DominantFrequency(x, fs)
	if math.Abs(f-60000) > fs/n {
		t.Fatalf("mixed tone at %v Hz, want 60000", f)
	}
}

func TestMixRotatorAccuracy(t *testing.T) {
	t.Parallel()
	// After many samples the recursive rotator must still match the direct
	// computation closely (renormalization check).
	const n, fs, freq = 100000, 1e6, 12345.0
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	Mix(x, freq, 0.5, fs)
	for _, i := range []int{0, n / 2, n - 1} {
		ang := 2*math.Pi*freq*float64(i)/fs + 0.5
		s, c := math.Sincos(ang)
		if !approxEq(x[i], complex(c, s), 1e-6) {
			t.Fatalf("rotator drift at sample %d: %v vs %v", i, x[i], complex(c, s))
		}
	}
}

func TestToneFrequency(t *testing.T) {
	t.Parallel()
	const fs = 500e3
	x := Tone(2048, -42000, 0, fs)
	if p := Power(x); math.Abs(p-1) > 1e-9 {
		t.Fatalf("tone power %v", p)
	}
	f := DominantFrequency(x, fs)
	if math.Abs(f+42000) > fs/2048 {
		t.Fatalf("tone at %v, want -42000", f)
	}
}

func TestDelayAndPad(t *testing.T) {
	t.Parallel()
	x := []complex128{1, 2}
	d := Delay(x, 3)
	if len(d) != 5 || d[0] != 0 || d[3] != 1 || d[4] != 2 {
		t.Fatalf("delay got %v", d)
	}
	p := PadTo(x, 4)
	if len(p) != 4 || p[1] != 2 || p[3] != 0 {
		t.Fatalf("pad got %v", p)
	}
	tr := PadTo(x, 1)
	if len(tr) != 1 || tr[0] != 1 {
		t.Fatalf("truncate got %v", tr)
	}
}

func TestFreqDiscriminator(t *testing.T) {
	t.Parallel()
	const fs = 1e6
	for _, f := range []float64{25000, -60000} {
		x := Tone(1000, f, 0.3, fs)
		d := FreqDiscriminator(x, fs)
		for i, v := range d {
			if math.Abs(v-f) > 1 {
				t.Fatalf("f=%v: discriminator sample %d = %v", f, i, v)
			}
		}
	}
}

func TestMaxAbs(t *testing.T) {
	t.Parallel()
	x := []complex128{1, complex(0, -5), 2}
	idx, mag := MaxAbs(x)
	if idx != 1 || math.Abs(mag-5) > eps {
		t.Fatalf("MaxAbs = %d, %v", idx, mag)
	}
	if idx, _ := MaxAbs(nil); idx != -1 {
		t.Fatal("MaxAbs(nil) should return -1")
	}
}

func TestConjInvolution(t *testing.T) {
	t.Parallel()
	f := func(re, im float64) bool {
		x := []complex128{complex(re, im)}
		return Conj(Conj(x))[0] == x[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScaleComplexAndMul(t *testing.T) {
	t.Parallel()
	x := []complex128{1, complex(0, 1)}
	ScaleComplex(x, complex(0, 2))
	if x[0] != complex(0, 2) || x[1] != complex(-2, 0) {
		t.Fatalf("ScaleComplex got %v", x)
	}
	m := Mul([]complex128{2, 3, 4}, []complex128{5, 6})
	if len(m) != 2 || m[0] != 10 || m[1] != 18 {
		t.Fatalf("Mul got %v", m)
	}
}

func TestPhaseRange(t *testing.T) {
	t.Parallel()
	x := []complex128{1, complex(0, 1), -1, complex(0, -1)}
	ph := Phase(x)
	want := []float64{0, math.Pi / 2, math.Pi, -math.Pi / 2}
	for i := range want {
		if math.Abs(ph[i]-want[i]) > eps {
			t.Fatalf("phase[%d] = %v want %v", i, ph[i], want[i])
		}
	}
}
