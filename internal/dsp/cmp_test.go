package dsp

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	t.Parallel()
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1.1, 1e-3, false},
		{-2, -2.0005, 1e-3, true},
		{math.NaN(), math.NaN(), 1, false},
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e9, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestApproxEqualRel(t *testing.T) {
	t.Parallel()
	if !ApproxEqualRel(1e9, 1e9+1, 1e-6) {
		t.Error("1e9 and 1e9+1 should agree at rel 1e-6")
	}
	if ApproxEqualRel(1e9, 1.001e9, 1e-6) {
		t.Error("1e9 and 1.001e9 should differ at rel 1e-6")
	}
	if !ApproxEqualRel(0, 1e-12, 1e-9) {
		t.Error("values near zero should use the absolute floor")
	}
}

func TestApproxEqualComplex(t *testing.T) {
	t.Parallel()
	if !ApproxEqualComplex(1+2i, 1+2i, 0) {
		t.Error("identical complex values should be equal at tol 0")
	}
	if !ApproxEqualComplex(1+2i, 1.0000001+2i, 1e-6) {
		t.Error("complex values within tol should compare equal")
	}
	if ApproxEqualComplex(1+2i, 1+3i, 0.5) {
		t.Error("complex values 1 apart should differ at tol 0.5")
	}
}
