package dsp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestCrossCorrelatePeakAtOffset(t *testing.T) {
	t.Parallel()
	r := rng.New(1)
	ref := randomVec(r, 64)
	for _, offset := range []int{0, 10, 100, 400} {
		x := make([]complex128, 512)
		Add(x, ref, offset)
		corr := CrossCorrelate(x, ref)
		idx, _ := MaxAbs(corr)
		if idx != offset {
			t.Fatalf("offset %d: peak at %d", offset, idx)
		}
	}
}

func TestCrossCorrelateFFTPathMatchesDirect(t *testing.T) {
	t.Parallel()
	r := rng.New(2)
	ref := randomVec(r, 700) // 700 * 1000 > 1<<17 forces FFT on the long input
	x := randomVec(r, 1000)
	got := CrossCorrelate(x, ref) // FFT path (700*1000 > 131072)
	// direct reference
	outLen := len(x) - len(ref) + 1
	want := make([]complex128, outLen)
	for i := 0; i < outLen; i++ {
		var acc complex128
		for j, rv := range ref {
			acc += x[i+j] * complex(real(rv), -imag(rv))
		}
		want[i] = acc
	}
	for i := range want {
		if !approxEq(got[i], want[i], 1e-6*float64(len(ref))) {
			t.Fatalf("fft correlation mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestCrossCorrelateDegenerate(t *testing.T) {
	t.Parallel()
	if CrossCorrelate(nil, []complex128{1}) != nil {
		t.Fatal("ref longer than x should return nil")
	}
	if CrossCorrelate([]complex128{1, 2}, nil) != nil {
		t.Fatal("empty ref should return nil")
	}
	out := CrossCorrelate([]complex128{1, 2, 3}, []complex128{1, 2, 3})
	if len(out) != 1 {
		t.Fatalf("equal lengths should give one lag, got %d", len(out))
	}
}

func TestNormalizedCorrelatePerfectMatch(t *testing.T) {
	t.Parallel()
	r := rng.New(3)
	ref := randomVec(r, 128)
	x := make([]complex128, 600)
	Add(x, Clone(ref), 200)
	Scale(x, 5) // scaling must not affect normalized value
	m := NormalizedCorrelate(x, ref)
	pk := MaxPeak(m)
	if pk.Index != 200 {
		t.Fatalf("peak at %d, want 200", pk.Index)
	}
	if math.Abs(pk.Value-1) > 1e-9 {
		t.Fatalf("normalized peak %v, want 1", pk.Value)
	}
	// elsewhere (pure zeros) the metric must be 0, and never exceed 1
	for i, v := range m {
		if v > 1+1e-9 {
			t.Fatalf("metric exceeds 1 at %d: %v", i, v)
		}
	}
}

func TestNormalizedCorrelateShiftEquivariance(t *testing.T) {
	t.Parallel()
	r := rng.New(4)
	ref := randomVec(r, 32)
	f := func(shiftRaw uint16) bool {
		shift := int(shiftRaw % 200)
		x := make([]complex128, 300)
		Add(x, ref, shift)
		m := NormalizedCorrelate(x, ref)
		return MaxPeak(m).Index == shift
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedCorrelateUnderNoise(t *testing.T) {
	t.Parallel()
	r := rng.New(5)
	ref := randomVec(r, 256)
	Normalize(ref)
	x := make([]complex128, 2048)
	for i := range x {
		x[i] = r.Complex() // unit-power noise
	}
	sig := Clone(ref)
	Scale(sig, math.Sqrt(FromDB(0))) // 0 dB SNR
	Add(x, sig, 1000)
	m := NormalizedCorrelate(x, ref)
	pk := MaxPeak(m)
	if pk.Index < 995 || pk.Index > 1005 {
		t.Fatalf("noisy peak at %d, want ~1000", pk.Index)
	}
}

func TestAutoCorrelateZeroLagIsEnergy(t *testing.T) {
	t.Parallel()
	r := rng.New(6)
	x := randomVec(r, 100)
	ac := AutoCorrelate(x, 10)
	if math.Abs(real(ac[0])-Energy(x)) > 1e-9 || math.Abs(imag(ac[0])) > 1e-9 {
		t.Fatalf("lag 0 = %v, want energy %v", ac[0], Energy(x))
	}
	if len(ac) != 11 {
		t.Fatalf("lag count %d", len(ac))
	}
}

func TestFindPeaksSuppression(t *testing.T) {
	t.Parallel()
	metric := []float64{0, 1, 0, 0, 0.5, 0, 0, 0, 2, 0}
	peaks := FindPeaks(metric, 0.4, 3)
	if len(peaks) != 3 {
		t.Fatalf("peaks: %+v", peaks)
	}
	// Close peaks: keep larger.
	metric2 := []float64{0, 1, 0, 3, 0}
	peaks2 := FindPeaks(metric2, 0.5, 5)
	if len(peaks2) != 1 || peaks2[0].Index != 3 {
		t.Fatalf("suppression failed: %+v", peaks2)
	}
}

func TestFindPeaksThreshold(t *testing.T) {
	t.Parallel()
	metric := []float64{0.1, 0.3, 0.1}
	if got := FindPeaks(metric, 0.5, 1); len(got) != 0 {
		t.Fatalf("sub-threshold peak returned: %+v", got)
	}
}

func TestParabolicInterp(t *testing.T) {
	t.Parallel()
	// samples of a parabola peaking at x = 1.3 around index 1
	f := func(x float64) float64 { return 4 - (x-1.3)*(x-1.3) }
	metric := []float64{f(0), f(1), f(2)}
	d := ParabolicInterp(metric, 1)
	if math.Abs(d-0.3) > 1e-9 {
		t.Fatalf("interp offset %v, want 0.3", d)
	}
	if ParabolicInterp(metric, 0) != 0 || ParabolicInterp(metric, 2) != 0 {
		t.Fatal("boundary interp should be 0")
	}
}

func BenchmarkNormalizedCorrelate(b *testing.B) {
	r := rng.New(1)
	ref := randomVec(r, 256)
	x := randomVec(r, 65536)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = NormalizedCorrelate(x, ref)
	}
}
