package dsp

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestLowPassPassesAndStops(t *testing.T) {
	t.Parallel()
	const fs = 1e6
	lp := LowPass(100e3, fs, 129)
	pass := lp.ApplyComplex(Tone(4096, 20e3, 0, fs))
	stop := lp.ApplyComplex(Tone(4096, 400e3, 0, fs))
	// ignore filter edge transients
	passP := Power(pass[256 : len(pass)-256])
	stopP := Power(stop[256 : len(stop)-256])
	if passP < 0.9 {
		t.Fatalf("passband power %v, want ~1", passP)
	}
	if stopP > 0.001 {
		t.Fatalf("stopband power %v, want <0.001", stopP)
	}
}

func TestLowPassUnitDCGain(t *testing.T) {
	t.Parallel()
	lp := LowPass(50e3, 1e6, 65)
	var sum float64
	for _, h := range lp.Taps {
		sum += h
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("DC gain %v", sum)
	}
}

func TestLowPassOddTaps(t *testing.T) {
	t.Parallel()
	lp := LowPass(10e3, 1e6, 10)
	if len(lp.Taps)%2 == 0 {
		t.Fatalf("tap count %d should be odd", len(lp.Taps))
	}
}

func TestGaussianFilterProperties(t *testing.T) {
	t.Parallel()
	g := Gaussian(0.5, 8, 4)
	if len(g.Taps) != 33 {
		t.Fatalf("tap count %d", len(g.Taps))
	}
	var sum float64
	peak := 0.0
	peakIdx := 0
	for i, h := range g.Taps {
		if h < 0 {
			t.Fatal("gaussian taps must be non-negative")
		}
		sum += h
		if h > peak {
			peak, peakIdx = h, i
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("gaussian sum %v", sum)
	}
	if peakIdx != len(g.Taps)/2 {
		t.Fatalf("gaussian peak at %d, want center", peakIdx)
	}
	// symmetric
	for i := range g.Taps {
		j := len(g.Taps) - 1 - i
		if math.Abs(g.Taps[i]-g.Taps[j]) > 1e-12 {
			t.Fatal("gaussian taps not symmetric")
		}
	}
}

func TestGaussianNarrowerWithSmallerBT(t *testing.T) {
	t.Parallel()
	wide := Gaussian(0.5, 8, 4)
	narrow := Gaussian(0.3, 8, 4)
	// smaller BT → more smoothing → lower center tap
	if narrow.Taps[len(narrow.Taps)/2] >= wide.Taps[len(wide.Taps)/2] {
		t.Fatal("BT=0.3 should spread energy more than BT=0.5")
	}
}

func TestApplySameLength(t *testing.T) {
	t.Parallel()
	lp := LowPass(100e3, 1e6, 31)
	x := randomVec(rng.New(1), 777)
	y := lp.ApplyComplex(x)
	if len(y) != len(x) {
		t.Fatalf("output length %d, want %d", len(y), len(x))
	}
	xr := make([]float64, 100)
	for i := range xr {
		xr[i] = float64(i)
	}
	yr := lp.ApplyReal(xr)
	if len(yr) != len(xr) {
		t.Fatalf("real output length %d", len(yr))
	}
}

func TestConvolveFFTMatchesDirect(t *testing.T) {
	t.Parallel()
	// Force both paths and compare.
	r := rng.New(2)
	x := randomVec(r, 3000)
	h := LowPass(100e3, 1e6, 101).Taps
	direct := make([]complex128, len(x)+len(h)-1)
	for i, tap := range h {
		ct := complex(tap, 0)
		for j, v := range x {
			direct[i+j] += ct * v
		}
	}
	fftOut := convolveComplex(x, h) // small product → direct; grow it
	big := randomVec(r, 200000)
	fftBig := convolveComplex(big, h)
	directBigHead := make([]complex128, 300)
	for i, tap := range h {
		for j := 0; j < 300-i && j < len(big); j++ {
			directBigHead[i+j] += complex(tap, 0) * big[j]
		}
	}
	for i := 100; i < 200; i++ { // interior samples fully determined
		if !approxEq(fftBig[i], directBigHead[i], 1e-6) {
			t.Fatalf("fft conv mismatch at %d: %v vs %v", i, fftBig[i], directBigHead[i])
		}
	}
	for i := range direct {
		if !approxEq(fftOut[i], direct[i], 1e-6) {
			t.Fatalf("direct conv mismatch at %d", i)
		}
	}
}

func TestDecimateInterpolateRoundTrip(t *testing.T) {
	t.Parallel()
	const fs = 1e6
	x := Tone(8000, 20e3, 0, fs)
	down := Decimate(x, 4, fs)
	if len(down) != 2000 {
		t.Fatalf("decimated length %d", len(down))
	}
	f := DominantFrequency(down[100:1900], fs/4)
	if math.Abs(f-20e3) > 500 {
		t.Fatalf("decimated tone at %v", f)
	}
	up := Interpolate(down, 4, fs/4)
	if len(up) != 8000 {
		t.Fatalf("interpolated length %d", len(up))
	}
	f2 := DominantFrequency(up[500:7500], fs)
	if math.Abs(f2-20e3) > 500 {
		t.Fatalf("interpolated tone at %v", f2)
	}
}

func TestDecimateRejectsAlias(t *testing.T) {
	t.Parallel()
	const fs = 1e6
	// 400 kHz tone would alias to 150 kHz at fs/4; the anti-alias filter
	// must suppress it.
	x := Tone(8000, 400e3, 0, fs)
	down := Decimate(x, 4, fs)
	if p := Power(down[100:1900]); p > 0.01 {
		t.Fatalf("alias power %v", p)
	}
}

func TestMovingAverage(t *testing.T) {
	t.Parallel()
	x := []float64{1, 1, 1, 1, 1}
	ma := MovingAverage(x, 3)
	for _, v := range ma {
		if math.Abs(v-1) > eps {
			t.Fatalf("moving average of constant: %v", ma)
		}
	}
	step := []float64{0, 0, 0, 3, 3, 3}
	ms := MovingAverage(step, 3)
	if math.Abs(ms[3]-2) > eps { // window covers {0,3,3}
		t.Fatalf("step response %v", ms)
	}
}

func BenchmarkLowPassApply4096(b *testing.B) {
	lp := LowPass(100e3, 1e6, 63)
	x := randomVec(rng.New(1), 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = lp.ApplyComplex(x)
	}
}
