package dsp

import (
	"math"
	"sort"
)

// Window designs the named window of length n with coefficients in [0, 1].
type Window int

// Supported window shapes.
const (
	Rectangular Window = iota
	Hann
	Hamming
	Blackman
)

// Coefficients returns the window's n coefficients.
func (w Window) Coefficients(n int) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	for i := range out {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		switch w {
		case Hann:
			out[i] = 0.5 - 0.5*math.Cos(x)
		case Hamming:
			out[i] = 0.54 - 0.46*math.Cos(x)
		case Blackman:
			out[i] = 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
		default:
			out[i] = 1
		}
	}
	return out
}

// String returns the window's name.
func (w Window) String() string {
	switch w {
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return "rectangular"
	}
}

// Periodogram returns the windowed power spectral density estimate of x:
// |FFT(w·x)|²/(n·Σw²). Bin k corresponds to frequency k·fs/n (wrapping to
// negative frequencies above n/2).
func Periodogram(x []complex128, w Window) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	coeff := w.Coefficients(n)
	buf := make([]complex128, n)
	var wss float64
	for i, v := range x {
		buf[i] = v * complex(coeff[i], 0)
		wss += coeff[i] * coeff[i]
	}
	FFTInPlace(buf)
	out := make([]float64, n)
	norm := 1 / (wss * float64(n))
	for i, v := range buf {
		out[i] = (real(v)*real(v) + imag(v)*imag(v)) * norm
	}
	return out
}

// WelchPSD averages periodograms over 50%-overlapping segments of the given
// length, reducing estimator variance. segLen is clamped to len(x).
func WelchPSD(x []complex128, segLen int, w Window) []float64 {
	if segLen <= 0 || segLen > len(x) {
		segLen = len(x)
	}
	if segLen == 0 {
		return nil
	}
	hop := segLen / 2
	if hop == 0 {
		hop = 1
	}
	acc := make([]float64, segLen)
	count := 0
	for start := 0; start+segLen <= len(x); start += hop {
		p := Periodogram(x[start:start+segLen], w)
		for i, v := range p {
			acc[i] += v
		}
		count++
	}
	if count == 0 {
		return Periodogram(x[:segLen], w)
	}
	for i := range acc {
		acc[i] /= float64(count)
	}
	return acc
}

// Goertzel evaluates the DFT of x at a single frequency (Hz) given the
// sample rate, in O(n) time — useful for probing the discrete FSK tone
// locations without a full FFT.
func Goertzel(x []complex128, freq, sampleRate float64) complex128 {
	w := 2 * math.Pi * freq / sampleRate
	s, c := math.Sincos(-w)
	rot := complex(c, s) // e^{-jw}
	var acc complex128
	cur := complex(1, 0)
	for _, v := range x {
		acc += v * cur
		cur *= rot
	}
	return acc
}

// DominantFrequency estimates the strongest spectral component of x in Hz,
// refined by parabolic interpolation of the magnitude spectrum. It returns
// 0 for inputs shorter than 2 samples.
func DominantFrequency(x []complex128, sampleRate float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	spec := FFT(x)
	mags := Abs(spec)
	pk := MaxPeak(mags)
	frac := ParabolicInterp(mags, pk.Index)
	bin := float64(pk.Index) + frac
	if bin > float64(n)/2 {
		bin -= float64(n)
	}
	return bin * sampleRate / float64(n)
}

// EstimateCFO estimates a small residual carrier frequency offset from the
// average phase increment between consecutive samples of an (approximately)
// constant-envelope signal. Valid for |CFO| < sampleRate/2 over the
// observation, and most accurate when the underlying modulation averages
// out (e.g. over a 0101 FSK preamble or a full chirp).
func EstimateCFO(x []complex128, sampleRate float64) float64 {
	if len(x) < 2 {
		return 0
	}
	var acc complex128
	for i := 1; i < len(x); i++ {
		acc += x[i] * complex(real(x[i-1]), -imag(x[i-1]))
	}
	return math.Atan2(imag(acc), real(acc)) * sampleRate / (2 * math.Pi)
}

// EstimateSNR estimates the signal-to-noise power ratio (linear) of a
// received vector given a clean reference-aligned template. It projects the
// received signal onto the template to find the complex gain, then measures
// residual power. Both inputs must be the same length.
func EstimateSNR(rx, template []complex128) float64 {
	n := len(rx)
	if n == 0 || len(template) != n {
		return 0
	}
	tE := Energy(template)
	if tE == 0 {
		return 0
	}
	var proj complex128
	for i := range rx {
		proj += rx[i] * complex(real(template[i]), -imag(template[i]))
	}
	gain := proj / complex(tE, 0)
	var sigE, noiseE float64
	for i := range rx {
		s := gain * template[i]
		d := rx[i] - s
		sigE += real(s)*real(s) + imag(s)*imag(s)
		noiseE += real(d)*real(d) + imag(d)*imag(d)
	}
	if noiseE == 0 {
		return math.Inf(1)
	}
	return sigE / noiseE
}

// NoiseFloor estimates the noise power of a metric vector as the median of
// |x|², a robust estimator that ignores sparse signal spikes.
func NoiseFloor(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	mags := AbsSq(x)
	return median(mags)
}

func median(v []float64) float64 {
	c := make([]float64, len(v))
	copy(c, v)
	sort.Float64s(c)
	return c[len(c)/2]
}
