// Package dsp implements the digital signal processing primitives that the
// rest of the GalioT reproduction is built on: FFTs, FIR filtering,
// correlation, windowing, resampling and spectral estimation, all operating
// on complex-baseband sample vectors ([]complex128).
//
// The package is pure Go with no dependencies outside the standard library.
// Algorithms favor clarity and numerical robustness over absolute speed, but
// the FFT-based paths (correlation, filtering of long vectors) are fast
// enough to run the paper's full SNR sweeps in seconds.
package dsp

import (
	"math"
	"math/bits"
	"sync"
)

// fftPlan caches the twiddle factors and bit-reversal permutation for a
// power-of-two FFT of a fixed size.
type fftPlan struct {
	n       int
	twiddle []complex128 // e^{-2πik/n} for k in [0, n/2)
	rev     []int
}

var planCache sync.Map // map[int]*fftPlan

func getPlan(n int) *fftPlan {
	if p, ok := planCache.Load(n); ok {
		return p.(*fftPlan)
	}
	p := newPlan(n)
	actual, _ := planCache.LoadOrStore(n, p)
	return actual.(*fftPlan)
}

func newPlan(n int) *fftPlan {
	p := &fftPlan{n: n}
	p.twiddle = make([]complex128, n/2)
	for k := range p.twiddle {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.twiddle[k] = complex(c, s)
	}
	p.rev = make([]int, n)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := range p.rev {
		p.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n. It panics for n <= 0.
func NextPow2(n int) int {
	if n <= 0 {
		panic("dsp: NextPow2 of non-positive length")
	}
	if IsPow2(n) {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// FFT returns the discrete Fourier transform of x. The input is not
// modified. Any length is accepted: powers of two use an in-place radix-2
// algorithm, other lengths use Bluestein's algorithm (so the cost stays
// O(n log n)).
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	FFTInPlace(out)
	return out
}

// IFFT returns the inverse discrete Fourier transform of x, scaled by 1/n so
// that IFFT(FFT(x)) == x. The input is not modified.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	IFFTInPlace(out)
	return out
}

// FFTInPlace computes the DFT of x in place.
func FFTInPlace(x []complex128) {
	n := len(x)
	switch {
	case n <= 1:
	case IsPow2(n):
		radix2(x)
	default:
		bluestein(x)
	}
}

// IFFTInPlace computes the inverse DFT of x in place (with 1/n scaling).
func IFFTInPlace(x []complex128) {
	n := len(x)
	if n <= 1 {
		return
	}
	// IFFT(x) = conj(FFT(conj(x))) / n
	for i := range x {
		x[i] = complex(real(x[i]), -imag(x[i]))
	}
	FFTInPlace(x)
	inv := 1 / float64(n)
	for i := range x {
		x[i] = complex(real(x[i])*inv, -imag(x[i])*inv)
	}
}

// radix2 is the iterative Cooley-Tukey decimation-in-time FFT for
// power-of-two lengths.
func radix2(x []complex128) {
	n := len(x)
	p := getPlan(n)
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[tw]
				tw += step
				t := w * x[k+half]
				x[k+half] = x[k] - t
				x[k] = x[k] + t
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution, which is in
// turn computed with power-of-two FFTs (chirp-z transform).
func bluestein(x []complex128) {
	n := len(x)
	m := NextPow2(2*n - 1)

	// w[k] = e^{-iπk²/n}; indices are taken mod 2n to stay exact.
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		j := (int64(k) * int64(k)) % int64(2*n)
		s, c := math.Sincos(-math.Pi * float64(j) / float64(n))
		w[k] = complex(c, s)
	}

	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
		bc := complex(real(w[k]), -imag(w[k])) // conj
		b[k] = bc
		if k > 0 {
			b[m-k] = bc
		}
	}
	radix2(a)
	radix2(b)
	for i := range a {
		a[i] *= b[i]
	}
	// inverse FFT of a, power-of-two length
	for i := range a {
		a[i] = complex(real(a[i]), -imag(a[i]))
	}
	radix2(a)
	inv := 1 / float64(m)
	for i := range a {
		a[i] = complex(real(a[i])*inv, -imag(a[i])*inv)
	}
	for k := 0; k < n; k++ {
		x[k] = a[k] * w[k]
	}
}

// FFTShift rotates the spectrum so the zero-frequency bin is centered,
// returning a new slice. For even n, bin n/2 becomes the first element.
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	h := (n + 1) / 2
	copy(out, x[h:])
	copy(out[n-h:], x[:h])
	return out
}

// BinToFreq converts an FFT bin index (0..n-1) to a signed frequency in Hz
// given the sample rate. Bins above n/2 map to negative frequencies.
func BinToFreq(bin, n int, sampleRate float64) float64 {
	if bin > n/2 {
		bin -= n
	}
	return float64(bin) * sampleRate / float64(n)
}

// FreqToBin converts a signed frequency in Hz to the nearest FFT bin index
// in [0, n).
func FreqToBin(freq float64, n int, sampleRate float64) int {
	bin := int(math.Round(freq * float64(n) / sampleRate))
	bin %= n
	if bin < 0 {
		bin += n
	}
	return bin
}
