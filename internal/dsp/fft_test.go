package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

const eps = 1e-9

func approxEq(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

// dftNaive is the O(n²) reference DFT used to validate the fast transforms.
func dftNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s, c := math.Sincos(ang)
			acc += x[t] * complex(c, s)
		}
		out[k] = acc
	}
	return out
}

func randomVec(r *rng.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return out
}

func TestFFTMatchesNaive(t *testing.T) {
	t.Parallel()
	r := rng.New(1)
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 33, 64, 100, 128, 255, 256} {
		x := randomVec(r, n)
		got := FFT(x)
		want := dftNaive(x)
		for k := range want {
			if !approxEq(got[k], want[k], 1e-7*float64(n)) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	t.Parallel()
	r := rng.New(2)
	for _, n := range []int{1, 2, 8, 13, 64, 100, 1024, 1000} {
		x := randomVec(r, n)
		y := IFFT(FFT(x))
		for i := range x {
			if !approxEq(x[i], y[i], 1e-8*float64(n)) {
				t.Fatalf("n=%d sample %d: got %v want %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	t.Parallel()
	r := rng.New(3)
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%512) + 1
		local := r.Split(seed)
		x := randomVec(local, n)
		y := IFFT(FFT(x))
		for i := range x {
			if !approxEq(x[i], y[i], 1e-7*float64(n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTLinearity(t *testing.T) {
	t.Parallel()
	r := rng.New(4)
	x := randomVec(r, 128)
	y := randomVec(r, 128)
	sum := make([]complex128, 128)
	for i := range sum {
		sum[i] = x[i] + 2*y[i]
	}
	fx, fy, fs := FFT(x), FFT(y), FFT(sum)
	for i := range fs {
		if !approxEq(fs[i], fx[i]+2*fy[i], 1e-7) {
			t.Fatalf("linearity violated at bin %d", i)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	t.Parallel()
	r := rng.New(5)
	for _, n := range []int{64, 100, 333} {
		x := randomVec(r, n)
		fx := FFT(x)
		if timeE, freqE := Energy(x), Energy(fx)/float64(n); math.Abs(timeE-freqE) > 1e-6*timeE {
			t.Fatalf("n=%d Parseval violated: %v vs %v", n, timeE, freqE)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	t.Parallel()
	x := make([]complex128, 16)
	x[0] = 1
	fx := FFT(x)
	for i, v := range fx {
		if !approxEq(v, 1, eps) {
			t.Fatalf("impulse FFT bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTToneBin(t *testing.T) {
	t.Parallel()
	// A pure tone at bin k must concentrate all energy in bin k.
	const n = 64
	for _, k := range []int{0, 1, 5, 31, 32, 63} {
		x := make([]complex128, n)
		for i := range x {
			ang := 2 * math.Pi * float64(k) * float64(i) / float64(n)
			s, c := math.Sincos(ang)
			x[i] = complex(c, s)
		}
		fx := FFT(x)
		idx, mag := MaxAbs(fx)
		if idx != k {
			t.Fatalf("tone at bin %d detected at %d", k, idx)
		}
		if math.Abs(mag-float64(n)) > 1e-8 {
			t.Fatalf("tone magnitude %v, want %v", mag, n)
		}
	}
}

func TestFFTShift(t *testing.T) {
	t.Parallel()
	x := []complex128{0, 1, 2, 3}
	got := FFTShift(x)
	want := []complex128{2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FFTShift got %v want %v", got, want)
		}
	}
	odd := []complex128{0, 1, 2, 3, 4}
	gotOdd := FFTShift(odd)
	wantOdd := []complex128{3, 4, 0, 1, 2}
	for i := range wantOdd {
		if gotOdd[i] != wantOdd[i] {
			t.Fatalf("odd FFTShift got %v want %v", gotOdd, wantOdd)
		}
	}
}

func TestBinFreqConversions(t *testing.T) {
	t.Parallel()
	const n, fs = 1024, 1e6
	for _, f := range []float64{0, 1000, -1000, 250000, -250000, 499000} {
		bin := FreqToBin(f, n, fs)
		back := BinToFreq(bin, n, fs)
		if math.Abs(back-f) > fs/n/2+1e-9 {
			t.Fatalf("freq %v -> bin %d -> %v", f, bin, back)
		}
	}
}

func TestNextPow2(t *testing.T) {
	t.Parallel()
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := randomVec(rng.New(1), 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := Clone(x)
		FFTInPlace(buf)
	}
}

func BenchmarkFFT4096(b *testing.B) {
	x := randomVec(rng.New(1), 4096)
	for i := 0; i < b.N; i++ {
		buf := Clone(x)
		FFTInPlace(buf)
	}
}

func BenchmarkFFTBluestein1000(b *testing.B) {
	x := randomVec(rng.New(1), 1000)
	for i := 0; i < b.N; i++ {
		buf := Clone(x)
		FFTInPlace(buf)
	}
}
