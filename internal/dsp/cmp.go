package dsp

import (
	"math"
	"math/cmplx"
)

// ApproxEqual reports whether a and b differ by at most tol. This is the
// comparison DSP code must use instead of ==/!= (enforced by the floateq
// lint rule): filter, FFT and resampler outputs accumulate rounding, so
// exact equality on computed float64 values is a latent bug. NaN compares
// unequal to everything, including itself.
func ApproxEqual(a, b, tol float64) bool {
	//lint:ignore floateq exact equality implies approximate equality; also equates same-sign infinities, where a-b is NaN
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

// ApproxEqualRel reports whether a and b agree to within the relative
// tolerance rel, scaled by the larger magnitude (with an absolute floor of
// rel itself, so values near zero compare sanely).
func ApproxEqualRel(a, b, rel float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= rel*scale
}

// ApproxEqualComplex reports whether |a-b| <= tol in the complex plane.
func ApproxEqualComplex(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}
