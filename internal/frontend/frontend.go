// Package frontend models the inexpensive RTL-SDR receiver used by the
// GalioT gateway prototype: a fixed sample rate (1 MHz in the paper), an
// automatic gain stage, 8-bit I/Q quantization, DC offset, IQ gain/phase
// imbalance and tuner frequency error. Passing the clean channel output
// through this model ensures the detector and cloud decoder operate on the
// same impaired, quantized stream a real $20 dongle produces.
package frontend

import (
	"math"

	"repro/internal/dsp"
	"repro/internal/iq"
)

// Config describes the receiver impairments.
type Config struct {
	SampleRate  float64 // Hz (1e6 in the paper's prototype)
	FreqError   float64 // residual tuner offset in Hz applied to everything received
	DCOffsetI   float64 // additive DC on the I rail (full scale = 1)
	DCOffsetQ   float64 // additive DC on the Q rail
	IQGainErr   float64 // relative gain error of Q vs I (e.g. 0.02 = 2 %)
	IQPhaseErr  float64 // quadrature phase error in radians
	Quantize    bool    // apply 8-bit cu8 quantization (RTL-SDR ADC)
	AGCTargetDB float64 // AGC output power target in dBFS (default -12)
}

// Receiver applies the impairment chain. The zero value is unusable; use
// New.
type Receiver struct {
	cfg Config
}

// New returns a Receiver. SampleRate must be positive; AGCTargetDB defaults
// to -12 dBFS.
func New(cfg Config) *Receiver {
	if cfg.SampleRate <= 0 {
		cfg.SampleRate = 1e6
	}
	if cfg.AGCTargetDB == 0 {
		cfg.AGCTargetDB = -12
	}
	return &Receiver{cfg: cfg}
}

// Default returns the paper's prototype front-end: 1 MHz, 8-bit
// quantization, small DC offset, mild IQ imbalance and 500 Hz tuner error.
func Default() *Receiver {
	return New(Config{
		SampleRate: 1e6,
		FreqError:  500,
		DCOffsetI:  0.002,
		DCOffsetQ:  -0.001,
		IQGainErr:  0.01,
		IQPhaseErr: 0.01,
		Quantize:   true,
	})
}

// Ideal returns a distortion-free front-end at the given rate, for
// algorithm-isolation experiments.
func Ideal(sampleRate float64) *Receiver {
	return New(Config{SampleRate: sampleRate})
}

// Config returns the active configuration.
func (r *Receiver) Config() Config { return r.cfg }

// SampleRate returns the front-end sample rate in Hz.
func (r *Receiver) SampleRate() float64 { return r.cfg.SampleRate }

// Capture passes a clean antenna-reference signal through the impairment
// chain and returns what the host sees. The input is not modified.
func (r *Receiver) Capture(antenna []complex128) []complex128 {
	out := dsp.Clone(antenna)
	c := r.cfg
	if c.FreqError != 0 {
		dsp.Mix(out, c.FreqError, 0, c.SampleRate)
	}
	if c.IQGainErr != 0 || c.IQPhaseErr != 0 {
		// Q rail sees gain (1+g) and phase skew φ: q' = (1+g)(q cosφ + i sinφ)
		g := 1 + c.IQGainErr
		sinp, cosp := math.Sin(c.IQPhaseErr), math.Cos(c.IQPhaseErr)
		for i, v := range out {
			re, im := real(v), imag(v)
			out[i] = complex(re, g*(im*cosp+re*sinp))
		}
	}
	if c.DCOffsetI != 0 || c.DCOffsetQ != 0 {
		dc := complex(c.DCOffsetI, c.DCOffsetQ)
		for i := range out {
			out[i] += dc
		}
	}
	var gain float64 = 1
	if c.Quantize {
		// AGC: scale so the average power sits at the target, leaving
		// headroom for peaks, then quantize to 8 bits.
		p := dsp.Power(out)
		if p > 0 {
			gain = math.Sqrt(dsp.FromDB(c.AGCTargetDB) / p)
			dsp.Scale(out, gain)
		}
		out = iq.Quantize(out, iq.CU8)
		// Undo the AGC gain so downstream algorithms see calibrated power
		// levels (the quantization noise remains, as in hardware with a
		// known gain setting).
		if gain != 0 {
			dsp.Scale(out, 1/gain)
		}
	}
	return out
}
