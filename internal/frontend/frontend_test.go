package frontend

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/rng"
)

func TestIdealIsTransparent(t *testing.T) {
	r := Ideal(1e6)
	in := dsp.Tone(1000, 50e3, 0, 1e6)
	out := r.Capture(in)
	for i := range in {
		if out[i] != in[i] {
			t.Fatal("ideal front-end altered samples")
		}
	}
}

func TestCaptureDoesNotMutateInput(t *testing.T) {
	r := Default()
	in := dsp.Tone(1000, 50e3, 0, 1e6)
	ref := dsp.Clone(in)
	r.Capture(in)
	for i := range in {
		if in[i] != ref[i] {
			t.Fatal("Capture mutated its input")
		}
	}
}

func TestFreqErrorShiftsSpectrum(t *testing.T) {
	r := New(Config{SampleRate: 1e6, FreqError: 5000})
	in := dsp.Tone(4096, 100e3, 0, 1e6)
	out := r.Capture(in)
	f := dsp.DominantFrequency(out, 1e6)
	if math.Abs(f-105e3) > 300 {
		t.Fatalf("tone at %v, want 105 kHz", f)
	}
}

func TestDCOffset(t *testing.T) {
	r := New(Config{SampleRate: 1e6, DCOffsetI: 0.05, DCOffsetQ: -0.03})
	out := r.Capture(make([]complex128, 1000))
	var mean complex128
	for _, v := range out {
		mean += v
	}
	mean /= 1000
	if math.Abs(real(mean)-0.05) > 1e-9 || math.Abs(imag(mean)+0.03) > 1e-9 {
		t.Fatalf("dc %v", mean)
	}
}

func TestIQImbalanceCreatesImage(t *testing.T) {
	// Gain/phase imbalance of a +f tone creates an image at -f.
	r := New(Config{SampleRate: 1e6, IQGainErr: 0.05, IQPhaseErr: 0.05})
	in := dsp.Tone(8192, 100e3, 0, 1e6)
	out := r.Capture(in)
	spec := dsp.Abs(dsp.FFT(out))
	n := len(spec)
	posBin := dsp.FreqToBin(100e3, n, 1e6)
	negBin := dsp.FreqToBin(-100e3, n, 1e6)
	if spec[negBin] < spec[posBin]/100 {
		t.Fatalf("image too weak: pos %v neg %v", spec[posBin], spec[negBin])
	}
	if spec[negBin] > spec[posBin]/5 {
		t.Fatalf("image too strong: pos %v neg %v", spec[posBin], spec[negBin])
	}
}

func TestQuantizationAddsBoundedNoise(t *testing.T) {
	r := New(Config{SampleRate: 1e6, Quantize: true})
	gen := rng.New(3)
	in := channel.AWGN(20000, gen)
	dsp.Scale(in, 0.1)
	out := r.Capture(in)
	// error power must be small relative to signal power
	var errP float64
	for i := range in {
		d := out[i] - in[i]
		errP += real(d)*real(d) + imag(d)*imag(d)
	}
	errP /= float64(len(in))
	sigP := dsp.Power(in)
	snr := dsp.DB(sigP / errP)
	// 8-bit quantization with AGC headroom gives roughly 30-45 dB SQNR
	if snr < 25 {
		t.Fatalf("quantization SNR %v dB too low", snr)
	}
}

func TestDefaultEndToEndStillDecodable(t *testing.T) {
	// The full impairment chain must preserve enough fidelity that a clean
	// strong tone stays dominant.
	r := Default()
	in := dsp.Tone(8192, 200e3, 0, 1e6)
	dsp.Scale(in, 0.3)
	out := r.Capture(in)
	f := dsp.DominantFrequency(out, 1e6)
	if math.Abs(f-200e3-500) > 1000 { // 500 Hz tuner error expected
		t.Fatalf("tone at %v", f)
	}
}

func TestConfigAccessors(t *testing.T) {
	r := Default()
	if r.SampleRate() != 1e6 {
		t.Fatal("sample rate")
	}
	if !r.Config().Quantize {
		t.Fatal("default should quantize")
	}
}
