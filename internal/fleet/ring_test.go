package fleet

import (
	"fmt"
	"testing"
)

// ringKeys synthesizes a deterministic gateway fleet's routing keys.
func ringKeys(n int) []struct {
	gw    string
	epoch uint64
} {
	keys := make([]struct {
		gw    string
		epoch uint64
	}, n)
	for i := range keys {
		keys[i].gw = fmt.Sprintf("gw-%04d", i)
		keys[i].epoch = uint64(i)*2654435761 + 1
	}
	return keys
}

// TestRingDistribution checks the satellite contract: with a realistic
// fleet of keys, every shard's share stays within ±15% of the even split.
func TestRingDistribution(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		r := NewRing(shards, 0)
		const n = 8000
		counts := make([]int, shards)
		for _, k := range ringKeys(n) {
			counts[r.Lookup(k.gw, k.epoch)]++
		}
		mean := float64(n) / float64(shards)
		lo, hi := int(mean*0.85), int(mean*1.15)
		for s, c := range counts {
			if c < lo || c > hi {
				t.Errorf("shards=%d: shard %d got %d keys, want within [%d, %d] (±15%% of %.0f): %v",
					shards, s, c, lo, hi, mean, counts)
			}
		}
	}
}

// TestRingStability checks that two independently built rings agree, and
// that lookups are pure.
func TestRingStability(t *testing.T) {
	a, b := NewRing(4, 0), NewRing(4, 0)
	for _, k := range ringKeys(500) {
		if got, want := a.Lookup(k.gw, k.epoch), b.Lookup(k.gw, k.epoch); got != want {
			t.Fatalf("rings disagree on (%s, %d): %d vs %d", k.gw, k.epoch, got, want)
		}
		if again := a.Lookup(k.gw, k.epoch); again != a.Lookup(k.gw, k.epoch) || again != b.Lookup(k.gw, k.epoch) {
			t.Fatalf("lookup not stable for (%s, %d)", k.gw, k.epoch)
		}
	}
}

// TestRingMinimalMovement checks the consistent-hashing property the dedup
// caches rely on across resizes: growing the ring from N to N+1 shards
// moves only keys that land on the new shard (nobody reshuffles between
// surviving shards), and the moved fraction is close to the ideal
// 1/(N+1).
func TestRingMinimalMovement(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		before := NewRing(shards, 0)
		after := NewRing(shards+1, 0)
		keys := ringKeys(8000)
		moved := 0
		for _, k := range keys {
			a, b := before.Lookup(k.gw, k.epoch), after.Lookup(k.gw, k.epoch)
			if a == b {
				continue
			}
			moved++
			if b != shards {
				t.Fatalf("shards=%d: key (%s, %d) moved %d→%d, but only moves to the new shard %d are allowed",
					shards, k.gw, k.epoch, a, b, shards)
			}
		}
		ideal := float64(len(keys)) / float64(shards+1)
		// Twice the ideal churn is the red line: beyond it the ring is
		// reshuffling, not rebalancing.
		if float64(moved) > 2*ideal {
			t.Errorf("shards=%d→%d: %d keys moved, ideal %.0f — too much churn", shards, shards+1, moved, ideal)
		}
		if moved == 0 {
			t.Errorf("shards=%d→%d: no keys moved — the new shard is empty", shards, shards+1)
		}
	}
}

// TestRingSingleShard pins the degenerate plane: everything routes to 0.
func TestRingSingleShard(t *testing.T) {
	r := NewRing(1, 4)
	for _, k := range ringKeys(100) {
		if got := r.Lookup(k.gw, k.epoch); got != 0 {
			t.Fatalf("single-shard ring routed (%s, %d) to %d", k.gw, k.epoch, got)
		}
	}
}
