package fleet

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/backhaul"
	"repro/internal/cloud"
	"repro/internal/farm"
	"repro/internal/obs"
	"repro/internal/phy"
)

// Config assembles a Front.
type Config struct {
	// Shards is the decode-shard count (default 1). Each shard is a full
	// cloud.Service with its own decode farm and its own replay dedup
	// cache — shared-nothing by construction.
	Shards int
	// VNodes is the ring's virtual-node count per shard (default
	// DefaultVNodes).
	VNodes int
	// Workers is each shard's decode-farm worker count (default 2).
	Workers int
	// QueueDepth is each shard's admission-queue bound (default 64). The
	// plane's aggregate capacity — Shards × QueueDepth — is advertised to
	// v2 gateways in the hello ack.
	QueueDepth int
	// Techs is the technology set every shard decodes. Required.
	Techs []phy.Technology
	// Obs is the plane-wide registry: the shards' cloud_* series and the
	// front's cloud_fleet_* / cloud_shard<i>_* series land here. Nil
	// creates a private registry.
	Obs *obs.Registry
	// Tracer receives per-segment decode spans from every shard (nil
	// disables tracing).
	Tracer *obs.Tracer
	// Clock feeds each shard farm's decode-duration histogram (see
	// farm.Config.Clock). Nil skips those readings.
	Clock func() int64
	// Logf receives front and shard diagnostics; nil silences them.
	Logf func(format string, args ...any)
	// Decode overrides every shard's decode function (load tests inject
	// synthetic work; see internal/fleetsim). Nil uses each shard
	// service's real collision decoder.
	Decode farm.DecodeFunc
	// WrapDecode, when set, wraps each shard's effective decode function
	// (the override above, or the shard's real decoder). The fleet
	// simulator hooks in here to count decode invocations per shard and
	// catch cross-shard duplicates.
	WrapDecode func(shard int, next farm.DecodeFunc) farm.DecodeFunc
	// DedupTTL age-bounds each shard's replay dedup cache; DedupNow
	// supplies the wall clock for it (pass time.Now). Zero/nil keeps the
	// caches purely count-bound.
	DedupTTL time.Duration
	DedupNow func() time.Time
	// Journal records shard lifecycle events: fleet_shard_attach as each
	// shard comes up in New, fleet_shard_detach as Close drains it. Nil
	// disables event recording.
	Journal *obs.Journal
	// Health receives the plane's checks: fleet_shard<i>_liveness per
	// shard (unhealthy once the shard is detached) and each shard farm's
	// cloud_shard<i>_headroom readiness check. Nil skips registration.
	Health *obs.Health
}

// shard is one shared-nothing decode unit plus its front-side metrics.
type shard struct {
	svc  *cloud.Service
	farm *farm.Farm
	// reg is the shard farm's private registry, retained so the fleet
	// aggregator (Targets) and tooling (ShardRegistry) can read the raw
	// per-shard series, not just the gauges re-exported by Stats.
	reg *obs.Registry
	// detached flips when Close drains the shard; the shard's liveness
	// check reads it.
	detached atomic.Bool

	sessions *obs.Counter // cloud_shard<i>_sessions_total
	active   *obs.Gauge   // cloud_shard<i>_sessions_active_count

	// Farm readings re-exported onto the plane registry by refresh; the
	// farm itself runs on a private registry so its numbers stay
	// per-shard.
	queuedG    *obs.Gauge // cloud_shard<i>_jobs_queued_count
	admittedG  *obs.Gauge // cloud_shard<i>_jobs_admitted_count
	completedG *obs.Gauge // cloud_shard<i>_jobs_completed_count
	rejectedG  *obs.Gauge // cloud_shard<i>_jobs_rejected_count
	waitP99G   *obs.Gauge // cloud_shard<i>_queue_wait_p99_samples
}

// Front is the routing tier of the sharded decode plane. It owns no
// listener: plug HandleConn into a cloud.Server (NewServer does exactly
// that) or call it directly with any byte stream.
type Front struct {
	cfg  Config
	ring *Ring
	reg  *obs.Registry

	shards   []*shard
	capacity int // Shards × QueueDepth, the hello-ack aggregate hint

	sessionsTotal *obs.Counter // cloud_fleet_sessions_total
	shardsGauge   *obs.Gauge   // cloud_fleet_shards_count
}

// New builds the plane: ring, shards, farms. Callers must Close it to
// drain the shard farms.
func New(cfg Config) (*Front, error) {
	if len(cfg.Techs) == 0 {
		return nil, fmt.Errorf("fleet: no technologies configured")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	f := &Front{
		cfg:           cfg,
		ring:          NewRing(cfg.Shards, cfg.VNodes),
		reg:           reg,
		capacity:      cfg.Shards * cfg.QueueDepth,
		sessionsTotal: reg.Counter("cloud_fleet_sessions_total"),
		shardsGauge:   reg.Gauge("cloud_fleet_shards_count"),
	}
	f.shardsGauge.Set(int64(cfg.Shards))
	for i := 0; i < cfg.Shards; i++ {
		svc := cloud.NewService(cfg.Techs)
		svc.UseObs(reg, cfg.Tracer)
		if cfg.Logf != nil {
			idx := i
			svc.Logf = func(format string, args ...any) {
				cfg.Logf("shard %d: "+format, append([]any{idx}, args...)...)
			}
		}
		if cfg.DedupTTL > 0 && cfg.DedupNow != nil {
			svc.SetDedupTTL(cfg.DedupTTL, cfg.DedupNow)
		}
		// The farm runs on a private registry so Snapshot stays
		// per-shard; the shared-registry view is re-exported below.
		dec := cfg.Decode
		if dec == nil {
			dec = svc.DecodeFunc()
		}
		if cfg.WrapDecode != nil {
			dec = cfg.WrapDecode(i, dec)
		}
		freg := obs.NewRegistry()
		fm := svc.StartFarm(farm.Config{
			Workers:    cfg.Workers,
			QueueDepth: cfg.QueueDepth,
			Obs:        freg,
			Clock:      cfg.Clock,
			Decode:     dec,
		})
		p := fmt.Sprintf("cloud_shard%d_", i)
		sh := &shard{
			svc:        svc,
			farm:       fm,
			reg:        freg,
			sessions:   reg.Counter(p + "sessions_total"),
			active:     reg.Gauge(p + "sessions_active_count"),
			queuedG:    reg.Gauge(p + "jobs_queued_count"),
			admittedG:  reg.Gauge(p + "jobs_admitted_count"),
			completedG: reg.Gauge(p + "jobs_completed_count"),
			rejectedG:  reg.Gauge(p + "jobs_rejected_count"),
			waitP99G:   reg.Gauge(p + "queue_wait_p99_samples"),
		}
		f.shards = append(f.shards, sh)
		cfg.Journal.Record("fleet_shard_attach", int64(i))
		if cfg.Health != nil {
			cfg.Health.Register(fmt.Sprintf("fleet_shard%d_liveness", i), func() obs.CheckResult {
				if sh.detached.Load() {
					return obs.Unhealthy("shard detached")
				}
				return obs.Healthy(fmt.Sprintf("%d sessions active", sh.active.Value()))
			})
			fm.RegisterHealth(cfg.Health, fmt.Sprintf("cloud_shard%d_headroom", i))
		}
	}
	return f, nil
}

// Registry returns the plane-wide metric registry.
func (f *Front) Registry() *obs.Registry { return f.reg }

// Ring returns the routing ring (immutable).
func (f *Front) Ring() *Ring { return f.ring }

// Shards returns the shard count.
func (f *Front) Shards() int { return len(f.shards) }

// Capacity returns the plane's aggregate admission capacity (the hello-ack
// hint): shard count × per-shard queue depth.
func (f *Front) Capacity() int { return f.capacity }

// Service returns shard i's cloud service, for tests and tooling.
func (f *Front) Service(i int) *cloud.Service { return f.shards[i].svc }

// ShardRegistry returns shard i's private farm registry (the raw cloud_*
// and farm_* series of that shard, not the cloud_shard<i>_* gauges the
// plane registry re-exports).
func (f *Front) ShardRegistry(i int) *obs.Registry { return f.shards[i].reg }

// Targets exposes the whole plane as fleet-aggregation scrape targets:
// the plane registry as "front" plus each shard farm's private registry
// as "shard<i>". Feeding them to an obs.Fleet makes every per-shard
// series visible through /fleet/metrics with exact per-target breakdown.
func (f *Front) Targets() []obs.Target {
	ts := make([]obs.Target, 0, len(f.shards)+1)
	ts = append(ts, obs.RegistryTarget("front", f.reg))
	for i, sh := range f.shards {
		ts = append(ts, obs.RegistryTarget(fmt.Sprintf("shard%d", i), sh.reg))
	}
	return ts
}

// HandleConn serves one gateway connection: read the hello, route the
// session to its shard by (gateway, epoch), and let the shard's service
// run the session to completion. The hello ack the shard sends carries the
// plane's aggregate capacity so the gateway can size its window for the
// fleet, while Window/Workers remain the landing shard's own numbers — a
// session's in-flight ceiling is bounded by the shard that actually
// decodes it.
func (f *Front) HandleConn(rw io.ReadWriter) error {
	conn := backhaul.NewConn(rw)
	conn.SetMetrics(backhaul.NewConnMetrics(f.reg))
	hello, err := cloud.ReadHello(conn)
	if err != nil {
		return err
	}
	idx := f.ring.Lookup(hello.GatewayID, hello.Epoch)
	sh := f.shards[idx]
	f.sessionsTotal.Inc()
	sh.sessions.Inc()
	sh.active.Add(1)
	defer sh.active.Add(-1)
	if f.cfg.Logf != nil {
		f.cfg.Logf("routing %s (epoch %d) to shard %d/%d", hello.GatewayID, hello.Epoch, idx, len(f.shards))
	}
	hint := backhaul.HelloAck{Shards: len(f.shards), Capacity: f.capacity}
	return sh.svc.ServeHello(conn, hello, hint)
}

// NewServer wraps the front in a TCP server: accepted connections flow
// through HandleConn, and the server's own metrics (accept retries, active
// sessions, reaped sessions) land on the plane registry.
func (f *Front) NewServer() *cloud.Server {
	return &cloud.Server{Handler: f.HandleConn, Obs: f.reg, Logf: f.cfg.Logf}
}

// ShardStats is one shard's point-in-time view.
type ShardStats struct {
	Shard    int        `json:"shard"`
	Sessions uint64     `json:"sessions"` // sessions routed here so far
	Active   int64      `json:"active"`   // sessions currently being served
	Farm     farm.Stats `json:"farm"`
}

// Stats snapshots every shard (index order) and refreshes the per-shard
// cloud_shard<i>_* gauges on the plane registry from the farms' private
// counters.
func (f *Front) Stats() []ShardStats {
	out := make([]ShardStats, len(f.shards))
	for i, sh := range f.shards {
		fs := sh.farm.Snapshot()
		sh.queuedG.Set(int64(fs.Queued))
		sh.admittedG.Set(int64(fs.Admitted))
		sh.completedG.Set(int64(fs.Completed))
		sh.rejectedG.Set(int64(fs.Rejected))
		sh.waitP99G.Set(fs.P99QueueWait)
		out[i] = ShardStats{
			Shard:    i,
			Sessions: sh.sessions.Value(),
			Active:   sh.active.Value(),
			Farm:     fs,
		}
	}
	return out
}

// Close drains every shard farm: intake stops, every admitted segment
// finishes. Close the accepting server first.
func (f *Front) Close() {
	for i, sh := range f.shards {
		sh.svc.Close()
		if sh.detached.CompareAndSwap(false, true) {
			f.cfg.Journal.Record("fleet_shard_detach", int64(i))
		}
	}
}
