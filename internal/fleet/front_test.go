package fleet

import (
	"bytes"
	"fmt"
	"net"
	"sort"
	"testing"

	"repro/internal/backhaul"
	"repro/internal/channel"
	"repro/internal/cloud"
	"repro/internal/frontend"
	"repro/internal/gateway"
	"repro/internal/phy"
	"repro/internal/phy/xbee"
	"repro/internal/phy/zwave"
	"repro/internal/rng"
)

const fs = 1e6

func testTechs() []phy.Technology {
	return []phy.Technology{xbee.Default(), zwave.Default()}
}

// capture builds one clean modulated packet in noise, gateway-side.
func capture(t *testing.T, tech phy.Technology, seed uint64, payload []byte) []complex128 {
	t.Helper()
	sig, err := tech.Modulate(payload, fs)
	if err != nil {
		t.Fatal(err)
	}
	gen := rng.New(seed)
	return channel.Mix(len(sig)+100000, []channel.Emission{{Samples: sig, Offset: 30000, SNRdB: 15}}, gen, fs)
}

// runGateway drives one gateway.Run session against serve (the cloud side
// of a net.Pipe) and returns the decoded payloads, sorted.
func runGateway(t *testing.T, cfg gateway.Config, caps [][]complex128, serve func(rw net.Conn) error) []string {
	t.Helper()
	g, err := gateway.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	captures := make(chan []complex128, len(caps))
	for _, c := range caps {
		captures <- c
	}
	close(captures)
	var payloads []string
	errCh := make(chan error, 2)
	go func() { errCh <- serve(b) }()
	go func() {
		errCh <- g.Run(a, captures, func(r backhaul.FramesReport) {
			for _, f := range r.Frames {
				payloads = append(payloads, string(f.Payload))
			}
		})
	}()
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(payloads)
	return payloads
}

// TestFrontBackwardCompat is the satellite contract: a plain v2 gateway —
// no knowledge of the capacity hint, default window — decodes exactly the
// same payloads through a sharded front as against the seed single-shard
// server, for the same captures.
func TestFrontBackwardCompat(t *testing.T) {
	ts := testTechs()
	payloads := []string{"compat frame a", "compat frame b", "compat frame c"}
	caps := [][]complex128{
		capture(t, xbee.Default(), 11, []byte(payloads[0])),
		capture(t, zwave.Default(), 12, []byte(payloads[1])),
		capture(t, xbee.Default(), 13, []byte(payloads[2])),
	}
	cfg := gateway.Config{ID: "compat-gw", Techs: ts, Frontend: frontend.Ideal(fs)}

	// Seed path: one cloud.Service, no farm, strict v2 session.
	seedSvc := cloud.NewService(ts)
	seed := runGateway(t, cfg, caps, func(rw net.Conn) error { return seedSvc.ServeConn(rw) })

	// Sharded path: three shards behind the front.
	front, err := New(Config{Shards: 3, Workers: 2, QueueDepth: 16, Techs: ts})
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	sharded := runGateway(t, cfg, caps, func(rw net.Conn) error { return front.HandleConn(rw) })

	if len(seed) != len(payloads) {
		t.Fatalf("seed server decoded %v, want %v", seed, payloads)
	}
	if fmt.Sprint(seed) != fmt.Sprint(sharded) {
		t.Fatalf("sharded front decoded %v, seed server decoded %v", sharded, seed)
	}
}

// TestFrontV1Gateway checks the legacy strict request/reply protocol is
// untouched by sharding: a v1 session through the front gets no hello ack
// and one frames reply per segment, same as the seed server.
func TestFrontV1Gateway(t *testing.T) {
	ts := testTechs()
	front, err := New(Config{Shards: 2, Techs: ts})
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- front.HandleConn(b) }()

	conn := backhaul.NewConn(a)
	if err := conn.SendHello(backhaul.Hello{Version: 1, GatewayID: "legacy", SampleRate: fs}); err != nil {
		t.Fatal(err)
	}
	payload := []byte("v1 through the front")
	sig, err := xbee.Default().Modulate(payload, fs)
	if err != nil {
		t.Fatal(err)
	}
	gen := rng.New(21)
	samples := channel.Mix(len(sig)+20000, []channel.Emission{{Samples: sig, Offset: 8000, SNRdB: 15}}, gen, fs)
	if _, err := conn.SendSegment(backhaul.DefaultCodec, backhaul.Segment{Start: 0, SampleRate: fs, Samples: samples}); err != nil {
		t.Fatal(err)
	}
	typ, data, err := conn.ReadMessage()
	if err != nil || typ != backhaul.MsgFrames {
		t.Fatalf("reply %v %v", typ, err)
	}
	report, err := backhaul.ParseFrames(data)
	if err != nil || len(report.Frames) != 1 || !bytes.Equal(report.Frames[0].Payload, payload) {
		t.Fatalf("report %+v err %v", report, err)
	}
	if err := conn.SendBye(); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := conn.ReadMessage(); err != nil || typ != backhaul.MsgBye {
		t.Fatalf("bye ack %v %v", typ, err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// TestFrontHelloAckCapacity checks the v2 negotiation additions: the ack
// advertises the plane's shard count and aggregate capacity, while Window
// stays the landing shard's own queue depth.
func TestFrontHelloAckCapacity(t *testing.T) {
	front, err := New(Config{Shards: 4, Workers: 1, QueueDepth: 8, Techs: testTechs()})
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- front.HandleConn(b) }()

	conn := backhaul.NewConn(a)
	if err := conn.SendHello(backhaul.Hello{Version: backhaul.Version, GatewayID: "cap", Epoch: 7, SampleRate: fs}); err != nil {
		t.Fatal(err)
	}
	typ, data, err := conn.ReadMessage()
	if err != nil || typ != backhaul.MsgHelloAck {
		t.Fatalf("hello ack %v %v", typ, err)
	}
	ack, err := backhaul.ParseHelloAck(data)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Shards != 4 {
		t.Fatalf("ack shards %d, want 4", ack.Shards)
	}
	if ack.Capacity != 4*8 {
		t.Fatalf("ack capacity %d, want 32", ack.Capacity)
	}
	if ack.Window != 8 {
		t.Fatalf("ack window %d, want the landing shard's queue depth 8", ack.Window)
	}
	if err := conn.SendBye(); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := conn.ReadMessage(); err != nil || typ != backhaul.MsgBye {
		t.Fatalf("bye ack %v %v", typ, err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// TestFrontRoutingMetrics checks that sessions land on the ring-predicted
// shard and that the per-shard and plane counters account every session.
func TestFrontRoutingMetrics(t *testing.T) {
	front, err := New(Config{Shards: 3, Techs: testTechs()})
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	const sessions = 12
	for i := 0; i < sessions; i++ {
		gw := fmt.Sprintf("route-gw-%d", i)
		epoch := uint64(100 + i)
		a, b := net.Pipe()
		errCh := make(chan error, 1)
		go func() { errCh <- front.HandleConn(b) }()
		conn := backhaul.NewConn(a)
		if err := conn.SendHello(backhaul.Hello{Version: backhaul.Version, GatewayID: gw, Epoch: epoch, SampleRate: fs}); err != nil {
			t.Fatal(err)
		}
		if typ, _, err := conn.ReadMessage(); err != nil || typ != backhaul.MsgHelloAck {
			t.Fatalf("hello ack %v %v", typ, err)
		}
		if err := conn.SendBye(); err != nil {
			t.Fatal(err)
		}
		if typ, _, err := conn.ReadMessage(); err != nil || typ != backhaul.MsgBye {
			t.Fatalf("bye ack %v %v", typ, err)
		}
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		a.Close()
		b.Close()
	}

	stats := front.Stats()
	var total uint64
	want := make([]uint64, front.Shards())
	for i := 0; i < sessions; i++ {
		want[front.Ring().Lookup(fmt.Sprintf("route-gw-%d", i), uint64(100+i))]++
	}
	for i, st := range stats {
		if st.Sessions != want[i] {
			t.Fatalf("shard %d served %d sessions, ring predicts %d (%+v)", i, st.Sessions, want[i], stats)
		}
		if st.Active != 0 {
			t.Fatalf("shard %d still has %d active sessions", i, st.Active)
		}
		total += st.Sessions
	}
	if total != sessions {
		t.Fatalf("shards account %d sessions, want %d", total, sessions)
	}
	reg := front.Registry()
	if got := reg.Counter("cloud_fleet_sessions_total").Value(); got != sessions {
		t.Fatalf("cloud_fleet_sessions_total %d, want %d", got, sessions)
	}
	if got := reg.Gauge("cloud_fleet_shards_count").Value(); got != 3 {
		t.Fatalf("cloud_fleet_shards_count %d, want 3", got)
	}
}
