// Package fleet implements the sharded decode plane: a front tier that
// accepts backhaul sessions, learns each session's identity from its hello,
// and routes the whole connection to one of N shared-nothing decode shards
// via a consistent-hash ring keyed (gateway ID, session epoch).
//
// Sharding at session granularity is what keeps the shards shared-nothing:
// every segment of a session lands on the same shard, so the replay dedup
// cache (keyed gateway+epoch+segment start) and the per-session reply
// sequencer stay shard-local and need no cross-shard coordination. The
// hash ring means a shard-count change moves only ~1/N of the keyspace:
// reconnecting gateways mostly land back on the shard that already holds
// their dedup state.
//
// The front advertises the plane's aggregate capacity in the v2 hello ack
// (HelloAck.Shards, HelloAck.Capacity) so auto-sizing gateways can scale
// their shipping windows with the fleet (DESIGN.md §13).
package fleet

import (
	"sort"
)

// DefaultVNodes is the virtual-node count per shard when Config.VNodes is
// zero. 512 points per shard keeps the keyspace split within a few percent
// of even for small shard counts.
const DefaultVNodes = 512

// Ring is a consistent-hash ring over shard indices. Immutable after
// NewRing, so lookups are safe for concurrent use without locks.
type Ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// pointHash places virtual node (shard, replica) on the ring. A
// splitmix64 finalizer disperses the structured low-entropy input far more
// evenly than a byte-stream hash, which is what keeps small rings within
// the ±15% distribution budget.
func pointHash(shard, replica int) uint64 {
	x := uint64(shard)<<32 ^ uint64(replica)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewRing builds a ring of `shards` shards with `vnodes` virtual nodes
// each (vnodes <= 0 selects DefaultVNodes). Point placement is a pure
// function of (shard index, replica index): two rings built with the same
// shard count are identical, and growing the ring only inserts the new
// shard's points — existing keys either keep their shard or move to the
// new one.
func NewRing(shards, vnodes int) *Ring {
	if shards < 1 {
		shards = 1
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(s, v), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break deterministically by shard so
		// two identically-built rings still agree point for point.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the ring's shard count.
func (r *Ring) Shards() int { return r.shards }

// KeyHash hashes one routing key: FNV-1a over the gateway ID bytes
// followed by the epoch's 8 big-endian bytes (inlined — hash.Hash's Write
// can never fail here and its error result would only be noise). Exposed
// so tests and tooling can reason about placement without a ring.
func KeyHash(gateway string, epoch uint64) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(gateway); i++ {
		h ^= uint64(gateway[i])
		h *= prime64
	}
	for shift := 56; shift >= 0; shift -= 8 {
		h ^= (epoch >> uint(shift)) & 0xff
		h *= prime64
	}
	return h
}

// Lookup maps a session key to its shard: the first ring point at or after
// the key's hash, wrapping at the top of the hash space.
func (r *Ring) Lookup(gateway string, epoch uint64) int {
	key := KeyHash(gateway, epoch)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
