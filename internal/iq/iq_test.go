package iq

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func randSamples(r *rng.Rand, n int, scale float64) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(r.NormFloat64()*scale, r.NormFloat64()*scale)
	}
	return out
}

func TestFormatMeta(t *testing.T) {
	cases := []struct {
		f    Format
		name string
		bps  int
	}{{CU8, "cu8", 2}, {CS16, "cs16", 4}, {CF32, "cf32", 8}}
	for _, c := range cases {
		if c.f.String() != c.name {
			t.Fatalf("%v name", c.f)
		}
		if c.f.BytesPerSample() != c.bps {
			t.Fatalf("%v bps", c.f)
		}
	}
	if Format(99).BytesPerSample() != 0 {
		t.Fatal("unknown format bps should be 0")
	}
}

func TestEncodeDecodeSizes(t *testing.T) {
	s := make([]complex128, 10)
	for _, f := range []Format{CU8, CS16, CF32} {
		data, err := Encode(s, f)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != 10*f.BytesPerSample() {
			t.Fatalf("%v encoded %d bytes", f, len(data))
		}
		back, err := Decode(data, f)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != 10 {
			t.Fatalf("%v decoded %d samples", f, len(back))
		}
	}
}

func TestDecodeRejectsPartialSample(t *testing.T) {
	if _, err := Decode(make([]byte, 3), CU8); err == nil {
		t.Fatal("partial cu8 sample should error")
	}
	if _, err := Decode(make([]byte, 6), CS16); err == nil {
		t.Fatal("partial cs16 sample should error")
	}
}

func TestUnknownFormatErrors(t *testing.T) {
	if _, err := Encode(nil, Format(9)); err == nil {
		t.Fatal("encode unknown format")
	}
	if _, err := Decode(nil, Format(9)); err == nil {
		t.Fatal("decode unknown format")
	}
}

func TestQuantizationErrorBounds(t *testing.T) {
	r := rng.New(1)
	x := make([]complex128, 2000)
	for i := range x {
		// uniform in [-0.9, 0.9] so no sample clips
		x[i] = complex(1.8*r.Float64()-0.9, 1.8*r.Float64()-0.9)
	}
	cases := []struct {
		f   Format
		tol float64
	}{
		{CU8, 1.0 / 127.5}, // half an LSB each side, plus rounding
		{CS16, 1.0 / 32767},
		{CF32, 1e-6},
	}
	for _, c := range cases {
		q := Quantize(x, c.f)
		for i := range x {
			if math.Abs(real(q[i])-real(x[i])) > c.tol || math.Abs(imag(q[i])-imag(x[i])) > c.tol {
				t.Fatalf("%v sample %d error %v exceeds %v", c.f, i, q[i]-x[i], c.tol)
			}
		}
	}
}

func TestClipping(t *testing.T) {
	x := []complex128{complex(2, -3)}
	for _, f := range []Format{CU8, CS16} {
		q := Quantize(x, f)
		if math.Abs(real(q[0])-1) > 0.01 || math.Abs(imag(q[0])+1) > 0.01 {
			t.Fatalf("%v clip got %v", f, q[0])
		}
	}
}

func TestCU8RoundTripProperty(t *testing.T) {
	// Any byte stream of even length is a valid cu8 stream and must
	// round-trip bytes exactly through decode+encode.
	if err := quick.Check(func(data []byte) bool {
		if len(data)%2 == 1 {
			data = data[:len(data)-1]
		}
		s, err := Decode(data, CU8)
		if err != nil {
			return false
		}
		back, err := Encode(s, CU8)
		if err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroMapsNearMidpoint(t *testing.T) {
	data, _ := Encode([]complex128{0}, CU8)
	if data[0] != 127 && data[0] != 128 {
		t.Fatalf("zero encodes to %d", data[0])
	}
	s, _ := Decode(data, CU8)
	if math.Abs(real(s[0])) > 0.005 {
		t.Fatalf("zero decodes to %v", s[0])
	}
}

func TestWriterReaderStream(t *testing.T) {
	r := rng.New(2)
	x := randSamples(r, 1000, 0.3)
	for _, f := range []Format{CU8, CS16, CF32} {
		var buf bytes.Buffer
		w := NewWriter(&buf, f)
		if n, err := w.Write(x); err != nil || n != len(x) {
			t.Fatalf("%v write n=%d err=%v", f, n, err)
		}
		rd := NewReader(&buf, f)
		got := make([]complex128, 600)
		n, err := rd.Read(got)
		if err != nil || n != 600 {
			t.Fatalf("%v first read n=%d err=%v", f, n, err)
		}
		n, err = rd.Read(got)
		if n != 400 || (err != nil && err != io.EOF) {
			t.Fatalf("%v second read n=%d err=%v", f, n, err)
		}
		n, err = rd.Read(got)
		if n != 0 || err != io.EOF {
			t.Fatalf("%v third read n=%d err=%v", f, n, err)
		}
	}
}

func TestReaderPartialTail(t *testing.T) {
	// A truncated stream (odd byte) must not produce a phantom sample.
	rd := NewReader(bytes.NewReader([]byte{1, 2, 3}), CU8)
	got := make([]complex128, 4)
	n, err := rd.Read(got)
	if n != 1 {
		t.Fatalf("read %d samples from 3 bytes", n)
	}
	if err != io.EOF {
		t.Fatalf("err = %v", err)
	}
}
