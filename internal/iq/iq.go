// Package iq handles interchange of complex-baseband sample blocks in the
// wire formats used by software radios: cu8 (the RTL-SDR's native unsigned
// 8-bit interleaved I/Q), cs16 (signed 16-bit), and cf32 (32-bit float).
//
// The 8-bit path matters for fidelity of the reproduction: the paper's $20
// RTL-SDR front-end quantizes to 8 bits, and the gateway ships quantized
// samples over the backhaul, so both the detector and the cloud decoder
// must work on data that has gone through this quantization.
package iq

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Format identifies a sample interchange format.
type Format uint8

// Supported sample formats.
const (
	CU8  Format = iota // unsigned 8-bit I/Q, zero at 127.5 (RTL-SDR native)
	CS16               // signed 16-bit little-endian I/Q
	CF32               // float32 little-endian I/Q
)

// String returns the conventional name of the format.
func (f Format) String() string {
	switch f {
	case CU8:
		return "cu8"
	case CS16:
		return "cs16"
	case CF32:
		return "cf32"
	default:
		return fmt.Sprintf("format(%d)", uint8(f))
	}
}

// BytesPerSample returns the encoded size of one complex sample.
func (f Format) BytesPerSample() int {
	switch f {
	case CU8:
		return 2
	case CS16:
		return 4
	case CF32:
		return 8
	default:
		return 0
	}
}

// clamp limits v to [-1, 1].
func clamp(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}

// Encode serializes samples (nominal full scale ±1.0) into the given
// format. Out-of-range values are clipped, exactly as an ADC would.
func Encode(samples []complex128, f Format) ([]byte, error) {
	switch f {
	case CU8:
		out := make([]byte, 2*len(samples))
		for i, s := range samples {
			out[2*i] = toU8(real(s))
			out[2*i+1] = toU8(imag(s))
		}
		return out, nil
	case CS16:
		out := make([]byte, 4*len(samples))
		for i, s := range samples {
			binary.LittleEndian.PutUint16(out[4*i:], uint16(toS16(real(s))))
			binary.LittleEndian.PutUint16(out[4*i+2:], uint16(toS16(imag(s))))
		}
		return out, nil
	case CF32:
		out := make([]byte, 8*len(samples))
		for i, s := range samples {
			binary.LittleEndian.PutUint32(out[8*i:], math.Float32bits(float32(real(s))))
			binary.LittleEndian.PutUint32(out[8*i+4:], math.Float32bits(float32(imag(s))))
		}
		return out, nil
	default:
		return nil, fmt.Errorf("iq: unknown format %v", f)
	}
}

// Decode deserializes data in the given format back to complex samples.
// The byte length must be a multiple of the sample size.
func Decode(data []byte, f Format) ([]complex128, error) {
	bps := f.BytesPerSample()
	if bps == 0 {
		return nil, fmt.Errorf("iq: unknown format %v", f)
	}
	if len(data)%bps != 0 {
		return nil, fmt.Errorf("iq: %d bytes is not a multiple of %d-byte %v samples", len(data), bps, f)
	}
	n := len(data) / bps
	out := make([]complex128, n)
	switch f {
	case CU8:
		for i := 0; i < n; i++ {
			out[i] = complex(fromU8(data[2*i]), fromU8(data[2*i+1]))
		}
	case CS16:
		for i := 0; i < n; i++ {
			re := int16(binary.LittleEndian.Uint16(data[4*i:]))
			im := int16(binary.LittleEndian.Uint16(data[4*i+2:]))
			out[i] = complex(float64(re)/32767, float64(im)/32767)
		}
	case CF32:
		for i := 0; i < n; i++ {
			re := math.Float32frombits(binary.LittleEndian.Uint32(data[8*i:]))
			im := math.Float32frombits(binary.LittleEndian.Uint32(data[8*i+4:]))
			out[i] = complex(float64(re), float64(im))
		}
	}
	return out, nil
}

// toU8 maps [-1, 1] to [0, 255] with 127.5 as zero, the RTL-SDR convention.
func toU8(v float64) byte {
	return byte(math.Round(clamp(v)*127.5 + 127.5))
}

// fromU8 inverts toU8.
func fromU8(b byte) float64 {
	return (float64(b) - 127.5) / 127.5
}

func toS16(v float64) int16 {
	return int16(math.Round(clamp(v) * 32767))
}

// Quantize passes samples through an encode/decode cycle in the given
// format, modeling ADC quantization (and clipping) without serialization
// overhead for the caller.
func Quantize(samples []complex128, f Format) []complex128 {
	data, err := Encode(samples, f)
	if err != nil {
		out := make([]complex128, len(samples))
		copy(out, samples)
		return out
	}
	out, _ := Decode(data, f)
	return out
}

// Writer streams encoded sample blocks to an io.Writer.
type Writer struct {
	w      io.Writer
	format Format
}

// NewWriter returns a Writer emitting the given format.
func NewWriter(w io.Writer, f Format) *Writer {
	return &Writer{w: w, format: f}
}

// Write encodes and writes the samples, returning the number of samples
// consumed.
func (w *Writer) Write(samples []complex128) (int, error) {
	data, err := Encode(samples, w.format)
	if err != nil {
		return 0, err
	}
	if _, err := w.w.Write(data); err != nil {
		return 0, err
	}
	return len(samples), nil
}

// Reader streams decoded sample blocks from an io.Reader.
type Reader struct {
	r      io.Reader
	format Format
	buf    []byte
}

// NewReader returns a Reader consuming the given format.
func NewReader(r io.Reader, f Format) *Reader {
	return &Reader{r: r, format: f}
}

// Read fills dst with decoded samples, returning the number of complete
// samples read. It returns io.EOF when the stream is exhausted.
func (r *Reader) Read(dst []complex128) (int, error) {
	bps := r.format.BytesPerSample()
	if bps == 0 {
		return 0, fmt.Errorf("iq: unknown format %v", r.format)
	}
	need := len(dst) * bps
	if cap(r.buf) < need {
		r.buf = make([]byte, need)
	}
	buf := r.buf[:need]
	n, err := io.ReadFull(r.r, buf)
	n -= n % bps
	if n > 0 {
		samples, derr := Decode(buf[:n], r.format)
		if derr != nil {
			return 0, derr
		}
		copy(dst, samples)
	}
	if err == io.ErrUnexpectedEOF {
		err = io.EOF
	}
	return n / bps, err
}
