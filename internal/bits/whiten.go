package bits

// Whitener is a linear-feedback shift register (LFSR) based scrambler.
// Whitening decorrelates payload bits so the radio sees a balanced bit
// stream; because it is a pure XOR with a keystream, applying the same
// whitener twice restores the original data.
type Whitener struct {
	state   uint16
	taps    uint16
	order   uint
	initial uint16
}

// NewLoRaWhitener returns the 8-bit LFSR whitener used for LoRa payloads in
// this reproduction (x^8 + x^6 + x^5 + x^4 + 1, seed 0xFF), matching the
// gr-lora convention.
func NewLoRaWhitener() *Whitener {
	return &Whitener{state: 0xFF, taps: 0b01110001, order: 8, initial: 0xFF}
}

// NewDC9Whitener returns the 9-bit PN9 whitener (x^9 + x^5 + 1, seed
// 0x1FF) specified by IEEE 802.15.4g FSK PHYs and used by XBee-class
// transceivers (TI CC13xx data whitening).
func NewDC9Whitener() *Whitener {
	return &Whitener{state: 0x1FF, taps: 0b000010001, order: 9, initial: 0x1FF}
}

// Reset returns the whitener to its seed state.
func (w *Whitener) Reset() { w.state = w.initial }

// NextBit returns the next keystream bit and advances the LFSR (Fibonacci
// configuration: output is the register LSB, feedback is the XOR of tap
// bits).
func (w *Whitener) NextBit() byte {
	out := byte(w.state & 1)
	var fb uint16
	t := w.state & w.taps
	for t != 0 {
		fb ^= t & 1
		t >>= 1
	}
	w.state >>= 1
	w.state |= fb << (w.order - 1)
	return out
}

// Apply XORs the keystream into bits (values 0/1) in place and returns bits.
// Calling Apply twice from the same state is the identity.
func (w *Whitener) Apply(bits []byte) []byte {
	for i := range bits {
		bits[i] ^= w.NextBit()
	}
	return bits
}

// ApplyBytes whitens whole bytes MSB-first, returning a new slice.
func (w *Whitener) ApplyBytes(data []byte) []byte {
	b := Unpack(data)
	w.Apply(b)
	return Pack(b)
}

// NewBLEWhitener returns the Bluetooth LE data whitener: a 7-bit LFSR
// (x^7 + x^4 + 1) seeded with the advertising/data channel index with bit 6
// set, per Bluetooth Core Vol 6 Part B §3.2.
func NewBLEWhitener(channel byte) *Whitener {
	seed := uint16(channel&0x3F) | 0x40
	return &Whitener{state: seed, taps: 0b0001001, order: 7, initial: seed}
}
