package bits

// Hamming implements the LoRa-style Hamming forward error correction used
// for code rates 4/5 through 4/8: every 4 data bits (a nibble) are expanded
// to 4+cr bits, cr in {1..4}. cr=1 appends a single parity bit (error
// detection only); cr=2 detects double errors; cr=3 (Hamming(7,4)) and cr=4
// (Hamming(8,4)) correct single-bit errors.

// HammingEncodeNibble encodes the low 4 bits of nibble with the given
// redundancy cr (1..4) and returns 4+cr bits (values 0/1), data first.
func HammingEncodeNibble(nibble byte, cr int) []byte {
	d0 := nibble & 1
	d1 := (nibble >> 1) & 1
	d2 := (nibble >> 2) & 1
	d3 := (nibble >> 3) & 1
	p0 := d0 ^ d1 ^ d2 // classic Hamming(7,4) parities
	p1 := d0 ^ d1 ^ d3
	p2 := d0 ^ d2 ^ d3
	p3 := d0 ^ d1 ^ d2 ^ d3                 // data parity, used by cr 1 and 2
	ext := d0 ^ d1 ^ d2 ^ d3 ^ p0 ^ p1 ^ p2 // overall parity of the (7,4) codeword
	out := []byte{d0, d1, d2, d3}
	switch cr {
	case 1:
		out = append(out, p3)
	case 2:
		out = append(out, p3, p0^p1)
	case 3:
		out = append(out, p0, p1, p2)
	case 4:
		out = append(out, p0, p1, p2, ext)
	default:
		panic("bits: Hamming cr must be in 1..4")
	}
	return out
}

// HammingDecodeNibble decodes 4+cr bits produced by HammingEncodeNibble,
// returning the nibble, whether a correction was applied, and whether an
// uncorrectable error was detected.
func HammingDecodeNibble(code []byte, cr int) (nibble byte, corrected, bad bool) {
	if len(code) != 4+cr {
		return 0, false, true
	}
	get := func(i int) byte { return code[i] & 1 }
	d0, d1, d2, d3 := get(0), get(1), get(2), get(3)
	assemble := func() byte { return d0 | d1<<1 | d2<<2 | d3<<3 }
	switch cr {
	case 1:
		p := get(4)
		if d0^d1^d2^d3 != p {
			return assemble(), false, true
		}
		return assemble(), false, false
	case 2:
		p3 := get(4)
		pp := get(5)
		okP3 := d0^d1^d2^d3 == p3
		okPP := (d0^d1^d2)^(d0^d1^d3) == pp
		if !okP3 || !okPP {
			return assemble(), false, true
		}
		return assemble(), false, false
	case 3, 4:
		p0, p1, p2 := get(4), get(5), get(6)
		s0 := p0 ^ d0 ^ d1 ^ d2
		s1 := p1 ^ d0 ^ d1 ^ d3
		s2 := p2 ^ d0 ^ d2 ^ d3
		syndrome := s0 | s1<<1 | s2<<2
		if cr == 4 {
			// Extended Hamming: overall is the parity of all 8 received
			// bits, which is 0 for a valid codeword.
			overall := d0 ^ d1 ^ d2 ^ d3 ^ p0 ^ p1 ^ p2 ^ get(7)
			switch {
			case overall == 0 && syndrome == 0:
				return assemble(), false, false
			case overall == 0 && syndrome != 0:
				// even number of errors (≥2): uncorrectable
				return assemble(), false, true
			case syndrome == 0:
				// single error in the extension bit itself; data intact
				return assemble(), true, false
			}
			// overall odd, syndrome nonzero: single error, fall through to
			// the (7,4) correction below.
		}
		if syndrome != 0 {
			// map syndrome to the erroneous bit position
			switch syndrome {
			case 0b111:
				d0 ^= 1
			case 0b011:
				d1 ^= 1
			case 0b101:
				d2 ^= 1
			case 0b110:
				d3 ^= 1
			case 0b001:
				p0 ^= 1
			case 0b010:
				p1 ^= 1
			case 0b100:
				p2 ^= 1
			}
			corrected = true
		}
		return assemble(), corrected, false
	default:
		return 0, false, true
	}
}

// HammingEncode encodes whole bytes nibble-by-nibble (high nibble first)
// with the given cr, returning a flat bit slice.
func HammingEncode(data []byte, cr int) []byte {
	out := make([]byte, 0, len(data)*(8+2*cr)/1)
	for _, b := range data {
		out = append(out, HammingEncodeNibble(b>>4, cr)...)
		out = append(out, HammingEncodeNibble(b&0x0F, cr)...)
	}
	return out
}

// HammingDecode inverts HammingEncode, returning the recovered bytes along
// with the number of corrected nibbles and the number of nibbles flagged as
// uncorrectable.
func HammingDecode(code []byte, cr int) (data []byte, corrections, failures int) {
	block := 4 + cr
	nNibbles := len(code) / block
	data = make([]byte, 0, nNibbles/2)
	var cur byte
	for i := 0; i < nNibbles; i++ {
		nib, corr, bad := HammingDecodeNibble(code[i*block:(i+1)*block], cr)
		if corr {
			corrections++
		}
		if bad {
			failures++
		}
		if i%2 == 0 {
			cur = nib << 4
		} else {
			data = append(data, cur|nib)
		}
	}
	return data, corrections, failures
}
