package bits

// DiagonalInterleave implements the LoRa-style diagonal interleaver. A block
// of sf codewords of cw bits each (sf rows × cw columns) is transposed with
// a per-column diagonal rotation, producing cw symbols of sf bits each:
//
//	out[col][row] = in[(row+col) mod sf][col]
//
// The interleaver spreads each codeword across many symbols so that one
// corrupted symbol damages at most one bit of each codeword, which the
// Hamming FEC can then repair.
//
// Input is a flat bit slice of length sf*cw (row-major: codeword 0 first);
// output is a flat bit slice of length cw*sf (symbol 0 first, MSB first).
func DiagonalInterleave(in []byte, sf, cw int) []byte {
	if len(in) != sf*cw {
		panic("bits: interleaver input must be sf*cw bits")
	}
	out := make([]byte, cw*sf)
	for col := 0; col < cw; col++ {
		for row := 0; row < sf; row++ {
			out[col*sf+row] = in[((row+col)%sf)*cw+col]
		}
	}
	return out
}

// DiagonalDeinterleave inverts DiagonalInterleave.
func DiagonalDeinterleave(in []byte, sf, cw int) []byte {
	if len(in) != sf*cw {
		panic("bits: deinterleaver input must be sf*cw bits")
	}
	out := make([]byte, sf*cw)
	for col := 0; col < cw; col++ {
		for row := 0; row < sf; row++ {
			out[((row+col)%sf)*cw+col] = in[col*sf+row]
		}
	}
	return out
}

// SymbolsFromBits groups a flat bit slice into unsigned symbol values of
// width bits each (MSB first). Trailing bits that do not fill a symbol are
// dropped.
func SymbolsFromBits(in []byte, width int) []uint32 {
	n := len(in) / width
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		var v uint32
		for j := 0; j < width; j++ {
			v = v<<1 | uint32(in[i*width+j]&1)
		}
		out[i] = v
	}
	return out
}

// BitsFromSymbols expands symbol values into width bits each (MSB first).
func BitsFromSymbols(symbols []uint32, width int) []byte {
	out := make([]byte, 0, len(symbols)*width)
	for _, s := range symbols {
		for j := width - 1; j >= 0; j-- {
			out = append(out, byte((s>>uint(j))&1))
		}
	}
	return out
}
