package bits

// CRC16CCITT computes the CRC-16/CCITT-FALSE checksum (poly 0x1021, init
// 0xFFFF, no reflection) used by the LoRa PHY header/payload CRC in this
// reproduction and by many 868 MHz framings.
func CRC16CCITT(data []byte) uint16 {
	var crc uint16 = 0xFFFF
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// CRC16IBM computes the reflected CRC-16/ARC (poly 0x8005 reflected to
// 0xA001, init 0x0000), the ITU-T style checksum used by 802.15.4-class
// frames (X^16 + X^12 + X^5 + 1 equivalent implementations vary; XBee-class
// radios use this ARC form for API frames).
func CRC16IBM(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc ^= uint16(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0xA001
			} else {
				crc >>= 1
			}
		}
	}
	return crc
}

// CRC8XOR computes the simple longitudinal XOR checksum over data with the
// given initial value. ITU-T G.9959 (Z-Wave) R1/R2 frames use this with
// init 0xFF.
func CRC8XOR(init byte, data []byte) byte {
	c := init
	for _, b := range data {
		c ^= b
	}
	return c
}

// CRC24BLE computes the Bluetooth Low Energy 24-bit CRC over the PDU
// (poly x^24+x^10+x^9+x^6+x^4+x^3+x+1, i.e. 0x00065B, processed LSB-first)
// with the given 24-bit initial value (0x555555 for advertising channels).
func CRC24BLE(init uint32, data []byte) uint32 {
	crc := init & 0xFFFFFF
	for _, b := range data {
		for i := 0; i < 8; i++ {
			inBit := uint32(b>>uint(i)) & 1
			fb := (crc >> 23) & 1
			crc = (crc << 1) & 0xFFFFFF
			if fb^inBit == 1 {
				crc ^= 0x00065B
			}
		}
	}
	return crc
}
