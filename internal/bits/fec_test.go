package bits

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHammingRoundTripAllNibbles(t *testing.T) {
	t.Parallel()
	for cr := 1; cr <= 4; cr++ {
		for n := byte(0); n < 16; n++ {
			code := HammingEncodeNibble(n, cr)
			if len(code) != 4+cr {
				t.Fatalf("cr=%d: code length %d", cr, len(code))
			}
			got, corrected, bad := HammingDecodeNibble(code, cr)
			if got != n || corrected || bad {
				t.Fatalf("cr=%d nibble %x: got %x corrected=%v bad=%v", cr, n, got, corrected, bad)
			}
		}
	}
}

func TestHammingCorrectsSingleBitError(t *testing.T) {
	t.Parallel()
	for _, cr := range []int{3, 4} {
		for n := byte(0); n < 16; n++ {
			for pos := 0; pos < 4+cr; pos++ {
				code := HammingEncodeNibble(n, cr)
				code[pos] ^= 1
				got, _, bad := HammingDecodeNibble(code, cr)
				if bad {
					t.Fatalf("cr=%d nibble %x flip %d: flagged uncorrectable", cr, n, pos)
				}
				if got != n {
					t.Fatalf("cr=%d nibble %x flip %d: decoded %x", cr, n, pos, got)
				}
			}
		}
	}
}

func TestHammingCR4DetectsDoubleError(t *testing.T) {
	t.Parallel()
	detected := 0
	total := 0
	for n := byte(0); n < 16; n++ {
		for p1 := 0; p1 < 8; p1++ {
			for p2 := p1 + 1; p2 < 8; p2++ {
				code := HammingEncodeNibble(n, 4)
				code[p1] ^= 1
				code[p2] ^= 1
				got, _, bad := HammingDecodeNibble(code, 4)
				total++
				if bad || got == n {
					// either flagged, or (rarely) decoded correctly anyway
					if bad {
						detected++
					}
				}
			}
		}
	}
	// Extended Hamming(8,4) detects all double errors.
	if detected != total {
		t.Fatalf("detected %d of %d double errors", detected, total)
	}
}

func TestHammingCR1CR2DetectErrors(t *testing.T) {
	t.Parallel()
	for _, cr := range []int{1, 2} {
		code := HammingEncodeNibble(0xA, cr)
		code[0] ^= 1
		_, _, bad := HammingDecodeNibble(code, cr)
		if !bad {
			t.Fatalf("cr=%d: single data-bit error not detected", cr)
		}
	}
}

func TestHammingBytesRoundTrip(t *testing.T) {
	t.Parallel()
	if err := quick.Check(func(data []byte, crRaw uint8) bool {
		cr := int(crRaw%4) + 1
		enc := HammingEncode(data, cr)
		dec, corr, fail := HammingDecode(enc, cr)
		return bytes.Equal(dec, data) && corr == 0 && fail == 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHammingBytesCorrection(t *testing.T) {
	t.Parallel()
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	enc := HammingEncode(data, 4)
	// flip one bit in each 8-bit block
	for i := 0; i < len(enc); i += 8 {
		enc[i+3] ^= 1
	}
	dec, corr, fail := HammingDecode(enc, 4)
	if !bytes.Equal(dec, data) {
		t.Fatalf("decoded %x", dec)
	}
	if corr != 8 || fail != 0 {
		t.Fatalf("corrections=%d failures=%d", corr, fail)
	}
}

func TestHammingDecodeWrongLength(t *testing.T) {
	t.Parallel()
	_, _, bad := HammingDecodeNibble([]byte{1, 0, 1}, 3)
	if !bad {
		t.Fatal("short code should be flagged")
	}
}

func TestHammingEncodePanicsOnBadCR(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("cr=5 should panic")
		}
	}()
	HammingEncodeNibble(0, 5)
}
