package bits

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	t.Parallel()
	if err := quick.Check(func(data []byte) bool {
		return bytes.Equal(Pack(Unpack(data)), data)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackUnpackLSBRoundTrip(t *testing.T) {
	t.Parallel()
	if err := quick.Check(func(data []byte) bool {
		return bytes.Equal(PackLSB(UnpackLSB(data)), data)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackKnown(t *testing.T) {
	t.Parallel()
	got := Unpack([]byte{0xA5})
	want := []byte{1, 0, 1, 0, 0, 1, 0, 1}
	if !bytes.Equal(got, want) {
		t.Fatalf("Unpack(0xA5) = %v", got)
	}
	gotLSB := UnpackLSB([]byte{0xA5})
	wantLSB := []byte{1, 0, 1, 0, 0, 1, 0, 1}
	_ = wantLSB
	if !bytes.Equal(gotLSB, []byte{1, 0, 1, 0, 0, 1, 0, 1}) {
		t.Fatalf("UnpackLSB(0xA5) = %v", gotLSB)
	}
}

func TestPackPartialByte(t *testing.T) {
	t.Parallel()
	got := Pack([]byte{1, 1, 1})
	if len(got) != 1 || got[0] != 0xE0 {
		t.Fatalf("Pack partial = %#x", got)
	}
}

func TestXorAndHammingDistance(t *testing.T) {
	t.Parallel()
	a := []byte{1, 0, 1, 1}
	b := []byte{1, 1, 1, 0}
	x := Xor(a, b)
	if !bytes.Equal(x, []byte{0, 1, 0, 1}) {
		t.Fatalf("xor = %v", x)
	}
	if d := HammingDistance(a, b); d != 2 {
		t.Fatalf("distance = %d", d)
	}
	if d := HammingDistance([]byte{1, 1}, []byte{1}); d != 1 {
		t.Fatalf("unequal length distance = %d", d)
	}
}

func TestGrayRoundTrip(t *testing.T) {
	t.Parallel()
	if err := quick.Check(func(v uint32) bool {
		return GrayDecode(GrayEncode(v)) == v
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrayAdjacency(t *testing.T) {
	t.Parallel()
	// Successive Gray codes differ in exactly one bit — the property that
	// makes ±1 LoRa symbol errors cost one bit.
	for v := uint32(0); v < 4096; v++ {
		a, b := GrayEncode(v), GrayEncode(v+1)
		diff := a ^ b
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("gray(%d) and gray(%d) differ in more than one bit", v, v+1)
		}
	}
}

func TestManchesterRoundTrip(t *testing.T) {
	t.Parallel()
	if err := quick.Check(func(data []byte) bool {
		in := Unpack(data)
		dec, viol := ManchesterDecode(Manchester(in))
		return viol == 0 && bytes.Equal(dec, in)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestManchesterViolations(t *testing.T) {
	t.Parallel()
	_, viol := ManchesterDecode([]byte{0, 0, 1, 1, 0, 1})
	if viol != 2 {
		t.Fatalf("violations = %d, want 2", viol)
	}
}

func TestRepeat(t *testing.T) {
	t.Parallel()
	got := Repeat([]byte{1, 0}, 3)
	if !bytes.Equal(got, []byte{1, 1, 1, 0, 0, 0}) {
		t.Fatalf("repeat = %v", got)
	}
}

func TestCRC16CCITTVectors(t *testing.T) {
	t.Parallel()
	// Standard check value for "123456789".
	if got := CRC16CCITT([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("CRC16-CCITT = %#04x, want 0x29B1", got)
	}
	if got := CRC16CCITT(nil); got != 0xFFFF {
		t.Fatalf("CRC16-CCITT(empty) = %#04x", got)
	}
}

func TestCRC16IBMVectors(t *testing.T) {
	t.Parallel()
	// CRC-16/ARC check value for "123456789".
	if got := CRC16IBM([]byte("123456789")); got != 0xBB3D {
		t.Fatalf("CRC16-ARC = %#04x, want 0xBB3D", got)
	}
}

func TestCRCDetectsCorruption(t *testing.T) {
	t.Parallel()
	if err := quick.Check(func(data []byte, flipByte uint8, flipBit uint8) bool {
		if len(data) == 0 {
			return true
		}
		orig := CRC16CCITT(data)
		mod := append([]byte(nil), data...)
		mod[int(flipByte)%len(mod)] ^= 1 << (flipBit % 8)
		return CRC16CCITT(mod) != orig
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRC8XOR(t *testing.T) {
	t.Parallel()
	if got := CRC8XOR(0xFF, []byte{0x01, 0x02, 0x03}); got != 0xFF^0x01^0x02^0x03 {
		t.Fatalf("xor checksum = %#02x", got)
	}
}

func TestCRC24BLEProperties(t *testing.T) {
	t.Parallel()
	// Differential check: any single-bit corruption changes the CRC.
	if err := quick.Check(func(data []byte, flipByte, flipBit uint8) bool {
		if len(data) == 0 {
			return true
		}
		orig := CRC24BLE(0x555555, data)
		if orig > 0xFFFFFF {
			return false
		}
		mod := append([]byte(nil), data...)
		mod[int(flipByte)%len(mod)] ^= 1 << (flipBit % 8)
		return CRC24BLE(0x555555, mod) != orig
	}, nil); err != nil {
		t.Fatal(err)
	}
	if CRC24BLE(0x555555, nil) != 0x555555 {
		t.Fatal("empty CRC should equal init")
	}
}

func TestBLEWhitenerInvolutionAndPeriod(t *testing.T) {
	t.Parallel()
	if err := quick.Check(func(data []byte, ch uint8) bool {
		w1, w2 := NewBLEWhitener(ch), NewBLEWhitener(ch)
		return bytes.Equal(w2.ApplyBytes(w1.ApplyBytes(data)), data)
	}, nil); err != nil {
		t.Fatal(err)
	}
	// x^7+x^4+1 is primitive: period 127
	w := NewBLEWhitener(37)
	seed := w.state
	period := 0
	for i := 1; i <= 256; i++ {
		w.NextBit()
		if w.state == seed {
			period = i
			break
		}
	}
	if period != 127 {
		t.Fatalf("BLE whitener period %d, want 127", period)
	}
}
