// Package bits provides the bit-level coding machinery shared by the PHY
// implementations: bit/byte (un)packing, CRCs, whitening sequences, Gray
// mapping, Hamming forward error correction, Manchester line coding and the
// diagonal interleaver used by LoRa.
package bits

// Unpack expands bytes into individual bits, most-significant bit first.
// Each output element is 0 or 1.
func Unpack(data []byte) []byte {
	out := make([]byte, 0, len(data)*8)
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			out = append(out, (b>>uint(i))&1)
		}
	}
	return out
}

// Pack collapses a bit slice (values 0/1, MSB first) into bytes. A trailing
// partial byte is zero-padded on the right.
func Pack(bits []byte) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b != 0 {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out
}

// UnpackLSB expands bytes into bits, least-significant bit first (the order
// used by 802.15.4-class radios on the air).
func UnpackLSB(data []byte) []byte {
	out := make([]byte, 0, len(data)*8)
	for _, b := range data {
		for i := 0; i < 8; i++ {
			out = append(out, (b>>uint(i))&1)
		}
	}
	return out
}

// PackLSB collapses bits (LSB-first per byte) into bytes.
func PackLSB(bits []byte) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b != 0 {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}

// Xor returns a ^ b element-wise; the result has the length of the shorter
// argument.
func Xor(a, b []byte) []byte {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// HammingDistance returns the number of positions at which a and b differ;
// positions beyond the shorter slice count as differences.
func HammingDistance(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	d := len(a) + len(b) - 2*n
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// GrayEncode maps a binary value to its Gray code.
func GrayEncode(v uint32) uint32 { return v ^ (v >> 1) }

// GrayDecode inverts GrayEncode.
func GrayDecode(g uint32) uint32 {
	v := g
	for shift := uint(1); shift < 32; shift <<= 1 {
		v ^= v >> shift
	}
	return v
}

// Manchester encodes bits using IEEE 802.3 convention: 0 → 01, 1 → 10 (as
// used by G.9959 R1). The output has twice the input length.
func Manchester(bits []byte) []byte {
	out := make([]byte, 0, len(bits)*2)
	for _, b := range bits {
		if b == 0 {
			out = append(out, 0, 1)
		} else {
			out = append(out, 1, 0)
		}
	}
	return out
}

// ManchesterDecode inverts Manchester, returning the decoded bits and the
// number of chip pairs that violated the code (treated as majority-vote
// errors: 00 and 11 pairs decode from the first chip).
func ManchesterDecode(chips []byte) (bits []byte, violations int) {
	n := len(chips) / 2
	bits = make([]byte, 0, n)
	for i := 0; i < n; i++ {
		a, b := chips[2*i], chips[2*i+1]
		switch {
		case a == 0 && b == 1:
			bits = append(bits, 0)
		case a == 1 && b == 0:
			bits = append(bits, 1)
		default:
			violations++
			bits = append(bits, a)
		}
	}
	return bits, violations
}

// Repeat returns the input bits with each bit repeated n times.
func Repeat(bits []byte, n int) []byte {
	out := make([]byte, 0, len(bits)*n)
	for _, b := range bits {
		for i := 0; i < n; i++ {
			out = append(out, b)
		}
	}
	return out
}
