package bits

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestWhitenerInvolution(t *testing.T) {
	t.Parallel()
	for _, mk := range []func() *Whitener{NewLoRaWhitener, NewDC9Whitener} {
		if err := quick.Check(func(data []byte) bool {
			w1, w2 := mk(), mk()
			enc := w1.ApplyBytes(data)
			dec := w2.ApplyBytes(enc)
			return bytes.Equal(dec, data)
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWhitenerReset(t *testing.T) {
	t.Parallel()
	w := NewLoRaWhitener()
	first := make([]byte, 32)
	for i := range first {
		first[i] = w.NextBit()
	}
	w.Reset()
	for i := range first {
		if w.NextBit() != first[i] {
			t.Fatalf("keystream differs after reset at bit %d", i)
		}
	}
}

func TestWhitenerBalanced(t *testing.T) {
	t.Parallel()
	// Keystream should be roughly balanced between 0s and 1s.
	for name, mk := range map[string]func() *Whitener{"lora": NewLoRaWhitener, "pn9": NewDC9Whitener} {
		w := mk()
		ones := 0
		const n = 4096
		for i := 0; i < n; i++ {
			ones += int(w.NextBit())
		}
		if ones < n*4/10 || ones > n*6/10 {
			t.Fatalf("%s keystream ones=%d of %d", name, ones, n)
		}
	}
}

func TestWhitenerPeriod(t *testing.T) {
	t.Parallel()
	// PN9 has period 511; the state must return to the seed after 511 steps
	// and not before half that.
	w := NewDC9Whitener()
	seed := w.state
	period := 0
	for i := 1; i <= 1<<12; i++ {
		w.NextBit()
		if w.state == seed {
			period = i
			break
		}
	}
	if period != 511 {
		t.Fatalf("PN9 period %d, want 511", period)
	}
}

func TestDiagonalInterleaveRoundTrip(t *testing.T) {
	t.Parallel()
	if err := quick.Check(func(seed int64, sfRaw, crRaw uint8) bool {
		sf := int(sfRaw%6) + 7 // 7..12
		cw := int(crRaw%4) + 5 // 5..8
		in := make([]byte, sf*cw)
		s := uint64(seed)
		for i := range in {
			s = s*6364136223846793005 + 1442695040888963407
			in[i] = byte(s >> 63)
		}
		out := DiagonalDeinterleave(DiagonalInterleave(in, sf, cw), sf, cw)
		return bytes.Equal(out, in)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiagonalInterleaveSpreadsSymbols(t *testing.T) {
	t.Parallel()
	// Corrupting one interleaved symbol (sf bits) must damage at most one
	// bit of each codeword.
	sf, cw := 8, 5
	in := make([]byte, sf*cw) // all zeros
	inter := DiagonalInterleave(in, sf, cw)
	// corrupt symbol 2 entirely
	for row := 0; row < sf; row++ {
		inter[2*sf+row] ^= 1
	}
	out := DiagonalDeinterleave(inter, sf, cw)
	for row := 0; row < sf; row++ {
		errs := 0
		for col := 0; col < cw; col++ {
			if out[row*cw+col] != 0 {
				errs++
			}
		}
		if errs > 1 {
			t.Fatalf("codeword %d has %d errors after one-symbol corruption", row, errs)
		}
	}
}

func TestInterleavePanicsOnBadLength(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("bad length should panic")
		}
	}()
	DiagonalInterleave(make([]byte, 10), 7, 5)
}

func TestSymbolsBitsRoundTrip(t *testing.T) {
	t.Parallel()
	if err := quick.Check(func(raw []uint32, widthRaw uint8) bool {
		width := int(widthRaw%12) + 1
		symbols := make([]uint32, len(raw))
		mask := uint32(1)<<uint(width) - 1
		for i, v := range raw {
			symbols[i] = v & mask
		}
		got := SymbolsFromBits(BitsFromSymbols(symbols, width), width)
		if len(got) != len(symbols) {
			return false
		}
		for i := range got {
			if got[i] != symbols[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolsFromBitsDropsPartial(t *testing.T) {
	t.Parallel()
	got := SymbolsFromBits([]byte{1, 0, 1, 1, 1}, 2)
	if len(got) != 2 || got[0] != 0b10 || got[1] != 0b11 {
		t.Fatalf("symbols = %v", got)
	}
}
