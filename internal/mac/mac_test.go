package mac

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestDeliverFirstAttempt(t *testing.T) {
	l := NewLink()
	out := l.Deliver(true, 0.01, 64, func() float64 { return 0 })
	if !out.Delivered || out.Attempts != 1 || out.Bits != 64 {
		t.Fatalf("%+v", out)
	}
	want := DefaultEnergy.TxPowerW*0.01 + DefaultEnergy.WakePerTxJ
	if math.Abs(out.EnergyJ-want) > 1e-12 {
		t.Fatalf("energy %v want %v", out.EnergyJ, want)
	}
}

func TestDeliverRetries(t *testing.T) {
	l := NewLink()
	// retry succeeds on second retry: draws 0.95 (fail), 0.5 (success)
	draws := []float64{0.95, 0.5}
	i := 0
	out := l.Deliver(false, 0.01, 64, func() float64 { v := draws[i%len(draws)]; i++; return v })
	if !out.Delivered || out.Attempts != 3 {
		t.Fatalf("%+v", out)
	}
	per := DefaultEnergy.TxPowerW*0.01 + DefaultEnergy.WakePerTxJ
	if math.Abs(out.EnergyJ-3*per) > 1e-12 {
		t.Fatalf("energy %v", out.EnergyJ)
	}
}

func TestDeliverExhaustsBudget(t *testing.T) {
	l := NewLink()
	out := l.Deliver(false, 0.01, 64, func() float64 { return 0.99 }) // all retries fail
	if out.Delivered || out.Attempts != 1+l.MaxRetries || out.Bits != 0 {
		t.Fatalf("%+v", out)
	}
}

func TestDeliverDegenerate(t *testing.T) {
	l := NewLink()
	if out := l.Deliver(true, 0, 64, nil); out.Attempts != 0 {
		t.Fatalf("zero airtime: %+v", out)
	}
	if out := l.Deliver(true, 0.01, 0, nil); out.Attempts != 0 {
		t.Fatalf("zero bits: %+v", out)
	}
}

func TestReportAggregation(t *testing.T) {
	l := NewLink()
	gen := rng.New(1)
	var withDecode, withoutDecode Report
	const frames = 500
	for i := 0; i < frames; i++ {
		// GalioT decodes 95% of first attempts; plain receiver 50%.
		withDecode.Add(l.Deliver(gen.Float64() < 0.95, 0.01, 64, gen.Float64))
		withoutDecode.Add(l.Deliver(gen.Float64() < 0.50, 0.01, 64, gen.Float64))
	}
	if withDecode.EnergyPerBit() >= withoutDecode.EnergyPerBit() {
		t.Fatalf("collision decoding should save energy: %v vs %v J/bit",
			withDecode.EnergyPerBit(), withoutDecode.EnergyPerBit())
	}
	if withDecode.RetransmissionRate() >= withoutDecode.RetransmissionRate() {
		t.Fatal("collision decoding should reduce retransmissions")
	}
	if withDecode.DeliveryRatio() < 0.99 {
		t.Fatalf("delivery ratio %v", withDecode.DeliveryRatio())
	}
	if !strings.Contains(withDecode.String(), "frames=500") {
		t.Fatalf("report string: %s", withDecode.String())
	}
}

func TestEmptyReport(t *testing.T) {
	var r Report
	if !math.IsInf(r.EnergyPerBit(), 1) {
		t.Fatal("energy per bit of empty report")
	}
	if r.RetransmissionRate() != 0 || r.DeliveryRatio() != 0 {
		t.Fatal("empty report rates")
	}
}
