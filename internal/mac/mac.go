// Package mac models the link-layer consequences of collision decoding —
// the paper's core motivation: low-power devices "wake up and transmit",
// collisions are handled by retransmissions, and retransmissions drain
// batteries (Sec. 1). The model replays a delivery process in which every
// frame the PHY failed to decode is retransmitted after a backoff until it
// is delivered or the retry budget is exhausted, and accounts the radio
// energy spent per delivered bit.
//
// The energy figures are parameterized per technology class; defaults are
// representative of 868 MHz IoT silicon (≈40 mW transmit power at 14 dBm
// with typical efficiency). Absolute joules are not the reproduction
// target — the ratio between a deployment with and without collision
// decoding is.
package mac

import (
	"fmt"
	"math"
)

// Energy parameterizes a transmitter's power draw.
type Energy struct {
	TxPowerW    float64 // radio power while transmitting (W)
	WakePerTxJ  float64 // fixed wake-up/synthesizer-settle cost per attempt (J)
	SleepPowerW float64 // sleep floor, ignored in per-attempt accounting
}

// DefaultEnergy is representative of an 868 MHz IoT node transmitting at
// +14 dBm (25 mW RF, ~40 mW DC) with a 1 ms wake-up costing ~40 µJ.
var DefaultEnergy = Energy{TxPowerW: 0.040, WakePerTxJ: 40e-6, SleepPowerW: 2e-6}

// Attempt describes one delivery attempt of a frame.
type Attempt struct {
	AirtimeS  float64 // time on air per attempt (s)
	Delivered bool    // whether this attempt was decoded
}

// Outcome aggregates the delivery process of one frame.
type Outcome struct {
	Attempts  int     // total transmissions (1 = no retransmission)
	Delivered bool    // delivered within the retry budget
	EnergyJ   float64 // radio energy spent across all attempts
	Bits      int     // payload bits (0 if undelivered)
}

// Link models first-attempt and retry delivery probabilities as seen by a
// device: the first attempt's success is decided by the actual PHY result
// (collision decode or not); retries are assumed to be rescheduled into
// mostly clear air and succeed with RetrySuccess probability.
type Link struct {
	Energy       Energy
	MaxRetries   int     // retransmissions allowed after the first attempt (default 3)
	RetrySuccess float64 // per-retry delivery probability (default 0.9)
}

// NewLink returns a Link with the given first-attempt decoder behavior and
// defaults for the rest.
func NewLink() *Link {
	return &Link{Energy: DefaultEnergy, MaxRetries: 3, RetrySuccess: 0.9}
}

// Deliver simulates the delivery of one frame whose first attempt had the
// given outcome. rand must return uniform values in [0, 1); it is a
// parameter so callers control determinism.
func (l *Link) Deliver(firstAttemptDecoded bool, airtimeS float64, bits int, rand func() float64) Outcome {
	if airtimeS <= 0 || bits <= 0 {
		return Outcome{}
	}
	perAttempt := l.Energy.TxPowerW*airtimeS + l.Energy.WakePerTxJ
	out := Outcome{Attempts: 1, EnergyJ: perAttempt}
	if firstAttemptDecoded {
		out.Delivered = true
		out.Bits = bits
		return out
	}
	for r := 0; r < l.MaxRetries; r++ {
		out.Attempts++
		out.EnergyJ += perAttempt
		if rand() < l.RetrySuccess {
			out.Delivered = true
			out.Bits = bits
			return out
		}
	}
	return out
}

// Report aggregates outcomes over a deployment.
type Report struct {
	Frames        int
	Delivered     int
	Attempts      int
	EnergyJ       float64
	DeliveredBits int
}

// Add accumulates one outcome.
func (r *Report) Add(o Outcome) {
	r.Frames++
	if o.Delivered {
		r.Delivered++
	}
	r.Attempts += o.Attempts
	r.EnergyJ += o.EnergyJ
	r.DeliveredBits += o.Bits
}

// EnergyPerBit returns joules per delivered bit (the battery-drain metric);
// +Inf when nothing was delivered.
func (r Report) EnergyPerBit() float64 {
	if r.DeliveredBits == 0 {
		return math.Inf(1)
	}
	return r.EnergyJ / float64(r.DeliveredBits)
}

// RetransmissionRate returns the mean number of extra transmissions per
// frame.
func (r Report) RetransmissionRate() float64 {
	if r.Frames == 0 {
		return 0
	}
	return float64(r.Attempts-r.Frames) / float64(r.Frames)
}

// DeliveryRatio returns delivered/frames.
func (r Report) DeliveryRatio() float64 {
	if r.Frames == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Frames)
}

// String formats the headline numbers.
func (r Report) String() string {
	return fmt.Sprintf("frames=%d delivered=%.0f%% retx/frame=%.2f energy/bit=%.2f µJ",
		r.Frames, 100*r.DeliveryRatio(), r.RetransmissionRate(), 1e6*r.EnergyPerBit())
}
