package backhaul

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"repro/internal/iq"
)

// FuzzSegmentCodec drives the segment codec from two directions at once:
// the sample bytes are first treated as a CU8 capture and pushed through a
// full Encode/DecodeSegment round trip (metadata and samples must survive
// within quantization error), and then fed raw to DecodeSegment, which must
// reject or accept arbitrary payloads without panicking.
func FuzzSegmentCodec(f *testing.F) {
	// Seeds mirror the fixtures the unit tests exercise: empty, a short
	// ramp, noise-like bytes, and a repetitive tone-like run that flate
	// actually compresses.
	f.Add(int64(0), uint64(math.Float64bits(1e6)), []byte{}, uint8(0), false)
	f.Add(int64(123456), uint64(math.Float64bits(1e6)), []byte{0, 64, 128, 192, 255, 127}, uint8(0), true)
	f.Add(int64(-9), uint64(math.Float64bits(250e3)), []byte{200, 55, 13, 240, 99, 1, 128, 128}, uint8(1), true)
	tone := make([]byte, 512)
	for i := range tone {
		tone[i] = byte(128 + 100*((i/2)%2))
	}
	f.Add(int64(1<<40), uint64(math.Float64bits(2.4e6)), tone, uint8(2), false)

	f.Fuzz(func(t *testing.T, start int64, rateBits uint64, data []byte, formatSel uint8, compress bool) {
		// Direction 1: arbitrary bytes straight into the decoder. Errors are
		// expected; panics and runaway allocation are the bugs.
		if seg, err := DecodeSegment(data); err == nil {
			// The flate reader is capped at MaxMessageSize, so sample counts
			// past it mean the length guard broke.
			if len(seg.Samples) > MaxMessageSize {
				t.Fatalf("decoder produced %d samples from %d bytes", len(seg.Samples), len(data))
			}
		}

		// Direction 2: interpret the bytes as a CU8 capture and round-trip
		// it through every codec configuration.
		rate := math.Float64frombits(rateBits)
		if math.IsNaN(rate) || math.IsInf(rate, 0) {
			rate = 1e6
		}
		if len(data)%2 == 1 {
			data = data[:len(data)-1]
		}
		samples, err := iq.Decode(data, iq.CU8)
		if err != nil {
			t.Fatalf("CU8 decode of even-length bytes failed: %v", err)
		}
		format := iq.Format(formatSel % 3) // CU8, CS16, CF32
		sc := SegmentCodec{Format: format, Compress: compress}
		seg := Segment{Start: start, SampleRate: rate, Samples: samples}
		payload, err := sc.Encode(seg)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodeSegment(payload)
		if err != nil {
			t.Fatalf("decode of freshly encoded payload: %v", err)
		}
		if got.Start != start || len(got.Samples) != len(samples) {
			t.Fatalf("metadata changed: start %d→%d, %d→%d samples",
				start, got.Start, len(samples), len(got.Samples))
		}
		if math.Float64bits(got.SampleRate) != math.Float64bits(rate) {
			t.Fatalf("sample rate changed: %v → %v", rate, got.SampleRate)
		}
		// Quantization error bound: CU8 sees the coarsest grid. The AGC
		// scale can shrink tiny signals below one LSB, so normalize the
		// tolerance by the peak the encoder saw.
		peak := 0.0
		for _, v := range samples {
			peak = math.Max(peak, math.Max(math.Abs(real(v)), math.Abs(imag(v))))
		}
		tol := 1e-3
		if format == iq.CU8 {
			tol = 2.0 / 127.5
		}
		if peak > 0 {
			tol *= peak / 0.98
		}
		for i := range samples {
			d := got.Samples[i] - samples[i]
			if math.Abs(real(d)) > tol || math.Abs(imag(d)) > tol {
				t.Fatalf("sample %d drifted by %v (tol %v, peak %v)", i, d, tol, peak)
			}
		}

		// Direction 3: the v2 sequenced framing. A seq prefix derived from
		// the inputs must survive the round trip, and the raw bytes must be
		// safe to feed to the sequenced decoder too.
		seq := rateBits ^ uint64(start)
		framed := make([]byte, 8+len(payload))
		binary.BigEndian.PutUint64(framed, seq)
		copy(framed[8:], payload)
		gotSeq, gotSeg, err := DecodeSegmentSeq(framed)
		if err != nil {
			t.Fatalf("decode of freshly framed v2 payload: %v", err)
		}
		if gotSeq != seq || gotSeg.Start != start || len(gotSeg.Samples) != len(samples) {
			t.Fatalf("v2 framing changed metadata: seq %d→%d, start %d→%d",
				seq, gotSeq, start, gotSeg.Start)
		}
		if _, seg, err := DecodeSegmentSeq(data); err == nil {
			if len(seg.Samples) > MaxMessageSize {
				t.Fatalf("sequenced decoder produced %d samples from %d bytes", len(seg.Samples), len(data))
			}
		}
	})
}

// FuzzHelloNegotiation throws arbitrary bytes at the v2 handshake parsers:
// hello and hello-ack payloads must be rejected or accepted without
// panicking, an accepted hello must negotiate to a version both sides
// speak, and a well-formed hello built from the fuzzed fields must survive
// a marshal/parse/negotiate round trip.
func FuzzHelloNegotiation(f *testing.F) {
	f.Add([]byte(`{"version":1,"gateway_id":"gw","sample_rate":1e6}`), 1)
	f.Add([]byte(`{"version":2,"techs":["lora","xbee"]}`), 2)
	f.Add([]byte(`{"version":99}`), 99)
	f.Add([]byte{0xFF, 0x00, 'x'}, -7)

	f.Fuzz(func(t *testing.T, raw []byte, version int) {
		// Arbitrary bytes into both JSON parsers: errors expected, panics not.
		if h, err := ParseHello(raw); err == nil {
			if v, err := Negotiate(h.Version); err == nil && (v < MinVersion || v > Version) {
				t.Fatalf("negotiated version %d outside [%d, %d]", v, MinVersion, Version)
			}
		}
		_, _ = ParseHelloAck(raw)
		_, _ = ParseBusy(raw)

		// Structured round trip: a hello with the fuzzed version must come
		// back bit-identical through the wire framing.
		var buf bytes.Buffer
		c := NewConn(&buf)
		// Hex-encode the fuzzed bytes for the ID: JSON replaces invalid
		// UTF-8, which would break the bit-identical comparison below.
		sent := Hello{Version: version, GatewayID: fmt.Sprintf("%x", raw), SampleRate: 1e6}
		if err := c.SendHello(sent); err != nil {
			t.Fatalf("send hello: %v", err)
		}
		typ, payload, err := c.ReadMessage()
		if err != nil || typ != MsgHello {
			t.Fatalf("read hello: %v %v", typ, err)
		}
		got, err := ParseHello(payload)
		if err != nil {
			t.Fatalf("parse hello: %v", err)
		}
		if got.Version != version || got.GatewayID != sent.GatewayID {
			t.Fatalf("hello changed: %+v -> %+v", sent, got)
		}
		v, err := Negotiate(got.Version)
		if (err == nil) != (version >= MinVersion && version <= Version) {
			t.Fatalf("Negotiate(%d) acceptance wrong: %v", version, err)
		}
		if err == nil && v != version {
			t.Fatalf("Negotiate(%d) = %d", version, v)
		}
	})
}
