package backhaul

import (
	"math"
	"testing"

	"repro/internal/iq"
)

// FuzzSegmentCodec drives the segment codec from two directions at once:
// the sample bytes are first treated as a CU8 capture and pushed through a
// full Encode/DecodeSegment round trip (metadata and samples must survive
// within quantization error), and then fed raw to DecodeSegment, which must
// reject or accept arbitrary payloads without panicking.
func FuzzSegmentCodec(f *testing.F) {
	// Seeds mirror the fixtures the unit tests exercise: empty, a short
	// ramp, noise-like bytes, and a repetitive tone-like run that flate
	// actually compresses.
	f.Add(int64(0), uint64(math.Float64bits(1e6)), []byte{}, uint8(0), false)
	f.Add(int64(123456), uint64(math.Float64bits(1e6)), []byte{0, 64, 128, 192, 255, 127}, uint8(0), true)
	f.Add(int64(-9), uint64(math.Float64bits(250e3)), []byte{200, 55, 13, 240, 99, 1, 128, 128}, uint8(1), true)
	tone := make([]byte, 512)
	for i := range tone {
		tone[i] = byte(128 + 100*((i/2)%2))
	}
	f.Add(int64(1<<40), uint64(math.Float64bits(2.4e6)), tone, uint8(2), false)

	f.Fuzz(func(t *testing.T, start int64, rateBits uint64, data []byte, formatSel uint8, compress bool) {
		// Direction 1: arbitrary bytes straight into the decoder. Errors are
		// expected; panics and runaway allocation are the bugs.
		if seg, err := DecodeSegment(data); err == nil {
			// The flate reader is capped at MaxMessageSize, so sample counts
			// past it mean the length guard broke.
			if len(seg.Samples) > MaxMessageSize {
				t.Fatalf("decoder produced %d samples from %d bytes", len(seg.Samples), len(data))
			}
		}

		// Direction 2: interpret the bytes as a CU8 capture and round-trip
		// it through every codec configuration.
		rate := math.Float64frombits(rateBits)
		if math.IsNaN(rate) || math.IsInf(rate, 0) {
			rate = 1e6
		}
		if len(data)%2 == 1 {
			data = data[:len(data)-1]
		}
		samples, err := iq.Decode(data, iq.CU8)
		if err != nil {
			t.Fatalf("CU8 decode of even-length bytes failed: %v", err)
		}
		format := iq.Format(formatSel % 3) // CU8, CS16, CF32
		sc := SegmentCodec{Format: format, Compress: compress}
		seg := Segment{Start: start, SampleRate: rate, Samples: samples}
		payload, err := sc.Encode(seg)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodeSegment(payload)
		if err != nil {
			t.Fatalf("decode of freshly encoded payload: %v", err)
		}
		if got.Start != start || len(got.Samples) != len(samples) {
			t.Fatalf("metadata changed: start %d→%d, %d→%d samples",
				start, got.Start, len(samples), len(got.Samples))
		}
		if math.Float64bits(got.SampleRate) != math.Float64bits(rate) {
			t.Fatalf("sample rate changed: %v → %v", rate, got.SampleRate)
		}
		// Quantization error bound: CU8 sees the coarsest grid. The AGC
		// scale can shrink tiny signals below one LSB, so normalize the
		// tolerance by the peak the encoder saw.
		peak := 0.0
		for _, v := range samples {
			peak = math.Max(peak, math.Max(math.Abs(real(v)), math.Abs(imag(v))))
		}
		tol := 1e-3
		if format == iq.CU8 {
			tol = 2.0 / 127.5
		}
		if peak > 0 {
			tol *= peak / 0.98
		}
		for i := range samples {
			d := got.Samples[i] - samples[i]
			if math.Abs(real(d)) > tol || math.Abs(imag(d)) > tol {
				t.Fatalf("sample %d drifted by %v (tol %v, peak %v)", i, d, tol, peak)
			}
		}
	})
}
