// Package backhaul implements the gateway↔cloud wire protocol: a
// length-prefixed message stream carrying a JSON hello handshake, detected
// I/Q segments (quantized and flate-compressed to respect the home cable
// uplink the paper worries about), and decoded-frame reports flowing back.
//
// Framing: every message is [type:1][length:4 big-endian][payload]. Control
// messages (hello, frames) are JSON; segment payloads are binary:
// [startSample:8][sampleRate:8][scale:8][format:1][flags:1][trace:8? parent:8?][data...][crc32:4?].
// The flags byte is a bitmask: bit 0 marks DEFLATE-compressed data, bit 1
// marks a trailing IEEE CRC-32 over everything before it, so corruption on
// the wire is detected at decode time instead of silently producing garbage
// I/Q (the resilience layer relies on this: a corrupted segment fails loudly,
// the session dies, and the reconnecting gateway replays it — see DESIGN.md §11).
// Bit 2 (protocol v3) marks a 16-byte trace-context extension between the
// fixed header and the sample data: the trace ID minted when the segment
// was detected and the span ID of the gateway span that shipped it, so the
// cloud's spans stitch under the gateway's in one cross-process trace
// (DESIGN.md §16). Gateways only set the bit on sessions that negotiated
// v3; a segment without trace context encodes byte-identically to v2.
// The scale field records the per-segment gain applied before quantization
// (digital AGC): samples are normalized so the peak rail sits just below
// full scale, exactly as an SDR gain stage would, and the receiver undoes
// the gain so calibrated power levels survive the 8-bit wire format.
package backhaul

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/iq"
	"repro/internal/obs"
)

// MsgType identifies a protocol message.
type MsgType uint8

// Protocol message types. Types 1-4 are the v1 wire protocol; 5-7 were
// added by protocol v2 (sequence-numbered segments with admission-control
// rejects and an explicit hello acknowledgement carrying the negotiated
// version).
const (
	MsgHello      MsgType = 1 // JSON Hello
	MsgSegment    MsgType = 2 // binary segment (v1, unsequenced)
	MsgFrames     MsgType = 3 // JSON FramesReport
	MsgBye        MsgType = 4 // empty payload, orderly shutdown
	MsgBusy       MsgType = 5 // v2: [seq:8], segment rejected by admission control
	MsgSegmentSeq MsgType = 6 // v2: [seq:8] + v1 segment payload
	MsgHelloAck   MsgType = 7 // v2: JSON HelloAck, cloud -> gateway
)

// Version is the current (newest) protocol version. MinVersion is the
// oldest version the cloud still serves: v1 gateways get the original
// synchronous ship/reply exchange, v2 gateways get sequence-numbered
// segments, pipelining and busy rejects, v3 sessions may additionally
// carry per-segment trace context (the flagTrace extension). v3 changes
// no framing — it only licenses the extension — so v1/v2 peers are
// byte-compatibly unaffected.
const (
	Version    = 3
	MinVersion = 1
)

// Negotiate maps a gateway's hello version to the version the session will
// speak: the highest version both sides support. Versions below MinVersion
// or above Version are rejected outright — a gateway from the future may
// frame messages this cloud cannot parse, so optimistic downgrade is not
// attempted.
func Negotiate(helloVersion int) (int, error) {
	if helloVersion < MinVersion || helloVersion > Version {
		return 0, fmt.Errorf("backhaul: protocol version %d unsupported (serving %d..%d)",
			helloVersion, MinVersion, Version)
	}
	return helloVersion, nil
}

// MaxMessageSize bounds a single message payload (64 MiB) to keep a
// corrupted length prefix from exhausting memory.
const MaxMessageSize = 64 << 20

// Hello is the handshake sent by the gateway when a session opens.
type Hello struct {
	Version    int      `json:"version"`
	GatewayID  string   `json:"gateway_id"`
	SampleRate float64  `json:"sample_rate"`
	Techs      []string `json:"techs"`
	// Epoch identifies one gateway process lifetime. A reconnecting gateway
	// repeats the same nonzero epoch on every re-hello, letting the cloud
	// recognize replayed segments from a connection flap (dedup by
	// gateway+epoch+segment start) while a restarted gateway — new epoch —
	// never collides with stale cache entries. Zero (the v1/v2 legacy value)
	// disables dedup.
	Epoch uint64 `json:"epoch,omitempty"`
}

// HelloAck is the cloud's v2 reply to a hello: it confirms the session and
// carries the negotiated protocol version plus advisory capacity hints the
// gateway may use to size its shipping window. It is only sent to gateways
// that offered version >= 2 (v1 gateways do not expect a reply to hello).
type HelloAck struct {
	Version int `json:"version"`
	// Window advises the gateway how many unacked segments the cloud is
	// willing to buffer for this session (0 = no advice). On a sharded
	// plane this is the admission bound of the shard the session landed
	// on, not of the whole plane.
	Window int `json:"window,omitempty"`
	// Workers reports the decode parallelism behind the session (0 = serial).
	// Like Window, per-shard on a sharded plane.
	Workers int `json:"workers,omitempty"`
	// Shards reports how many shared-nothing decode shards sit behind the
	// front tier that accepted this session (0 or 1 = unsharded). Gateways
	// that size their window automatically may scale it up with the shard
	// count, because each shard serves proportionally fewer sessions.
	Shards int `json:"shards,omitempty"`
	// Capacity is the aggregate admission capacity of the whole decode
	// plane (the sum of every shard's queue depth), an upper bound on the
	// segments the cloud can hold queued at once across all gateways
	// (0 = no advice). Purely advisory: this session's own ceiling is
	// still Window.
	Capacity int `json:"capacity,omitempty"`
}

// FrameReport describes one decoded frame, sent from the cloud back to the
// gateway (and usable by applications).
type FrameReport struct {
	Tech    string  `json:"tech"`
	Payload []byte  `json:"payload"`
	CRCOK   bool    `json:"crc_ok"`
	Offset  int64   `json:"offset"` // absolute sample index of the frame start
	SNRdB   float64 `json:"snr_db,omitempty"`
}

// FramesReport carries the decode results for one segment. Seq echoes the
// segment's sequence number on v2 sessions so a pipelining gateway can
// match reports to in-flight segments; v1 reports leave it zero.
type FramesReport struct {
	SegmentStart int64         `json:"segment_start"`
	Seq          uint64        `json:"seq,omitempty"`
	Frames       []FrameReport `json:"frames"`
}

// Segment is a detected I/Q block in transit.
type Segment struct {
	Start      int64
	SampleRate float64
	Samples    []complex128
	// Trace is the wire-propagated trace ID minted when the segment was
	// detected; Parent is the span ID of the gateway span that shipped it.
	// Both ride the flagTrace extension on v3 sessions and are zero
	// otherwise — a zero Trace encodes byte-identically to protocol v2.
	Trace  uint64
	Parent uint64
}

// ConnMetrics counts a Conn's message and byte flow in both directions.
// The zero value records nothing (nil-safe counters), so unmetered
// connections pay only dead branches.
type ConnMetrics struct {
	MsgsSent  *obs.Counter // backhaul_messages_sent_total
	MsgsRecv  *obs.Counter // backhaul_messages_received_total
	BytesSent *obs.Counter // backhaul_bytes_sent_total
	BytesRecv *obs.Counter // backhaul_bytes_received_total
}

// NewConnMetrics wires connection metrics onto a registry. Connections
// sharing a registry share the counters (the totals are per process-side,
// not per session).
func NewConnMetrics(r *obs.Registry) ConnMetrics {
	return ConnMetrics{
		MsgsSent:  r.Counter("backhaul_messages_sent_total"),
		MsgsRecv:  r.Counter("backhaul_messages_received_total"),
		BytesSent: r.Counter("backhaul_bytes_sent_total"),
		BytesRecv: r.Counter("backhaul_bytes_received_total"),
	}
}

// Conn frames messages over any reliable byte stream.
type Conn struct {
	rw io.ReadWriter
	m  ConnMetrics
}

// NewConn wraps a byte stream (net.Conn, net.Pipe end, bytes.Buffer...).
func NewConn(rw io.ReadWriter) *Conn { return &Conn{rw: rw} }

// SetMetrics attaches flow counters (see NewConnMetrics). Call before the
// connection is shared across goroutines.
func (c *Conn) SetMetrics(m ConnMetrics) { c.m = m }

// WriteMessage sends one framed message.
func (c *Conn) WriteMessage(t MsgType, payload []byte) error {
	if len(payload) > MaxMessageSize {
		return fmt.Errorf("backhaul: payload %d exceeds max %d", len(payload), MaxMessageSize)
	}
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := c.rw.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		// Skip the empty write: zero-length writes on rendezvous streams
		// like net.Pipe block until a matching read, which a zero-length
		// io.ReadFull on the peer never issues.
		c.m.MsgsSent.Inc()
		c.m.BytesSent.Add(uint64(len(hdr)))
		return nil
	}
	if _, err := c.rw.Write(payload); err != nil {
		return err
	}
	c.m.MsgsSent.Inc()
	c.m.BytesSent.Add(uint64(len(hdr) + len(payload)))
	return nil
}

// ReadMessage receives one framed message.
func (c *Conn) ReadMessage() (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c.rw, hdr[:]); err != nil {
		return 0, nil, err
	}
	t := MsgType(hdr[0])
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxMessageSize {
		return 0, nil, fmt.Errorf("backhaul: message length %d exceeds max", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.rw, payload); err != nil {
		return 0, nil, err
	}
	c.m.MsgsRecv.Inc()
	c.m.BytesRecv.Add(uint64(len(hdr)) + uint64(n))
	return t, payload, nil
}

// SendHello writes the handshake.
func (c *Conn) SendHello(h Hello) error {
	data, err := json.Marshal(h)
	if err != nil {
		return err
	}
	return c.WriteMessage(MsgHello, data)
}

// SendFrames writes a decode report.
func (c *Conn) SendFrames(r FramesReport) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return c.WriteMessage(MsgFrames, data)
}

// SendBye writes an orderly shutdown marker.
func (c *Conn) SendBye() error { return c.WriteMessage(MsgBye, nil) }

// SegmentCodec controls how segments are serialized.
type SegmentCodec struct {
	Format   iq.Format // sample format on the wire (CU8 matches the RTL-SDR ADC)
	Compress bool      // apply DEFLATE on top
	Checksum bool      // append an IEEE CRC-32 trailer so wire corruption is detected
	// Metrics, when non-nil, counts every Encode (see CodecMetrics). A
	// pointer so codec values copied around a session share the counters.
	Metrics *CodecMetrics
}

// CodecMetrics counts segment serialization work: segments and samples in,
// wire payload bytes out. Bytes over samples is the backhaul's effective
// bits-per-sample — the compression story the paper's uplink budget turns
// on, now observable instead of eyeballed.
type CodecMetrics struct {
	Segments *obs.Counter // backhaul_segments_encoded_total
	Samples  *obs.Counter // backhaul_encoded_input_samples
	Bytes    *obs.Counter // backhaul_encoded_payload_bytes
}

// NewCodecMetrics wires codec metrics onto a registry.
func NewCodecMetrics(r *obs.Registry) *CodecMetrics {
	return &CodecMetrics{
		Segments: r.Counter("backhaul_segments_encoded_total"),
		Samples:  r.Counter("backhaul_encoded_input_samples"),
		Bytes:    r.Counter("backhaul_encoded_payload_bytes"),
	}
}

// Segment payload flag bits (payload byte 25).
const (
	flagFlate = 1 << 0
	flagCRC   = 1 << 1
	flagTrace = 1 << 2 // v3: 16-byte [trace:8][parent:8] extension follows the header
)

// traceExtSize is the flagTrace extension length.
const traceExtSize = 16

// DefaultCodec is what the paper's gateway effectively ships: 8-bit
// quantized samples, compressed, with an integrity trailer.
var DefaultCodec = SegmentCodec{Format: iq.CU8, Compress: true, Checksum: true}

// Encode serializes a segment.
func (sc SegmentCodec) Encode(seg Segment) ([]byte, error) {
	// Digital AGC: normalize the peak rail to 0.98 full scale so the
	// quantizer neither clips strong bursts nor wastes dynamic range on
	// weak ones.
	peak := 0.0
	for _, v := range seg.Samples {
		if a := math.Abs(real(v)); a > peak {
			peak = a
		}
		if a := math.Abs(imag(v)); a > peak {
			peak = a
		}
	}
	scale := 1.0
	if peak > 0 {
		scale = 0.98 / peak
	}
	scaled := make([]complex128, len(seg.Samples))
	for i, v := range seg.Samples {
		scaled[i] = complex(real(v)*scale, imag(v)*scale)
	}
	raw, err := iq.Encode(scaled, sc.Format)
	if err != nil {
		return nil, err
	}
	flag := byte(0)
	if sc.Compress {
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return nil, err
		}
		if _, err := w.Write(raw); err != nil {
			return nil, err
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		// Only keep compression when it actually wins (noise-like I/Q can
		// be incompressible).
		if buf.Len() < len(raw) {
			raw = buf.Bytes()
			flag = flagFlate
		}
	}
	trailer := 0
	if sc.Checksum {
		flag |= flagCRC
		trailer = 4
	}
	ext := 0
	if seg.Trace != 0 {
		flag |= flagTrace
		ext = traceExtSize
	}
	out := make([]byte, 26+ext+len(raw)+trailer)
	binary.BigEndian.PutUint64(out[0:], uint64(seg.Start))
	binary.BigEndian.PutUint64(out[8:], math.Float64bits(seg.SampleRate))
	binary.BigEndian.PutUint64(out[16:], math.Float64bits(scale))
	out[24] = byte(sc.Format)
	out[25] = flag
	if ext != 0 {
		binary.BigEndian.PutUint64(out[26:], seg.Trace)
		binary.BigEndian.PutUint64(out[34:], seg.Parent)
	}
	copy(out[26+ext:], raw)
	if sc.Checksum {
		sum := crc32.ChecksumIEEE(out[:26+ext+len(raw)])
		binary.BigEndian.PutUint32(out[26+ext+len(raw):], sum)
	}
	if m := sc.Metrics; m != nil {
		m.Segments.Inc()
		m.Samples.Add(uint64(len(seg.Samples)))
		m.Bytes.Add(uint64(len(out)))
	}
	return out, nil
}

// Decode deserializes a segment payload.
func DecodeSegment(payload []byte) (Segment, error) {
	if len(payload) < 26 {
		return Segment{}, fmt.Errorf("backhaul: segment payload too short")
	}
	flags := payload[25]
	if flags&^(flagFlate|flagCRC|flagTrace) != 0 {
		return Segment{}, fmt.Errorf("backhaul: unknown segment flags %#02x", flags)
	}
	if flags&flagCRC != 0 {
		if len(payload) < 30 {
			return Segment{}, fmt.Errorf("backhaul: segment payload too short for checksum")
		}
		body := payload[:len(payload)-4]
		want := binary.BigEndian.Uint32(payload[len(payload)-4:])
		if got := crc32.ChecksumIEEE(body); got != want {
			return Segment{}, fmt.Errorf("backhaul: segment checksum mismatch (got %#08x want %#08x)", got, want)
		}
		payload = body
	}
	start := int64(binary.BigEndian.Uint64(payload[0:]))
	rate := math.Float64frombits(binary.BigEndian.Uint64(payload[8:]))
	scale := math.Float64frombits(binary.BigEndian.Uint64(payload[16:]))
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return Segment{}, fmt.Errorf("backhaul: invalid segment scale %v", scale)
	}
	format := iq.Format(payload[24])
	compressed := flags&flagFlate != 0
	var trace, parent uint64
	data := payload[26:]
	if flags&flagTrace != 0 {
		if len(data) < traceExtSize {
			return Segment{}, fmt.Errorf("backhaul: segment payload too short for trace context")
		}
		trace = binary.BigEndian.Uint64(data[0:])
		parent = binary.BigEndian.Uint64(data[8:])
		data = data[traceExtSize:]
	}
	if compressed {
		r := flate.NewReader(bytes.NewReader(data))
		defer r.Close()
		raw, err := io.ReadAll(io.LimitReader(r, MaxMessageSize))
		if err != nil {
			return Segment{}, fmt.Errorf("backhaul: decompress: %w", err)
		}
		data = raw
	}
	samples, err := iq.Decode(data, format)
	if err != nil {
		return Segment{}, err
	}
	inv := 1 / scale
	for i, v := range samples {
		samples[i] = complex(real(v)*inv, imag(v)*inv)
	}
	return Segment{Start: start, SampleRate: rate, Samples: samples, Trace: trace, Parent: parent}, nil
}

// SendSegment encodes and writes a segment.
func (c *Conn) SendSegment(sc SegmentCodec, seg Segment) (wireBytes int, err error) {
	payload, err := sc.Encode(seg)
	if err != nil {
		return 0, err
	}
	if err := c.WriteMessage(MsgSegment, payload); err != nil {
		return 0, err
	}
	return 5 + len(payload), nil
}

// SendSegmentSeq encodes and writes a v2 sequence-numbered segment.
func (c *Conn) SendSegmentSeq(sc SegmentCodec, seq uint64, seg Segment) (wireBytes int, err error) {
	payload, err := sc.Encode(seg)
	if err != nil {
		return 0, err
	}
	framed := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint64(framed, seq)
	copy(framed[8:], payload)
	if err := c.WriteMessage(MsgSegmentSeq, framed); err != nil {
		return 0, err
	}
	return 5 + len(framed), nil
}

// DecodeSegmentSeq deserializes a v2 segment payload: an 8-byte sequence
// number followed by the v1 segment encoding.
func DecodeSegmentSeq(payload []byte) (uint64, Segment, error) {
	if len(payload) < 8 {
		return 0, Segment{}, fmt.Errorf("backhaul: sequenced segment payload too short")
	}
	seq := binary.BigEndian.Uint64(payload)
	seg, err := DecodeSegment(payload[8:])
	return seq, seg, err
}

// SendBusy tells the gateway the segment with the given sequence number
// was rejected by admission control and will not be decoded.
func (c *Conn) SendBusy(seq uint64) error {
	var payload [8]byte
	binary.BigEndian.PutUint64(payload[:], seq)
	return c.WriteMessage(MsgBusy, payload[:])
}

// ParseBusy decodes a busy payload into the rejected sequence number.
func ParseBusy(payload []byte) (uint64, error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("backhaul: busy payload is %d bytes, want 8", len(payload))
	}
	return binary.BigEndian.Uint64(payload), nil
}

// SendHelloAck writes the cloud's v2 session acknowledgement.
func (c *Conn) SendHelloAck(a HelloAck) error {
	data, err := json.Marshal(a)
	if err != nil {
		return err
	}
	return c.WriteMessage(MsgHelloAck, data)
}

// ParseHelloAck decodes a hello-ack payload.
func ParseHelloAck(payload []byte) (HelloAck, error) {
	var a HelloAck
	err := json.Unmarshal(payload, &a)
	if err == nil && (a.Version < MinVersion || a.Version > Version) {
		return a, fmt.Errorf("backhaul: hello ack carries unsupported version %d", a.Version)
	}
	return a, err
}

// ParseHello decodes a hello payload.
func ParseHello(payload []byte) (Hello, error) {
	var h Hello
	err := json.Unmarshal(payload, &h)
	return h, err
}

// ParseFrames decodes a frames-report payload.
func ParseFrames(payload []byte) (FramesReport, error) {
	var r FramesReport
	err := json.Unmarshal(payload, &r)
	return r, err
}
