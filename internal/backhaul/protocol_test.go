package backhaul

import (
	"bytes"
	"io"
	"math"
	"net"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
	"repro/internal/iq"
	"repro/internal/rng"
)

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.WriteMessage(MsgHello, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := c.ReadMessage()
	if err != nil || typ != MsgHello || string(payload) != "abc" {
		t.Fatalf("%v %v %q", typ, err, payload)
	}
}

func TestMessageEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.SendBye(); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := c.ReadMessage()
	if err != nil || typ != MsgBye || len(payload) != 0 {
		t.Fatalf("%v %v %d", typ, err, len(payload))
	}
}

func TestMessageTruncatedStream(t *testing.T) {
	c := NewConn(bytes.NewBuffer([]byte{byte(MsgHello), 0, 0, 0, 10, 'x'}))
	if _, _, err := c.ReadMessage(); err == nil {
		t.Fatal("truncated payload should error")
	}
	c2 := NewConn(bytes.NewBuffer([]byte{1, 2}))
	if _, _, err := c2.ReadMessage(); err == nil {
		t.Fatal("truncated header should error")
	}
}

func TestMessageOversizeRejected(t *testing.T) {
	hdr := []byte{byte(MsgSegment), 0xFF, 0xFF, 0xFF, 0xFF}
	c := NewConn(bytes.NewBuffer(hdr))
	if _, _, err := c.ReadMessage(); err == nil {
		t.Fatal("oversize length should be rejected before allocation")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	h := Hello{Version: Version, GatewayID: "gw-1", SampleRate: 1e6, Techs: []string{"lora", "xbee"}}
	if err := c.SendHello(h); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := c.ReadMessage()
	if err != nil || typ != MsgHello {
		t.Fatal(err)
	}
	got, err := ParseHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.GatewayID != "gw-1" || got.SampleRate != 1e6 || len(got.Techs) != 2 {
		t.Fatalf("%+v", got)
	}
}

func TestFramesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	r := FramesReport{SegmentStart: 777, Frames: []FrameReport{{Tech: "lora", Payload: []byte{1, 2}, CRCOK: true, Offset: 780, SNRdB: 7.5}}}
	if err := c.SendFrames(r); err != nil {
		t.Fatal(err)
	}
	_, payload, err := c.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseFrames(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.SegmentStart != 777 || len(got.Frames) != 1 || !got.Frames[0].CRCOK {
		t.Fatalf("%+v", got)
	}
}

func TestSegmentCodecRoundTrip(t *testing.T) {
	gen := rng.New(1)
	samples := make([]complex128, 5000)
	for i := range samples {
		samples[i] = complex(gen.NormFloat64()*0.2, gen.NormFloat64()*0.2)
	}
	for _, sc := range []SegmentCodec{
		{Format: iq.CU8, Compress: false},
		{Format: iq.CU8, Compress: true},
		{Format: iq.CS16, Compress: true},
		{Format: iq.CF32, Compress: false},
		{Format: iq.CU8, Compress: true, Checksum: true},
		{Format: iq.CS16, Compress: false, Checksum: true},
	} {
		seg := Segment{Start: 123456, SampleRate: 1e6, Samples: samples}
		payload, err := sc.Encode(seg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeSegment(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got.Start != 123456 || got.SampleRate != 1e6 || len(got.Samples) != 5000 {
			t.Fatalf("%v: meta %d %v %d", sc, got.Start, got.SampleRate, len(got.Samples))
		}
		// quantization error bounded by the format
		tol := 2.0 / 127.5
		if sc.Format != iq.CU8 {
			tol = 1e-3
		}
		for i := range samples {
			if d := got.Samples[i] - samples[i]; math.Abs(real(d)) > tol || math.Abs(imag(d)) > tol {
				t.Fatalf("%v: sample %d error %v", sc, i, d)
			}
		}
	}
}

func TestSegmentCompressionWinsOnStructure(t *testing.T) {
	// A constant tone quantizes to a highly repetitive byte stream; flate
	// must shrink it. Pure noise should fall back to uncompressed.
	tone := dsp.Tone(20000, 10e3, 0, 1e6)
	dsp.Scale(tone, 0.5)
	seg := Segment{Start: 0, SampleRate: 1e6, Samples: tone}
	comp, err := SegmentCodec{Format: iq.CU8, Compress: true}.Encode(seg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := SegmentCodec{Format: iq.CU8, Compress: false}.Encode(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(plain) {
		t.Fatalf("compression did not help: %d vs %d", len(comp), len(plain))
	}
	got, err := DecodeSegment(comp)
	if err != nil || len(got.Samples) != len(tone) {
		t.Fatalf("decode compressed: %v", err)
	}
}

func TestSegmentDecodeErrors(t *testing.T) {
	if _, err := DecodeSegment([]byte{1, 2, 3}); err == nil {
		t.Fatal("short payload")
	}
}

func TestSegmentPayloadProperty(t *testing.T) {
	if err := quick.Check(func(start int64, data []byte) bool {
		if len(data)%2 == 1 {
			data = data[:len(data)-1]
		}
		samples, err := iq.Decode(data, iq.CU8)
		if err != nil {
			return false
		}
		seg := Segment{Start: start, SampleRate: 1e6, Samples: samples}
		payload, err := SegmentCodec{Format: iq.CU8, Compress: true}.Encode(seg)
		if err != nil {
			return false
		}
		got, err := DecodeSegment(payload)
		if err != nil {
			return false
		}
		return got.Start == start && len(got.Samples) == len(samples)
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNegotiate(t *testing.T) {
	for _, tc := range []struct {
		hello, want int
		ok          bool
	}{
		{0, 0, false},
		{1, 1, true},
		{2, 2, true},
		{3, 3, true},
		{4, 0, false},
		{99, 0, false},
		{-1, 0, false},
	} {
		got, err := Negotiate(tc.hello)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("Negotiate(%d) = %d, %v; want %d, ok=%v", tc.hello, got, err, tc.want, tc.ok)
		}
	}
}

func TestSegmentSeqRoundTrip(t *testing.T) {
	gen := rng.New(3)
	samples := make([]complex128, 2000)
	for i := range samples {
		samples[i] = complex(gen.NormFloat64()*0.3, gen.NormFloat64()*0.3)
	}
	var buf bytes.Buffer
	c := NewConn(&buf)
	n, err := c.SendSegmentSeq(DefaultCodec, 41, Segment{Start: 9000, SampleRate: 1e6, Samples: samples})
	if err != nil || n <= 13 {
		t.Fatalf("send: %d %v", n, err)
	}
	typ, payload, err := c.ReadMessage()
	if err != nil || typ != MsgSegmentSeq {
		t.Fatalf("%v %v", typ, err)
	}
	seq, seg, err := DecodeSegmentSeq(payload)
	if err != nil || seq != 41 || seg.Start != 9000 || len(seg.Samples) != 2000 {
		t.Fatalf("seq %d seg %+d/%d err %v", seq, seg.Start, len(seg.Samples), err)
	}
	if _, _, err := DecodeSegmentSeq([]byte{1, 2, 3}); err == nil {
		t.Fatal("short sequenced payload accepted")
	}
}

func TestBusyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.SendBusy(1 << 40); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := c.ReadMessage()
	if err != nil || typ != MsgBusy {
		t.Fatalf("%v %v", typ, err)
	}
	seq, err := ParseBusy(payload)
	if err != nil || seq != 1<<40 {
		t.Fatalf("seq %d err %v", seq, err)
	}
	if _, err := ParseBusy([]byte{1}); err == nil {
		t.Fatal("short busy payload accepted")
	}
}

func TestHelloAckRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.SendHelloAck(HelloAck{Version: 2, Window: 16, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := c.ReadMessage()
	if err != nil || typ != MsgHelloAck {
		t.Fatalf("%v %v", typ, err)
	}
	ack, err := ParseHelloAck(payload)
	if err != nil || ack.Version != 2 || ack.Window != 16 || ack.Workers != 4 {
		t.Fatalf("%+v %v", ack, err)
	}
	if _, err := ParseHelloAck([]byte(`{"version":77}`)); err == nil {
		t.Fatal("out-of-range ack version accepted")
	}
}

func TestFramesSeqSurvivesJSON(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.SendFrames(FramesReport{SegmentStart: 5, Seq: 12}); err != nil {
		t.Fatal(err)
	}
	_, payload, err := c.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseFrames(payload)
	if err != nil || got.Seq != 12 {
		t.Fatalf("%+v %v", got, err)
	}
}

func TestOverTCPLikePipe(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	gen := rng.New(2)
	samples := make([]complex128, 3000)
	for i := range samples {
		samples[i] = complex(gen.NormFloat64()*0.1, gen.NormFloat64()*0.1)
	}
	done := make(chan error, 1)
	go func() {
		c := NewConn(a)
		if err := c.SendHello(Hello{Version: Version, GatewayID: "gw", SampleRate: 1e6}); err != nil {
			done <- err
			return
		}
		if _, err := c.SendSegment(DefaultCodec, Segment{Start: 42, SampleRate: 1e6, Samples: samples}); err != nil {
			done <- err
			return
		}
		done <- c.SendBye()
	}()
	c := NewConn(b)
	typ, _, err := c.ReadMessage()
	if err != nil || typ != MsgHello {
		t.Fatalf("hello: %v %v", typ, err)
	}
	typ, payload, err := c.ReadMessage()
	if err != nil || typ != MsgSegment {
		t.Fatalf("segment: %v %v", typ, err)
	}
	seg, err := DecodeSegment(payload)
	if err != nil || seg.Start != 42 || len(seg.Samples) != 3000 {
		t.Fatalf("segment decode: %v %+v", err, seg.Start)
	}
	typ, _, err = c.ReadMessage()
	if err != nil || typ != MsgBye {
		t.Fatalf("bye: %v %v", typ, err)
	}
	if err := <-done; err != nil && err != io.EOF {
		t.Fatal(err)
	}
}

func TestSegmentChecksumDetectsCorruption(t *testing.T) {
	gen := rng.New(3)
	samples := make([]complex128, 2000)
	for i := range samples {
		samples[i] = complex(gen.NormFloat64()*0.2, gen.NormFloat64()*0.2)
	}
	sc := SegmentCodec{Format: iq.CU8, Compress: true, Checksum: true}
	payload, err := sc.Encode(Segment{Start: 7, SampleRate: 1e6, Samples: samples})
	if err != nil {
		t.Fatal(err)
	}
	if payload[25]&2 == 0 {
		t.Fatal("checksum flag bit not set")
	}
	if _, err := DecodeSegment(payload); err != nil {
		t.Fatalf("clean payload must decode: %v", err)
	}
	// Flipping any byte — header, data, or the trailer itself — must be caught.
	for _, idx := range []int{0, 12, 24, 26, len(payload) / 2, len(payload) - 5, len(payload) - 1} {
		bad := append([]byte(nil), payload...)
		bad[idx] ^= 0x40
		if _, err := DecodeSegment(bad); err == nil {
			t.Fatalf("corruption at byte %d went undetected", idx)
		}
	}
}

func TestSegmentUnknownFlagsRejected(t *testing.T) {
	sc := SegmentCodec{Format: iq.CU8}
	payload, err := sc.Encode(Segment{Start: 1, SampleRate: 1e6, Samples: make([]complex128, 64)})
	if err != nil {
		t.Fatal(err)
	}
	payload[25] |= 0x80
	if _, err := DecodeSegment(payload); err == nil {
		t.Fatal("unknown flag bits should be rejected")
	}
}

func TestSegmentTraceContextRoundTrip(t *testing.T) {
	gen := rng.New(5)
	samples := make([]complex128, 1500)
	for i := range samples {
		samples[i] = complex(gen.NormFloat64()*0.2, gen.NormFloat64()*0.2)
	}
	for _, sc := range []SegmentCodec{
		{Format: iq.CU8},
		{Format: iq.CU8, Compress: true},
		{Format: iq.CU8, Compress: true, Checksum: true},
		{Format: iq.CS16, Checksum: true},
	} {
		seg := Segment{Start: 555, SampleRate: 1e6, Samples: samples, Trace: 0xCAFEF00DBEEF1234, Parent: 0x42}
		payload, err := sc.Encode(seg)
		if err != nil {
			t.Fatal(err)
		}
		if payload[25]&(1<<2) == 0 {
			t.Fatalf("%v: trace flag bit not set", sc)
		}
		got, err := DecodeSegment(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got.Trace != seg.Trace || got.Parent != seg.Parent {
			t.Fatalf("%v: trace context lost: %#x/%#x", sc, got.Trace, got.Parent)
		}
		if got.Start != 555 || len(got.Samples) != 1500 {
			t.Fatalf("%v: segment body damaged: %d/%d", sc, got.Start, len(got.Samples))
		}
	}
}

func TestSegmentNoTraceBytesIdenticalToV2(t *testing.T) {
	// A zero Trace must not change the encoding at all: v1/v2 peers that
	// reject unknown flag bits keep working, and WAL files written before
	// v3 replay unchanged.
	gen := rng.New(6)
	samples := make([]complex128, 800)
	for i := range samples {
		samples[i] = complex(gen.NormFloat64()*0.2, gen.NormFloat64()*0.2)
	}
	plain, err := DefaultCodec.Encode(Segment{Start: 9, SampleRate: 1e6, Samples: samples})
	if err != nil {
		t.Fatal(err)
	}
	if plain[25]&(1<<2) != 0 {
		t.Fatal("trace flag set on a traceless segment")
	}
	traced, err := DefaultCodec.Encode(Segment{Start: 9, SampleRate: 1e6, Samples: samples, Trace: 77, Parent: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(traced) != len(plain)+16 {
		t.Fatalf("trace extension should add exactly 16 bytes: %d vs %d", len(traced), len(plain))
	}
	got, err := DecodeSegment(plain)
	if err != nil || got.Trace != 0 || got.Parent != 0 {
		t.Fatalf("traceless decode: %v trace=%d parent=%d", err, got.Trace, got.Parent)
	}
}

func TestHelloEpochRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.SendHello(Hello{Version: Version, GatewayID: "gw-1", SampleRate: 1e6, Epoch: 0xDEADBEEF}); err != nil {
		t.Fatal(err)
	}
	_, payload, err := c.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseHello(payload)
	if err != nil || h.Epoch != 0xDEADBEEF {
		t.Fatalf("epoch lost in transit: %v epoch=%d", err, h.Epoch)
	}
	// Legacy hellos without the field parse as epoch 0 (dedup disabled).
	h2, err := ParseHello([]byte(`{"version":2,"gateway_id":"old"}`))
	if err != nil || h2.Epoch != 0 {
		t.Fatalf("legacy hello: %v epoch=%d", err, h2.Epoch)
	}
}
