package experiments

import (
	"fmt"

	"repro/internal/cancel"
	"repro/internal/mac"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Battery quantifies the paper's motivating claim (Sec. 1): collisions are
// handled by retransmissions, which drain batteries; collision decoding
// removes most retransmissions. The experiment replays the Fig. 3(c)
// medium-SNR collision workload through the MAC retransmission model twice
// — once with the plain-SIC cloud, once with GalioT's kill filters — and
// reports energy per delivered bit.
func Battery(opt Options) (Table, error) {
	fs := opt.fs()
	techs := prototypeTechs()
	rounds := opt.trials(2, 6)
	base := rng.New(opt.Seed ^ 0xBA77)
	link := mac.NewLink()

	type variant struct {
		name string
		mk   func() *cancel.Decoder
		rep  mac.Report
	}
	variants := []*variant{
		{name: "plain SIC cloud", mk: func() *cancel.Decoder { return cancel.NewSIC(techs, fs) }},
		{name: "GalioT kill filters", mk: func() *cancel.Decoder { return cancel.NewDecoder(techs, fs) }},
	}
	for round := 0; round < rounds; round++ {
		gen := base.Split(uint64(round))
		episodes := collisionEpisodes(techs, 8, 14, gen)
		for ei, specs := range episodes {
			scen, err := sim.GenCollision(specs, fs, 4000, gen.Split(uint64(ei)))
			if err != nil {
				return Table{}, err
			}
			for _, v := range variants {
				out := decodeMatches(scen, v.mk())
				macGen := gen.Split(uint64(ei) ^ 0xF00)
				for pi, p := range scen.Packets {
					airtime := float64(p.Length) / fs
					v.rep.Add(link.Deliver(out[pi], airtime, len(p.Payload)*8, macGen.Float64))
				}
			}
		}
	}
	t := Table{
		ID:     "battery",
		Title:  "Battery drain from collision retransmissions (paper Sec. 1 motivation)",
		Header: []string{"cloud decoder", "delivery", "retx/frame", "energy/bit (µJ)"},
		Notes: []string{
			"MAC model: up to 3 retransmissions, 90% per-retry success, 40 mW TX + 40 µJ wake cost;",
			"paper: 'collisions are handled using retransmissions, resulting in extensive battery drain'.",
		},
	}
	var perBit []float64
	for _, v := range variants {
		perBit = append(perBit, v.rep.EnergyPerBit())
		t.Rows = append(t.Rows, []string{
			v.name,
			pct(v.rep.DeliveryRatio()),
			f2(v.rep.RetransmissionRate()),
			f2(1e6 * v.rep.EnergyPerBit()),
		})
	}
	if len(perBit) == 2 && perBit[1] > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("energy per delivered bit saved by kill filters: %.1f%%",
			100*(perBit[0]-perBit[1])/perBit[0]))
	}
	return t, nil
}

// decodeMatches runs a decoder over a scenario and returns, per ground-
// truth packet, whether the decoder recovered it on the first attempt.
func decodeMatches(scen sim.Scenario, dec *cancel.Decoder) []bool {
	out := make([]bool, len(scen.Packets))
	res := sim.EvaluateDecodeDetailed(scen, dec)
	copy(out, res)
	return out
}
