package experiments

import (
	"repro/internal/detect"
	"repro/internal/frontend"
	"repro/internal/rng"
	"repro/internal/sim"
)

// AblationFrontend measures detection through the RTL-SDR impairment model
// (8-bit quantization, DC offset, IQ imbalance, 500 Hz tuner error) for
// the coherent universal-preamble correlator versus its non-coherent
// chunked variant. Tuner error rotates the phase across a long preamble
// and starves coherent integration — the chunked detector trades a little
// clean-channel sensitivity for robustness to exactly this impairment.
func AblationFrontend(opt Options) (Table, error) {
	fs := opt.fs()
	techs := prototypeTechs()
	maxPacket := sim.MaxPacketSamples(techs, fs)
	trials := opt.trials(2, 5)

	coherent, err := detect.NewUniversal(techs, fs, 0.055)
	if err != nil {
		return Table{}, err
	}
	chunked, err := detect.NewUniversal(techs, fs, 0.055)
	if err != nil {
		return Table{}, err
	}
	chunked.Chunk = 1024

	fes := []struct {
		name string
		fe   *frontend.Receiver
	}{
		{"ideal front-end", frontend.Ideal(fs)},
		{"RTL-SDR model (8-bit, 500 Hz tuner error, IQ imbalance)", frontend.Default()},
	}
	t := Table{
		ID:     "ablation-frontend",
		Title:  "Detection through the RTL-SDR impairment model (DESIGN §6 notes 3-4)",
		Header: []string{"front-end", "coherent universal", "chunked universal"},
		Notes: []string{
			"traffic at -14..-8 dB; the tuner error decoheres long-preamble correlation, which the",
			"non-coherent chunked variant (Chunk=1024) absorbs.",
		},
	}
	base := rng.New(opt.Seed ^ 0xFE)
	for _, fe := range fes {
		var detC, detK, total int
		for trial := 0; trial < trials; trial++ {
			gen := base.Split(uint64(trial) + 1)
			scen, err := sim.GenTraffic(sim.TrafficConfig{
				Techs:      techs,
				SampleRate: fs,
				Duration:   1 << 19,
				MeanGap:    0.06,
				// At the detection margin the preamble peak is all there
				// is — data-region correlations are under water — so the
				// coherent-vs-chunked difference is visible.
				SNRMin: -14,
				SNRMax: -8,
			}, gen)
			if err != nil {
				return Table{}, err
			}
			impaired := sim.Scenario{
				Capture:    fe.fe.Capture(scen.Capture),
				SampleRate: fs,
				Packets:    scen.Packets,
			}
			total += len(scen.Packets)
			detC += sim.EvaluateDetection(impaired, coherent, maxPacket).Detected
			detK += sim.EvaluateDetection(impaired, chunked, maxPacket).Detected
		}
		ratio := func(d int) float64 {
			if total == 0 {
				return 0
			}
			return float64(d) / float64(total)
		}
		t.Rows = append(t.Rows, []string{fe.name, pct(ratio(detC)), pct(ratio(detK))})
	}
	return t, nil
}
