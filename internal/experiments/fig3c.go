package experiments

import (
	"fmt"

	"repro/internal/cancel"
	"repro/internal/phy"
	"repro/internal/rng"
	"repro/internal/sim"
)

// snrRegime is one x-axis group of Fig. 3(c).
type snrRegime struct {
	label    string
	min, max float64
}

var fig3cRegimes = []snrRegime{
	{"Low", 2, 6},
	{"Medium", 8, 14},
	{"High", 18, 24},
}

// Fig3cSeries holds throughput (bps) per regime for the SIC baseline and
// for GalioT's kill-filter decoder.
type Fig3cSeries struct {
	Regimes []string
	SIC     []float64
	GalioT  []float64
	// GainPct[i] = 100 * (GalioT-SIC)/SIC, +Inf-safe
	GainPct []float64
}

// collisionEpisodes enumerates the collision mixes exercised per regime.
// The emphasis mirrors the paper's stress case — transmissions that overlap
// completely in both time and frequency (LoRa and XBee share the capture
// center; Z-Wave joins from its EU-band-plan offset in the three-way
// mixes) — with comparable received powers, the regime where power-ordered
// SIC breaks down. Two spectrally separated pairs are kept as controls.
func collisionEpisodes(techs []phy.Technology, regimeMin, regimeMax float64, gen *rng.Rand) [][]sim.CollisionSpec {
	// One base SNR per episode drawn from the regime; participants land
	// within ±1.5 dB of it — the "comparable signal strengths" condition
	// under which the paper says SIC breaks down (Sec. 5, citing [28]).
	epBase := regimeMin + gen.Float64()*(regimeMax-regimeMin)
	draw := func() float64 { return epBase + (2*gen.Float64()-1)*1.5 }
	pl := func() int { return 8 + gen.Intn(8) }
	lora, xbee, zwave := techs[0], techs[1], techs[2]
	threeWay := func(f1, f2 float64) []sim.CollisionSpec {
		return []sim.CollisionSpec{
			{Tech: lora, SNRdB: draw(), PayloadLen: pl()},
			{Tech: xbee, SNRdB: draw(), PayloadLen: pl(), OffsetFrac: f1},
			{Tech: zwave, SNRdB: draw(), PayloadLen: pl(), OffsetFrac: f2},
		}
	}
	return [][]sim.CollisionSpec{
		// full time+frequency overlap: LoRa × XBee, co-channel
		{
			{Tech: lora, SNRdB: draw(), PayloadLen: pl()},
			{Tech: xbee, SNRdB: draw(), PayloadLen: pl(), OffsetFrac: 0.1 * gen.Float64()},
		},
		{
			{Tech: lora, SNRdB: draw(), PayloadLen: pl()},
			{Tech: xbee, SNRdB: draw(), PayloadLen: pl(), OffsetFrac: 0.2 + 0.2*gen.Float64()},
		},
		// three-way mixes (two draws)
		threeWay(0.05, 0.15),
		threeWay(0.1*gen.Float64(), 0.3*gen.Float64()),
		// spectrally separated controls
		{
			{Tech: xbee, SNRdB: draw(), PayloadLen: pl()},
			{Tech: zwave, SNRdB: draw(), PayloadLen: pl(), OffsetFrac: 0.1 * gen.Float64()},
		},
		{
			{Tech: lora, SNRdB: draw(), PayloadLen: pl()},
			{Tech: zwave, SNRdB: draw(), PayloadLen: pl(), OffsetFrac: 0.1 * gen.Float64()},
		},
	}
}

// RunFig3c executes the collision-decoding sweep of Fig. 3(c): collision
// episodes across three SNR regimes, decoded by the strict-SIC baseline and
// by GalioT's CloudDecode (SIC + kill filters), reporting recovered-payload
// throughput.
func RunFig3c(opt Options) (Fig3cSeries, error) {
	fs := opt.fs()
	techs := prototypeTechs()
	rounds := opt.trials(1, 4)
	series := Fig3cSeries{}
	base := rng.New(opt.Seed ^ 0x3c)
	for ri, regime := range fig3cRegimes {
		var sicBits, cloudBits float64
		var sicSecs, cloudSecs float64
		for round := 0; round < rounds; round++ {
			gen := base.Split(uint64(ri*1000 + round))
			episodes := collisionEpisodes(techs, regime.min, regime.max, gen)
			for ei, specs := range episodes {
				scen, err := sim.GenCollision(specs, fs, 4000, gen.Split(uint64(ei)))
				if err != nil {
					return Fig3cSeries{}, err
				}
				sicOut := sim.EvaluateDecode(scen, cancel.NewSIC(techs, fs))
				cloudOut := sim.EvaluateDecode(scen, cancel.NewDecoder(techs, fs))
				sicBits += float64(sicOut.Bits)
				cloudBits += float64(cloudOut.Bits)
				sicSecs += sicOut.Seconds
				cloudSecs += cloudOut.Seconds
			}
		}
		sicT, cloudT := 0.0, 0.0
		if sicSecs > 0 {
			sicT = sicBits / sicSecs
		}
		if cloudSecs > 0 {
			cloudT = cloudBits / cloudSecs
		}
		gain := 0.0
		if sicT > 0 {
			gain = 100 * (cloudT - sicT) / sicT
		} else if cloudT > 0 {
			gain = -1 // sentinel for infinite gain
		}
		series.Regimes = append(series.Regimes, regime.label)
		series.SIC = append(series.SIC, sicT)
		series.GalioT = append(series.GalioT, cloudT)
		series.GainPct = append(series.GainPct, gain)
	}
	return series, nil
}

func gainString(g float64) string {
	if g < 0 {
		return "inf (SIC decoded nothing)"
	}
	return fmt.Sprintf("+%.1f%%", g)
}

// Fig3c renders the Fig. 3(c) table.
func Fig3c(opt Options) (Table, error) {
	s, err := RunFig3c(opt)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "fig3c",
		Title:  "Collision-decoding throughput vs SNR regime (paper Fig. 3c)",
		Header: []string{"SNR regime", "SIC (bps)", "GalioT kill filters (bps)", "gain"},
		Notes: []string{
			"paper shape: kill filters beat plain SIC in every regime; gains are largest at high SNR",
			"(+818.36% high, +532.4% low in the paper's testbed).",
		},
	}
	for i := range s.Regimes {
		t.Rows = append(t.Rows, []string{s.Regimes[i], f1(s.SIC[i]), f1(s.GalioT[i]), gainString(s.GainPct[i])})
	}
	return t, nil
}

// HeadlineThroughput reproduces the paper's headline collision-decoding
// claims: the average throughput multiple of GalioT over SIC, and the
// per-regime gains.
func HeadlineThroughput(opt Options) (Table, error) {
	s, err := RunFig3c(opt)
	if err != nil {
		return Table{}, err
	}
	var sicSum, cloudSum float64
	for i := range s.Regimes {
		sicSum += s.SIC[i]
		cloudSum += s.GalioT[i]
	}
	mult := "inf"
	if sicSum > 0 {
		mult = fmt.Sprintf("%.2fx", cloudSum/sicSum)
	}
	rows := [][]string{
		{"average throughput vs SIC", "7.46x (745.96%)", mult},
	}
	for i, label := range s.Regimes {
		paper := ""
		switch label {
		case "Low":
			paper = "+532.4%"
		case "High":
			paper = "+818.36%"
		}
		rows = append(rows, []string{fmt.Sprintf("gain in %s SNR", label), paper, gainString(s.GainPct[i])})
	}
	return Table{
		ID:     "headline-throughput",
		Title:  "Headline collision-decoding claims (paper Sec. 1 / Sec. 7)",
		Header: []string{"metric", "paper", "measured"},
		Rows:   rows,
		Notes:  []string{"strict power-ordered SIC baseline per the paper's reference [28] (Weber et al.)."},
	}, nil
}
