// Package experiments contains one driver per table and figure of the
// paper's evaluation (Sec. 7), plus the ablations called out in DESIGN.md.
// Each driver renders the same rows/series the paper reports, so the
// harness output can be placed side by side with the publication. Absolute
// numbers come from the simulated substrate (see DESIGN.md for the
// substitution table); the shape — who wins, by what factor, where the
// crossovers fall — is the reproduction target.
package experiments

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Options controls an experiment run.
type Options struct {
	Seed  uint64  // base RNG seed; every run with the same seed is identical
	Quick bool    // reduce trial counts for smoke tests
	FS    float64 // sample rate (default 1e6, the paper's RTL-SDR setting)
}

func (o Options) fs() float64 {
	if o.FS <= 0 {
		return 1e6
	}
	return o.FS
}

func (o Options) trials(quick, full int) int {
	if o.Quick {
		return quick
	}
	return full
}

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text. The table is formatted into
// memory first so the sink sees a single write and the first failure is
// returned rather than silently dropped mid-table.
func (t Table) Render(w io.Writer) error {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(&buf, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&buf, "  note: %s\n", n)
	}
	fmt.Fprintln(&buf)
	_, err := w.Write(buf.Bytes())
	return err
}

// Runner is an experiment entry point.
type Runner func(Options) (Table, error)

var registry = map[string]Runner{
	"table1":              Table1Runner,
	"fig3b":               Fig3b,
	"fig3c":               Fig3c,
	"headline-detect":     HeadlineDetect,
	"headline-throughput": HeadlineThroughput,
	"scaling":             Scaling,
	"cost":                Cost,
	"edge-policy":         EdgePolicy,
	"backhaul":            Backhaul,
	"farm":                FarmRunner,
	"battery":             Battery,
	"ablation-frontend":   AblationFrontend,
	"ablation-preamble":   AblationPreamble,
	"ablation-kill":       AblationKill,
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	//lint:ignore nondeterminism keys are sorted before returning
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id and renders it to w.
func Run(id string, opt Options, w io.Writer) error {
	r, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	table, err := r(opt)
	if err != nil {
		return err
	}
	return table.Render(w)
}

// RunAll executes every experiment in id order.
func RunAll(opt Options, w io.Writer) error {
	for _, id := range IDs() {
		if err := Run(id, opt, w); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
