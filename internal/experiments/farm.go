package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/backhaul"
	"repro/internal/cancel"
	"repro/internal/cloud"
	"repro/internal/farm"
	"repro/internal/rng"
	"repro/internal/sim"
)

// FarmRunner exercises the cloud's decode farm (DESIGN.md §9) on a fixed
// batch of collision segments. The first rows sweep the worker count with
// blocking admission: the recovered-frame count must be identical in every
// row, demonstrating that the farm changes concurrency, never results (the
// run errors out if the counts diverge). The last row overloads a
// one-worker farm through non-blocking admission: the queue bound turns
// the excess into explicit rejects, and the queue-wait quantiles — in
// samples of newer work admitted while a job waited, the repository's
// deterministic stand-in for wall-clock latency — are reported for the
// admitted jobs. Wall-clock speedup lives in BenchmarkFarmThroughput,
// which is allowed to read the clock.
func FarmRunner(opt Options) (Table, error) {
	fs := opt.fs()
	techs := prototypeTechs()
	episodes := opt.trials(3, 8)
	base := rng.New(opt.Seed ^ 0xFA23)

	segs := make([]backhaul.Segment, 0, episodes)
	var start int64
	for i := 0; i < episodes; i++ {
		gen := base.Split(uint64(i))
		specs := []sim.CollisionSpec{
			{Tech: techs[i%len(techs)], SNRdB: 12, PayloadLen: 6 + gen.Intn(4)},
			{Tech: techs[(i+1)%len(techs)], SNRdB: 12, PayloadLen: 6 + gen.Intn(4), OffsetFrac: 0.2 + 0.2*gen.Float64()},
		}
		scen, err := sim.GenCollision(specs, fs, 3000, gen.Split(9))
		if err != nil {
			return Table{}, err
		}
		segs = append(segs, backhaul.Segment{Start: start, SampleRate: fs, Samples: scen.Capture})
		start += int64(len(scen.Capture))
	}

	t := Table{
		ID:     "farm",
		Title:  "Decode-farm scheduling (worker sweep + admission control)",
		Header: []string{"workers", "queue", "offered", "admitted", "rejected", "frames", "p50 wait", "p99 wait"},
		Notes: []string{
			"frames are identical across worker counts: the farm parallelizes, it does not alter decoding",
			"queue waits are on the sample clock (samples admitted while the job sat queued);",
			"they depend on goroutine scheduling in the sweep rows and are shown only for the",
			"deterministic overload row. wall-clock throughput: go test -bench=FarmThroughput",
		},
	}

	// Worker sweep: blocking admission, queue sized to the batch.
	firstFrames := -1
	for _, w := range []int{1, 2, 4, 8} {
		svc := cloud.NewService(techs)
		f := svc.StartFarm(farm.Config{Workers: w, QueueDepth: len(segs)})
		var wg sync.WaitGroup
		for _, seg := range segs {
			wg.Add(1)
			if err := f.Submit(context.Background(), seg, func(farm.Result) { wg.Done() }); err != nil {
				return Table{}, err
			}
		}
		wg.Wait()
		f.Close()
		frames, _, st := svc.Totals()
		if firstFrames == -1 {
			firstFrames = frames
		} else if frames != firstFrames {
			return Table{}, fmt.Errorf("farm: %d workers recovered %d frames, 1 worker recovered %d — results must not depend on concurrency", w, frames, firstFrames)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w), fmt.Sprintf("%d", st.QueueDepth), fmt.Sprintf("%d", len(segs)),
			fmt.Sprintf("%d", st.Admitted), fmt.Sprintf("%d", st.Rejected), fmt.Sprintf("%d", frames),
			"-", "-",
		})
	}

	// Overload row: one worker pinned on the first segment while the rest
	// of the batch arrives through non-blocking admission. With the worker
	// provably busy the interleaving is fixed, so admitted/rejected counts
	// and the sample-clock waits are deterministic.
	const overloadQueue = 1
	pool := &farm.DecoderPool{New: func(fs float64) *cancel.Decoder {
		return cancel.NewDecoder(techs, fs)
	}}
	gate := make(chan struct{})
	dispatched := make(chan struct{}, 1)
	var first sync.Once
	frames := 0
	var mu sync.Mutex
	decode := func(ctx context.Context, seg backhaul.Segment) (backhaul.FramesReport, cancel.Stats, error) {
		pinned := false
		first.Do(func() { pinned = true })
		if pinned {
			dispatched <- struct{}{}
			<-gate
		}
		dec := pool.Get(seg.SampleRate)
		decoded, stats := dec.Decode(seg.Samples)
		pool.Put(dec)
		return backhaul.FramesReport{SegmentStart: seg.Start, Frames: make([]backhaul.FrameReport, len(decoded))}, stats, nil
	}
	f := farm.New(farm.Config{Workers: 1, QueueDepth: overloadQueue, Decode: decode})
	var wg sync.WaitGroup
	count := func(res farm.Result) {
		mu.Lock()
		frames += len(res.Report.Frames)
		mu.Unlock()
		wg.Done()
	}
	wg.Add(1)
	if err := f.Submit(context.Background(), segs[0], count); err != nil {
		return Table{}, err
	}
	<-dispatched // the worker is now pinned; the queue is empty
	rejected := 0
	for _, seg := range segs[1:] {
		wg.Add(1)
		err := f.TrySubmit(context.Background(), seg, count)
		switch err {
		case nil:
		case farm.ErrBusy:
			rejected++
			wg.Done()
		default:
			return Table{}, err
		}
	}
	close(gate)
	wg.Wait()
	f.Close()
	st := f.Snapshot()
	t.Rows = append(t.Rows, []string{
		"1", fmt.Sprintf("%d", overloadQueue), fmt.Sprintf("%d", len(segs)),
		fmt.Sprintf("%d", st.Admitted), fmt.Sprintf("%d", st.Rejected), fmt.Sprintf("%d", frames),
		fmt.Sprintf("%d", st.P50QueueWait), fmt.Sprintf("%d", st.P99QueueWait),
	})
	if int(st.Rejected) != rejected {
		return Table{}, fmt.Errorf("farm: snapshot counts %d rejects, submitter saw %d", st.Rejected, rejected)
	}
	return t, nil
}
