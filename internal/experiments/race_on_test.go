//go:build race

package experiments

// raceEnabled gates the full experiment sweep: the race detector's ~10-20x
// slowdown pushes RunAll past any reasonable test timeout, and every
// experiment it drives is already race-instrumented by its own test.
const raceEnabled = true
