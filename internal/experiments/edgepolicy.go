package experiments

import (
	"fmt"
	"time"

	"repro/internal/edge"
	"repro/internal/rng"
	"repro/internal/sim"
)

// EdgePolicy exercises the Sec. 4/6 computation-placement question
// ("Compute, Compress or Ship?") over a simulated deployment: segments
// from duty-cycled traffic are placed by three policies — cloud-only,
// single edge node, and the SLA-aware scheduler over two edge nodes plus
// the cloud — and scored on SLA compliance and how much work the cloud
// (and thus the backhaul) had to carry.
func EdgePolicy(opt Options) (Table, error) {
	fs := opt.fs()
	techs := prototypeTechs()
	gen := rng.New(opt.Seed ^ 0xED6E)
	scen, err := sim.GenTraffic(sim.TrafficConfig{
		Techs:      techs,
		SampleRate: fs,
		Duration:   1 << 20,
		MeanGap:    0.05,
		SNRMin:     8,
		SNRMax:     15,
	}, gen)
	if err != nil {
		return Table{}, err
	}
	// One "segment" per ground-truth packet (2× its airtime, as the
	// gateway ships), with its technology as the placement candidate;
	// collided packets candidate-list every overlapping technology.
	type segment struct {
		samples    int
		candidates []string
	}
	var segments []segment
	for i, p := range scen.Packets {
		cands := []string{p.Tech}
		if scen.Collides(i) {
			for j, q := range scen.Packets {
				if j != i && p.Offset < q.Offset+q.Length && q.Offset < p.Offset+p.Length && q.Tech != p.Tech {
					cands = append(cands, q.Tech)
				}
			}
		}
		segments = append(segments, segment{samples: 2 * p.Length, candidates: cands})
	}

	// Z-Wave commands are latency-sensitive (a wall switch must actuate);
	// LoRa telemetry is not.
	slas := map[string]time.Duration{
		"zwave": 150 * time.Millisecond,
		"xbee":  300 * time.Millisecond,
	}
	mkNodes := func() (edges []*edge.Node, cloud *edge.Node) {
		cloud = &edge.Node{Name: "cloud", RTT: 40 * time.Millisecond, ComputeRate: 2e8, Cloud: true}
		edges = []*edge.Node{
			{Name: "pi-1", RTT: 2 * time.Millisecond, ComputeRate: 4e6},
			{Name: "pi-2", RTT: 2 * time.Millisecond, ComputeRate: 4e6},
		}
		return
	}

	type policy struct {
		name string
		mk   func() *edge.Scheduler
	}
	policies := []policy{
		{"cloud only", func() *edge.Scheduler {
			_, cloud := mkNodes()
			s := edge.NewScheduler(cloud)
			s.SLAs = slas
			return s
		}},
		{"one edge node + cloud", func() *edge.Scheduler {
			edges, cloud := mkNodes()
			s := edge.NewScheduler(cloud, edges[0])
			s.SLAs = slas
			return s
		}},
		{"two edge nodes + cloud (SLA-aware)", func() *edge.Scheduler {
			edges, cloud := mkNodes()
			s := edge.NewScheduler(cloud, edges...)
			s.SLAs = slas
			return s
		}},
	}

	t := Table{
		ID:     "edge-policy",
		Title:  "Edge vs cloud placement with SLAs and load balancing (Sec. 4/6 future work)",
		Header: []string{"policy", "segments", "met SLA", "placed at edge", "cloud samples"},
		Notes: []string{
			"SLAs: zwave 150 ms, xbee 300 ms; edge nodes are Raspberry-Pi-class (4 MS/s decode),",
			"the cloud is 50x faster but 40 ms away; collisions always go to the cloud (Sec. 4).",
		},
	}
	for _, pol := range policies {
		s := pol.mk()
		met, atEdge, cloudSamples := 0, 0, 0
		for _, seg := range segments {
			p := s.Place(seg.samples, seg.candidates)
			if p.Node == nil {
				continue
			}
			if p.MeetsSLA {
				met++
			}
			if p.Node.Cloud {
				cloudSamples += seg.samples
			} else {
				atEdge++
			}
			// work completes before the next placement (traffic is sparse
			// relative to compute) except a residual that models queueing
			s.Complete(p.Node, seg.samples*9/10)
		}
		t.Rows = append(t.Rows, []string{
			pol.name,
			fmt.Sprintf("%d", len(segments)),
			pct(float64(met) / float64(max(len(segments), 1))),
			fmt.Sprintf("%d", atEdge),
			fmt.Sprintf("%d", cloudSamples),
		})
	}
	return t, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
