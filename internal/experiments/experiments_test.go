package experiments

import (
	"bytes"
	"strings"
	"testing"
)

var quick = Options{Seed: 1, Quick: true}

func TestTable1(t *testing.T) {
	tab, err := Table1Runner(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 10 {
		t.Fatalf("Table 1 has %d rows, want >= 10 (paper lists 10 technologies)", len(tab.Rows))
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	for _, want := range []string{"CSS", "GFSK", "O-QPSK", "OFDMA", "nb-iot"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("rendered table missing %q:\n%s", want, buf.String())
		}
	}
}

func TestFig3bShape(t *testing.T) {
	s, err := RunFig3b(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Buckets) != 5 {
		t.Fatalf("buckets %v", s.Buckets)
	}
	// Paper shape assertions:
	// 1. at high SNR (last bucket) all detectors are good
	if s.Universal[4] < 0.8 || s.Matched[4] < 0.8 || s.Energy[4] < 0.6 {
		t.Fatalf("high-SNR detection too low: E=%v U=%v M=%v", s.Energy[4], s.Universal[4], s.Matched[4])
	}
	// 2. energy collapses below 0 dB while universal keeps detecting
	if s.Energy[1] > 0.3 {
		t.Fatalf("energy detector should collapse at [-20,-10): %v", s.Energy[1])
	}
	if s.Universal[1] < s.Energy[1]+0.2 {
		t.Fatalf("universal (%v) should clearly beat energy (%v) below noise", s.Universal[1], s.Energy[1])
	}
	// 3. universal tracks matched within a gap
	for i := range s.Buckets {
		if s.Universal[i] > s.Matched[i]+0.15 {
			t.Fatalf("universal above matched at %s: %v vs %v", s.Buckets[i], s.Universal[i], s.Matched[i])
		}
	}
}

func TestFig3cShape(t *testing.T) {
	s, err := RunFig3c(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Regimes) != 3 {
		t.Fatalf("regimes %v", s.Regimes)
	}
	// Kill filters must beat SIC in aggregate.
	var sicSum, cloudSum float64
	for i := range s.Regimes {
		sicSum += s.SIC[i]
		cloudSum += s.GalioT[i]
	}
	if cloudSum <= sicSum {
		t.Fatalf("GalioT throughput %v should exceed SIC %v", cloudSum, sicSum)
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	if raceEnabled {
		t.Skip("sweep exceeds test timeouts under the race detector; components are raced individually")
	}
	var buf bytes.Buffer
	if err := RunAll(quick, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range IDs() {
		if !strings.Contains(out, "== "+id) {
			t.Fatalf("output missing experiment %s", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", quick, &buf); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestCostAndAblationPreamble(t *testing.T) {
	c, err := Cost(quick)
	if err != nil || len(c.Rows) < 4 {
		t.Fatalf("cost: %v %d", err, len(c.Rows))
	}
	a, err := AblationPreamble(quick)
	if err != nil {
		t.Fatal(err)
	}
	// last row: 4 techs but fewer universal groups than matched templates
	last := a.Rows[len(a.Rows)-1]
	if last[0] != "4" || last[1] != "1" || last[3] == last[2] {
		t.Fatalf("ablation rows: %+v", a.Rows)
	}
}

func TestBatteryShowsSavings(t *testing.T) {
	tab, err := Battery(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// The savings note must be present and positive.
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "saved by kill filters") {
			found = true
			if strings.Contains(n, "-") {
				t.Fatalf("negative savings: %s", n)
			}
		}
	}
	if !found {
		t.Fatal("savings note missing")
	}
}

func TestAblationKillHasPerFilterRows(t *testing.T) {
	tab, err := AblationKill(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("expected 4 ablation rows, got %d", len(tab.Rows))
	}
}

func TestEdgePolicyAndScaling(t *testing.T) {
	ep, err := EdgePolicy(quick)
	if err != nil || len(ep.Rows) != 3 {
		t.Fatalf("edge policy: %v rows %d", err, len(ep.Rows))
	}
	if testing.Short() {
		return
	}
	sc, err := Scaling(quick)
	if err != nil || len(sc.Rows) != 4 {
		t.Fatalf("scaling: %v rows %d", err, len(sc.Rows))
	}
}
