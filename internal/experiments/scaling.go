package experiments

import (
	"fmt"

	"repro/internal/cancel"
	"repro/internal/phy"
	"repro/internal/phy/dbpsk"
	"repro/internal/phy/oqpsk"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Scaling probes the paper's second future-work item: "Test the scaling
// limits of collision-decoding". Collisions of increasing order (2-way to
// 5-way, drawing from all five 1 MHz-capable technologies) are decoded by
// the strict-SIC baseline and by GalioT, at comparable received powers in
// the medium-SNR regime. Recovery degrades with collision order — more
// residual energy survives each imperfect cancellation — and the gap
// between the two decoders widens, since SIC's first-decode failure
// becomes ever more likely as the airspace thickens.
func Scaling(opt Options) (Table, error) {
	fs := opt.fs()
	techs := []phy.Technology{}
	techs = append(techs, prototypeTechs()...)
	techs = append(techs, oqpsk.Default(), dbpsk.Default())
	rounds := opt.trials(2, 6)
	base := rng.New(opt.Seed ^ 0x5CA1)

	t := Table{
		ID:     "scaling",
		Title:  "Collision-order scaling (paper future work 2: scaling limits of collision decoding)",
		Header: []string{"collision order", "SIC recovery", "GalioT recovery"},
		Notes: []string{
			"episodes at 10-14 dB with powers within ±1.5 dB; participants drawn in order",
			"lora, xbee, zwave, oqpsk, dbpsk.",
		},
	}
	for order := 2; order <= len(techs); order++ {
		var sicRec, cloudRec, total int
		for round := 0; round < rounds; round++ {
			gen := base.Split(uint64(order*100 + round))
			epBase := 10 + 4*gen.Float64()
			specs := make([]sim.CollisionSpec, 0, order)
			for i := 0; i < order; i++ {
				specs = append(specs, sim.CollisionSpec{
					Tech:       techs[i],
					SNRdB:      epBase + (2*gen.Float64()-1)*1.5,
					PayloadLen: 6 + gen.Intn(6),
					OffsetFrac: 0.3 * gen.Float64() * float64(i) / float64(order),
				})
			}
			scen, err := sim.GenCollision(specs, fs, 4000, gen.Split(7))
			if err != nil {
				return Table{}, err
			}
			sicOut := sim.EvaluateDecode(scen, cancel.NewSIC(techs, fs))
			cloudOut := sim.EvaluateDecode(scen, cancel.NewDecoder(techs, fs))
			sicRec += sicOut.Recovered
			cloudRec += cloudOut.Recovered
			total += len(scen.Packets)
		}
		ratio := func(r int) string {
			if total == 0 {
				return "n/a"
			}
			return fmt.Sprintf("%s (%d/%d)", pct(float64(r)/float64(total)), r, total)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d-way", order), ratio(sicRec), ratio(cloudRec)})
	}
	return t, nil
}
