package experiments

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/phy"
	"repro/internal/phy/lora"
	"repro/internal/phy/xbee"
	"repro/internal/phy/zwave"
	"repro/internal/rng"
	"repro/internal/sim"
)

// prototypeTechs returns the paper's three prototype technologies.
func prototypeTechs() []phy.Technology {
	return []phy.Technology{lora.Default(), xbee.Default(), zwave.Default()}
}

// snrBucket is one x-axis group of Fig. 3(b).
type snrBucket struct {
	label    string
	min, max float64
}

var fig3bBuckets = []snrBucket{
	{"-30dB to -20dB", -30, -20},
	{"-20dB to -10dB", -20, -10},
	{"-10dB to 0dB", -10, 0},
	{"0dB to 10dB", 0, 10},
	{"10dB to 20dB", 10, 20},
}

// Fig3bSeries holds the per-detector detection ratios per SNR bucket, for
// programmatic consumers (tests, benches, EXPERIMENTS.md).
type Fig3bSeries struct {
	Buckets   []string
	Energy    []float64
	Universal []float64
	Matched   []float64
}

// RunFig3b executes the packet-detection sweep of Fig. 3(b): duty-cycled
// traffic of the three prototype technologies (including collisions) under
// AWGN, with per-packet SNR drawn from each bucket, scored for the energy
// baseline, the universal-preamble detector and the per-technology matched
// bank ("optimal").
func RunFig3b(opt Options) (Fig3bSeries, error) {
	fs := opt.fs()
	techs := prototypeTechs()
	maxPacket := sim.MaxPacketSamples(techs, fs)
	uni, err := detect.NewUniversal(techs, fs, 0.055)
	if err != nil {
		return Fig3bSeries{}, err
	}
	bank := detect.NewMatchedBank(techs, fs, 0.055)
	energy := detect.NewEnergy(1024, 6)

	trials := opt.trials(2, 6)
	series := Fig3bSeries{}
	base := rng.New(opt.Seed ^ 0x3b)
	for bi, bucket := range fig3bBuckets {
		var detE, detU, detM, total int
		for trial := 0; trial < trials; trial++ {
			gen := base.Split(uint64(bi*100 + trial))
			scen, err := sim.GenTraffic(sim.TrafficConfig{
				Techs:      techs,
				SampleRate: fs,
				Duration:   1 << 19,
				MeanGap:    0.05,
				SNRMin:     bucket.min,
				SNRMax:     bucket.max,
				PayloadMin: 4,
				PayloadMax: 16,
			}, gen)
			if err != nil {
				return Fig3bSeries{}, err
			}
			total += len(scen.Packets)
			detE += sim.EvaluateDetection(scen, energy, maxPacket).Detected
			detU += sim.EvaluateDetection(scen, uni, maxPacket).Detected
			detM += sim.EvaluateDetection(scen, bank, maxPacket).Detected
		}
		ratio := func(d int) float64 {
			if total == 0 {
				return 0
			}
			return float64(d) / float64(total)
		}
		series.Buckets = append(series.Buckets, bucket.label)
		series.Energy = append(series.Energy, ratio(detE))
		series.Universal = append(series.Universal, ratio(detU))
		series.Matched = append(series.Matched, ratio(detM))
	}
	return series, nil
}

// Fig3b renders the Fig. 3(b) table.
func Fig3b(opt Options) (Table, error) {
	s, err := RunFig3b(opt)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "fig3b",
		Title:  "Ratio of packets detected vs SNR (paper Fig. 3b)",
		Header: []string{"SNR range", "energy", "universal preamble", "optimal (matched bank)"},
		Notes: []string{
			"paper shape: energy collapses below 0 dB (84% -> 0.04%); universal preamble tracks the",
			"matched bank with a small gap and keeps detecting at -30 dB (paper reports 62%).",
		},
	}
	for i := range s.Buckets {
		t.Rows = append(t.Rows, []string{s.Buckets[i], pct(s.Energy[i]), pct(s.Universal[i]), pct(s.Matched[i])})
	}
	return t, nil
}

// HeadlineDetect reproduces the paper's headline detection claims: the
// improvement of the universal preamble over energy detection below
// -10 dB, and the detection level retained in the lowest bucket.
func HeadlineDetect(opt Options) (Table, error) {
	s, err := RunFig3b(opt)
	if err != nil {
		return Table{}, err
	}
	// buckets 0 and 1 are below -10 dB
	var eSum, uSum float64
	for i := 0; i < 2 && i < len(s.Buckets); i++ {
		eSum += s.Energy[i]
		uSum += s.Universal[i]
	}
	gain := "inf"
	if eSum > 0 {
		gain = fmt.Sprintf("%.1f%%", 100*(uSum-eSum)/eSum)
	}
	t := Table{
		ID:     "headline-detect",
		Title:  "Headline detection claims (paper Sec. 1 / Sec. 7)",
		Header: []string{"metric", "paper", "measured"},
		Rows: [][]string{
			{"universal vs energy below -10 dB", "+50.89% packets", fmt.Sprintf("universal %s vs energy %s (gain %s)", pct(uSum/2), pct(eSum/2), gain)},
			{"universal detection in lowest bucket", "62% at -30 dB", pct(s.Universal[0])},
			{"energy detection above 0 dB", "84% total", pct((s.Energy[3] + s.Energy[4]) / 2)},
			{"energy detection below 0 dB", "down to 0.04%", pct((s.Energy[0] + s.Energy[1] + s.Energy[2]) / 3)},
		},
		Notes: []string{"paper's absolute values come from RTL-SDR captures; shape comparison is the target."},
	}
	return t, nil
}
