package experiments

import (
	"fmt"

	"repro/internal/backhaul"
	"repro/internal/cancel"
	"repro/internal/detect"
	"repro/internal/frontend"
	"repro/internal/gateway"
	"repro/internal/phy"
	"repro/internal/phy/ble"
	"repro/internal/phy/dbpsk"
	"repro/internal/phy/ofdm"
	"repro/internal/phy/oqpsk"
	"repro/internal/phy/xbee"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Table1Runner regenerates the paper's Table 1: common IoT technologies
// with their modulation and preamble information, from the live registry
// (implemented technologies) plus the cataloged extras.
func Table1Runner(Options) (Table, error) {
	t := Table{
		ID:     "table1",
		Title:  "Common IoT technologies with modulation and preamble information (paper Table 1)",
		Header: []string{"Technology", "Modulation", "Sync", "Preamble"},
		Notes:  []string{"rows marked * are implemented PHYs in this repository; others are cataloged as in the paper."},
	}
	techs := append(prototypeTechs(), oqpsk.Default(), dbpsk.Default(), ofdm.Default(), ble.Default())
	seen := map[string]bool{}
	for _, tech := range techs {
		info := tech.Info()
		seen[info.Name] = true
		t.Rows = append(t.Rows, []string{info.Name + " *", info.Modulation, info.Sync, info.Preamble})
	}
	for _, info := range phy.Extras() {
		if !seen[info.Name] {
			t.Rows = append(t.Rows, []string{info.Name, info.Modulation, info.Sync, info.Preamble})
		}
	}
	return t, nil
}

// Cost reproduces the paper's cost claim: the $60 RTL-SDR + Raspberry Pi
// gateway versus commercial multi-technology gateways. The bill of
// materials is static data from the paper era (2018 street prices).
func Cost(Options) (Table, error) {
	return Table{
		ID:     "cost",
		Title:  "Gateway bill of materials vs commercial gateways (paper Sec. 1/7)",
		Header: []string{"item", "price (USD)"},
		Rows: [][]string{
			{"RTL-SDR dongle (R820T2)", "25"},
			{"Raspberry Pi 3 Model B", "35"},
			{"GalioT prototype total", "60"},
			{"", ""},
			{"MultiTech MultiConnect Conduit", "~500"},
			{"Samsung SmartThings-class hub + per-radio NICs", "~200-600"},
		},
		Notes: []string{"paper: 'an order-of-magnitude cheaper compared to today's commercial gateways'."},
	}, nil
}

// Backhaul quantifies the compute-compress-or-ship tradeoff of Sec. 4/6:
// raw I/Q streaming cost versus detection-gated shipping versus the
// compressed wire format, for one second of duty-cycled traffic.
func Backhaul(opt Options) (Table, error) {
	fs := opt.fs()
	techs := prototypeTechs()
	gen := rng.New(opt.Seed ^ 0xBA)
	scen, err := sim.GenTraffic(sim.TrafficConfig{
		Techs:      techs,
		SampleRate: fs,
		Duration:   1 << 20,
		MeanGap:    0.1,
		SNRMin:     8,
		SNRMax:     15,
	}, gen)
	if err != nil {
		return Table{}, err
	}
	gw, err := gateway.New(gateway.Config{Techs: techs, Frontend: frontend.Ideal(fs)})
	if err != nil {
		return Table{}, err
	}
	res := gw.Process(scen.Capture)
	flush := gw.Flush()
	res.Shipped = append(res.Shipped, flush.Shipped...)
	shippedSamples := 0
	wireBytes := 0
	for _, seg := range res.Shipped {
		shippedSamples += len(seg.Samples)
		payload, err := backhaul.DefaultCodec.Encode(seg)
		if err != nil {
			return Table{}, err
		}
		wireBytes += len(payload) + 5 // message framing overhead
	}
	rawBytes := 2 * len(scen.Capture) // cu8 stream
	segBytes := 2 * shippedSamples
	secs := float64(len(scen.Capture)) / fs
	row := func(name string, bytes int) []string {
		return []string{name, fmt.Sprintf("%d", bytes), fmt.Sprintf("%.2f Mbps", 8*float64(bytes)/secs/1e6), pct(float64(bytes) / float64(rawBytes))}
	}
	return Table{
		ID:     "backhaul",
		Title:  "Backhaul cost: raw streaming vs detection-gated shipping vs compressed (Sec. 4/6)",
		Header: []string{"strategy", "bytes/s", "rate", "vs raw"},
		Rows: [][]string{
			row("stream raw I/Q (cu8)", rawBytes),
			row("ship detected segments (cu8)", segBytes),
			row("ship detected + DEFLATE", wireBytes),
		},
		Notes: []string{fmt.Sprintf("%d packets on the air, %d segments shipped", len(scen.Packets), len(res.Shipped))},
	}, nil
}

// AblationPreamble measures how the universal preamble scales with the
// number of coalesced technologies versus the matched-filter bank: the
// correlation work stays constant for the universal template while the
// bank grows linearly (the paper's complexity argument), at a measured
// detection-accuracy gap.
func AblationPreamble(opt Options) (Table, error) {
	fs := opt.fs()
	all := prototypeTechs()
	// grow the set: 3 prototypes plus a BLE-like fourth GFSK PHY that
	// coalesces with xbee (same modulation parameters, shorter preamble)
	bleLike, err := xbee.New(xbee.Config{PreambleLen: 2})
	if err != nil {
		return Table{}, err
	}
	sets := [][]phy.Technology{
		all[:1], all[:2], all[:3],
		append(append([]phy.Technology{}, all...), bleLike),
	}
	t := Table{
		ID:     "ablation-preamble",
		Title:  "Universal preamble scaling vs technology count (DESIGN ablation 1)",
		Header: []string{"#techs", "universal templates", "matched templates", "universal groups"},
		Notes:  []string{"detection work ∝ number of templates correlated; the universal preamble stays at 1."},
	}
	for _, set := range sets {
		u, err := detect.BuildUniversal(set, fs)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", len(set)),
			"1",
			fmt.Sprintf("%d", len(set)),
			fmt.Sprintf("%d", len(u.Groups)),
		})
	}
	return t, nil
}

// AblationKill disables each kill filter in turn on a three-way collision
// workload, showing the contribution of every filter class (DESIGN
// ablation 3).
func AblationKill(opt Options) (Table, error) {
	fs := opt.fs()
	techs := prototypeTechs()
	rounds := opt.trials(2, 6)
	base := rng.New(opt.Seed ^ 0xAB)

	withDisabled := func(classes ...phy.Class) func() *cancel.Decoder {
		return func() *cancel.Decoder {
			d := cancel.NewDecoder(techs, fs)
			d.DisabledFilters = map[phy.Class]bool{}
			for _, c := range classes {
				d.DisabledFilters[c] = true
			}
			return d
		}
	}
	variants := []struct {
		name string
		mk   func() *cancel.Decoder
	}{
		{"SIC only (no filters)", func() *cancel.Decoder { return cancel.NewSIC(techs, fs) }},
		{"SIC + all kill filters", func() *cancel.Decoder { return cancel.NewDecoder(techs, fs) }},
		{"without KILL-CSS", withDisabled(phy.ClassCSS)},
		{"without KILL-FREQUENCY", withDisabled(phy.ClassFSK, phy.ClassPSK)},
	}
	t := Table{
		ID:     "ablation-kill",
		Title:  "Kill-filter ablation on 3-way collisions (DESIGN ablation 3)",
		Header: []string{"decoder", "frames recovered", "of total", "recovery"},
		Notes: []string{
			"at moderate SNR the filter set is redundant for 3-way mixes: once any one interferer",
			"class can be killed, SIC's subtract-and-retry recovers the rest — the SIC-only row",
			"isolates the filters' joint contribution.",
		},
	}
	for _, v := range variants {
		recovered, total := 0, 0
		for round := 0; round < rounds; round++ {
			gen := base.Split(uint64(round))
			specs := []sim.CollisionSpec{
				{Tech: techs[0], SNRdB: 12, PayloadLen: 8},
				{Tech: techs[1], SNRdB: 12, PayloadLen: 8, OffsetFrac: 0.05},
				{Tech: techs[2], SNRdB: 12, PayloadLen: 8, OffsetFrac: 0.1},
			}
			scen, err := sim.GenCollision(specs, fs, 4000, gen)
			if err != nil {
				return Table{}, err
			}
			out := sim.EvaluateDecode(scen, v.mk())
			recovered += out.Recovered
			total += out.Total
		}
		ratio := 0.0
		if total > 0 {
			ratio = float64(recovered) / float64(total)
		}
		t.Rows = append(t.Rows, []string{v.name, fmt.Sprintf("%d", recovered), fmt.Sprintf("%d", total), pct(ratio)})
	}
	return t, nil
}
