package sim

import (
	"testing"

	"repro/internal/cancel"
	"repro/internal/detect"
	"repro/internal/phy"
	"repro/internal/phy/lora"
	"repro/internal/phy/xbee"
	"repro/internal/phy/zwave"
	"repro/internal/rng"
)

const fs = 1e6

func techs() []phy.Technology {
	return []phy.Technology{lora.Default(), xbee.Default(), zwave.Default()}
}

func TestGenTrafficDeterministic(t *testing.T) {
	cfg := TrafficConfig{Techs: techs(), SampleRate: fs, Duration: 400000, MeanGap: 0.05, SNRMin: 5, SNRMax: 15}
	s1, err := GenTraffic(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := GenTraffic(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Packets) != len(s2.Packets) {
		t.Fatalf("packet counts differ: %d vs %d", len(s1.Packets), len(s2.Packets))
	}
	for i := range s1.Capture {
		if s1.Capture[i] != s2.Capture[i] {
			t.Fatalf("captures diverge at sample %d", i)
		}
	}
}

func TestGenTrafficProducesPacketsAndCollisions(t *testing.T) {
	cfg := TrafficConfig{Techs: techs(), SampleRate: fs, Duration: 1 << 20, MeanGap: 0.02, SNRMin: 10, SNRMax: 10}
	s, err := GenTraffic(cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Packets) < 5 {
		t.Fatalf("only %d packets in 1 s of dense traffic", len(s.Packets))
	}
	collided := 0
	for i := range s.Packets {
		if s.Collides(i) {
			collided++
		}
	}
	if collided == 0 {
		t.Fatal("dense traffic produced no collisions")
	}
	// Ground truth must stay within capture bounds.
	for _, p := range s.Packets {
		if p.Offset < 0 || p.Offset+p.Length > len(s.Capture) {
			t.Fatalf("packet out of bounds: %+v", p)
		}
	}
}

func TestGenTrafficValidation(t *testing.T) {
	if _, err := GenTraffic(TrafficConfig{}, rng.New(1)); err == nil {
		t.Fatal("no techs should error")
	}
}

func TestGenCollisionOverlap(t *testing.T) {
	s, err := GenCollision([]CollisionSpec{
		{Tech: lora.Default(), SNRdB: 10, PayloadLen: 8},
		{Tech: xbee.Default(), SNRdB: 10, PayloadLen: 8, OffsetFrac: 0.1},
	}, fs, 5000, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Packets) != 2 {
		t.Fatalf("%d packets", len(s.Packets))
	}
	if !s.Collides(0) || !s.Collides(1) {
		t.Fatal("collision episode does not overlap")
	}
	if s.AirtimeSeconds() <= 0 {
		t.Fatal("airtime")
	}
}

func TestEvaluateDetectionHighSNR(t *testing.T) {
	cfg := TrafficConfig{Techs: techs(), SampleRate: fs, Duration: 1 << 19, MeanGap: 0.1, SNRMin: 12, SNRMax: 15}
	s, err := GenTraffic(cfg, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Packets) == 0 {
		t.Skip("no packets generated")
	}
	uni, err := detect.NewUniversal(techs(), fs, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	out := EvaluateDetection(s, uni, MaxPacketSamples(techs(), fs))
	if out.Ratio() < 0.9 {
		t.Fatalf("high-SNR detection ratio %.2f (%d/%d)", out.Ratio(), out.Detected, out.Total)
	}
}

func TestEvaluateDetectionEnergyFailsBelowNoise(t *testing.T) {
	cfg := TrafficConfig{Techs: techs(), SampleRate: fs, Duration: 1 << 19, MeanGap: 0.1, SNRMin: -15, SNRMax: -12}
	s, err := GenTraffic(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Packets) == 0 {
		t.Skip("no packets generated")
	}
	energy := detect.NewEnergy(1024, 6)
	out := EvaluateDetection(s, energy, MaxPacketSamples(techs(), fs))
	if out.Ratio() > 0.3 {
		t.Fatalf("energy detector should fail below the noise floor, got %.2f", out.Ratio())
	}
}

func TestEvaluateDecodeRecovers(t *testing.T) {
	s, err := GenCollision([]CollisionSpec{
		{Tech: lora.Default(), SNRdB: 12, PayloadLen: 10},
		{Tech: xbee.Default(), SNRdB: 12, PayloadLen: 10, OffsetFrac: 0.05},
	}, fs, 4000, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	out := EvaluateDecode(s, cancel.NewDecoder(techs(), fs))
	if out.Recovered != 2 {
		t.Fatalf("recovered %d of 2 (stats %+v)", out.Recovered, out.Stats)
	}
	if out.Throughput() <= 0 {
		t.Fatal("throughput should be positive")
	}
	if out.Spurious != 0 {
		t.Fatalf("spurious frames: %d", out.Spurious)
	}
}

func TestMaxPacketSamples(t *testing.T) {
	got := MaxPacketSamples(techs(), fs)
	if got != lora.Default().MaxPacketSamples(fs) {
		t.Fatalf("max packet %d should be lora's", got)
	}
}
