package sim

import (
	"bytes"

	"repro/internal/cancel"
	"repro/internal/detect"
	"repro/internal/phy"
)

// DetectionOutcome summarizes a detector's performance on a scenario.
type DetectionOutcome struct {
	Total     int     // ground-truth packets
	Detected  int     // packets covered by a shipped segment
	Events    int     // raw detection events
	Collided  int     // ground-truth packets that overlapped another
	FalseRate float64 // events not covering any packet / events
}

// EvaluateDetection scores a detector against a scenario using segment-
// coverage semantics: a packet counts as detected if at least one shipped
// segment (2× maxPacket around each event, merged) fully contains it —
// which is precisely the gateway's job (Sec. 4: ship detections, discard
// noise).
func EvaluateDetection(s Scenario, det detect.Detector, maxPacket int) DetectionOutcome {
	events := det.Detect(s.Capture)
	segments := detect.ExtractSegments(s.Capture, events, maxPacket)
	out := DetectionOutcome{Total: len(s.Packets), Events: len(events)}
	for i, p := range s.Packets {
		if s.Collides(i) {
			out.Collided++
		}
		for _, seg := range segments {
			if seg.Start <= p.Offset && seg.Start+len(seg.Samples) >= p.Offset+p.Length {
				out.Detected++
				break
			}
		}
	}
	// false alarms: events whose segment covers no packet at all
	false_ := 0
	for _, ev := range events {
		hit := false
		for _, p := range s.Packets {
			if ev.Index >= p.Offset-maxPacket/2 && ev.Index <= p.Offset+p.Length {
				hit = true
				break
			}
		}
		if !hit {
			false_++
		}
	}
	if len(events) > 0 {
		out.FalseRate = float64(false_) / float64(len(events))
	}
	return out
}

// Ratio returns detected/total, or 0 for an empty scenario.
func (o DetectionOutcome) Ratio() float64 {
	if o.Total == 0 {
		return 0
	}
	return float64(o.Detected) / float64(o.Total)
}

// DecodeOutcome summarizes a collision decoder's performance.
type DecodeOutcome struct {
	Total     int     // ground-truth packets
	Recovered int     // frames decoded with matching tech+payload
	Spurious  int     // CRC-valid frames matching no ground truth
	Bits      int     // payload bits successfully recovered
	Seconds   float64 // episode airtime
	Stats     cancel.Stats
}

// Throughput returns recovered payload bits per second.
func (o DecodeOutcome) Throughput() float64 {
	if o.Seconds <= 0 {
		return 0
	}
	return float64(o.Bits) / o.Seconds
}

// EvaluateDecode runs a decoder over the scenario capture and scores the
// recovered frames against ground truth. A frame matches if technology and
// payload agree with an unclaimed ground-truth packet.
func EvaluateDecode(s Scenario, dec *cancel.Decoder) DecodeOutcome {
	frames, stats := dec.Decode(s.Capture)
	out := DecodeOutcome{Total: len(s.Packets), Seconds: s.AirtimeSeconds(), Stats: stats}
	claimed := make([]bool, len(s.Packets))
	for _, f := range frames {
		matched := false
		for i, p := range s.Packets {
			if claimed[i] || f.Tech != p.Tech || !bytes.Equal(f.Payload, p.Payload) {
				continue
			}
			claimed[i] = true
			matched = true
			out.Recovered++
			out.Bits += len(p.Payload) * 8
			break
		}
		if !matched {
			out.Spurious++
		}
	}
	return out
}

// EvaluateDecodeDetailed runs a decoder over the scenario and returns a
// per-ground-truth-packet recovery flag (technology and payload matched),
// for consumers that need per-frame outcomes rather than aggregates (the
// MAC retransmission model).
func EvaluateDecodeDetailed(s Scenario, dec *cancel.Decoder) []bool {
	frames, _ := dec.Decode(s.Capture)
	out := make([]bool, len(s.Packets))
	for _, f := range frames {
		for i, p := range s.Packets {
			if out[i] || f.Tech != p.Tech || !bytes.Equal(f.Payload, p.Payload) {
				continue
			}
			out[i] = true
			break
		}
	}
	return out
}

// MaxPacketSamples returns the largest MaxPacketSamples across techs at fs.
func MaxPacketSamples(techs []phy.Technology, fs float64) int {
	max := 0
	for _, t := range techs {
		if n := t.MaxPacketSamples(fs); n > max {
			max = n
		}
	}
	return max
}
