// Package sim provides the experiment harness for the paper reproduction:
// duty-cycled "wake up and transmit" traffic generation with ground truth,
// collision-episode synthesis, and the metrics (detection ratio, frame
// recovery, throughput) that the Sec. 7 figures report.
package sim

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/phy"
	"repro/internal/rng"
)

// Packet is ground truth for one transmitted frame.
type Packet struct {
	Tech    string
	Payload []byte
	Offset  int     // start sample within the capture
	Length  int     // airtime in samples
	SNRdB   float64 // received SNR vs unit noise
}

// Scenario is a rendered capture plus its ground truth.
type Scenario struct {
	Capture    []complex128
	SampleRate float64
	Packets    []Packet
}

// TrafficConfig parameterizes duty-cycled traffic generation.
type TrafficConfig struct {
	Techs      []phy.Technology
	SampleRate float64
	Duration   int     // capture length in samples
	MeanGap    float64 // mean idle gap between a technology's transmissions, seconds (Poisson)
	SNRMin     float64 // per-packet SNR drawn uniformly from [SNRMin, SNRMax]
	SNRMax     float64
	PayloadMin int // payload length drawn uniformly from [PayloadMin, PayloadMax]
	PayloadMax int
	CFOMax     float64 // per-packet CFO drawn uniformly from [-CFOMax, +CFOMax]
	NoNoise    bool    // render without AWGN (unit tests)
}

// Validate fills defaults and checks the configuration.
func (c *TrafficConfig) Validate() error {
	if len(c.Techs) == 0 {
		return fmt.Errorf("sim: no technologies")
	}
	if c.SampleRate <= 0 {
		c.SampleRate = 1e6
	}
	if c.Duration <= 0 {
		c.Duration = 1 << 20
	}
	if c.MeanGap <= 0 {
		c.MeanGap = 0.25
	}
	if c.PayloadMin <= 0 {
		c.PayloadMin = 4
	}
	if c.PayloadMax < c.PayloadMin {
		c.PayloadMax = c.PayloadMin + 12
	}
	if c.SNRMax < c.SNRMin {
		c.SNRMax = c.SNRMin
	}
	return nil
}

// GenTraffic renders a capture with independent Poisson transmitters, one
// per technology — the paper's low-power "wake up and transmit" model,
// which naturally produces cross-technology collisions. The generator is
// fully deterministic given the rng.
func GenTraffic(cfg TrafficConfig, gen *rng.Rand) (Scenario, error) {
	if err := cfg.Validate(); err != nil {
		return Scenario{}, err
	}
	fs := cfg.SampleRate
	var emissions []channel.Emission
	var packets []Packet
	for ti, tech := range cfg.Techs {
		tgen := gen.Split(uint64(ti) + 1)
		// Poisson arrivals: next start = previous end + Exp(meanGap).
		pos := int(tgen.ExpFloat64() * cfg.MeanGap * fs)
		for pos < cfg.Duration {
			n := cfg.PayloadMin
			if cfg.PayloadMax > cfg.PayloadMin {
				n += tgen.Intn(cfg.PayloadMax - cfg.PayloadMin + 1)
			}
			payload := make([]byte, n)
			tgen.Bytes(payload)
			sig, err := tech.Modulate(payload, fs)
			if err != nil {
				return Scenario{}, fmt.Errorf("sim: %s: %w", tech.Name(), err)
			}
			if pos+len(sig) > cfg.Duration {
				break
			}
			snr := cfg.SNRMin + tgen.Float64()*(cfg.SNRMax-cfg.SNRMin)
			cfo := 0.0
			if cfg.CFOMax > 0 {
				cfo = (2*tgen.Float64() - 1) * cfg.CFOMax
			}
			emissions = append(emissions, channel.Emission{
				Samples: sig,
				Offset:  pos,
				SNRdB:   snr,
				CFO:     cfo,
				Phase:   2 * 3.141592653589793 * tgen.Float64(),
			})
			packets = append(packets, Packet{
				Tech:    tech.Name(),
				Payload: payload,
				Offset:  pos,
				Length:  len(sig),
				SNRdB:   snr,
			})
			pos += len(sig) + int(tgen.ExpFloat64()*cfg.MeanGap*fs)
		}
	}
	var noise *rng.Rand
	if !cfg.NoNoise {
		noise = gen.Split(0xDEAD)
	}
	capture := channel.Mix(cfg.Duration, emissions, noise, fs)
	return Scenario{Capture: capture, SampleRate: fs, Packets: packets}, nil
}

// CollisionSpec describes one participant in a forced collision episode.
type CollisionSpec struct {
	Tech       phy.Technology
	SNRdB      float64
	PayloadLen int
	OffsetFrac float64 // start position as a fraction of the longest frame [0, 0.9]
}

// GenCollision renders one collision episode: every participant's frame
// overlaps the first one in time. The capture is padded by margin samples
// on each side.
func GenCollision(specs []CollisionSpec, fs float64, margin int, gen *rng.Rand) (Scenario, error) {
	if len(specs) == 0 {
		return Scenario{}, fmt.Errorf("sim: empty collision spec")
	}
	if margin < 0 {
		margin = 0
	}
	type rendered struct {
		sig     []complex128
		payload []byte
	}
	longest := 0
	parts := make([]rendered, len(specs))
	for i, sp := range specs {
		n := sp.PayloadLen
		if n <= 0 {
			n = 8
		}
		payload := make([]byte, n)
		gen.Bytes(payload)
		sig, err := sp.Tech.Modulate(payload, fs)
		if err != nil {
			return Scenario{}, fmt.Errorf("sim: %s: %w", sp.Tech.Name(), err)
		}
		parts[i] = rendered{sig: sig, payload: payload}
		if len(sig) > longest {
			longest = len(sig)
		}
	}
	var emissions []channel.Emission
	var packets []Packet
	total := margin
	for i, sp := range specs {
		frac := sp.OffsetFrac
		if frac < 0 {
			frac = 0
		}
		if frac > 0.9 {
			frac = 0.9
		}
		off := margin + int(frac*float64(longest))
		emissions = append(emissions, channel.Emission{
			Samples: parts[i].sig,
			Offset:  off,
			SNRdB:   sp.SNRdB,
			Phase:   2 * 3.141592653589793 * gen.Float64(),
		})
		packets = append(packets, Packet{
			Tech:    sp.Tech.Name(),
			Payload: parts[i].payload,
			Offset:  off,
			Length:  len(parts[i].sig),
			SNRdB:   sp.SNRdB,
		})
		if end := off + len(parts[i].sig); end > total {
			total = end
		}
	}
	total += margin
	capture := channel.Mix(total, emissions, gen.Split(0xBEEF), fs)
	return Scenario{Capture: capture, SampleRate: fs, Packets: packets}, nil
}

// Collides reports whether packet i overlaps any other packet in time.
func (s Scenario) Collides(i int) bool {
	a := s.Packets[i]
	for j, b := range s.Packets {
		if j == i {
			continue
		}
		if a.Offset < b.Offset+b.Length && b.Offset < a.Offset+a.Length {
			return true
		}
	}
	return false
}

// AirtimeSeconds returns the scenario duration in seconds.
func (s Scenario) AirtimeSeconds() float64 {
	return float64(len(s.Capture)) / s.SampleRate
}
