package cloud

import (
	"testing"
	"time"

	"repro/internal/backhaul"
	"repro/internal/obs"
)

// fakeClock is a manually-advanced time source for TTL tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time { return f.t }

func TestDedupCacheAgeBound(t *testing.T) {
	t.Parallel()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	reg := obs.NewRegistry()
	evict := reg.Counter("cloud_dedup_evictions_total")
	c := &dedupCache{size: 8}
	c.setTTL(time.Minute, clk.now, evict)
	k := func(start int64) dedupKey { return dedupKey{gateway: "gw", epoch: 1, start: start} }

	c.put(k(0), backhaul.FramesReport{SegmentStart: 0})
	clk.t = clk.t.Add(30 * time.Second)
	c.put(k(1), backhaul.FramesReport{SegmentStart: 1})

	// 59s after the first put: both entries within the minute, no evictions.
	clk.t = clk.t.Add(29 * time.Second)
	if _, ok := c.get(k(0)); !ok {
		t.Fatal("entry 0 evicted before its ttl")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("entry 1 evicted before its ttl")
	}
	if n := evict.Value(); n != 0 {
		t.Fatalf("evictions = %d before any ttl passed, want 0", n)
	}

	// 61s after the first put: entry 0 is past the ttl, entry 1 is not.
	clk.t = clk.t.Add(2 * time.Second)
	if _, ok := c.get(k(0)); ok {
		t.Fatal("entry 0 survived past its ttl")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("entry 1 evicted 31s into its minute")
	}
	if n := evict.Value(); n != 1 {
		t.Fatalf("evictions = %d after one age eviction, want 1", n)
	}

	// Far future: everything ages out, even without gets in between.
	clk.t = clk.t.Add(time.Hour)
	c.put(k(2), backhaul.FramesReport{SegmentStart: 2})
	if got := c.len(); got != 1 {
		t.Fatalf("live entries = %d after everything aged out, want 1", got)
	}
	if n := evict.Value(); n != 2 {
		t.Fatalf("evictions = %d, want 2 (count-bound evictions must not count)", n)
	}
}

func TestDedupCacheCountBoundDoesNotCountAsAgeEviction(t *testing.T) {
	t.Parallel()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	reg := obs.NewRegistry()
	evict := reg.Counter("cloud_dedup_evictions_total")
	c := &dedupCache{size: 2}
	c.setTTL(time.Hour, clk.now, evict)
	k := func(start int64) dedupKey { return dedupKey{gateway: "gw", epoch: 1, start: start} }

	for start := int64(0); start < 5; start++ {
		clk.t = clk.t.Add(time.Second)
		c.put(k(start), backhaul.FramesReport{SegmentStart: start})
	}
	if _, ok := c.get(k(0)); ok {
		t.Fatal("oldest entry survived past capacity")
	}
	if _, ok := c.get(k(4)); !ok {
		t.Fatal("newest entry missing")
	}
	if got := c.len(); got != 2 {
		t.Fatalf("live entries = %d, want 2", got)
	}
	if n := evict.Value(); n != 0 {
		t.Fatalf("age evictions = %d for count-bound churn, want 0", n)
	}
}

func TestDedupCacheZeroTTLStaysCountBound(t *testing.T) {
	t.Parallel()
	c := &dedupCache{size: 2}
	c.setTTL(0, nil, nil)
	k := func(start int64) dedupKey { return dedupKey{gateway: "gw", epoch: 1, start: start} }
	c.put(k(0), backhaul.FramesReport{SegmentStart: 0})
	c.put(k(1), backhaul.FramesReport{SegmentStart: 1})
	if _, ok := c.get(k(0)); !ok {
		t.Fatal("entry 0 missing with aging disabled")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("entry 1 missing with aging disabled")
	}
}

// TestDedupCacheFIFOCompaction churns far past capacity so the consumed
// FIFO prefix is reclaimed; the cache must stay correct across compactions.
func TestDedupCacheFIFOCompaction(t *testing.T) {
	t.Parallel()
	c := &dedupCache{size: 4}
	k := func(start int64) dedupKey { return dedupKey{gateway: "gw", epoch: 1, start: start} }
	const churn = 500
	for start := int64(0); start < churn; start++ {
		c.put(k(start), backhaul.FramesReport{SegmentStart: start})
	}
	if got := c.len(); got != 4 {
		t.Fatalf("live entries = %d, want 4", got)
	}
	for start := int64(churn - 4); start < churn; start++ {
		rep, ok := c.get(k(start))
		if !ok || rep.SegmentStart != start {
			t.Fatalf("entry %d missing or wrong after churn", start)
		}
	}
	if len(c.fifo) > 64 {
		t.Fatalf("fifo grew to %d entries for a size-4 cache; compaction broken", len(c.fifo))
	}
}

// TestDedupCacheSupersede checks epoch supersession: a fresh epoch drops the
// gateway's entries under dead epochs, leaves its current-epoch entries and
// other gateways alone, and reports exactly how many it dropped.
func TestDedupCacheSupersede(t *testing.T) {
	t.Parallel()
	c := &dedupCache{size: 16}
	put := func(gw string, epoch uint64, start int64) {
		c.put(dedupKey{gateway: gw, epoch: epoch, start: start}, backhaul.FramesReport{SegmentStart: start})
	}
	put("gw-a", 7, 0)
	put("gw-a", 7, 100)
	put("gw-a", 7, 200)
	put("gw-a", 8, 300) // already on the new epoch: must survive
	put("gw-b", 7, 400) // different gateway: must survive

	if dropped := c.supersede("gw-a", 8); dropped != 3 {
		t.Fatalf("supersede dropped %d entries, want 3", dropped)
	}
	if got := c.len(); got != 2 {
		t.Fatalf("live entries = %d after supersession, want 2", got)
	}
	if _, ok := c.get(dedupKey{gateway: "gw-a", epoch: 7, start: 100}); ok {
		t.Fatal("dead-epoch entry survived supersession")
	}
	if _, ok := c.get(dedupKey{gateway: "gw-a", epoch: 8, start: 300}); !ok {
		t.Fatal("current-epoch entry dropped by supersession")
	}
	if _, ok := c.get(dedupKey{gateway: "gw-b", epoch: 7, start: 400}); !ok {
		t.Fatal("other gateway's entry dropped by supersession")
	}
	// Same epoch again: nothing left to supersede.
	if dropped := c.supersede("gw-a", 8); dropped != 0 {
		t.Fatalf("second supersede dropped %d entries, want 0", dropped)
	}
}
