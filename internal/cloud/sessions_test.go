package cloud

import (
	"net"
	"testing"
	"time"

	"repro/internal/backhaul"
)

// waitGauge polls the gauge until it reads want or the deadline passes.
func waitGauge(t *testing.T, read func() int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if read() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("gauge stuck at %d, want %d", read(), want)
}

// TestServerSessionsActiveGauge checks cloud_sessions_active_count tracks
// the live session count: up on accept, down when the session unwinds.
func TestServerSessionsActiveGauge(t *testing.T) {
	svc := NewService(techs())
	srv := &Server{Service: svc}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	gauge := svc.Registry().Gauge("cloud_sessions_active_count")

	const n = 3
	conns := make([]*backhaul.Conn, 0, n)
	for i := 0; i < n; i++ {
		nc, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		conn := backhaul.NewConn(nc)
		if err := conn.SendHello(backhaul.Hello{Version: backhaul.Version, GatewayID: "gauge", Epoch: uint64(i), SampleRate: fs}); err != nil {
			t.Fatal(err)
		}
		// The hello ack proves the server registered the session.
		if typ, _, err := conn.ReadMessage(); err != nil || typ != backhaul.MsgHelloAck {
			t.Fatalf("hello ack %v %v", typ, err)
		}
		conns = append(conns, conn)
	}
	waitGauge(t, gauge.Value, n)

	for i, conn := range conns {
		if err := conn.SendBye(); err != nil {
			t.Fatal(err)
		}
		if typ, _, err := conn.ReadMessage(); err != nil || typ != backhaul.MsgBye {
			t.Fatalf("bye ack %v %v", typ, err)
		}
		waitGauge(t, gauge.Value, int64(n-1-i))
	}
}
