package cloud

import (
	"bytes"
	"net"
	"testing"

	"repro/internal/backhaul"
	"repro/internal/channel"
	"repro/internal/phy"
	"repro/internal/phy/lora"
	"repro/internal/phy/xbee"
	"repro/internal/phy/zwave"
	"repro/internal/rng"
)

const fs = 1e6

func techs() []phy.Technology {
	return []phy.Technology{lora.Default(), xbee.Default(), zwave.Default()}
}

func makeSegment(t *testing.T, seed uint64) (backhaul.Segment, []byte) {
	t.Helper()
	gen := rng.New(seed)
	payload := []byte("cloud test frame")
	sig, err := xbee.Default().Modulate(payload, fs)
	if err != nil {
		t.Fatal(err)
	}
	samples := channel.Mix(len(sig)+20000, []channel.Emission{{Samples: sig, Offset: 8000, SNRdB: 15}}, gen, fs)
	return backhaul.Segment{Start: 1_000_000, SampleRate: fs, Samples: samples}, payload
}

func TestDecodeSegment(t *testing.T) {
	svc := NewService(techs())
	seg, payload := makeSegment(t, 1)
	report := svc.DecodeSegment(seg)
	if report.SegmentStart != 1_000_000 {
		t.Fatalf("segment start %d", report.SegmentStart)
	}
	if len(report.Frames) != 1 || !bytes.Equal(report.Frames[0].Payload, payload) {
		t.Fatalf("frames %+v", report.Frames)
	}
	f := report.Frames[0]
	if f.Offset < 1_000_000+7990 || f.Offset > 1_000_000+8010 {
		t.Fatalf("absolute offset %d", f.Offset)
	}
	if n, _, _ := svc.Totals(); n != 1 {
		t.Fatalf("totals %d", n)
	}
}

func TestServeConnProtocol(t *testing.T) {
	svc := NewService(techs())
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- svc.ServeConn(b) }()

	conn := backhaul.NewConn(a)
	// A v1 hello: the legacy strict request/reply session, no hello ack.
	if err := conn.SendHello(backhaul.Hello{Version: 1, GatewayID: "t", SampleRate: fs}); err != nil {
		t.Fatal(err)
	}
	seg, payload := makeSegment(t, 2)
	if _, err := conn.SendSegment(backhaul.DefaultCodec, seg); err != nil {
		t.Fatal(err)
	}
	typ, data, err := conn.ReadMessage()
	if err != nil || typ != backhaul.MsgFrames {
		t.Fatalf("reply %v %v", typ, err)
	}
	report, err := backhaul.ParseFrames(data)
	if err != nil || len(report.Frames) != 1 || !bytes.Equal(report.Frames[0].Payload, payload) {
		t.Fatalf("report %+v err %v", report, err)
	}
	if err := conn.SendBye(); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := conn.ReadMessage(); err != nil || typ != backhaul.MsgBye {
		t.Fatalf("bye ack %v %v", typ, err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

func TestServeConnRejectsBadVersion(t *testing.T) {
	svc := NewService(techs())
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- svc.ServeConn(b) }()
	conn := backhaul.NewConn(a)
	if err := conn.SendHello(backhaul.Hello{Version: 99}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestServeConnRejectsNonHelloFirst(t *testing.T) {
	svc := NewService(techs())
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- svc.ServeConn(b) }()
	conn := backhaul.NewConn(a)
	if err := conn.SendBye(); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("non-hello first message accepted")
	}
}

func TestTCPServer(t *testing.T) {
	svc := NewService(techs())
	srv := &Server{Service: svc}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn := backhaul.NewConn(nc)
	if err := conn.SendHello(backhaul.Hello{Version: 1, GatewayID: "tcp", SampleRate: fs}); err != nil {
		t.Fatal(err)
	}
	seg, payload := makeSegment(t, 3)
	if _, err := conn.SendSegment(backhaul.DefaultCodec, seg); err != nil {
		t.Fatal(err)
	}
	typ, data, err := conn.ReadMessage()
	if err != nil || typ != backhaul.MsgFrames {
		t.Fatalf("%v %v", typ, err)
	}
	report, _ := backhaul.ParseFrames(data)
	if len(report.Frames) != 1 || !bytes.Equal(report.Frames[0].Payload, payload) {
		t.Fatalf("report %+v", report)
	}
	if err := conn.SendBye(); err != nil {
		t.Fatal(err)
	}
}

func TestServeConnRejectsCorruptSegment(t *testing.T) {
	svc := NewService(techs())
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- svc.ServeConn(b) }()
	conn := backhaul.NewConn(a)
	if err := conn.SendHello(backhaul.Hello{Version: 1, GatewayID: "t", SampleRate: fs}); err != nil {
		t.Fatal(err)
	}
	// Garbage segment payload: too short to carry a header.
	if err := conn.WriteMessage(backhaul.MsgSegment, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("corrupt segment accepted")
	}
}

func TestDecodeSegmentEmptyNoise(t *testing.T) {
	svc := NewService(techs())
	gen := rng.New(44)
	samples := make([]complex128, 50000)
	for i := range samples {
		samples[i] = gen.Complex()
	}
	report := svc.DecodeSegment(backhaul.Segment{Start: 0, SampleRate: fs, Samples: samples})
	if len(report.Frames) != 0 {
		t.Fatalf("noise decoded into %d frames", len(report.Frames))
	}
}

func TestTCPServerConcurrentGateways(t *testing.T) {
	// Several gateways ship segments simultaneously; the service must
	// handle the sessions concurrently and account all frames.
	svc := NewService(techs())
	srv := &Server{Service: svc}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const gateways = 3
	errCh := make(chan error, gateways)
	for g := 0; g < gateways; g++ {
		go func(g int) {
			nc, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				errCh <- err
				return
			}
			defer nc.Close()
			conn := backhaul.NewConn(nc)
			if err := conn.SendHello(backhaul.Hello{Version: 1, GatewayID: "gw", SampleRate: fs}); err != nil {
				errCh <- err
				return
			}
			seg, payload := makeSegment(t, uint64(10+g))
			if _, err := conn.SendSegment(backhaul.DefaultCodec, seg); err != nil {
				errCh <- err
				return
			}
			typ, data, err := conn.ReadMessage()
			if err != nil || typ != backhaul.MsgFrames {
				errCh <- err
				return
			}
			report, err := backhaul.ParseFrames(data)
			if err != nil || len(report.Frames) != 1 || !bytes.Equal(report.Frames[0].Payload, payload) {
				errCh <- err
				return
			}
			errCh <- conn.SendBye()
		}(g)
	}
	for g := 0; g < gateways; g++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	if n, _, _ := svc.Totals(); n != gateways {
		t.Fatalf("decoded %d frames across %d gateways", n, gateways)
	}
}
