package cloud

import (
	"net"
	"testing"
	"time"

	"repro/internal/backhaul"
	"repro/internal/farm"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/rng"
)

// TestReplayedSegmentNotDoubleCounted drives the real decode path through
// a seeded mid-reply connection kill: session 1 ships a segment, the cloud
// decodes and caches it, and the fault injector cuts the connection one
// byte into the reply — exactly the window where a reconnecting gateway
// has an unacked segment to replay. Session 2 (same gateway, same epoch)
// replays it. The replay must be answered from the dedup cache: one
// decode on cloud_segments_decoded_total, one dedup on
// cloud_segments_deduped_total, and exactly one "decode" trace span —
// the replay's trace carries "dedup_hit" instead.
func TestReplayedSegmentNotDoubleCounted(t *testing.T) {
	svc := NewService(techs())
	tracer := obs.NewTracer(0)
	svc.UseObs(svc.Registry(), tracer)
	svc.StartFarm(farm.Config{Workers: 1, QueueDepth: 4})
	defer svc.Close()

	// Seeded segment: the replayed bytes are identical to the originals,
	// as a spool replay's are.
	gen := rng.New(99)
	samples := make([]complex128, 256)
	for i := range samples {
		samples[i] = gen.Complex()
	}
	seg := backhaul.Segment{Start: 8400, SampleRate: fs, Samples: samples}

	// Session 1: clean handshake, then the fault plan takes over the read
	// side — the reply's first byte arrives and the connection dies. The
	// segment itself flows to the cloud intact (writes are untouched), so
	// the decode and the cache put have happened by the time the reply hits
	// the wire.
	a, b := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- svc.ServeConn(b) }()
	conn := backhaul.NewConn(a)
	helloEpoch(t, conn, "gw-replay", 7)
	fc := faults.NewConn(a, faults.Plan{Events: []faults.Event{
		{Dir: faults.DirRead, Op: faults.OpClose, Offset: 1},
	}})
	fconn := backhaul.NewConn(fc)
	if _, err := fconn.SendSegmentSeq(backhaul.DefaultCodec, 0, seg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fconn.ReadMessage(); err == nil {
		t.Fatal("reply survived the injected close")
	}
	// The session dies with the connection; its error is the fault, not
	// the contract under test.
	<-done

	// The decode span ends in the farm worker's goroutine after the
	// failed reply write, which ServeConn's return does not join — wait
	// for it to land before reading the tracer or reconnecting.
	deadline := time.Now().Add(5 * time.Second)
	for countStages(tracer, "decode") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("decode span never landed in the tracer")
		}
		time.Sleep(time.Millisecond)
	}

	// Session 2: the reconnect. A fresh sequence number, the same segment —
	// the replay must be answered from cache, not decoded again.
	a2, b2 := net.Pipe()
	done2 := make(chan error, 1)
	go func() { done2 <- svc.ServeConn(b2) }()
	conn2 := backhaul.NewConn(a2)
	helloEpoch(t, conn2, "gw-replay", 7)
	if _, err := conn2.SendSegmentSeq(backhaul.DefaultCodec, 1, seg); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := conn2.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if typ != backhaul.MsgFrames {
		t.Fatalf("replay reply: unexpected message type %d", typ)
	}
	report, err := backhaul.ParseFrames(payload)
	if err != nil {
		t.Fatal(err)
	}
	if report.SegmentStart != seg.Start {
		t.Fatalf("replay reply for segment @%d, want @%d", report.SegmentStart, seg.Start)
	}
	if err := conn2.SendBye(); err != nil {
		t.Fatal(err)
	}
	if rest, err := readV2Replies(conn2); err != nil || len(rest) != 0 {
		t.Fatalf("after bye: %d extra replies, err %v", len(rest), err)
	}
	if err := <-done2; err != nil {
		t.Fatal(err)
	}

	// The ledger: one decode, one dedup answer, no double count.
	if n := svc.Registry().Counter("cloud_segments_decoded_total").Value(); n != 1 {
		t.Fatalf("cloud_segments_decoded_total = %d, want 1 (replay double-counted)", n)
	}
	if n := svc.Registry().Counter("cloud_segments_deduped_total").Value(); n != 1 {
		t.Fatalf("cloud_segments_deduped_total = %d, want 1", n)
	}

	// The traces agree: one decode span across both sessions, and the
	// replay's trace is marked as a cache answer.
	if n := countStages(tracer, "decode"); n != 1 {
		t.Fatalf("traces carry %d decode stages, want 1 (replay re-decoded)", n)
	}
	if n := countStages(tracer, "dedup_hit"); n != 1 {
		t.Fatalf("traces carry %d dedup_hit stages, want 1", n)
	}
}

// countStages counts ended stages of the given name across the tracer's
// recent spans.
func countStages(tracer *obs.Tracer, name string) int {
	n := 0
	for _, tr := range tracer.Recent() {
		for _, sp := range tr.Spans {
			for _, st := range sp.Stages {
				if st.Name == name {
					n++
				}
			}
		}
	}
	return n
}
