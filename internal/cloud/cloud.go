// Package cloud implements GalioT's cloud decoder service: it receives
// detected I/Q segments from gateways over the backhaul protocol, runs the
// Algorithm-1 collision decoder (SIC wrapped around the kill filters) on
// each, and returns the recovered frames. The same decoding engine is
// exposed as a library (Service.DecodeSegment) and as a TCP server.
//
// Decoding scales across gateways through the decode farm (internal/farm):
// when a farm is attached with StartFarm, every session feeds the shared
// bounded queue and a fixed worker pool drains it, so one slow collision
// decode no longer stalls its whole gateway session. Sessions speaking
// backhaul protocol v2 pipeline sequence-numbered segments and receive
// explicit MsgBusy rejects under overload; v1 sessions are served unchanged
// (the farm applies backpressure by blocking their reads instead).
package cloud

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"repro/internal/backhaul"
	"repro/internal/cancel"
	"repro/internal/farm"
	"repro/internal/phy"
)

// Service decodes shipped segments.
type Service struct {
	Techs []phy.Technology
	// Logf receives per-segment diagnostics; nil silences them.
	Logf func(format string, args ...any)

	mu      sync.Mutex
	decoded int
	stats   cancel.Stats
	pool    *farm.DecoderPool
	farm    *farm.Farm
}

// NewService returns a decoder service over the given technologies.
func NewService(techs []phy.Technology) *Service {
	s := &Service{Techs: techs}
	s.pool = &farm.DecoderPool{New: func(fs float64) *cancel.Decoder {
		return cancel.NewDecoder(s.Techs, fs)
	}}
	return s
}

// StartFarm attaches a decode farm: ServeConn sessions stop decoding
// inline and submit to the shared worker pool instead. cfg.Decode is
// supplied by the service unless the caller overrides it (tests do, to
// inject slow or failing decoders). Returns the farm; Close (or
// farm.Close) drains it.
func (s *Service) StartFarm(cfg farm.Config) *farm.Farm {
	if cfg.Decode == nil {
		cfg.Decode = s.decodeSegment
	}
	f := farm.New(cfg)
	s.mu.Lock()
	s.farm = f
	s.mu.Unlock()
	return f
}

// Farm returns the attached decode farm, or nil.
func (s *Service) Farm() *farm.Farm {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.farm
}

// Close drains the attached farm, if any: intake stops, every admitted
// segment finishes, then Close returns. Call after Server.Close.
func (s *Service) Close() {
	if f := s.Farm(); f != nil {
		f.Close()
	}
}

// DecodeSegment runs the collision decoder on one shipped segment and
// returns a report with absolute offsets. The decoder bank is drawn from a
// pool keyed by sample rate, not rebuilt per segment.
func (s *Service) DecodeSegment(seg backhaul.Segment) backhaul.FramesReport {
	report, _, _ := s.decodeSegment(context.Background(), seg)
	return report
}

// decodeSegment is the farm DecodeFunc: pooled decoder, totals accounting,
// per-segment diagnostics.
func (s *Service) decodeSegment(_ context.Context, seg backhaul.Segment) (backhaul.FramesReport, cancel.Stats, error) {
	dec := s.pool.Get(seg.SampleRate)
	frames, stats := dec.Decode(seg.Samples)
	s.pool.Put(dec)
	report := backhaul.FramesReport{SegmentStart: seg.Start}
	for _, f := range frames {
		report.Frames = append(report.Frames, backhaul.FrameReport{
			Tech:    f.Tech,
			Payload: f.Payload,
			CRCOK:   f.CRCOK,
			Offset:  seg.Start + int64(f.Offset),
			SNRdB:   f.SNRdB,
		})
	}
	s.mu.Lock()
	s.decoded += len(frames)
	s.stats.SICRounds += stats.SICRounds
	s.stats.KillFreq += stats.KillFreq
	s.stats.KillCSS += stats.KillCSS
	s.stats.KillCodes += stats.KillCodes
	s.stats.FailedDecode += stats.FailedDecode
	s.mu.Unlock()
	if s.Logf != nil {
		s.Logf("segment @%d: %d samples -> %d frames (stats %+v)",
			seg.Start, len(seg.Samples), len(frames), stats)
	}
	return report, stats, nil
}

// Totals returns the cumulative frame count, decoder statistics, and a
// snapshot of the decode farm (zero when no farm is attached).
func (s *Service) Totals() (int, cancel.Stats, farm.Stats) {
	var fs farm.Stats
	if f := s.Farm(); f != nil {
		fs = f.Snapshot()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.decoded, s.stats, fs
}

// session carries the per-connection state of one ServeConn call.
type session struct {
	svc     *Service
	conn    *backhaul.Conn
	version int
	ctx     context.Context

	seqr farm.Sequencer
	wmu  sync.Mutex // guards writeErr (writes themselves serialize in seqr)
	werr error
}

// setWriteErr records the first reply-write failure; the read loop
// surfaces it.
func (ss *session) setWriteErr(err error) {
	if err == nil {
		return
	}
	ss.wmu.Lock()
	if ss.werr == nil {
		ss.werr = err
	}
	ss.wmu.Unlock()
}

func (ss *session) writeErr() error {
	ss.wmu.Lock()
	defer ss.wmu.Unlock()
	return ss.werr
}

// ServeConn handles one gateway session over a byte stream: hello (with
// version negotiation), segments, bye. v1 gateways get one synchronous
// frames report per segment; v2 gateways pipeline sequence-numbered
// segments and get per-segment frames reports or busy rejects, always in
// segment order. It returns when the gateway says bye or the stream
// errors; on bye, every admitted segment has been answered first.
func (s *Service) ServeConn(rw io.ReadWriter) error {
	conn := backhaul.NewConn(rw)
	typ, payload, err := conn.ReadMessage()
	if err != nil {
		return err
	}
	if typ != backhaul.MsgHello {
		return fmt.Errorf("cloud: expected hello, got message type %d", typ)
	}
	hello, err := backhaul.ParseHello(payload)
	if err != nil {
		return fmt.Errorf("cloud: bad hello: %w", err)
	}
	version, err := backhaul.Negotiate(hello.Version)
	if err != nil {
		return fmt.Errorf("cloud: %w", err)
	}
	f := s.Farm()
	if version >= 2 {
		ack := backhaul.HelloAck{Version: version}
		if f != nil {
			snap := f.Snapshot()
			ack.Window = snap.QueueDepth
			ack.Workers = snap.Workers
		}
		if err := conn.SendHelloAck(ack); err != nil {
			return err
		}
	}
	if s.Logf != nil {
		s.Logf("session from %s (v%d, fs=%.0f, techs=%v)", hello.GatewayID, version, hello.SampleRate, hello.Techs)
	}
	// The session context cancels when ServeConn returns: queued jobs of a
	// dead session are skipped by the farm instead of decoded into the void.
	ctx, cancelSession := context.WithCancel(context.Background())
	defer cancelSession()
	ss := &session{svc: s, conn: conn, version: version, ctx: ctx}
	for {
		typ, payload, err := conn.ReadMessage()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return ss.writeErr()
			}
			return err
		}
		switch typ {
		case backhaul.MsgSegment:
			seg, err := backhaul.DecodeSegment(payload)
			if err != nil {
				return fmt.Errorf("cloud: bad segment: %w", err)
			}
			if err := ss.handleSegment(f, 0, false, seg); err != nil {
				return err
			}
		case backhaul.MsgSegmentSeq:
			if version < 2 {
				return fmt.Errorf("cloud: sequenced segment on a v%d session", version)
			}
			seq, seg, err := backhaul.DecodeSegmentSeq(payload)
			if err != nil {
				return fmt.Errorf("cloud: bad segment: %w", err)
			}
			if err := ss.handleSegment(f, seq, true, seg); err != nil {
				return err
			}
		case backhaul.MsgBye:
			// Drain before acknowledging: every admitted segment gets its
			// reply, then the bye confirms an orderly end of session.
			ss.seqr.Wait()
			if err := ss.writeErr(); err != nil {
				return err
			}
			return conn.SendBye()
		default:
			return fmt.Errorf("cloud: unexpected message type %d", typ)
		}
		if err := ss.writeErr(); err != nil {
			return err
		}
	}
}

// handleSegment routes one segment: inline decode when no farm is
// attached, otherwise farm admission with per-version overload behavior
// (v1 blocks for backpressure, v2 rejects with MsgBusy).
func (ss *session) handleSegment(f *farm.Farm, seq uint64, sequenced bool, seg backhaul.Segment) error {
	if f == nil {
		report, _, _ := ss.svc.decodeSegment(ss.ctx, seg)
		report.Seq = seq
		return ss.conn.SendFrames(report)
	}
	slot := ss.seqr.Reserve()
	deliver := func(res farm.Result) {
		ss.seqr.Deliver(slot, func() {
			ss.reply(seq, sequenced, seg, res)
		})
	}
	var err error
	if sequenced {
		err = f.TrySubmit(ss.ctx, seg, deliver)
	} else {
		err = f.Submit(ss.ctx, seg, deliver)
	}
	switch err {
	case nil:
		return nil
	case farm.ErrBusy:
		// Admission control said no: answer the slot with an explicit
		// reject so the gateway can retire the segment from its window.
		deliver(farm.Result{Err: err})
		return nil
	default:
		// Farm closed mid-session: release the slot and end the session.
		ss.seqr.Deliver(slot, func() {})
		return fmt.Errorf("cloud: decode farm unavailable: %w", err)
	}
}

// reply writes one segment's answer. Runs inside the sequencer, so replies
// leave in segment order and never interleave.
func (ss *session) reply(seq uint64, sequenced bool, seg backhaul.Segment, res farm.Result) {
	switch {
	case res.Err != nil && sequenced:
		ss.setWriteErr(ss.conn.SendBusy(seq))
	case res.Err != nil:
		// v1 has no busy vocabulary: an empty report keeps the
		// segment/report exchange balanced.
		ss.setWriteErr(ss.conn.SendFrames(backhaul.FramesReport{SegmentStart: seg.Start}))
	default:
		res.Report.Seq = seq
		ss.setWriteErr(ss.conn.SendFrames(res.Report))
	}
}

// Server is a TCP front for a Service.
type Server struct {
	Service *Service
	ln      net.Listener
	wg      sync.WaitGroup
}

// Listen starts accepting gateway connections on addr ("host:port";
// ":0" picks a free port). Use Addr to discover the bound address.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				if err := s.Service.ServeConn(conn); err != nil && s.Service.Logf != nil {
					s.Service.Logf("session error: %v", err)
				}
			}()
		}
	}()
	return nil
}

// Addr returns the listener's address, or nil before Listen.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener and waits for in-flight sessions; every segment
// admitted by those sessions has been answered when it returns. It does
// not drain the decode farm itself — call Service.Close after.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// StdLogf adapts the standard logger for Service.Logf.
func StdLogf(format string, args ...any) { log.Printf(format, args...) }
