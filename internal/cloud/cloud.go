// Package cloud implements GalioT's cloud decoder service: it receives
// detected I/Q segments from gateways over the backhaul protocol, runs the
// Algorithm-1 collision decoder (SIC wrapped around the kill filters) on
// each, and returns the recovered frames. The same decoding engine is
// exposed as a library (Service.DecodeSegment) and as a TCP server.
package cloud

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"repro/internal/backhaul"
	"repro/internal/cancel"
	"repro/internal/phy"
)

// Service decodes shipped segments.
type Service struct {
	Techs []phy.Technology
	// Logf receives per-segment diagnostics; nil silences them.
	Logf func(format string, args ...any)

	mu      sync.Mutex
	decoded int
	stats   cancel.Stats
}

// NewService returns a decoder service over the given technologies.
func NewService(techs []phy.Technology) *Service {
	return &Service{Techs: techs}
}

// DecodeSegment runs the collision decoder on one shipped segment and
// returns a report with absolute offsets.
func (s *Service) DecodeSegment(seg backhaul.Segment) backhaul.FramesReport {
	dec := cancel.NewDecoder(s.Techs, seg.SampleRate)
	frames, stats := dec.Decode(seg.Samples)
	report := backhaul.FramesReport{SegmentStart: seg.Start}
	for _, f := range frames {
		report.Frames = append(report.Frames, backhaul.FrameReport{
			Tech:    f.Tech,
			Payload: f.Payload,
			CRCOK:   f.CRCOK,
			Offset:  seg.Start + int64(f.Offset),
			SNRdB:   f.SNRdB,
		})
	}
	s.mu.Lock()
	s.decoded += len(frames)
	s.stats.SICRounds += stats.SICRounds
	s.stats.KillFreq += stats.KillFreq
	s.stats.KillCSS += stats.KillCSS
	s.stats.KillCodes += stats.KillCodes
	s.stats.FailedDecode += stats.FailedDecode
	s.mu.Unlock()
	if s.Logf != nil {
		s.Logf("segment @%d: %d samples -> %d frames (stats %+v)",
			seg.Start, len(seg.Samples), len(frames), stats)
	}
	return report
}

// Totals returns the cumulative frame count and decoder statistics.
func (s *Service) Totals() (int, cancel.Stats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.decoded, s.stats
}

// ServeConn handles one gateway session over a byte stream: hello,
// segments (each answered with a frames report), bye. It returns when the
// gateway says bye or the stream errors.
func (s *Service) ServeConn(rw io.ReadWriter) error {
	conn := backhaul.NewConn(rw)
	typ, payload, err := conn.ReadMessage()
	if err != nil {
		return err
	}
	if typ != backhaul.MsgHello {
		return fmt.Errorf("cloud: expected hello, got message type %d", typ)
	}
	hello, err := backhaul.ParseHello(payload)
	if err != nil {
		return fmt.Errorf("cloud: bad hello: %w", err)
	}
	if hello.Version != backhaul.Version {
		return fmt.Errorf("cloud: protocol version %d unsupported", hello.Version)
	}
	if s.Logf != nil {
		s.Logf("session from %s (fs=%.0f, techs=%v)", hello.GatewayID, hello.SampleRate, hello.Techs)
	}
	for {
		typ, payload, err := conn.ReadMessage()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		switch typ {
		case backhaul.MsgSegment:
			seg, err := backhaul.DecodeSegment(payload)
			if err != nil {
				return fmt.Errorf("cloud: bad segment: %w", err)
			}
			report := s.DecodeSegment(seg)
			if err := conn.SendFrames(report); err != nil {
				return err
			}
		case backhaul.MsgBye:
			return conn.SendBye()
		default:
			return fmt.Errorf("cloud: unexpected message type %d", typ)
		}
	}
}

// Server is a TCP front for a Service.
type Server struct {
	Service *Service
	ln      net.Listener
	wg      sync.WaitGroup
}

// Listen starts accepting gateway connections on addr ("host:port";
// ":0" picks a free port). Use Addr to discover the bound address.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				if err := s.Service.ServeConn(conn); err != nil && s.Service.Logf != nil {
					s.Service.Logf("session error: %v", err)
				}
			}()
		}
	}()
	return nil
}

// Addr returns the listener's address, or nil before Listen.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener and waits for in-flight sessions.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// StdLogf adapts the standard logger for Service.Logf.
func StdLogf(format string, args ...any) { log.Printf(format, args...) }
