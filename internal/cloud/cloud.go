// Package cloud implements GalioT's cloud decoder service: it receives
// detected I/Q segments from gateways over the backhaul protocol, runs the
// Algorithm-1 collision decoder (SIC wrapped around the kill filters) on
// each, and returns the recovered frames. The same decoding engine is
// exposed as a library (Service.DecodeSegment) and as a TCP server.
//
// Decoding scales across gateways through the decode farm (internal/farm):
// when a farm is attached with StartFarm, every session feeds the shared
// bounded queue and a fixed worker pool drains it, so one slow collision
// decode no longer stalls its whole gateway session. Sessions speaking
// backhaul protocol v2 pipeline sequence-numbered segments and receive
// explicit MsgBusy rejects under overload; v1 sessions are served unchanged
// (the farm applies backpressure by blocking their reads instead).
package cloud

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"sync"
	"time"

	"repro/internal/backhaul"
	"repro/internal/cancel"
	"repro/internal/farm"
	"repro/internal/obs"
	"repro/internal/phy"
)

// Service decodes shipped segments.
type Service struct {
	Techs []phy.Technology
	// Logf receives per-segment diagnostics; nil silences them.
	Logf func(format string, args ...any)

	mu   sync.Mutex
	pool *farm.DecoderPool
	farm *farm.Farm

	dedup dedupCache

	reg    *obs.Registry
	tracer *obs.Tracer
	m      cloudMetrics
}

// cloudMetrics is the service's registry-backed counter set; decodeSegment
// bumps these instead of a mutex-guarded totals struct, and Totals
// reconstructs the legacy views from them.
type cloudMetrics struct {
	segments   *obs.Counter            // cloud_segments_decoded_total
	frames     *obs.Counter            // cloud_frames_decoded_total
	sicRounds  *obs.Counter            // cloud_sic_rounds_total
	killFreq   *obs.Counter            // cloud_kill_freq_total
	killCSS    *obs.Counter            // cloud_kill_css_total
	killCodes  *obs.Counter            // cloud_kill_codes_total
	failed     *obs.Counter            // cloud_failed_decode_total
	duplicates *obs.Counter            // cloud_duplicates_total
	deduped    *obs.Counter            // cloud_segments_deduped_total
	dedupEvict *obs.Counter            // cloud_dedup_evictions_total (age-based)
	dedupSuper *obs.Counter            // cloud_dedup_superseded_total (epoch-superseded)
	techFrames map[string]*obs.Counter // per-technology decoded frames
}

func newCloudMetrics(reg *obs.Registry, techs []phy.Technology) cloudMetrics {
	m := cloudMetrics{
		segments:   reg.Counter("cloud_segments_decoded_total"),
		frames:     reg.Counter("cloud_frames_decoded_total"),
		sicRounds:  reg.Counter("cloud_sic_rounds_total"),
		killFreq:   reg.Counter("cloud_kill_freq_total"),
		killCSS:    reg.Counter("cloud_kill_css_total"),
		killCodes:  reg.Counter("cloud_kill_codes_total"),
		failed:     reg.Counter("cloud_failed_decode_total"),
		duplicates: reg.Counter("cloud_duplicates_total"),
		deduped:    reg.Counter("cloud_segments_deduped_total"),
		dedupEvict: reg.Counter("cloud_dedup_evictions_total"),
		dedupSuper: reg.Counter("cloud_dedup_superseded_total"),
		techFrames: make(map[string]*obs.Counter, len(techs)),
	}
	for _, t := range techs {
		name := t.Name()
		m.techFrames[name] = reg.Counter("cloud_frames_" + obs.SanitizeToken(name) + "_total")
	}
	return m
}

// NewService returns a decoder service over the given technologies.
func NewService(techs []phy.Technology) *Service {
	s := &Service{Techs: techs}
	s.pool = &farm.DecoderPool{New: func(fs float64) *cancel.Decoder {
		return cancel.NewDecoder(s.Techs, fs)
	}}
	s.reg = obs.NewRegistry()
	s.m = newCloudMetrics(s.reg, techs)
	s.dedup.setEvictions(s.m.dedupEvict)
	return s
}

// UseObs rewires the service onto a shared registry (and optional tracer):
// the cloud_* counters move to reg, and per-segment spans are opened on tr.
// Call before serving traffic — metric values recorded on the private
// registry do not migrate.
func (s *Service) UseObs(reg *obs.Registry, tr *obs.Tracer) {
	if reg != nil {
		s.reg = reg
		s.m = newCloudMetrics(reg, s.Techs)
		s.dedup.setEvictions(s.m.dedupEvict)
	}
	s.tracer = tr
}

// SetDedupTTL age-bounds the replay dedup cache: entries older than ttl
// are evicted lazily and counted on cloud_dedup_evictions_total. The clock
// is injected (pass time.Now; the service never reads the wall clock
// itself). A zero ttl or nil clock leaves the cache purely count-bound.
func (s *Service) SetDedupTTL(ttl time.Duration, now func() time.Time) {
	s.dedup.setTTL(ttl, now, s.m.dedupEvict)
}

// Registry exposes the service's metric registry (the private one, or
// whatever UseObs installed), for the obs HTTP server and shutdown dumps.
func (s *Service) Registry() *obs.Registry { return s.reg }

// StartFarm attaches a decode farm: ServeConn sessions stop decoding
// inline and submit to the shared worker pool instead. cfg.Decode is
// supplied by the service unless the caller overrides it (tests do, to
// inject slow or failing decoders). Returns the farm; Close (or
// farm.Close) drains it.
func (s *Service) StartFarm(cfg farm.Config) *farm.Farm {
	if cfg.Decode == nil {
		cfg.Decode = s.decodeSegment
	}
	if cfg.Obs == nil {
		cfg.Obs = s.reg // farm_* metrics land next to the cloud_* series
	}
	f := farm.New(cfg)
	s.mu.Lock()
	s.farm = f
	s.mu.Unlock()
	return f
}

// DecodeFunc returns the service's own farm decode function (pooled
// decoder plus registry accounting), so callers assembling a farm.Config
// themselves — the sharded front tier, load harnesses — can wrap the real
// decoder instead of replacing it.
func (s *Service) DecodeFunc() farm.DecodeFunc { return s.decodeSegment }

// Farm returns the attached decode farm, or nil.
func (s *Service) Farm() *farm.Farm {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.farm
}

// Close drains the attached farm, if any: intake stops, every admitted
// segment finishes, then Close returns. Call after Server.Close.
func (s *Service) Close() {
	if f := s.Farm(); f != nil {
		f.Close()
	}
}

// DecodeSegment runs the collision decoder on one shipped segment and
// returns a report with absolute offsets. The decoder bank is drawn from a
// pool keyed by sample rate, not rebuilt per segment.
func (s *Service) DecodeSegment(seg backhaul.Segment) backhaul.FramesReport {
	report, _, _ := s.decodeSegment(context.Background(), seg)
	return report
}

// decodeSegment is the farm DecodeFunc: pooled decoder, registry
// accounting, per-segment diagnostics. A trace span riding on ctx (placed
// there by handleSegment) collects the decode and SIC stages.
func (s *Service) decodeSegment(ctx context.Context, seg backhaul.Segment) (backhaul.FramesReport, cancel.Stats, error) {
	sp := obs.SpanFromContext(ctx)
	dec := s.pool.Get(seg.SampleRate)
	tDecode := sp.Now()
	frames, stats := dec.DecodeTraced(seg.Samples, sp)
	sp.Stage("decode", sp.Now()-tDecode, float64(len(frames)))
	s.pool.Put(dec)
	report := backhaul.FramesReport{SegmentStart: seg.Start}
	for _, f := range frames {
		report.Frames = append(report.Frames, backhaul.FrameReport{
			Tech:    f.Tech,
			Payload: f.Payload,
			CRCOK:   f.CRCOK,
			Offset:  seg.Start + int64(f.Offset),
			SNRdB:   f.SNRdB,
		})
		if c, ok := s.m.techFrames[f.Tech]; ok {
			c.Inc()
		}
	}
	s.m.segments.Inc()
	s.m.frames.Add(uint64(len(frames)))
	s.m.sicRounds.Add(uint64(stats.SICRounds))
	s.m.killFreq.Add(uint64(stats.KillFreq))
	s.m.killCSS.Add(uint64(stats.KillCSS))
	s.m.killCodes.Add(uint64(stats.KillCodes))
	s.m.failed.Add(uint64(stats.FailedDecode))
	s.m.duplicates.Add(uint64(stats.Duplicates))
	if s.Logf != nil {
		s.Logf("segment @%d: %d samples -> %d frames (stats %+v)",
			seg.Start, len(seg.Samples), len(frames), stats)
	}
	return report, stats, nil
}

// Totals returns the cumulative frame count, decoder statistics, and a
// snapshot of the decode farm (zero when no farm is attached). The values
// are reconstructed from the metric registry, so Totals, /metrics and the
// shutdown dump always agree.
func (s *Service) Totals() (int, cancel.Stats, farm.Stats) {
	var fs farm.Stats
	if f := s.Farm(); f != nil {
		fs = f.Snapshot()
	}
	st := cancel.Stats{
		SICRounds:    int(s.m.sicRounds.Value()),
		KillFreq:     int(s.m.killFreq.Value()),
		KillCSS:      int(s.m.killCSS.Value()),
		KillCodes:    int(s.m.killCodes.Value()),
		FailedDecode: int(s.m.failed.Value()),
		Duplicates:   int(s.m.duplicates.Value()),
	}
	return int(s.m.frames.Value()), st, fs
}

// session carries the per-connection state of one ServeConn call.
type session struct {
	svc     *Service
	conn    *backhaul.Conn
	version int
	ctx     context.Context
	dedup   *sessionDedup // nil when the hello carried no epoch

	seqr farm.Sequencer
	wmu  sync.Mutex // guards writeErr (writes themselves serialize in seqr)
	werr error
}

// setWriteErr records the first reply-write failure; the read loop
// surfaces it.
func (ss *session) setWriteErr(err error) {
	if err == nil {
		return
	}
	ss.wmu.Lock()
	if ss.werr == nil {
		ss.werr = err
	}
	ss.wmu.Unlock()
}

func (ss *session) writeErr() error {
	ss.wmu.Lock()
	defer ss.wmu.Unlock()
	return ss.werr
}

// ReadHello consumes and parses the opening hello of a gateway session.
// A front tier uses it to learn the session's routing key (gateway ID,
// epoch) before deciding which decode shard serves the connection; the
// shard then continues with ServeHello.
func ReadHello(conn *backhaul.Conn) (backhaul.Hello, error) {
	typ, payload, err := conn.ReadMessage()
	if err != nil {
		return backhaul.Hello{}, err
	}
	if typ != backhaul.MsgHello {
		return backhaul.Hello{}, fmt.Errorf("cloud: expected hello, got message type %d", typ)
	}
	hello, err := backhaul.ParseHello(payload)
	if err != nil {
		return backhaul.Hello{}, fmt.Errorf("cloud: bad hello: %w", err)
	}
	return hello, nil
}

// ServeConn handles one gateway session over a byte stream: hello (with
// version negotiation), segments, bye. v1 gateways get one synchronous
// frames report per segment; v2 gateways pipeline sequence-numbered
// segments and get per-segment frames reports or busy rejects, always in
// segment order. It returns when the gateway says bye or the stream
// errors; on bye, every admitted segment has been answered first.
func (s *Service) ServeConn(rw io.ReadWriter) error {
	conn := backhaul.NewConn(rw)
	conn.SetMetrics(backhaul.NewConnMetrics(s.reg))
	hello, err := ReadHello(conn)
	if err != nil {
		return err
	}
	return s.ServeHello(conn, hello, backhaul.HelloAck{})
}

// ServeHello serves a session whose hello has already been consumed from
// conn (see ReadHello). hint seeds the v2 hello ack: a sharded front tier
// passes its aggregate-capacity fields (Shards, Capacity) and may pin
// Window/Workers; zero hint fields are filled from this service's farm,
// and Version always comes from negotiation. The caller keeps ownership
// of conn's metrics wiring.
func (s *Service) ServeHello(conn *backhaul.Conn, hello backhaul.Hello, hint backhaul.HelloAck) error {
	version, err := backhaul.Negotiate(hello.Version)
	if err != nil {
		return fmt.Errorf("cloud: %w", err)
	}
	f := s.Farm()
	if version >= 2 {
		ack := hint
		ack.Version = version
		if f != nil && (ack.Window == 0 || ack.Workers == 0) {
			snap := f.Snapshot()
			if ack.Window == 0 {
				ack.Window = snap.QueueDepth
			}
			if ack.Workers == 0 {
				ack.Workers = snap.Workers
			}
		}
		if err := conn.SendHelloAck(ack); err != nil {
			return err
		}
	}
	if s.Logf != nil {
		s.Logf("session from %s (v%d, fs=%.0f, techs=%v)", hello.GatewayID, version, hello.SampleRate, hello.Techs)
	}
	// The session context cancels when ServeConn returns: queued jobs of a
	// dead session are skipped by the farm instead of decoded into the void.
	ctx, cancelSession := context.WithCancel(context.Background())
	defer cancelSession()
	ss := &session{svc: s, conn: conn, version: version, ctx: ctx}
	if hello.Epoch != 0 {
		// An epoch-bearing gateway replays its unacked window after every
		// reconnect; remembering decoded reports per (gateway, epoch,
		// start) answers those replays without re-decoding. A fresh epoch
		// supersedes the gateway's older ones: it announces a restart, so
		// entries cached under dead epochs are unreachable and dropped.
		s.m.dedupSuper.Add(s.dedup.supersede(hello.GatewayID, hello.Epoch))
		ss.dedup = &sessionDedup{c: &s.dedup, gateway: hello.GatewayID, epoch: hello.Epoch}
	}
	for {
		typ, payload, err := conn.ReadMessage()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return ss.writeErr()
			}
			return err
		}
		switch typ {
		case backhaul.MsgSegment:
			seg, err := backhaul.DecodeSegment(payload)
			if err != nil {
				return fmt.Errorf("cloud: bad segment: %w", err)
			}
			if err := ss.handleSegment(f, 0, false, seg); err != nil {
				return err
			}
		case backhaul.MsgSegmentSeq:
			if version < 2 {
				return fmt.Errorf("cloud: sequenced segment on a v%d session", version)
			}
			seq, seg, err := backhaul.DecodeSegmentSeq(payload)
			if err != nil {
				return fmt.Errorf("cloud: bad segment: %w", err)
			}
			if err := ss.handleSegment(f, seq, true, seg); err != nil {
				return err
			}
		case backhaul.MsgBye:
			// Drain before acknowledging: every admitted segment gets its
			// reply, then the bye confirms an orderly end of session.
			ss.seqr.Wait()
			if err := ss.writeErr(); err != nil {
				return err
			}
			return conn.SendBye()
		default:
			return fmt.Errorf("cloud: unexpected message type %d", typ)
		}
		if err := ss.writeErr(); err != nil {
			return err
		}
	}
}

// handleSegment routes one segment: inline decode when no farm is
// attached, otherwise farm admission with per-version overload behavior
// (v1 blocks for backpressure, v2 rejects with MsgBusy).
func (ss *session) handleSegment(f *farm.Farm, seq uint64, sequenced bool, seg backhaul.Segment) error {
	// The cloud-side span joins the trace the gateway minted: a v3 segment
	// carries its trace ID and the shipping span's ID in the wire trace
	// context, so this span stitches under the gateway's as a true child.
	// Pre-v3 segments (no context) fall back to the implicit correlation by
	// absolute start sample, exactly as before.
	traceID, parent := seg.Trace, seg.Parent
	if traceID == 0 {
		traceID = obs.SegmentTraceID(seg.Start)
	}
	sp := ss.svc.tracer.StartChild("cloud-segment", traceID, parent)
	ctx := obs.ContextWithSpan(ss.ctx, sp)
	if ss.dedup != nil {
		if rep, ok := ss.dedup.get(seg.Start); ok {
			// Replay of an already-decoded segment (same gateway, same
			// epoch): answer from cache so it is decoded exactly once.
			ss.svc.m.deduped.Inc()
			sp.Stage("dedup_hit", 0, float64(len(rep.Frames)))
			if f == nil {
				rep.Seq = seq
				err := ss.conn.SendFrames(rep)
				sp.End()
				return err
			}
			slot := ss.seqr.Reserve()
			ss.seqr.Deliver(slot, func() {
				ss.reply(seq, sequenced, seg, farm.Result{Report: rep})
				sp.End()
			})
			return nil
		}
	}
	if f == nil {
		report, _, _ := ss.svc.decodeSegment(ctx, seg)
		if ss.dedup != nil {
			ss.dedup.put(seg.Start, report)
		}
		report.Seq = seq
		err := ss.conn.SendFrames(report)
		sp.End()
		return err
	}
	slot := ss.seqr.Reserve()
	deliver := func(res farm.Result) {
		if res.Err == nil && ss.dedup != nil {
			ss.dedup.put(seg.Start, res.Report)
		}
		ss.seqr.Deliver(slot, func() {
			ss.reply(seq, sequenced, seg, res)
			sp.End()
		})
	}
	var err error
	if sequenced {
		err = f.TrySubmit(ctx, seg, deliver)
	} else {
		err = f.Submit(ctx, seg, deliver)
	}
	switch err {
	case nil:
		return nil
	case farm.ErrBusy:
		// Admission control said no: answer the slot with an explicit
		// reject so the gateway can retire the segment from its window.
		sp.Stage("busy_reject", 0, 0)
		deliver(farm.Result{Err: err})
		return nil
	default:
		// Farm closed mid-session: release the slot and end the session.
		ss.seqr.Deliver(slot, func() {})
		sp.End()
		return fmt.Errorf("cloud: decode farm unavailable: %w", err)
	}
}

// reply writes one segment's answer. Runs inside the sequencer, so replies
// leave in segment order and never interleave.
func (ss *session) reply(seq uint64, sequenced bool, seg backhaul.Segment, res farm.Result) {
	switch {
	case res.Err != nil && sequenced:
		ss.setWriteErr(ss.conn.SendBusy(seq))
	case res.Err != nil:
		// v1 has no busy vocabulary: an empty report keeps the
		// segment/report exchange balanced.
		ss.setWriteErr(ss.conn.SendFrames(backhaul.FramesReport{SegmentStart: seg.Start}))
	default:
		res.Report.Seq = seq
		ss.setWriteErr(ss.conn.SendFrames(res.Report))
	}
}

// StdLogf adapts the standard logger for Service.Logf.
func StdLogf(format string, args ...any) { log.Printf(format, args...) }
