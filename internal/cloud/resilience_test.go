package cloud

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backhaul"
	"repro/internal/cancel"
	"repro/internal/farm"
)

// helloEpoch performs the v2 handshake with an explicit epoch.
func helloEpoch(t *testing.T, conn *backhaul.Conn, id string, epoch uint64) {
	t.Helper()
	err := conn.SendHello(backhaul.Hello{Version: backhaul.Version, GatewayID: id, SampleRate: fs, Epoch: epoch})
	if err != nil {
		t.Fatal(err)
	}
	typ, _, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if typ != backhaul.MsgHelloAck {
		t.Fatalf("expected hello ack, got message type %d", typ)
	}
}

// TestDedupAnswersReplayFromCache replays one segment on an epoch-bearing
// session (as a reconnecting gateway does) and checks it is decoded exactly
// once: the replay must be answered from cache, with the same frames, and
// counted on cloud_segments_deduped_total.
func TestDedupAnswersReplayFromCache(t *testing.T) {
	svc := NewService(techs())
	var decodes atomic.Uint64
	svc.StartFarm(farm.Config{Workers: 1, QueueDepth: 4, Decode: func(ctx context.Context, seg backhaul.Segment) (backhaul.FramesReport, cancel.Stats, error) {
		decodes.Add(1)
		return backhaul.FramesReport{
			SegmentStart: seg.Start,
			Frames:       []backhaul.FrameReport{{Tech: "xbee", Payload: []byte("cached"), CRCOK: true, Offset: seg.Start}},
		}, cancel.Stats{}, nil
	}})
	defer svc.Close()

	a, b := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- svc.ServeConn(b) }()
	conn := backhaul.NewConn(a)
	helloEpoch(t, conn, "gw-dedup", 7)

	seg := backhaul.Segment{Start: 4200, SampleRate: fs, Samples: make([]complex128, 64)}
	// The same segment twice with fresh sequence numbers — exactly what a
	// reconnect replay looks like from the cloud's side of one session.
	// Reading each reply before the next send serializes the replay behind
	// the first decode (a real replay arrives a whole reconnect later):
	// the cloud caches the report before writing the reply, so once reply
	// 0 is on the wire the replay must hit the cache.
	var replies []sessionReply
	for seq := uint64(0); seq < 2; seq++ {
		if _, err := conn.SendSegmentSeq(backhaul.DefaultCodec, seq, seg); err != nil {
			t.Fatal(err)
		}
		typ, payload, err := conn.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		if typ != backhaul.MsgFrames {
			t.Fatalf("reply %d: unexpected message type %d", seq, typ)
		}
		report, err := backhaul.ParseFrames(payload)
		if err != nil {
			t.Fatal(err)
		}
		replies = append(replies, sessionReply{seq: report.Seq, report: report})
	}
	if err := conn.SendBye(); err != nil {
		t.Fatal(err)
	}
	if rest, err := readV2Replies(conn); err != nil || len(rest) != 0 {
		t.Fatalf("after bye: %d extra replies, err %v", len(rest), err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(replies) != 2 {
		t.Fatalf("got %d replies, want 2", len(replies))
	}
	for i, r := range replies {
		if r.busy {
			t.Fatalf("reply %d is busy", i)
		}
		if r.seq != uint64(i) {
			t.Fatalf("reply %d has seq %d", i, r.seq)
		}
		if len(r.report.Frames) != 1 || string(r.report.Frames[0].Payload) != "cached" {
			t.Fatalf("reply %d report %+v", i, r.report)
		}
	}
	if n := decodes.Load(); n != 1 {
		t.Fatalf("segment decoded %d times, want 1", n)
	}
	if n := svc.Registry().Counter("cloud_segments_deduped_total").Value(); n != 1 {
		t.Fatalf("deduped = %d, want 1", n)
	}
}

// TestDedupDisabledWithoutEpoch: a legacy gateway (no epoch in hello) gets
// no dedup — the cloud must decode every arrival.
func TestDedupDisabledWithoutEpoch(t *testing.T) {
	svc := NewService(techs())
	var decodes atomic.Uint64
	svc.StartFarm(farm.Config{Workers: 1, QueueDepth: 4, Decode: func(ctx context.Context, seg backhaul.Segment) (backhaul.FramesReport, cancel.Stats, error) {
		decodes.Add(1)
		return backhaul.FramesReport{SegmentStart: seg.Start}, cancel.Stats{}, nil
	}})
	defer svc.Close()

	a, b := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- svc.ServeConn(b) }()
	conn := backhaul.NewConn(a)
	helloEpoch(t, conn, "gw-legacy", 0)
	readErr := make(chan error, 1)
	go func() {
		_, err := readV2Replies(conn)
		readErr <- err
	}()
	seg := backhaul.Segment{Start: 4200, SampleRate: fs, Samples: make([]complex128, 64)}
	for seq := uint64(0); seq < 2; seq++ {
		if _, err := conn.SendSegmentSeq(backhaul.DefaultCodec, seq, seg); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.SendBye(); err != nil {
		t.Fatal(err)
	}
	if err := <-readErr; err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if n := decodes.Load(); n != 2 {
		t.Fatalf("segment decoded %d times, want 2 without an epoch", n)
	}
	if n := svc.Registry().Counter("cloud_segments_deduped_total").Value(); n != 0 {
		t.Fatalf("deduped = %d, want 0", n)
	}
}

func TestDedupCacheEvictsOldestFirst(t *testing.T) {
	c := &dedupCache{size: 2}
	k := func(start int64) dedupKey { return dedupKey{gateway: "gw", epoch: 1, start: start} }
	for start := int64(0); start < 3; start++ {
		c.put(k(start), backhaul.FramesReport{SegmentStart: start})
	}
	if _, ok := c.get(k(0)); ok {
		t.Fatal("oldest entry survived past capacity")
	}
	for start := int64(1); start < 3; start++ {
		rep, ok := c.get(k(start))
		if !ok || rep.SegmentStart != start {
			t.Fatalf("entry %d missing after eviction", start)
		}
	}
	// Re-putting an existing key must not evict anything.
	c.put(k(2), backhaul.FramesReport{SegmentStart: 99})
	if rep, ok := c.get(k(2)); !ok || rep.SegmentStart != 2 {
		t.Fatal("duplicate put replaced the cached report")
	}
}

// TestServerReapsIdleSessions connects a gateway that never speaks: the
// reaper must close its connection after SessionTimeout of silence and
// count it, without touching an active listener.
func TestServerReapsIdleSessions(t *testing.T) {
	svc := NewService(techs())
	srv := &Server{Service: svc, SessionTimeout: 40 * time.Millisecond}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing. The cloud's hello read must be cut by the reaper.
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection still alive: read returned data")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if n := svc.Registry().Counter("cloud_sessions_reaped_total").Value(); n != 1 {
		t.Fatalf("reaped = %d, want 1", n)
	}
}

// flakyListener scripts Accept: transient failures, then real
// connections, then a closed listener.
type flakyListener struct {
	mu       sync.Mutex
	failures int
	conns    []net.Conn
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failures > 0 {
		l.failures--
		return nil, errors.New("accept: too many open files")
	}
	if len(l.conns) > 0 {
		c := l.conns[0]
		l.conns = l.conns[1:]
		return c, nil
	}
	return nil, net.ErrClosed
}

func (l *flakyListener) Close() error   { return nil }
func (l *flakyListener) Addr() net.Addr { return &net.TCPAddr{} }

// TestServeRetriesTransientAcceptErrors: transient Accept failures must be
// counted and retried, not kill the accept loop; a closed listener must
// end Serve cleanly.
func TestServeRetriesTransientAcceptErrors(t *testing.T) {
	svc := NewService(techs())
	srv := &Server{Service: svc}
	a, b := net.Pipe()
	ln := &flakyListener{failures: 3, conns: []net.Conn{b}}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	// The connection survives the accept failures that preceded it.
	conn := backhaul.NewConn(a)
	helloEpoch(t, conn, "gw-flaky", 1)
	if err := conn.SendBye(); err != nil {
		t.Fatal(err)
	}
	if _, err := readV2Replies(conn); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if n := svc.Registry().Counter("cloud_accept_retries_total").Value(); n != 3 {
		t.Fatalf("accept retries = %d, want 3", n)
	}
}
