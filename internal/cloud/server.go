package cloud

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// Server is a TCP front for a Service (or any session handler). The zero
// value plus a Service is ready to Listen; the timeout fields opt into the
// robustness features.
type Server struct {
	Service *Service
	// Handler, when set, serves each accepted session instead of
	// Service.ServeConn. A sharded front tier (internal/fleet) plugs in
	// here; Service may then be nil as long as Obs is set.
	Handler func(rw io.ReadWriter) error
	// Obs overrides the registry the server's own metrics land on
	// (cloud_accept_retries_total, cloud_sessions_reaped_total,
	// cloud_sessions_active_count). Nil uses Service.Registry().
	Obs *obs.Registry
	// Logf overrides the server's diagnostics sink. Nil uses Service.Logf
	// (or silence when Service is nil too).
	Logf func(format string, args ...any)
	// Journal, when set, records a cloud_session_reap event (value: the
	// session's total bytes moved) every time the idle sweeper closes a
	// connection.
	Journal *obs.Journal
	// SessionTimeout reaps sessions that moved no bytes in either
	// direction for at least this long: their connections are closed,
	// which unwinds ServeConn and releases the session's farm slots.
	// Zero disables the reaper.
	SessionTimeout time.Duration
	// ReadTimeout / WriteTimeout bound each read/write on accepted
	// connections, so one stalled gateway cannot pin a session goroutine
	// forever on a half-dead link. Zero disables the respective deadline.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration

	ln        net.Listener
	wg        sync.WaitGroup
	reapOnce  sync.Once
	quit      chan struct{}
	sessionMu sync.Mutex
	sessions  []*trackedConn
}

// registry resolves where the server's own metrics go.
func (s *Server) registry() *obs.Registry {
	if s.Obs != nil {
		return s.Obs
	}
	return s.Service.Registry()
}

// logf resolves the diagnostics sink; may return nil (silent).
func (s *Server) logf() func(format string, args ...any) {
	if s.Logf != nil {
		return s.Logf
	}
	if s.Service != nil {
		return s.Service.Logf
	}
	return nil
}

// handle serves one accepted session.
func (s *Server) handle(rw io.ReadWriter) error {
	if s.Handler != nil {
		return s.Handler(rw)
	}
	return s.Service.ServeConn(rw)
}

// trackedConn counts bytes moved in either direction so the reaper can
// tell an idle session from a busy one without touching session state.
type trackedConn struct {
	net.Conn
	activity atomic.Uint64 // bytes read + written

	// Reaper-private sweep state, guarded by Server.sessionMu.
	lastSeen uint64
	idle     int
	reaped   bool
}

func (c *trackedConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.activity.Add(uint64(n))
	return n, err
}

func (c *trackedConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.activity.Add(uint64(n))
	return n, err
}

// Listen starts accepting gateway connections on addr ("host:port";
// ":0" picks a free port) in the background. Use Addr to discover the
// bound address and Close to stop.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.Serve(ln)
	}()
	return nil
}

// Serve accepts gateway sessions on ln until the listener is closed.
// Transient Accept failures (resource exhaustion, aborted handshakes) are
// logged, counted on cloud_accept_retries_total, and retried with capped
// exponential backoff instead of killing the accept loop; a closed
// listener returns nil. Callers who bring their own listener use Serve
// directly; Listen wraps it.
func (s *Server) Serve(ln net.Listener) error {
	if s.ln == nil {
		s.ln = ln
	}
	s.startReaper()
	reg := s.registry()
	retries := reg.Counter("cloud_accept_retries_total")
	active := reg.Gauge("cloud_sessions_active_count")
	logf := s.logf()
	const minDelay, maxDelay = 5 * time.Millisecond, 500 * time.Millisecond
	delay := minDelay
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			retries.Inc()
			if logf != nil {
				logf("accept failed (retrying in %v): %v", delay, err)
			}
			time.Sleep(delay)
			if delay *= 2; delay > maxDelay {
				delay = maxDelay
			}
			continue
		}
		delay = minDelay
		tc := &trackedConn{Conn: conn}
		s.register(tc, active)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.unregister(tc, active)
			defer tc.Close()
			rw := resilience.WithDeadlines(tc, s.ReadTimeout, s.WriteTimeout)
			if err := s.handle(rw); err != nil && logf != nil {
				logf("session error: %v", err)
			}
		}()
	}
}

func (s *Server) register(c *trackedConn, active *obs.Gauge) {
	s.sessionMu.Lock()
	s.sessions = append(s.sessions, c)
	active.Set(int64(len(s.sessions)))
	s.sessionMu.Unlock()
}

func (s *Server) unregister(c *trackedConn, active *obs.Gauge) {
	s.sessionMu.Lock()
	for i, sc := range s.sessions {
		if sc == c {
			s.sessions = append(s.sessions[:i], s.sessions[i+1:]...)
			break
		}
	}
	active.Set(int64(len(s.sessions)))
	s.sessionMu.Unlock()
}

// startReaper launches the idle-session sweeper once, when SessionTimeout
// is set: every SessionTimeout/4 it snapshots each session's byte counter,
// and a session whose counter is unchanged for four consecutive sweeps
// (≥ SessionTimeout of silence) has its connection closed and is counted
// on cloud_sessions_reaped_total.
func (s *Server) startReaper() {
	if s.SessionTimeout <= 0 {
		return
	}
	s.reapOnce.Do(func() {
		quit := make(chan struct{})
		s.sessionMu.Lock()
		s.quit = quit
		s.sessionMu.Unlock()
		tick := s.SessionTimeout / 4
		if tick <= 0 {
			tick = time.Millisecond
		}
		reaped := s.registry().Counter("cloud_sessions_reaped_total")
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-quit:
					return
				case <-t.C:
					s.sweep(reaped)
				}
			}
		}()
	})
}

// sweep is one reaper pass over the live sessions.
func (s *Server) sweep(reaped *obs.Counter) {
	s.sessionMu.Lock()
	defer s.sessionMu.Unlock()
	for _, c := range s.sessions {
		if c.reaped {
			continue
		}
		if a := c.activity.Load(); a != c.lastSeen {
			c.lastSeen = a
			c.idle = 0
			continue
		}
		c.idle++
		if c.idle < 4 {
			continue
		}
		c.reaped = true
		reaped.Inc()
		s.Journal.Record("cloud_session_reap", int64(c.lastSeen))
		if logf := s.logf(); logf != nil {
			logf("reaping idle session after %v of silence", s.SessionTimeout)
		}
		// Closing the connection fails the session's blocked read, which
		// unwinds its goroutine; the close error (if any) is irrelevant
		// because the session is being discarded.
		_ = c.Conn.Close()
	}
}

// Addr returns the listener's address, or nil before Listen.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener and the reaper and waits for in-flight
// sessions; every segment admitted by those sessions has been answered
// when it returns. It does not drain the decode farm itself — call
// Service.Close after.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	err := s.ln.Close()
	s.sessionMu.Lock()
	if s.quit != nil {
		close(s.quit)
		s.quit = nil
	}
	s.sessionMu.Unlock()
	s.wg.Wait()
	return err
}
