package cloud

import (
	"sync"

	"repro/internal/backhaul"
)

// DefaultDedupCapacity bounds the replay-deduplication cache: the number
// of decoded segment reports remembered across all gateways and epochs.
const DefaultDedupCapacity = 4096

// dedupKey identifies one decoded segment for replay deduplication. The
// gateway's epoch is part of the key so a restarted gateway (new epoch)
// re-decodes everything, while a reconnecting one (same epoch) gets its
// replayed window answered from cache.
type dedupKey struct {
	gateway string
	epoch   uint64
	start   int64
}

// dedupCache is a bounded FIFO map from decoded segments to their frames
// reports. A reconnecting v2 gateway replays its unacknowledged window
// after every flap; serving those replays from cache keeps the decode farm
// off the hook and guarantees each segment is decoded exactly once per
// epoch. Eviction is oldest-insertion-first via a fixed ring, so the cache
// never grows past its capacity no matter how long the service runs.
type dedupCache struct {
	mu   sync.Mutex
	size int
	m    map[dedupKey]backhaul.FramesReport
	ring []dedupKey
	next int // ring slot of the next insert; when full, also the oldest key
}

func (c *dedupCache) get(k dedupKey) (backhaul.FramesReport, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep, ok := c.m[k]
	return rep, ok
}

func (c *dedupCache) put(k dedupKey, rep backhaul.FramesReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.size <= 0 {
		c.size = DefaultDedupCapacity
	}
	if c.m == nil {
		c.m = make(map[dedupKey]backhaul.FramesReport, c.size)
		c.ring = make([]dedupKey, c.size)
	}
	if _, ok := c.m[k]; ok {
		return
	}
	if len(c.m) == c.size {
		delete(c.m, c.ring[c.next])
	}
	c.ring[c.next] = k
	c.m[k] = rep
	c.next = (c.next + 1) % c.size
}

// sessionDedup is the cache scoped to one session's gateway identity and
// epoch. Nil when the gateway's hello carried no epoch (dedup disabled).
type sessionDedup struct {
	c       *dedupCache
	gateway string
	epoch   uint64
}

func (d *sessionDedup) get(start int64) (backhaul.FramesReport, bool) {
	return d.c.get(dedupKey{gateway: d.gateway, epoch: d.epoch, start: start})
}

func (d *sessionDedup) put(start int64, rep backhaul.FramesReport) {
	d.c.put(dedupKey{gateway: d.gateway, epoch: d.epoch, start: start}, rep)
}
