package cloud

import (
	"sync"
	"time"

	"repro/internal/backhaul"
	"repro/internal/obs"
)

// DefaultDedupCapacity bounds the replay-deduplication cache: the number
// of decoded segment reports remembered across all gateways and epochs.
const DefaultDedupCapacity = 4096

// dedupKey identifies one decoded segment for replay deduplication. The
// gateway's epoch is part of the key so a restarted gateway (new epoch)
// re-decodes everything, while a reconnecting one (same epoch) gets its
// replayed window answered from cache.
type dedupKey struct {
	gateway string
	epoch   uint64
	start   int64
}

// dedupValue is a cached report plus its insertion time (zero when the
// cache has no clock). The timestamp doubles as a liveness token: a FIFO
// entry is live iff its timestamp matches the map's.
type dedupValue struct {
	rep backhaul.FramesReport
	at  int64 // c.now() at insertion, UnixNano
}

// dedupEntry is one insertion-order record.
type dedupEntry struct {
	key dedupKey
	at  int64
}

// dedupCache is a bounded FIFO map from decoded segments to their frames
// reports. A reconnecting v2 gateway replays its unacknowledged window
// after every flap; serving those replays from cache keeps the decode farm
// off the hook and guarantees each segment is decoded exactly once per
// epoch.
//
// Two bounds apply. The count bound (size, default DefaultDedupCapacity)
// always holds: eviction is oldest-insertion-first. The age bound is
// optional: when ttl > 0 and a clock is injected (setTTL — the cache never
// reads the wall clock itself, per the determinism rules), entries older
// than ttl are dropped lazily on get/put and counted on the evictions
// counter. A replay that outlives the ttl is simply re-decoded, so staying
// lazy (no sweeper goroutine) is safe; what the ttl buys is that a
// long-idle cloud does not pin up to 4096 stale reports' payloads forever.
type dedupCache struct {
	mu        sync.Mutex
	size      int
	ttl       time.Duration
	now       func() time.Time
	evictions *obs.Counter // age-based evictions only (nil-safe)
	m         map[dedupKey]dedupValue
	fifo      []dedupEntry // insertion order; may hold stale entries
	head      int          // index of the oldest fifo entry
}

// setTTL installs the age bound and its clock. A zero ttl or nil clock
// disables aging (the cache stays purely count-bound). Callers may swap
// the evictions counter at the same time; nil detaches it.
func (c *dedupCache) setTTL(ttl time.Duration, now func() time.Time, evictions *obs.Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ttl <= 0 || now == nil {
		c.ttl, c.now = 0, nil
	} else {
		c.ttl, c.now = ttl, now
	}
	c.evictions = evictions
}

// setEvictions re-points the age-eviction counter (UseObs moves the cloud
// metrics to a shared registry after construction).
func (c *dedupCache) setEvictions(ctr *obs.Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictions = ctr
}

// clock returns the current time in UnixNano, or 0 when aging is off.
// Callers hold c.mu.
func (c *dedupCache) clock() int64 {
	if c.now == nil {
		return 0
	}
	return c.now().UnixNano()
}

// expire drops every live entry older than the ttl, walking from the FIFO
// head. Callers hold c.mu.
func (c *dedupCache) expire(nowNanos int64) {
	if c.ttl <= 0 || nowNanos == 0 {
		return
	}
	cutoff := nowNanos - int64(c.ttl)
	for c.head < len(c.fifo) {
		e := c.fifo[c.head]
		if v, ok := c.m[e.key]; ok && v.at == e.at {
			if e.at > cutoff {
				break // FIFO order == insertion-time order; the rest is younger
			}
			delete(c.m, e.key)
			c.evictions.Inc()
		}
		// Stale entry (already evicted or re-inserted later): just skip it.
		c.fifo[c.head] = dedupEntry{}
		c.head++
	}
	c.compact()
}

// evictOldest removes the oldest live entry to make room. Callers hold
// c.mu and have checked len(c.m) > 0.
func (c *dedupCache) evictOldest() {
	for c.head < len(c.fifo) {
		e := c.fifo[c.head]
		c.fifo[c.head] = dedupEntry{}
		c.head++
		if v, ok := c.m[e.key]; ok && v.at == e.at {
			delete(c.m, e.key)
			c.compact()
			return
		}
	}
}

// compact reclaims the consumed FIFO prefix once it dominates the slice,
// keeping the amortized cost of head advancement O(1) per insertion.
func (c *dedupCache) compact() {
	if c.head > len(c.fifo)/2 && c.head > 16 {
		n := copy(c.fifo, c.fifo[c.head:])
		c.fifo = c.fifo[:n]
		c.head = 0
	}
}

func (c *dedupCache) get(k dedupKey) (backhaul.FramesReport, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	nowNanos := c.clock()
	c.expire(nowNanos)
	v, ok := c.m[k]
	if !ok {
		return backhaul.FramesReport{}, false
	}
	return v.rep, true
}

func (c *dedupCache) put(k dedupKey, rep backhaul.FramesReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.size <= 0 {
		c.size = DefaultDedupCapacity
	}
	if c.m == nil {
		c.m = make(map[dedupKey]dedupValue, c.size)
	}
	nowNanos := c.clock()
	c.expire(nowNanos)
	if _, ok := c.m[k]; ok {
		return
	}
	if len(c.m) >= c.size {
		c.evictOldest()
	}
	c.m[k] = dedupValue{rep: rep, at: nowNanos}
	c.fifo = append(c.fifo, dedupEntry{key: k, at: nowNanos})
}

// supersede drops every live entry of the gateway belonging to a different
// epoch and returns how many were dropped. A restarted gateway announces a
// fresh epoch in its hello and replays its persisted window under it, so
// reports cached under the dead epochs can never be asked for again —
// holding them would only squeeze live entries out of the count bound. The
// FIFO keeps its now-stale records; the liveness token makes them skippable.
func (c *dedupCache) supersede(gateway string, epoch uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var dropped uint64
	for i := c.head; i < len(c.fifo); i++ {
		e := c.fifo[i]
		if e.key.gateway != gateway || e.key.epoch == epoch {
			continue
		}
		if v, ok := c.m[e.key]; ok && v.at == e.at {
			delete(c.m, e.key)
			dropped++
		}
	}
	return dropped
}

// len reports the live entry count (tests and monitoring).
func (c *dedupCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// sessionDedup is the cache scoped to one session's gateway identity and
// epoch. Nil when the gateway's hello carried no epoch (dedup disabled).
type sessionDedup struct {
	c       *dedupCache
	gateway string
	epoch   uint64
}

func (d *sessionDedup) get(start int64) (backhaul.FramesReport, bool) {
	return d.c.get(dedupKey{gateway: d.gateway, epoch: d.epoch, start: start})
}

func (d *sessionDedup) put(start int64, rep backhaul.FramesReport) {
	d.c.put(dedupKey{gateway: d.gateway, epoch: d.epoch, start: start}, rep)
}
