package cloud

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"testing"

	"repro/internal/backhaul"
	"repro/internal/cancel"
	"repro/internal/farm"
)

// sessionReply is one server answer on a v2 session: a frames report or a
// busy reject, tagged with its segment sequence number.
type sessionReply struct {
	seq    uint64
	busy   bool
	report backhaul.FramesReport
}

// readV2Replies drains one v2 session until the bye ack, collecting frames
// and busy replies in arrival order.
func readV2Replies(conn *backhaul.Conn) ([]sessionReply, error) {
	var replies []sessionReply
	for {
		typ, payload, err := conn.ReadMessage()
		if err != nil {
			return replies, err
		}
		switch typ {
		case backhaul.MsgFrames:
			report, err := backhaul.ParseFrames(payload)
			if err != nil {
				return replies, err
			}
			replies = append(replies, sessionReply{seq: report.Seq, report: report})
		case backhaul.MsgBusy:
			seq, err := backhaul.ParseBusy(payload)
			if err != nil {
				return replies, err
			}
			replies = append(replies, sessionReply{seq: seq, busy: true})
		case backhaul.MsgBye:
			return replies, nil
		default:
			return replies, fmt.Errorf("unexpected message type %d", typ)
		}
	}
}

// helloV2 performs the v2 handshake on conn and returns the cloud's ack.
func helloV2(conn *backhaul.Conn, id string) (backhaul.HelloAck, error) {
	if err := conn.SendHello(backhaul.Hello{Version: backhaul.Version, GatewayID: id, SampleRate: fs}); err != nil {
		return backhaul.HelloAck{}, err
	}
	typ, payload, err := conn.ReadMessage()
	if err != nil {
		return backhaul.HelloAck{}, err
	}
	if typ != backhaul.MsgHelloAck {
		return backhaul.HelloAck{}, fmt.Errorf("expected hello ack, got message type %d", typ)
	}
	return backhaul.ParseHelloAck(payload)
}

func TestFarmPipelinedSession(t *testing.T) {
	svc := NewService(techs())
	svc.StartFarm(farm.Config{Workers: 2, QueueDepth: 8})
	defer svc.Close()
	srv := &Server{Service: svc}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn := backhaul.NewConn(nc)
	ack, err := helloV2(conn, "v2")
	if err != nil {
		t.Fatal(err)
	}
	if ack.Version != backhaul.Version || ack.Window != 8 || ack.Workers != 2 {
		t.Fatalf("hello ack %+v", ack)
	}

	// Ship the whole window before reading anything back: the session must
	// pipeline, and the replies must come back in sequence order.
	const segments = 3
	payloads := make([][]byte, segments)
	done := make(chan struct{})
	var replies []sessionReply
	var readErr error
	go func() {
		defer close(done)
		replies, readErr = readV2Replies(conn)
	}()
	for i := 0; i < segments; i++ {
		seg, payload := makeSegment(t, uint64(20+i))
		payloads[i] = payload
		if _, err := conn.SendSegmentSeq(backhaul.DefaultCodec, uint64(i), seg); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.SendBye(); err != nil {
		t.Fatal(err)
	}
	<-done
	if readErr != nil {
		t.Fatal(readErr)
	}
	if len(replies) != segments {
		t.Fatalf("%d replies for %d segments: %+v", len(replies), segments, replies)
	}
	for i, r := range replies {
		if r.seq != uint64(i) || r.busy {
			t.Fatalf("reply %d out of order or rejected: %+v", i, r)
		}
		if len(r.report.Frames) != 1 || !bytes.Equal(r.report.Frames[0].Payload, payloads[i]) {
			t.Fatalf("reply %d report %+v", i, r.report)
		}
	}
	if n, _, fst := svc.Totals(); n != segments || fst.Admitted != segments || fst.Completed != segments || fst.Rejected != 0 {
		t.Fatalf("totals n=%d farm=%+v", n, fst)
	}
}

func TestFarmBusyReject(t *testing.T) {
	// One worker, one queue slot, and a decode gated on a channel: the
	// third in-flight segment must be rejected with MsgBusy, deterministically.
	gate := make(chan struct{})
	dispatched := make(chan struct{}, 8)
	svc := NewService(techs())
	svc.StartFarm(farm.Config{Workers: 1, QueueDepth: 1, Decode: func(ctx context.Context, seg backhaul.Segment) (backhaul.FramesReport, cancel.Stats, error) {
		dispatched <- struct{}{}
		<-gate
		return backhaul.FramesReport{SegmentStart: seg.Start}, cancel.Stats{}, nil
	}})
	defer svc.Close()

	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- svc.ServeConn(b) }()
	conn := backhaul.NewConn(a)
	if _, err := helloV2(conn, "busy"); err != nil {
		t.Fatal(err)
	}
	tiny := backhaul.Segment{Start: 0, SampleRate: fs, Samples: make([]complex128, 16)}
	// Segment 0 occupies the worker (wait for its dispatch so the queue is
	// empty again), segment 1 the only queue slot; their replies are parked
	// behind the gate, so nothing is written yet and the busy reject for
	// segment 2 queues in the sequencer behind them.
	if _, err := conn.SendSegmentSeq(backhaul.DefaultCodec, 0, tiny); err != nil {
		t.Fatal(err)
	}
	<-dispatched
	if _, err := conn.SendSegmentSeq(backhaul.DefaultCodec, 1, tiny); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.SendSegmentSeq(backhaul.DefaultCodec, 2, tiny); err != nil {
		t.Fatal(err)
	}
	close(gate)
	if err := conn.SendBye(); err != nil {
		t.Fatal(err)
	}
	replies, err := readV2Replies(conn)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if len(replies) != 3 {
		t.Fatalf("replies %+v", replies)
	}
	for i, r := range replies {
		if r.seq != uint64(i) {
			t.Fatalf("reply order %+v", replies)
		}
	}
	if replies[0].busy || replies[1].busy || !replies[2].busy {
		t.Fatalf("busy pattern %+v", replies)
	}
	if _, _, fst := svc.Totals(); fst.Rejected != 1 || fst.Admitted != 2 || fst.Completed != 2 {
		t.Fatalf("farm stats %+v", fst)
	}
}

func TestFarmConcurrentGatewaysRace(t *testing.T) {
	// M gateways pipeline K segments each through one TCP server backed by
	// a shared farm; every segment must be acked in order with its frame,
	// and the totals must add up.
	svc := NewService(techs())
	svc.StartFarm(farm.Config{Workers: 4, QueueDepth: 32})
	defer svc.Close()
	srv := &Server{Service: svc}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const (
		gateways = 3
		segments = 3
	)
	errCh := make(chan error, gateways)
	for g := 0; g < gateways; g++ {
		go func(g int) {
			errCh <- func() error {
				nc, err := net.Dial("tcp", srv.Addr().String())
				if err != nil {
					return err
				}
				defer nc.Close()
				conn := backhaul.NewConn(nc)
				if _, err := helloV2(conn, fmt.Sprintf("gw%d", g)); err != nil {
					return err
				}
				payloads := make([][]byte, segments)
				done := make(chan struct{})
				var replies []sessionReply
				var readErr error
				go func() {
					defer close(done)
					replies, readErr = readV2Replies(conn)
				}()
				for i := 0; i < segments; i++ {
					seg, payload := makeSegment(t, uint64(100+10*g+i))
					payloads[i] = payload
					if _, err := conn.SendSegmentSeq(backhaul.DefaultCodec, uint64(i), seg); err != nil {
						return err
					}
				}
				if err := conn.SendBye(); err != nil {
					return err
				}
				<-done
				if readErr != nil {
					return readErr
				}
				if len(replies) != segments {
					return fmt.Errorf("gateway %d: %d replies", g, len(replies))
				}
				for i, r := range replies {
					if r.seq != uint64(i) || r.busy {
						return fmt.Errorf("gateway %d reply %d: %+v", g, i, r)
					}
					if len(r.report.Frames) != 1 || !bytes.Equal(r.report.Frames[0].Payload, payloads[i]) {
						return fmt.Errorf("gateway %d reply %d report %+v", g, i, r.report)
					}
				}
				return nil
			}()
		}(g)
	}
	for g := 0; g < gateways; g++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	n, _, fst := svc.Totals()
	if n != gateways*segments {
		t.Fatalf("decoded %d frames, want %d", n, gateways*segments)
	}
	if fst.Admitted != gateways*segments || fst.Completed != gateways*segments || fst.Rejected != 0 {
		t.Fatalf("farm stats %+v", fst)
	}
}

func TestFarmDrainOnServerClose(t *testing.T) {
	// Segments already admitted when Server.Close begins must still be
	// decoded and answered: Close waits for the session, the session's bye
	// barrier waits for the farm.
	gate := make(chan struct{})
	dispatched := make(chan struct{}, 8)
	svc := NewService(techs())
	svc.StartFarm(farm.Config{Workers: 1, QueueDepth: 8, Decode: func(ctx context.Context, seg backhaul.Segment) (backhaul.FramesReport, cancel.Stats, error) {
		dispatched <- struct{}{}
		<-gate
		return backhaul.FramesReport{SegmentStart: seg.Start}, cancel.Stats{}, nil
	}})
	srv := &Server{Service: svc}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn := backhaul.NewConn(nc)
	if _, err := helloV2(conn, "drain"); err != nil {
		t.Fatal(err)
	}
	const segments = 3
	tiny := backhaul.Segment{Start: 0, SampleRate: fs, Samples: make([]complex128, 16)}
	for i := 0; i < segments; i++ {
		if _, err := conn.SendSegmentSeq(backhaul.DefaultCodec, uint64(i), tiny); err != nil {
			t.Fatal(err)
		}
	}
	<-dispatched // all three admitted or decoding, none answered yet
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	close(gate)
	if err := conn.SendBye(); err != nil {
		t.Fatal(err)
	}
	replies, err := readV2Replies(conn)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if len(replies) != segments {
		t.Fatalf("shutdown lost segments: %d of %d answered", len(replies), segments)
	}
	for i, r := range replies {
		if r.seq != uint64(i) || r.busy {
			t.Fatalf("reply %d: %+v", i, r)
		}
	}
	if _, _, fst := svc.Totals(); fst.Completed != segments {
		t.Fatalf("farm stats %+v", fst)
	}
}

func TestFarmServesOldHello(t *testing.T) {
	// A v1 gateway against a farm-backed cloud: negotiation keeps the
	// session at v1 (no hello ack), segments still decode through the farm,
	// and the reply is a plain frames report.
	svc := NewService(techs())
	svc.StartFarm(farm.Config{Workers: 2, QueueDepth: 4})
	defer svc.Close()
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- svc.ServeConn(b) }()
	conn := backhaul.NewConn(a)
	if err := conn.SendHello(backhaul.Hello{Version: 1, GatewayID: "legacy", SampleRate: fs}); err != nil {
		t.Fatal(err)
	}
	seg, payload := makeSegment(t, 30)
	if _, err := conn.SendSegment(backhaul.DefaultCodec, seg); err != nil {
		t.Fatal(err)
	}
	typ, data, err := conn.ReadMessage()
	if err != nil || typ != backhaul.MsgFrames {
		t.Fatalf("reply %v %v", typ, err)
	}
	report, err := backhaul.ParseFrames(data)
	if err != nil || len(report.Frames) != 1 || !bytes.Equal(report.Frames[0].Payload, payload) {
		t.Fatalf("report %+v err %v", report, err)
	}
	if err := conn.SendBye(); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := conn.ReadMessage(); err != nil || typ != backhaul.MsgBye {
		t.Fatalf("bye ack %v %v", typ, err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if n, _, fst := svc.Totals(); n != 1 || fst.Admitted != 1 {
		t.Fatalf("totals n=%d farm=%+v", n, fst)
	}
}

// TestSequencedSegmentOnV1Session checks the cloud refuses v2 framing on a
// session negotiated down to v1.
func TestSequencedSegmentOnV1Session(t *testing.T) {
	svc := NewService(techs())
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- svc.ServeConn(b) }()
	conn := backhaul.NewConn(a)
	if err := conn.SendHello(backhaul.Hello{Version: 1, GatewayID: "t", SampleRate: fs}); err != nil {
		t.Fatal(err)
	}
	tiny := backhaul.Segment{Start: 0, SampleRate: fs, Samples: make([]complex128, 16)}
	if _, err := conn.SendSegmentSeq(backhaul.DefaultCodec, 0, tiny); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("sequenced segment accepted on a v1 session")
	}
}
