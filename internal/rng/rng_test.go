package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split(1)
	c2 := r.Split(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split streams with different labels should differ")
	}
	// Splitting with the same label from the same parent state is stable.
	p1, p2 := New(7), New(7)
	if p1.Split(9).Uint64() != p2.Split(9).Uint64() {
		t.Fatal("split is not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(4)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[r.Intn(7)]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(7) value %d count %d far from uniform", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("gaussian mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("gaussian variance %v too far from 1", variance)
	}
}

func TestComplexVariance(t *testing.T) {
	r := New(6)
	const n = 200000
	var power float64
	for i := 0; i < n; i++ {
		c := r.Complex()
		power += real(c)*real(c) + imag(c)*imag(c)
	}
	power /= n
	if math.Abs(power-1) > 0.02 {
		t.Fatalf("complex gaussian power %v, want ~1", power)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesFills(t *testing.T) {
	r := New(11)
	p := make([]byte, 4096)
	r.Bytes(p)
	zero := 0
	for _, b := range p {
		if b == 0 {
			zero++
		}
	}
	// Expect ~16 zero bytes; 100+ would indicate broken filling.
	if zero > 100 {
		t.Fatalf("too many zero bytes: %d", zero)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
