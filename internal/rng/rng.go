// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used by every simulation component in this repository.
//
// All experiments in the paper reproduction must be exactly repeatable from
// a single seed, including when sub-components (transmitters, channel,
// front-end) draw random numbers in different orders. The generator is
// xoshiro256**, seeded through SplitMix64, following the reference
// implementation by Blackman and Vigna. Each component should derive its own
// stream with Split so that adding a random draw in one component does not
// perturb the sequence seen by another.
package rng

import "math"

// Rand is a xoshiro256** pseudo-random number generator. The zero value is
// not usable; construct with New.
type Rand struct {
	s [4]uint64
	// cached Gaussian value for the polar method.
	gauss    float64
	hasGauss bool
}

// splitMix64 advances the given state and returns the next SplitMix64 output.
// It is used only for seeding.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed. Distinct seeds
// yield (with overwhelming probability) non-overlapping streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent generator from r. The derived stream is a
// deterministic function of r's current state and the label, so components
// can be given stable streams by labeling them.
func (r *Rand) Split(label uint64) *Rand {
	return New(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns a fair coin flip.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Byte returns a uniformly random byte.
func (r *Rand) Byte() byte { return byte(r.Uint64()) }

// Bytes fills p with uniformly random bytes.
func (r *Rand) Bytes(p []byte) {
	for i := range p {
		p[i] = byte(r.Uint64())
	}
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method. It caches the second value of each generated pair.
func (r *Rand) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGauss = true
		return u * f
	}
}

// Complex returns a circularly symmetric complex Gaussian sample with unit
// variance (0.5 per real dimension), the standard model for complex AWGN.
func (r *Rand) Complex() complex128 {
	const invSqrt2 = 0.7071067811865476
	return complex(r.NormFloat64()*invSqrt2, r.NormFloat64()*invSqrt2)
}

// ExpFloat64 returns an exponentially distributed variate with rate 1,
// used for Poisson arrival processes in the traffic generator.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
