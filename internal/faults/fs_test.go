package faults

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeThrough(t *testing.T, f File, p []byte) (int, error) {
	t.Helper()
	return f.Write(p)
}

func TestFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(OS(), 1, FSPlan{Events: []FSEvent{
		{Op: FSWriteShort, Nth: 2, Keep: 3},
	}})
	f, err := fs.OpenAppend(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := writeThrough(t, f, []byte("hello")); n != 5 || err != nil {
		t.Fatalf("write 1: n=%d err=%v", n, err)
	}
	n, err := writeThrough(t, f, []byte("world"))
	if n != 3 || !errors.Is(err, ErrInjectedFS) {
		t.Fatalf("short write: n=%d err=%v, want 3, ErrInjectedFS", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hellowor" {
		t.Fatalf("on disk %q, want %q", data, "hellowor")
	}
}

func TestFSWriteErrPersistsNothing(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(OS(), 1, FSPlan{Events: []FSEvent{
		{Op: FSWriteErr, Nth: 1},
	}})
	f, err := fs.OpenAppend(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := writeThrough(t, f, []byte("lost")); n != 0 || !errors.Is(err, ErrInjectedFS) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	// The plan event is consumed: the retry goes through clean.
	if n, err := writeThrough(t, f, []byte("kept")); n != 4 || err != nil {
		t.Fatalf("retry: n=%d err=%v", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, "a"))
	if string(data) != "kept" {
		t.Fatalf("on disk %q, want %q", data, "kept")
	}
}

func TestFSCorruptFlipsOneByte(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(OS(), 1, FSPlan{Events: []FSEvent{
		{Op: FSCorrupt, Nth: 1, Byte: 2, Mask: 0x0F},
	}})
	f, err := fs.OpenAppend(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	src := []byte{1, 2, 3, 4}
	if n, err := writeThrough(t, f, src); n != 4 || err != nil {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, "a"))
	want := []byte{1, 2, 3 ^ 0x0F, 4}
	if !bytes.Equal(data, want) {
		t.Fatalf("on disk %v, want %v", data, want)
	}
	// The caller's buffer must not be touched: corruption is on-media only.
	if !bytes.Equal(src, []byte{1, 2, 3, 4}) {
		t.Fatalf("caller buffer mutated: %v", src)
	}
}

func TestFSSyncErr(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(OS(), 1, FSPlan{Events: []FSEvent{
		{Op: FSSyncErr, Nth: 1},
	}})
	f, err := fs.OpenAppend(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writeThrough(t, f, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjectedFS) {
		t.Fatalf("sync 1: %v, want ErrInjectedFS", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 2: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFSCrashTearsToSyncedPrefix checks the crash model: synced bytes
// always survive, unsynced bytes survive only up to a seeded tear point,
// and the tear is deterministic per seed.
func TestFSCrashTearsToSyncedPrefix(t *testing.T) {
	sizes := make(map[uint64]int64)
	for _, seed := range []uint64{1, 2, 3, 1} {
		dir := t.TempDir()
		fs := NewFS(OS(), seed, FSPlan{})
		path := filepath.Join(dir, "a")
		f, err := fs.OpenAppend(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := writeThrough(t, f, bytes.Repeat([]byte{0xAB}, 100)); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if _, err := writeThrough(t, f, bytes.Repeat([]byte{0xCD}, 50)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Crash(); err != nil {
			t.Fatal(err)
		}
		if !fs.Crashed() {
			t.Fatal("Crashed() false after Crash")
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() < 100 || st.Size() > 150 {
			t.Fatalf("seed %d: post-crash size %d outside [100,150]", seed, st.Size())
		}
		if prev, ok := sizes[seed]; ok && prev != st.Size() {
			t.Fatalf("seed %d: tear nondeterministic: %d then %d", seed, prev, st.Size())
		}
		sizes[seed] = st.Size()

		// Every write-side call fails after the crash; reads still work.
		if _, err := fs.OpenAppend(path); !errors.Is(err, ErrCrashed) {
			t.Fatalf("OpenAppend after crash: %v", err)
		}
		if err := fs.Truncate(path, 0); !errors.Is(err, ErrCrashed) {
			t.Fatalf("Truncate after crash: %v", err)
		}
		if err := fs.Remove(path); !errors.Is(err, ErrCrashed) {
			t.Fatalf("Remove after crash: %v", err)
		}
		if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
			t.Fatalf("Write after crash: %v", err)
		}
		if _, err := fs.ReadFile(path); err != nil {
			t.Fatalf("ReadFile after crash: %v", err)
		}
	}
}

// TestFSPreexistingBytesCountSynced checks that data already on disk when a
// file first passes through the injector is never torn by Crash.
func TestFSPreexistingBytesCountSynced(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	if err := os.WriteFile(path, []byte("durable"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := NewFS(OS(), 9, FSPlan{})
	f, err := fs.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writeThrough(t, f, []byte("-tail")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Crash(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < len("durable") || string(data[:7]) != "durable" {
		t.Fatalf("pre-existing bytes torn: %q", data)
	}
}

func TestGenFSPlanDeterministic(t *testing.T) {
	a := GenFSPlan(42, 6, 20)
	b := GenFSPlan(42, 6, 20)
	if len(a.Events) != 6 || len(b.Events) != 6 {
		t.Fatalf("plan sizes %d/%d, want 6", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
		if a.Events[i].Nth < 1 || a.Events[i].Nth > 20 {
			t.Fatalf("event %d Nth %d outside [1,20]", i, a.Events[i].Nth)
		}
	}
	c := GenFSPlan(43, 6, 20)
	same := true
	for i := range a.Events {
		if a.Events[i] != c.Events[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical plans")
	}
}
