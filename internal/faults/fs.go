// Filesystem fault injection for the durable-shipping WAL. The package's
// net.Conn wrapper makes backhaul chaos reproducible; FS does the same for
// disk: a seeded plan of short writes, write errors, single-byte corruption
// and fsync failures, applied at deterministic points in the write/sync
// sequence, plus a Crash() that models power loss by tearing every file
// back to its synced prefix plus a seeded fraction of the unsynced tail.
//
// The injector sits behind the narrow Filesystem/File seam the WAL writes
// through, so production code runs on the real OS (OS()) and tests run the
// identical code path through NewFS.

package faults

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/rng"
)

// Filesystem is the minimal filesystem surface the WAL needs: directory
// setup and listing, whole-file reads for recovery scans, append-only
// writes, and the truncate/remove calls of tail repair and compaction.
type Filesystem interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// List returns the names (not paths) of the regular files in dir,
	// sorted ascending.
	List(dir string) ([]string, error)
	// ReadFile returns the full contents of the file at path.
	ReadFile(path string) ([]byte, error)
	// OpenAppend opens the file at path for appending, creating it if
	// needed.
	OpenAppend(path string) (File, error)
	// Truncate cuts the file at path to size bytes.
	Truncate(path string, size int64) error
	// Remove deletes the file at path.
	Remove(path string) error
}

// File is an append-only file handle: sequential writes, explicit
// durability via Sync, Close when done.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// OS returns the real os-backed Filesystem.
func OS() Filesystem { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (osFS) Remove(path string) error { return os.Remove(path) }

// FSOp is the kind of filesystem fault an FSEvent injects.
type FSOp uint8

const (
	// FSWriteShort persists only Keep bytes of the write and returns
	// ErrInjectedFS — models a partial write interrupted by a crash or a
	// full disk.
	FSWriteShort FSOp = iota
	// FSWriteErr persists nothing and returns ErrInjectedFS.
	FSWriteErr
	// FSCorrupt flips one byte of the write (XOR Mask at offset Byte,
	// clamped to the write) and then succeeds — models silent media
	// corruption that only a checksum catches.
	FSCorrupt
	// FSSyncErr makes the Sync call fail; the bytes written since the last
	// successful sync stay vulnerable to Crash.
	FSSyncErr
)

func (o FSOp) String() string {
	switch o {
	case FSWriteShort:
		return "write-short"
	case FSWriteErr:
		return "write-err"
	case FSCorrupt:
		return "corrupt"
	case FSSyncErr:
		return "sync-err"
	}
	return "unknown"
}

// FSEvent is one scheduled filesystem fault. Nth counts calls through the
// injector — writes for the write ops, syncs for FSSyncErr — starting at 1,
// which is what makes a plan deterministic regardless of which files the
// calls land on.
type FSEvent struct {
	Op   FSOp
	Nth  int
	Keep int  // FSWriteShort: bytes actually persisted
	Byte int  // FSCorrupt: offset within the write
	Mask byte // FSCorrupt: XOR mask (0 is treated as 0xFF)
}

// FSPlan is the fault schedule for one FS lifetime.
type FSPlan struct {
	Events []FSEvent
}

// ErrInjectedFS is returned by writes and syncs when a scheduled fault
// fires.
var ErrInjectedFS = fmt.Errorf("faults: injected filesystem fault")

// ErrCrashed is returned by every write-side call after Crash.
var ErrCrashed = fmt.Errorf("faults: filesystem crashed")

// fsFileState tracks one file's durability frontier: how many bytes the
// inner filesystem holds and how many of them a crash is guaranteed to
// preserve (the synced prefix).
type fsFileState struct {
	size   int64
	synced int64
}

// FS wraps a Filesystem with a deterministic fault plan. All methods are
// safe for concurrent use; the write and sync counters are global across
// files so a plan's Nth coordinates line up with the caller's logical
// operation sequence.
type FS struct {
	inner Filesystem
	gen   *rng.Rand

	mu      sync.Mutex
	writes  int
	syncs   int
	events  []FSEvent
	files   map[string]*fsFileState
	crashed bool
}

// NewFS wraps inner with the plan; seed drives the torn-tail lengths of
// Crash.
func NewFS(inner Filesystem, seed uint64, plan FSPlan) *FS {
	return &FS{
		inner:  inner,
		gen:    rng.New(seed),
		events: append([]FSEvent(nil), plan.Events...),
		files:  make(map[string]*fsFileState),
	}
}

// nextEvent pops the first scheduled event in the write category (sync =
// false: FSWriteShort/FSWriteErr/FSCorrupt) or the sync category whose Nth
// equals n. Callers hold f.mu.
func (f *FS) nextEvent(sync bool, n int) (FSEvent, bool) {
	for i, ev := range f.events {
		if (ev.Op == FSSyncErr) != sync || ev.Nth != n {
			continue
		}
		f.events = append(f.events[:i], f.events[i+1:]...)
		return ev, true
	}
	return FSEvent{}, false
}

func (f *FS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

func (f *FS) List(dir string) ([]string, error) { return f.inner.List(dir) }

func (f *FS) ReadFile(path string) ([]byte, error) { return f.inner.ReadFile(path) }

func (f *FS) Truncate(path string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	if err := f.inner.Truncate(path, size); err != nil {
		return err
	}
	if st, ok := f.files[path]; ok {
		if st.size > size {
			st.size = size
		}
		if st.synced > size {
			st.synced = size
		}
	}
	return nil
}

func (f *FS) Remove(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	if err := f.inner.Remove(path); err != nil {
		return err
	}
	delete(f.files, path)
	return nil
}

func (f *FS) OpenAppend(path string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	inner, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	st, ok := f.files[path]
	if !ok {
		// First sight of this file through the injector: whatever is
		// already on disk predates the plan and counts as synced.
		data, err := f.inner.ReadFile(path)
		if err != nil {
			_ = inner.Close()
			return nil, err
		}
		st = &fsFileState{size: int64(len(data)), synced: int64(len(data))}
		f.files[path] = st
	}
	return &fsFile{fs: f, inner: inner, st: st}, nil
}

// Crash simulates power loss: every file is torn back to its synced prefix
// plus a seeded portion of the unsynced tail (unsynced bytes may or may not
// have reached the platter). After Crash every write-side call fails with
// ErrCrashed; reads keep working so a recovery path can inspect the damage
// through a fresh Filesystem or this one.
func (f *FS) Crash() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
	// Deterministic order: sort the tracked paths before drawing tear
	// lengths, so a plan's outcome does not depend on map iteration.
	paths := make([]string, 0, len(f.files))
	//lint:ignore nondeterminism the collected paths are sorted below before any tear length is drawn
	for p := range f.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		st := f.files[p]
		unsynced := st.size - st.synced
		if unsynced <= 0 {
			continue
		}
		keep := st.synced + int64(f.gen.Intn(int(unsynced)+1))
		if err := f.inner.Truncate(p, keep); err != nil {
			return err
		}
		st.size, st.synced = keep, keep
	}
	return nil
}

// Crashed reports whether Crash has been called.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// fsFile is one open handle routing writes through the plan.
type fsFile struct {
	fs    *FS
	inner File
	st    *fsFileState
}

func (w *fsFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.fs.crashed {
		return 0, ErrCrashed
	}
	if len(p) == 0 {
		return 0, nil
	}
	w.fs.writes++
	ev, ok := w.fs.nextEvent(false, w.fs.writes)
	if !ok {
		n, err := w.inner.Write(p)
		w.st.size += int64(n)
		return n, err
	}
	switch ev.Op {
	case FSWriteErr:
		return 0, ErrInjectedFS
	case FSWriteShort:
		keep := ev.Keep
		if keep < 0 {
			keep = 0
		}
		if keep >= len(p) {
			keep = len(p) - 1
		}
		n, err := w.inner.Write(p[:keep])
		w.st.size += int64(n)
		if err != nil {
			return n, err
		}
		return n, ErrInjectedFS
	case FSCorrupt:
		buf := append([]byte(nil), p...)
		idx := ev.Byte
		if idx < 0 {
			idx = 0
		}
		if idx >= len(buf) {
			idx = len(buf) - 1
		}
		m := ev.Mask
		if m == 0 {
			m = 0xFF
		}
		if len(buf) > 0 {
			buf[idx] ^= m
		}
		n, err := w.inner.Write(buf)
		w.st.size += int64(n)
		return n, err
	}
	n, err := w.inner.Write(p)
	w.st.size += int64(n)
	return n, err
}

func (w *fsFile) Sync() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.fs.crashed {
		return ErrCrashed
	}
	w.fs.syncs++
	if _, ok := w.fs.nextEvent(true, w.fs.syncs); ok {
		return ErrInjectedFS
	}
	if err := w.inner.Sync(); err != nil {
		return err
	}
	w.st.synced = w.st.size
	return nil
}

func (w *fsFile) Close() error { return w.inner.Close() }

// GenFSPlan builds a deterministic fault plan from the seed: `events`
// faults spread over the first maxNth writes/syncs, mixing short writes,
// hard write errors, silent corruption and fsync failures. Companion to
// GenSchedule for the disk side; the WAL recovery matrix test sweeps seeds
// through it.
func GenFSPlan(seed uint64, events, maxNth int) FSPlan {
	if maxNth < 1 {
		maxNth = 1
	}
	root := rng.New(seed)
	var plan FSPlan
	for i := 0; i < events; i++ {
		g := root.Split(uint64(i))
		ev := FSEvent{Nth: 1 + g.Intn(maxNth)}
		switch g.Intn(4) {
		case 0:
			ev.Op = FSWriteShort
			ev.Keep = g.Intn(32)
		case 1:
			ev.Op = FSWriteErr
		case 2:
			ev.Op = FSCorrupt
			ev.Byte = g.Intn(64)
			ev.Mask = byte(1 + g.Intn(255))
		default:
			ev.Op = FSSyncErr
		}
		plan.Events = append(plan.Events, ev)
	}
	return plan
}

// compile-time interface checks
var (
	_ Filesystem = osFS{}
	_ Filesystem = (*FS)(nil)
	_ File       = (*fsFile)(nil)
)
