// Package faults wraps a net.Conn with deterministic fault injection: a
// seeded schedule of byte-offset-triggered events — delays, stalls, single
// byte corruption, and mid-frame connection closes — applied as traffic
// flows through the wrapper.
//
// Events fire at byte offsets rather than at wall-clock times, which is
// what makes chaos runs reproducible: the same schedule against the same
// traffic corrupts the same byte and kills the connection after the same
// prefix regardless of scheduler or network timing. The chaos soak in
// internal/gateway drives the full gateway↔cloud pipeline through
// GenSchedule-produced plans and asserts exact recovery; see DESIGN.md §11
// for the schedule format.
package faults

import (
	"errors"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/rng"
)

// Dir selects which half of the conn an event applies to.
type Dir uint8

const (
	// DirWrite triggers on bytes written through the wrapper.
	DirWrite Dir = iota
	// DirRead triggers on bytes read through the wrapper.
	DirRead
)

// Op is the kind of fault an event injects.
type Op uint8

const (
	// OpDelay sleeps Dur before continuing — models transient latency.
	OpDelay Op = iota
	// OpStall sleeps Dur like OpDelay but is generated with longer
	// durations, intended to trip I/O deadlines on the peer.
	OpStall
	// OpCorrupt XORs the byte at Offset with Mask — models line noise.
	OpCorrupt
	// OpClose closes the underlying conn once Offset bytes have passed —
	// models a mid-frame connection drop.
	OpClose
)

func (o Op) String() string {
	switch o {
	case OpDelay:
		return "delay"
	case OpStall:
		return "stall"
	case OpCorrupt:
		return "corrupt"
	case OpClose:
		return "close"
	}
	return "unknown"
}

// Event is one scheduled fault. Offset counts bytes through the wrapper in
// the event's direction since the conn was wrapped; the event fires when
// the stream reaches that offset. Mask is the corruption XOR (0 is treated
// as 0xFF so a corrupt event can never be a no-op).
type Event struct {
	Dir    Dir
	Op     Op
	Offset int64
	Dur    time.Duration
	Mask   byte
}

// Plan is the ordered set of events for one connection's lifetime.
type Plan struct {
	Events []Event
}

// ErrInjected is returned from Read/Write when an OpClose event fires.
var ErrInjected = errors.New("faults: injected connection close")

// Conn wraps a net.Conn and applies a Plan. Read and Write may be used
// from different goroutines (each direction has its own lock and cursor),
// matching how the backhaul uses a conn.
type Conn struct {
	inner net.Conn

	wmu    sync.Mutex
	wev    []Event
	wnext  int
	woff   int64
	closed bool

	rmu   sync.Mutex
	rev   []Event
	rnext int
	roff  int64
}

// NewConn wraps inner with the plan. Events are applied in byte-offset
// order within each direction; equal offsets keep plan order.
func NewConn(inner net.Conn, plan Plan) *Conn {
	c := &Conn{inner: inner}
	for _, ev := range plan.Events {
		if ev.Dir == DirWrite {
			c.wev = append(c.wev, ev)
		} else {
			c.rev = append(c.rev, ev)
		}
	}
	sort.SliceStable(c.wev, func(i, j int) bool { return c.wev[i].Offset < c.wev[j].Offset })
	sort.SliceStable(c.rev, func(i, j int) bool { return c.rev[i].Offset < c.rev[j].Offset })
	return c
}

func mask(m byte) byte {
	if m == 0 {
		return 0xFF
	}
	return m
}

// Write pushes p through the fault schedule: chunks before each pending
// event pass through untouched, corrupt events flip one byte, delay/stall
// events sleep, and a close event shuts the inner conn mid-stream and
// returns ErrInjected.
func (c *Conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	written := 0
	for written < len(p) {
		var ev *Event
		if c.wnext < len(c.wev) {
			ev = &c.wev[c.wnext]
		}
		if ev == nil || ev.Offset >= c.woff+int64(len(p)-written) {
			n, err := c.inner.Write(p[written:])
			c.woff += int64(n)
			return written + n, err
		}
		pre := int(ev.Offset - c.woff)
		if pre < 0 {
			pre = 0
		}
		if pre > 0 {
			n, err := c.inner.Write(p[written : written+pre])
			c.woff += int64(n)
			written += n
			if err != nil {
				return written, err
			}
		}
		c.wnext++
		switch ev.Op {
		case OpDelay, OpStall:
			if ev.Dur > 0 {
				time.Sleep(ev.Dur)
			}
		case OpCorrupt:
			b := [1]byte{p[written] ^ mask(ev.Mask)}
			n, err := c.inner.Write(b[:])
			c.woff += int64(n)
			written += n
			if err != nil {
				return written, err
			}
		case OpClose:
			c.closed = true
			_ = c.inner.Close()
			return written, ErrInjected
		}
	}
	return written, nil
}

// Read pulls from the inner conn and applies read-direction events to the
// returned chunk: corrupt flips a byte in place, close truncates the chunk
// at the event offset and shuts the conn.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.inner.Read(p)
	if n == 0 {
		return n, err
	}
	c.rmu.Lock()
	defer c.rmu.Unlock()
	end := c.roff + int64(n)
	for c.rnext < len(c.rev) && c.rev[c.rnext].Offset < end {
		ev := c.rev[c.rnext]
		c.rnext++
		idx := int(ev.Offset - c.roff)
		if idx < 0 {
			idx = 0
		}
		switch ev.Op {
		case OpDelay, OpStall:
			if ev.Dur > 0 {
				time.Sleep(ev.Dur)
			}
		case OpCorrupt:
			p[idx] ^= mask(ev.Mask)
		case OpClose:
			_ = c.inner.Close()
			c.roff = ev.Offset
			if idx == 0 {
				return 0, ErrInjected
			}
			return idx, nil
		}
	}
	c.roff = end
	return n, err
}

// Close closes the inner conn.
func (c *Conn) Close() error { return c.inner.Close() }

// LocalAddr returns the inner conn's local address.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr returns the inner conn's remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline delegates to the inner conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline delegates to the inner conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline delegates to the inner conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// Schedule is a sequence of per-connection plans: connection attempt i of
// a reconnecting client gets Plans[i]; attempts beyond the schedule run
// fault-free. Faulty() reports how many plans will kill their connection,
// which a chaos test compares against gateway_reconnects_total.
type Schedule struct {
	Plans []Plan
}

// Wrap applies plan i to conn, or returns conn unchanged once the
// schedule is exhausted (or the plan is empty).
func (s Schedule) Wrap(i int, conn net.Conn) net.Conn {
	if i < 0 || i >= len(s.Plans) || len(s.Plans[i].Events) == 0 {
		return conn
	}
	return NewConn(conn, s.Plans[i])
}

// Faulty counts plans containing an OpClose — i.e. connections the
// schedule guarantees to kill exactly once.
func (s Schedule) Faulty() int {
	n := 0
	for _, p := range s.Plans {
		for _, ev := range p.Events {
			if ev.Op == OpClose {
				n++
				break
			}
		}
	}
	return n
}

// GenSchedule builds a deterministic schedule of `flaps` connection-killing
// plans from the seed. Every plan targets the write direction and ends in
// an OpClose; variants prepend corruption and/or a short delay. minOffset
// keeps faults clear of the hello exchange at the head of each connection,
// and spread bounds how far past minOffset the first fault may land. When
// a corrupt event is generated, the close follows within 64 bytes, so a
// corrupted connection always dies before the peer can act on a whole
// corrupted frame — that is what makes reconnect counts exactly equal to
// the flap count.
func GenSchedule(seed uint64, flaps int, minOffset, spread int64) Schedule {
	if spread < 1 {
		spread = 1
	}
	root := rng.New(seed)
	var s Schedule
	for i := 0; i < flaps; i++ {
		g := root.Split(uint64(i))
		off := minOffset + int64(g.Intn(int(spread)))
		m := byte(1 + g.Intn(255))
		var evs []Event
		switch g.Intn(3) {
		case 0: // clean mid-frame close
			evs = []Event{{Dir: DirWrite, Op: OpClose, Offset: off}}
		case 1: // corrupt then close shortly after
			evs = []Event{
				{Dir: DirWrite, Op: OpCorrupt, Offset: off, Mask: m},
				{Dir: DirWrite, Op: OpClose, Offset: off + 16 + int64(g.Intn(48))},
			}
		default: // brief delay, corrupt, then close
			evs = []Event{
				{Dir: DirWrite, Op: OpDelay, Offset: off, Dur: time.Duration(1+g.Intn(3)) * time.Millisecond},
				{Dir: DirWrite, Op: OpCorrupt, Offset: off + int64(g.Intn(16)), Mask: m},
				{Dir: DirWrite, Op: OpClose, Offset: off + 16 + int64(g.Intn(48))},
			}
		}
		s.Plans = append(s.Plans, Plan{Events: evs})
	}
	return s
}
