package faults

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"

	"repro/internal/rng"
)

// pump reads everything from r until error, returning the bytes received.
func pump(t *testing.T, r net.Conn, done chan<- []byte) {
	t.Helper()
	var buf bytes.Buffer
	_, _ = io.Copy(&buf, r)
	done <- buf.Bytes()
}

func TestConnWriteCorruptThenClose(t *testing.T) {
	t.Parallel()
	a, b := net.Pipe()
	plan := Plan{Events: []Event{
		{Dir: DirWrite, Op: OpCorrupt, Offset: 3, Mask: 0x0F},
		{Dir: DirWrite, Op: OpClose, Offset: 7},
	}}
	fc := NewConn(a, plan)
	done := make(chan []byte, 1)
	go pump(t, b, done)

	data := []byte("0123456789")
	n, err := fc.Write(data)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Write err = %v, want ErrInjected", err)
	}
	if n != 7 {
		t.Fatalf("Write n = %d, want 7 (bytes before the close)", n)
	}
	got := <-done
	want := []byte("0123456")
	want[3] ^= 0x0F
	if !bytes.Equal(got, want) {
		t.Fatalf("peer received %q, want %q", got, want)
	}
}

func TestConnWriteAcrossChunks(t *testing.T) {
	t.Parallel()
	a, b := net.Pipe()
	plan := Plan{Events: []Event{
		{Dir: DirWrite, Op: OpDelay, Offset: 2, Dur: 0},
		{Dir: DirWrite, Op: OpCorrupt, Offset: 5, Mask: 0xFF},
	}}
	fc := NewConn(a, plan)
	done := make(chan []byte, 1)
	go pump(t, b, done)

	// Write one byte at a time: events must still fire at absolute offsets.
	data := []byte("abcdefgh")
	for i := range data {
		if _, err := fc.Write(data[i : i+1]); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	fc.Close()
	got := <-done
	want := append([]byte(nil), data...)
	want[5] ^= 0xFF
	if !bytes.Equal(got, want) {
		t.Fatalf("peer received %q, want %q", got, want)
	}
}

func TestConnReadCorruptAndClose(t *testing.T) {
	t.Parallel()
	a, b := net.Pipe()
	plan := Plan{Events: []Event{
		{Dir: DirRead, Op: OpCorrupt, Offset: 1, Mask: 0x01},
		{Dir: DirRead, Op: OpClose, Offset: 4},
	}}
	fc := NewConn(b, plan)
	go func() {
		_, _ = a.Write([]byte("ABCDEFGH"))
	}()
	var got []byte
	buf := make([]byte, 64)
	for {
		n, err := fc.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			break
		}
		if len(got) >= 4 {
			break
		}
	}
	want := []byte("ABCD")
	want[1] ^= 0x01
	if !bytes.Equal(got, want) {
		t.Fatalf("read %q, want %q (corrupted, truncated at close)", got, want)
	}
}

func TestGenScheduleDeterministicAndWellFormed(t *testing.T) {
	t.Parallel()
	const flaps, minOff, spread = 8, 600, 3000
	s1 := GenSchedule(99, flaps, minOff, spread)
	s2 := GenSchedule(99, flaps, minOff, spread)
	if len(s1.Plans) != flaps || len(s2.Plans) != flaps {
		t.Fatalf("plan counts %d/%d, want %d", len(s1.Plans), len(s2.Plans), flaps)
	}
	if s1.Faulty() != flaps {
		t.Fatalf("Faulty() = %d, want %d (every plan must kill its conn)", s1.Faulty(), flaps)
	}
	for i := range s1.Plans {
		p1, p2 := s1.Plans[i], s2.Plans[i]
		if len(p1.Events) != len(p2.Events) {
			t.Fatalf("plan %d: lengths differ", i)
		}
		closes := 0
		var closeOff int64
		for j := range p1.Events {
			if p1.Events[j] != p2.Events[j] {
				t.Fatalf("plan %d event %d: same seed diverged: %+v vs %+v", i, j, p1.Events[j], p2.Events[j])
			}
			ev := p1.Events[j]
			if ev.Dir != DirWrite {
				t.Fatalf("plan %d event %d: dir %v, want write", i, j, ev.Dir)
			}
			if ev.Offset < minOff {
				t.Fatalf("plan %d event %d: offset %d below minOffset %d", i, j, ev.Offset, minOff)
			}
			if ev.Op == OpClose {
				closes++
				closeOff = ev.Offset
			}
			if ev.Op == OpCorrupt && ev.Mask == 0 {
				t.Fatalf("plan %d: zero corruption mask", i)
			}
		}
		if closes != 1 {
			t.Fatalf("plan %d: %d closes, want exactly 1", i, closes)
		}
		for _, ev := range p1.Events {
			if ev.Op == OpCorrupt && closeOff-ev.Offset > 64 {
				t.Fatalf("plan %d: close at %d more than 64 bytes after corrupt at %d", i, closeOff, ev.Offset)
			}
		}
	}
	// A different seed must produce a different schedule.
	s3 := GenSchedule(100, flaps, minOff, spread)
	same := true
	for i := range s1.Plans {
		if len(s1.Plans[i].Events) != len(s3.Plans[i].Events) {
			same = false
			break
		}
		for j := range s1.Plans[i].Events {
			if s1.Plans[i].Events[j] != s3.Plans[i].Events[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestScheduleWrapPastEnd(t *testing.T) {
	t.Parallel()
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	s := GenSchedule(1, 2, 10, 10)
	if got := s.Wrap(2, a); got != net.Conn(a) {
		t.Fatal("Wrap past the schedule should return the conn unchanged")
	}
	if got := s.Wrap(-1, a); got != net.Conn(a) {
		t.Fatal("Wrap with negative index should return the conn unchanged")
	}
	if got := s.Wrap(0, a); got == net.Conn(a) {
		t.Fatal("Wrap within the schedule should wrap")
	}
}

// FuzzFaultsConn drives random data through a random write-direction plan
// over a net.Pipe and asserts the peer observes exactly the simulated
// corrupted/truncated prefix — i.e. fault application is a pure function
// of (plan, data), independent of write chunking.
func FuzzFaultsConn(f *testing.F) {
	f.Add(uint64(1), []byte("hello fault injection, have some bytes"))
	f.Add(uint64(7), bytes.Repeat([]byte{0xA5}, 256))
	f.Add(uint64(42), []byte{0})
	f.Fuzz(func(t *testing.T, seed uint64, data []byte) {
		if len(data) == 0 || len(data) > 1<<16 {
			return
		}
		g := rng.New(seed)
		// Build 1–3 events at strictly increasing offsets.
		var evs []Event
		off := int64(g.Intn(8))
		n := 1 + g.Intn(3)
		for i := 0; i < n; i++ {
			var ev Event
			ev.Dir = DirWrite
			ev.Offset = off
			switch g.Intn(3) {
			case 0:
				ev.Op = OpDelay // Dur 0: control-flow only
			case 1:
				ev.Op = OpCorrupt
				ev.Mask = byte(g.Intn(256)) // 0 exercises the 0xFF fallback
			default:
				ev.Op = OpClose
			}
			evs = append(evs, ev)
			off += 1 + int64(g.Intn(16))
		}

		// Simulate the expected peer view.
		want := append([]byte(nil), data...)
		truncated := false
		for _, ev := range evs {
			if ev.Offset >= int64(len(want)) {
				break
			}
			switch ev.Op {
			case OpCorrupt:
				want[ev.Offset] ^= mask(ev.Mask)
			case OpClose:
				want = want[:ev.Offset]
				truncated = true
			}
			if truncated {
				break
			}
		}

		a, b := net.Pipe()
		fc := NewConn(a, Plan{Events: evs})
		done := make(chan []byte, 1)
		go pump(t, b, done)

		// Vary chunking from the same stream to exercise offset tracking.
		var werr error
		sent := 0
		for sent < len(data) && werr == nil {
			chunk := 1 + g.Intn(32)
			if sent+chunk > len(data) {
				chunk = len(data) - sent
			}
			var n int
			n, werr = fc.Write(data[sent : sent+chunk])
			sent += n
		}
		fc.Close()
		got := <-done
		if !bytes.Equal(got, want) {
			t.Fatalf("peer received %d bytes %x, want %d bytes %x (events %+v)", len(got), got, len(want), want, evs)
		}
		if truncated && !errors.Is(werr, ErrInjected) {
			t.Fatalf("close fired but writer error = %v", werr)
		}
	})
}
