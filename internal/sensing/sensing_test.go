package sensing

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func obs(tech string, t float64, mag float64) Observation {
	return Observation{Tech: tech, Time: t, Gain: complex(mag, 0)}
}

func TestLearningPhaseDoesNotFlag(t *testing.T) {
	tr := NewTracker(2)
	for i := 0; i < 3; i++ {
		if flagged, _ := tr.Observe(obs("lora", float64(i), 1.0)); flagged {
			t.Fatal("flagged during learning")
		}
	}
}

func TestFlagsDropAndRecovers(t *testing.T) {
	tr := NewTracker(2)
	ti := 0.0
	for i := 0; i < 8; i++ {
		tr.Observe(obs("lora", ti, 1.0))
		ti++
	}
	// 6 dB drop
	for i := 0; i < 5; i++ {
		flagged, dev := tr.Observe(obs("lora", ti, 0.5))
		if !flagged {
			t.Fatalf("drop not flagged at %v", ti)
		}
		if math.Abs(dev+6.02) > 0.1 {
			t.Fatalf("deviation %v, want ~-6 dB", dev)
		}
		ti++
	}
	// recovery closes the event
	tr.Observe(obs("lora", ti, 1.0))
	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("%d events", len(events))
	}
	ev := events[0]
	if ev.Count != 5 || ev.MeanDropDB > -5 {
		t.Fatalf("event %+v", ev)
	}
	if ev.Start != 8 || ev.End != 12 {
		t.Fatalf("event bounds %v..%v", ev.Start, ev.End)
	}
}

func TestBaselineNotPoisonedByEvent(t *testing.T) {
	// Flagged observations must not enter the baseline, so a long event
	// stays flagged throughout.
	tr := NewTracker(2)
	for i := 0; i < 8; i++ {
		tr.Observe(obs("xbee", float64(i), 1.0))
	}
	for i := 8; i < 40; i++ {
		flagged, _ := tr.Observe(obs("xbee", float64(i), 0.4))
		if !flagged {
			t.Fatalf("long event unflagged at %d (baseline drifted)", i)
		}
	}
}

func TestRiseAlsoFlags(t *testing.T) {
	tr := NewTracker(2)
	for i := 0; i < 8; i++ {
		tr.Observe(obs("zwave", float64(i), 1.0))
	}
	if flagged, dev := tr.Observe(obs("zwave", 9, 2.0)); !flagged || dev < 5 {
		t.Fatalf("6 dB rise not flagged (dev %v)", dev)
	}
}

func TestCoverageCountsTechnologies(t *testing.T) {
	tr := NewTracker(2)
	for i := 0; i < 8; i++ {
		tr.Observe(obs("lora", float64(i), 1.0))
		tr.Observe(obs("xbee", float64(i)+0.5, 1.0))
	}
	tr.Observe(obs("lora", 20, 0.3))
	tr.Observe(obs("xbee", 21, 0.3))
	if c := tr.Coverage(); c != 2 {
		t.Fatalf("coverage %d", c)
	}
	if len(tr.Flagged()) != 2 {
		t.Fatalf("flagged %d", len(tr.Flagged()))
	}
}

func TestSmallFadingNotFlagged(t *testing.T) {
	tr := NewTracker(3)
	gen := rng.New(1)
	flagged := 0
	for i := 0; i < 200; i++ {
		// ±0.5 dB fading jitter
		mag := math.Pow(10, (gen.Float64()-0.5)/20)
		if f, _ := tr.Observe(obs("lora", float64(i), mag)); f {
			flagged++
		}
	}
	if flagged > 4 {
		t.Fatalf("%d false flags from mild fading", flagged)
	}
}

func TestInvalidGainIgnored(t *testing.T) {
	tr := NewTracker(2)
	if flagged, _ := tr.Observe(Observation{Tech: "lora", Gain: 0}); flagged {
		t.Fatal("zero gain flagged")
	}
	if flagged, _ := tr.Observe(Observation{Tech: "lora", Gain: complex(math.NaN(), 0)}); flagged {
		t.Fatal("NaN gain flagged")
	}
}

func TestOpenEventReported(t *testing.T) {
	tr := NewTracker(2)
	for i := 0; i < 8; i++ {
		tr.Observe(obs("lora", float64(i), 1.0))
	}
	tr.Observe(obs("lora", 9, 0.4))
	events := tr.Events()
	if len(events) != 1 || events[0].Count != 1 {
		t.Fatalf("open event not reported: %+v", events)
	}
}
