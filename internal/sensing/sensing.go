// Package sensing implements the paper's Sec. 6 "multi-technology wireless
// sensing" direction: the per-frame complex channel gains that GalioT's
// cloud already estimates for interference cancellation are aggregated
// into a sensing signal. Individually, low-power devices transmit too
// rarely and too noisily to sense anything; collectively, the heterogeneous
// fleet gives a usable event detector — exactly the "several wimpy devices
// may collectively offer more insights than one high-power node" argument.
package sensing

import (
	"math"
	"math/cmplx"
	"sort"
)

// Observation is one decoded frame's channel measurement.
type Observation struct {
	Tech string
	Time float64    // seconds (or any monotonic unit)
	Gain complex128 // estimated complex channel gain
}

// Event is a detected channel disturbance.
type Event struct {
	Start, End float64 // time bounds of the flagged observations
	Count      int     // observations inside the event
	MeanDropDB float64 // average gain drop versus baseline while flagged
}

// Tracker maintains per-technology channel baselines and flags
// observations that deviate from them. The zero value is not usable; use
// NewTracker.
type Tracker struct {
	// ThresholdDB is the gain deviation (in dB, absolute value) beyond
	// which an observation is flagged (default 2 dB).
	ThresholdDB float64
	// Baseline window: how many quiet observations per technology form the
	// reference magnitude (default 8).
	Window int

	perTech map[string][]float64 // recent quiet |gain| values per technology
	flagged []Observation
	events  []Event
	open    *Event
	sumDrop float64
}

// NewTracker returns a tracker with the given flagging threshold in dB
// (<= 0 selects the 2 dB default).
func NewTracker(thresholdDB float64) *Tracker {
	if thresholdDB <= 0 {
		thresholdDB = 2
	}
	return &Tracker{
		ThresholdDB: thresholdDB,
		Window:      8,
		perTech:     map[string][]float64{},
	}
}

// baseline returns the median quiet gain for a technology, or 0 if the
// tracker has not seen enough observations yet.
func (t *Tracker) baseline(tech string) float64 {
	hist := t.perTech[tech]
	if len(hist) < 3 {
		return 0
	}
	c := append([]float64{}, hist...)
	sort.Float64s(c)
	return c[len(c)/2]
}

// Observe ingests one measurement and reports whether it was flagged as
// deviating from the technology's baseline. Observations must arrive in
// time order.
func (t *Tracker) Observe(o Observation) (flagged bool, deviationDB float64) {
	mag := cmplx.Abs(o.Gain)
	if mag <= 0 || math.IsNaN(mag) {
		return false, 0
	}
	base := t.baseline(o.Tech)
	if base <= 0 {
		// still learning: everything is baseline material
		t.learn(o.Tech, mag)
		return false, 0
	}
	deviationDB = 20 * math.Log10(mag/base)
	if math.Abs(deviationDB) >= t.ThresholdDB {
		t.flag(o, deviationDB)
		return true, deviationDB
	}
	t.learn(o.Tech, mag)
	if t.open != nil {
		// quiet observation closes any open event
		t.closeEvent(o.Time)
	}
	return false, deviationDB
}

func (t *Tracker) learn(tech string, mag float64) {
	hist := append(t.perTech[tech], mag)
	if len(hist) > t.Window {
		hist = hist[len(hist)-t.Window:]
	}
	t.perTech[tech] = hist
}

func (t *Tracker) flag(o Observation, devDB float64) {
	t.flagged = append(t.flagged, o)
	if t.open == nil {
		t.open = &Event{Start: o.Time}
		t.sumDrop = 0
	}
	t.open.End = o.Time
	t.open.Count++
	t.sumDrop += devDB
}

func (t *Tracker) closeEvent(now float64) {
	if t.open == nil {
		return
	}
	ev := *t.open
	if ev.Count > 0 {
		ev.MeanDropDB = t.sumDrop / float64(ev.Count)
	}
	t.events = append(t.events, ev)
	t.open = nil
	_ = now
}

// Events returns the completed events plus any still-open one.
func (t *Tracker) Events() []Event {
	out := append([]Event{}, t.events...)
	if t.open != nil {
		ev := *t.open
		if ev.Count > 0 {
			ev.MeanDropDB = t.sumDrop / float64(ev.Count)
		}
		out = append(out, ev)
	}
	return out
}

// Flagged returns every observation that deviated beyond the threshold.
func (t *Tracker) Flagged() []Observation {
	return append([]Observation{}, t.flagged...)
}

// Coverage reports how many distinct technologies contributed flagged
// observations — the "collective" aspect: an event seen across several
// heterogeneous devices is far less likely to be a single device's fading
// artifact.
func (t *Tracker) Coverage() int {
	seen := map[string]bool{}
	for _, o := range t.flagged {
		seen[o.Tech] = true
	}
	return len(seen)
}
