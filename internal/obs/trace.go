package obs

import (
	"context"
	"sync"
	"sync/atomic"
)

// MaxStages bounds the stages one span can hold. Spans live in a
// sync.Pool and carry a fixed-size stage array, so recording a stage never
// allocates; stages past the cap are counted in DroppedStages instead of
// grown.
const MaxStages = 24

// DefaultTraceRing is the span ring size when Tracer is built with
// ringSize <= 0.
const DefaultTraceRing = 256

// Stage is one timed step of a span. Dur is measured on the clock of
// whichever subsystem recorded it (the tracer clock for timed stages, the
// farm's sample clock for queue waits — see DESIGN.md §10 for the per-stage
// contract); Value carries a stage-specific magnitude such as residual
// energy after a SIC round or bytes put on the wire.
type Stage struct {
	Name  string  `json:"name"`
	Dur   int64   `json:"dur"`
	Value float64 `json:"value,omitempty"`
}

// Span accumulates the stages of one traced segment. Obtain with
// Tracer.Start, record with Stage, finish with End. A span is owned by one
// goroutine at a time; the internal mutex makes the handoffs (gateway →
// farm worker → reply sequencer) safe even when they race with an HTTP
// snapshot of an ancestor.
//
// All methods are nil-safe: instrumented code calls them unconditionally
// and a disabled tracer (nil) costs one predictable branch.
type Span struct {
	mu      sync.Mutex
	tr      *Tracer
	id      uint64
	span    uint64
	parent  uint64
	kind    string
	start   int64
	end     int64
	n       int
	dropped int
	stages  [MaxStages]Stage
}

// TraceID returns the span's trace ID (0 for a nil span).
func (sp *Span) TraceID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.id
}

// SpanID returns the span's own ID (0 for a nil span). Other processes
// reference this span as their parent — the gateway ships it in the
// segment's trace context so the cloud-side span stitches under it.
func (sp *Span) SpanID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.span
}

// Parent returns the span ID of this span's parent (0 for a root or nil
// span).
func (sp *Span) Parent() uint64 {
	if sp == nil {
		return 0
	}
	return sp.parent
}

// Now reads the owning tracer's clock (0 for a nil span), so deep callees
// can time stages without threading the tracer through every signature.
func (sp *Span) Now() int64 {
	if sp == nil || sp.tr == nil {
		return 0
	}
	return sp.tr.Now()
}

// Stage appends one timed stage. Past MaxStages the stage is dropped and
// counted, never grown — recording stays allocation-free.
func (sp *Span) Stage(name string, dur int64, value float64) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.n < MaxStages {
		sp.stages[sp.n] = Stage{Name: name, Dur: dur, Value: value}
		sp.n++
	} else {
		sp.dropped++
	}
	sp.mu.Unlock()
}

// End stamps the span's end time, publishes it to the tracer's ring, and
// recycles it. The span must not be used after End.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	tr := sp.tr
	if tr == nil { // already ended
		sp.mu.Unlock()
		return
	}
	sp.end = tr.Now()
	rec := spanRec{
		id:      sp.id,
		span:    sp.span,
		parent:  sp.parent,
		kind:    sp.kind,
		start:   sp.start,
		end:     sp.end,
		n:       sp.n,
		dropped: sp.dropped,
		stages:  sp.stages,
	}
	sp.tr = nil
	sp.mu.Unlock()
	tr.record(rec)
	tr.pool.Put(sp)
}

// spanRec is a finished span as stored in the tracer ring: plain values,
// no mutex, copyable.
type spanRec struct {
	id      uint64
	span    uint64
	parent  uint64
	kind    string
	start   int64
	end     int64
	n       int
	dropped int
	stages  [MaxStages]Stage
}

// SpanSnapshot is the JSON form of a finished span.
type SpanSnapshot struct {
	TraceID       uint64  `json:"trace_id"`
	SpanID        uint64  `json:"span_id"`
	Parent        uint64  `json:"parent,omitempty"`
	Kind          string  `json:"kind"`
	Start         int64   `json:"start"`
	End           int64   `json:"end"`
	DroppedStages int     `json:"dropped_stages,omitempty"`
	Stages        []Stage `json:"stages"`
}

// TraceSnapshot groups the spans that share a trace ID — in the
// single-process example the gateway-side and cloud-side spans of one
// segment merge into one trace here.
type TraceSnapshot struct {
	TraceID uint64         `json:"trace_id"`
	Spans   []SpanSnapshot `json:"spans"`
}

// Tracer hands out spans and keeps the most recent finished ones in a
// ring for /trace/recent. The zero clock is a deterministic step counter
// (every Now call advances it by one), which keeps library code replayable
// under the nondeterminism rule; commands inject the wall clock with
// SetClock before starting traffic.
type Tracer struct {
	clock   func() int64
	seq     atomic.Int64
	site    uint64
	spanSeq atomic.Uint64
	sink    func(SpanSnapshot)
	pool    sync.Pool

	mu    sync.Mutex
	ring  []spanRec
	next  int
	total uint64
}

// NewTracer builds a tracer whose ring keeps the last ringSize finished
// spans (<= 0 means DefaultTraceRing).
func NewTracer(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultTraceRing
	}
	return &Tracer{ring: make([]spanRec, ringSize)}
}

// SetClock replaces the deterministic step clock, typically with
// func() int64 { return time.Now().UnixNano() }. Call before the tracer is
// shared across goroutines.
func (t *Tracer) SetClock(clock func() int64) {
	if t != nil {
		t.clock = clock
	}
}

// SetSite names the process/role this tracer runs in ("gateway",
// "cloud", ...). The site hash salts span IDs so spans minted by
// different tracers feeding one TraceStore cannot collide. Call before
// the tracer is shared across goroutines.
func (t *Tracer) SetSite(name string) {
	if t != nil {
		t.site = SiteID(name)
	}
}

// SetSink registers a callback invoked with every finished span, in
// addition to the ring. A TraceStore hangs off this hook to assemble
// cross-process trace trees. Call before the tracer is shared across
// goroutines; the callback must be safe for concurrent use.
func (t *Tracer) SetSink(sink func(SpanSnapshot)) {
	if t != nil {
		t.sink = sink
	}
}

// Now reads the tracer clock (0 for a nil tracer).
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	if t.clock != nil {
		return t.clock()
	}
	return t.seq.Add(1)
}

// Start opens a root span of the given kind for trace id. Returns nil (a
// valid, inert span) when the tracer is nil.
func (t *Tracer) Start(kind string, id uint64) *Span {
	return t.StartChild(kind, id, 0)
}

// StartChild opens a span of the given kind on trace id under the given
// parent span ID (0 = root). The cloud uses it to attach its per-segment
// span under the gateway span whose ID arrived in the segment's wire
// trace context. Returns nil when the tracer is nil.
func (t *Tracer) StartChild(kind string, id, parent uint64) *Span {
	if t == nil {
		return nil
	}
	sp, _ := t.pool.Get().(*Span)
	if sp == nil {
		sp = &Span{}
	}
	sp.mu.Lock()
	sp.tr = t
	sp.id = id
	sp.span = t.nextSpanID()
	sp.parent = parent
	sp.kind = kind
	sp.start = t.Now()
	sp.end = 0
	sp.n = 0
	sp.dropped = 0
	sp.mu.Unlock()
	return sp
}

// Child opens a span of the given kind on the same trace with this span
// as its parent. Returns nil for a nil span or an already-ended span.
func (sp *Span) Child(kind string) *Span {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	tr, id, parent := sp.tr, sp.id, sp.span
	sp.mu.Unlock()
	if tr == nil {
		return nil
	}
	return tr.StartChild(kind, id, parent)
}

// nextSpanID mints a process-unique, non-zero span ID: splitmix64 over
// the site hash and a per-tracer sequence.
func (t *Tracer) nextSpanID() uint64 {
	z := (t.site ^ t.spanSeq.Add(1)) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// record appends a finished span to the ring and feeds the sink.
func (t *Tracer) record(rec spanRec) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next = (t.next + 1) % len(t.ring)
	t.total++
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink(rec.snapshot())
	}
}

// snapshot converts a ring record to its JSON form.
func (rec *spanRec) snapshot() SpanSnapshot {
	return SpanSnapshot{
		TraceID:       rec.id,
		SpanID:        rec.span,
		Parent:        rec.parent,
		Kind:          rec.kind,
		Start:         rec.start,
		End:           rec.end,
		DroppedStages: rec.dropped,
		Stages:        append([]Stage(nil), rec.stages[:rec.n]...),
	}
}

// Recent returns the ring's finished spans, oldest first, grouped into
// traces by trace ID (groups ordered by each trace's oldest span).
func (t *Tracer) Recent() []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	n := int(t.total)
	if t.total > uint64(len(t.ring)) {
		n = len(t.ring)
	}
	recs := make([]spanRec, 0, n)
	for i := 0; i < n; i++ {
		// Oldest record first: when the ring has wrapped, t.next points at
		// the oldest slot.
		idx := i
		if t.total > uint64(len(t.ring)) {
			idx = (t.next + i) % len(t.ring)
		}
		recs = append(recs, t.ring[idx])
	}
	t.mu.Unlock()

	var out []TraceSnapshot
	byID := make(map[uint64]int, len(recs))
	for i := range recs {
		rec := &recs[i]
		snap := rec.snapshot()
		gi, ok := byID[rec.id]
		if !ok {
			gi = len(out)
			out = append(out, TraceSnapshot{TraceID: rec.id})
			byID[rec.id] = gi
		}
		out[gi].Spans = append(out[gi].Spans, snap)
	}
	return out
}

// SegmentTraceID derives a stable trace ID from a segment's absolute start
// sample (splitmix64). The gateway and the cloud both see that offset —
// it rides in the existing segment header — so the two sides of one
// segment correlate into a single trace without any wire-format change.
func SegmentTraceID(start int64) uint64 {
	z := uint64(start) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SiteID hashes a site/process name (FNV-1a) for span-ID salting and
// trace minting. A gateway's ID hash keys MintTraceID so the trace
// identity a segment carries is stable across process restarts.
func SiteID(name string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	return h
}

// MintTraceID derives the wire-propagated trace ID for a segment:
// splitmix64 over the minting site (gateway ID hash) and the segment's
// absolute start sample. Both inputs survive crash/restart — a
// WAL-recovered segment re-shipped under a fresh epoch keeps the same
// trace identity it was minted with.
func MintTraceID(site uint64, start int64) uint64 {
	z := (site ^ uint64(start)) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// ctxKey keys the span carried through a context.
type ctxKey struct{}

// ContextWithSpan attaches sp to ctx; a nil span returns ctx unchanged, so
// disabled tracing allocates nothing.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
