package obs

import (
	"context"
	"sync"
	"sync/atomic"
)

// MaxStages bounds the stages one span can hold. Spans live in a
// sync.Pool and carry a fixed-size stage array, so recording a stage never
// allocates; stages past the cap are counted in DroppedStages instead of
// grown.
const MaxStages = 24

// DefaultTraceRing is the span ring size when Tracer is built with
// ringSize <= 0.
const DefaultTraceRing = 256

// Stage is one timed step of a span. Dur is measured on the clock of
// whichever subsystem recorded it (the tracer clock for timed stages, the
// farm's sample clock for queue waits — see DESIGN.md §10 for the per-stage
// contract); Value carries a stage-specific magnitude such as residual
// energy after a SIC round or bytes put on the wire.
type Stage struct {
	Name  string  `json:"name"`
	Dur   int64   `json:"dur"`
	Value float64 `json:"value,omitempty"`
}

// Span accumulates the stages of one traced segment. Obtain with
// Tracer.Start, record with Stage, finish with End. A span is owned by one
// goroutine at a time; the internal mutex makes the handoffs (gateway →
// farm worker → reply sequencer) safe even when they race with an HTTP
// snapshot of an ancestor.
//
// All methods are nil-safe: instrumented code calls them unconditionally
// and a disabled tracer (nil) costs one predictable branch.
type Span struct {
	mu      sync.Mutex
	tr      *Tracer
	id      uint64
	kind    string
	start   int64
	end     int64
	n       int
	dropped int
	stages  [MaxStages]Stage
}

// TraceID returns the span's trace ID (0 for a nil span).
func (sp *Span) TraceID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.id
}

// Now reads the owning tracer's clock (0 for a nil span), so deep callees
// can time stages without threading the tracer through every signature.
func (sp *Span) Now() int64 {
	if sp == nil || sp.tr == nil {
		return 0
	}
	return sp.tr.Now()
}

// Stage appends one timed stage. Past MaxStages the stage is dropped and
// counted, never grown — recording stays allocation-free.
func (sp *Span) Stage(name string, dur int64, value float64) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.n < MaxStages {
		sp.stages[sp.n] = Stage{Name: name, Dur: dur, Value: value}
		sp.n++
	} else {
		sp.dropped++
	}
	sp.mu.Unlock()
}

// End stamps the span's end time, publishes it to the tracer's ring, and
// recycles it. The span must not be used after End.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	tr := sp.tr
	if tr == nil { // already ended
		sp.mu.Unlock()
		return
	}
	sp.end = tr.Now()
	rec := spanRec{
		id:      sp.id,
		kind:    sp.kind,
		start:   sp.start,
		end:     sp.end,
		n:       sp.n,
		dropped: sp.dropped,
		stages:  sp.stages,
	}
	sp.tr = nil
	sp.mu.Unlock()
	tr.record(rec)
	tr.pool.Put(sp)
}

// spanRec is a finished span as stored in the tracer ring: plain values,
// no mutex, copyable.
type spanRec struct {
	id      uint64
	kind    string
	start   int64
	end     int64
	n       int
	dropped int
	stages  [MaxStages]Stage
}

// SpanSnapshot is the JSON form of a finished span.
type SpanSnapshot struct {
	TraceID       uint64  `json:"trace_id"`
	Kind          string  `json:"kind"`
	Start         int64   `json:"start"`
	End           int64   `json:"end"`
	DroppedStages int     `json:"dropped_stages,omitempty"`
	Stages        []Stage `json:"stages"`
}

// TraceSnapshot groups the spans that share a trace ID — in the
// single-process example the gateway-side and cloud-side spans of one
// segment merge into one trace here.
type TraceSnapshot struct {
	TraceID uint64         `json:"trace_id"`
	Spans   []SpanSnapshot `json:"spans"`
}

// Tracer hands out spans and keeps the most recent finished ones in a
// ring for /trace/recent. The zero clock is a deterministic step counter
// (every Now call advances it by one), which keeps library code replayable
// under the nondeterminism rule; commands inject the wall clock with
// SetClock before starting traffic.
type Tracer struct {
	clock func() int64
	seq   atomic.Int64
	pool  sync.Pool

	mu    sync.Mutex
	ring  []spanRec
	next  int
	total uint64
}

// NewTracer builds a tracer whose ring keeps the last ringSize finished
// spans (<= 0 means DefaultTraceRing).
func NewTracer(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultTraceRing
	}
	return &Tracer{ring: make([]spanRec, ringSize)}
}

// SetClock replaces the deterministic step clock, typically with
// func() int64 { return time.Now().UnixNano() }. Call before the tracer is
// shared across goroutines.
func (t *Tracer) SetClock(clock func() int64) {
	if t != nil {
		t.clock = clock
	}
}

// Now reads the tracer clock (0 for a nil tracer).
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	if t.clock != nil {
		return t.clock()
	}
	return t.seq.Add(1)
}

// Start opens a span of the given kind for trace id. Returns nil (a valid,
// inert span) when the tracer is nil.
func (t *Tracer) Start(kind string, id uint64) *Span {
	if t == nil {
		return nil
	}
	sp, _ := t.pool.Get().(*Span)
	if sp == nil {
		sp = &Span{}
	}
	sp.mu.Lock()
	sp.tr = t
	sp.id = id
	sp.kind = kind
	sp.start = t.Now()
	sp.end = 0
	sp.n = 0
	sp.dropped = 0
	sp.mu.Unlock()
	return sp
}

// record appends a finished span to the ring.
func (t *Tracer) record(rec spanRec) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next = (t.next + 1) % len(t.ring)
	t.total++
	t.mu.Unlock()
}

// Recent returns the ring's finished spans, oldest first, grouped into
// traces by trace ID (groups ordered by each trace's oldest span).
func (t *Tracer) Recent() []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	n := int(t.total)
	if t.total > uint64(len(t.ring)) {
		n = len(t.ring)
	}
	recs := make([]spanRec, 0, n)
	for i := 0; i < n; i++ {
		// Oldest record first: when the ring has wrapped, t.next points at
		// the oldest slot.
		idx := i
		if t.total > uint64(len(t.ring)) {
			idx = (t.next + i) % len(t.ring)
		}
		recs = append(recs, t.ring[idx])
	}
	t.mu.Unlock()

	var out []TraceSnapshot
	byID := make(map[uint64]int, len(recs))
	for _, rec := range recs {
		snap := SpanSnapshot{
			TraceID:       rec.id,
			Kind:          rec.kind,
			Start:         rec.start,
			End:           rec.end,
			DroppedStages: rec.dropped,
			Stages:        append([]Stage(nil), rec.stages[:rec.n]...),
		}
		gi, ok := byID[rec.id]
		if !ok {
			gi = len(out)
			out = append(out, TraceSnapshot{TraceID: rec.id})
			byID[rec.id] = gi
		}
		out[gi].Spans = append(out[gi].Spans, snap)
	}
	return out
}

// SegmentTraceID derives a stable trace ID from a segment's absolute start
// sample (splitmix64). The gateway and the cloud both see that offset —
// it rides in the existing segment header — so the two sides of one
// segment correlate into a single trace without any wire-format change.
func SegmentTraceID(start int64) uint64 {
	z := uint64(start) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ctxKey keys the span carried through a context.
type ctxKey struct{}

// ContextWithSpan attaches sp to ctx; a nil span returns ctx unchanged, so
// disabled tracing allocates nothing.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
