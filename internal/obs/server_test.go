package obs

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// TestServerEndpoints starts a server on a free port, exercises every
// endpoint, and shuts it down. The goroutine accounting at the end is the
// leak check the goleak lint rule's "visible join" demands at runtime:
// after Close returns, the serve goroutine must be gone.
func TestServerEndpoints(t *testing.T) {
	before := runtime.NumGoroutine()

	reg := NewRegistry()
	reg.Counter("gateway_segments_shipped_total").Add(7)
	reg.Gauge("farm_jobs_queued_count").Set(2)
	reg.Histogram("farm_queue_wait_samples", 16).Observe(500)
	tr := NewTracer(8)
	sp := tr.Start("gateway-segment", SegmentTraceID(1))
	sp.Stage("detect", 3, 0)
	sp.End()

	s := &Server{Registry: reg, Tracer: tr}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("start: %v", err)
	}
	base := fmt.Sprintf("http://%s", s.Addr())

	var snap Snapshot
	getJSON(t, base+"/metrics", http.StatusOK, &snap)
	if snap.Counters["gateway_segments_shipped_total"] != 7 {
		t.Fatalf("metrics counters = %v", snap.Counters)
	}
	if snap.Gauges["farm_jobs_queued_count"] != 2 {
		t.Fatalf("metrics gauges = %v", snap.Gauges)
	}
	if hs := snap.Histograms["farm_queue_wait_samples"]; hs.Count != 1 || hs.P50 != 500 {
		t.Fatalf("metrics histograms = %v", snap.Histograms)
	}

	var traces []TraceSnapshot
	getJSON(t, base+"/trace/recent", http.StatusOK, &traces)
	if len(traces) != 1 || len(traces[0].Spans) != 1 || traces[0].Spans[0].Kind != "gateway-segment" {
		t.Fatalf("traces = %+v", traces)
	}

	// pprof is wired on the server's own mux (cmdline is the cheap one).
	resp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof: %v", err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatalf("pprof body: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", resp.StatusCode)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The serve goroutine must have joined; allow the runtime a moment to
	// retire connection handlers.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked across server lifecycle: %d -> %d", before, now)
	}
}

func TestServerEmptyBackends(t *testing.T) {
	t.Parallel()
	s := &Server{} // no registry, no tracer
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	base := fmt.Sprintf("http://%s", s.Addr())
	var snap Snapshot
	getJSON(t, base+"/metrics", http.StatusOK, &snap)
	var traces []TraceSnapshot
	getJSON(t, base+"/trace/recent", http.StatusOK, &traces)
	if len(traces) != 0 {
		t.Fatalf("traces = %v", traces)
	}
}

func TestServerDoubleStartAndIdleClose(t *testing.T) {
	t.Parallel()
	var idle Server
	if err := idle.Close(); err != nil {
		t.Fatalf("close before start: %v", err)
	}
	s := &Server{}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("start: %v", err)
	}
	if err := s.Start("127.0.0.1:0"); err == nil {
		t.Fatal("second Start did not error")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
