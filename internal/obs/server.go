package obs

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
)

// Server is the live-introspection HTTP endpoint mounted behind the
// -obs-addr flag of the serving commands:
//
//	GET /metrics       registry snapshot as one JSON object
//	GET /trace/recent  ring of recent segment traces (spans grouped by ID)
//	GET /trace/tree    one assembled trace tree by ?id= (decimal or 0x hex)
//	GET /trace/slowest the ?n= longest retained trace trees (default 10)
//	GET /events/recent event-journal ring (state transitions, oldest first)
//	GET /healthz       liveness checks; 503 when any fails
//	GET /readyz        liveness + readiness checks; 503 when any fails
//	GET /fleet/metrics fleet rollup across the configured scrape targets
//	GET /debug/pprof/  standard pprof handlers (explicitly wired to the
//	                   server's own mux, not http.DefaultServeMux)
//
// Start listens and serves in a background goroutine; Close shuts the
// server down and joins that goroutine, so a started server never leaks.
type Server struct {
	// Registry backs /metrics; nil serves an empty snapshot.
	Registry *Registry
	// Tracer backs /trace/recent; nil serves an empty list.
	Tracer *Tracer
	// Journal backs /events/recent; nil serves an empty list.
	Journal *Journal
	// Traces backs /trace/tree and /trace/slowest; nil serves 404 / empty.
	Traces *TraceStore
	// Health backs /healthz and /readyz; nil reports vacuously healthy.
	Health *Health
	// Fleet backs /fleet/metrics; nil serves an empty rollup.
	Fleet *Fleet

	wg       sync.WaitGroup
	ln       net.Listener
	srv      *http.Server
	serveErr error // written by the serve goroutine, read after wg.Wait
}

// Start binds addr ("host:port"; ":0" picks a free port — see Addr) and
// serves in the background until Close.
func (s *Server) Start(addr string) error {
	if s.srv != nil {
		return errors.New("obs: server already started")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/trace/recent", s.handleTraces)
	mux.HandleFunc("/trace/tree", s.handleTraceTree)
	mux.HandleFunc("/trace/slowest", s.handleTraceSlowest)
	mux.HandleFunc("/events/recent", s.handleEvents)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/fleet/metrics", s.handleFleet)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: mux}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.serveErr = err
		}
	}()
	return nil
}

// Addr returns the bound listener address, or nil before Start.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener, closes open connections, and waits for the
// serve goroutine. Safe to call without a successful Start.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	err := s.srv.Close()
	s.wg.Wait()
	if s.serveErr != nil {
		return s.serveErr
	}
	return err
}

// writeJSON marshals v and writes it with a trailing newline. Encode
// errors surface as a 500; write errors mean the client went away and are
// deliberately dropped.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(data, '\n'))
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.Registry == nil {
		writeJSON(w, Snapshot{})
		return
	}
	writeJSON(w, s.Registry.Snapshot())
}

func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	traces := s.Tracer.Recent()
	if traces == nil {
		traces = []TraceSnapshot{}
	}
	writeJSON(w, traces)
}

// ParseTraceID parses a trace ID in decimal or 0x-prefixed hex — the two
// forms trace IDs appear in across JSON artifacts and rendered trees.
func ParseTraceID(s string) (uint64, error) {
	if len(s) > 2 && (s[:2] == "0x" || s[:2] == "0X") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

func (s *Server) handleTraceTree(w http.ResponseWriter, r *http.Request) {
	id, err := ParseTraceID(r.URL.Query().Get("id"))
	if err != nil {
		http.Error(w, "bad trace id: "+err.Error(), http.StatusBadRequest)
		return
	}
	tree, ok := s.Traces.Trace(id)
	if !ok {
		http.Error(w, "trace not found", http.StatusNotFound)
		return
	}
	writeJSON(w, tree)
}

func (s *Server) handleTraceSlowest(w http.ResponseWriter, r *http.Request) {
	n := 10
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	trees := s.Traces.Slowest(n)
	if trees == nil {
		trees = []TraceTree{}
	}
	writeJSON(w, trees)
}

func (s *Server) handleEvents(w http.ResponseWriter, _ *http.Request) {
	events := s.Journal.Recent()
	if events == nil {
		events = []Event{}
	}
	writeJSON(w, events)
}

// writeHealth serves one health snapshot: the JSON body always carries
// the full per-check breakdown, and the status code makes the verdict
// consumable by probes that only look at HTTP status.
func writeHealth(w http.ResponseWriter, snap HealthSnapshot) {
	if snap.Checks == nil {
		snap.Checks = []CheckStatus{}
	}
	data, err := json.Marshal(snap)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if !snap.Healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_, _ = w.Write(append(data, '\n'))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeHealth(w, s.Health.Liveness())
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	writeHealth(w, s.Health.Readiness())
}

func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Fleet.Collect())
}
