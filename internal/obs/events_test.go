package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestValidEventName(t *testing.T) {
	t.Parallel()
	valid := []string{
		"gateway_session_establish",
		"gateway_session_die",
		"gateway_redial_backoff",
		"gateway_degraded_enter",
		"gateway_degraded_exit",
		"cloud_session_reap",
		"fleet_shard_attach",
		"gateway_busy_reject",
	}
	for _, name := range valid {
		if !ValidEventName(name) {
			t.Errorf("ValidEventName(%q) = false, want true", name)
		}
	}
	invalid := []string{
		"",
		"establish",                   // one segment
		"gateway_session_up",          // verb not in vocabulary
		"Gateway_Session_Establish",   // case
		"gateway__establish",          // empty segment
		"1gateway_establish",          // leading digit
		"gateway_segments_total",      // metric name, not an event
		"gateway_session_establish_x", // trailing non-verb
	}
	for _, name := range invalid {
		if ValidEventName(name) {
			t.Errorf("ValidEventName(%q) = true, want false", name)
		}
	}
}

func TestJournalRecordPanicsOnBadName(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Record with a bad name did not panic")
		}
	}()
	NewJournal(4).Record("NotAnEvent", 0)
}

func TestJournalRecordsOrderedEvents(t *testing.T) {
	t.Parallel()
	j := NewJournal(8)
	j.Record("gateway_session_establish", 1)
	j.Record("gateway_session_die", 2)
	j.Record("gateway_redial_backoff", 30)
	j.Record("gateway_session_establish", 2)

	events := j.Recent()
	wantNames := []string{
		"gateway_session_establish",
		"gateway_session_die",
		"gateway_redial_backoff",
		"gateway_session_establish",
	}
	if len(events) != len(wantNames) {
		t.Fatalf("Recent returned %d events, want %d: %+v", len(events), len(wantNames), events)
	}
	for i, e := range events {
		if e.Name != wantNames[i] {
			t.Errorf("event %d name = %q, want %q", i, e.Name, wantNames[i])
		}
		if e.Seq != uint64(i) {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, i)
		}
		if e.Count != 1 {
			t.Errorf("event %d count = %d, want 1", i, e.Count)
		}
		// The deterministic step clock advances by one per record.
		if e.At != int64(i)+1 {
			t.Errorf("event %d at = %d, want %d", i, e.At, i+1)
		}
	}
}

func TestJournalCoalescesConsecutiveBursts(t *testing.T) {
	t.Parallel()
	j := NewJournal(8)
	j.Record("gateway_session_establish", 1)
	for i := 0; i < 100; i++ {
		j.Record("gateway_busy_reject", int64(i))
	}
	j.Record("gateway_session_die", 0)

	events := j.Recent()
	if len(events) != 3 {
		t.Fatalf("Recent returned %d events, want 3 (burst must coalesce): %+v", len(events), events)
	}
	burst := events[1]
	if burst.Name != "gateway_busy_reject" {
		t.Fatalf("middle event = %q, want gateway_busy_reject", burst.Name)
	}
	if burst.Count != 100 {
		t.Errorf("burst count = %d, want 100", burst.Count)
	}
	if burst.Value != 99 {
		t.Errorf("burst value = %d, want 99 (last recorded wins)", burst.Value)
	}
	// A burst consumes one sequence number: the event after it is seq 2.
	if events[2].Seq != 2 {
		t.Errorf("post-burst seq = %d, want 2", events[2].Seq)
	}
}

func TestJournalRingOverwritesOldest(t *testing.T) {
	t.Parallel()
	j := NewJournal(4)
	names := []string{
		"gateway_session_establish",
		"gateway_session_die",
		"gateway_redial_backoff",
		"gateway_degraded_enter",
		"gateway_degraded_exit",
		"cloud_session_reap",
	}
	for i, n := range names {
		j.Record(n, int64(i))
	}
	events := j.Recent()
	if len(events) != 4 {
		t.Fatalf("Recent returned %d events, want ring size 4", len(events))
	}
	for i, e := range events {
		want := names[len(names)-4+i]
		if e.Name != want {
			t.Errorf("event %d = %q, want %q (oldest-first after wrap)", i, e.Name, want)
		}
	}
	// Seq numbers reveal the overwrite: the oldest surviving entry is seq 2.
	if events[0].Seq != 2 {
		t.Errorf("oldest surviving seq = %d, want 2", events[0].Seq)
	}
}

func TestJournalNilSafe(t *testing.T) {
	t.Parallel()
	var j *Journal
	j.Record("gateway_session_establish", 1)
	j.SetClock(func() int64 { return 7 })
	if got := j.Recent(); got != nil {
		t.Errorf("nil journal Recent = %v, want nil", got)
	}
	if got := j.Names(); got != nil {
		t.Errorf("nil journal Names = %v, want nil", got)
	}
}

func TestJournalNames(t *testing.T) {
	t.Parallel()
	j := NewJournal(16)
	j.Record("gateway_session_establish", 0)
	j.Record("gateway_session_die", 0)
	j.Record("gateway_session_establish", 0)
	got := j.Names()
	want := []string{"gateway_session_establish", "gateway_session_die"}
	if len(got) != len(want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}

func TestJournalConcurrentRecord(t *testing.T) {
	t.Parallel()
	j := NewJournal(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j.Record("gateway_busy_reject", int64(g))
				if i%50 == 0 {
					j.Recent()
				}
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for _, e := range j.Recent() {
		if e.Name != "gateway_busy_reject" {
			t.Fatalf("unexpected event %q", e.Name)
		}
		total += e.Count
	}
	// Everything coalesces into entries that never wrap (single name), so
	// no record is lost.
	if total != 8*200 {
		t.Fatalf("coalesced count sum = %d, want %d", total, 8*200)
	}
}

func TestJournalRecentIsACopy(t *testing.T) {
	t.Parallel()
	j := NewJournal(4)
	j.Record("gateway_session_establish", 1)
	got := j.Recent()
	got[0].Name = "mutated"
	if j.Recent()[0].Name != "gateway_session_establish" {
		t.Fatal("Recent exposed the journal's internal ring")
	}
}

func ExampleJournal() {
	j := NewJournal(8)
	j.Record("gateway_session_establish", 1)
	j.Record("gateway_busy_reject", 1)
	j.Record("gateway_busy_reject", 2)
	for _, e := range j.Recent() {
		fmt.Printf("%s count=%d value=%d\n", e.Name, e.Count, e.Value)
	}
	// Output:
	// gateway_session_establish count=1 value=1
	// gateway_busy_reject count=2 value=2
}
