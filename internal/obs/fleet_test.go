package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
)

func TestSketchRoundTripExactBelow16(t *testing.T) {
	t.Parallel()
	for v := int64(-3); v < 16; v++ {
		want := v
		if v < 0 {
			want = 0
		}
		if got := SketchValue(SketchIndex(v)); got != want {
			t.Errorf("SketchValue(SketchIndex(%d)) = %d, want %d", v, got, want)
		}
	}
}

func TestSketchErrorBound(t *testing.T) {
	t.Parallel()
	// The documented bound: for v >= 16 the bucket midpoint is within
	// 1/16 of the value. Walk a dense range plus exponentially spaced
	// large values.
	check := func(v int64) {
		rep := SketchValue(SketchIndex(v))
		if err := math.Abs(float64(rep-v)) / float64(v); err > 1.0/16 {
			t.Errorf("value %d reconstructs to %d: relative error %.4f > 1/16", v, rep, err)
		}
	}
	for v := int64(16); v < 4096; v++ {
		check(v)
	}
	for v := int64(1); v > 0 && v < 1<<60; v = v*7 + 13 {
		if v >= 16 {
			check(v)
		}
	}
}

func TestSketchIndexMonotone(t *testing.T) {
	t.Parallel()
	prev := SketchIndex(0)
	for v := int64(1); v < 1<<20; v++ {
		idx := SketchIndex(v)
		if idx < prev {
			t.Fatalf("SketchIndex(%d) = %d < SketchIndex(%d) = %d", v, idx, v-1, prev)
		}
		prev = idx
	}
}

// splitmix is a tiny deterministic generator for test workloads.
func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestMergedQuantilesWithinSketchError is the rollup-correctness half of
// the aggregation contract: quantiles read from a merged sketch must be
// within the documented 1/16 relative error of the exact quantiles over
// the union of the windows.
func TestMergedQuantilesWithinSketchError(t *testing.T) {
	t.Parallel()
	const targets, perTarget = 5, 700
	state := uint64(42)
	var all []int64
	names := make([]string, 0, targets)
	snaps := make([]Snapshot, 0, targets)
	for ti := 0; ti < targets; ti++ {
		reg := NewRegistry()
		h := reg.Histogram("farm_queue_wait_samples", perTarget)
		for i := 0; i < perTarget; i++ {
			// Heavy-tailed positive values across several octaves, the
			// shape of real queue waits.
			v := int64(splitmix(&state)%100) * int64(splitmix(&state)%1000)
			h.Observe(v)
			all = append(all, v)
		}
		names = append(names, "shard"+string(rune('0'+ti)))
		snaps = append(snaps, reg.Snapshot())
	}
	agg := Aggregate(names, snaps)
	ah, ok := agg.Histograms["farm_queue_wait_samples"]
	if !ok {
		t.Fatal("merged histogram missing from rollup")
	}
	if ah.Count != targets*perTarget {
		t.Fatalf("merged count = %d, want %d", ah.Count, targets*perTarget)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for _, p := range []struct {
		pct int
		got int64
	}{{50, ah.P50}, {99, ah.P99}} {
		exact := all[len(all)*p.pct/100]
		if exact < 16 {
			if p.got != exact {
				t.Errorf("p%d = %d, want exactly %d (small values are exact)", p.pct, p.got, exact)
			}
			continue
		}
		if err := math.Abs(float64(p.got-exact)) / float64(exact); err > 1.0/16 {
			t.Errorf("p%d = %d vs exact %d: relative error %.4f > 1/16", p.pct, p.got, exact, err)
		}
	}
}

func TestAggregateCountersSumExactly(t *testing.T) {
	t.Parallel()
	names := []string{"shard0", "shard1", "front"}
	snaps := []Snapshot{
		{Counters: map[string]uint64{"cloud_segments_decoded_total": 3, "cloud_frames_decoded_total": 5}},
		{Counters: map[string]uint64{"cloud_segments_decoded_total": 7}},
		{Counters: map[string]uint64{"cloud_fleet_sessions_total": 11}},
	}
	agg := Aggregate(names, snaps)
	if got := agg.Counters["cloud_segments_decoded_total"]; got.Total != 10 {
		t.Errorf("decoded total = %d, want 10", got.Total)
	}
	if got := agg.Counters["cloud_segments_decoded_total"].PerTarget["shard1"]; got != 7 {
		t.Errorf("shard1 decoded = %d, want 7", got)
	}
	if got := agg.Counters["cloud_frames_decoded_total"]; got.Total != 5 || len(got.PerTarget) != 1 {
		t.Errorf("frames agg = %+v, want total 5 from one target", got)
	}
	if got := agg.Counters["cloud_fleet_sessions_total"].Total; got != 11 {
		t.Errorf("front-only counter total = %d, want 11", got)
	}
}

func TestAggregateGaugesLabeledExtremes(t *testing.T) {
	t.Parallel()
	names := []string{"shard0", "shard1", "shard2"}
	snaps := []Snapshot{
		{Gauges: map[string]int64{"farm_jobs_queued_count": 4}},
		{Gauges: map[string]int64{"farm_jobs_queued_count": 10}},
		{Gauges: map[string]int64{"farm_jobs_queued_count": 1}},
	}
	agg := Aggregate(names, snaps)
	g := agg.Gauges["farm_jobs_queued_count"]
	if g.Min != 1 || g.MinTarget != "shard2" {
		t.Errorf("min = %d@%s, want 1@shard2", g.Min, g.MinTarget)
	}
	if g.Max != 10 || g.MaxTarget != "shard1" {
		t.Errorf("max = %d@%s, want 10@shard1", g.Max, g.MaxTarget)
	}
	if g.Sum != 15 {
		t.Errorf("sum = %d, want 15", g.Sum)
	}
	if math.Abs(g.Mean-5) > 1e-9 {
		t.Errorf("mean = %v, want 5", g.Mean)
	}
}

func TestFleetCollectReportsFetchErrors(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	reg.Counter("cloud_segments_decoded_total").Add(9)
	f := NewFleet(
		RegistryTarget("good", reg),
		Target{Name: "bad", Fetch: func() (Snapshot, error) {
			return Snapshot{}, errTest
		}},
	)
	snap := f.Collect()
	if len(snap.Targets) != 2 {
		t.Fatalf("targets = %v, want both listed", snap.Targets)
	}
	if snap.Errors["bad"] == "" {
		t.Fatalf("errors = %v, want bad target reported", snap.Errors)
	}
	if got := snap.Counters["cloud_segments_decoded_total"].Total; got != 9 {
		t.Errorf("total = %d, want 9 (bad target excluded, good merged)", got)
	}
}

var errTest = errAlways("target down")

type errAlways string

func (e errAlways) Error() string { return string(e) }

func TestHTTPTargetScrapesMetricsEndpoint(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	reg.Counter("gateway_segments_shipped_total").Add(3)
	reg.Histogram("farm_queue_wait_samples", 16).Observe(100)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_ = json.NewEncoder(w).Encode(reg.Snapshot())
	}))
	defer ts.Close()

	tgt := HTTPTarget("gw0", ts.URL, nil)
	snap, err := tgt.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["gateway_segments_shipped_total"] != 3 {
		t.Errorf("scraped counter = %d, want 3", snap.Counters["gateway_segments_shipped_total"])
	}
	// The sketch survives the JSON round trip, so remote histograms merge
	// like local ones.
	hs := snap.Histograms["farm_queue_wait_samples"]
	if len(hs.Sketch) != 1 || hs.Sketch[0].Count != 1 {
		t.Errorf("scraped sketch = %+v, want one occupied bucket", hs.Sketch)
	}

	down := HTTPTarget("gw1", "http://127.0.0.1:1/metrics", nil)
	if _, err := down.Fetch(); err == nil {
		t.Error("scraping a dead endpoint must fail")
	}
}

// TestServerFleetEndpoints drives the four new endpoints end to end over
// a real listener: /fleet/metrics, /healthz, /readyz, /events/recent.
func TestServerFleetEndpoints(t *testing.T) {
	t.Parallel()
	regA, regB := NewRegistry(), NewRegistry()
	regA.Counter("cloud_segments_decoded_total").Add(2)
	regB.Counter("cloud_segments_decoded_total").Add(5)
	j := NewJournal(8)
	j.Record("fleet_shard_attach", 0)
	j.Record("fleet_shard_attach", 1)
	h := NewHealth()
	healthy := true
	h.Register("fleet_plane_liveness", func() CheckResult {
		if healthy {
			return Healthy("")
		}
		return Unhealthy("down")
	})

	srv := &Server{
		Journal: j,
		Health:  h,
		Fleet:   NewFleet(RegistryTarget("shard0", regA), RegistryTarget("shard1", regB)),
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr().String()

	var fs FleetSnapshot
	getJSON(t, base+"/fleet/metrics", http.StatusOK, &fs)
	if got := fs.Counters["cloud_segments_decoded_total"].Total; got != 7 {
		t.Errorf("/fleet/metrics total = %d, want 7", got)
	}
	if len(fs.Targets) != 2 {
		t.Errorf("/fleet/metrics targets = %v, want 2", fs.Targets)
	}

	var events []Event
	getJSON(t, base+"/events/recent", http.StatusOK, &events)
	if len(events) != 1 || events[0].Name != "fleet_shard_attach" || events[0].Count != 2 {
		t.Errorf("/events/recent = %+v, want one coalesced fleet_shard_attach", events)
	}

	var hs HealthSnapshot
	getJSON(t, base+"/healthz", http.StatusOK, &hs)
	if !hs.Healthy {
		t.Errorf("/healthz = %+v, want healthy", hs)
	}
	healthy = false
	getJSON(t, base+"/healthz", http.StatusServiceUnavailable, &hs)
	if hs.Healthy || len(hs.Checks) != 1 {
		t.Errorf("/healthz after flip = %+v, want unhealthy with the check listed", hs)
	}
	getJSON(t, base+"/readyz", http.StatusServiceUnavailable, &hs)
	if hs.Healthy {
		t.Errorf("/readyz = %+v, want unready while a liveness check fails", hs)
	}
}

// getJSON fetches url, asserts the status code, and decodes the body.
func getJSON(t *testing.T, url string, wantStatus int, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s status = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: content type %q", url, ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s decode: %v", url, err)
	}
}
