package obs

// StageTimer records per-stage durations into a registry histogram without
// allocating on the hot path. It follows the package's determinism rule:
// the clock is injected (commands pass time.Now().UnixNano; libraries a
// sample clock or step counter), never read from the wall here.
//
// Usage in a hot loop:
//
//	start := timer.Start()
//	... stage work ...
//	timer.Stop(start)
//
// Start/Stop return and accept a raw int64 instead of a closure so the
// instrumented loop stays allocation-free (a func() capture would escape).
// All methods are nil-safe no-ops, so wiring is optional: a nil *StageTimer
// costs one predictable branch.
type StageTimer struct {
	clock func() int64
	hist  *Histogram
}

// NewStageTimer builds a timer that observes durations into the named
// histogram of r (window <= 0 means DefaultHistogramWindow). The name must
// follow the subsystem_name_unit scheme and should end in _nanos. A nil
// registry or nil clock yields a nil timer, which is safe to use.
func NewStageTimer(r *Registry, name string, window int, clock func() int64) *StageTimer {
	if r == nil || clock == nil {
		return nil
	}
	return &StageTimer{clock: clock, hist: r.Histogram(name, window)}
}

// Start returns the current clock reading (0 for a nil timer).
func (t *StageTimer) Start() int64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// Stop observes now-start into the histogram. Negative deltas (a clock
// that stepped backwards mid-stage) are clamped to zero rather than
// poisoning the quantiles.
func (t *StageTimer) Stop(start int64) {
	if t == nil {
		return
	}
	d := t.clock() - start
	if d < 0 {
		d = 0
	}
	t.hist.Observe(d)
}
