// Package obs is the observability layer of the GalioT pipeline: a
// registry of named counters, gauges and windowed histograms, per-segment
// trace spans, and an HTTP introspection server (/metrics, /trace/recent,
// /debug/pprof). It is stdlib-only and obeys the repository's determinism
// and hot-path rules (DESIGN.md §10):
//
//   - Counters and gauges are single atomics; incrementing one from the
//     detect or decode hot path is a handful of nanoseconds and never
//     allocates or takes a lock.
//   - Histograms are lock-free windowed rings of atomics; Observe is one
//     atomic add plus one atomic store. Quantiles are computed at snapshot
//     time, off the hot path, with the same integer index math the farm's
//     private estimator used (sorted[n*p/100]) so migrated outputs are
//     bit-identical.
//   - Nothing in this package reads the wall clock; trace durations come
//     from an injectable clock that defaults to a deterministic step
//     counter (commands inject time.Now, libraries stay replayable).
//
// Metric names follow subsystem_name_unit (lowercase snake_case, at least
// three segments, unit drawn from a closed vocabulary) so they stay
// greppable; the obsnames lint rule enforces the scheme on literals and
// the registry panics on dynamic names that break it.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// MetricUnits is the closed unit vocabulary a metric name must end with.
// Keep in sync with the obsnames rule's documentation. "millis" is for
// human-scale durations surfaced on dashboards (backoff delays); "state"
// is for small discrete enumerations (0/1 connectivity flags) where
// neither count nor ratio reads honestly.
var MetricUnits = []string{"bytes", "count", "millis", "nanos", "ratio", "samples", "state", "total"}

// ValidMetricName reports whether name follows the subsystem_name_unit
// scheme: lowercase snake_case, at least three segments, no empty or
// non-[a-z0-9] segments, first character a letter, final segment one of
// MetricUnits.
func ValidMetricName(name string) bool {
	if name == "" || name[0] < 'a' || name[0] > 'z' {
		return false
	}
	segments := 1
	segStart := 0
	lastSeg := ""
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '_' {
			if i == segStart {
				return false // empty segment
			}
			lastSeg = name[segStart:i]
			segStart = i + 1
			if i < len(name) {
				segments++
			}
			continue
		}
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
	}
	if segments < 3 {
		return false
	}
	for _, u := range MetricUnits {
		if lastSeg == u {
			return true
		}
	}
	return false
}

// mustValidName guards registration against dynamic names the obsnames
// lint rule cannot see. A bad name is a programming error, surfaced loudly.
func mustValidName(name string) {
	if !ValidMetricName(name) {
		panic("obs: metric name " + name + " does not follow subsystem_name_unit (lowercase snake_case, >=3 segments, unit in {bytes,count,millis,nanos,ratio,samples,state,total})")
	}
}

// SanitizeToken lowercases s and strips everything outside [a-z0-9], for
// splicing externally-sourced identifiers (technology names, gateway IDs)
// into metric names.
func SanitizeToken(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+('a'-'A'))
		}
	}
	if len(out) == 0 {
		return "unknown"
	}
	return string(out)
}

// Counter is a monotonically increasing atomic counter. All methods are
// nil-safe no-ops so instrumented code never needs a "metrics enabled?"
// branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultHistogramWindow is the observation window when Registry.Histogram
// is called with window <= 0. It matches the farm's historical estimator.
const DefaultHistogramWindow = 1024

// Histogram keeps the last window observations in a lock-free ring and
// computes quantiles over them at snapshot time. Observe is wait-free: one
// atomic add to claim a slot, one atomic store to fill it. A concurrent
// snapshot may see a slot mid-overwrite as either the old or the new value
// — both were real observations, so quantiles stay meaningful.
type Histogram struct {
	window int
	count  atomic.Uint64
	ring   []atomic.Int64
	ex     atomic.Pointer[Exemplar]
}

// Exemplar links a histogram's high-watermark observation to the trace
// that produced it, so a dashboard can jump from a p99 bucket straight
// to the trace tree behind it.
type Exemplar struct {
	Value   int64  `json:"value"`
	TraceID uint64 `json:"trace_id"`
}

// NewHistogram builds a standalone histogram (Registry.Histogram is the
// usual constructor).
func NewHistogram(window int) *Histogram {
	if window <= 0 {
		window = DefaultHistogramWindow
	}
	return &Histogram{window: window, ring: make([]atomic.Int64, window)}
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := h.count.Add(1) - 1
	h.ring[i%uint64(h.window)].Store(v)
}

// ObserveExemplar records one value and, when it sets a new high
// watermark, remembers the trace that produced it. The exemplar only
// allocates on a new maximum — rare by construction — so the hot path
// stays one atomic add, one store and one load.
func (h *Histogram) ObserveExemplar(v int64, trace uint64) {
	h.Observe(v)
	if h == nil || trace == 0 {
		return
	}
	for {
		cur := h.ex.Load()
		if cur != nil && v < cur.Value {
			return
		}
		if h.ex.CompareAndSwap(cur, &Exemplar{Value: v, TraceID: trace}) {
			return
		}
	}
}

// TakeExemplar returns the current exemplar (nil if none was ever set).
func (h *Histogram) TakeExemplar() *Exemplar {
	if h == nil {
		return nil
	}
	return h.ex.Load()
}

// SketchBucket is one occupied bucket of a histogram's log-linear
// quantile sketch (see SketchIndex for the bucket scheme).
type SketchBucket struct {
	Index int    `json:"index"`
	Count uint64 `json:"count"`
}

// SketchIndex maps a value to its sketch bucket. The scheme is log-linear
// with 8 linear sub-buckets per power-of-two octave:
//
//   - v <= 0 lands in bucket 0;
//   - 1 <= v < 16 is stored exactly (bucket index = v);
//   - v >= 16 lands in octave o = floor(log2 v), sub-bucket = the three
//     bits after the leading bit, i.e. bucket width 2^(o-3).
//
// Reconstructing a value from its bucket midpoint (SketchValue) is
// therefore exact below 16 and within 1/16 (6.25%) relative error above —
// the documented sketch error bound that merged fleet quantiles inherit.
func SketchIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	if v < 16 {
		return int(v)
	}
	o := bits.Len64(uint64(v)) - 1
	sub := int((v >> (o - 3)) & 7)
	return 16 + (o-4)*8 + sub
}

// SketchValue returns the representative value of a sketch bucket: the
// bucket itself below 16, the bucket midpoint above.
func SketchValue(index int) int64 {
	if index <= 0 {
		return 0
	}
	if index < 16 {
		return int64(index)
	}
	o := 4 + (index-16)/8
	sub := int64((index - 16) % 8)
	lo := int64(1)<<o + sub<<(o-3)
	return lo + int64(1)<<(o-4) // lo + half a bucket width
}

// HistogramSnapshot is a point-in-time summary of a Histogram.
type HistogramSnapshot struct {
	Count  uint64 `json:"count"`  // observations ever recorded
	Window int    `json:"window"` // ring capacity the quantiles cover
	P50    int64  `json:"p50"`
	P99    int64  `json:"p99"`
	// Sketch is the window's log-linear bucket sketch (occupied buckets
	// only, ascending index). Unlike P50/P99 it is mergeable: summing
	// bucket counts across targets yields fleet-level quantiles within
	// the documented 1/16 relative error (see SketchIndex).
	Sketch []SketchBucket `json:"sketch,omitempty"`
	// Exemplar is the high-watermark observation's trace link, when the
	// histogram was fed through ObserveExemplar.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// SketchPercentile returns the p-th percentile (0..100) reconstructed
// from the snapshot's sketch, using the same integer rank math as the
// exact estimator (rank = n*p/100 over the windowed observations).
func (s HistogramSnapshot) SketchPercentile(p int) int64 {
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	var n uint64
	for _, b := range s.Sketch {
		n += b.Count
	}
	if n == 0 {
		return 0
	}
	rank := n * uint64(p) / 100
	if rank >= n {
		rank = n - 1
	}
	var cum uint64
	for _, b := range s.Sketch {
		cum += b.Count
		if cum > rank {
			return SketchValue(b.Index)
		}
	}
	return SketchValue(s.Sketch[len(s.Sketch)-1].Index)
}

// MergeSketches sums bucket counts across snapshots, producing the
// fleet-level sketch (ascending index). Quantiles read from the merged
// sketch are within the documented per-bucket error of the exact
// quantiles over the union of the windows.
func MergeSketches(snaps ...HistogramSnapshot) []SketchBucket {
	counts := make(map[int]uint64)
	for _, s := range snaps {
		for _, b := range s.Sketch {
			counts[b.Index] += b.Count
		}
	}
	if len(counts) == 0 {
		return nil
	}
	idxs := make([]int, 0, len(counts))
	//lint:ignore nondeterminism the collected indices are sorted before use
	for i := range counts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]SketchBucket, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, SketchBucket{Index: i, Count: counts[i]})
	}
	return out
}

// Snapshot sorts a copy of the ring and summarizes it. The quantile index
// math (sorted[n*p/100]) is deliberately identical to the estimator it
// replaced in internal/farm, so existing outputs and tests carry over.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count.Load(), Window: h.window, Exemplar: h.ex.Load()}
	n := int(s.Count)
	if s.Count > uint64(h.window) {
		n = h.window
	}
	if n == 0 {
		return s
	}
	sorted := make([]int64, n)
	for i := 0; i < n; i++ {
		sorted[i] = h.ring[i].Load()
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s.P50 = sorted[n*50/100]
	s.P99 = sorted[n*99/100]
	// The sorted window feeds the mergeable sketch in one pass: equal
	// indexes are adjacent after the sort, so occupied buckets come out
	// ascending without a second sort.
	for i := 0; i < n; {
		idx := SketchIndex(sorted[i])
		j := i
		for j < n && SketchIndex(sorted[j]) == idx {
			j++
		}
		s.Sketch = append(s.Sketch, SketchBucket{Index: idx, Count: uint64(j - i)})
		i = j
	}
	return s
}

// Percentile returns the p-th percentile (0..100) over the current window,
// for callers that need quantiles beyond the snapshot's p50/p99.
func (h *Histogram) Percentile(p int) int64 {
	if h == nil {
		return 0
	}
	count := h.count.Load()
	n := int(count)
	if count > uint64(h.window) {
		n = h.window
	}
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]int64, n)
	for i := 0; i < n; i++ {
		sorted[i] = h.ring[i].Load()
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := n * p / 100
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

// Registry is a concurrent-safe namespace of metrics. Getters create on
// first use and return the same instance afterwards, so independently
// wired subsystems sharing a registry converge on the same counters.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	// Registration-ordered names, so snapshots never iterate a map
	// (iteration order would vary run to run).
	counterNames []string
	gaugeNames   []string
	histNames    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. The name
// must follow the subsystem_name_unit scheme (see ValidMetricName).
func (r *Registry) Counter(name string) *Counter {
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	r.counterNames = append(r.counterNames, name)
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	r.gaugeNames = append(r.gaugeNames, name)
	return g
}

// Histogram returns the named histogram, creating it with the given window
// on first use (window <= 0 means DefaultHistogramWindow). Later calls
// return the existing histogram regardless of window.
func (r *Registry) Histogram(name string, window int) *Histogram {
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := NewHistogram(window)
	r.hists[name] = h
	r.histNames = append(r.histNames, name)
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry. JSON
// encoding sorts map keys, so the serialized form is deterministic.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot reads every metric. Safe to call concurrently with writers; the
// result is a consistent-enough view for monitoring (each metric is read
// atomically, the set as a whole is not a transaction).
func (r *Registry) Snapshot() Snapshot {
	type counterRef struct {
		name string
		c    *Counter
	}
	type gaugeRef struct {
		name string
		g    *Gauge
	}
	type histRef struct {
		name string
		h    *Histogram
	}
	r.mu.Lock()
	counters := make([]counterRef, len(r.counterNames))
	for i, name := range r.counterNames {
		counters[i] = counterRef{name, r.counters[name]}
	}
	gauges := make([]gaugeRef, len(r.gaugeNames))
	for i, name := range r.gaugeNames {
		gauges[i] = gaugeRef{name, r.gauges[name]}
	}
	hists := make([]histRef, len(r.histNames))
	for i, name := range r.histNames {
		hists[i] = histRef{name, r.hists[name]}
	}
	r.mu.Unlock()

	snap := Snapshot{
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for _, ref := range counters {
		snap.Counters[ref.name] = ref.c.Value()
	}
	for _, ref := range gauges {
		snap.Gauges[ref.name] = ref.g.Value()
	}
	for _, ref := range hists {
		snap.Histograms[ref.name] = ref.h.Snapshot()
	}
	return snap
}
