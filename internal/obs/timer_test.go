package obs

import "testing"

func TestStageTimerRecordsDurations(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	var now int64
	clock := func() int64 { return now }
	timer := NewStageTimer(r, "perf_stage_duration_nanos", 16, clock)

	start := timer.Start()
	now += 42
	timer.Stop(start)

	snap := r.Histogram("perf_stage_duration_nanos", 16).Snapshot()
	if snap.Count != 1 {
		t.Fatalf("Count = %d, want 1", snap.Count)
	}
	if snap.P50 != 42 {
		t.Fatalf("P50 = %d, want 42", snap.P50)
	}
}

func TestStageTimerClampsBackwardsClock(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	var now int64 = 100
	timer := NewStageTimer(r, "perf_stage_duration_nanos", 16, func() int64 { return now })

	start := timer.Start()
	now = 50 // clock stepped backwards
	timer.Stop(start)

	snap := r.Histogram("perf_stage_duration_nanos", 16).Snapshot()
	if snap.P50 != 0 || snap.P99 != 0 {
		t.Fatalf("negative delta not clamped: %+v", snap)
	}
}

func TestStageTimerNilSafe(t *testing.T) {
	t.Parallel()
	var timer *StageTimer
	timer.Stop(timer.Start()) // must not panic

	if tm := NewStageTimer(nil, "perf_stage_duration_nanos", 0, func() int64 { return 0 }); tm != nil {
		t.Fatal("nil registry should yield nil timer")
	}
	if tm := NewStageTimer(NewRegistry(), "perf_stage_duration_nanos", 0, nil); tm != nil {
		t.Fatal("nil clock should yield nil timer")
	}
}

func TestNewMetricUnitsAccepted(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"gateway_backoff_current_millis", "gateway_connected_state"} {
		if !ValidMetricName(name) {
			t.Errorf("ValidMetricName(%q) = false, want true", name)
		}
	}
}
