package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestValidMetricName(t *testing.T) {
	t.Parallel()
	valid := []string{
		"gateway_segments_shipped_total",
		"farm_queue_wait_samples",
		"cloud_frames_lora_total",
		"farm_jobs_queued_count",
		"backhaul_bytes_sent_total",
		"detect_stream_pending_samples",
		"a_b2_ratio",
	}
	for _, name := range valid {
		if !ValidMetricName(name) {
			t.Errorf("ValidMetricName(%q) = false, want true", name)
		}
	}
	invalid := []string{
		"",
		"gateway_total",            // only two segments
		"Gateway_Segments_Total",   // uppercase
		"gateway_segments_shipped", // unit not in vocabulary
		"gateway__shipped_total",   // empty segment
		"_gateway_shipped_total",   // leading underscore
		"gateway_shipped_total_",   // trailing underscore
		"2gw_shipped_total",        // leading digit
		"gateway_ship-count_total", // dash
	}
	for _, name := range invalid {
		if ValidMetricName(name) {
			t.Errorf("ValidMetricName(%q) = true, want false", name)
		}
	}
}

func TestRegistryPanicsOnBadName(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Counter with invalid name did not panic")
		}
	}()
	NewRegistry().Counter("BadName")
}

func TestSanitizeToken(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"lora":    "lora",
		"Z-Wave":  "zwave",
		"802154":  "802154",
		"!!!":     "unknown",
		"HaLow 1": "halow1",
	}
	for in, want := range cases {
		if got := SanitizeToken(in); got != want {
			t.Errorf("SanitizeToken(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	t.Parallel()
	var c *Counter
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(5)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(7)
	if s := h.Snapshot(); s.Count != 0 || s.P50 != 0 {
		t.Fatal("nil histogram snapshot")
	}
	if h.Percentile(50) != 0 {
		t.Fatal("nil histogram percentile")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c1 := r.Counter("gateway_captures_processed_total")
	c2 := r.Counter("gateway_captures_processed_total")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	c1.Add(3)
	if c2.Value() != 3 {
		t.Fatal("counter instances not shared")
	}
	h1 := r.Histogram("farm_queue_wait_samples", 8)
	h2 := r.Histogram("farm_queue_wait_samples", 9999)
	if h1 != h2 {
		t.Fatal("same name returned distinct histograms")
	}
}

// TestHistogramQuantilesMatchFarmEstimator pins the quantile index math to
// the estimator this histogram replaced in internal/farm: four waits
// [0, 300, 500, 600] must yield p50 = sorted[4/2] = 500 and
// p99 = sorted[4*99/100] = sorted[3] = 600, exactly what
// farm.TestQueueWaitSampleClock asserts through Stats.
func TestHistogramQuantilesMatchFarmEstimator(t *testing.T) {
	t.Parallel()
	h := NewHistogram(1024)
	for _, v := range []int64{600, 0, 500, 300} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Window != 1024 {
		t.Fatalf("snapshot meta = %+v", s)
	}
	if s.P50 != 500 || s.P99 != 600 {
		t.Fatalf("quantiles p50=%d p99=%d, want 500/600", s.P50, s.P99)
	}
	if got := h.Percentile(0); got != 0 {
		t.Fatalf("p0 = %d, want 0", got)
	}
	if got := h.Percentile(100); got != 600 {
		t.Fatalf("p100 = %d, want 600", got)
	}
}

func TestHistogramWindowWraps(t *testing.T) {
	t.Parallel()
	h := NewHistogram(4)
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	// Ring holds the last 4 observations {97..100} in some slot order.
	if s.P50 < 97 || s.P50 > 100 || s.P99 < 97 || s.P99 > 100 {
		t.Fatalf("wrapped quantiles p50=%d p99=%d outside window", s.P50, s.P99)
	}
}

// TestRegistryTorture hammers one registry from parallel writers while
// readers snapshot concurrently; run under -race this is the concurrency
// proof for the whole metrics layer. Counter totals must come out exact.
func TestRegistryTorture(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	const (
		writers = 8
		perW    = 10000
		readers = 4
	)
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for i := 0; i < readers; i++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				if _, err := json.Marshal(snap); err != nil {
					t.Errorf("snapshot marshal: %v", err)
					return
				}
			}
		}()
	}
	var writerWG sync.WaitGroup
	for i := 0; i < writers; i++ {
		writerWG.Add(1)
		go func(id int) {
			defer writerWG.Done()
			c := r.Counter("torture_ops_done_total")
			g := r.Gauge("torture_workers_live_count")
			h := r.Histogram("torture_op_cost_samples", 64)
			g.Add(1)
			for n := 0; n < perW; n++ {
				c.Inc()
				h.Observe(int64(id*perW + n))
			}
			g.Add(-1)
		}(i)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	snap := r.Snapshot()
	if got := snap.Counters["torture_ops_done_total"]; got != writers*perW {
		t.Fatalf("counter = %d, want %d", got, writers*perW)
	}
	if got := snap.Gauges["torture_workers_live_count"]; got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	hs := snap.Histograms["torture_op_cost_samples"]
	if hs.Count != writers*perW || hs.Window != 64 {
		t.Fatalf("histogram meta = %+v", hs)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	t.Parallel()
	build := func() []byte {
		r := NewRegistry()
		r.Counter("alpha_things_seen_total").Add(1)
		r.Counter("beta_things_seen_total").Add(2)
		r.Gauge("alpha_things_live_count").Set(3)
		r.Histogram("alpha_wait_time_samples", 16).Observe(9)
		data, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}
	a, b := build(), build()
	if string(a) != string(b) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\n%s", a, b)
	}
}
