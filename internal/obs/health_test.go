package obs

import (
	"sync/atomic"
	"testing"
)

func TestValidHealthName(t *testing.T) {
	t.Parallel()
	valid := []string{
		"gateway_backhaul_connected",
		"gateway_spool_headroom",
		"cloud_farm_headroom",
		"fleet_shard0_liveness",
		"cloud_listener_ready",
	}
	for _, name := range valid {
		if !ValidHealthName(name) {
			t.Errorf("ValidHealthName(%q) = false, want true", name)
		}
	}
	invalid := []string{
		"",
		"connected",           // one segment
		"gateway_backhaul_ok", // condition not in vocabulary
		"Gateway_Backhaul_Connected",
		"gateway__connected",
		"gateway_spool_depth_count", // metric name, not a check
	}
	for _, name := range invalid {
		if ValidHealthName(name) {
			t.Errorf("ValidHealthName(%q) = true, want false", name)
		}
	}
}

func TestHealthRegisterPanicsOnBadName(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Register with a bad name did not panic")
		}
	}()
	NewHealth().Register("NotACheck", func() CheckResult { return Healthy("") })
}

func TestHealthLivenessAndReadiness(t *testing.T) {
	t.Parallel()
	h := NewHealth()
	var connected, saturated atomic.Bool
	connected.Store(true)
	h.Register("gateway_backhaul_connected", func() CheckResult {
		if connected.Load() {
			return Healthy("session up")
		}
		return Unhealthy("redialing")
	})
	h.RegisterReadiness("cloud_farm_headroom", func() CheckResult {
		if saturated.Load() {
			return Unhealthy("queue full")
		}
		return Healthy("")
	})

	live := h.Liveness()
	if !live.Healthy || len(live.Checks) != 1 {
		t.Fatalf("liveness = %+v, want healthy with 1 check (readiness excluded)", live)
	}
	ready := h.Readiness()
	if !ready.Healthy || len(ready.Checks) != 2 {
		t.Fatalf("readiness = %+v, want healthy with 2 checks", ready)
	}

	// Saturation flips readiness but not liveness.
	saturated.Store(true)
	if h.Liveness().Healthy != true {
		t.Fatal("saturation must not flip liveness")
	}
	if h.Readiness().Healthy != false {
		t.Fatal("saturation must flip readiness")
	}

	// A dead backhaul flips both.
	connected.Store(false)
	if h.Liveness().Healthy {
		t.Fatal("disconnect must flip liveness")
	}
	if h.Readiness().Healthy {
		t.Fatal("disconnect must flip readiness")
	}
	live = h.Liveness()
	if live.Checks[0].Detail != "redialing" {
		t.Fatalf("check detail = %q, want redialing", live.Checks[0].Detail)
	}
}

func TestHealthReRegisterReplaces(t *testing.T) {
	t.Parallel()
	h := NewHealth()
	h.Register("gateway_backhaul_connected", func() CheckResult { return Unhealthy("old") })
	h.Register("gateway_backhaul_connected", func() CheckResult { return Healthy("new") })
	snap := h.Liveness()
	if len(snap.Checks) != 1 {
		t.Fatalf("re-registration duplicated the check: %+v", snap)
	}
	if !snap.Healthy || snap.Checks[0].Detail != "new" {
		t.Fatalf("re-registration did not replace the check: %+v", snap)
	}
}

func TestHealthCheckOrderStable(t *testing.T) {
	t.Parallel()
	h := NewHealth()
	names := []string{
		"gateway_backhaul_connected",
		"gateway_spool_headroom",
		"cloud_farm_headroom",
	}
	for _, n := range names {
		h.Register(n, func() CheckResult { return Healthy("") })
	}
	for pass := 0; pass < 3; pass++ {
		snap := h.Liveness()
		for i, c := range snap.Checks {
			if c.Name != names[i] {
				t.Fatalf("pass %d: check %d = %q, want %q (registration order)", pass, i, c.Name, names[i])
			}
		}
	}
}

func TestHealthNilSafe(t *testing.T) {
	t.Parallel()
	var h *Health
	h.Register("gateway_backhaul_connected", func() CheckResult { return Healthy("") })
	if snap := h.Liveness(); !snap.Healthy {
		t.Fatal("nil health must be vacuously healthy")
	}
	if snap := h.Readiness(); !snap.Healthy {
		t.Fatal("nil health must be vacuously ready")
	}
}
