package obs

import (
	"sync"
)

// EventVerbs is the closed verb vocabulary an event name must end with.
// Events record state transitions, so the final segment is always a verb:
// what happened, not what is. Keep in sync with the obsnames lint rule's
// documentation and DESIGN.md §14.
var EventVerbs = []string{
	"attach",    // a component joined a plane (shard attach)
	"backoff",   // a retry delay began (redial backoff)
	"compact",   // a durable-storage file was reclaimed (wal compact)
	"detach",    // a component left a plane (shard detach)
	"die",       // a session or connection failed
	"drop",      // a segment left the reliable path
	"enter",     // a mode was entered (degraded enter)
	"establish", // a session came up
	"evict",     // a retained entry was displaced (trace entry evict)
	"exhaust",   // a retry budget ran out
	"exit",      // a mode was left (degraded exit)
	"reap",      // an idle session was collected
	"recover",   // persisted state was restored (wal window recover)
	"reject",    // an admission rejection (busy reject)
	"replay",    // an unacked segment was reshipped
	"resize",    // a plane changed shape
	"sample",    // a tail-sampling policy kept an entry (trace entry sample)
	"truncate",  // a corrupt tail was cut (wal tail truncate)
}

// ValidEventName reports whether name follows the subsystem_subject_verb
// scheme: lowercase snake_case, at least two segments, no empty or
// non-[a-z0-9] segments, first character a letter, final segment one of
// EventVerbs.
func ValidEventName(name string) bool {
	last, segments, ok := splitLastSegment(name)
	if !ok || segments < 2 {
		return false
	}
	for _, v := range EventVerbs {
		if last == v {
			return true
		}
	}
	return false
}

// splitLastSegment validates the snake_case body shared by event and
// health-check names and returns the final segment plus the segment count.
func splitLastSegment(name string) (last string, segments int, ok bool) {
	if name == "" || name[0] < 'a' || name[0] > 'z' {
		return "", 0, false
	}
	segments = 1
	segStart := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '_' {
			if i == segStart {
				return "", 0, false // empty segment
			}
			last = name[segStart:i]
			segStart = i + 1
			if i < len(name) {
				segments++
			}
			continue
		}
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return "", 0, false
		}
	}
	return last, segments, true
}

// mustValidEventName guards Record against dynamic names the obsnames lint
// rule cannot see, mirroring the metric registry's panic contract.
func mustValidEventName(name string) {
	if !ValidEventName(name) {
		panic("obs: event name " + name + " does not follow subsystem_subject_verb (lowercase snake_case, >=2 segments, verb in EventVerbs)")
	}
}

// DefaultJournalRing is the event ring size when NewJournal is called with
// ringSize <= 0.
const DefaultJournalRing = 256

// Event is one recorded state transition.
type Event struct {
	// Seq is the journal-global sequence number of the event's first
	// occurrence; it never resets, so gaps reveal ring overwrites.
	Seq uint64 `json:"seq"`
	// At is the journal clock reading when the event was last recorded
	// (deterministic step counter by default, wall nanoseconds in
	// commands).
	At int64 `json:"at"`
	// Name is the subsystem_subject_verb event name.
	Name string `json:"name"`
	// Value is the event's magnitude, meaning defined per name (backoff
	// delay in millis, spool depth at drop, shard index, ...). The last
	// recorded value wins when a burst coalesces.
	Value int64 `json:"value"`
	// Count is how many consecutive occurrences this entry coalesces: a
	// busy-reject burst is one entry with Count = burst size.
	Count uint64 `json:"count"`
}

// Journal is a ring-buffered structured event recorder — a flight
// recorder for state transitions (reconnects, degraded-mode entry,
// session reaps, shard attach/detach). Recording is one short mutex
// critical section with no allocation, cheap enough to call from
// connection-management paths; it must still stay off per-sample hot
// loops. Consecutive records of the same name coalesce into one entry
// with a bumped Count, so an event burst cannot wash the history of the
// transitions around it out of the ring.
//
// The zero clock is a deterministic step counter (every record advances
// it by one), which keeps library code replayable under the
// nondeterminism rule; commands inject the wall clock with SetClock. All
// methods are nil-safe so instrumented code never needs a "journal
// enabled?" branch.
type Journal struct {
	clock func() int64

	mu    sync.Mutex
	ring  []Event
	next  int // slot the next new entry lands in
	total uint64
	seq   uint64
	steps int64 // deterministic default clock
	last  int   // ring index of the most recent entry, -1 when empty
}

// NewJournal builds a journal whose ring keeps the last ringSize entries
// (<= 0 means DefaultJournalRing).
func NewJournal(ringSize int) *Journal {
	if ringSize <= 0 {
		ringSize = DefaultJournalRing
	}
	return &Journal{ring: make([]Event, ringSize), last: -1}
}

// SetClock replaces the deterministic step clock, typically with
// func() int64 { return time.Now().UnixNano() }. Call before the journal
// is shared across goroutines.
func (j *Journal) SetClock(clock func() int64) {
	if j != nil {
		j.clock = clock
	}
}

// Record appends one event (or coalesces it into the most recent entry
// when the name repeats consecutively). The name must follow the
// subsystem_subject_verb scheme (see ValidEventName); the value's meaning
// is defined per event name. Nil-safe.
func (j *Journal) Record(name string, value int64) {
	if j == nil {
		return
	}
	mustValidEventName(name)
	j.mu.Lock()
	now := j.now()
	if j.last >= 0 && j.ring[j.last].Name == name {
		j.ring[j.last].Count++
		j.ring[j.last].Value = value
		j.ring[j.last].At = now
		j.mu.Unlock()
		return
	}
	j.ring[j.next] = Event{Seq: j.seq, At: now, Name: name, Value: value, Count: 1}
	j.last = j.next
	j.next = (j.next + 1) % len(j.ring)
	j.seq++
	j.total++
	j.mu.Unlock()
}

// now reads the clock; callers hold j.mu (the step counter needs it).
func (j *Journal) now() int64 {
	if j.clock != nil {
		return j.clock()
	}
	j.steps++
	return j.steps
}

// Recent returns the ring's entries, oldest first. The slice is a copy;
// a nil journal returns nil.
func (j *Journal) Recent() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := int(j.total)
	if j.total > uint64(len(j.ring)) {
		n = len(j.ring)
	}
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		idx := i
		if j.total > uint64(len(j.ring)) {
			idx = (j.next + i) % len(j.ring)
		}
		out = append(out, j.ring[idx])
	}
	return out
}

// Names returns the distinct event names recorded and still in the ring,
// oldest-first by first appearance — a compact fingerprint for tests and
// fault dumps.
func (j *Journal) Names() []string {
	events := j.Recent()
	seen := make(map[string]bool, len(events))
	var out []string
	for _, e := range events {
		if !seen[e.Name] {
			seen[e.Name] = true
			out = append(out, e.Name)
		}
	}
	return out
}
