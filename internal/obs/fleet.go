// Fleet-wide metrics aggregation: many obs endpoints (decode shards,
// gateways, the front) merge into one rollup with a per-target breakdown.
// Counters sum exactly; gauges report labeled min/max/mean/sum; histogram
// quantiles come from merged log-linear sketches (see SketchIndex for the
// documented error bound). Targets are pluggable — an in-process registry
// (RegistryTarget) and a scraped HTTP /metrics endpoint (HTTPTarget) merge
// identically — so the same rollup serves the in-process sharded plane of
// galiot-cloud, the loopback fleet of internal/fleetsim, and a real
// cross-process deployment.

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Target is one scrape source of the fleet aggregator.
type Target struct {
	// Name labels the target in per-target breakdowns. Must be unique
	// within a Fleet.
	Name string
	// Fetch produces the target's current snapshot. Called on every
	// Collect; may be invoked concurrently with other targets' Fetch.
	Fetch func() (Snapshot, error)
}

// RegistryTarget wraps an in-process registry as a scrape target.
func RegistryTarget(name string, r *Registry) Target {
	return Target{Name: name, Fetch: func() (Snapshot, error) {
		return r.Snapshot(), nil
	}}
}

// HTTPTarget scrapes a remote obs server's /metrics endpoint. url is the
// full metrics URL (http://host:port/metrics); client nil uses a
// 5-second-timeout default.
func HTTPTarget(name, url string, client *http.Client) Target {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return Target{Name: name, Fetch: func() (Snapshot, error) {
		resp, err := client.Get(url)
		if err != nil {
			return Snapshot{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return Snapshot{}, fmt.Errorf("obs: scrape %s: status %s", url, resp.Status)
		}
		var snap Snapshot
		if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&snap); err != nil {
			return Snapshot{}, fmt.Errorf("obs: scrape %s: %w", url, err)
		}
		return snap, nil
	}}
}

// AggCounter is one counter series across the fleet.
type AggCounter struct {
	// Total is the exact sum of the per-target values.
	Total uint64 `json:"total"`
	// PerTarget breaks the sum down by target name (only targets that
	// registered the series appear).
	PerTarget map[string]uint64 `json:"per_target"`
}

// AggGauge is one gauge series across the fleet. Summing gauges is only
// sometimes meaningful (queue depths sum, connectivity flags do not), so
// the rollup keeps the labeled extremes and the mean alongside the sum
// and lets the consumer pick.
type AggGauge struct {
	Min       int64            `json:"min"`
	MinTarget string           `json:"min_target"`
	Max       int64            `json:"max"`
	MaxTarget string           `json:"max_target"`
	Mean      float64          `json:"mean"`
	Sum       int64            `json:"sum"`
	PerTarget map[string]int64 `json:"per_target"`
}

// AggHistogram is one histogram series across the fleet: quantiles over
// the merged sketch (within the documented sketch error), exact per-target
// snapshots for drill-down.
type AggHistogram struct {
	Count  uint64         `json:"count"` // observations ever, summed
	P50    int64          `json:"p50"`   // from the merged sketch
	P99    int64          `json:"p99"`   // from the merged sketch
	Sketch []SketchBucket `json:"sketch,omitempty"`
	// Exemplar is the highest-valued exemplar across the targets: the
	// trace ID of the observation that set the fleet-wide high watermark,
	// the jump-off point from a p99 spike to its trace tree.
	Exemplar  *Exemplar                    `json:"exemplar,omitempty"`
	PerTarget map[string]HistogramSnapshot `json:"per_target"`
}

// FleetSnapshot is one aggregation pass over every target: the rollup
// served at /fleet/metrics. JSON encoding sorts map keys, so the
// serialized form is deterministic for a deterministic fleet.
type FleetSnapshot struct {
	// Targets lists every configured target name, in registration order.
	Targets []string `json:"targets"`
	// Errors maps the targets whose Fetch failed this pass to the error;
	// their series are simply absent from the rollup below.
	Errors map[string]string `json:"errors,omitempty"`

	Counters   map[string]AggCounter   `json:"counters"`
	Gauges     map[string]AggGauge     `json:"gauges"`
	Histograms map[string]AggHistogram `json:"histograms"`
}

// Fleet aggregates N obs targets into one FleetSnapshot on demand. Add
// targets once at wiring time; Collect is safe for concurrent use (each
// pass fetches every target concurrently and merges the results).
type Fleet struct {
	mu      sync.Mutex
	targets []Target
}

// NewFleet builds an aggregator over the given targets.
func NewFleet(targets ...Target) *Fleet {
	f := &Fleet{}
	for _, t := range targets {
		f.Add(t)
	}
	return f
}

// Add registers one more scrape target.
func (f *Fleet) Add(t Target) {
	if f == nil || t.Fetch == nil {
		return
	}
	f.mu.Lock()
	f.targets = append(f.targets, t)
	f.mu.Unlock()
}

// Collect fetches every target (concurrently) and merges the snapshots
// into one rollup. A target whose Fetch fails is reported in Errors and
// excluded from the merge; Collect itself never fails.
func (f *Fleet) Collect() FleetSnapshot {
	if f == nil {
		return Aggregate(nil, nil)
	}
	f.mu.Lock()
	targets := append([]Target(nil), f.targets...)
	f.mu.Unlock()

	snaps := make([]Snapshot, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i := range targets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snaps[i], errs[i] = targets[i].Fetch()
		}(i)
	}
	wg.Wait()

	names := make([]string, len(targets))
	merged := make([]Snapshot, 0, len(targets))
	mergedNames := make([]string, 0, len(targets))
	fetchErrs := make(map[string]string)
	for i, t := range targets {
		names[i] = t.Name
		if errs[i] != nil {
			fetchErrs[t.Name] = errs[i].Error()
			continue
		}
		merged = append(merged, snaps[i])
		mergedNames = append(mergedNames, t.Name)
	}
	out := Aggregate(mergedNames, merged)
	out.Targets = names
	if len(fetchErrs) > 0 {
		out.Errors = fetchErrs
	}
	return out
}

// Aggregate merges already-fetched snapshots (parallel slices of target
// name and snapshot) into a rollup. It is the pure core of Collect, usable
// directly by in-process consumers like internal/fleetsim reports.
func Aggregate(names []string, snaps []Snapshot) FleetSnapshot {
	out := FleetSnapshot{
		Targets:    append([]string(nil), names...),
		Counters:   make(map[string]AggCounter),
		Gauges:     make(map[string]AggGauge),
		Histograms: make(map[string]AggHistogram),
	}
	for i, snap := range snaps {
		name := names[i]
		//lint:ignore nondeterminism counter merge is a commutative sum into a per-series map; rendering sorts
		for series, v := range snap.Counters {
			agg, ok := out.Counters[series]
			if !ok {
				agg = AggCounter{PerTarget: make(map[string]uint64)}
			}
			agg.Total += v
			agg.PerTarget[name] = v
			out.Counters[series] = agg
		}
		//lint:ignore nondeterminism gauge merge is commutative: sums plus min/max with lexical tie-breaks
		for series, v := range snap.Gauges {
			agg, ok := out.Gauges[series]
			if !ok {
				agg = AggGauge{Min: v, MinTarget: name, Max: v, MaxTarget: name, PerTarget: make(map[string]int64)}
			}
			// Ties resolve to the lexically smallest target name so the
			// rollup does not depend on map iteration order.
			if v < agg.Min || (v == agg.Min && name < agg.MinTarget) {
				agg.Min, agg.MinTarget = v, name
			}
			if v > agg.Max || (v == agg.Max && name < agg.MaxTarget) {
				agg.Max, agg.MaxTarget = v, name
			}
			agg.Sum += v
			agg.PerTarget[name] = v
			out.Gauges[series] = agg
		}
		//lint:ignore nondeterminism histogram merge only sums counts and fills a per-target map
		for series, v := range snap.Histograms {
			agg, ok := out.Histograms[series]
			if !ok {
				agg = AggHistogram{PerTarget: make(map[string]HistogramSnapshot)}
			}
			agg.Count += v.Count
			agg.PerTarget[name] = v
			out.Histograms[series] = agg
		}
	}
	//lint:ignore nondeterminism each series' mean is derived from its own entry; no cross-entry state
	for series, agg := range out.Gauges {
		agg.Mean = float64(agg.Sum) / float64(len(agg.PerTarget))
		out.Gauges[series] = agg
	}
	//lint:ignore nondeterminism each series' sketch is merged from its own entry in sorted target order
	for series, agg := range out.Histograms {
		snaps := make([]HistogramSnapshot, 0, len(agg.PerTarget))
		// Deterministic merge order (map ranges are not): sort the target
		// names first. The sums are order-independent, but tests diffing
		// serialized sketches should not have to think about it.
		tnames := make([]string, 0, len(agg.PerTarget))
		//lint:ignore nondeterminism the collected names are sorted before use
		for tn := range agg.PerTarget {
			tnames = append(tnames, tn)
		}
		sort.Strings(tnames)
		for _, tn := range tnames {
			s := agg.PerTarget[tn]
			snaps = append(snaps, s)
			if s.Exemplar != nil && (agg.Exemplar == nil || s.Exemplar.Value > agg.Exemplar.Value) {
				agg.Exemplar = s.Exemplar
			}
		}
		agg.Sketch = MergeSketches(snaps...)
		hs := HistogramSnapshot{Sketch: agg.Sketch}
		agg.P50 = hs.SketchPercentile(50)
		agg.P99 = hs.SketchPercentile(99)
		out.Histograms[series] = agg
	}
	return out
}
