package obs

import (
	"sync"
)

// HealthSuffixes is the closed final-segment vocabulary of a health-check
// name. A check asserts a condition, so the final segment names what is
// being asserted. Keep in sync with the obsnames lint rule's documentation
// and DESIGN.md §14.
var HealthSuffixes = []string{
	"connected", // a link is up (backhaul connected)
	"headroom",  // a bounded resource has spare capacity (queue, spool)
	"liveness",  // a component is alive and accepting work
	"ready",     // a component is ready to take traffic
}

// ValidHealthName reports whether name follows the
// subsystem_subject_condition scheme: lowercase snake_case, at least two
// segments, final segment one of HealthSuffixes.
func ValidHealthName(name string) bool {
	last, segments, ok := splitLastSegment(name)
	if !ok || segments < 2 {
		return false
	}
	for _, s := range HealthSuffixes {
		if last == s {
			return true
		}
	}
	return false
}

// mustValidHealthName guards Register against dynamic names the obsnames
// lint rule cannot see, mirroring the metric registry's panic contract.
func mustValidHealthName(name string) {
	if !ValidHealthName(name) {
		panic("obs: health check name " + name + " does not follow subsystem_subject_condition (lowercase snake_case, >=2 segments, condition in HealthSuffixes)")
	}
}

// CheckResult is one health check's verdict.
type CheckResult struct {
	Healthy bool   `json:"healthy"`
	Detail  string `json:"detail,omitempty"`
}

// CheckFunc evaluates one health check. It is called on every /healthz
// or /readyz request (and by Health.Liveness/Readiness), so it must be
// cheap and safe for concurrent use — typically a couple of atomic gauge
// reads.
type CheckFunc func() CheckResult

// Healthy is a CheckResult constructor for the passing case.
func Healthy(detail string) CheckResult { return CheckResult{Healthy: true, Detail: detail} }

// Unhealthy is a CheckResult constructor for the failing case.
func Unhealthy(detail string) CheckResult { return CheckResult{Healthy: false, Detail: detail} }

// registeredCheck pairs a check with its class.
type registeredCheck struct {
	fn        CheckFunc
	readiness bool // readiness-only: consulted by /readyz, not /healthz
}

// Health is a component-health registry: subsystems register named checks
// (degraded states become a machine-readable signal instead of a buried
// counter), and the obs Server serves the aggregate at /healthz and
// /readyz. Liveness checks (Register) answer "is this process healthy";
// readiness-only checks (RegisterReadiness) additionally gate "should
// traffic be routed here" without marking the process sick — a saturated
// admission queue is unready, not dead.
//
// Registering under an existing name replaces the previous check, so a
// reconnecting client that re-registers on every run converges on one
// entry. All methods are nil-safe.
type Health struct {
	mu     sync.Mutex
	names  []string // registration order, stable across snapshots
	checks map[string]registeredCheck
}

// NewHealth builds an empty health registry.
func NewHealth() *Health {
	return &Health{checks: make(map[string]registeredCheck)}
}

// Register adds (or replaces) a liveness check: it is consulted by both
// /healthz and /readyz. The name must follow the
// subsystem_subject_condition scheme (see ValidHealthName).
func (h *Health) Register(name string, fn CheckFunc) {
	h.register(name, fn, false)
}

// RegisterReadiness adds (or replaces) a readiness-only check: consulted
// by /readyz but not /healthz.
func (h *Health) RegisterReadiness(name string, fn CheckFunc) {
	h.register(name, fn, true)
}

func (h *Health) register(name string, fn CheckFunc, readiness bool) {
	if h == nil || fn == nil {
		return
	}
	mustValidHealthName(name)
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.checks[name]; !ok {
		h.names = append(h.names, name)
	}
	h.checks[name] = registeredCheck{fn: fn, readiness: readiness}
}

// CheckStatus is one evaluated check in a snapshot.
type CheckStatus struct {
	Name    string `json:"name"`
	Healthy bool   `json:"healthy"`
	Detail  string `json:"detail,omitempty"`
}

// HealthSnapshot is the aggregate verdict of one evaluation pass.
type HealthSnapshot struct {
	// Healthy is the conjunction of every evaluated check.
	Healthy bool `json:"healthy"`
	// Checks lists each evaluated check in registration order.
	Checks []CheckStatus `json:"checks"`
}

// Liveness evaluates the liveness checks (/healthz). A registry with no
// checks — or a nil registry — is vacuously healthy.
func (h *Health) Liveness() HealthSnapshot { return h.eval(false) }

// Readiness evaluates every check, liveness and readiness alike
// (/readyz): a process that is not healthy is also not ready.
func (h *Health) Readiness() HealthSnapshot { return h.eval(true) }

func (h *Health) eval(includeReadiness bool) HealthSnapshot {
	snap := HealthSnapshot{Healthy: true}
	if h == nil {
		return snap
	}
	// Copy the check set out so evaluation runs without the lock: checks
	// are cheap but arbitrary code, and a slow one must not block
	// registration.
	h.mu.Lock()
	type namedCheck struct {
		name string
		c    registeredCheck
	}
	checks := make([]namedCheck, 0, len(h.names))
	for _, name := range h.names {
		checks = append(checks, namedCheck{name, h.checks[name]})
	}
	h.mu.Unlock()
	for _, nc := range checks {
		if nc.c.readiness && !includeReadiness {
			continue
		}
		res := nc.c.fn()
		snap.Checks = append(snap.Checks, CheckStatus{Name: nc.name, Healthy: res.Healthy, Detail: res.Detail})
		if !res.Healthy {
			snap.Healthy = false
		}
	}
	return snap
}
