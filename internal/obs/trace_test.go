package obs

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNilTracerAndSpanAreInert(t *testing.T) {
	t.Parallel()
	var tr *Tracer
	if tr.Now() != 0 {
		t.Fatal("nil tracer clock")
	}
	sp := tr.Start("gateway-segment", 1)
	if sp != nil {
		t.Fatal("nil tracer handed out a span")
	}
	sp.Stage("detect", 1, 0)
	sp.End()
	if sp.Now() != 0 || sp.TraceID() != 0 {
		t.Fatal("nil span not inert")
	}
	if got := tr.Recent(); got != nil {
		t.Fatalf("nil tracer Recent = %v", got)
	}
	if ctx := ContextWithSpan(context.Background(), nil); SpanFromContext(ctx) != nil {
		t.Fatal("nil span attached to context")
	}
}

func TestSpanLifecycle(t *testing.T) {
	t.Parallel()
	tr := NewTracer(8)
	id := SegmentTraceID(42)
	sp := tr.Start("gateway-segment", id)
	if sp.TraceID() != id {
		t.Fatalf("trace id = %d, want %d", sp.TraceID(), id)
	}
	sp.Stage("detect", 5, 131072)
	sp.Stage("encode_ship", 3, 2048)
	sp.End()
	sp.End() // double End must be harmless

	traces := tr.Recent()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tc := traces[0]
	if tc.TraceID != id || len(tc.Spans) != 1 {
		t.Fatalf("trace = %+v", tc)
	}
	span := tc.Spans[0]
	if span.Kind != "gateway-segment" || len(span.Stages) != 2 {
		t.Fatalf("span = %+v", span)
	}
	if span.Stages[0].Name != "detect" || span.Stages[0].Dur != 5 {
		t.Fatalf("stage 0 = %+v", span.Stages[0])
	}
	if span.End <= span.Start {
		t.Fatalf("default step clock not monotonic: start=%d end=%d", span.Start, span.End)
	}
}

func TestSpanGroupingByTraceID(t *testing.T) {
	t.Parallel()
	tr := NewTracer(8)
	id := SegmentTraceID(7)
	gw := tr.Start("gateway-segment", id)
	gw.Stage("detect", 1, 0)
	gw.End()
	cl := tr.Start("cloud-segment", id)
	cl.Stage("decode", 2, 0)
	cl.End()
	other := tr.Start("cloud-segment", SegmentTraceID(8))
	other.End()

	traces := tr.Recent()
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	if traces[0].TraceID != id || len(traces[0].Spans) != 2 {
		t.Fatalf("merged trace = %+v", traces[0])
	}
	if traces[0].Spans[0].Kind != "gateway-segment" || traces[0].Spans[1].Kind != "cloud-segment" {
		t.Fatalf("span order = %+v", traces[0].Spans)
	}
}

func TestSpanStageCapDropsNotGrows(t *testing.T) {
	t.Parallel()
	tr := NewTracer(4)
	sp := tr.Start("cloud-segment", 1)
	for i := 0; i < MaxStages+10; i++ {
		sp.Stage("sic_round", int64(i), 0)
	}
	sp.End()
	span := tr.Recent()[0].Spans[0]
	if len(span.Stages) != MaxStages {
		t.Fatalf("stages = %d, want cap %d", len(span.Stages), MaxStages)
	}
	if span.DroppedStages != 10 {
		t.Fatalf("dropped = %d, want 10", span.DroppedStages)
	}
}

func TestTracerRingEviction(t *testing.T) {
	t.Parallel()
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		sp := tr.Start("gateway-segment", uint64(i+1))
		sp.End()
	}
	traces := tr.Recent()
	if len(traces) != 4 {
		t.Fatalf("got %d traces, want ring size 4", len(traces))
	}
	// Oldest surviving span first: IDs 7, 8, 9, 10.
	for i, want := range []uint64{7, 8, 9, 10} {
		if traces[i].TraceID != want {
			t.Fatalf("trace %d id = %d, want %d", i, traces[i].TraceID, want)
		}
	}
}

func TestContextCarriesSpan(t *testing.T) {
	t.Parallel()
	tr := NewTracer(4)
	sp := tr.Start("cloud-segment", 3)
	ctx := ContextWithSpan(context.Background(), sp)
	if got := SpanFromContext(ctx); got != sp {
		t.Fatal("span lost in context")
	}
	if got := SpanFromContext(context.Background()); got != nil {
		t.Fatal("span from empty context")
	}
	sp.End()
}

func TestSegmentTraceIDStableAndDistinct(t *testing.T) {
	t.Parallel()
	if SegmentTraceID(1000) != SegmentTraceID(1000) {
		t.Fatal("trace id not stable")
	}
	seen := map[uint64]bool{}
	for i := int64(0); i < 1000; i++ {
		id := SegmentTraceID(i)
		if seen[id] {
			t.Fatalf("collision at start=%d", i)
		}
		seen[id] = true
	}
}

// TestTracerConcurrent exercises concurrent span lifecycles against Recent
// readers; meaningful under -race.
func TestTracerConcurrent(t *testing.T) {
	t.Parallel()
	tr := NewTracer(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Start("cloud-segment", SegmentTraceID(int64(w*1000+i)))
				sp.Stage("decode", 1, 0)
				sp.End()
			}
		}(w)
	}
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Recent()
			}
		}
	}()
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if got := len(tr.Recent()); got == 0 || got > 32 {
		t.Fatalf("recent traces = %d", got)
	}
}

// TestSpanDroppedStagesConcurrentExact hammers one span's Stage method from
// many goroutines past the cap and checks the accounting is exact: every
// recorded stage either lands in the fixed array or increments
// DroppedStages — none vanish, none double-count. Meaningful under -race.
func TestSpanDroppedStagesConcurrentExact(t *testing.T) {
	t.Parallel()
	const workers, perWorker = 8, 50
	tr := NewTracer(4)
	sp := tr.Start("cloud-segment", 1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp.Stage("sic_round", int64(w*perWorker+i), 0)
			}
		}(w)
	}
	wg.Wait()
	sp.End()
	snap := tr.Recent()[0].Spans[0]
	if len(snap.Stages) != MaxStages {
		t.Fatalf("kept stages = %d, want cap %d", len(snap.Stages), MaxStages)
	}
	if want := workers*perWorker - MaxStages; snap.DroppedStages != want {
		t.Fatalf("dropped = %d, want %d", snap.DroppedStages, want)
	}
}

// TestTracerRingOverflowUnderHTTPSnapshots overflows a small span ring from
// concurrent writers while an HTTP client snapshots /trace/recent and
// /trace/slowest the whole time. Checks that no finished span is lost by
// the sink even when the ring evicts, and that every snapshot the server
// hands out has internally consistent stage/drop accounting. Meaningful
// under -race: this is the End vs HTTP-snapshot race the soak tools rely
// on.
func TestTracerRingOverflowUnderHTTPSnapshots(t *testing.T) {
	t.Parallel()
	const workers, perWorker, ring = 4, 100, 8
	tr := NewTracer(ring)
	store := NewTraceStore(TraceStoreConfig{Capacity: workers * perWorker, SampleEvery: 1})
	var sunk atomic.Int64
	tr.SetSink(func(sn SpanSnapshot) {
		sunk.Add(1)
		store.Ingest(sn)
	})

	s := &Server{Tracer: tr, Traces: store}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer s.Close()
	base := fmt.Sprintf("http://%s", s.Addr())

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, url := range []string{base + "/trace/recent", base + "/trace/slowest?n=4"} {
				resp, err := http.Get(url)
				if err != nil {
					continue // server shutting down mid-request is fine
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.Start("gateway-segment", SegmentTraceID(int64(w*perWorker+i)))
				// Overflow the stage cap on every third span so snapshots
				// taken mid-run carry DroppedStages too.
				n := 3
				if i%3 == 0 {
					n = MaxStages + 5
				}
				for s := 0; s < n; s++ {
					sp.Stage("detect", 1, 0)
				}
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	if got := sunk.Load(); got != workers*perWorker {
		t.Fatalf("sink saw %d spans, want %d (ring eviction must not drop sink delivery)", got, workers*perWorker)
	}
	traces := tr.Recent()
	if len(traces) == 0 || len(traces) > ring {
		t.Fatalf("recent traces = %d, want 1..%d", len(traces), ring)
	}
	for _, trace := range store.Trees() {
		for _, sp := range trace.Spans {
			if len(sp.Stages) > MaxStages {
				t.Fatalf("span holds %d stages, cap is %d", len(sp.Stages), MaxStages)
			}
			if sp.DroppedStages > 0 && len(sp.Stages) != MaxStages {
				t.Fatalf("span dropped %d stages while only %d recorded (cap %d)",
					sp.DroppedStages, len(sp.Stages), MaxStages)
			}
		}
	}
	if store.Len() != workers*perWorker {
		t.Fatalf("store retained %d traces, want %d", store.Len(), workers*perWorker)
	}
}
