package obs

import (
	"sort"
	"sync"
)

// DefaultTraceStoreCapacity bounds retained traces when the config does
// not say otherwise.
const DefaultTraceStoreCapacity = 512

// DefaultTraceSampleEvery is the default head-sampling rate for ordinary
// traces: 1 in N new traces is promoted to keeper regardless of what
// happens to it later, so the store always holds a representative slice
// of healthy traffic next to the interesting tail.
const DefaultTraceSampleEvery = 16

// TraceStoreConfig sizes a TraceStore and declares its retention policy.
type TraceStoreConfig struct {
	// Capacity is the maximum number of traces retained (<= 0 means
	// DefaultTraceStoreCapacity).
	Capacity int
	// SampleEvery promotes 1 in N new traces to keeper (<= 0 means
	// DefaultTraceSampleEvery; 1 keeps everything).
	SampleEvery int
	// SlowNanos marks any trace whose wall duration reaches this bound a
	// keeper (0 disables the slow classifier — useful under step clocks).
	SlowNanos int64
	// Obs registers trace_* metrics when non-nil.
	Obs *Registry
	// Journal records eviction/sampling events when non-nil.
	Journal *Journal
}

// traceEntry is one assembled trace: every ingested span that carried
// its trace ID, plus the retention classification accumulated so far.
type traceEntry struct {
	id       uint64
	spans    []SpanSnapshot
	minStart int64
	maxEnd   int64
	keep     bool
}

// TraceStep is one attributed stage on a trace's critical path.
type TraceStep struct {
	Kind  string  `json:"kind"`
	Stage string  `json:"stage"`
	Dur   int64   `json:"dur"`
	Value float64 `json:"value,omitempty"`
}

// TraceTree is the assembled, analysable form of one trace: its spans
// (sorted by start time, then span ID), wall duration, orphan count
// (spans whose declared parent is absent from the trace), whether any
// span recorded a replay stage, and the critical path — the root-to-leaf
// chain of spans that finished last, flattened to its attributed stages.
type TraceTree struct {
	TraceID      uint64         `json:"trace_id"`
	Spans        []SpanSnapshot `json:"spans"`
	Duration     int64          `json:"duration"`
	Orphans      int            `json:"orphans,omitempty"`
	Replayed     bool           `json:"replayed,omitempty"`
	CriticalPath []TraceStep    `json:"critical_path,omitempty"`
	CriticalDur  int64          `json:"critical_dur,omitempty"`
}

// traceStoreMetrics is the store's registered instrument set.
type traceStoreMetrics struct {
	ingested *Counter
	retained *Gauge
	evicted  *Counter
	sampled  *Counter
}

// TraceStore assembles finished spans from any number of tracers —
// typically one per process role, all sinking here — into trace trees
// keyed by the wire-propagated trace ID, with tail-based retention:
// traces that replayed, erred or ran slow are always kept; ordinary
// traces are head-sampled and evicted first under capacity pressure.
//
// All methods are safe for concurrent use and nil-safe, so a disabled
// store (nil) costs one branch.
type TraceStore struct {
	mu      sync.Mutex
	cap     int
	every   int
	slow    int64
	traces  map[uint64]*traceEntry
	order   []uint64 // insertion order, oldest first
	seen    uint64
	m       traceStoreMetrics
	journal *Journal
}

// NewTraceStore builds a store with the given policy and registers its
// metrics on cfg.Obs when present.
func NewTraceStore(cfg TraceStoreConfig) *TraceStore {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultTraceStoreCapacity
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = DefaultTraceSampleEvery
	}
	s := &TraceStore{
		cap:     cfg.Capacity,
		every:   cfg.SampleEvery,
		slow:    cfg.SlowNanos,
		traces:  make(map[uint64]*traceEntry),
		journal: cfg.Journal,
	}
	if cfg.Obs != nil {
		s.m.ingested = cfg.Obs.Counter("trace_spans_ingested_total")
		s.m.retained = cfg.Obs.Gauge("trace_traces_retained_count")
		s.m.evicted = cfg.Obs.Counter("trace_traces_evicted_total")
		s.m.sampled = cfg.Obs.Counter("trace_traces_sampled_total")
	}
	return s
}

// Ingest adds one finished span to its trace, creating the trace on
// first sight and evicting under the tail-retention policy when the
// store is over capacity. Wire it to a tracer with SetSink:
//
//	tracer.SetSink(store.Ingest)
func (s *TraceStore) Ingest(sn SpanSnapshot) {
	if s == nil || sn.TraceID == 0 {
		return
	}
	s.mu.Lock()
	s.m.ingested.Inc()
	e, ok := s.traces[sn.TraceID]
	if !ok {
		e = &traceEntry{id: sn.TraceID, minStart: sn.Start, maxEnd: sn.End}
		s.traces[sn.TraceID] = e
		s.order = append(s.order, sn.TraceID)
		s.seen++
		if s.every == 1 || s.seen%uint64(s.every) == 1 {
			e.keep = true
			s.m.sampled.Inc()
			if s.journal != nil {
				s.journal.Record("trace_entry_sample", int64(len(s.order)))
			}
		}
	}
	e.spans = append(e.spans, sn)
	if sn.Start < e.minStart {
		e.minStart = sn.Start
	}
	if sn.End > e.maxEnd {
		e.maxEnd = sn.End
	}
	if !e.keep && s.classify(e, &sn) {
		e.keep = true
	}
	for len(s.order) > s.cap {
		s.evictLocked()
	}
	s.m.retained.Set(int64(len(s.order)))
	s.mu.Unlock()
}

// classify reports whether the newly ingested span promotes its trace to
// keeper: replayed or WAL-recovered, error-ish (dropped stages, a busy
// reject or a spool drop), or slow.
func (s *TraceStore) classify(e *traceEntry, sn *SpanSnapshot) bool {
	if sn.DroppedStages > 0 {
		return true
	}
	for i := range sn.Stages {
		switch sn.Stages[i].Name {
		case "replay", "wal_replay", "busy_reject", "spool_drop", "skip", "deadline":
			return true
		}
	}
	return s.slow > 0 && e.maxEnd-e.minStart >= s.slow
}

// evictLocked removes the oldest evictable trace: the oldest non-keeper,
// or — when every retained trace is a keeper — the oldest keeper.
func (s *TraceStore) evictLocked() {
	victim := 0
	for i, id := range s.order {
		if !s.traces[id].keep {
			victim = i
			break
		}
	}
	id := s.order[victim]
	s.order = append(s.order[:victim], s.order[victim+1:]...)
	delete(s.traces, id)
	s.m.evicted.Inc()
	if s.journal != nil {
		s.journal.Record("trace_entry_evict", int64(len(s.order)))
	}
}

// Len reports the number of retained traces.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Trace assembles and returns the tree for one trace ID.
func (s *TraceStore) Trace(id uint64) (TraceTree, bool) {
	if s == nil {
		return TraceTree{}, false
	}
	s.mu.Lock()
	e, ok := s.traces[id]
	var spans []SpanSnapshot
	if ok {
		spans = append(spans, e.spans...)
	}
	s.mu.Unlock()
	if !ok {
		return TraceTree{}, false
	}
	return buildTree(id, spans), true
}

// Slowest returns the n longest retained traces, longest first (trace ID
// breaks ties deterministically).
func (s *TraceStore) Slowest(n int) []TraceTree {
	trees := s.Trees()
	sort.Slice(trees, func(i, j int) bool {
		if trees[i].Duration != trees[j].Duration {
			return trees[i].Duration > trees[j].Duration
		}
		return trees[i].TraceID < trees[j].TraceID
	})
	if n > 0 && len(trees) > n {
		trees = trees[:n]
	}
	return trees
}

// Trees assembles every retained trace in insertion order — the artifact
// form galiot-fleet writes and galiot-trace consumes.
func (s *TraceStore) Trees() []TraceTree {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	ids := append([]uint64(nil), s.order...)
	byID := make(map[uint64][]SpanSnapshot, len(ids))
	for _, id := range ids {
		byID[id] = append([]SpanSnapshot(nil), s.traces[id].spans...)
	}
	s.mu.Unlock()
	trees := make([]TraceTree, 0, len(ids))
	for _, id := range ids {
		trees = append(trees, buildTree(id, byID[id]))
	}
	return trees
}

// buildTree sorts, diagnoses and attributes one trace's spans.
func buildTree(id uint64, spans []SpanSnapshot) TraceTree {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].SpanID < spans[j].SpanID
	})
	t := TraceTree{TraceID: id, Spans: spans}
	known := make(map[uint64]bool, len(spans))
	for i := range spans {
		known[spans[i].SpanID] = true
	}
	var minStart, maxEnd int64
	for i := range spans {
		sn := &spans[i]
		if i == 0 || sn.Start < minStart {
			minStart = sn.Start
		}
		if i == 0 || sn.End > maxEnd {
			maxEnd = sn.End
		}
		if sn.Parent != 0 && !known[sn.Parent] {
			t.Orphans++
		}
		for j := range sn.Stages {
			if n := sn.Stages[j].Name; n == "replay" || n == "wal_replay" {
				t.Replayed = true
			}
		}
	}
	t.Duration = maxEnd - minStart
	t.CriticalPath, t.CriticalDur = criticalPath(spans, known)
	return t
}

// criticalPath walks from the earliest root down the chain of children
// that finished last and flattens that chain's stages — the per-stage
// attribution of where the trace's latency went.
func criticalPath(spans []SpanSnapshot, known map[uint64]bool) ([]TraceStep, int64) {
	if len(spans) == 0 {
		return nil, 0
	}
	// Roots: no parent, or a parent this trace never saw (orphans still
	// deserve attribution). Spans are already start-sorted, so the first
	// root is the earliest.
	root := -1
	for i := range spans {
		if spans[i].Parent == 0 || !known[spans[i].Parent] {
			root = i
			break
		}
	}
	if root == -1 {
		root = 0
	}
	var steps []TraceStep
	var total int64
	cur := root
	visited := make(map[uint64]bool, len(spans))
	for {
		sn := &spans[cur]
		visited[sn.SpanID] = true
		for i := range sn.Stages {
			st := &sn.Stages[i]
			steps = append(steps, TraceStep{Kind: sn.Kind, Stage: st.Name, Dur: st.Dur, Value: st.Value})
			total += st.Dur
		}
		// Descend to the child that finished last (span ID breaks ties).
		next := -1
		for i := range spans {
			if spans[i].Parent != sn.SpanID || visited[spans[i].SpanID] {
				continue
			}
			if next == -1 || spans[i].End > spans[next].End ||
				(spans[i].End == spans[next].End && spans[i].SpanID < spans[next].SpanID) {
				next = i
			}
		}
		if next == -1 {
			return steps, total
		}
		cur = next
	}
}
