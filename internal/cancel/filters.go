// Package cancel implements GalioT's cloud-side collision decoding (paper
// Sec. 5): the three modulation-class "kill" filters — KILL-FREQUENCY for
// FSK/PSK, KILL-CSS for chirp spread spectrum and KILL-CODES for DSSS —
// plus successive interference cancellation (SIC) and the combined
// CloudDecode procedure of Algorithm 1 that wraps SIC around the filters.
//
// A kill filter removes one technology's energy from a collision without
// needing to decode it, exploiting where that technology's modulation
// concentrates energy: FSK at discrete tones, CSS along a known chirp
// trajectory (which dechirping collapses to narrow tones), DSSS inside a
// low-dimensional code subspace. After the interferer is killed, the
// remaining technology is decoded normally; SIC then reconstructs and
// subtracts it from the original samples so the killed technology can be
// recovered as well.
package cancel

import (
	"math"
	"sort"

	"repro/internal/dsp"
	"repro/internal/phy"
)

// KillFrequency notches the given tone offsets (Hz from band center) out of
// rx, removing ±width/2 around each tone in the frequency domain. It
// returns a new slice. This is the paper's KILL-FREQUENCY filter: FSK
// modulations such as Z-Wave's BFSK and XBee's GFSK concentrate energy at
// two discrete tones (for modulation index 1, half the transmit power sits
// in spectral lines at ±deviation), and PSK concentrates energy in a narrow
// band at the center, so zeroing those regions eliminates most of the
// interferer while sparing wideband neighbors.
func KillFrequency(rx []complex128, tones []float64, width, fs float64) []complex128 {
	n := len(rx)
	if n == 0 || len(tones) == 0 || width <= 0 {
		return dsp.Clone(rx)
	}
	spec := dsp.FFT(rx)
	binHz := fs / float64(n)
	half := width / 2
	for _, tone := range tones {
		lo := int(math.Floor((tone - half) / binHz))
		hi := int(math.Ceil((tone + half) / binHz))
		for b := lo; b <= hi; b++ {
			idx := ((b % n) + n) % n
			spec[idx] = 0
		}
	}
	return dsp.IFFT(spec)
}

// FSKKillWidth returns the notch width used to kill an FSK technology with
// the given bit rate: 0.3× the bit rate around each tone. For modulation
// index 1 (Sunde's FSK, used by both the XBee and Z-Wave profiles here)
// half the transmit power sits in discrete spectral lines at ±deviation;
// this width removes the lines and their immediate skirt while staying
// narrow enough not to flatten a neighboring technology's tones — measured
// empirically in the cancel tests, widths up to ~0.6× the victim's own
// bandwidth separation stay safe.
func FSKKillWidth(bitRate float64) float64 { return 0.3 * bitRate }

// KillNarrowband removes a band of the given width centered at offset Hz —
// the PSK variant of KILL-FREQUENCY.
func KillNarrowband(rx []complex128, center, width, fs float64) []complex128 {
	return KillFrequency(rx, []float64{center}, width, fs)
}

// CSSKiller removes chirp-spread-spectrum energy. It multiplies the capture
// by a free-running train of base downchirps, which collapses any CSS
// symbol energy (whatever its data value or alignment) onto at most two
// narrow tones per chirp period; those dominant tones are then notched
// block-by-block, and the remainder is re-chirped, restoring every
// non-CSS signal. This is the paper's KILL-CSS filter — it needs no CSS
// symbol synchronization and never decodes the LoRa transmission.
type CSSKiller struct {
	tech phy.ChirpTechnology
	// MaxNotchPerBlock bounds how many FFT bins are cleared per chirp
	// period (each LoRa symbol contributes at most 2 dechirped tones, and
	// misalignment doubles that; the default 8 leaves headroom for strong
	// multipath-like leakage).
	MaxNotchPerBlock int
	// DominanceDB is how far above the block's median a bin must sit to be
	// considered CSS energy (default 12 dB).
	DominanceDB float64
}

// NewCSSKiller returns a KILL-CSS filter for the given chirp technology.
func NewCSSKiller(tech phy.ChirpTechnology) *CSSKiller {
	return &CSSKiller{tech: tech, MaxNotchPerBlock: 8, DominanceDB: 12}
}

// Apply runs the filter, returning a new slice.
func (k *CSSKiller) Apply(rx []complex128, fs float64) []complex128 {
	bw := k.tech.ChirpBandwidth()
	chips := 1 << uint(k.tech.SpreadingFactor())
	osr := int(math.Round(fs / bw))
	if osr < 1 {
		return dsp.Clone(rx)
	}
	n := chips * osr // samples per chirp period
	if len(rx) < n {
		return dsp.Clone(rx)
	}
	down := baseChirp(false, chips, osr, bw, fs)
	up := baseChirp(true, chips, osr, bw, fs)

	out := dsp.Clone(rx)
	threshold := dsp.FromDB(k.DominanceDB)
	for start := 0; start+n <= len(out); start += n {
		block := out[start : start+n]
		// dechirp
		for i := range block {
			block[i] *= down[i]
		}
		spec := dsp.FFT(block)
		mags := dsp.AbsSq(spec)
		med := medianFloat(mags)
		if med <= 0 {
			med = 1e-30
		}
		// notch the dominant narrow tones
		type bin struct {
			idx int
			mag float64
		}
		var hot []bin
		for i, m := range mags {
			if m > med*threshold {
				hot = append(hot, bin{i, m})
			}
		}
		if len(hot) > 0 {
			// strongest first, capped
			sort.Slice(hot, func(a, b int) bool { return hot[a].mag > hot[b].mag })
			if len(hot) > k.MaxNotchPerBlock {
				hot = hot[:k.MaxNotchPerBlock]
			}
			for _, h := range hot {
				// clear the bin and one neighbor each side (fractional
				// frequency leakage)
				for d := -1; d <= 1; d++ {
					spec[((h.idx+d)%len(spec)+len(spec))%len(spec)] = 0
				}
			}
			cleaned := dsp.IFFT(spec)
			copy(block, cleaned)
		}
		// re-chirp
		for i := range block {
			block[i] *= up[i]
		}
	}
	// The tail shorter than one chirp period is left untouched.
	return out
}

// baseChirp synthesizes one chirp period (duplicated from the lora package
// to keep cancel independent of any single PHY implementation; the chirp is
// fully determined by SF, BW and fs).
func baseChirp(upDir bool, chips, osr int, bw, fs float64) []complex128 {
	n := chips * osr
	out := make([]complex128, n)
	phase := 0.0
	for i := 0; i < n; i++ {
		f := -bw/2 + bw*float64(i%n)/float64(n)
		if !upDir {
			f = -f
		}
		s, c := math.Sincos(phase)
		out[i] = complex(c, s)
		phase += 2 * math.Pi * f / fs
		if phase > math.Pi {
			phase -= 2 * math.Pi
		} else if phase < -math.Pi {
			phase += 2 * math.Pi
		}
	}
	if !upDir {
		return out
	}
	return out
}

// KillCodes projects DSSS transmissions out of the capture. The filter
// synchronizes to the coded technology's preamble, then for every symbol
// slot projects the received chip-rate samples onto each of the known
// spreading-code waveforms and subtracts the strongest projection. Because
// the code waveforms are (quasi-)orthogonal, other technologies lose almost
// no energy. If the coded technology's preamble is not present above
// minQuality, rx is returned unchanged.
func KillCodes(rx []complex128, tech phy.CodedTechnology, fs float64, minQuality float64) []complex128 {
	codes := tech.ChipCodes()
	if len(codes) == 0 {
		return dsp.Clone(rx)
	}
	pre := tech.Preamble(fs)
	if len(pre) == 0 || len(rx) < len(pre) {
		return dsp.Clone(rx)
	}
	metric := dsp.NormalizedCorrelate(rx, pre)
	pk := dsp.MaxPeak(metric)
	if pk.Index < 0 || pk.Value < minQuality {
		return dsp.Clone(rx)
	}
	start := pk.Index

	// Build the 16 per-symbol code waveforms once.
	waves := codeWaveforms(tech, fs)
	if len(waves) == 0 {
		return dsp.Clone(rx)
	}
	symLen := len(waves[0])
	out := dsp.Clone(rx)
	// Walk symbol slots from the sync point until projections stop finding
	// significant energy (end of the coded burst).
	misses := 0
	for pos := start; pos+symLen <= len(out) && misses < 4; pos += symLen {
		seg := out[pos : pos+symLen]
		segE := dsp.Energy(seg)
		if segE == 0 {
			misses++
			continue
		}
		bestGain := complex(0, 0)
		bestIdx := -1
		bestFrac := 0.0
		for ci, w := range waves {
			var proj complex128
			for i := range seg {
				proj += seg[i] * complex(real(w[i]), -imag(w[i]))
			}
			wE := dsp.Energy(w)
			if wE == 0 {
				continue
			}
			gain := proj / complex(wE, 0)
			captured := real(proj * complex(real(gain), -imag(gain))) // |proj|²/wE
			frac := captured / segE
			if frac > bestFrac {
				bestFrac, bestGain, bestIdx = frac, gain, ci
			}
		}
		// Only subtract when the code subspace explains a meaningful share
		// of the slot energy; otherwise we are past the burst.
		if bestIdx < 0 || bestFrac < 0.2 {
			misses++
			continue
		}
		misses = 0
		w := waves[bestIdx]
		for i := range seg {
			seg[i] -= bestGain * w[i]
		}
	}
	return out
}

// codeWaveforms renders each spreading code as a baseband waveform using
// the technology's own modulator conventions: O-QPSK half-sine, even chips
// on I, odd on Q. The waveform spans one symbol (32 chips) plus the
// trailing half-pulse.
func codeWaveforms(tech phy.CodedTechnology, fs float64) [][]complex128 {
	codes := tech.ChipCodes()
	spcF := fs / tech.ChipRate()
	spc := int(math.Round(spcF))
	if spc < 2 || math.Abs(spcF-float64(spc)) > 1e-9 {
		return nil
	}
	nChips := len(codes[0])
	symLen := nChips * spc
	pulse := make([]float64, 2*spc)
	for t := range pulse {
		pulse[t] = math.Sin(math.Pi * float64(t) / float64(2*spc))
	}
	out := make([][]complex128, len(codes))
	for ci, code := range codes {
		//lint:ignore hotloopalloc one waveform per spreading code, each escaping via the result
		w := make([]complex128, symLen)
		for i, chip := range code {
			d := float64(2*int(chip) - 1)
			startSample := i * spc
			for t, p := range pulse {
				idx := startSample + t
				if idx >= symLen {
					break
				}
				if i%2 == 0 {
					w[idx] += complex(d*p, 0)
				} else {
					w[idx] += complex(0, d*p)
				}
			}
		}
		out[ci] = w
	}
	return out
}

func medianFloat(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	c := make([]float64, len(v))
	copy(c, v)
	sort.Float64s(c)
	return c[len(c)/2]
}
