package cancel

import (
	"fmt"
	"sort"

	"repro/internal/dsp"
	"repro/internal/obs"
	"repro/internal/phy"
)

// Candidate is one technology suspected to be present in a capture, ranked
// by its estimated received power.
type Candidate struct {
	Tech   phy.Technology
	Offset int     // approximate packet start (preamble correlation peak)
	Score  float64 // normalized preamble correlation in [0, 1]
	Power  float64 // estimated received power of the candidate (linear)
}

// Stats aggregates what CloudDecode did to resolve a capture.
type Stats struct {
	SICRounds    int // successful decode-and-subtract iterations
	KillFreq     int // KILL-FREQUENCY invocations
	KillCSS      int // KILL-CSS invocations
	KillCodes    int // KILL-CODES invocations
	FailedDecode int // decode attempts that produced no valid frame
	Duplicates   int // re-decodes of an already recovered frame (imperfect cancellation)
}

// Add accumulates other into s, field by field. Aggregators (the perf
// harness, the cloud's per-session totals) all sum the same way instead of
// each re-listing the fields and drifting when one is added.
func (s *Stats) Add(other Stats) {
	s.SICRounds += other.SICRounds
	s.KillFreq += other.KillFreq
	s.KillCSS += other.KillCSS
	s.KillCodes += other.KillCodes
	s.FailedDecode += other.FailedDecode
	s.Duplicates += other.Duplicates
}

// Decoder performs collision decoding over a fixed technology set.
type Decoder struct {
	Techs []phy.Technology
	FS    float64
	// MinScore is the preamble correlation below which a technology is not
	// considered present (default 0.05).
	MinScore float64
	// UseKillFilters enables the Algorithm-1 kill-filter fallback; when
	// false the decoder is the plain SIC baseline.
	UseKillFilters bool
	// DisabledFilters suppresses individual kill-filter classes, for
	// ablation studies; a class mapped to true behaves as if no filter
	// existed for it.
	DisabledFilters map[phy.Class]bool
	// MaxRounds bounds the decode loop (default 32; the loop also stops as
	// soon as a full pass makes no progress, so the cap only guards against
	// pathological captures).
	MaxRounds int
}

// NewDecoder returns a CloudDecode decoder (kill filters enabled).
func NewDecoder(techs []phy.Technology, fs float64) *Decoder {
	return &Decoder{Techs: techs, FS: fs, MinScore: 0.05, UseKillFilters: true}
}

// NewSIC returns the plain successive-interference-cancellation baseline.
func NewSIC(techs []phy.Technology, fs float64) *Decoder {
	d := NewDecoder(techs, fs)
	d.UseKillFilters = false
	return d
}

// Classify correlates each technology's preamble against the capture and
// returns the candidates above MinScore, strongest estimated power first.
func (d *Decoder) Classify(rx []complex128) []Candidate {
	var out []Candidate
	for _, t := range d.Techs {
		pre := t.Preamble(d.FS)
		if len(pre) == 0 || len(rx) < len(pre) {
			continue
		}
		metric := dsp.NormalizedCorrelate(rx, pre)
		pk := dsp.MaxPeak(metric)
		if pk.Index < 0 || pk.Value < d.MinScore {
			continue
		}
		// Estimated candidate power: correlation square times the local
		// window power (the fraction of window power explained by the
		// template).
		winPower := dsp.Power(rx[pk.Index:min(pk.Index+len(pre), len(rx))])
		out = append(out, Candidate{
			Tech:   t,
			Offset: pk.Index,
			Score:  pk.Value,
			Power:  pk.Value * pk.Value * winPower,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Power > out[j].Power })
	return out
}

// tryDecode attempts to decode one frame of tech from rx, accepting only
// CRC-valid frames.
func tryDecode(t phy.Technology, rx []complex128, fs float64) (*phy.Frame, bool) {
	frame, err := t.Demodulate(rx, fs)
	if err != nil || frame == nil || !frame.CRCOK {
		return nil, false
	}
	return frame, true
}

// subtractFrame reconstructs a decoded frame's waveform and subtracts it
// from rx in place, refining the alignment over ±search samples and
// re-estimating the complex gain at the best alignment. It returns the
// fraction of the frame's span energy removed (1 = perfect cancellation).
func subtractFrame(rx []complex128, t phy.Technology, frame *phy.Frame, fs float64, search int) float64 {
	ref, err := t.Modulate(frame.Payload, fs)
	if err != nil || len(ref) == 0 {
		return 0
	}
	if frame.CFO != 0 {
		// Reconstruct with the receiver's carrier-offset estimate so the
		// subtraction stays coherent over the whole burst.
		dsp.Mix(ref, frame.CFO, 0, fs)
	}
	refE := dsp.Energy(ref)
	if refE == 0 {
		return 0
	}
	bestOff, bestMag := frame.Offset, 0.0
	for off := frame.Offset - search; off <= frame.Offset+search; off++ {
		if off < 0 || off+len(ref) > len(rx) {
			continue
		}
		var proj complex128
		seg := rx[off : off+len(ref)]
		for i := range seg {
			proj += seg[i] * complex(real(ref[i]), -imag(ref[i]))
		}
		if m := real(proj)*real(proj) + imag(proj)*imag(proj); m > bestMag {
			bestMag, bestOff = m, off
		}
	}
	if bestMag == 0 {
		return 0
	}
	seg := rx[bestOff:min(bestOff+len(ref), len(rx))]
	before := dsp.Energy(seg)
	// Per-block complex gains: a single global gain decoheres over long
	// bursts whenever the receiver's CFO estimate is off by even a few Hz;
	// estimating the gain over short blocks tracks the residual phase
	// drift and keeps the cancellation deep.
	block := len(seg) / 32
	if block < 512 {
		block = 512
	}
	for from := 0; from < len(seg); from += block {
		to := from + block
		if to > len(seg) {
			to = len(seg)
		}
		var proj complex128
		var e float64
		for i := from; i < to; i++ {
			r := ref[i]
			proj += seg[i] * complex(real(r), -imag(r))
			e += real(r)*real(r) + imag(r)*imag(r)
		}
		if e == 0 {
			continue
		}
		g := proj / complex(e, 0)
		for i := from; i < to; i++ {
			seg[i] -= g * ref[i]
		}
	}
	after := dsp.Energy(seg)
	if before == 0 {
		return 0
	}
	return 1 - after/before
}

// killTech removes candidate j's technology from rx using the kill filter
// for its modulation class, returning the filtered copy and which counter
// to bump.
func (d *Decoder) killTech(rx []complex128, j phy.Technology, stats *Stats) []complex128 {
	if d.DisabledFilters[j.Class()] {
		return rx
	}
	switch j.Class() {
	case phy.ClassFSK:
		if tt, ok := j.(phy.ToneTechnology); ok {
			stats.KillFreq++
			return KillFrequency(rx, tt.Tones(), FSKKillWidth(j.BitRate()), d.FS)
		}
	case phy.ClassPSK:
		if nb, ok := j.(phy.NarrowbandTechnology); ok {
			stats.KillFreq++
			return KillNarrowband(rx, nb.Center(), nb.OccupiedBandwidth(), d.FS)
		}
	case phy.ClassCSS:
		if ct, ok := j.(phy.ChirpTechnology); ok {
			stats.KillCSS++
			return NewCSSKiller(ct).Apply(rx, d.FS)
		}
	case phy.ClassDSSS:
		if cd, ok := j.(phy.CodedTechnology); ok {
			stats.KillCodes++
			return KillCodes(rx, cd, d.FS, d.MinScore)
		}
	}
	return rx
}

// Decode runs the configured strategy on a capture and returns every frame
// recovered (CRC-valid only), in the order they were decoded, along with
// statistics. This is Algorithm 1 of the paper when UseKillFilters is set:
//
//  1. classify the residual and pick the strongest candidate S_i;
//  2. try to decode S_i directly; on success cancel it (SIC) and repeat;
//  3. on failure, kill the weakest other candidate S_j (by modulation
//     class), retry decoding S_i on the filtered view, and if that
//     succeeds cancel S_i from the *unfiltered* residual so S_j is
//     preserved for the next round;
//  4. move to the next candidate when no kill helps; stop when a full pass
//     makes no progress.
func (d *Decoder) Decode(rx []complex128) ([]*phy.Frame, Stats) {
	return d.DecodeTraced(rx, nil)
}

// killStageName maps a kill-filter invocation to its trace stage name.
// Constant strings keep per-iteration recording allocation-free.
func killStageName(c phy.Class) string {
	switch c {
	case phy.ClassFSK, phy.ClassPSK:
		return "kill_freq"
	case phy.ClassCSS:
		return "kill_css"
	case phy.ClassDSSS:
		return "kill_codes"
	}
	return "kill_none"
}

// DecodeTraced is Decode with per-stage trace recording: one "sic_round"
// stage per successful decode-and-subtract (Value = residual energy after
// the subtraction) and one "kill_*" stage per kill-filter iteration
// (Value = energy of the filtered view). A nil span reduces to Decode —
// the residual-energy computations are gated on the span, so untraced
// decodes pay nothing.
func (d *Decoder) DecodeTraced(rx []complex128, sp *obs.Span) ([]*phy.Frame, Stats) {
	var stats Stats
	residual := dsp.Clone(rx)
	var decoded []*phy.Frame
	maxRounds := d.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 32
	}
	isDuplicate := func(f *phy.Frame) bool {
		for _, prev := range decoded {
			if prev.Tech != f.Tech || !bytesEqual(prev.Payload, f.Payload) {
				continue
			}
			span := f.Bits // cheap lower bound; frame spans are far larger
			if diff := prev.Offset - f.Offset; diff > -span && diff < span || prev.Offset == f.Offset {
				return true
			}
			// Same tech and payload anywhere in one capture is treated as
			// a residual re-decode: independent retransmissions with
			// identical payloads inside a single shipped segment are far
			// rarer than imperfect cancellation.
			return true
		}
		return false
	}
	var others []Candidate // kill-filter scratch, reused across retries
	for round := 0; round < maxRounds; round++ {
		tRound := sp.Now()
		cands := d.Classify(residual)
		if len(cands) == 0 {
			break
		}
		progress := false
		for ci, c := range cands {
			if frame, ok := tryDecode(c.Tech, residual, d.FS); ok {
				subtractFrame(residual, c.Tech, frame, d.FS, 4)
				if isDuplicate(frame) {
					stats.Duplicates++
				} else {
					decoded = append(decoded, frame)
					stats.SICRounds++
				}
				progress = true
				break
			}
			stats.FailedDecode++
			if !d.UseKillFilters {
				// Strict SIC (Weber et al., the paper's baseline): decoding
				// proceeds in decreasing power order and terminates the
				// moment the strongest remaining signal cannot be decoded —
				// the weaker ones are buried beneath it.
				break
			}
			// Kill-filter fallback: remove other candidates, weakest
			// first, and retry this technology on the filtered view.
			others = others[:0]
			for oi, o := range cands {
				if oi != ci && o.Tech.Name() != c.Tech.Name() {
					others = append(others, o)
				}
			}
			// weakest first (Alg. 1 line 7)
			sort.Slice(others, func(a, b int) bool { return others[a].Power < others[b].Power })
			filtered := residual
			for _, o := range others {
				tKill := sp.Now()
				filtered = d.killTech(filtered, o.Tech, &stats)
				if sp != nil {
					sp.Stage(killStageName(o.Tech.Class()), sp.Now()-tKill, dsp.Energy(filtered))
				}
				if frame, ok := tryDecode(c.Tech, filtered, d.FS); ok {
					// Cancel from the unfiltered residual so the killed
					// technologies remain recoverable.
					subtractFrame(residual, c.Tech, frame, d.FS, 4)
					if isDuplicate(frame) {
						stats.Duplicates++
					} else {
						decoded = append(decoded, frame)
						stats.SICRounds++
					}
					progress = true
					break
				}
				stats.FailedDecode++
			}
			if progress {
				break
			}
		}
		if progress && sp != nil {
			// Residual energy after this round's cancellation: the falling
			// staircase of Algorithm 1, one stage per recovered frame.
			sp.Stage("sic_round", sp.Now()-tRound, dsp.Energy(residual))
		}
		if !progress {
			break
		}
	}
	return decoded, stats
}

// DescribeAlgorithm returns a short human-readable description of the
// configured strategy, for experiment logs.
func (d *Decoder) DescribeAlgorithm() string {
	if d.UseKillFilters {
		return fmt.Sprintf("CloudDecode (SIC + kill filters) over %d technologies", len(d.Techs))
	}
	return fmt.Sprintf("SIC baseline over %d technologies", len(d.Techs))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
