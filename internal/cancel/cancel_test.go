package cancel

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/phy"
	"repro/internal/phy/dbpsk"
	"repro/internal/phy/lora"
	"repro/internal/phy/oqpsk"
	"repro/internal/phy/xbee"
	"repro/internal/phy/zwave"
	"repro/internal/rng"
)

const fs = 1e6

func TestKillFrequencyRemovesTones(t *testing.T) {
	// two tones at ±20 kHz plus a survivor at 100 kHz
	n := 8192
	rx := make([]complex128, n)
	dsp.Add(rx, dsp.Tone(n, 20e3, 0, fs), 0)
	dsp.Add(rx, dsp.Tone(n, -20e3, 0, fs), 0)
	dsp.Add(rx, dsp.Tone(n, 100e3, 0, fs), 0)
	out := KillFrequency(rx, []float64{-20e3, 20e3}, 4e3, fs)
	spec := dsp.Abs(dsp.FFT(out))
	get := func(f float64) float64 { return spec[dsp.FreqToBin(f, n, fs)] }
	if get(20e3) > 1e-6 || get(-20e3) > 1e-6 {
		t.Fatalf("tones not removed: %v %v", get(20e3), get(-20e3))
	}
	if get(100e3) < float64(n)*0.9 {
		t.Fatalf("survivor damaged: %v", get(100e3))
	}
}

func TestKillFrequencyDegenerate(t *testing.T) {
	rx := dsp.Tone(64, 1e3, 0, fs)
	out := KillFrequency(rx, nil, 1e3, fs)
	for i := range rx {
		if out[i] != rx[i] {
			t.Fatal("no-tones call should be identity")
		}
	}
	if len(KillFrequency(nil, []float64{0}, 1e3, fs)) != 0 {
		t.Fatal("empty input")
	}
}

func TestKillFrequencyRemovesZWaveEnergy(t *testing.T) {
	zw := zwave.Default()
	sig, err := zw.Modulate([]byte{1, 2, 3, 4, 5, 6, 7, 8}, fs)
	if err != nil {
		t.Fatal(err)
	}
	before := dsp.Energy(sig)
	out := KillFrequency(sig, zw.Tones(), FSKKillWidth(zw.BitRate()), fs)
	after := dsp.Energy(out)
	if after > 0.6*before {
		t.Fatalf("zwave energy only reduced %v -> %v", before, after)
	}
}

func TestKillCSSRemovesLoRaPreservesFSK(t *testing.T) {
	lr := lora.Default()
	xb := xbee.Default()
	lsig, _ := lr.Modulate([]byte{1, 2, 3, 4, 5, 6}, fs)
	xsig, _ := xb.Modulate([]byte{9, 8, 7, 6, 5, 4}, fs)

	n := len(lsig) + 2000
	loraOnly := make([]complex128, n)
	dsp.Add(loraOnly, lsig, 1000)
	killer := NewCSSKiller(lr)
	killedLora := killer.Apply(loraOnly, fs)
	loraResidual := dsp.Energy(killedLora) / dsp.Energy(loraOnly)
	if loraResidual > 0.25 {
		t.Fatalf("kill-css left %.1f%% of lora energy", 100*loraResidual)
	}

	xbeeOnly := make([]complex128, n)
	dsp.Add(xbeeOnly, xsig, 1000)
	killedXbee := killer.Apply(xbeeOnly, fs)
	xbeeResidual := dsp.Energy(killedXbee) / dsp.Energy(xbeeOnly)
	if xbeeResidual < 0.5 {
		t.Fatalf("kill-css destroyed xbee: %.1f%% left", 100*xbeeResidual)
	}
}

func TestKillCodesRemovesOQPSKPreservesOthers(t *testing.T) {
	oq := oqpsk.Default()
	xb := xbee.Default()
	osig, _ := oq.Modulate([]byte{1, 2, 3, 4, 5, 6, 7, 8}, fs)
	xsig, _ := xb.Modulate([]byte{5, 5, 5, 5}, fs)

	n := len(osig) + 4000
	oqOnly := make([]complex128, n)
	dsp.Add(oqOnly, osig, 2000)
	killed := KillCodes(oqOnly, oq, fs, 0.05)
	oqResidual := dsp.Energy(killed) / dsp.Energy(oqOnly)
	if oqResidual > 0.2 {
		t.Fatalf("kill-codes left %.1f%% of oqpsk energy", 100*oqResidual)
	}

	// Without an oqpsk preamble present, the filter must be a no-op.
	xbOnly := make([]complex128, len(xsig)+2000)
	dsp.Add(xbOnly, xsig, 1000)
	untouched := KillCodes(xbOnly, oq, fs, 0.2)
	if r := dsp.Energy(untouched) / dsp.Energy(xbOnly); math.Abs(r-1) > 1e-9 {
		t.Fatalf("kill-codes modified a capture without oqpsk: ratio %v", r)
	}
}

func TestClassifyRanksByPower(t *testing.T) {
	techs := []phy.Technology{lora.Default(), xbee.Default(), zwave.Default()}
	d := NewDecoder(techs, fs)
	gen := rng.New(1)
	l, _ := techs[0].Modulate([]byte{1, 2, 3, 4}, fs)
	x, _ := techs[1].Modulate([]byte{4, 3, 2, 1}, fs)
	rx := channel.Mix(len(l)+30000, []channel.Emission{
		{Samples: l, Offset: 5000, SNRdB: 5},
		{Samples: x, Offset: 9000, SNRdB: 15},
	}, gen, fs)
	cands := d.Classify(rx)
	if len(cands) < 2 {
		t.Fatalf("candidates: %+v", cands)
	}
	if cands[0].Tech.Name() != "xbee" {
		t.Fatalf("strongest should be xbee (15 dB), got %s", cands[0].Tech.Name())
	}
}

func TestSubtractFrameCancels(t *testing.T) {
	xb := xbee.Default()
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	sig, _ := xb.Modulate(payload, fs)
	rx := make([]complex128, len(sig)+2000)
	scaled := dsp.Scale(dsp.Clone(sig), 2.5)
	dsp.Add(rx, scaled, 700)
	frame, err := xb.Demodulate(rx, fs)
	if err != nil || !frame.CRCOK {
		t.Fatalf("decode failed: %v", err)
	}
	removed := subtractFrame(rx, xb, frame, fs, 4)
	if removed < 0.95 {
		t.Fatalf("only %.1f%% of frame energy removed", 100*removed)
	}
}

func TestDecodeSingleNoCollision(t *testing.T) {
	techs := []phy.Technology{lora.Default(), xbee.Default(), zwave.Default()}
	d := NewDecoder(techs, fs)
	gen := rng.New(2)
	payload := []byte("single frame")
	sig, _ := techs[2].Modulate(payload, fs)
	rx := channel.Mix(len(sig)+20000, []channel.Emission{{Samples: sig, Offset: 8000, SNRdB: 15}}, gen, fs)
	frames, stats := d.Decode(rx)
	if len(frames) != 1 || frames[0].Tech != "zwave" || !bytes.Equal(frames[0].Payload, payload) {
		t.Fatalf("frames %+v", frames)
	}
	if stats.SICRounds != 1 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestDecodeLoRaXBeeCollisionWithKillFilters(t *testing.T) {
	techs := []phy.Technology{lora.Default(), xbee.Default(), zwave.Default()}
	gen := rng.New(3)
	pl1 := []byte("lora payload")
	pl2 := []byte("xbee payload")
	l, _ := techs[0].Modulate(pl1, fs)
	x, _ := techs[1].Modulate(pl2, fs)
	// full overlap in time, comparable powers — the regime where plain SIC
	// breaks down
	n := len(l) + 20000
	mix := []channel.Emission{
		{Samples: l, Offset: 5000, SNRdB: 12},
		{Samples: x, Offset: 7000, SNRdB: 12},
	}
	rx := channel.Mix(n, mix, gen, fs)

	cloud := NewDecoder(techs, fs)
	frames, stats := cloud.Decode(rx)
	got := map[string][]byte{}
	for _, f := range frames {
		got[f.Tech] = f.Payload
	}
	if !bytes.Equal(got["lora"], pl1) || !bytes.Equal(got["xbee"], pl2) {
		t.Fatalf("cloud decode incomplete: %+v (stats %+v)", got, stats)
	}
}

func TestSICBaselineWorsePowerBalanced(t *testing.T) {
	// With equal received powers and full overlap, plain SIC should
	// recover at most one of the two frames in most draws, while kill
	// filters recover both. Run a few seeds and compare totals.
	techs := []phy.Technology{lora.Default(), xbee.Default(), zwave.Default()}
	pl1 := []byte("payload-one")
	pl2 := []byte("payload-two")
	// The stress case: LoRa and XBee at the same center frequency with
	// comparable received powers and full time overlap. Strict SIC must
	// decode in power order; whenever the noisy power ranking puts XBee
	// first, its decode fails under the chirp interference and SIC stalls
	// with zero frames. CloudDecode falls back to KILL-CSS and recovers
	// both.
	l, _ := techs[0].Modulate(pl1, fs)
	x, _ := techs[1].Modulate(pl2, fs)
	n := len(l) + 20000

	totalSIC, totalCloud := 0, 0
	for seed := uint64(10); seed < 16; seed++ {
		gen := rng.New(seed)
		rx := channel.Mix(n, []channel.Emission{
			{Samples: l, Offset: 5000, SNRdB: 10},
			{Samples: x, Offset: 6000, SNRdB: 10},
		}, gen, fs)
		sic, _ := NewSIC(techs, fs).Decode(dsp.Clone(rx))
		cloud, _ := NewDecoder(techs, fs).Decode(rx)
		totalSIC += len(sic)
		totalCloud += len(cloud)
	}
	if totalCloud <= totalSIC {
		t.Fatalf("kill filters (%d frames) should beat SIC (%d frames)", totalCloud, totalSIC)
	}
}

func TestDecodeXBeeZWaveChannelized(t *testing.T) {
	// XBee (co-channel with LoRa) and Z-Wave (+250 kHz, per the EU band
	// plan) collide in time at equal power. KILL-FREQUENCY separates them.
	techs := []phy.Technology{lora.Default(), xbee.Default(), zwave.Default()}
	plX := []byte("xbee data")
	plZ := []byte("zwave data")
	x, _ := techs[1].Modulate(plX, fs)
	z, _ := techs[2].Modulate(plZ, fs)
	n := len(x) + 20000
	if len(z)+20000 > n {
		n = len(z) + 20000
	}
	got := 0
	for seed := uint64(30); seed < 33; seed++ {
		gen := rng.New(seed)
		rx := channel.Mix(n, []channel.Emission{
			{Samples: x, Offset: 5000, SNRdB: 12},
			{Samples: z, Offset: 6000, SNRdB: 12},
		}, gen, fs)
		frames, _ := NewDecoder(techs, fs).Decode(rx)
		names := map[string]bool{}
		for _, f := range frames {
			names[f.Tech] = true
		}
		if names["xbee"] && names["zwave"] {
			got++
		}
	}
	if got < 2 {
		t.Fatalf("channelized FSK collision resolved only %d/3 times", got)
	}
}

func TestDecodeEmptyCapture(t *testing.T) {
	techs := []phy.Technology{xbee.Default()}
	d := NewDecoder(techs, fs)
	gen := rng.New(4)
	rx := channel.AWGN(40000, gen)
	frames, _ := d.Decode(rx)
	if len(frames) != 0 {
		t.Fatalf("decoded %d frames from noise", len(frames))
	}
}

func TestDescribeAlgorithm(t *testing.T) {
	techs := []phy.Technology{xbee.Default()}
	if NewDecoder(techs, fs).DescribeAlgorithm() == NewSIC(techs, fs).DescribeAlgorithm() {
		t.Fatal("descriptions should differ")
	}
}

func TestKillNarrowbandPSKCollision(t *testing.T) {
	// LoRa collides with a SigFox-class ultra-narrowband D-BPSK burst that
	// sits inside the capture. The PSK branch of KILL-FREQUENCY notches the
	// narrow carrier so LoRa decodes, and SIC then recovers the D-BPSK
	// frame from the residual.
	db, err := dbpsk.New(dbpsk.Config{CenterOffset: -30e3}) // inside LoRa's band
	if err != nil {
		t.Fatal(err)
	}
	lr := lora.Default()
	techs := []phy.Technology{lr, db}
	plL := []byte("lora under unb")
	plD := []byte{0xF0, 0x0D}
	gen := rng.New(41)
	l, _ := lr.Modulate(plL, fs)
	d, _ := db.Modulate(plD, fs)
	n := len(l) + 20000
	if len(d)+20000 > n {
		n = len(d) + 20000
	}
	rx := channel.Mix(n, []channel.Emission{
		{Samples: l, Offset: 5000, SNRdB: 8},
		// The UNB burst concentrates its power in 4 kHz, so at equal total
		// power its spectral density towers over LoRa's spread signal.
		{Samples: d, Offset: 6000, SNRdB: 8},
	}, gen, fs)
	frames, stats := NewDecoder(techs, fs).Decode(rx)
	got := map[string][]byte{}
	for _, f := range frames {
		got[f.Tech] = f.Payload
	}
	if !bytes.Equal(got["lora"], plL) {
		t.Fatalf("lora not recovered: %+v (stats %+v)", got, stats)
	}
	if !bytes.Equal(got["dbpsk"], plD) {
		t.Fatalf("dbpsk not recovered: %+v (stats %+v)", got, stats)
	}
}

func TestDisabledFiltersRespected(t *testing.T) {
	// Disabling KILL-CSS must prevent the CSS kill path from running, so a
	// LoRa+XBee equal-power collision where XBee ranks first degenerates to
	// SIC behavior for that pair.
	techs := []phy.Technology{lora.Default(), xbee.Default(), zwave.Default()}
	d := NewDecoder(techs, fs)
	d.DisabledFilters = map[phy.Class]bool{phy.ClassCSS: true}
	l, _ := techs[0].Modulate([]byte("lora payload"), fs)
	x, _ := techs[1].Modulate([]byte("xbee payload"), fs)
	gen := rng.New(3)
	rx := channel.Mix(len(l)+20000, []channel.Emission{
		{Samples: l, Offset: 5000, SNRdB: 12},
		{Samples: x, Offset: 7000, SNRdB: 12},
	}, gen, fs)
	_, stats := d.Decode(rx)
	if stats.KillCSS != 0 {
		t.Fatalf("KILL-CSS ran %d times despite being disabled", stats.KillCSS)
	}
}
