package analysis

import (
	"go/ast"
	"maps"
)

// A small forward dataflow engine over the CFG: rules describe facts (a
// lock is held, a context is reachable) through a Transfer function, pick
// the merge semantics, and get back the facts in force at the entry of
// every block. Must-facts survive only when they hold on every path from
// the entry (branch merges intersect), may-facts when they hold on some
// path (merges union) — the difference between proving a lock is held and
// suspecting it might be.

// Facts is a set of named dataflow facts.
type Facts map[string]bool

// Clone returns an independent copy of f (nil stays nil).
func (f Facts) Clone() Facts { return maps.Clone(f) }

// Mode selects a Flow's merge operator.
type Mode int

const (
	// Must keeps a fact only when every predecessor path carries it.
	Must Mode = iota
	// May keeps a fact when any predecessor path carries it.
	May
)

// Flow is one forward dataflow problem over a CFG.
type Flow struct {
	CFG   *CFG
	Mode  Mode
	Entry []string // facts in force at function entry
	// Transfer updates facts in place for one CFG node. It is called in
	// block order during solving and may be reused by rules to replay a
	// block up to a node of interest.
	Transfer func(n ast.Node, facts Facts)
}

// Solve iterates the problem to a fixed point and returns the fact set at
// the entry of each block, indexed by Block.Index. A nil set marks a block
// unreachable from the entry: under Must semantics every fact vacuously
// holds there, under May none do; rules should skip such blocks.
func (fl *Flow) Solve() []Facts {
	n := len(fl.CFG.Blocks)
	in := make([]Facts, n)
	out := make([]Facts, n)
	entry := Facts{}
	for _, f := range fl.Entry {
		entry[f] = true
	}
	in[0] = entry

	apply := func(b *Block) Facts {
		f := in[b.Index].Clone()
		if f == nil {
			return nil
		}
		for _, node := range b.Nodes {
			fl.Transfer(node, f)
		}
		return f
	}

	preds := fl.CFG.Preds()
	for changed := true; changed; {
		changed = false
		for _, b := range fl.CFG.Blocks {
			if in[b.Index] != nil {
				o := apply(b)
				if !maps.Equal(o, out[b.Index]) || (o == nil) != (out[b.Index] == nil) {
					out[b.Index] = o
					changed = true
				}
			}
			for _, s := range fl.CFG.Blocks {
				if s.Index == 0 {
					continue
				}
				merged := mergeFacts(fl.Mode, preds[s.Index], out)
				if merged == nil {
					continue
				}
				if in[s.Index] == nil || !maps.Equal(merged, in[s.Index]) {
					in[s.Index] = merged
					changed = true
				}
			}
		}
	}
	return in
}

// mergeFacts folds the outs of every reachable predecessor.
func mergeFacts(mode Mode, preds []*Block, out []Facts) Facts {
	var acc Facts
	for _, p := range preds {
		po := out[p.Index]
		if po == nil {
			continue // unreachable predecessor contributes nothing
		}
		if acc == nil {
			acc = po.Clone()
			continue
		}
		if mode == May {
			maps.Copy(acc, po)
			continue
		}
		// Must: intersect. Set operations are order-insensitive.
		//lint:ignore nondeterminism set intersection is commutative, visit order cannot change the result
		for k := range acc {
			if !po[k] {
				delete(acc, k)
			}
		}
	}
	return acc
}
