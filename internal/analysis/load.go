package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages of a single module (or of a
// GOPATH-style testdata tree when ModulePath is empty), resolving
// intra-module imports itself and everything else through the standard
// library's importer. It implements types.Importer so type-checking can
// recurse into module-internal dependencies.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string // module path from go.mod; "" = resolve any import under Root
	Root       string // module root directory

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at root. If root has a
// go.mod, its module path scopes intra-module import resolution; otherwise
// every import that matches a subdirectory of root is resolved locally
// (the layout used by analyzer golden-test data).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:    token.NewFileSet(),
		Root:    abs,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	if data, err := os.ReadFile(filepath.Join(abs, "go.mod")); err == nil {
		l.ModulePath = modulePath(data)
	}
	// Prefer the gc importer (reads compiled export data, fast); fall back
	// to type-checking the standard library from source if export data is
	// unavailable. The choice is made once so every package in a run sees
	// the same type identities.
	gc := importer.Default()
	if _, err := gc.Import("fmt"); err == nil {
		l.std = gc
	} else {
		l.std = importer.ForCompiler(l.Fset, "source", nil)
	}
	return l, nil
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// localDir maps an import path to a directory under Root, or "" if the
// path is not resolved by this module.
func (l *Loader) localDir(path string) string {
	switch {
	case l.ModulePath != "" && path == l.ModulePath:
		return l.Root
	case l.ModulePath != "" && strings.HasPrefix(path, l.ModulePath+"/"):
		return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
	case l.ModulePath == "":
		dir := filepath.Join(l.Root, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir
		}
	}
	return ""
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir := l.localDir(path); dir != "" {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if from, ok := l.std.(types.ImporterFrom); ok {
		return from.ImportFrom(path, l.Root, 0)
	}
	return l.std.Import(path)
}

// Load loads and type-checks the package in the given directory (which
// must live under Root). Results are memoized by import path.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module root %s", dir, l.Root)
	}
	path := filepath.ToSlash(rel)
	if l.ModulePath != "" {
		if path == "." {
			path = l.ModulePath
		} else {
			path = l.ModulePath + "/" + path
		}
	}
	return l.load(path, abs)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []string
	cfg := types.Config{
		Importer: l,
		Error: func(err error) {
			if len(typeErrs) < 10 {
				typeErrs = append(typeErrs, err.Error())
			}
		},
	}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s:\n  %s", path, strings.Join(typeErrs, "\n  "))
	}
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// goFileNames returns the sorted non-test .go files of dir. Test files are
// excluded from analysis: the rule suite deliberately targets library and
// command code, and excluding them keeps every package self-contained for
// type-checking.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// ExpandPatterns resolves command-line package patterns against the
// loader's module root. Supported forms: "./..." (every package), a
// directory path like "./internal/dsp", a directory tree like
// "./internal/...", and module-qualified import paths.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if l.ModulePath != "" && (pat == l.ModulePath || strings.HasPrefix(pat, l.ModulePath+"/")) {
			// Module-qualified import path: rewrite to a relative dir.
			pat = "./" + strings.TrimPrefix(strings.TrimPrefix(pat, l.ModulePath), "/")
		}
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(rest, "./")))
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if names, err := goFileNames(p); err == nil && len(names) > 0 {
					add(p)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(pat, "./"))))
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadPatterns expands patterns and loads every matched package.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	dirs, err := l.ExpandPatterns(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
