// Package analysis is a small, dependency-free static-analysis framework
// for this repository, in the spirit of golang.org/x/tools/go/analysis but
// written against the standard library only (go/parser, go/ast, go/types,
// go/importer) so the module stays self-contained.
//
// The framework loads and type-checks every package in the module, runs a
// set of Analyzers over each, honors //lint:ignore suppression comments,
// and reports findings with file:line:col positions, either as text or as
// machine-readable JSON. The rule suite itself lives in
// repro/internal/analysis/rules; the command-line driver is
// cmd/galiot-lint.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static-analysis rule. Run is invoked once per loaded
// package (skipping packages for which Match returns false) and reports
// findings through the Pass.
type Analyzer struct {
	Name string // short rule identifier, used in output and //lint:ignore
	Doc  string // one-line description of what the rule flags

	// Match restricts the analyzer to certain packages. A nil Match means
	// the analyzer runs everywhere. It receives the package's import path.
	Match func(importPath string) bool

	Run func(*Pass)
}

// Pass carries one package's parse and type-check results to an Analyzer.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File // non-test files of the package, parse order
	Pkg        *types.Package
	Info       *types.Info
	ImportPath string

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Rule:     p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		position: pos,
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Rule    string         `json:"rule"`
	Pos     token.Position `json:"pos"`
	Message string         `json:"message"`

	position token.Pos // original pos, for suppression lookup
}

// String formats the diagnostic in the conventional file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// sortDiagnostics orders findings by file, line, column, then rule.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// MatchPathSuffix returns a Match function that accepts import paths ending
// in one of the given slash-separated suffixes (on a path-segment boundary),
// e.g. MatchPathSuffix("internal/dsp") accepts both "repro/internal/dsp"
// and a golden-test path like "hotloopalloc/internal/dsp".
func MatchPathSuffix(suffixes ...string) func(string) bool {
	return func(path string) bool {
		for _, s := range suffixes {
			if path == s || strings.HasSuffix(path, "/"+s) {
				return true
			}
		}
		return false
	}
}

// Run applies each analyzer to each package and returns the surviving
// (non-suppressed) findings in deterministic order.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	diags, _ := RunAudit(analyzers, pkgs)
	return diags
}

// RunAudit is Run plus a suppression audit: alongside the surviving
// findings it returns every //lint:ignore directive that suppressed
// nothing, in deterministic (file, line) order. Only directives naming one
// of the analyzers actually run are audited — a directive for a filtered-
// out rule cannot be proven stale.
func RunAudit(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, []Directive) {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var all []Diagnostic
	var stale []Directive
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		all = append(all, sup.bad...)
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.ImportPath) {
				continue
			}
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				ImportPath: pkg.ImportPath,
			}
			pass.report = func(d Diagnostic) {
				if sup.suppressed(d.Rule, d.Pos) {
					return
				}
				all = append(all, d)
			}
			a.Run(pass)
		}
		stale = append(stale, sup.stale(ran)...)
	}
	sortDiagnostics(all)
	sort.Slice(stale, func(i, j int) bool {
		a, b := stale[i], stale[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return all, stale
}

// TypeContainsSync reports whether t contains (directly or through struct
// fields and array elements) a type from the sync package that must not be
// copied: Mutex, RWMutex, WaitGroup, Once, Cond, Map or Pool.
func TypeContainsSync(t types.Type) bool {
	return typeContainsSync(t, make(map[types.Type]bool))
}

func typeContainsSync(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
				return true
			}
		}
		return typeContainsSync(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeContainsSync(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return typeContainsSync(u.Elem(), seen)
	}
	return false
}

// IsFloat reports whether t's underlying type is a floating-point or
// complex basic type.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}
