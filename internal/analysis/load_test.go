package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadRejectsUnparseableFile(t *testing.T) {
	t.Parallel()
	root := writeTree(t, map[string]string{
		"go.mod":       "module example.test\n\ngo 1.22\n",
		"bad/bad.go":   "package bad\n\nfunc Broken( {\n",
		"bad/other.go": "package bad\n\nfunc Fine() {}\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load(filepath.Join(root, "bad")); err == nil {
		t.Fatal("expected a parse error from bad/")
	} else if !strings.Contains(err.Error(), "bad.go") {
		t.Fatalf("parse error does not name the file: %v", err)
	}
}

func TestLoadRejectsEmptyPackage(t *testing.T) {
	t.Parallel()
	root := writeTree(t, map[string]string{
		"go.mod":           "module example.test\n\ngo 1.22\n",
		"empty/notes.txt":  "no go files here\n",
		"empty/x_test.go":  "package empty\n", // test files are excluded
		"empty/_hidden.go": "package empty\n", // underscore files are excluded
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load(filepath.Join(root, "empty")); err == nil {
		t.Fatal("expected an error for a directory with no buildable Go files")
	} else if !strings.Contains(err.Error(), "no buildable Go files") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestLoadRejectsDirOutsideRoot(t *testing.T) {
	t.Parallel()
	root := writeTree(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
	})
	outside := t.TempDir()
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load(outside); err == nil {
		t.Fatal("expected an error loading a directory outside the module root")
	} else if !strings.Contains(err.Error(), "outside module root") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestLoadDetectsImportCycle(t *testing.T) {
	t.Parallel()
	root := writeTree(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
		"x/x.go": "package x\n\nimport \"example.test/y\"\n\nvar V = y.W\n",
		"y/y.go": "package y\n\nimport \"example.test/x\"\n\nvar W = x.V\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load(filepath.Join(root, "x")); err == nil {
		t.Fatal("expected an import-cycle error")
	} else if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestExpandPatternsSkipsNonPackageDirs(t *testing.T) {
	t.Parallel()
	root := writeTree(t, map[string]string{
		"go.mod":                "module example.test\n\ngo 1.22\n",
		"real/real.go":          "package real\n",
		"real/testdata/t.go":    "package broken !\n", // never parsed
		"vendor/v/v.go":         "package v\n",
		"_wip/w.go":             "package w\n",
		".hidden/h.go":          "package h\n",
		"real/sub/notgo.txt":    "prose\n",
		"deeper/pkg/pkg.go":     "package pkg\n",
		"deeper/pkg/extra_test": "not a go file\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var rel []string
	for _, d := range dirs {
		r, err := filepath.Rel(root, d)
		if err != nil {
			t.Fatal(err)
		}
		rel = append(rel, filepath.ToSlash(r))
	}
	want := []string{"deeper/pkg", "real"}
	if strings.Join(rel, ",") != strings.Join(want, ",") {
		t.Fatalf("ExpandPatterns(./...) = %v, want %v", rel, want)
	}
}

func TestLoadPatternsPropagatesLoadErrors(t *testing.T) {
	t.Parallel()
	root := writeTree(t, map[string]string{
		"go.mod":     "module example.test\n\ngo 1.22\n",
		"ok/ok.go":   "package ok\n",
		"bad/bad.go": "package bad\n\nfunc Broken() int { return \"nope\" }\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.LoadPatterns([]string{"./..."}); err == nil {
		t.Fatal("expected LoadPatterns to surface the type error in bad/")
	}
}
