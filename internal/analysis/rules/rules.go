package rules

import "repro/internal/analysis"

// All returns the full galiot-lint rule suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Ctxflow,
		ErrDrop,
		FloatEq,
		GoLeak,
		HotLoopAlloc,
		LockOrder,
		MutexByValue,
		Nondeterminism,
		ObsNames,
		UnguardedStats,
	}
}

// ByName returns the named analyzers in the given order; ok is false when
// any name is unknown.
func ByName(names []string) ([]*analysis.Analyzer, bool) {
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}
