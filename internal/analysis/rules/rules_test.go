package rules_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/rules"
)

func TestNondeterminism(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, "testdata/src", rules.Nondeterminism, "nondet/internal/sim")
}

func TestFloatEq(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, "testdata/src", rules.FloatEq, "floateq")
}

func TestHotLoopAlloc(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, "testdata/src", rules.HotLoopAlloc, "hotalloc/internal/dsp")
}

func TestGoLeak(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, "testdata/src", rules.GoLeak, "goleak/internal/worker")
}

func TestErrDrop(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, "testdata/src", rules.ErrDrop, "errdrop")
}

func TestMutexByValue(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, "testdata/src", rules.MutexByValue, "mutexbyvalue")
}

func TestObsNames(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, "testdata/src", rules.ObsNames, "obsnames/internal/gw")
}

func TestUnguardedStats(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, "testdata/src", rules.UnguardedStats, "unguardedstats", "unguardedstats/calm")
}

func TestCtxflow(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, "testdata/src", rules.Ctxflow, "ctxflow/internal/gateway")
}

func TestLockOrder(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, "testdata/src", rules.LockOrder, "lockorder")
}

func TestMatchScoping(t *testing.T) {
	t.Parallel()
	// Path-scoped analyzers must not fire outside their packages: run the
	// hot-path and nondeterminism rules over the floateq fixture (which is
	// neither an internal/dsp-style path nor internal/) and expect silence.
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(filepath.Join(root, "floateq"))
	if err != nil {
		t.Fatal(err)
	}
	scoped := []*analysis.Analyzer{rules.HotLoopAlloc, rules.Nondeterminism}
	if diags := analysis.Run(scoped, []*analysis.Package{pkg}); len(diags) != 0 {
		t.Fatalf("scoped analyzers fired outside their packages: %v", diags)
	}
}

func TestByName(t *testing.T) {
	t.Parallel()
	picked, ok := rules.ByName([]string{"floateq", "errdrop"})
	if !ok || len(picked) != 2 || picked[0].Name != "floateq" || picked[1].Name != "errdrop" {
		t.Fatalf("ByName(floateq, errdrop) = %v, %v", picked, ok)
	}
	if _, ok := rules.ByName([]string{"nope"}); ok {
		t.Fatal("ByName accepted an unknown rule")
	}
}
