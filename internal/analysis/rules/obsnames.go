package rules

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/obs"
)

// ObsNames enforces the observability naming vocabulary on string-literal
// registrations: metric names (Registry.Counter/Gauge/Histogram) must be
// subsystem_name_unit with a unit from obs.MetricUnits, event names
// (Journal.Record) must be subsystem_subject_verb with a verb from
// obs.EventVerbs, and health-check names (Health.Register /
// RegisterReadiness) must be subsystem_subject_condition with a condition
// from obs.HealthSuffixes. Names built at runtime are outside a linter's
// reach; the registries themselves panic on those.
var ObsNames = &analysis.Analyzer{
	Name: "obsnames",
	Doc:  "enforces the metric, event and health-check naming vocabulary on obs registrations",
	Run:  runObsNames,
}

// obsNameCheck validates one name class: which obs receiver type and
// methods register it, how to validate, and what to say when it fails.
type obsNameCheck struct {
	recv    string          // receiver type name in internal/obs
	methods map[string]bool // methods whose first argument is the name
	valid   func(string) bool
	kind    string // diagnostic noun
	scheme  string // diagnostic scheme description
	vocab   []string
}

var obsNameChecks = []obsNameCheck{
	{
		recv:    "Registry",
		methods: map[string]bool{"Counter": true, "Gauge": true, "Histogram": true},
		valid:   obs.ValidMetricName,
		kind:    "metric name",
		scheme:  "subsystem_name_unit: lowercase snake_case, >= 3 segments, unit one of",
		vocab:   obs.MetricUnits,
	},
	{
		recv:    "Journal",
		methods: map[string]bool{"Record": true},
		valid:   obs.ValidEventName,
		kind:    "event name",
		scheme:  "subsystem_subject_verb: lowercase snake_case, >= 2 segments, verb one of",
		vocab:   obs.EventVerbs,
	},
	{
		recv:    "Health",
		methods: map[string]bool{"Register": true, "RegisterReadiness": true},
		valid:   obs.ValidHealthName,
		kind:    "health check name",
		scheme:  "subsystem_subject_condition: lowercase snake_case, >= 2 segments, condition one of",
		vocab:   obs.HealthSuffixes,
	},
}

func runObsNames(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			for i := range obsNameChecks {
				c := &obsNameChecks[i]
				if !c.methods[sel.Sel.Name] || !isObsType(pass.Info.TypeOf(sel.X), c.recv) {
					continue
				}
				lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
				if !ok {
					return true // dynamic name: checked at runtime by the registry
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				if !c.valid(name) {
					pass.Reportf(lit.Pos(), "%s %q does not follow %s %s",
						c.kind, name, c.scheme, strings.Join(c.vocab, "/"))
				}
				return true
			}
			return true
		})
	}
}

// isObsType reports whether t is (a pointer to) the named type of a
// package whose import path ends in internal/obs.
func isObsType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}
