package rules

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/obs"
)

// ObsNames enforces the metric naming scheme on obs.Registry registrations:
// every string-literal name passed to Registry.Counter/Gauge/Histogram must
// be subsystem_name_unit — lowercase snake_case, at least three segments,
// the final segment a unit from obs.MetricUnits. Names built at runtime
// are outside a linter's reach; the registry itself panics on those.
var ObsNames = &analysis.Analyzer{
	Name: "obsnames",
	Doc:  "enforces the subsystem_name_unit metric naming scheme on obs.Registry registrations",
	Run:  runObsNames,
}

// registryMethods are the Registry getters whose first argument is a
// metric name.
var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
}

func runObsNames(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !registryMethods[sel.Sel.Name] {
				return true
			}
			if !isObsRegistry(pass.Info.TypeOf(sel.X)) {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				return true // dynamic name: checked at runtime by the registry
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !obs.ValidMetricName(name) {
				pass.Reportf(lit.Pos(),
					"metric name %q does not follow subsystem_name_unit: lowercase snake_case, >= 3 segments, unit one of %s",
					name, strings.Join(obs.MetricUnits, "/"))
			}
			return true
		})
	}
}

// isObsRegistry reports whether t is (a pointer to) the Registry type of a
// package whose import path ends in internal/obs.
func isObsRegistry(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != "Registry" || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}
