package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// LockOrder hunts AB-BA deadlocks: it tracks which locks are may-held at
// every acquisition site (dataflow over the CFG), follows synchronous
// intra-package calls through per-function acquisition summaries, and
// builds a package-wide lock-order graph over type-level lock names
// (Farm.mu, registryMu). A cycle in that graph means two code paths
// acquire the same pair of locks in opposite orders — the classic deadlock
// the race detector only catches when the schedule actually interleaves.
// A must-held lock re-acquired on the same instance is reported as a
// certain self-deadlock.
//
// Precision choices: lock instances are named (receiver field chains,
// package vars, locals); edges between two instances of the same
// type-level name are skipped (locking two Spools in a row is ordered by
// the caller, not by this graph), and locals never enter the graph (a
// per-frame lock cannot cross goroutines). go'ed calls contribute nothing
// — the new goroutine starts with no locks held — while deferred calls
// are treated as synchronous at their site, matching LIFO defer order for
// the common defer-unlock pairing.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "builds the package's inter-procedural lock-acquisition order graph and reports cycles (AB-BA deadlocks) and re-entrant locks",
	Run:  runLockOrder,
}

// lockUnit is one analyzed body: a declared function/method or a function
// literal (which runs in its own frame but names receiver locks through
// the enclosing method's receiver).
type lockUnit struct {
	body *ast.BlockStmt
	recv types.Object // enclosing method receiver, nil otherwise
	tn   string       // receiver type name for recv.* keys
	fn   *types.Func  // nil for literals
}

// lockEdge is one observed acquisition order: to was acquired (directly or
// via a call) while from was held.
type lockEdge struct {
	from, to string
	pos      token.Pos
}

func runLockOrder(pass *analysis.Pass) {
	units := collectLockUnits(pass)
	summaries := buildLockSummaries(pass, units)

	var edges []lockEdge
	for _, u := range units {
		edges = append(edges, lockUnitEdges(pass, u, summaries)...)
	}

	// Keep the first site of each distinct edge (units are walked in file
	// order, so "first" is deterministic).
	seen := make(map[[2]string]bool)
	adj := make(map[string][]string)
	var uniq []lockEdge
	for _, e := range edges {
		k := [2]string{e.from, e.to}
		if seen[k] {
			continue
		}
		seen[k] = true
		uniq = append(uniq, e)
		adj[e.from] = append(adj[e.from], e.to)
	}

	comp, members := cyclicComponents(adj)
	for _, e := range uniq {
		cf, okF := comp[e.from]
		ct, okT := comp[e.to]
		if !okF || !okT || cf != ct {
			continue // an edge is cyclic only within one strongly connected component
		}
		pass.Reportf(e.pos, "acquiring %s while holding %s is part of a lock-order cycle [%s]; potential AB-BA deadlock", e.to, e.from, strings.Join(members[cf], ", "))
	}
}

// collectLockUnits gathers every function body in the package, literals
// included, in deterministic file order.
func collectLockUnits(pass *analysis.Pass) []*lockUnit {
	var units []*lockUnit
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var recv types.Object
			tn := ""
			if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
				recv = pass.Info.Defs[fd.Recv.List[0].Names[0]]
				if recv != nil {
					if named := namedRecvType(recv.Type()); named != nil {
						tn = named.Obj().Name()
					}
				}
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			units = append(units, &lockUnit{body: fd.Body, recv: recv, tn: tn, fn: fn})
			// Literals inherit the receiver for lock naming; their bodies
			// run in separate frames so they are separate units.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					units = append(units, &lockUnit{body: lit.Body, recv: recv, tn: tn})
				}
				return true
			})
		}
	}
	return units
}

// lockNameOf maps an instance fact key to its type-level graph name.
// Locals stay out of the graph (ok=false).
func lockNameOf(u *lockUnit, key string) (string, bool) {
	switch {
	case key == "recv" || strings.HasPrefix(key, "recv."):
		if u.tn == "" {
			return "", false
		}
		return u.tn + strings.TrimPrefix(key, "recv"), true
	case strings.HasPrefix(key, "g:"):
		return strings.TrimPrefix(key, "g:"), true
	default:
		return "", false
	}
}

// buildLockSummaries computes, per declared function, the set of
// type-level lock names it may acquire transitively through synchronous
// intra-package calls. Sets only grow, so iterating to a fixed point
// terminates.
func buildLockSummaries(pass *analysis.Pass, units []*lockUnit) map[*types.Func]map[string]bool {
	type fnInfo struct {
		own     []string
		callees []*types.Func
	}
	infos := make(map[*types.Func]*fnInfo)
	var order []*types.Func
	for _, u := range units {
		if u.fn == nil {
			continue
		}
		info := &fnInfo{}
		uu := u
		analysis.InspectShallow(u.body, func(n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				return false // runs with its own empty lock set
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op, target := classifyLockCall(pass, call); op == opLock || op == opRLock {
				if key, ok := lockKey(pass, target, uu.recv); ok {
					if name, ok := lockNameOf(uu, key); ok {
						info.own = append(info.own, name)
					}
				}
				return true
			}
			if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() == pass.Pkg {
				info.callees = append(info.callees, fn)
			}
			return true
		})
		infos[u.fn] = info
		order = append(order, u.fn)
	}

	summaries := make(map[*types.Func]map[string]bool)
	for _, fn := range order {
		s := make(map[string]bool)
		for _, n := range infos[fn].own {
			s[n] = true
		}
		summaries[fn] = s
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			s := summaries[fn]
			for _, callee := range infos[fn].callees {
				cs, ok := summaries[callee]
				if !ok {
					continue // method of another package's type, or no body here
				}
				var names []string
				//lint:ignore nondeterminism the collected names are sorted before use
				for n := range cs {
					names = append(names, n)
				}
				sort.Strings(names)
				for _, n := range names {
					if !s[n] {
						s[n] = true
						changed = true
					}
				}
			}
		}
	}
	return summaries
}

// lockUnitEdges runs the held-lock dataflow over one body and emits order
// edges at every acquisition and synchronous callsite, plus self-deadlock
// diagnostics for must-held re-acquisitions.
func lockUnitEdges(pass *analysis.Pass, u *lockUnit, summaries map[*types.Func]map[string]bool) []lockEdge {
	cfg := analysis.NewCFG(u.body)
	transfer := lockTransfer(pass, u.recv)
	may := (&analysis.Flow{CFG: cfg, Mode: analysis.May, Transfer: transfer}).Solve()
	must := (&analysis.Flow{CFG: cfg, Mode: analysis.Must, Transfer: transfer}).Solve()

	var edges []lockEdge
	for _, b := range cfg.Blocks {
		mayF := may[b.Index].Clone()
		mustF := must[b.Index].Clone()
		if mayF == nil {
			continue // unreachable
		}
		for _, n := range b.Nodes {
			visitLockSites(pass, n, func(call *ast.CallExpr, deferred bool) {
				op, target := classifyLockCall(pass, call)
				if op == opLock || op == opRLock {
					if deferred {
						return // a deferred acquisition has no defined order
					}
					key, ok := lockKey(pass, target, u.recv)
					if !ok {
						return
					}
					if mustF != nil && op == opLock && (mustF["w:"+key] || mustF["r:"+key]) {
						pass.Reportf(call.Pos(), "%s locked while already held on every path here; this deadlocks the goroutine", lockSiteDisplay(u, key))
						return
					}
					name, named := lockNameOf(u, key)
					for _, h := range heldInstanceKeys(mayF) {
						if h == key {
							continue // may-held re-lock: only certain (must) cases are reported
						}
						hn, ok := lockNameOf(u, h)
						if !ok || !named || hn == name {
							continue // locals, or two instances of the same field
						}
						edges = append(edges, lockEdge{from: hn, to: name, pos: call.Pos()})
					}
					return
				}
				if op != opNone {
					return
				}
				fn := calleeFunc(pass, call)
				if fn == nil {
					return
				}
				acq, ok := summaries[fn]
				if !ok || len(acq) == 0 {
					return
				}
				var names []string
				//lint:ignore nondeterminism the collected names are sorted before use
				for n := range acq {
					names = append(names, n)
				}
				sort.Strings(names)
				for _, h := range heldInstanceKeys(mayF) {
					hn, ok := lockNameOf(u, h)
					if !ok {
						continue
					}
					for _, n := range names {
						if n != hn {
							edges = append(edges, lockEdge{from: hn, to: n, pos: call.Pos()})
						}
					}
				}
			})
			transfer(n, mayF)
			if mustF != nil {
				transfer(n, mustF)
			}
		}
	}
	return edges
}

// visitLockSites walks one CFG node and calls visit for every call that
// executes in this frame: plain calls, and deferred calls (flagged) which
// run at function exit. go'ed calls and literal bodies are skipped.
func visitLockSites(pass *analysis.Pass, n ast.Node, visit func(call *ast.CallExpr, deferred bool)) {
	deferred := false
	if d, ok := n.(*ast.DeferStmt); ok {
		deferred = true
		n = d.Call
	}
	analysis.InspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			visitLockSites(pass, m.Call, func(call *ast.CallExpr, _ bool) { visit(call, true) })
			return false
		case *ast.CallExpr:
			visit(m, deferred)
		}
		return true
	})
}

// heldInstanceKeys lists the instance keys of every held lock (read or
// write), sorted for deterministic edge emission.
func heldInstanceKeys(facts analysis.Facts) []string {
	var keys []string
	for k := range facts {
		if strings.HasPrefix(k, "w:") || strings.HasPrefix(k, "r:") {
			keys = append(keys, k[2:])
		}
	}
	sort.Strings(keys)
	// A lock both read- and write-held appears twice; collapse.
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || keys[i-1] != k {
			out = append(out, k)
		}
	}
	return out
}

// lockSiteDisplay renders an instance key for a diagnostic.
func lockSiteDisplay(u *lockUnit, key string) string {
	if name, ok := lockNameOf(u, key); ok {
		return name
	}
	s := strings.TrimPrefix(key, "l:")
	if at := strings.Index(s, "@"); at >= 0 {
		rest := ""
		if dot := strings.Index(s, "."); dot > at {
			rest = s[dot:]
		}
		s = s[:at] + rest
	}
	return s
}

// cyclicComponents finds the strongly connected components of size > 1
// (same-name self-edges are filtered before the graph is built) and
// returns each cyclic node's component ID plus the sorted member list per
// component.
func cyclicComponents(adj map[string][]string) (map[string]int, map[int][]string) {
	var nodes []string
	//lint:ignore nondeterminism the collected names are sorted before use
	for n := range adj {
		nodes = append(nodes, n)
	}
	//lint:ignore nondeterminism the collected names are sorted and deduplicated below
	for _, succs := range adj {
		nodes = append(nodes, succs...)
	}
	sort.Strings(nodes)
	uniq := nodes[:0]
	for i, n := range nodes {
		if i == 0 || nodes[i-1] != n {
			uniq = append(uniq, n)
		}
	}
	nodes = uniq

	// Tarjan's strongly-connected components, deterministic via the sorted
	// node and adjacency order.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	comp := make(map[string]int)
	members := make(map[int][]string)
	compID := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sort.Strings(scc)
				for _, w := range scc {
					comp[w] = compID
				}
				members[compID] = scc
				compID++
			}
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comp, members
}
