package rules

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Lock-site classification shared by the unguardedstats proof and the
// lockorder analyzer: recognizing mu.Lock()/mu.Unlock() calls on
// sync.Mutex / sync.RWMutex values and naming the lock instance with a
// stable fact key.
//
// Fact keys identify one lock instance within one function's dataflow:
//
//	recv.mu        a field chain rooted at the method receiver
//	g:pkgvar.mu    a chain rooted at a package-level variable
//	l:name@pos.mu  a chain rooted at a local variable (pos disambiguates)
//
// Held write locks carry a "w:" prefix, read locks "r:". Keys are only
// compared for equality, never printed in diagnostics.

type lockOp int

const (
	opNone lockOp = iota
	opLock
	opUnlock
	opRLock
	opRUnlock
)

// isMutexType reports whether t (after pointer unwrapping) is sync.Mutex
// or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// classifyLockCall recognizes a Lock/Unlock/RLock/RUnlock call on a mutex
// and returns the operation plus the mutex expression. TryLock variants
// return opNone: their acquisition is conditional, so no fact may be
// genned without branch awareness.
func classifyLockCall(pass *analysis.Pass, call *ast.CallExpr) (lockOp, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, nil
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "Unlock":
		op = opUnlock
	case "RLock":
		op = opRLock
	case "RUnlock":
		op = opRUnlock
	default:
		return opNone, nil
	}
	if !isMutexType(pass.Info.TypeOf(sel.X)) {
		return opNone, nil
	}
	return op, sel.X
}

// lockKey names the lock instance expr refers to (see the key grammar
// above). recv, when non-nil, is the enclosing method's receiver object;
// chains rooted at it become "recv."-keys so facts translate across
// methods of the same type. Expressions the keyer cannot prove stable
// (index expressions, call results) return ok=false.
func lockKey(pass *analysis.Pass, expr ast.Expr, recv types.Object) (string, bool) {
	var path []string
	e := ast.Unparen(expr)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			path = append(path, x.Sel.Name)
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		case *ast.Ident:
			obj := pass.Info.Uses[x]
			if obj == nil {
				obj = pass.Info.Defs[x]
			}
			if obj == nil {
				return "", false
			}
			var root string
			switch {
			case recv != nil && obj == recv:
				root = "recv"
			case obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope():
				root = "g:" + obj.Name()
			default:
				root = "l:" + obj.Name() + "@" + strconv.Itoa(int(obj.Pos()))
			}
			if len(path) == 0 {
				return root, true
			}
			// path was appended innermost-first; reverse into source order.
			var b strings.Builder
			b.WriteString(root)
			for i := len(path) - 1; i >= 0; i-- {
				b.WriteString(".")
				b.WriteString(path[i])
			}
			return b.String(), true
		default:
			return "", false
		}
	}
}

// lockTransfer builds a dataflow Transfer that tracks held locks: Lock
// gens "w:<key>", RLock gens "r:<key>", the unlocks kill them. Deferred
// and go'ed statements are skipped — a deferred Unlock runs at function
// exit and so never releases the lock on the paths the function body
// executes, which is exactly what makes defer mu.Unlock() a proof of
// whole-body guarding.
func lockTransfer(pass *analysis.Pass, recv types.Object) func(ast.Node, analysis.Facts) {
	return func(n ast.Node, facts analysis.Facts) {
		switch n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return
		}
		analysis.InspectShallow(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.DeferStmt); ok {
				return false
			}
			if _, ok := m.(*ast.GoStmt); ok {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			op, target := classifyLockCall(pass, call)
			if op == opNone {
				return true
			}
			key, ok := lockKey(pass, target, recv)
			if !ok {
				return true
			}
			switch op {
			case opLock:
				facts["w:"+key] = true
			case opUnlock:
				delete(facts, "w:"+key)
			case opRLock:
				facts["r:"+key] = true
			case opRUnlock:
				delete(facts, "r:"+key)
			}
			return true
		})
	}
}

// heldWriteLocks extracts the write-lock keys from a fact set, sorted for
// deterministic downstream iteration.
func heldWriteLocks(facts analysis.Facts) []string {
	var keys []string
	for k := range facts {
		if strings.HasPrefix(k, "w:") {
			keys = append(keys, strings.TrimPrefix(k, "w:"))
		}
	}
	sort.Strings(keys)
	return keys
}

// restrictToLockFacts drops every fact that is not a held-lock fact,
// returning the callsite facts a callee may inherit.
func restrictToLockFacts(facts analysis.Facts) analysis.Facts {
	out := analysis.Facts{}
	for k := range facts {
		if strings.HasPrefix(k, "w:") || strings.HasPrefix(k, "r:") {
			out[k] = true
		}
	}
	return out
}
