// Package rules implements the galiot-lint rule suite: analyzers tuned to
// this repository's bit-determinism and hot-path discipline. See DESIGN.md
// ("Static analysis") for the rationale behind each rule.
package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Nondeterminism flags sources of run-to-run variation in library code:
// math/rand (global or not — simulations must draw from repro/internal/rng
// so a single seed reproduces every experiment), wall-clock reads
// (time.Now and friends), and iteration over maps where the loop body is
// order-sensitive. It runs only on library packages (import paths
// containing an internal/ segment); commands may read the clock.
var Nondeterminism = &analysis.Analyzer{
	Name:  "nondeterminism",
	Doc:   "flags math/rand, wall-clock reads, and order-sensitive map iteration in library code",
	Match: func(path string) bool { return strings.Contains(path, "internal/") },
	Run:   runNondeterminism,
}

// wallClockFuncs are time-package functions whose results differ between
// runs. Duration arithmetic and timers constructed from constants are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

func runNondeterminism(pass *analysis.Pass) {
	// Our own deterministic generator is exempt from the rules it enables.
	if strings.HasSuffix(pass.ImportPath, "internal/rng") {
		return
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(), "import of %s in library code: use repro/internal/rng so experiments replay from a single seed", strings.Trim(imp.Path.Value, `"`))
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(pass, n); fn != nil &&
					fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
					pass.Reportf(n.Pos(), "time.%s reads the wall clock: simulation libraries must be replayable, pass timestamps in explicitly", fn.Name())
				}
			case *ast.RangeStmt:
				t := pass.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); ok && orderSensitive(pass, n) {
					pass.Reportf(n.Pos(), "order-sensitive iteration over a map: iteration order varies between runs; sort the keys first")
				}
			}
			return true
		})
	}
}

// calleeFunc resolves the called function or method, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}

// orderSensitive reports whether a range-over-map body depends on the
// visit order. The body is considered order-free only when it is pure
// commutative accumulation: integer counters (x++, x += v, x |= v, ...)
// and guarded max/min tracking. Anything with observable ordering — calls
// used as statements, appends, channel sends, returns, plain assignments
// to variables outside the loop, or floating-point accumulation (whose
// rounding depends on summation order, which breaks bit-determinism) —
// makes the loop order-sensitive.
func orderSensitive(pass *analysis.Pass, loop *ast.RangeStmt) bool {
	sensitive := false
	var inspect func(n ast.Node, inIf bool)
	inspect = func(n ast.Node, inIf bool) {
		if sensitive || n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.BlockStmt:
			for _, s := range n.List {
				inspect(s, inIf)
			}
		case *ast.IfStmt:
			inspect(n.Body, true)
			inspect(n.Else, true)
		case *ast.IncDecStmt:
			// counters are commutative
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
				token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
				// Commutative for integers; for floats the rounding of the
				// running value depends on visit order.
				for _, lhs := range n.Lhs {
					if t := pass.Info.TypeOf(lhs); t != nil && analysis.IsFloat(t) {
						sensitive = true
					}
				}
			case token.DEFINE:
				// loop-local temporaries are fine
			case token.ASSIGN:
				// Plain assignment is only order-free in the guarded
				// max/min-tracking idiom: if v > best { best = v }.
				if !inIf {
					sensitive = true
				}
			default:
				sensitive = true
			}
		case *ast.DeclStmt, *ast.BranchStmt, *ast.EmptyStmt:
			// declarations, continue/break: fine
		default:
			// calls as statements, sends, returns, nested loops with
			// effects, defers, ...: assume order matters.
			sensitive = true
		}
	}
	inspect(loop.Body, false)
	return sensitive
}
