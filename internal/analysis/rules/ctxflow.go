package rules

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Ctxflow keeps cancellation plumbed through the serving paths. The
// gateway, cloud, and farm packages run session and accept loops whose
// blocking calls (farm admission, backhaul sends, decode submissions) must
// observe the session's context so a dead connection unwinds promptly. A
// context.Background() (or TODO()) call in that code is wrong in two
// shapes, both detected on the control-flow graph:
//
//   - a context.Context is provably in scope (must-fact: parameter or an
//     earlier assignment on every path) and the code mints a fresh root
//     instead of threading it — the derived work becomes uncancellable;
//   - the call sits inside a loop (natural loops via dominator back edges,
//     so goto-formed loops count): minting per-iteration root contexts in
//     a session/accept loop detaches every iteration from session
//     teardown.
//
// A root-level context.Background() before any context exists (session
// setup, library entry points without a ctx parameter) is legitimate and
// stays silent.
var Ctxflow = &analysis.Analyzer{
	Name:  "ctxflow",
	Doc:   "session/accept loops must thread context.Context instead of minting context.Background() mid-flow",
	Match: analysis.MatchPathSuffix("internal/gateway", "internal/cloud", "internal/farm"),
	Run:   runCtxflow,
}

// ctxWork is one function body queued for analysis: function literals are
// analyzed as their own CFGs, inheriting whether a context was reachable
// where the literal occurs (closures capture it).
type ctxWork struct {
	body   *ast.BlockStmt
	hasCtx bool
}

func runCtxflow(pass *analysis.Pass) {
	var queue []ctxWork
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			queue = append(queue, ctxWork{body: fd.Body, hasCtx: funcTypeHasCtx(pass, fd.Type)})
		}
	}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		queue = append(queue, ctxflowBody(pass, w)...)
	}
}

// ctxflowBody analyzes one function body and returns the function literals
// found inside it, each tagged with the context reachability at its
// occurrence point.
func ctxflowBody(pass *analysis.Pass, w ctxWork) []ctxWork {
	cfg := analysis.NewCFG(w.body)
	transfer := func(n ast.Node, facts analysis.Facts) {
		analysis.InspectShallow(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.AssignStmt:
				for _, lhs := range m.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && isContextType(pass.Info.TypeOf(id)) {
						facts["ctx"] = true
					}
				}
			case *ast.ValueSpec:
				for _, name := range m.Names {
					if isContextType(pass.Info.TypeOf(name)) {
						facts["ctx"] = true
					}
				}
			}
			return true
		})
	}
	var entry []string
	if w.hasCtx {
		entry = []string{"ctx"}
	}
	fl := &analysis.Flow{CFG: cfg, Mode: analysis.Must, Entry: entry, Transfer: transfer}
	in := fl.Solve()
	inLoop := cfg.LoopBlocks(cfg.Dominators())

	var lits []ctxWork
	for _, b := range cfg.Blocks {
		facts := in[b.Index].Clone()
		if facts == nil {
			continue // unreachable
		}
		looped := inLoop[b.Index]
		for _, n := range b.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if lit, ok := m.(*ast.FuncLit); ok && m != n {
					lits = append(lits, ctxWork{body: lit.Body, hasCtx: facts["ctx"] || funcTypeHasCtx(pass, lit.Type)})
					return false
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := contextRootCall(pass, call)
				if !ok {
					return true
				}
				switch {
				case facts["ctx"]:
					pass.Reportf(call.Pos(), "context.%s() called with a context.Context already in scope; thread the existing ctx so this work stays cancellable", name)
				case looped:
					pass.Reportf(call.Pos(), "context.%s() minted inside a loop; hoist it before the loop or thread the session context", name)
				}
				return true
			})
			transfer(n, facts)
		}
	}
	return lits
}

// contextRootCall recognizes context.Background() / context.TODO().
func contextRootCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if fn.Name() != "Background" && fn.Name() != "TODO" {
		return "", false
	}
	return fn.Name(), true
}

// funcTypeHasCtx reports whether a signature carries a context.Context
// parameter.
func funcTypeHasCtx(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, f := range ft.Params.List {
		if isContextType(pass.Info.TypeOf(f.Type)) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
