package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// HotLoopAlloc flags per-iteration heap allocations inside loops in the
// per-sample hot paths (internal/dsp, internal/detect, internal/cancel):
// make calls, string<->[]byte/[]rune conversions, and appends to slices
// that were either declared inside the loop (a fresh allocation every
// iteration) or declared without any capacity (guaranteed re-allocation as
// the loop grows them). Preallocate with make(T, n) / make(T, 0, cap)
// outside the loop, reuse scratch buffers, or suppress with a reason when
// the allocation is provably once-per-call.
var HotLoopAlloc = &analysis.Analyzer{
	Name:  "hotloopalloc",
	Doc:   "flags make/append/string-conversion allocations inside hot-path loops",
	Match: analysis.MatchPathSuffix("internal/dsp", "internal/detect", "internal/cancel"),
	Run:   runHotLoopAlloc,
}

func runHotLoopAlloc(pass *analysis.Pass) {
	for _, file := range pass.Files {
		decls := sliceDecls(pass, file)
		// Walk with an explicit stack of enclosing loop bodies so each
		// allocation site knows whether it is inside a loop.
		var loops []ast.Node
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, n)
				ast.Inspect(loopBody(n), visit)
				loops = loops[:len(loops)-1]
				return false // children already visited with loop context
			case *ast.FuncLit:
				// A closure body does not run per iteration of the loop it
				// is declared in (it may never run, or run elsewhere).
				saved := loops
				loops = nil
				ast.Inspect(n.Body, visit)
				loops = saved
				return false
			case *ast.CallExpr:
				if len(loops) > 0 {
					checkHotCall(pass, n, decls, loops[len(loops)-1])
				}
			}
			return true
		}
		ast.Inspect(file, visit)
	}
}

func loopBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

// sliceDecls indexes every variable in the file to the expression it was
// declared with (x := expr, or var x = expr), so append sites can check
// whether their destination was preallocated with a capacity.
func sliceDecls(pass *analysis.Pass, file *ast.File) map[types.Object]ast.Expr {
	decls := make(map[types.Object]ast.Expr)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.Info.Defs[id]; obj != nil {
							decls[obj] = n.Rhs[i]
						}
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, id := range n.Names {
					if obj := pass.Info.Defs[id]; obj != nil {
						decls[obj] = n.Values[i]
					}
				}
			}
		}
		return true
	})
	return decls
}

func checkHotCall(pass *analysis.Pass, call *ast.CallExpr, decls map[types.Object]ast.Expr, loop ast.Node) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch {
		case isBuiltin(pass, fun, "make"):
			pass.Reportf(call.Pos(), "make inside a hot-path loop allocates every iteration; hoist the buffer out of the loop")
			return
		case isBuiltin(pass, fun, "append") && len(call.Args) > 0:
			checkHotAppend(pass, call, decls, loop)
			return
		}
	}
	// Type conversions that copy: string(bytes), []byte(s), []rune(s), ...
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		argT := pass.Info.TypeOf(call.Args[0])
		if argT == nil {
			return
		}
		src := argT.Underlying()
		if conversionAllocates(dst, src) {
			pass.Reportf(call.Pos(), "string conversion inside a hot-path loop copies its operand every iteration")
		}
	}
}

// conversionAllocates reports whether converting src to dst copies memory:
// slice<->string in either direction.
func conversionAllocates(dst, src types.Type) bool {
	isString := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	_, dstSlice := dst.(*types.Slice)
	_, srcSlice := src.(*types.Slice)
	return (isString(dst) && srcSlice) || (dstSlice && isString(src))
}

func isBuiltin(pass *analysis.Pass, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok
}

func checkHotAppend(pass *analysis.Pass, call *ast.CallExpr, decls map[types.Object]ast.Expr, loop ast.Node) {
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return // appends to fields/elements: assume managed by the owner
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return
	}
	if loop.Pos() <= obj.Pos() && obj.Pos() <= loop.End() {
		pass.Reportf(call.Pos(), "append to %s, declared inside the loop: allocates a fresh backing array every iteration", id.Name)
		return
	}
	decl, ok := decls[obj]
	if !ok {
		return // parameter or var without initializer: caller's business
	}
	if mk, ok := ast.Unparen(decl).(*ast.CallExpr); ok {
		if mkID, ok := ast.Unparen(mk.Fun).(*ast.Ident); ok && isBuiltin(pass, mkID, "make") {
			if len(mk.Args) >= 3 {
				return // explicit capacity
			}
			if len(mk.Args) == 2 && !isZeroExpr(pass, mk.Args[1]) {
				return // nonzero length doubles as a capacity hint
			}
			pass.Reportf(call.Pos(), "append to %s, made with no capacity, inside a hot-path loop; give make a capacity hint", id.Name)
			return
		}
	}
	if lit, ok := ast.Unparen(decl).(*ast.CompositeLit); ok && len(lit.Elts) == 0 {
		pass.Reportf(call.Pos(), "append to %s grows from an empty literal inside a hot-path loop; preallocate with make and a capacity", id.Name)
	}
}

// isZeroExpr reports whether e is a compile-time constant zero.
func isZeroExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && isZeroConst(tv.Value)
}
