package rules

import (
	"go/ast"
	"go/constant"
	"go/token"

	"repro/internal/analysis"
)

// FloatEq flags == and != between floating-point or complex operands.
// DSP results accumulate rounding, so exact comparison is almost always a
// latent bug; use dsp.ApproxEqual / dsp.ApproxEqualComplex with an explicit
// tolerance instead. Exemptions, all of which are exact by construction:
// comparison against a literal (or constant) zero — the idiomatic guard
// before division or normalization — comparisons where both operands are
// compile-time constants, and the x != x NaN probe.
var FloatEq = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "flags exact ==/!= on float and complex operands; use a tolerance",
	Run:  runFloatEq,
}

func runFloatEq(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := pass.Info.Types[be.X], pass.Info.Types[be.Y]
			if xt.Type == nil || yt.Type == nil {
				return true
			}
			if !analysis.IsFloat(xt.Type) && !analysis.IsFloat(yt.Type) {
				return true
			}
			if xt.Value != nil && yt.Value != nil { // constant-folded
				return true
			}
			if isZeroConst(xt.Value) || isZeroConst(yt.Value) {
				return true
			}
			if isNaNProbe(be) {
				return true
			}
			pass.Reportf(be.OpPos, "exact %s on floating-point operands: compare with a tolerance (dsp.ApproxEqual)", be.Op)
			return true
		})
	}
}

// isZeroConst reports whether v is a numeric constant equal to exactly 0
// (including complex 0+0i).
func isZeroConst(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float, constant.Complex:
		return constant.Sign(constant.Real(v)) == 0 && constant.Sign(constant.Imag(v)) == 0
	}
	return false
}

// isNaNProbe recognizes x != x / x == x, the standard NaN test, which is
// exact by definition.
func isNaNProbe(be *ast.BinaryExpr) bool {
	x, okx := ast.Unparen(be.X).(*ast.Ident)
	y, oky := ast.Unparen(be.Y).(*ast.Ident)
	return okx && oky && x.Name == y.Name
}
