package rules

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// ErrDrop flags dropped errors on the paths where losing one corrupts the
// pipeline or silently skews experiment byte counts:
//
//   - any call used as a bare statement (or spawned with go) whose final
//     result is an error, except a small allowlist of can't-fail writers
//     (bytes.Buffer, strings.Builder, hash.Hash) and terminal logging
//     (fmt.Print* to stdout/stderr, package log);
//   - an error explicitly discarded into _ when the callee is high-stakes:
//     the backhaul protocol (send/recv framing), io readers/writers, or
//     gateway/cloud session loops.
//
// defer f.Close() is deliberately exempt; it is the idiomatic best-effort
// cleanup and flagging it produces noise, not safety.
var ErrDrop = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded errors from backhaul, io, and pipeline calls",
	Run:  runErrDrop,
}

func runErrDrop(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkBareCall(pass, call, "")
				}
			case *ast.GoStmt:
				checkBareCall(pass, n.Call, "go ")
			case *ast.DeferStmt:
				return false // defer x.Close() et al: best-effort cleanup
			case *ast.AssignStmt:
				checkBlankedError(pass, n)
			}
			return true
		})
	}
}

// checkBareCall reports a call statement that silently drops an error
// result.
func checkBareCall(pass *analysis.Pass, call *ast.CallExpr, prefix string) {
	t := pass.Info.TypeOf(call)
	if t == nil || !lastResultIsError(t) {
		return
	}
	fn := calleeFunc(pass, call)
	if fn == nil || errDropAllowed(pass, fn, call) {
		return
	}
	pass.Reportf(call.Pos(), "%serror result of %s dropped; handle it or assign it explicitly", prefix, fn.Name())
}

// lastResultIsError reports whether the call's (possibly multi-valued)
// result ends in an error.
func lastResultIsError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// errDropAllowed exempts callees that are documented never to fail or
// whose failure is terminal-output-only.
func errDropAllowed(pass *analysis.Pass, fn *types.Func, call *ast.CallExpr) bool {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	switch pkg {
	case "log":
		return true
	case "fmt":
		// fmt.Print* write to stdout; fmt.Fprint* only when the target is
		// os.Stdout / os.Stderr or an in-memory writer that cannot fail.
		if strings.HasPrefix(fn.Name(), "Print") {
			return true
		}
		if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
			if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "os" &&
					(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
					return true
				}
			}
			if isInMemoryWriter(pass.Info.TypeOf(call.Args[0])) {
				return true
			}
		}
		return false
	case "bytes", "strings", "hash":
		// bytes.Buffer, strings.Builder and hash.Hash writes cannot fail.
		return true
	}
	return false
}

// isInMemoryWriter reports whether t is (a pointer to) bytes.Buffer or
// strings.Builder, whose Write methods are documented never to fail.
func isInMemoryWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}

// strictErrCallee reports whether discarding fn's error into _ is still
// worth flagging: backhaul framing, io readers/writers, and the
// gateway/cloud session drivers.
func strictErrCallee(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if strings.HasSuffix(path, "internal/backhaul") || path == "io" {
		return true
	}
	if strings.HasSuffix(path, "internal/gateway") || strings.HasSuffix(path, "internal/cloud") {
		switch fn.Name() {
		case "Run", "ServeConn", "Listen", "Close":
			return true
		}
	}
	return false
}

// checkBlankedError flags x, _ := f() / _ = f() when the blanked result is
// an error from a high-stakes callee.
func checkBlankedError(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(pass, call)
	if fn == nil || !strictErrCallee(fn) {
		return
	}
	results, ok := pass.Info.TypeOf(call).(*types.Tuple)
	var resultAt func(i int) types.Type
	if ok {
		resultAt = func(i int) types.Type { return results.At(i).Type() }
	} else {
		single := pass.Info.TypeOf(call)
		resultAt = func(int) types.Type { return single }
	}
	for i, lhs := range as.Lhs {
		id, isIdent := lhs.(*ast.Ident)
		if !isIdent || id.Name != "_" {
			continue
		}
		if isErrorType(resultAt(i)) {
			pass.Reportf(id.Pos(), "error from %s.%s discarded into _; this path must surface failures", fn.Pkg().Name(), fn.Name())
		}
	}
}
