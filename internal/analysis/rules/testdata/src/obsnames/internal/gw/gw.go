package gw

import "obsnames/internal/obs"

// Well-formed names: lowercase snake_case, >= 3 segments, unit suffix.
func good(r *obs.Registry) {
	_ = r.Counter("gateway_segments_shipped_total")
	_ = r.Gauge("farm_jobs_queued_count")
	_ = r.Histogram("farm_queue_wait_samples", 1024)
	_ = r.Counter("backhaul_bytes_sent_bytes")
}

func bad(r *obs.Registry) {
	_ = r.Counter("GatewaySegments")          // want "metric name \\\"GatewaySegments\\\" does not follow subsystem_name_unit"
	_ = r.Counter("gateway_total")            // want "metric name \\\"gateway_total\\\" does not follow subsystem_name_unit"
	_ = r.Gauge("gateway_shipped_segments")   // want "metric name \\\"gateway_shipped_segments\\\" does not follow subsystem_name_unit"
	_ = r.Histogram("farm__wait_samples", 64) // want "metric name \\\"farm__wait_samples\\\" does not follow subsystem_name_unit"
	_ = r.Counter("1gateway_segments_total")  // want "metric name \\\"1gateway_segments_total\\\" does not follow subsystem_name_unit"
}

// Dynamic names cannot be checked statically; the registry validates them
// at runtime instead.
func dynamic(r *obs.Registry, tech string) {
	_ = r.Counter("gateway_frames_" + tech + "_total")
}

// A same-named method on an unrelated type is not a registry registration.
type fake struct{}

func (fake) Counter(name string) int { return 0 }

func unrelated() {
	var f fake
	_ = f.Counter("NotAMetric")
}
