package gw

import "obsnames/internal/obs"

// Well-formed names: lowercase snake_case, >= 3 segments, unit suffix.
func good(r *obs.Registry) {
	_ = r.Counter("gateway_segments_shipped_total")
	_ = r.Gauge("farm_jobs_queued_count")
	_ = r.Histogram("farm_queue_wait_samples", 1024)
	_ = r.Counter("backhaul_bytes_sent_bytes")
}

func bad(r *obs.Registry) {
	_ = r.Counter("GatewaySegments")          // want "metric name \\\"GatewaySegments\\\" does not follow subsystem_name_unit"
	_ = r.Counter("gateway_total")            // want "metric name \\\"gateway_total\\\" does not follow subsystem_name_unit"
	_ = r.Gauge("gateway_shipped_segments")   // want "metric name \\\"gateway_shipped_segments\\\" does not follow subsystem_name_unit"
	_ = r.Histogram("farm__wait_samples", 64) // want "metric name \\\"farm__wait_samples\\\" does not follow subsystem_name_unit"
	_ = r.Counter("1gateway_segments_total")  // want "metric name \\\"1gateway_segments_total\\\" does not follow subsystem_name_unit"
}

// Event names: subsystem_subject_verb, verb from the closed vocabulary.
func goodEvents(j *obs.Journal) {
	j.Record("backhaul_conn_die", 1)
	j.Record("gateway_degraded_enter", 0)
	j.Record("cloud_session_reap", 3)
	j.Record("fleet_shard_attach", 2)
}

func badEvents(j *obs.Journal) {
	j.Record("BackhaulDied", 1)         // want "event name \\\"BackhaulDied\\\" does not follow subsystem_subject_verb"
	j.Record("reconnect", 1)            // want "event name \\\"reconnect\\\" does not follow subsystem_subject_verb"
	j.Record("backhaul_conn_failed", 1) // want "event name \\\"backhaul_conn_failed\\\" does not follow subsystem_subject_verb"
	j.Record("gateway__busy_reject", 1) // want "event name \\\"gateway__busy_reject\\\" does not follow subsystem_subject_verb"
}

// Health-check names: subsystem_subject_condition, condition from the
// closed vocabulary.
func goodHealth(h *obs.Health) {
	h.Register("gateway_backhaul_connected", func() obs.CheckResult { return obs.CheckResult{Healthy: true} })
	h.RegisterReadiness("cloud_farm_headroom", func() obs.CheckResult { return obs.CheckResult{Healthy: true} })
}

func badHealth(h *obs.Health) {
	h.Register("backhaul_up", nil)           // want "health check name \\\"backhaul_up\\\" does not follow subsystem_subject_condition"
	h.RegisterReadiness("FarmHeadroom", nil) // want "health check name \\\"FarmHeadroom\\\" does not follow subsystem_subject_condition"
	h.RegisterReadiness("headroom", nil)     // want "health check name \\\"headroom\\\" does not follow subsystem_subject_condition"
}

// Durability vocabulary: the wal_* metric, event and health names added
// with the crash-durable spool must lint clean, and the obvious
// misnamings must not.
func goodWAL(r *obs.Registry, j *obs.Journal, h *obs.Health) {
	_ = r.Counter("wal_records_appended_total")
	_ = r.Counter("wal_truncated_records_total")
	_ = r.Gauge("wal_live_bytes")
	j.Record("wal_window_recover", 5)
	j.Record("wal_tail_truncate", 1)
	j.Record("wal_file_compact", 1)
	h.Register("wal_dir_ready", func() obs.CheckResult { return obs.CheckResult{Healthy: true} })
	h.RegisterReadiness("wal_backlog_headroom", func() obs.CheckResult { return obs.CheckResult{Healthy: true} })
}

func badWAL(r *obs.Registry, j *obs.Journal, h *obs.Health) {
	_ = r.Counter("wal_bytes")         // want "metric name \\\"wal_bytes\\\" does not follow subsystem_name_unit"
	_ = r.Gauge("wal_backlog_size")    // want "metric name \\\"wal_backlog_size\\\" does not follow subsystem_name_unit"
	j.Record("wal_truncated", 1)       // want "event name \\\"wal_truncated\\\" does not follow subsystem_subject_verb"
	j.Record("wal_tail_corruption", 1) // want "event name \\\"wal_tail_corruption\\\" does not follow subsystem_subject_verb"
	h.Register("wal_ok", nil)          // want "health check name \\\"wal_ok\\\" does not follow subsystem_subject_condition"
}

// Tracing vocabulary: the trace_* metric and event names added with the
// distributed-tracing plane must lint clean, and the obvious misnamings
// must not.
func goodTrace(r *obs.Registry, j *obs.Journal) {
	_ = r.Counter("trace_spans_ingested_total")
	_ = r.Gauge("trace_traces_retained_count")
	_ = r.Counter("trace_traces_evicted_total")
	_ = r.Counter("trace_traces_sampled_total")
	j.Record("trace_entry_sample", 1)
	j.Record("trace_entry_evict", 1)
}

func badTrace(r *obs.Registry, j *obs.Journal) {
	_ = r.Counter("trace_spans_ingested") // want "metric name \\\"trace_spans_ingested\\\" does not follow subsystem_name_unit"
	_ = r.Gauge("trace_retained")         // want "metric name \\\"trace_retained\\\" does not follow subsystem_name_unit"
	j.Record("trace_entry_sampled", 1)    // want "event name \\\"trace_entry_sampled\\\" does not follow subsystem_subject_verb"
	j.Record("trace_entry_evicted", 1)    // want "event name \\\"trace_entry_evicted\\\" does not follow subsystem_subject_verb"
}

// Dynamic names cannot be checked statically; the registries validate them
// at runtime instead.
func dynamic(r *obs.Registry, j *obs.Journal, tech string) {
	_ = r.Counter("gateway_frames_" + tech + "_total")
	j.Record("gateway_"+tech+"_establish", 1)
}

// A same-named method on an unrelated type is not a registration.
type fake struct{}

func (fake) Counter(name string) int { return 0 }

func (fake) Record(name string, value int64) {}

func (fake) Register(name string, check func()) {}

func unrelated() {
	var f fake
	_ = f.Counter("NotAMetric")
	f.Record("NotAnEvent", 1)
	f.Register("NotACheck", nil)
}
