// Package obs is a golden-test stub of the real metrics registry: the
// obsnames rule matches any Registry type defined in a package whose
// import path ends in internal/obs.
package obs

type Counter struct{ v uint64 }

func (c *Counter) Inc() { c.v++ }

type Gauge struct{ v int64 }

type Histogram struct{ w int }

type Registry struct{}

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name string, window int) *Histogram { return &Histogram{} }
