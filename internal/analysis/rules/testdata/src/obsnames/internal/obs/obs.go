// Package obs is a golden-test stub of the real metrics registry: the
// obsnames rule matches any Registry type defined in a package whose
// import path ends in internal/obs.
package obs

type Counter struct{ v uint64 }

func (c *Counter) Inc() { c.v++ }

type Gauge struct{ v int64 }

type Histogram struct{ w int }

type Registry struct{}

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name string, window int) *Histogram { return &Histogram{} }

type Journal struct{}

func NewJournal(ringSize int) *Journal { return &Journal{} }

func (j *Journal) Record(name string, value int64) {}

type CheckResult struct {
	Healthy bool
	Detail  string
}

type Health struct{}

func NewHealth() *Health { return &Health{} }

func (h *Health) Register(name string, check func() CheckResult) {}

func (h *Health) RegisterReadiness(name string, check func() CheckResult) {}
