// Package mutexbyvalue is golden-test data for the mutexbyvalue analyzer.
package mutexbyvalue

import "sync"

// Guarded carries a lock.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// ByValue copies the lock into the parameter.
func ByValue(g Guarded) int { return g.n } // want "mutexbyvalue: parameter passes mutexbyvalue.Guarded by value"

// ByPointer is the correct form: not flagged.
func ByPointer(g *Guarded) int { return g.n }

// Snapshot copies the lock into the receiver.
func (g Guarded) Snapshot() int { return g.n } // want "mutexbyvalue: receiver passes mutexbyvalue.Guarded by value"

// Make returns the struct (and its lock) by value.
func Make() Guarded { return Guarded{} } // want "mutexbyvalue: result passes mutexbyvalue.Guarded by value"

// Copy duplicates an existing lock.
func Copy(g *Guarded) int {
	c := *g // want "mutexbyvalue: assignment copies a mutexbyvalue.Guarded"
	return c.n
}

// Each copies the lock into the range variable.
func Each(gs []Guarded) int {
	n := 0
	for _, g := range gs { // want "mutexbyvalue: range value copies a mutexbyvalue.Guarded"
		n += g.n
	}
	return n
}

// Wait copies a WaitGroup, losing its counter.
func Wait(wg sync.WaitGroup) { wg.Wait() } // want "mutexbyvalue: parameter passes sync.WaitGroup by value"

// Plain types copy freely: not flagged.
func Plain(xs []int) []int {
	out := xs
	return out
}
