// Package dsp is golden-test data for the hotloopalloc analyzer.
package dsp

// Window allocates a fresh buffer every iteration.
func Window(blocks [][]float64) [][]float64 {
	out := make([][]float64, 0, len(blocks))
	for _, b := range blocks {
		w := make([]float64, len(b)) // want "hotloopalloc: make inside a hot-path loop"
		copy(w, b)
		out = append(out, w)
	}
	return out
}

// Hoisted reuses one buffer across iterations: not flagged.
func Hoisted(blocks [][]float64) int {
	buf := make([]float64, 64)
	n := 0
	for range blocks {
		n += len(buf)
	}
	return n
}

// Names converts bytes to string once per row, copying each time.
func Names(rows [][]byte) int {
	n := 0
	for _, r := range rows {
		s := string(r) // want "hotloopalloc: string conversion inside a hot-path loop"
		n += len(s)
	}
	return n
}

// GrowEmpty grows a slice with no capacity hint.
func GrowEmpty(xs []int) []int {
	out := []int{}
	for _, x := range xs {
		out = append(out, x) // want "hotloopalloc: append to out grows from an empty literal"
	}
	return out
}

// GrowZeroMake is the make spelling of the same growth pattern.
func GrowZeroMake(xs []int) []int {
	out := make([]int, 0)
	for _, x := range xs {
		out = append(out, x) // want "hotloopalloc: append to out, made with no capacity"
	}
	return out
}

// GrowPrealloc gives make a capacity: not flagged.
func GrowPrealloc(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// PerIter declares the destination inside the loop body.
func PerIter(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		row := []int{}
		row = append(row, i) // want "hotloopalloc: append to row, declared inside the loop"
		total += len(row)
	}
	return total
}

// Closure bodies do not run per iteration of the loop declaring them.
func Closure(xs []int) []func() []byte {
	var fns []func() []byte
	for range xs {
		fns = append(fns, func() []byte { return make([]byte, 8) })
	}
	return fns
}

// Suppressed shows a justified per-call allocation.
func Suppressed(spans []int) [][]complex128 {
	out := make([][]complex128, 0, len(spans))
	for _, n := range spans {
		//lint:ignore hotloopalloc each segment escapes via the result and needs its own buffer
		seg := make([]complex128, n)
		out = append(out, seg)
	}
	return out
}
