// Package worker exercises the goleak rule: goroutines must carry a
// visible join (WaitGroup Done) or handover (channel close or send).
package worker

import "sync"

type Pool struct {
	wg   sync.WaitGroup
	jobs chan int
}

// Start's workers are joined through the WaitGroup: blessed.
func (p *Pool) Start(n int) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for range p.jobs {
			}
		}()
	}
}

// Watch hands completion over by closing done: blessed.
func Watch(stop chan struct{}) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-stop
	}()
	return done
}

// Compute hands its result over on a channel: blessed.
func Compute() chan int {
	out := make(chan int, 1)
	go func() {
		out <- 42
	}()
	return out
}

// Leak is fire-and-forget: nothing can ever wait for it.
func Leak() {
	go func() { // want "goleak: goroutine has no join or handover"
		for range make(chan int) {
		}
	}()
}

// LeakCall hides the goroutine body behind a plain call.
func LeakCall(f func()) {
	go f() // want "goleak: goroutine body is out of view"
}

// Suppressed documents why the spawn is safe and silences the rule.
func Suppressed(f func()) {
	//lint:ignore goleak f is documented to return promptly on its own
	go f()
}
