// Package sim is golden-test data for the nondeterminism analyzer.
package sim

import (
	"math/rand" // want "nondeterminism: import of math/rand"
	"sort"
	"time"
)

// Jitter draws from the global math/rand source instead of internal/rng.
func Jitter() float64 { return rand.Float64() }

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want "nondeterminism: time.Now reads the wall clock"
}

// Elapsed also reads the wall clock.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "nondeterminism: time.Since reads the wall clock"
}

// Ago is fine: duration arithmetic is deterministic.
func Ago(d time.Duration) time.Duration { return 2 * d }

// Collect is order-sensitive: the append observes map order.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m { // want "nondeterminism: order-sensitive iteration over a map"
		out = append(out, k)
	}
	return out
}

// Count is pure integer accumulation: order-free, not flagged.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// SumPower accumulates floats, whose rounding depends on visit order.
func SumPower(m map[string]float64) float64 {
	var p float64
	for _, v := range m { // want "nondeterminism: order-sensitive iteration over a map"
		p += v
	}
	return p
}

// Best uses guarded max tracking: order-free, not flagged.
func Best(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Keys collects then sorts; the suppression records why it is safe.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//lint:ignore nondeterminism keys are sorted before returning
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
