// Package floateq is golden-test data for the floateq analyzer.
package floateq

// Near compares computed floats exactly.
func Near(a, b float64) bool {
	return a == b // want "floateq: exact == on floating-point operands"
}

// Differ is the != spelling of the same bug.
func Differ(a, b float64) bool {
	return a != b // want "floateq: exact != on floating-point operands"
}

// Threshold compares against a nonzero constant.
func Threshold(x float64) bool {
	return x == 0.25 // want "floateq: exact == on floating-point operands"
}

// ComplexEq compares complex samples exactly.
func ComplexEq(a, b complex128) bool {
	return a == b // want "floateq: exact == on floating-point operands"
}

// Zero guards against division by an exact zero: not flagged.
func Zero(p float64) bool { return p == 0 }

// IsNaN is the standard NaN probe: not flagged.
func IsNaN(x float64) bool { return x != x }

const half = 0.5

// Consts fold at compile time: not flagged.
func Consts() bool { return half == 0.5 }

// Ints are exact: not flagged.
func Ints(a, b int) bool { return a == b }

// Sentinel shows a justified suppression.
func Sentinel(x float64) bool {
	//lint:ignore floateq the sentinel is only ever assigned, never computed
	return x == 12345.0
}
