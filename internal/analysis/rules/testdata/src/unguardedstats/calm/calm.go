// Package calm is the negative case for unguardedstats: no goroutine is
// ever spawned here, so single-threaded counter mutation is fine.
package calm

// Tally is a lock-free counter block.
type Tally struct{ n int }

// Bump mutates without a lock, which is fine in a serial package.
func (t *Tally) Bump() { t.n++ }
