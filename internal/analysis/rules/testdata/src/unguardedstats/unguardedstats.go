// Package unguardedstats is golden-test data for the unguardedstats
// analyzer: it spawns a goroutine, so lock-free structs whose methods
// mutate fields are flagged.
package unguardedstats

import "sync"

// Stats is a plain counter block.
type Stats struct{ Captures, Bytes int }

// Gateway carries no lock.
type Gateway struct {
	stats Stats
	last  int
}

// Process mutates fields without synchronization.
func (g *Gateway) Process(n int) {
	g.stats.Captures++  // want "unguardedstats: g.stats.Captures written without synchronization"
	g.stats.Bytes += n  // want "unguardedstats: g.stats.Bytes written without synchronization"
	g.last = n          // want "unguardedstats: g.last written without synchronization"
}

// Run makes the package concurrent.
func (g *Gateway) Run() {
	go g.Process(1)
}

// Guarded carries a mutex; the dataflow proof checks each write path.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Bump locks around its mutation: proven, not flagged.
func (s *Guarded) Bump() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// Sneak mutates the guarded field with no lock on any path: flagged.
func (s *Guarded) Sneak() {
	s.n++ // want "unguardedstats: s.n written without holding s.mu"
}

// Local mutation of non-receiver state is not flagged.
func (g *Gateway) Peek() int {
	x := 0
	x++
	return x + g.last
}

// Proven exercises the dominator-grade cases: deferred unlock, explicit
// unlock, branches, and the callers-hold-mu helper idiom.
type Proven struct {
	mu     sync.Mutex
	count  int
	closed bool
	free   int // never written under the lock: not a guarded field
}

// Add's deferred Unlock runs at exit, so the lock is held on every path
// through the body, including both branches: proven, not flagged.
func (p *Proven) Add(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > 1 {
		p.count += n
		return
	}
	p.count++
}

// Close writes after the explicit Unlock killed the fact: flagged.
func (p *Proven) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.count = 0 // want "unguardedstats: p.count written without holding p.mu"
}

// Racy locks on only one branch, so the merge point holds no must-fact.
func (p *Proven) Racy(fast bool) {
	if !fast {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	p.count++ // want "unguardedstats: p.count written without holding p.mu"
}

// bump is the callers-hold-mu helper idiom: every caller in the package
// provably holds the lock at the callsite, so the write is proven.
func (p *Proven) bump() {
	p.count++
}

// Tick calls the helper under the lock: both proven, not flagged.
func (p *Proven) Tick() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.bump()
}

// Reset writes a field no method ever locks around; with no guarded-write
// evidence the rule stays quiet (the author may synchronize externally).
func (p *Proven) Reset() {
	p.free = 0
}

// Leaky is the helper idiom gone wrong: one caller holds the lock, another
// does not, so the helper's entry facts drop and its write is flagged.
type Leaky struct {
	mu sync.Mutex
	n  int
}

func (l *Leaky) grow() {
	l.n++ // want "unguardedstats: l.n written without holding l.mu"
}

// Good holds the lock around the helper call.
func (l *Leaky) Good() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.grow()
	l.n = l.n * 2
}

// Bad calls the same helper lockless, poisoning its entry facts.
func (l *Leaky) Bad() {
	l.grow()
}
