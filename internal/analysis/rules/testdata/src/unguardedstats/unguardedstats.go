// Package unguardedstats is golden-test data for the unguardedstats
// analyzer: it spawns a goroutine, so lock-free structs whose methods
// mutate fields are flagged.
package unguardedstats

import "sync"

// Stats is a plain counter block.
type Stats struct{ Captures, Bytes int }

// Gateway carries no lock.
type Gateway struct {
	stats Stats
	last  int
}

// Process mutates fields without synchronization.
func (g *Gateway) Process(n int) {
	g.stats.Captures++  // want "unguardedstats: g.stats.Captures written without synchronization"
	g.stats.Bytes += n  // want "unguardedstats: g.stats.Bytes written without synchronization"
	g.last = n          // want "unguardedstats: g.last written without synchronization"
}

// Run makes the package concurrent.
func (g *Gateway) Run() {
	go g.Process(1)
}

// Guarded carries a mutex, so the rule trusts its discipline: not flagged.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Bump locks around its mutation.
func (s *Guarded) Bump() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// Local mutation of non-receiver state is not flagged.
func (g *Gateway) Peek() int {
	x := 0
	x++
	return x + g.last
}
