// Package errdrop is golden-test data for the errdrop analyzer.
package errdrop

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"x/internal/backhaul"
)

// Ship drops protocol errors in three ways.
func Ship(c *backhaul.Conn) {
	c.SendBye()    // want "errdrop: error result of SendBye dropped"
	go c.SendBye() // want "errdrop: go error result of SendBye dropped"
	defer c.SendBye()
}

// Blank discards a high-stakes error explicitly.
func Blank(c *backhaul.Conn) {
	_ = c.SendBye() // want "errdrop: error from backhaul.SendBye discarded into _"
}

// BlankTuple discards only the error position of a multi-value result.
func BlankTuple(c *backhaul.Conn) []byte {
	_, payload, _ := c.ReadMessage() // want "errdrop: error from backhaul.ReadMessage discarded into _"
	return payload
}

// Handled is the correct form: not flagged.
func Handled(c *backhaul.Conn) error {
	if err := c.SendBye(); err != nil {
		return err
	}
	return nil
}

// Logging shows the allowlist: terminal and in-memory sinks are exempt,
// real writers are not.
func Logging(buf *bytes.Buffer, w io.Writer) {
	fmt.Println("ok")
	fmt.Fprintf(os.Stderr, "ok\n")
	fmt.Fprintf(buf, "ok\n")
	fmt.Fprintf(w, "ok\n") // want "errdrop: error result of Fprintf dropped"
}

// Copy drops an io error.
func Copy(dst io.Writer, src io.Reader) {
	io.Copy(dst, src) // want "errdrop: error result of Copy dropped"
}

// Suppressed shows a justified discard.
func Suppressed(c *backhaul.Conn) {
	//lint:ignore errdrop best-effort goodbye on an already-failed session
	c.SendBye()
}
