// Package lockorder is golden-test data for the lockorder analyzer:
// opposite acquisition orders of the same lock pair form a cycle, helper
// calls propagate acquisitions, and consistent orders stay silent.
package lockorder

import "sync"

var muA, muB sync.Mutex

// ForwardAB and BackwardBA acquire the same pair in opposite orders: the
// classic AB-BA deadlock, reported at both closing edges.
func ForwardAB() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock() // want "lockorder: acquiring muB while holding muA is part of a lock-order cycle"
	defer muB.Unlock()
}

func BackwardBA() {
	muB.Lock()
	defer muB.Unlock()
	muA.Lock() // want "lockorder: acquiring muA while holding muB is part of a lock-order cycle"
	defer muA.Unlock()
}

// Consistent ordering never cycles: muC always before muD.
var muC, muD sync.Mutex

func FirstCD() {
	muC.Lock()
	defer muC.Unlock()
	muD.Lock()
	defer muD.Unlock()
}

func SecondCD() {
	muC.Lock()
	muD.Lock()
	muD.Unlock()
	muC.Unlock()
}

// Helper calls propagate acquisitions: TakeEF holds muE across a call to
// a helper that locks muF, while CrossFE locks the pair directly in the
// opposite order.
var muE, muF sync.Mutex

func lockF() {
	muF.Lock()
	defer muF.Unlock()
}

func TakeEF() {
	muE.Lock()
	defer muE.Unlock()
	lockF() // want "lockorder: acquiring muF while holding muE is part of a lock-order cycle"
}

func CrossFE() {
	muF.Lock()
	defer muF.Unlock()
	muE.Lock() // want "lockorder: acquiring muE while holding muF is part of a lock-order cycle"
	defer muE.Unlock()
}

// Relock is a certain self-deadlock: the lock is still held on every path
// reaching the second Lock.
var muG sync.Mutex

func Relock() {
	muG.Lock()
	defer muG.Unlock()
	muG.Lock() // want "lockorder: muG locked while already held on every path here"
}

// ReleasedThenRelocked is fine: the explicit Unlock kills the held fact.
func ReleasedThenRelocked() {
	muG.Lock()
	muG.Unlock()
	muG.Lock()
	muG.Unlock()
}

// Box.Transfer locks two instances of the same field; instance order is
// the caller's contract, not a type-level cycle: not flagged.
type Box struct {
	mu sync.Mutex
	n  int
}

func (b *Box) Transfer(o *Box, k int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	o.mu.Lock()
	defer o.mu.Unlock()
	b.n -= k
	o.n += k
}

// Spawned goroutines start with no locks held: holding muH while spawning
// a goroutine that locks muI is not an order edge (and vice versa).
var muH, muI sync.Mutex

func SpawnUnderH() {
	muH.Lock()
	defer muH.Unlock()
	go func() {
		muI.Lock()
		defer muI.Unlock()
	}()
}

func SpawnUnderI() {
	muI.Lock()
	defer muI.Unlock()
	go func() {
		muH.Lock()
		defer muH.Unlock()
	}()
}
