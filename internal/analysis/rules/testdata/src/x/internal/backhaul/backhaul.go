// Package backhaul is golden-test support for the errdrop analyzer: a
// stand-in for the real wire protocol whose import path ends in
// internal/backhaul, which marks its callees high-stakes.
package backhaul

// Conn is a fake protocol connection.
type Conn struct{}

// SendBye pretends to write a shutdown marker.
func (c *Conn) SendBye() error { return nil }

// ReadMessage pretends to read one framed message.
func (c *Conn) ReadMessage() (byte, []byte, error) { return 0, nil, nil }
