// Package gateway is golden-test data for the ctxflow analyzer: session
// and accept loops must thread context.Context instead of minting
// context.Background() mid-flow.
package gateway

import "context"

func blockingCall(ctx context.Context) error { return ctx.Err() }

// Dropped has a context in scope and mints a fresh root anyway.
func Dropped(ctx context.Context) error {
	return blockingCall(context.Background()) // want "ctxflow: context.Background\\(\\) called with a context.Context already in scope"
}

// Threaded passes the session context through: not flagged.
func Threaded(ctx context.Context) error {
	return blockingCall(ctx)
}

// SessionRoot mints the session's root context before any context exists
// — the legitimate entry-point pattern: not flagged.
func SessionRoot() error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	return blockingCall(ctx)
}

// LoopMint creates a root context per iteration of an accept-style loop;
// even with no outer context in scope the loop shape is flagged.
func LoopMint(conns []int) {
	for range conns {
		_ = blockingCall(context.TODO()) // want "ctxflow: context.TODO\\(\\) minted inside a loop"
	}
}

// LoopThreaded keeps the loop on the session context: not flagged.
func LoopThreaded(ctx context.Context, conns []int) {
	for range conns {
		_ = blockingCall(ctx)
	}
}

// DerivedLate flags the re-rooting even after the context is rebound.
func DerivedLate(ctx context.Context, seq []int) {
	for range seq {
		c := context.Background() // want "ctxflow: context.Background\\(\\) called with a context.Context already in scope"
		_ = blockingCall(c)
	}
}

// ClosureInherits: a literal spawned where a context is reachable must
// thread it too.
func ClosureInherits(ctx context.Context) func() error {
	return func() error {
		return blockingCall(context.Background()) // want "ctxflow: context.Background\\(\\) called with a context.Context already in scope"
	}
}

// ClosureFresh runs where no context is reachable: its root mint is the
// entry-point pattern, not flagged.
func ClosureFresh() func() error {
	return func() error {
		return blockingCall(context.Background())
	}
}

// BranchOnly defines a context on only one path; at the merge there is no
// must-reachable context, so the fallback root is allowed.
func BranchOnly(have bool) error {
	if have {
		ctx := context.WithoutCancel(context.Background())
		return blockingCall(ctx)
	}
	return blockingCall(context.Background())
}
