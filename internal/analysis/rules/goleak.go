package rules

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// GoLeak flags go statements in library code whose goroutine has no visible
// join or handover: no sync.WaitGroup Done, no channel close, and no channel
// send anywhere in its body. Such goroutines cannot be waited for, so
// shutdown paths (Server.Close, Farm.Close) cannot prove they finished —
// the decode farm's drain guarantee is exactly the property this rule
// protects. A goroutine spawned through a plain call (go f()) hides its
// body from the analysis and is flagged too: wrap it in a literal that
// signals completion, or suppress with a justified //lint:ignore.
var GoLeak = &analysis.Analyzer{
	Name:  "goleak",
	Doc:   "flags go statements with no join/handover signal (wg.Done, close, channel send) in library code",
	Match: func(path string) bool { return strings.Contains(path, "internal/") },
	Run:   runGoLeak,
}

func runGoLeak(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				pass.Reportf(gs.Pos(), "goroutine body is out of view: spawn a literal that signals completion (defer wg.Done() or defer close(done)) around the call")
				return true
			}
			if !signalsCompletion(lit.Body) {
				pass.Reportf(gs.Pos(), "goroutine has no join or handover: nothing can wait for it; add defer wg.Done(), defer close(done), or send its result on a channel")
			}
			return true
		})
	}
}

// signalsCompletion reports whether a goroutine body contains any
// construct another goroutine can observe to learn it finished: a channel
// close, a channel send, or a WaitGroup Done (including deferred forms).
// The check is syntactic and generous — one signal anywhere in the body
// counts — because the rule's job is to catch fire-and-forget goroutines,
// not to prove the signal is reachable on every path.
func signalsCompletion(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
