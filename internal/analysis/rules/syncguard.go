package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// MutexByValue flags sync primitives (Mutex, RWMutex, WaitGroup, Once,
// Cond, Map, Pool) copied by value: value receivers and parameters, value
// returns, and plain value copies of variables whose type contains a lock.
// A copied lock is a distinct lock — the copy guards nothing — and a
// copied WaitGroup loses its counter. This is the stdlib-only counterpart
// of vet's copylocks, kept in the suite so the lint gate catches it even
// where vet is not run.
var MutexByValue = &analysis.Analyzer{
	Name: "mutexbyvalue",
	Doc:  "flags sync primitives copied by value (receivers, params, returns, assignments)",
	Run:  runMutexByValue,
}

func runMutexByValue(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					checkFieldListCopies(pass, n.Recv, "receiver")
				}
				checkFuncTypeCopies(pass, n.Type)
			case *ast.FuncLit:
				checkFuncTypeCopies(pass, n.Type)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkValueCopy(pass, rhs)
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := pass.Info.TypeOf(n.Value); t != nil && analysis.TypeContainsSync(t) {
						pass.Reportf(n.Value.Pos(), "range value copies a %s containing a sync primitive; iterate by index or use pointers", t)
					}
				}
			}
			return true
		})
	}
}

func checkFuncTypeCopies(pass *analysis.Pass, ft *ast.FuncType) {
	checkFieldListCopies(pass, ft.Params, "parameter")
	checkFieldListCopies(pass, ft.Results, "result")
}

func checkFieldListCopies(pass *analysis.Pass, fl *ast.FieldList, what string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if analysis.TypeContainsSync(t) {
			pass.Reportf(field.Type.Pos(), "%s passes %s by value, copying its sync primitive; use a pointer", what, t)
		}
	}
}

// checkValueCopy flags x := y / x = y where y is an existing value (not a
// fresh composite literal or call result) whose type contains a lock.
func checkValueCopy(pass *analysis.Pass, rhs ast.Expr) {
	switch ast.Unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return // composite literals and call results are fresh values
	}
	t := pass.Info.TypeOf(rhs)
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if analysis.TypeContainsSync(t) {
		pass.Reportf(rhs.Pos(), "assignment copies a %s containing a sync primitive; use a pointer", t)
	}
}

// UnguardedStats prepares the ground for the concurrent gateway: in any
// package that spawns goroutines, a struct whose methods mutate its fields
// but which carries no sync primitive is a data race waiting to happen the
// moment two goroutines share it (the gateway.Stats counters were the
// motivating case). The fix is to add a mutex field and take it in the
// mutating methods; once the struct has any sync field the rule trusts the
// author and stands down (lock-discipline proofs are out of scope for a
// syntactic rule).
var UnguardedStats = &analysis.Analyzer{
	Name: "unguardedstats",
	Doc:  "flags method mutations of lock-free structs in packages that spawn goroutines",
	Run:  runUnguardedStats,
}

func runUnguardedStats(pass *analysis.Pass) {
	spawns := false
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				spawns = true
			}
			return !spawns
		})
	}
	if !spawns {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			recvField := fd.Recv.List[0]
			if len(recvField.Names) == 0 {
				continue
			}
			recvObj := pass.Info.Defs[recvField.Names[0]]
			if recvObj == nil {
				continue
			}
			st := namedStruct(recvObj.Type())
			if st == nil || structHasSyncField(st) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.IncDecStmt:
					reportUnguardedWrite(pass, n.X, recvObj)
				case *ast.AssignStmt:
					if n.Tok == token.DEFINE {
						return true
					}
					for _, lhs := range n.Lhs {
						reportUnguardedWrite(pass, lhs, recvObj)
					}
				}
				return true
			})
		}
	}
}

// namedStruct unwraps a (possibly pointer) receiver type to its struct
// underlying type.
func namedStruct(t types.Type) *types.Struct {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

func structHasSyncField(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if analysis.TypeContainsSync(ft) {
			return true
		}
		if ptr, ok := ft.Underlying().(*types.Pointer); ok && analysis.TypeContainsSync(ptr.Elem()) {
			return true
		}
	}
	return false
}

// reportUnguardedWrite flags lhs when it is a field chain rooted at the
// receiver (r.f = ..., r.stats.Count++).
func reportUnguardedWrite(pass *analysis.Pass, lhs ast.Expr, recv types.Object) {
	expr := ast.Unparen(lhs)
	fields := 0
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			fields++
			expr = ast.Unparen(e.X)
		case *ast.IndexExpr:
			expr = ast.Unparen(e.X)
		case *ast.StarExpr:
			expr = ast.Unparen(e.X)
		case *ast.Ident:
			if fields > 0 && pass.Info.Uses[e] == recv {
				pass.Reportf(lhs.Pos(), "%s written without synchronization in a package that spawns goroutines; guard %s with a sync.Mutex", exprString(lhs), recv.Type())
			}
			return
		default:
			return
		}
	}
}

// exprString renders a small lvalue expression for a message.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return "field"
}
