package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// MutexByValue flags sync primitives (Mutex, RWMutex, WaitGroup, Once,
// Cond, Map, Pool) copied by value: value receivers and parameters, value
// returns, and plain value copies of variables whose type contains a lock.
// A copied lock is a distinct lock — the copy guards nothing — and a
// copied WaitGroup loses its counter. This is the stdlib-only counterpart
// of vet's copylocks, kept in the suite so the lint gate catches it even
// where vet is not run.
var MutexByValue = &analysis.Analyzer{
	Name: "mutexbyvalue",
	Doc:  "flags sync primitives copied by value (receivers, params, returns, assignments)",
	Run:  runMutexByValue,
}

func runMutexByValue(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					checkFieldListCopies(pass, n.Recv, "receiver")
				}
				checkFuncTypeCopies(pass, n.Type)
			case *ast.FuncLit:
				checkFuncTypeCopies(pass, n.Type)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkValueCopy(pass, rhs)
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := pass.Info.TypeOf(n.Value); t != nil && analysis.TypeContainsSync(t) {
						pass.Reportf(n.Value.Pos(), "range value copies a %s containing a sync primitive; iterate by index or use pointers", t)
					}
				}
			}
			return true
		})
	}
}

func checkFuncTypeCopies(pass *analysis.Pass, ft *ast.FuncType) {
	checkFieldListCopies(pass, ft.Params, "parameter")
	checkFieldListCopies(pass, ft.Results, "result")
}

func checkFieldListCopies(pass *analysis.Pass, fl *ast.FieldList, what string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if analysis.TypeContainsSync(t) {
			pass.Reportf(field.Type.Pos(), "%s passes %s by value, copying its sync primitive; use a pointer", what, t)
		}
	}
}

// checkValueCopy flags x := y / x = y where y is an existing value (not a
// fresh composite literal or call result) whose type contains a lock.
func checkValueCopy(pass *analysis.Pass, rhs ast.Expr) {
	switch ast.Unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return // composite literals and call results are fresh values
	}
	t := pass.Info.TypeOf(rhs)
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if analysis.TypeContainsSync(t) {
		pass.Reportf(rhs.Pos(), "assignment copies a %s containing a sync primitive; use a pointer", t)
	}
}

// UnguardedStats guards the concurrency-heavy structs two ways. A struct
// with no sync field at all, in a package that spawns goroutines, is
// flagged on every method mutation (the gateway.Stats counters were the
// motivating case) — the fix is to add a mutex. A struct that carries a
// sync.Mutex or sync.RWMutex field directly gets the stronger treatment:
// each method body is compiled to a control-flow graph and a must-hold
// lock dataflow proves, per mutation, that the lock is actually held on
// every path reaching the write. Deferred Unlocks keep the fact (they run
// at exit), explicit Unlocks kill it, and unexported helpers inherit the
// locks every intra-package caller provably holds (the "callers hold mu"
// idiom), so farm.pop-style helpers need no annotation. A field counts as
// guarded once any method writes it under a lock; later writes of the same
// field without that lock are reported instead of trusted.
var UnguardedStats = &analysis.Analyzer{
	Name: "unguardedstats",
	Doc:  "proves guarded-field mutations hold their mutex (CFG dataflow); flags mutations of lock-free structs in goroutine-spawning packages",
	Run:  runUnguardedStats,
}

func runUnguardedStats(pass *analysis.Pass) {
	spawns := false
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				spawns = true
			}
			return !spawns
		})
	}

	// Pass 1: group methods by receiver type. Structs with a direct mutex
	// field go to the dataflow proof; structs with some other sync field
	// (including pointers to lock-bearing types) are trusted as before;
	// lock-free structs fall through to the legacy heuristic.
	groups := make(map[*types.Named]*lockedType)
	var order []*types.Named // deterministic group iteration
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			recvField := fd.Recv.List[0]
			if len(recvField.Names) == 0 {
				continue
			}
			recvObj := pass.Info.Defs[recvField.Names[0]]
			if recvObj == nil {
				continue
			}
			named := namedRecvType(recvObj.Type())
			st := namedStruct(recvObj.Type())
			if st == nil || named == nil {
				continue
			}
			if mutexes := directMutexFields(st); len(mutexes) > 0 {
				g := groups[named]
				if g == nil {
					g = &lockedType{named: named, mutexes: mutexes}
					groups[named] = g
					order = append(order, named)
				}
				fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
				g.methods = append(g.methods, &lockedMethod{fd: fd, recv: recvObj, fn: fn})
				continue
			}
			if structHasSyncField(st) {
				continue // trusted: synchronized some other way
			}
			if spawns {
				legacyUnguardedWalk(pass, fd, recvObj)
			}
		}
	}
	for _, named := range order {
		proveLockGuards(pass, groups[named])
	}
}

// legacyUnguardedWalk is the original heuristic for lock-free structs.
func legacyUnguardedWalk(pass *analysis.Pass, fd *ast.FuncDecl, recvObj types.Object) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IncDecStmt:
			reportUnguardedWrite(pass, n.X, recvObj)
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				reportUnguardedWrite(pass, lhs, recvObj)
			}
		}
		return true
	})
}

// lockedMethod is one method of a mutex-bearing struct under proof.
type lockedMethod struct {
	fd    *ast.FuncDecl
	recv  types.Object
	fn    *types.Func
	cfg   *analysis.CFG
	entry analysis.Facts // locks provably held on entry (helper idiom)
}

// lockedType collects the methods of one mutex-bearing named struct.
type lockedType struct {
	named   *types.Named
	mutexes map[string]bool // direct mutex field names
	methods []*lockedMethod
}

// fieldWrite is one receiver-rooted mutation with the write locks held
// when control reaches it.
type fieldWrite struct {
	m     *lockedMethod
	lhs   ast.Expr
	field string
	held  []string // sorted write-lock keys
}

// proveLockGuards runs the per-type lock-guard proof: solve each method's
// must-hold lock dataflow, iterate helper entry facts to a fixed point,
// infer which fields are lock-guarded, and report guarded-field writes on
// paths where no guarding lock is provably held.
func proveLockGuards(pass *analysis.Pass, lt *lockedType) {
	full := analysis.Facts{}
	//lint:ignore nondeterminism building the full fact set; insertion order is irrelevant
	for f := range lt.mutexes {
		full["w:recv."+f] = true
		full["r:recv."+f] = true
	}
	for _, m := range lt.methods {
		m.cfg = analysis.NewCFG(m.fd.Body)
		if m.fd.Name.IsExported() {
			m.entry = analysis.Facts{} // callable from anywhere
		} else {
			m.entry = full.Clone() // optimistic; the fixpoint only shrinks it
		}
	}

	// Count every call of each unexported method anywhere in the package —
	// including inside function literals and plain functions, which the
	// per-method replay below cannot translate. If the replay accounts for
	// fewer callsites than exist, some caller's locks are unknown and the
	// helper's entry facts drop to nothing.
	totalCalls := make(map[*types.Func]int)
	ours := make(map[*types.Func]*lockedMethod)
	for _, m := range lt.methods {
		if m.fn != nil && !m.fd.Name.IsExported() {
			ours[m.fn] = m
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(pass, call); fn != nil {
				if _, tracked := ours[fn]; tracked {
					totalCalls[fn]++
				}
			}
			return true
		})
	}

	for changed := true; changed; {
		changed = false
		contrib := make(map[*types.Func][]analysis.Facts)
		seen := make(map[*types.Func]int)
		for _, m := range lt.methods {
			transfer := lockTransfer(pass, m.recv)
			fl := &analysis.Flow{CFG: m.cfg, Mode: analysis.Must, Entry: factKeys(m.entry), Transfer: transfer}
			in := fl.Solve()
			replayBlocks(m.cfg, in, transfer, func(n ast.Node, facts analysis.Facts) {
				analysis.InspectShallow(n, func(x ast.Node) bool {
					call, ok := x.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeFunc(pass, call)
					target, tracked := ours[callee]
					if !tracked || !isRecvCall(pass, call, m.recv) {
						return true
					}
					contrib[target.fn] = append(contrib[target.fn], restrictToLockFacts(facts))
					seen[target.fn]++
					return true
				})
			})
		}
		for _, m := range lt.methods {
			if m.fd.Name.IsExported() || m.fn == nil {
				continue
			}
			sites := contrib[m.fn]
			var entry analysis.Facts
			if totalCalls[m.fn] == 0 || seen[m.fn] < totalCalls[m.fn] {
				entry = analysis.Facts{} // uncalled, or called from untrackable contexts
			} else {
				entry = intersectFacts(sites)
			}
			if !factsEqual(entry, m.entry) {
				m.entry = entry
				changed = true
			}
		}
	}

	// Final pass: collect every receiver-rooted write with the locks held
	// there, infer the guarded fields, and report the unproven writes.
	var writes []fieldWrite
	for _, m := range lt.methods {
		transfer := lockTransfer(pass, m.recv)
		fl := &analysis.Flow{CFG: m.cfg, Mode: analysis.Must, Entry: factKeys(m.entry), Transfer: transfer}
		in := fl.Solve()
		replayBlocks(m.cfg, in, transfer, func(n ast.Node, facts analysis.Facts) {
			record := func(lhs ast.Expr) {
				field, ok := recvFieldWrite(pass, lhs, m.recv)
				if !ok || lt.mutexes[field] {
					return
				}
				writes = append(writes, fieldWrite{m: m, lhs: lhs, field: field, held: heldWriteLocks(facts)})
			}
			switch n := n.(type) {
			case *ast.IncDecStmt:
				record(n.X)
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE {
					for _, lhs := range n.Lhs {
						record(lhs)
					}
				}
			}
		})
	}

	guards := make(map[string]map[string]bool) // field -> guarding lock keys
	for _, w := range writes {
		for _, k := range w.held {
			if guards[w.field] == nil {
				guards[w.field] = make(map[string]bool)
			}
			guards[w.field][k] = true
		}
	}
	for _, w := range writes {
		g := guards[w.field]
		if len(g) == 0 {
			continue // never written under a lock anywhere: not a guarded field
		}
		held := false
		for _, k := range w.held {
			if g[k] {
				held = true
				break
			}
		}
		if held {
			continue
		}
		lock := guardDisplay(g, w.m)
		pass.Reportf(w.lhs.Pos(), "%s written without holding %s; the lock guards this field at its other write sites", exprString(w.lhs), lock)
	}
}

// replayBlocks re-executes the solved dataflow over each reachable block,
// calling visit with the facts in force just before every node.
func replayBlocks(cfg *analysis.CFG, in []analysis.Facts, transfer func(ast.Node, analysis.Facts), visit func(ast.Node, analysis.Facts)) {
	for _, b := range cfg.Blocks {
		facts := in[b.Index].Clone()
		if facts == nil {
			continue // unreachable
		}
		for _, n := range b.Nodes {
			visit(n, facts)
			transfer(n, facts)
		}
	}
}

// isRecvCall reports whether call is recv.m(...) — a method call whose
// base expression is exactly the enclosing method's receiver, making the
// caller's recv.* lock facts valid for the callee.
func isRecvCall(pass *analysis.Pass, call *ast.CallExpr, recv types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base := ast.Unparen(sel.X)
	if star, ok := base.(*ast.StarExpr); ok {
		base = ast.Unparen(star.X)
	}
	id, ok := base.(*ast.Ident)
	return ok && pass.Info.Uses[id] == recv
}

// recvFieldWrite resolves lhs to the top-level receiver field it mutates
// (r.stats.n++ mutates "stats"); ok is false for non-receiver targets.
func recvFieldWrite(pass *analysis.Pass, lhs ast.Expr, recv types.Object) (string, bool) {
	expr := ast.Unparen(lhs)
	field := ""
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			field = e.Sel.Name
			expr = ast.Unparen(e.X)
		case *ast.IndexExpr:
			expr = ast.Unparen(e.X)
		case *ast.StarExpr:
			expr = ast.Unparen(e.X)
		case *ast.Ident:
			if field != "" && pass.Info.Uses[e] == recv {
				return field, true
			}
			return "", false
		default:
			return "", false
		}
	}
}

// factKeys flattens a fact set into the sorted key list Flow.Entry wants.
func factKeys(f analysis.Facts) []string {
	var keys []string
	//lint:ignore nondeterminism the collected keys are sorted before use
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// intersectFacts intersects callsite fact sets; no sites means no facts.
func intersectFacts(sites []analysis.Facts) analysis.Facts {
	if len(sites) == 0 {
		return analysis.Facts{}
	}
	acc := sites[0].Clone()
	for _, s := range sites[1:] {
		//lint:ignore nondeterminism set intersection is commutative, visit order cannot change the result
		for k := range acc {
			if !s[k] {
				delete(acc, k)
			}
		}
	}
	return acc
}

func factsEqual(a, b analysis.Facts) bool {
	return maps.Equal(a, b)
}

// guardDisplay renders a field's guarding lock set for a diagnostic, using
// the reporting method's receiver name: {recv.mu} becomes "s.mu".
func guardDisplay(g map[string]bool, m *lockedMethod) string {
	var keys []string
	//lint:ignore nondeterminism the collected keys are sorted before use
	for k := range g {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	recvName := "recv"
	if names := m.fd.Recv.List[0].Names; len(names) > 0 {
		recvName = names[0].Name
	}
	for i, k := range keys {
		switch {
		case k == "recv":
			keys[i] = recvName
		case strings.HasPrefix(k, "recv."):
			keys[i] = recvName + "." + strings.TrimPrefix(k, "recv.")
		case strings.HasPrefix(k, "g:"):
			keys[i] = strings.TrimPrefix(k, "g:")
		case strings.HasPrefix(k, "l:"):
			s := strings.TrimPrefix(k, "l:")
			if at := strings.Index(s, "@"); at >= 0 {
				rest := ""
				if dot := strings.Index(s, "."); dot > at {
					rest = s[dot:]
				}
				s = s[:at] + rest
			}
			keys[i] = s
		}
	}
	return strings.Join(keys, " or ")
}

// namedRecvType unwraps a (possibly pointer) receiver type to its named
// type.
func namedRecvType(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// directMutexFields lists the struct's own sync.Mutex / sync.RWMutex
// fields (including *Mutex pointers) by name. Embedded mutexes promote
// their methods onto the struct; the keyer cannot name those lock sites,
// so embedding is not treated as a direct lock.
func directMutexFields(st *types.Struct) map[string]bool {
	var fields map[string]bool
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() || !isMutexType(f.Type()) {
			continue
		}
		if fields == nil {
			fields = make(map[string]bool)
		}
		fields[f.Name()] = true
	}
	return fields
}

// namedStruct unwraps a (possibly pointer) receiver type to its struct
// underlying type.
func namedStruct(t types.Type) *types.Struct {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

func structHasSyncField(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if analysis.TypeContainsSync(ft) {
			return true
		}
		if ptr, ok := ft.Underlying().(*types.Pointer); ok && analysis.TypeContainsSync(ptr.Elem()) {
			return true
		}
	}
	return false
}

// reportUnguardedWrite flags lhs when it is a field chain rooted at the
// receiver (r.f = ..., r.stats.Count++).
func reportUnguardedWrite(pass *analysis.Pass, lhs ast.Expr, recv types.Object) {
	expr := ast.Unparen(lhs)
	fields := 0
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			fields++
			expr = ast.Unparen(e.X)
		case *ast.IndexExpr:
			expr = ast.Unparen(e.X)
		case *ast.StarExpr:
			expr = ast.Unparen(e.X)
		case *ast.Ident:
			if fields > 0 && pass.Info.Uses[e] == recv {
				pass.Reportf(lhs.Pos(), "%s written without synchronization in a package that spawns goroutines; guard %s with a sync.Mutex", exprString(lhs), recv.Type())
			}
			return
		default:
			return
		}
	}
}

// exprString renders a small lvalue expression for a message.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return "field"
}
