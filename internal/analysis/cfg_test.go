package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// The engine tests drive the CFG, dominator, and dataflow passes with a
// tiny marker language embedded in parsed Go bodies: gen("x") introduces
// fact x, kill("x") removes it, and ask("name") records the facts in force
// at that point. No type information is needed — the builder works on bare
// syntax.

func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// markerCall decodes gen/kill/ask marker calls.
func markerCall(m ast.Node) (verb, name string, ok bool) {
	call, isCall := m.(*ast.CallExpr)
	if !isCall || len(call.Args) != 1 {
		return "", "", false
	}
	id, isIdent := call.Fun.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	lit, isLit := call.Args[0].(*ast.BasicLit)
	if !isLit {
		return "", "", false
	}
	return id.Name, strings.Trim(lit.Value, `"`), true
}

func markerTransfer(n ast.Node, facts Facts) {
	InspectShallow(n, func(m ast.Node) bool {
		verb, name, ok := markerCall(m)
		if !ok {
			return true
		}
		switch verb {
		case "gen":
			facts[name] = true
		case "kill":
			delete(facts, name)
		}
		return true
	})
}

// solveAsks builds the CFG for body, runs the marker dataflow problem, and
// returns the facts observed at each ask("name") site. An ask in an
// unreachable block maps to nil.
func solveAsks(t *testing.T, body string, mode Mode, entry []string) map[string]Facts {
	t.Helper()
	cfg := NewCFG(parseBody(t, body))
	fl := &Flow{CFG: cfg, Mode: mode, Entry: entry, Transfer: markerTransfer}
	in := fl.Solve()

	asks := make(map[string]Facts)
	for _, b := range cfg.Blocks {
		f := in[b.Index].Clone()
		for _, n := range b.Nodes {
			InspectShallow(n, func(m ast.Node) bool {
				verb, name, ok := markerCall(m)
				if !ok {
					return true
				}
				switch verb {
				case "gen":
					if f != nil {
						f[name] = true
					}
				case "kill":
					if f != nil {
						delete(f, name)
					}
				case "ask":
					asks[name] = f.Clone()
				}
				return true
			})
		}
	}
	return asks
}

func wantFact(t *testing.T, asks map[string]Facts, ask, fact string, want bool) {
	t.Helper()
	f, ok := asks[ask]
	if !ok {
		t.Fatalf("ask %q not seen", ask)
	}
	if f[fact] != want {
		t.Errorf("at ask %q: fact %q = %v, want %v (facts %v)", ask, fact, f[fact], want, f)
	}
}

func wantUnreachable(t *testing.T, asks map[string]Facts, ask string) {
	t.Helper()
	f, ok := asks[ask]
	if !ok {
		t.Fatalf("ask %q not seen", ask)
	}
	if f != nil {
		t.Errorf("ask %q expected unreachable (nil facts), got %v", ask, f)
	}
}

func TestStraightLineMust(t *testing.T) {
	asks := solveAsks(t, `
		ask("before")
		gen("a")
		ask("after")
		kill("a")
		ask("end")
	`, Must, nil)
	wantFact(t, asks, "before", "a", false)
	wantFact(t, asks, "after", "a", true)
	wantFact(t, asks, "end", "a", false)
}

func TestEntryFacts(t *testing.T) {
	asks := solveAsks(t, `ask("here")`, Must, []string{"held"})
	wantFact(t, asks, "here", "held", true)
}

func TestIfOneBranchMustVsMay(t *testing.T) {
	body := `
		if c {
			gen("a")
			ask("then")
		}
		ask("merge")
	`
	must := solveAsks(t, body, Must, nil)
	wantFact(t, must, "then", "a", true)
	wantFact(t, must, "merge", "a", false) // else path lacks it

	may := solveAsks(t, body, May, nil)
	wantFact(t, may, "merge", "a", true) // some path has it
}

func TestIfBothBranchesMust(t *testing.T) {
	asks := solveAsks(t, `
		if c {
			gen("a")
		} else {
			gen("a")
		}
		ask("merge")
	`, Must, nil)
	wantFact(t, asks, "merge", "a", true)
}

func TestIfKillInOneBranch(t *testing.T) {
	asks := solveAsks(t, `
		gen("a")
		if c {
			kill("a")
		}
		ask("merge")
	`, Must, nil)
	wantFact(t, asks, "merge", "a", false)
}

func TestReturnPrunesPath(t *testing.T) {
	// The no-lock path returns early, so the fact must-holds at the ask.
	asks := solveAsks(t, `
		if c {
			gen("a")
		} else {
			return
		}
		ask("merge")
	`, Must, nil)
	wantFact(t, asks, "merge", "a", true)
}

func TestPanicPrunesPath(t *testing.T) {
	asks := solveAsks(t, `
		if c {
			panic("boom")
		} else {
			gen("a")
		}
		ask("merge")
		if d {
			panic("again")
			ask("dead")
		}
	`, Must, nil)
	wantFact(t, asks, "merge", "a", true)
	wantUnreachable(t, asks, "dead")
}

func TestUnreachableAfterReturn(t *testing.T) {
	asks := solveAsks(t, `
		return
		ask("dead")
	`, Must, nil)
	wantUnreachable(t, asks, "dead")
}

func TestForLoopMustAndMay(t *testing.T) {
	// A conditional loop may run zero times: facts genned inside never
	// must-hold after it, but may-hold.
	body := `
		for i := 0; i < n; i++ {
			ask("body")
			gen("a")
		}
		ask("exit")
	`
	must := solveAsks(t, body, Must, nil)
	wantFact(t, must, "body", "a", false) // first iteration enters without it
	wantFact(t, must, "exit", "a", false)

	may := solveAsks(t, body, May, nil)
	wantFact(t, may, "exit", "a", true)
}

func TestLoopKillsFactFromBefore(t *testing.T) {
	asks := solveAsks(t, `
		gen("a")
		for i := 0; i < n; i++ {
			kill("a")
		}
		ask("exit")
	`, Must, nil)
	wantFact(t, asks, "exit", "a", false)
}

func TestLoopPreservesUntouchedFact(t *testing.T) {
	asks := solveAsks(t, `
		gen("a")
		for i := 0; i < n; i++ {
			use(i)
			ask("body")
		}
		ask("exit")
	`, Must, nil)
	wantFact(t, asks, "body", "a", true)
	wantFact(t, asks, "exit", "a", true)
}

func TestInfiniteLoopWithBreak(t *testing.T) {
	// for{} has no exit edge from the head; only the break reaches the
	// exit, carrying the genned fact.
	asks := solveAsks(t, `
		for {
			gen("a")
			if c {
				break
			}
			kill("a")
		}
		ask("exit")
	`, Must, nil)
	wantFact(t, asks, "exit", "a", true)
}

func TestContinueSkipsGen(t *testing.T) {
	asks := solveAsks(t, `
		for i := 0; i < n; i++ {
			if c {
				continue
			}
			gen("a")
			ask("late")
		}
	`, Must, nil)
	// The continue path bypasses gen, so at loop bottom the fact is not
	// must-held — but after the unconditional gen it is.
	wantFact(t, asks, "late", "a", true)
}

func TestRangeLoop(t *testing.T) {
	body := `
		for _, v := range xs {
			gen("a")
			use(v)
		}
		ask("exit")
	`
	must := solveAsks(t, body, Must, nil)
	wantFact(t, must, "exit", "a", false)
	may := solveAsks(t, body, May, nil)
	wantFact(t, may, "exit", "a", true)
}

func TestLabeledBreak(t *testing.T) {
	asks := solveAsks(t, `
		gen("a")
	outer:
		for {
			for {
				kill("a")
				gen("b")
				break outer
			}
		}
		ask("exit")
	`, Must, nil)
	wantFact(t, asks, "exit", "a", false)
	wantFact(t, asks, "exit", "b", true)
}

func TestSwitchMust(t *testing.T) {
	body := `
		switch v {
		case 1:
			gen("a")
		case 2:
			gen("a")
		}
		ask("merge")
	`
	// No default: the fall-past path lacks the fact.
	must := solveAsks(t, body, Must, nil)
	wantFact(t, must, "merge", "a", false)

	withDefault := solveAsks(t, `
		switch v {
		case 1:
			gen("a")
		default:
			gen("a")
		}
		ask("merge")
	`, Must, nil)
	wantFact(t, withDefault, "merge", "a", true)
}

func TestSwitchFallthrough(t *testing.T) {
	asks := solveAsks(t, `
		switch v {
		case 1:
			gen("a")
			fallthrough
		case 2:
			ask("second")
		default:
		}
	`, May, nil)
	wantFact(t, asks, "second", "a", true)
}

func TestTypeSwitch(t *testing.T) {
	asks := solveAsks(t, `
		switch v.(type) {
		case int:
			gen("a")
		default:
			gen("a")
		}
		ask("merge")
	`, Must, nil)
	wantFact(t, asks, "merge", "a", true)
}

func TestSelect(t *testing.T) {
	body := `
		select {
		case <-ch1:
			gen("a")
		case <-ch2:
		}
		ask("merge")
	`
	must := solveAsks(t, body, Must, nil)
	wantFact(t, must, "merge", "a", false)
	may := solveAsks(t, body, May, nil)
	wantFact(t, may, "merge", "a", true)
}

func TestFuncLitBodyIsOpaque(t *testing.T) {
	// gen inside a function literal runs in another frame; it must not
	// leak into this function's facts.
	asks := solveAsks(t, `
		f := func() {
			gen("a")
		}
		use(f)
		ask("after")
	`, May, nil)
	wantFact(t, asks, "after", "a", false)
}

// askBlock finds the block containing ask(name).
func askBlock(t *testing.T, cfg *CFG, name string) *Block {
	t.Helper()
	for _, b := range cfg.Blocks {
		found := false
		for _, n := range b.Nodes {
			InspectShallow(n, func(m ast.Node) bool {
				if verb, got, ok := markerCall(m); ok && verb == "ask" && got == name {
					found = true
				}
				return true
			})
		}
		if found {
			return b
		}
	}
	t.Fatalf("ask %q not found in any block", name)
	return nil
}

func TestDominators(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		ask("entry")
		if c {
			ask("then")
		} else {
			ask("else")
		}
		ask("merge")
	`))
	idom := cfg.Dominators()
	entry := askBlock(t, cfg, "entry").Index
	then := askBlock(t, cfg, "then").Index
	els := askBlock(t, cfg, "else").Index
	merge := askBlock(t, cfg, "merge").Index

	if !Dominates(idom, entry, then) || !Dominates(idom, entry, els) || !Dominates(idom, entry, merge) {
		t.Errorf("entry should dominate all blocks")
	}
	if Dominates(idom, then, merge) {
		t.Errorf("then branch must not dominate the merge (else path bypasses it)")
	}
	if Dominates(idom, then, els) || Dominates(idom, els, then) {
		t.Errorf("sibling branches must not dominate each other")
	}
	if !Dominates(idom, merge, merge) {
		t.Errorf("a block dominates itself")
	}
}

func TestDominatorsLoop(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		ask("pre")
		for i := 0; i < n; i++ {
			ask("body")
		}
		ask("post")
	`))
	idom := cfg.Dominators()
	pre := askBlock(t, cfg, "pre").Index
	body := askBlock(t, cfg, "body").Index
	post := askBlock(t, cfg, "post").Index
	if !Dominates(idom, pre, body) || !Dominates(idom, pre, post) {
		t.Errorf("code before the loop should dominate body and exit")
	}
	if Dominates(idom, body, post) {
		t.Errorf("zero-iteration path means the body must not dominate the exit")
	}
}

func TestLoopBlocks(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		ask("pre")
		for i := 0; i < n; i++ {
			ask("body")
			if c {
				ask("nested")
			}
		}
		ask("post")
	`))
	inLoop := cfg.LoopBlocks(cfg.Dominators())
	if inLoop[askBlock(t, cfg, "pre").Index] {
		t.Errorf("pre-loop block wrongly marked in-loop")
	}
	if !inLoop[askBlock(t, cfg, "body").Index] {
		t.Errorf("loop body not marked in-loop")
	}
	if !inLoop[askBlock(t, cfg, "nested").Index] {
		t.Errorf("branch inside loop body not marked in-loop")
	}
	if inLoop[askBlock(t, cfg, "post").Index] {
		t.Errorf("post-loop block wrongly marked in-loop")
	}
}

func TestLoopBlocksTwoLoops(t *testing.T) {
	// Two sequential loops: each back edge must get its own walk, or the
	// second loop's body is missed.
	cfg := NewCFG(parseBody(t, `
		for i := 0; i < n; i++ {
			ask("first")
		}
		for j := 0; j < n; j++ {
			ask("second")
		}
		ask("after")
	`))
	inLoop := cfg.LoopBlocks(cfg.Dominators())
	if !inLoop[askBlock(t, cfg, "first").Index] {
		t.Errorf("first loop body not marked in-loop")
	}
	if !inLoop[askBlock(t, cfg, "second").Index] {
		t.Errorf("second loop body not marked in-loop")
	}
	if inLoop[askBlock(t, cfg, "after").Index] {
		t.Errorf("block after both loops wrongly marked in-loop")
	}
}

func TestGotoLoopDetected(t *testing.T) {
	// A goto-formed loop has no for statement; only the dominator-based
	// back-edge test finds it.
	cfg := NewCFG(parseBody(t, `
	again:
		ask("body")
		if c {
			goto again
		}
		ask("after")
	`))
	inLoop := cfg.LoopBlocks(cfg.Dominators())
	if !inLoop[askBlock(t, cfg, "body").Index] {
		t.Errorf("goto-formed loop body not marked in-loop")
	}
	if inLoop[askBlock(t, cfg, "after").Index] {
		t.Errorf("block after goto loop wrongly marked in-loop")
	}
}

func TestGotoFacts(t *testing.T) {
	asks := solveAsks(t, `
		gen("a")
	again:
		ask("head")
		kill("a")
		if c {
			goto again
		}
	`, Must, nil)
	// The back edge re-enters without the fact.
	wantFact(t, asks, "head", "a", false)
}
