package analysis

// Dominator-tree computation over a CFG, using the Cooper–Harvey–Kennedy
// iterative algorithm ("A Simple, Fast Dominance Algorithm"). Block a
// dominates block b when every path from the entry to b passes through a;
// the lock-guard rule uses this to prove a Lock site governs a mutation
// site, and the context rule uses dominator-identified back edges to find
// loops (including goto loops a syntactic walk would miss).

// Dominators returns the immediate dominator of every block, indexed by
// Block.Index. The entry block and blocks unreachable from it have idom -1.
func (c *CFG) Dominators() []int {
	n := len(c.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	if n == 0 {
		return idom
	}

	// Postorder numbering of the reachable subgraph.
	post := make([]int, n) // block index -> postorder number, -1 unreachable
	for i := range post {
		post[i] = -1
	}
	var order []int // block indices in postorder
	seen := make([]bool, n)
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post[b.Index] = len(order)
		order = append(order, b.Index)
	}
	dfs(c.Blocks[0])

	preds := c.Preds()
	entry := c.Blocks[0].Index
	idom[entry] = entry

	intersect := func(a, b int) int {
		for a != b {
			for post[a] < post[b] {
				a = idom[a]
			}
			for post[b] < post[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		// Reverse postorder, skipping the entry.
		for i := len(order) - 1; i >= 0; i-- {
			b := order[i]
			if b == entry {
				continue
			}
			newIdom := -1
			for _, p := range preds[b] {
				if post[p.Index] < 0 || idom[p.Index] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p.Index
				} else {
					newIdom = intersect(newIdom, p.Index)
				}
			}
			if newIdom >= 0 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[entry] = -1
	return idom
}

// Dominates reports whether block a dominates block b (a block dominates
// itself), given the idom array from Dominators. Unreachable blocks are
// dominated by nothing but themselves.
func Dominates(idom []int, a, b int) bool {
	for {
		if a == b {
			return true
		}
		if b < 0 || idom[b] < 0 {
			return false
		}
		b = idom[b]
	}
}

// LoopBlocks reports, for every block, whether it lies inside a natural
// loop: a back edge is an edge n→h whose target h dominates its source n,
// and the loop body is h plus every block that reaches n without passing
// through h.
func (c *CFG) LoopBlocks(idom []int) []bool {
	inLoop := make([]bool, len(c.Blocks))
	preds := c.Preds()
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			if !Dominates(idom, s.Index, b.Index) {
				continue
			}
			// Back edge b -> s: the loop is s plus every block reaching b
			// without passing through s. Each back edge gets its own visited
			// set — sharing one across loops would truncate the second walk.
			h := s.Index
			visited := make([]bool, len(c.Blocks))
			visited[h] = true
			inLoop[h] = true
			stack := []int{b.Index}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if visited[x] {
					continue
				}
				visited[x] = true
				inLoop[x] = true
				for _, p := range preds[x] {
					stack = append(stack, p.Index)
				}
			}
		}
	}
	return inLoop
}
