package analysis

import (
	"go/token"
	"strings"
)

// Suppression syntax: a comment of the form
//
//	//lint:ignore <rule> <reason>
//
// suppresses findings of <rule> on the same line as the comment and on the
// line immediately following it (so it can sit either at the end of the
// offending line or on its own line above). The reason is mandatory; an
// ignore directive without one is itself reported as a bad-directive
// finding so silent suppressions cannot accumulate.

// Directive is one well-formed //lint:ignore comment found in a package.
// RunAudit reports directives that suppressed nothing as stale.
type Directive struct {
	Rule string         `json:"rule"`
	Pos  token.Position `json:"pos"`

	used bool
}

type suppressions struct {
	// byLine maps filename -> line -> rule name -> directive.
	byLine map[string]map[int]map[string]*Directive
	list   []*Directive
	bad    []Diagnostic
}

func collectSuppressions(pkg *Package) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int]map[string]*Directive)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					s.bad = append(s.bad, Diagnostic{
						Rule:    "baddirective",
						Pos:     pos,
						Message: "malformed //lint:ignore: want \"//lint:ignore <rule> <reason>\"",
					})
					continue
				}
				d := &Directive{Rule: fields[0], Pos: pos}
				s.list = append(s.list, d)
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]*Directive)
					s.byLine[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if lines[line] == nil {
						lines[line] = make(map[string]*Directive)
					}
					lines[line][d.Rule] = d
				}
			}
		}
	}
	return s
}

// suppressed reports whether a finding of rule at pos is covered by a
// directive, marking the directive as exercised for audit purposes.
func (s *suppressions) suppressed(rule string, pos token.Position) bool {
	d := s.byLine[pos.Filename][pos.Line][rule]
	if d == nil {
		return false
	}
	d.used = true
	return true
}

// stale returns the directives that suppressed nothing during the run,
// restricted to rules in the given set: a directive naming a rule that did
// not run cannot be judged, so it is skipped rather than reported.
func (s *suppressions) stale(ran map[string]bool) []Directive {
	var out []Directive
	for _, d := range s.list {
		if !d.used && ran[d.Rule] {
			out = append(out, *d)
		}
	}
	return out
}
