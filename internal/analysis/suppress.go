package analysis

import (
	"go/token"
	"strings"
)

// Suppression syntax: a comment of the form
//
//	//lint:ignore <rule> <reason>
//
// suppresses findings of <rule> on the same line as the comment and on the
// line immediately following it (so it can sit either at the end of the
// offending line or on its own line above). The reason is mandatory; an
// ignore directive without one is itself reported as a bad-directive
// finding so silent suppressions cannot accumulate.

type suppressions struct {
	// byLine maps filename -> line -> set of suppressed rule names.
	byLine map[string]map[int]map[string]bool
	bad    []Diagnostic
}

func collectSuppressions(pkg *Package) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int]map[string]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					s.bad = append(s.bad, Diagnostic{
						Rule:    "baddirective",
						Pos:     pos,
						Message: "malformed //lint:ignore: want \"//lint:ignore <rule> <reason>\"",
					})
					continue
				}
				rule := fields[0]
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					s.byLine[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if lines[line] == nil {
						lines[line] = make(map[string]bool)
					}
					lines[line][rule] = true
				}
			}
		}
	}
	return s
}

func (s *suppressions) suppressed(rule string, pos token.Position) bool {
	return s.byLine[pos.Filename][pos.Line][rule]
}
