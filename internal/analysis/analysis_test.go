package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a throwaway module for loader tests.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// callCounter flags every function call, for plumbing tests.
var callCounter = &Analyzer{
	Name: "callcounter",
	Doc:  "test analyzer: flags every call expression",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(call.Pos(), "call found")
				}
				return true
			})
		}
	},
}

func TestLoaderResolvesModuleImports(t *testing.T) {
	t.Parallel()
	root := writeTree(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
		"lib/lib.go": `package lib

// Answer is the canonical constant.
func Answer() int { return 42 }
`,
		"app/app.go": `package app

import "example.test/lib"

// Use exercises a module-internal import.
func Use() int { return lib.Answer() }
`,
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Types == nil || p.Info == nil {
			t.Fatalf("package %s missing type info", p.ImportPath)
		}
	}
	if pkgs[0].ImportPath != "example.test/app" {
		t.Fatalf("unexpected order: %v first", pkgs[0].ImportPath)
	}
}

func TestLoaderReportsTypeErrors(t *testing.T) {
	t.Parallel()
	root := writeTree(t, map[string]string{
		"go.mod":        "module example.test\n\ngo 1.22\n",
		"bad/bad.go":    "package bad\n\nfunc Broken() int { return \"nope\" }\n",
		"good/good.go":  "package good\n\nfunc Fine() {}\n",
		"good/extra.go": "package good\n\nfunc Also() {}\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load(filepath.Join(root, "bad")); err == nil {
		t.Fatal("expected a type error from bad/")
	} else if !strings.Contains(err.Error(), "type errors") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := loader.Load(filepath.Join(root, "good")); err != nil {
		t.Fatalf("good package failed to load: %v", err)
	}
}

func TestSuppressionAndBadDirective(t *testing.T) {
	t.Parallel()
	root := writeTree(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
		"p/p.go": `package p

// A is suppressed on the preceding line.
func A() {
	//lint:ignore callcounter reason given here
	helper()
	helper()
}

//lint:ignore callcounter
func helper() {}
`,
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(filepath.Join(root, "p"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Analyzer{callCounter}, []*Package{pkg})
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	// One helper() call is suppressed, one is not; the reason-less
	// directive is itself a finding. Output is position-sorted, so the
	// surviving call (line 7) precedes the bad directive (line 10).
	want := []string{"callcounter", "baddirective"}
	if strings.Join(rules, ",") != strings.Join(want, ",") {
		t.Fatalf("got rules %v, want %v\ndiags: %v", rules, want, diags)
	}
}

func TestRunAuditReportsStaleDirectives(t *testing.T) {
	t.Parallel()
	root := writeTree(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
		"p/p.go": `package p

func A() {
	//lint:ignore callcounter this one suppresses the call below
	helper()
	//lint:ignore callcounter nothing to suppress on the next line
	var _ = 1
	//lint:ignore someotherrule that rule is not running
	var _ = 2
}

func helper() {}
`,
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(filepath.Join(root, "p"))
	if err != nil {
		t.Fatal(err)
	}
	diags, stale := RunAudit([]*Analyzer{callCounter}, []*Package{pkg})
	if len(diags) != 0 {
		t.Fatalf("unexpected findings: %v", diags)
	}
	// The exercised directive and the one naming a rule that did not run
	// are both excluded; only the dead callcounter directive is stale.
	if len(stale) != 1 || stale[0].Rule != "callcounter" || stale[0].Pos.Line != 6 {
		t.Fatalf("stale = %+v, want exactly the line-6 callcounter directive", stale)
	}
}

func TestDiagnosticOrderingIsStable(t *testing.T) {
	t.Parallel()
	root := writeTree(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
		"p/a.go": "package p\n\nfunc A() { B(); B() }\n",
		"p/b.go": "package p\n\nfunc B() {}\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(filepath.Join(root, "p"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Analyzer{callCounter}, []*Package{pkg})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2", len(diags))
	}
	if diags[0].Pos.Column >= diags[1].Pos.Column {
		t.Fatalf("diagnostics out of order: %v", diags)
	}
	if !strings.Contains(diags[0].String(), "callcounter: call found") {
		t.Fatalf("String() = %q", diags[0].String())
	}
}

func TestMatchPathSuffix(t *testing.T) {
	t.Parallel()
	m := MatchPathSuffix("internal/dsp", "internal/cancel")
	for path, want := range map[string]bool{
		"repro/internal/dsp":    true,
		"x/internal/cancel":     true,
		"internal/dsp":          true,
		"repro/internal/detect": false,
		"notinternal/dsp":       false,
	} {
		if m(path) != want {
			t.Errorf("MatchPathSuffix(%q) = %v, want %v", path, m(path), want)
		}
	}
}
