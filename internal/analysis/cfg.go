package analysis

import (
	"go/ast"
	"go/token"
)

// This file builds per-function control-flow graphs from go/ast alone —
// no SSA, no x/tools — precise enough for the dominator and dataflow
// passes the lock-guard and context-propagation rules are built on.
//
// A Block is a straight-line run of statements: execution enters at the
// first node and leaves through one of Succs. Nodes hold statements plus
// the control expressions evaluated in the block (an if condition, a
// switch tag, case expressions), in evaluation order. Function literals
// are never descended into — a FuncLit body runs in its own frame and gets
// its own CFG (see InspectShallow).

// Block is one basic block of a CFG.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// CFG is the control-flow graph of one function body. Blocks[0] is the
// entry block; blocks unreachable from it (dead code after return, bodies
// of never-taken branches the builder still materializes) simply have no
// path from the entry and are ignored by the dominator and dataflow
// passes.
type CFG struct {
	Blocks []*Block
}

// Entry returns the function's entry block.
func (c *CFG) Entry() *Block { return c.Blocks[0] }

// Preds computes the predecessor lists of every block.
func (c *CFG) Preds() [][]*Block {
	preds := make([][]*Block, len(c.Blocks))
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b)
		}
	}
	return preds
}

// NewCFG builds the control-flow graph of one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{}
	b := &cfgBuilder{cfg: c, labels: make(map[string]*Block)}
	b.cur = b.newBlock()
	b.stmtList(body.List)
	return c
}

// frame is one enclosing breakable/continuable construct during building.
type frame struct {
	label    string // non-empty for labeled statements
	brk      *Block // break target (loops, switch, select)
	cont     *Block // continue target; nil for switch/select frames
	isSwitch bool
}

type cfgBuilder struct {
	cfg          *CFG
	cur          *Block
	frames       []frame
	labels       map[string]*Block // goto/label targets
	pendingLabel string
	fallTo       *Block // next case body, for fallthrough
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func link(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// terminate ends the current block with no fallthrough successor; the
// fresh block it installs is dead unless something links to it.
func (b *cfgBuilder) terminate() {
	b.cur = b.newBlock()
}

// takeLabel consumes the label attached to the statement being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// labelBlock returns (creating if needed) the block a label names, shared
// by the labeled statement itself and any goto that targets it.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.takeLabel()
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		target := b.labelBlock(s.Label.Name)
		link(b.cur, target)
		b.cur = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		merge := b.newBlock()
		then := b.newBlock()
		link(cond, then)
		b.cur = then
		b.stmt(s.Body)
		link(b.cur, merge)
		if s.Else != nil {
			els := b.newBlock()
			link(cond, els)
			b.cur = els
			b.stmt(s.Else)
			link(b.cur, merge)
		} else {
			link(cond, merge)
		}
		b.cur = merge

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		link(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock()
		link(head, body)
		exit := b.newBlock()
		if s.Cond != nil {
			link(head, exit)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.frames = append(b.frames, frame{label: label, brk: exit, cont: cont})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		link(b.cur, cont)
		if post != nil {
			b.cur = post
			b.add(s.Post)
			link(b.cur, head)
		}
		b.cur = exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.newBlock()
		link(b.cur, head)
		body := b.newBlock()
		link(head, body)
		exit := b.newBlock()
		link(head, exit)
		b.frames = append(b.frames, frame{label: label, brk: exit, cont: head})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		link(b.cur, head)
		b.cur = exit

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, s.Body.List, func(cc ast.Stmt) ([]ast.Node, []ast.Stmt) {
			clause := cc.(*ast.CaseClause)
			var exprs []ast.Node
			for _, e := range clause.List {
				exprs = append(exprs, e)
			}
			return exprs, clause.Body
		}, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(label, s.Body.List, func(cc ast.Stmt) ([]ast.Node, []ast.Stmt) {
			clause := cc.(*ast.CaseClause)
			var exprs []ast.Node
			for _, e := range clause.List {
				exprs = append(exprs, e)
			}
			return exprs, clause.Body
		}, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		merge := b.newBlock()
		b.frames = append(b.frames, frame{label: label, brk: merge, isSwitch: true})
		for _, cc := range s.Body.List {
			comm := cc.(*ast.CommClause)
			blk := b.newBlock()
			link(head, blk)
			b.cur = blk
			if comm.Comm != nil {
				b.add(comm.Comm)
			}
			b.stmtList(comm.Body)
			link(b.cur, merge)
		}
		b.frames = b.frames[:len(b.frames)-1]
		// A select with no cases blocks forever; merge is then unreachable,
		// which is exactly right.
		b.cur = merge

	case *ast.ReturnStmt:
		b.add(s)
		b.terminate()

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isTerminalCall(call) {
			b.terminate()
		}

	default:
		// Assignments, declarations, inc/dec, send, go, defer, empty.
		b.takeLabel()
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.add(s)
	}
}

// caseClauses builds the shared switch/type-switch shape: the head block
// evaluates the case expressions, each clause body is its own block, and
// everything meets at the merge. allowFall enables fallthrough linking.
func (b *cfgBuilder) caseClauses(label string, clauses []ast.Stmt, split func(ast.Stmt) ([]ast.Node, []ast.Stmt), allowFall bool) {
	head := b.cur
	merge := b.newBlock()
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	b.frames = append(b.frames, frame{label: label, brk: merge, isSwitch: true})
	hasDefault := false
	for i, cc := range clauses {
		exprs, body := split(cc)
		if len(exprs) == 0 {
			hasDefault = true
		}
		head.Nodes = append(head.Nodes, exprs...)
		link(head, bodies[i])
		savedFall := b.fallTo
		if allowFall && i+1 < len(clauses) {
			b.fallTo = bodies[i+1]
		} else {
			b.fallTo = nil
		}
		b.cur = bodies[i]
		b.stmtList(body)
		link(b.cur, merge)
		b.fallTo = savedFall
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		link(head, merge)
	}
	b.cur = merge
}

// branch wires break/continue/goto/fallthrough to their targets.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if label == "" || f.label == label {
				link(b.cur, f.brk)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.cont != nil && (label == "" || f.label == label) {
				link(b.cur, f.cont)
				break
			}
		}
	case token.GOTO:
		if s.Label != nil {
			link(b.cur, b.labelBlock(s.Label.Name))
		}
	case token.FALLTHROUGH:
		if b.fallTo != nil {
			link(b.cur, b.fallTo)
		}
	}
	b.terminate()
}

// isTerminalCall reports whether a call never returns: the panic builtin,
// os.Exit, runtime.Goexit, and log.Fatal*.
func isTerminalCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		case pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"):
			return true
		}
	}
	return false
}

// InspectShallow walks n in the manner of ast.Inspect but never descends
// into function literals: a CFG node's visitor sees exactly the code that
// executes in the node's own frame. Deferred and go'ed literal bodies
// belong to other CFGs.
func InspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}
