// Package analysistest runs an analyzer over a GOPATH-style testdata tree
// and checks its findings against // want "..." annotations, the golden
// convention used by x/tools but implemented here on the standard library
// only.
//
// A want annotation is a line comment of the form
//
//	x := f() // want "regexp"
//
// Every diagnostic the analyzer reports must match (by regexp, against the
// diagnostic's "rule: message" text) a want on the same line of the same
// file, and every want must be matched by exactly one diagnostic.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// Run loads each package path under testdataSrc (a directory that plays
// the role of a GOPATH src/), applies the analyzer, and compares findings
// against the want annotations in the loaded files.
func Run(t *testing.T, testdataSrc string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader, err := analysis.NewLoader(testdataSrc)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	var pkgs []*analysis.Package
	for _, p := range pkgPaths {
		pkg, err := loader.Load(filepath.Join(testdataSrc, filepath.FromSlash(p)))
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags := analysis.Run([]*analysis.Analyzer{a}, pkgs)

	type want struct {
		re      *regexp.Regexp
		matched bool
		raw     string
	}
	wants := make(map[string][]*want) // "file:line" -> pending expectations
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pat, err := unquoteWant(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern: %v", pkg.Fset.Position(c.Pos()), err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), pat, err)
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], &want{re: re, raw: pat})
				}
			}
		}
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		text := d.Rule + ": " + d.Message
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(text) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	keys := make([]string, 0, len(wants))
	//lint:ignore nondeterminism keys are sorted before reporting
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching want %q", key, w.raw)
			}
		}
	}
}

// unquoteWant undoes the minimal escaping want patterns need inside a
// double-quoted comment: \" and \\.
func unquoteWant(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			if i+1 >= len(s) {
				return "", fmt.Errorf("trailing backslash in %q", s)
			}
			i++
			switch s[i] {
			case '"', '\\':
				b.WriteByte(s[i])
			default:
				b.WriteByte('\\')
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}
