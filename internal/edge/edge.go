// Package edge implements the paper's "Edge vs. the Cloud" computation
// placement (Sec. 4) together with the Sec. 6 future-work extensions:
// per-technology latency SLAs and load balancing across multiple edge
// nodes and the cloud.
//
// The paper's present implementation pushes I/Q to the edge for
// no-collision decoding and ships to the cloud only on failure; it names
// "factoring in SLAs to abide by quality-of-service requirements for
// different technologies and ensuring load-balancing between multiple edge
// computing nodes vs. the cloud" as the next step. Scheduler models that
// step: each node advertises a compute rate and a round-trip latency, each
// technology can carry a decode deadline, and segments are placed on the
// cheapest node that still meets the tightest applicable deadline.
package edge

import (
	"fmt"
	"sort"
	"time"
)

// Node is a computation location: an edge box or the cloud.
type Node struct {
	Name string
	// RTT is the round-trip network latency to reach the node.
	RTT time.Duration
	// ComputeRate is how many I/Q samples per second of decode work the
	// node sustains (a Raspberry-Pi-class edge node is ~100× slower than a
	// cloud instance for the correlation-heavy decode path).
	ComputeRate float64
	// Cloud marks the node as the cloud (unbounded queue, collision-capable).
	Cloud bool

	backlog float64 // queued decode work, in samples
}

// Backlog returns the node's queued work in samples.
func (n *Node) Backlog() float64 { return n.backlog }

// completionTime estimates how long a segment of the given length will
// take end to end on this node, including queued work.
func (n *Node) completionTime(samples int) time.Duration {
	if n.ComputeRate <= 0 {
		return time.Duration(1<<62 - 1)
	}
	compute := (n.backlog + float64(samples)) / n.ComputeRate
	return n.RTT + time.Duration(compute*float64(time.Second))
}

// Scheduler places segments on nodes.
type Scheduler struct {
	Edges []*Node
	Cloud *Node
	// SLAs maps a technology name to its decode deadline; technologies
	// absent from the map have no deadline.
	SLAs map[string]time.Duration
}

// NewScheduler returns a scheduler over the given edge nodes and cloud.
func NewScheduler(cloud *Node, edges ...*Node) *Scheduler {
	return &Scheduler{Edges: edges, Cloud: cloud, SLAs: map[string]time.Duration{}}
}

// Placement is a scheduling decision.
type Placement struct {
	Node      *Node
	Estimated time.Duration // estimated completion time on the chosen node
	Deadline  time.Duration // tightest applicable SLA (0 = none)
	MeetsSLA  bool
}

// Place chooses a node for a segment of the given sample count whose
// suspected technologies are candidates. Collisions (more than one
// candidate technology) always go to the cloud, per Sec. 4: the edge
// decodes only the no-collision case. Otherwise the scheduler picks the
// node with the earliest completion time among those meeting the tightest
// candidate SLA, preferring edges on ties (backhaul relief); if no node
// meets the deadline, the fastest node is chosen and MeetsSLA is false.
// The chosen node's backlog is charged with the work.
func (s *Scheduler) Place(samples int, candidates []string) Placement {
	deadline := s.tightestSLA(candidates)
	collision := len(candidates) > 1

	type option struct {
		node *Node
		eta  time.Duration
	}
	var opts []option
	if !collision {
		for _, e := range s.Edges {
			opts = append(opts, option{e, e.completionTime(samples)})
		}
	}
	if s.Cloud != nil {
		opts = append(opts, option{s.Cloud, s.Cloud.completionTime(samples)})
	}
	if len(opts) == 0 {
		return Placement{}
	}
	// stable order: fastest first, edges before cloud on equal ETA
	sort.SliceStable(opts, func(i, j int) bool {
		if opts[i].eta != opts[j].eta {
			return opts[i].eta < opts[j].eta
		}
		return !opts[i].node.Cloud && opts[j].node.Cloud
	})
	chosen := opts[0]
	meets := deadline == 0 || chosen.eta <= deadline
	if deadline > 0 {
		for _, o := range opts {
			if o.eta <= deadline {
				chosen = o
				meets = true
				break
			}
		}
	}
	chosen.node.backlog += float64(samples)
	return Placement{Node: chosen.node, Estimated: chosen.eta, Deadline: deadline, MeetsSLA: meets}
}

// Complete credits finished work back to a node's backlog.
func (s *Scheduler) Complete(n *Node, samples int) {
	n.backlog -= float64(samples)
	if n.backlog < 0 {
		n.backlog = 0
	}
}

// tightestSLA returns the smallest deadline across candidates (0 = none).
func (s *Scheduler) tightestSLA(candidates []string) time.Duration {
	var d time.Duration
	for _, c := range candidates {
		if sla, ok := s.SLAs[c]; ok && sla > 0 && (d == 0 || sla < d) {
			d = sla
		}
	}
	return d
}

// String summarizes the scheduler state.
func (s *Scheduler) String() string {
	out := "edge nodes:"
	for _, e := range s.Edges {
		out += fmt.Sprintf(" %s(backlog %.0f)", e.Name, e.backlog)
	}
	if s.Cloud != nil {
		out += fmt.Sprintf(" | cloud %s(backlog %.0f)", s.Cloud.Name, s.Cloud.backlog)
	}
	return out
}
