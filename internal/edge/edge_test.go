package edge

import (
	"strings"
	"testing"
	"time"
)

// testNodes returns a Pi-class edge (slow, near) and a cloud (fast, far).
func testNodes() (*Node, *Node) {
	edgeNode := &Node{Name: "pi", RTT: 1 * time.Millisecond, ComputeRate: 2e6}
	cloud := &Node{Name: "cloud", RTT: 40 * time.Millisecond, ComputeRate: 2e8, Cloud: true}
	return edgeNode, cloud
}

func TestSingleTechPrefersEdge(t *testing.T) {
	e, c := testNodes()
	s := NewScheduler(c, e)
	// 1e6 samples: edge = 1ms + 0.5s? 1e6/2e6 = 0.5s... use a small segment
	p := s.Place(100000, []string{"xbee"})
	// edge: 1ms + 100k/2e6 = 51ms; cloud: 40ms + 0.5ms = 40.5ms → cloud is
	// actually faster here; use an even smaller segment to favor the edge
	_ = p
	e2, c2 := testNodes()
	s2 := NewScheduler(c2, e2)
	p2 := s2.Place(10000, []string{"xbee"})
	// edge: 1ms + 5ms = 6ms; cloud: 40ms + ~0 = 40ms → edge wins
	if p2.Node != e2 {
		t.Fatalf("small segment placed on %s, want edge", p2.Node.Name)
	}
}

func TestCollisionAlwaysCloud(t *testing.T) {
	e, c := testNodes()
	s := NewScheduler(c, e)
	p := s.Place(1000, []string{"lora", "xbee"})
	if p.Node != c {
		t.Fatalf("collision placed on %s, want cloud", p.Node.Name)
	}
}

func TestSLARoutesToFasterNode(t *testing.T) {
	e, c := testNodes()
	s := NewScheduler(c, e)
	// Big segment: edge would take 1ms + 500ms; cloud 40ms + 5ms. With a
	// 100ms zwave SLA, the cloud must be chosen.
	s.SLAs["zwave"] = 100 * time.Millisecond
	p := s.Place(1000000, []string{"zwave"})
	if p.Node != c {
		t.Fatalf("SLA placement on %s, want cloud", p.Node.Name)
	}
	if !p.MeetsSLA || p.Deadline != 100*time.Millisecond {
		t.Fatalf("placement %+v", p)
	}
}

func TestSLAViolationFlagged(t *testing.T) {
	e, c := testNodes()
	s := NewScheduler(c, e)
	s.SLAs["zwave"] = 1 * time.Millisecond // nothing can meet this
	p := s.Place(1000000, []string{"zwave"})
	if p.MeetsSLA {
		t.Fatal("impossible SLA reported as met")
	}
	if p.Node == nil {
		t.Fatal("no node chosen")
	}
}

func TestLoadBalancingAcrossEdges(t *testing.T) {
	c := &Node{Name: "cloud", RTT: time.Second, ComputeRate: 1e9, Cloud: true}
	e1 := &Node{Name: "e1", RTT: time.Millisecond, ComputeRate: 1e6}
	e2 := &Node{Name: "e2", RTT: time.Millisecond, ComputeRate: 1e6}
	s := NewScheduler(c, e1, e2)
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		p := s.Place(50000, []string{"xbee"})
		counts[p.Node.Name]++
	}
	if counts["e1"] == 0 || counts["e2"] == 0 {
		t.Fatalf("work not balanced: %+v", counts)
	}
	if counts["cloud"] != 0 {
		t.Fatalf("distant cloud used unnecessarily: %+v", counts)
	}
}

func TestCompleteDrainsBacklog(t *testing.T) {
	e, c := testNodes()
	s := NewScheduler(c, e)
	p := s.Place(10000, []string{"xbee"})
	if p.Node.Backlog() != 10000 {
		t.Fatalf("backlog %v", p.Node.Backlog())
	}
	s.Complete(p.Node, 10000)
	if p.Node.Backlog() != 0 {
		t.Fatalf("backlog %v after complete", p.Node.Backlog())
	}
	s.Complete(p.Node, 99999) // must clamp
	if p.Node.Backlog() != 0 {
		t.Fatal("backlog went negative")
	}
}

func TestTightestSLAAcrossCandidates(t *testing.T) {
	e, c := testNodes()
	s := NewScheduler(c, e)
	s.SLAs["a"] = 100 * time.Millisecond
	s.SLAs["b"] = 20 * time.Millisecond
	if d := s.tightestSLA([]string{"a", "b", "unknown"}); d != 20*time.Millisecond {
		t.Fatalf("tightest %v", d)
	}
	if d := s.tightestSLA([]string{"unknown"}); d != 0 {
		t.Fatalf("no-SLA tightest %v", d)
	}
}

func TestNoNodes(t *testing.T) {
	s := NewScheduler(nil)
	if p := s.Place(1000, []string{"x"}); p.Node != nil {
		t.Fatal("placement without nodes")
	}
}

func TestStringSummary(t *testing.T) {
	e, c := testNodes()
	s := NewScheduler(c, e)
	if !strings.Contains(s.String(), "pi") || !strings.Contains(s.String(), "cloud") {
		t.Fatalf("summary %q", s.String())
	}
}
