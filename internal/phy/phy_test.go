package phy

import (
	"strings"
	"testing"
)

// fakeTech is a minimal Technology for registry tests.
type fakeTech struct{ name string }

func (f fakeTech) Name() string                  { return f.name }
func (f fakeTech) Class() Class                  { return ClassFSK }
func (f fakeTech) Info() Info                    { return Info{Name: f.name, Modulation: "GFSK"} }
func (f fakeTech) BitRate() float64              { return 1000 }
func (f fakeTech) Preamble(float64) []complex128 { return make([]complex128, 8) }
func (f fakeTech) MaxPacketSamples(float64) int  { return 64 }
func (f fakeTech) Modulate([]byte, float64) ([]complex128, error) {
	return make([]complex128, 64), nil
}
func (f fakeTech) Demodulate([]complex128, float64) (*Frame, error) { return nil, ErrNoFrame }

func TestRegisterLookupAll(t *testing.T) {
	Register(fakeTech{name: "ztest-b"})
	Register(fakeTech{name: "ztest-a"})
	if _, ok := Lookup("ztest-a"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := Lookup("missing"); ok {
		t.Fatal("phantom lookup")
	}
	all := All()
	// sorted by name
	for i := 1; i < len(all); i++ {
		if all[i-1].Name() >= all[i].Name() {
			t.Fatal("All() not sorted")
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	Register(fakeTech{name: "ztest-dup"})
	Register(fakeTech{name: "ztest-dup"})
}

func TestCatalogIncludesTable1Extras(t *testing.T) {
	cat := Catalog()
	names := map[string]bool{}
	for _, info := range cat {
		names[info.Name] = true
	}
	for _, want := range []string{"ble", "wifi-halow", "sigfox", "thread", "wirelesshart", "weightless", "nb-iot"} {
		if !names[want] {
			t.Fatalf("catalog missing %s", want)
		}
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{ClassFSK: "FSK", ClassPSK: "PSK", ClassCSS: "CSS", ClassDSSS: "DSSS"}
	for c, want := range cases {
		if c.String() != want {
			t.Fatalf("%v", c)
		}
	}
	if !strings.HasPrefix(Class(9).String(), "class(") {
		t.Fatal("unknown class string")
	}
}
