package lora

import (
	"bytes"
	"errors"
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
	"repro/internal/phy"
	"repro/internal/rng"
)

const fs = 1e6

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{SF: 5, Bandwidth: 125e3}); err == nil {
		t.Fatal("SF 5 should be rejected")
	}
	if _, err := New(Config{SF: 7}); err == nil {
		t.Fatal("zero bandwidth should be rejected")
	}
	if _, err := New(Config{SF: 7, Bandwidth: 125e3, CR: 5}); err == nil {
		t.Fatal("CR 5 should be rejected")
	}
	if _, err := New(Config{SF: 7, Bandwidth: 125e3, MaxPayload: 300}); err == nil {
		t.Fatal("max payload 300 should be rejected")
	}
	r, err := New(Config{SF: 7, Bandwidth: 125e3})
	if err != nil {
		t.Fatal(err)
	}
	if c := r.Config(); c.CR != 4 || c.PreambleLen != 8 || c.MaxPayload != 64 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}

func TestChirpUnitModulus(t *testing.T) {
	r := Default()
	for _, up := range []bool{true, false} {
		c := r.chirp(up, 3, fs)
		if len(c) != 1024 { // 2^7 * 8 (osr = 1e6/125e3)
			t.Fatalf("chirp length %d", len(c))
		}
		for i, v := range c {
			if math.Abs(cmplx.Abs(v)-1) > 1e-9 {
				t.Fatalf("chirp sample %d modulus %v", i, cmplx.Abs(v))
			}
		}
	}
}

func TestChirpOrthogonality(t *testing.T) {
	// Distinct cyclic shifts of the upchirp are near-orthogonal.
	r := Default()
	a := r.chirp(true, 0, fs)
	for _, s := range []int{1, 17, 64, 127} {
		b := r.chirp(true, s, fs)
		var dot complex128
		for i := range a {
			dot += a[i] * complex(real(b[i]), -imag(b[i]))
		}
		if cmplx.Abs(dot)/float64(len(a)) > 0.05 {
			t.Fatalf("chirp 0 vs %d correlation %.4f", s, cmplx.Abs(dot)/float64(len(a)))
		}
	}
}

func TestDemodSymbolAllValues(t *testing.T) {
	r := Default()
	down := dsp.Conj(r.chirp(true, 0, fs))
	for s := 0; s < 128; s += 7 {
		win := r.chirp(true, s, fs)
		got, _ := r.demodSymbol(win, down)
		if got != uint32(s) {
			t.Fatalf("symbol %d demodulated as %d", s, got)
		}
	}
}

func TestModulateDemodulateClean(t *testing.T) {
	r := Default()
	payload := []byte("hello lora world")
	sig, err := r.Modulate(payload, fs)
	if err != nil {
		t.Fatal(err)
	}
	// embed with a delay and some trailing noise-free zeros
	rx := make([]complex128, len(sig)+5000)
	dsp.Add(rx, sig, 2048)
	frame, err := r.Demodulate(rx, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.CRCOK {
		t.Fatal("CRC failed on clean signal")
	}
	if !bytes.Equal(frame.Payload, payload) {
		t.Fatalf("payload %q", frame.Payload)
	}
	if frame.Offset != 2048 {
		t.Fatalf("offset %d, want 2048", frame.Offset)
	}
	if cmplx.Abs(frame.Gain-1) > 0.05 {
		t.Fatalf("gain %v, want ~1", frame.Gain)
	}
}

func TestRoundTripRandomPayloads(t *testing.T) {
	r := Default()
	gen := rng.New(42)
	f := func(lenRaw uint8) bool {
		n := int(lenRaw%32) + 1
		payload := make([]byte, n)
		gen.Bytes(payload)
		sig, err := r.Modulate(payload, fs)
		if err != nil {
			return false
		}
		rx := make([]complex128, len(sig)+3000)
		dsp.Add(rx, sig, 500)
		frame, err := r.Demodulate(rx, fs)
		if err != nil {
			return false
		}
		return frame.CRCOK && bytes.Equal(frame.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestDemodulateUnderNoise(t *testing.T) {
	r := Default()
	gen := rng.New(7)
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02}
	sig, err := r.Modulate(payload, fs)
	if err != nil {
		t.Fatal(err)
	}
	// -5 dB SNR: CSS processing gain (2^SF) makes this easy for LoRa.
	for _, snrDB := range []float64{5, -5} {
		rx := make([]complex128, len(sig)+4000)
		for i := range rx {
			rx[i] = gen.Complex()
		}
		amp := math.Sqrt(dsp.FromDB(snrDB))
		scaled := dsp.Scale(dsp.Clone(sig), amp)
		dsp.Add(rx, scaled, 1500)
		frame, err := r.Demodulate(rx, fs)
		if err != nil {
			t.Fatalf("snr %v dB: %v", snrDB, err)
		}
		if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
			t.Fatalf("snr %v dB: corrupted payload %x", snrDB, frame.Payload)
		}
	}
}

func TestDemodulateWithCFO(t *testing.T) {
	r := Default()
	payload := []byte("cfo test")
	sig, err := r.Modulate(payload, fs)
	if err != nil {
		t.Fatal(err)
	}
	// 200 Hz CFO ≈ 0.2 ppm at 868 MHz — well within crystal tolerance.
	for _, cfo := range []float64{120, -200} {
		rx := make([]complex128, len(sig)+2000)
		shifted := dsp.Mix(dsp.Clone(sig), cfo, 0.3, fs)
		dsp.Add(rx, shifted, 700)
		frame, err := r.Demodulate(rx, fs)
		if err != nil {
			t.Fatalf("cfo %v: %v", cfo, err)
		}
		if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
			t.Fatalf("cfo %v: payload %x", cfo, frame.Payload)
		}
	}
}

func TestDemodulateNoSignal(t *testing.T) {
	r := Default()
	gen := rng.New(9)
	rx := make([]complex128, 80000)
	for i := range rx {
		rx[i] = gen.Complex()
	}
	_, err := r.Demodulate(rx, fs)
	if err == nil {
		t.Fatal("pure noise should not decode")
	}
	if !errors.Is(err, phy.ErrNoFrame) {
		t.Fatalf("error %v should wrap ErrNoFrame", err)
	}
}

func TestModulateRejects(t *testing.T) {
	r := Default()
	if _, err := r.Modulate(nil, fs); err == nil {
		t.Fatal("empty payload")
	}
	if _, err := r.Modulate(make([]byte, 65), fs); err == nil {
		t.Fatal("oversized payload")
	}
	if _, err := r.Modulate([]byte{1}, 999999); err == nil {
		t.Fatal("non-integer OSR sample rate")
	}
}

func TestBitRate(t *testing.T) {
	r := Default()
	// SF7, BW 125k, CR 4/8: 7 * 125000/128 * 0.5 = 3417.97 bps
	want := 7.0 * 125000.0 / 128.0 * 0.5
	if got := r.BitRate(); math.Abs(got-want) > 0.01 {
		t.Fatalf("bit rate %v, want %v", got, want)
	}
}

func TestMaxPacketSamplesCoversModulated(t *testing.T) {
	r := Default()
	sig, err := r.Modulate(make([]byte, 64), fs)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxPacketSamples(fs) < len(sig) {
		t.Fatalf("MaxPacketSamples %d < actual max airtime %d", r.MaxPacketSamples(fs), len(sig))
	}
}

func TestPreambleStructure(t *testing.T) {
	r := Default()
	pre := r.Preamble(fs)
	n := r.symbolSamples(fs)
	if len(pre) != 8*n+2*n+n/4 {
		t.Fatalf("preamble length %d", len(pre))
	}
	if p := dsp.Power(pre); math.Abs(p-1) > 1e-9 {
		t.Fatalf("preamble power %v", p)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	for _, l := range []int{1, 37, 255} {
		for cr := 1; cr <= 4; cr++ {
			h := headerBytes(l, cr)
			gl, gcr, err := parseHeader(h[:])
			if err != nil || gl != l || gcr != cr {
				t.Fatalf("header round trip l=%d cr=%d: %d %d %v", l, cr, gl, gcr, err)
			}
		}
	}
	bad := headerBytes(10, 4)
	bad[2] ^= 0xFF
	if _, _, err := parseHeader(bad[:]); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestInterfaceCompliance(t *testing.T) {
	var tech phy.Technology = Default()
	if tech.Name() != "lora" || tech.Class() != phy.ClassCSS {
		t.Fatal("identity")
	}
	ct, ok := tech.(phy.ChirpTechnology)
	if !ok {
		t.Fatal("lora must implement ChirpTechnology")
	}
	if ct.SpreadingFactor() != 7 || ct.ChirpBandwidth() != 125e3 {
		t.Fatal("chirp params")
	}
}

func TestHigherSpreadingFactor(t *testing.T) {
	r, err := New(Config{SF: 9, Bandwidth: 125e3, CR: 2, PreambleLen: 6, MaxPayload: 16})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{1, 2, 3, 4, 5}
	sig, err := r.Modulate(payload, fs)
	if err != nil {
		t.Fatal(err)
	}
	rx := make([]complex128, len(sig)+2000)
	dsp.Add(rx, sig, 321)
	frame, err := r.Demodulate(rx, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
		t.Fatalf("SF9 round trip failed: %x", frame.Payload)
	}
}

func BenchmarkModulate16B(b *testing.B) {
	r := Default()
	payload := make([]byte, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Modulate(payload, fs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDemodulate16B(b *testing.B) {
	r := Default()
	payload := make([]byte, 16)
	sig, _ := r.Modulate(payload, fs)
	rx := make([]complex128, len(sig)+1000)
	dsp.Add(rx, sig, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Demodulate(rx, fs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRoundTripLowOversampling(t *testing.T) {
	// OSR 2 (fs = 250 kHz for the 125 kHz bandwidth) exercises the general
	// oversampling path with the smallest legal ratio above 1.
	r, err := New(Config{SF: 8, Bandwidth: 125e3, CR: 3, MaxPayload: 16})
	if err != nil {
		t.Fatal(err)
	}
	const lowFS = 250e3
	payload := []byte{0xAB, 0xCD, 0xEF}
	sig, err := r.Modulate(payload, lowFS)
	if err != nil {
		t.Fatal(err)
	}
	rx := make([]complex128, len(sig)+2000)
	dsp.Add(rx, sig, 777)
	frame, err := r.Demodulate(rx, lowFS)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
		t.Fatalf("OSR-2 payload %x", frame.Payload)
	}
}

func TestRoundTripCriticalSampling(t *testing.T) {
	// OSR 1 (fs == bandwidth) is the critically sampled case used by
	// narrowband captures.
	r, err := New(Config{SF: 7, Bandwidth: 125e3, CR: 4, MaxPayload: 16})
	if err != nil {
		t.Fatal(err)
	}
	const critFS = 125e3
	payload := []byte{1, 2, 3}
	sig, err := r.Modulate(payload, critFS)
	if err != nil {
		t.Fatal(err)
	}
	rx := make([]complex128, len(sig)+1000)
	dsp.Add(rx, sig, 321)
	frame, err := r.Demodulate(rx, critFS)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
		t.Fatalf("OSR-1 payload %x", frame.Payload)
	}
}

func TestImplicitHeaderRoundTrip(t *testing.T) {
	r, err := New(Config{SF: 7, Bandwidth: 125e3, CR: 2, ImplicitHeader: true, ImplicitLength: 6, MaxPayload: 16})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{1, 2, 3, 4, 5, 6}
	sig, err := r.Modulate(payload, fs)
	if err != nil {
		t.Fatal(err)
	}
	// implicit mode must be shorter on air than explicit mode
	re, _ := New(Config{SF: 7, Bandwidth: 125e3, CR: 2, MaxPayload: 16})
	esig, _ := re.Modulate(payload, fs)
	if len(sig) >= len(esig) {
		t.Fatalf("implicit airtime %d not shorter than explicit %d", len(sig), len(esig))
	}
	rx := make([]complex128, len(sig)+2000)
	dsp.Add(rx, sig, 555)
	frame, err := r.Demodulate(rx, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
		t.Fatalf("implicit payload %x", frame.Payload)
	}
}

func TestImplicitHeaderValidation(t *testing.T) {
	if _, err := New(Config{SF: 7, Bandwidth: 125e3, ImplicitHeader: true}); err == nil {
		t.Fatal("implicit mode without length accepted")
	}
	r, _ := New(Config{SF: 7, Bandwidth: 125e3, ImplicitHeader: true, ImplicitLength: 4})
	if _, err := r.Modulate([]byte{1, 2, 3}, fs); err == nil {
		t.Fatal("wrong-length payload accepted in implicit mode")
	}
}
