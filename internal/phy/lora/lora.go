// Package lora implements a LoRa-style chirp-spread-spectrum PHY: chirp
// modulation with configurable spreading factor and bandwidth, Gray
// mapping, diagonal interleaving, Hamming forward error correction,
// payload whitening, an explicit header and a 16-bit payload CRC.
//
// The transmit chain mirrors the public reverse-engineered structure of the
// Semtech PHY (as in gr-lora): payload bytes are whitened, split into
// nibbles, Hamming-encoded at the configured code rate, interleaved
// diagonally in blocks of SF codewords, Gray-mapped and sent as cyclically
// shifted upchirps. Known simplifications relative to silicon, documented
// here and in DESIGN.md: the header block is coded at CR 4/8 but full SF
// (no low-data-rate reduction), and the two network-sync symbols are
// folded into the SFD downchirps.
package lora

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bits"
	"repro/internal/dsp"
	"repro/internal/phy"
)

// Config parameterizes the PHY. The zero value is not valid; use New.
type Config struct {
	SF          int     // spreading factor, 7..12
	Bandwidth   float64 // chirp bandwidth in Hz (125e3 typical)
	CR          int     // coding redundancy 1..4 (rate 4/(4+CR))
	PreambleLen int     // number of preamble upchirps (8 typical)
	MaxPayload  int     // largest payload accepted, bytes
	// ImplicitHeader enables LoRa's implicit (fixed-length) header mode:
	// the explicit header block is omitted on air and both ends agree on
	// the payload length out of band. ImplicitLength is that agreed length
	// (required when ImplicitHeader is set).
	ImplicitHeader bool
	ImplicitLength int
}

// Radio is a LoRa PHY instance. It is safe for concurrent use.
type Radio struct {
	cfg Config
}

// New validates cfg and returns a Radio. Defaults: CR=4, PreambleLen=8,
// MaxPayload=64.
func New(cfg Config) (*Radio, error) {
	if cfg.SF < 6 || cfg.SF > 12 {
		return nil, fmt.Errorf("lora: SF %d out of range 6..12", cfg.SF)
	}
	if cfg.Bandwidth <= 0 {
		return nil, fmt.Errorf("lora: bandwidth must be positive")
	}
	if cfg.CR == 0 {
		cfg.CR = 4
	}
	if cfg.CR < 1 || cfg.CR > 4 {
		return nil, fmt.Errorf("lora: CR %d out of range 1..4", cfg.CR)
	}
	if cfg.PreambleLen == 0 {
		cfg.PreambleLen = 8
	}
	if cfg.PreambleLen < 4 {
		return nil, fmt.Errorf("lora: preamble length %d too short (min 4)", cfg.PreambleLen)
	}
	if cfg.MaxPayload == 0 {
		cfg.MaxPayload = 64
	}
	if cfg.MaxPayload < 1 || cfg.MaxPayload > 255 {
		return nil, fmt.Errorf("lora: max payload %d out of range 1..255", cfg.MaxPayload)
	}
	if cfg.ImplicitHeader {
		if cfg.ImplicitLength < 1 || cfg.ImplicitLength > cfg.MaxPayload {
			return nil, fmt.Errorf("lora: implicit header requires a length in 1..%d", cfg.MaxPayload)
		}
	}
	return &Radio{cfg: cfg}, nil
}

// Default returns the configuration used throughout the paper reproduction:
// SF7, 125 kHz, CR 4/8.
func Default() *Radio {
	r, err := New(Config{SF: 7, Bandwidth: 125e3, CR: 4, PreambleLen: 8, MaxPayload: 64})
	if err != nil {
		panic(err)
	}
	return r
}

// Name implements phy.Technology.
func (r *Radio) Name() string { return "lora" }

// Class implements phy.Technology.
func (r *Radio) Class() phy.Class { return phy.ClassCSS }

// SpreadingFactor implements phy.ChirpTechnology.
func (r *Radio) SpreadingFactor() int { return r.cfg.SF }

// ChirpBandwidth implements phy.ChirpTechnology.
func (r *Radio) ChirpBandwidth() float64 { return r.cfg.Bandwidth }

// Config returns the active configuration.
func (r *Radio) Config() Config { return r.cfg }

// Info implements phy.Technology.
func (r *Radio) Info() phy.Info {
	return phy.Info{
		Name:       "lora",
		Modulation: "CSS",
		Sync:       "2.25 downchirp SFD",
		Preamble:   "sequence of 1s (upchirps)",
		MaxPayload: r.cfg.MaxPayload,
	}
}

// BitRate implements phy.Technology: SF · BW/2^SF · 4/(4+CR) bits/s.
func (r *Radio) BitRate() float64 {
	n := float64(int(1) << uint(r.cfg.SF))
	return float64(r.cfg.SF) * r.cfg.Bandwidth / n * 4 / float64(4+r.cfg.CR)
}

// osr returns the integer oversampling ratio for the given sample rate.
func (r *Radio) osr(fs float64) (int, error) {
	ratio := fs / r.cfg.Bandwidth
	o := int(math.Round(ratio))
	if o < 1 || math.Abs(ratio-float64(o)) > 1e-9 {
		return 0, fmt.Errorf("lora: sample rate %g is not an integer multiple of bandwidth %g", fs, r.cfg.Bandwidth)
	}
	return o, nil
}

// chips returns 2^SF.
func (r *Radio) chips() int { return 1 << uint(r.cfg.SF) }

// symbolSamples returns the samples per chirp symbol at fs.
func (r *Radio) symbolSamples(fs float64) int {
	o, err := r.osr(fs)
	if err != nil {
		panic(err)
	}
	return r.chips() * o
}

// chirp synthesizes one chirp symbol. up selects up or down chirp; sym is
// the cyclic shift (data symbol) in [0, 2^SF). The chirp has unit modulus.
func (r *Radio) chirp(up bool, sym int, fs float64) []complex128 {
	o, err := r.osr(fs)
	if err != nil {
		panic(err)
	}
	n := r.chips() * o
	bw := r.cfg.Bandwidth
	out := make([]complex128, n)
	phase := 0.0
	for i := 0; i < n; i++ {
		// instantaneous frequency, wrapping across the band
		idx := (sym*o + i) % n
		f := -bw/2 + bw*float64(idx)/float64(n)
		if !up {
			f = -f
		}
		s, c := math.Sincos(phase)
		out[i] = complex(c, s)
		phase += 2 * math.Pi * f / fs
		if phase > math.Pi {
			phase -= 2 * math.Pi
		} else if phase < -math.Pi {
			phase += 2 * math.Pi
		}
	}
	return out
}

// Preamble implements phy.Technology: PreambleLen base upchirps followed by
// the 2.25-symbol downchirp SFD.
func (r *Radio) Preamble(fs float64) []complex128 {
	n := r.symbolSamples(fs)
	up := r.chirp(true, 0, fs)
	down := r.chirp(false, 0, fs)
	out := make([]complex128, 0, (r.cfg.PreambleLen+3)*n)
	for i := 0; i < r.cfg.PreambleLen; i++ {
		out = append(out, up...)
	}
	out = append(out, down...)
	out = append(out, down...)
	out = append(out, down[:n/4]...)
	return out
}

// headerBytes builds the 3-byte explicit header: length, flags (CR and CRC
// present) and an XOR checksum.
func headerBytes(payloadLen, cr int) [3]byte {
	h0 := byte(payloadLen)
	h1 := byte(cr<<4) | 0x01
	return [3]byte{h0, h1, h0 ^ h1 ^ 0xA5}
}

// parseHeader validates and splits a decoded header.
func parseHeader(h []byte) (payloadLen, cr int, err error) {
	if len(h) < 3 {
		return 0, 0, fmt.Errorf("lora: short header")
	}
	if h[0]^h[1]^0xA5 != h[2] {
		return 0, 0, fmt.Errorf("lora: header checksum mismatch")
	}
	cr = int(h[1] >> 4)
	if cr < 1 || cr > 4 {
		return 0, 0, fmt.Errorf("lora: header CR %d invalid", cr)
	}
	return int(h[0]), cr, nil
}

// encodeBlockSymbols Hamming-encodes nibbles at redundancy cr, packs them
// into interleaver blocks of SF codewords (zero-padding the last block) and
// returns the Gray-demapped chirp symbols.
func (r *Radio) encodeBlockSymbols(nibbles []byte, cr int) []uint32 {
	sf := r.cfg.SF
	cw := 4 + cr
	var symbols []uint32
	for start := 0; start < len(nibbles); start += sf {
		block := make([]byte, 0, sf*cw)
		for row := 0; row < sf; row++ {
			var nib byte
			if start+row < len(nibbles) {
				nib = nibbles[start+row]
			}
			block = append(block, bits.HammingEncodeNibble(nib, cr)...)
		}
		inter := bits.DiagonalInterleave(block, sf, cw)
		for _, g := range bits.SymbolsFromBits(inter, sf) {
			symbols = append(symbols, bits.GrayDecode(g)%uint32(r.chips()))
		}
	}
	return symbols
}

// decodeBlockSymbols inverts encodeBlockSymbols for nBlocks blocks taken
// from symbols, returning the recovered nibbles plus FEC statistics.
func (r *Radio) decodeBlockSymbols(symbols []uint32, cr, nBlocks int) (nibbles []byte, corrections, failures int, err error) {
	sf := r.cfg.SF
	cw := 4 + cr
	if len(symbols) < nBlocks*cw {
		return nil, 0, 0, fmt.Errorf("lora: need %d symbols, have %d", nBlocks*cw, len(symbols))
	}
	for b := 0; b < nBlocks; b++ {
		gray := make([]uint32, cw)
		for i := 0; i < cw; i++ {
			gray[i] = bits.GrayEncode(symbols[b*cw+i])
		}
		inter := bits.BitsFromSymbols(gray, sf)
		block := bits.DiagonalDeinterleave(inter, sf, cw)
		for row := 0; row < sf; row++ {
			nib, corr, bad := bits.HammingDecodeNibble(block[row*cw:(row+1)*cw], cr)
			if corr {
				corrections++
			}
			if bad {
				failures++
			}
			nibbles = append(nibbles, nib)
		}
	}
	return nibbles, corrections, failures, nil
}

// nibblesOf splits bytes into nibbles, high nibble first.
func nibblesOf(data []byte) []byte {
	out := make([]byte, 0, 2*len(data))
	for _, b := range data {
		out = append(out, b>>4, b&0x0F)
	}
	return out
}

// bytesOf joins nibbles (high first); a trailing odd nibble is dropped.
func bytesOf(nibbles []byte) []byte {
	out := make([]byte, 0, len(nibbles)/2)
	for i := 0; i+1 < len(nibbles); i += 2 {
		out = append(out, nibbles[i]<<4|nibbles[i+1]&0x0F)
	}
	return out
}

// payloadSymbols returns the number of data chirp symbols for a payload of
// the given length at redundancy cr: one CR4/8 header block plus payload
// blocks (payload + CRC16 nibbles).
func (r *Radio) payloadSymbols(payloadLen, cr int) int {
	sf := r.cfg.SF
	headerSyms := 8 // one block at cr=4
	if r.cfg.ImplicitHeader {
		headerSyms = 0
	}
	plNibbles := 2 * (payloadLen + 2)
	blocks := (plNibbles + sf - 1) / sf
	return headerSyms + blocks*(4+cr)
}

// Modulate implements phy.Technology.
func (r *Radio) Modulate(payload []byte, fs float64) ([]complex128, error) {
	if len(payload) > r.cfg.MaxPayload {
		return nil, fmt.Errorf("lora: payload %d exceeds max %d", len(payload), r.cfg.MaxPayload)
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("lora: empty payload")
	}
	if _, err := r.osr(fs); err != nil {
		return nil, err
	}
	cr := r.cfg.CR
	var headerSymbols []uint32
	if r.cfg.ImplicitHeader {
		if len(payload) != r.cfg.ImplicitLength {
			return nil, fmt.Errorf("lora: implicit mode requires exactly %d payload bytes", r.cfg.ImplicitLength)
		}
	} else {
		hdr := headerBytes(len(payload), cr)
		headerSymbols = r.encodeBlockSymbols(nibblesOf(hdr[:]), 4)
	}

	crc := bits.CRC16CCITT(payload)
	body := append(append([]byte{}, payload...), byte(crc>>8), byte(crc))
	w := bits.NewLoRaWhitener()
	body = w.ApplyBytes(body)
	bodySymbols := r.encodeBlockSymbols(nibblesOf(body), cr)

	out := append([]complex128{}, r.Preamble(fs)...)
	for _, s := range headerSymbols {
		out = append(out, r.chirp(true, int(s), fs)...)
	}
	for _, s := range bodySymbols {
		out = append(out, r.chirp(true, int(s), fs)...)
	}
	return out, nil
}

// demodSymbol dechirps one aligned symbol window and returns the most
// likely symbol value together with the complex FFT value at its peak (used
// for CFO tracking and gain estimation).
func (r *Radio) demodSymbol(window, downRef []complex128) (uint32, complex128) {
	n := len(downRef)
	buf := make([]complex128, n)
	for i := 0; i < n && i < len(window); i++ {
		buf[i] = window[i] * downRef[i]
	}
	dsp.FFTInPlace(buf)
	chips := r.chips()
	best, bestMag, bestVal := 0, -1.0, complex(0, 0)
	for s := 0; s < chips; s++ {
		alias := (s - chips + n) % n
		v := buf[s] + buf[alias]
		m := real(v)*real(v) + imag(v)*imag(v)
		if m > bestMag {
			best, bestMag, bestVal = s, m, v
		}
	}
	return uint32(best), bestVal
}

// sync locates the packet start using non-coherent per-symbol correlation:
// the magnitudes of single upchirp correlations are summed at preamble
// spacing, plus downchirp correlations at the SFD positions. Summing
// magnitudes (not complex values) makes the metric robust to carrier
// frequency offset, and the opposite-slope SFD resolves the preamble's
// symbol-period ambiguity. A small local refinement of the up- and
// down-chirp alignments then decouples timing from CFO (a frequency offset
// shifts upchirp peaks one way and downchirp peaks the other).
func (r *Radio) sync(rx []complex128, fs float64) (start int, ok bool) {
	n := r.symbolSamples(fs)
	p := r.cfg.PreambleLen
	mUp := dsp.NormalizedCorrelate(rx, r.chirp(true, 0, fs))
	mDown := dsp.NormalizedCorrelate(rx, r.chirp(false, 0, fs))
	span := (p + 2) * n
	limit := len(mUp) - span
	if limit <= 0 || len(mDown) < span {
		return 0, false
	}
	score := func(t int) float64 {
		var s float64
		for k := 0; k < p; k++ {
			s += mUp[t+k*n]
		}
		s += mDown[t+p*n] + mDown[t+(p+1)*n]
		return s / float64(p+2)
	}
	bestT, bestS := -1, 0.0
	for t := 0; t <= limit; t++ {
		if s := score(t); s > bestS {
			bestT, bestS = t, s
		}
	}
	if bestT < 0 || bestS < 0.06 {
		return 0, false
	}
	// Refine: CFO displaces upchirp peaks by +δ and downchirp peaks by -δ
	// samples; the true start is the midpoint of the two refined alignments.
	refine := func(metric []float64, offsets []int, around, radius int) int {
		best, bestV := around, -1.0
		for t := around - radius; t <= around+radius; t++ {
			if t < 0 {
				continue
			}
			var v float64
			valid := true
			for _, o := range offsets {
				if t+o >= len(metric) {
					valid = false
					break
				}
				v += metric[t+o]
			}
			if valid && v > bestV {
				best, bestV = t, v
			}
		}
		return best
	}
	upOffsets := make([]int, p)
	for k := range upOffsets {
		upOffsets[k] = k * n
	}
	downOffsets := []int{p * n, (p + 1) * n}
	o, _ := r.osr(fs)
	radius := 2 * o
	tUp := refine(mUp, upOffsets, bestT, radius)
	tDown := refine(mDown, downOffsets, bestT, radius)
	return (tUp + tDown) / 2, true
}

// Demodulate implements phy.Technology. The packet start must lie within
// the window; sync is recovered by correlating against the full preamble.
func (r *Radio) Demodulate(rx []complex128, fs float64) (*phy.Frame, error) {
	if _, err := r.osr(fs); err != nil {
		return nil, err
	}
	n := r.symbolSamples(fs)
	pre := r.Preamble(fs)
	if len(rx) < len(pre)+8*n {
		return nil, fmt.Errorf("%w: lora window too short", phy.ErrNoFrame)
	}
	start, ok := r.sync(rx, fs)
	if !ok {
		return nil, fmt.Errorf("%w: lora preamble not found", phy.ErrNoFrame)
	}

	downRef := dsp.Conj(r.chirp(true, 0, fs))

	// Coarse CFO: with timing fixed by the up/down-chirp sync, the
	// dechirped preamble peak bin measures the integer part of the carrier
	// offset in units of BW/2^SF.
	chips := r.chips()
	binWidth := r.cfg.Bandwidth / float64(chips)
	bins := make([]int, 0, r.cfg.PreambleLen)
	for k := 0; k < r.cfg.PreambleLen; k++ {
		off := start + k*n
		if off+n > len(rx) {
			break
		}
		s, _ := r.demodSymbol(rx[off:off+n], downRef)
		b := int(s)
		if b > chips/2 {
			b -= chips
		}
		bins = append(bins, b)
	}
	sort.Ints(bins)
	coarse := 0.0
	if len(bins) > 0 {
		coarse = float64(bins[len(bins)/2]) * binWidth
	}

	// Fine CFO from the phase progression of the dechirped preamble peaks.
	workAll := dsp.Clone(rx[start:])
	dsp.Mix(workAll, -coarse, 0, fs)
	var acc, prev complex128
	for k := 0; k < r.cfg.PreambleLen; k++ {
		off := k * n
		if off+n > len(workAll) {
			break
		}
		_, v := r.demodSymbol(workAll[off:off+n], downRef)
		if k > 0 {
			acc += v * complex(real(prev), -imag(prev))
		}
		prev = v
	}
	symbolDur := float64(n) / fs
	fine := math.Atan2(imag(acc), real(acc)) / (2 * math.Pi * symbolDur)
	cfo := coarse + fine

	// CFO-correct a working copy from the sync point onward.
	work := dsp.Clone(rx[start:])
	dsp.Mix(work, -cfo, 0, fs)

	dataStart := len(pre)
	readSymbols := func(from, count int) ([]uint32, error) {
		if from+count*n > len(work) {
			return nil, fmt.Errorf("%w: lora window truncated", phy.ErrNoFrame)
		}
		out := make([]uint32, count)
		for i := 0; i < count; i++ {
			s, _ := r.demodSymbol(work[from+i*n:from+(i+1)*n], downRef)
			out[i] = s
		}
		return out, nil
	}

	var payloadLen, cr, hCorr int
	bodyStart := dataStart
	if r.cfg.ImplicitHeader {
		payloadLen, cr = r.cfg.ImplicitLength, r.cfg.CR
	} else {
		headerSyms, err := readSymbols(dataStart, 8)
		if err != nil {
			return nil, err
		}
		headerNibbles, hc, hFail, err := r.decodeBlockSymbols(headerSyms, 4, 1)
		if err != nil {
			return nil, err
		}
		hCorr = hc
		hdr := bytesOf(headerNibbles)
		payloadLen, cr, err = parseHeader(hdr)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", phy.ErrNoFrame, err)
		}
		if payloadLen == 0 || payloadLen > r.cfg.MaxPayload {
			return nil, fmt.Errorf("%w: lora header length %d invalid", phy.ErrNoFrame, payloadLen)
		}
		_ = hFail
		bodyStart = dataStart + 8*n
	}

	sf := r.cfg.SF
	plNibbles := 2 * (payloadLen + 2)
	blocks := (plNibbles + sf - 1) / sf
	bodySyms, err := readSymbols(bodyStart, blocks*(4+cr))
	if err != nil {
		return nil, err
	}
	bodyNibbles, bCorr, _, err := r.decodeBlockSymbols(bodySyms, cr, blocks)
	if err != nil {
		return nil, err
	}
	body := bytesOf(bodyNibbles)
	if len(body) < payloadLen+2 {
		return nil, fmt.Errorf("%w: lora body truncated", phy.ErrNoFrame)
	}
	w := bits.NewLoRaWhitener()
	body = w.ApplyBytes(body[:payloadLen+2])
	payload := body[:payloadLen]
	gotCRC := uint16(body[payloadLen])<<8 | uint16(body[payloadLen+1])
	crcOK := gotCRC == bits.CRC16CCITT(payload)

	frame := &phy.Frame{
		Tech:      "lora",
		Payload:   payload,
		CRCOK:     crcOK,
		Bits:      payloadLen * 8,
		Offset:    start,
		CFO:       cfo,
		Corrected: hCorr + bCorr,
	}
	// Complex gain estimate: project rx onto the reconstructed waveform.
	if ref, merr := r.Modulate(payload, fs); merr == nil && crcOK {
		end := start + len(ref)
		if end > len(rx) {
			end = len(rx)
		}
		seg := rx[start:end]
		refSeg := ref[:len(seg)]
		var proj complex128
		for i := range seg {
			proj += seg[i] * complex(real(refSeg[i]), -imag(refSeg[i]))
		}
		if e := dsp.Energy(refSeg); e > 0 {
			frame.Gain = proj / complex(e, 0)
		}
		frame.SNRdB = dsp.DB(dsp.EstimateSNR(seg, refSeg))
	}
	return frame, nil
}

// MaxPacketSamples implements phy.Technology.
func (r *Radio) MaxPacketSamples(fs float64) int {
	n := r.symbolSamples(fs)
	preSyms := float64(r.cfg.PreambleLen) + 2.25
	dataSyms := r.payloadSymbols(r.cfg.MaxPayload, r.cfg.CR)
	return int(math.Ceil(preSyms*float64(n))) + dataSyms*n
}

// Upchirp exposes the base upchirp waveform (symbol 0) for use by the
// KILL-CSS filter and by tests.
func (r *Radio) Upchirp(fs float64) []complex128 { return r.chirp(true, 0, fs) }

// Downchirp exposes the base downchirp waveform.
func (r *Radio) Downchirp(fs float64) []complex128 { return r.chirp(false, 0, fs) }

var _ phy.ChirpTechnology = (*Radio)(nil)
