package zwave

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
	"repro/internal/phy"
	"repro/internal/rng"
)

const fs = 1e6

func TestDefaults(t *testing.T) {
	r := Default()
	c := r.Config()
	if c.Rate != R2 || c.Deviation != 20e3 || c.PreambleLen != 8 || c.MaxPayload != 64 || c.CenterOffset != 250e3 {
		t.Fatalf("defaults %+v", c)
	}
	if r.BitRate() != 40e3 {
		t.Fatalf("R2 bit rate %v", r.BitRate())
	}
}

func TestRateString(t *testing.T) {
	if R1.String() != "R1" || R2.String() != "R2" {
		t.Fatal("rate names")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{PreambleLen: 1}); err == nil {
		t.Fatal("short preamble accepted")
	}
	if _, err := New(Config{MaxPayload: 200}); err == nil {
		t.Fatal("oversized MaxPayload accepted")
	}
}

func TestIdentityAndTones(t *testing.T) {
	r := Default()
	if r.Name() != "zwave" || r.Class() != phy.ClassFSK {
		t.Fatal("identity")
	}
	tones := r.Tones()
	if tones[0] != 230e3 || tones[1] != 270e3 {
		t.Fatalf("tones %v", tones)
	}
}

func TestRoundTripR2(t *testing.T) {
	r := Default()
	payload := []byte("basic set on")
	sig, err := r.Modulate(payload, fs)
	if err != nil {
		t.Fatal(err)
	}
	rx := make([]complex128, len(sig)+3000)
	dsp.Add(rx, sig, 999)
	frame, err := r.Demodulate(rx, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
		t.Fatalf("payload %q crc %v", frame.Payload, frame.CRCOK)
	}
	if frame.Offset < 999-2 || frame.Offset > 999+2 {
		t.Fatalf("offset %d, want ~999", frame.Offset)
	}
}

func TestRoundTripR1Manchester(t *testing.T) {
	r, err := New(Config{Rate: R1})
	if err != nil {
		t.Fatal(err)
	}
	if r.BitRate() != 9.6e3 {
		t.Fatalf("R1 bit rate %v", r.BitRate())
	}
	payload := []byte{0x20, 0x01, 0xFF}
	sig, err := r.Modulate(payload, fs)
	if err != nil {
		t.Fatal(err)
	}
	rx := make([]complex128, len(sig)+2000)
	dsp.Add(rx, sig, 500)
	frame, err := r.Demodulate(rx, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
		t.Fatalf("R1 payload %x", frame.Payload)
	}
}

func TestRoundTripRandom(t *testing.T) {
	r := Default()
	gen := rng.New(21)
	f := func(lenRaw uint8) bool {
		n := int(lenRaw%32) + 1
		payload := make([]byte, n)
		gen.Bytes(payload)
		sig, err := r.Modulate(payload, fs)
		if err != nil {
			return false
		}
		rx := make([]complex128, len(sig)+1500)
		dsp.Add(rx, sig, 400)
		frame, err := r.Demodulate(rx, fs)
		if err != nil {
			return false
		}
		return frame.CRCOK && bytes.Equal(frame.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripNoise(t *testing.T) {
	r := Default()
	gen := rng.New(22)
	payload := []byte{7, 6, 5, 4}
	sig, _ := r.Modulate(payload, fs)
	for _, snrDB := range []float64{15, 10} {
		rx := make([]complex128, len(sig)+2000)
		for i := range rx {
			rx[i] = gen.Complex()
		}
		s := dsp.Scale(dsp.Clone(sig), math.Sqrt(dsp.FromDB(snrDB)))
		dsp.Add(rx, s, 800)
		frame, err := r.Demodulate(rx, fs)
		if err != nil {
			t.Fatalf("snr %v: %v", snrDB, err)
		}
		if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
			t.Fatalf("snr %v: payload %x", snrDB, frame.Payload)
		}
	}
}

func TestHomeIDEmbedded(t *testing.T) {
	r, err := New(Config{HomeID: 0xDEADBEEF, NodeID: 7})
	if err != nil {
		t.Fatal(err)
	}
	m := r.mpdu([]byte{1}, 0xFF)
	if m[0] != 0xDE || m[1] != 0xAD || m[2] != 0xBE || m[3] != 0xEF {
		t.Fatalf("home id bytes %x", m[:4])
	}
	if m[4] != 7 {
		t.Fatalf("node id %d", m[4])
	}
	// checksum covers all preceding bytes
	var x byte = 0xFF
	for _, b := range m[:len(m)-1] {
		x ^= b
	}
	if m[len(m)-1] != x {
		t.Fatal("checksum mismatch")
	}
}

func TestDemodulateNoiseRejected(t *testing.T) {
	r := Default()
	gen := rng.New(23)
	rx := make([]complex128, 50000)
	for i := range rx {
		rx[i] = gen.Complex()
	}
	if frame, err := r.Demodulate(rx, fs); err == nil && frame.CRCOK {
		t.Fatal("noise decoded as valid frame")
	}
}

func TestShortWindowError(t *testing.T) {
	r := Default()
	if _, err := r.Demodulate(make([]complex128, 64), fs); !errors.Is(err, phy.ErrNoFrame) {
		t.Fatalf("want ErrNoFrame, got %v", err)
	}
}

func TestMaxPacketSamplesCovers(t *testing.T) {
	r := Default()
	sig, err := r.Modulate(make([]byte, 64), fs)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxPacketSamples(fs) < len(sig) {
		t.Fatalf("MaxPacketSamples %d < %d", r.MaxPacketSamples(fs), len(sig))
	}
}

func BenchmarkModulate16B(b *testing.B) {
	r := Default()
	payload := make([]byte, 16)
	for i := 0; i < b.N; i++ {
		if _, err := r.Modulate(payload, fs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDemodulate16B(b *testing.B) {
	r := Default()
	payload := make([]byte, 16)
	sig, _ := r.Modulate(payload, fs)
	rx := make([]complex128, len(sig)+500)
	dsp.Add(rx, sig, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Demodulate(rx, fs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRoundTripR3(t *testing.T) {
	r, err := New(Config{Rate: R3})
	if err != nil {
		t.Fatal(err)
	}
	if r.BitRate() != 100e3 || r.Config().Deviation != 29e3 {
		t.Fatalf("R3 profile: rate %v dev %v", r.BitRate(), r.Config().Deviation)
	}
	if R3.String() != "R3" {
		t.Fatal("rate name")
	}
	payload := []byte("fast zwave")
	sig, err := r.Modulate(payload, fs)
	if err != nil {
		t.Fatal(err)
	}
	rx := make([]complex128, len(sig)+2000)
	dsp.Add(rx, sig, 600)
	frame, err := r.Demodulate(rx, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
		t.Fatalf("R3 payload %x", frame.Payload)
	}
}
