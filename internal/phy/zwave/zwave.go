// Package zwave implements a Z-Wave PHY following ITU-T G.9959: binary FSK
// at the R2 rate (40 kb/s, ±20 kHz deviation, NRZ coding) or the R1 rate
// (9.6 kb/s, Manchester coded), with the G.9959 MPDU framing — 0x55
// preamble, start-of-frame delimiter, HomeID/NodeID addressing and the
// 8-bit XOR frame checksum seeded with 0xFF. Bits are transmitted
// most-significant first, per the recommendation.
package zwave

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/dsp"
	"repro/internal/phy"
	"repro/internal/phy/fsk"
)

// Rate selects a G.9959 data rate profile.
type Rate int

// G.9959 rate profiles.
const (
	R2 Rate = iota // 40 kb/s, NRZ
	R1             // 9.6 kb/s, Manchester
	R3             // 100 kb/s, NRZ (GFSK, ±29 kHz deviation)
)

// String names the rate profile.
func (r Rate) String() string {
	switch r {
	case R1:
		return "R1"
	case R3:
		return "R3"
	default:
		return "R2"
	}
}

// Config parameterizes the PHY. Zero values take defaults via New.
type Config struct {
	Rate      Rate
	Deviation float64 // Hz (default 20 kHz)
	// CenterOffset places the carrier this many Hz from the capture
	// center. The default +250 kHz mirrors the EU 868 MHz band plan, where
	// Z-Wave (868.40/868.42 MHz) sits a few hundred kHz from the
	// LoRa/802.15.4g channels, all inside the gateway's 1 MHz window:
	// collisions overlap fully in time while the FSK energy stays at
	// distinct frequencies — the property KILL-FREQUENCY exploits.
	CenterOffset float64
	PreambleLen  int    // preamble bytes of 0x55 (default 8; G.9959 requires ≥10 for R2 on air, shortened here for airtime)
	MaxPayload   int    // bytes of MPDU payload (default 64)
	HomeID       uint32 // network identifier placed in transmitted frames
	NodeID       byte   // source node identifier
}

// Radio is a Z-Wave PHY instance, safe for concurrent use.
type Radio struct {
	cfg   Config
	modem fsk.Modem
}

// sof is the start-of-frame delimiter byte.
const sof = 0xF0

// New validates cfg, fills defaults, and returns a Radio.
func New(cfg Config) (*Radio, error) {
	if cfg.Deviation == 0 {
		cfg.Deviation = 20e3
		if cfg.Rate == R3 {
			cfg.Deviation = 29e3
		}
	}
	if cfg.CenterOffset == 0 {
		cfg.CenterOffset = 250e3
	}
	if cfg.PreambleLen == 0 {
		cfg.PreambleLen = 8
	}
	if cfg.MaxPayload == 0 {
		cfg.MaxPayload = 64
	}
	if cfg.HomeID == 0 {
		cfg.HomeID = 0xC0FFEE01
	}
	if cfg.NodeID == 0 {
		cfg.NodeID = 1
	}
	if cfg.Deviation <= 0 {
		return nil, fmt.Errorf("zwave: deviation must be positive")
	}
	if cfg.PreambleLen < 2 {
		return nil, fmt.Errorf("zwave: preamble length %d too short", cfg.PreambleLen)
	}
	if cfg.MaxPayload < 1 || cfg.MaxPayload > 170 {
		return nil, fmt.Errorf("zwave: max payload %d out of range", cfg.MaxPayload)
	}
	bitRate := 40e3
	switch cfg.Rate {
	case R1:
		bitRate = 9.6e3 * 2 // chip rate after Manchester
	case R3:
		bitRate = 100e3
	}
	return &Radio{
		cfg:   cfg,
		modem: fsk.Modem{BitRate: bitRate, Deviation: cfg.Deviation},
	}, nil
}

// Default returns the R2 configuration used in the paper reproduction.
func Default() *Radio {
	r, err := New(Config{})
	if err != nil {
		panic(err)
	}
	return r
}

// Name implements phy.Technology.
func (r *Radio) Name() string { return "zwave" }

// Class implements phy.Technology.
func (r *Radio) Class() phy.Class { return phy.ClassFSK }

// Config returns the active configuration.
func (r *Radio) Config() Config { return r.cfg }

// Tones implements phy.ToneTechnology.
func (r *Radio) Tones() []float64 {
	return []float64{r.cfg.CenterOffset - r.cfg.Deviation, r.cfg.CenterOffset + r.cfg.Deviation}
}

// Info implements phy.Technology.
func (r *Radio) Info() phy.Info {
	return phy.Info{
		Name:       "zwave",
		Modulation: "BFSK,GFSK",
		Sync:       "m bytes",
		Preamble:   "'01010101'",
		MaxPayload: r.cfg.MaxPayload,
	}
}

// BitRate implements phy.Technology: payload bits per second (after line
// coding).
func (r *Radio) BitRate() float64 {
	switch r.cfg.Rate {
	case R1:
		return 9.6e3
	case R3:
		return 100e3
	default:
		return 40e3
	}
}

// lineCode applies the rate profile's line coding to logical bits.
func (r *Radio) lineCode(logical []byte) []byte {
	if r.cfg.Rate == R1 {
		return bits.Manchester(logical)
	}
	return logical
}

// lineDecode inverts lineCode.
func (r *Radio) lineDecode(air []byte) []byte {
	if r.cfg.Rate == R1 {
		decoded, _ := bits.ManchesterDecode(air)
		return decoded
	}
	return air
}

// airBitsPerLogical is the line-code expansion factor.
func (r *Radio) airBitsPerLogical() int {
	if r.cfg.Rate == R1 {
		return 2
	}
	return 1
}

// headerAirBits returns the on-air bits of preamble + SOF.
func (r *Radio) headerAirBits() []byte {
	hdr := make([]byte, 0, r.cfg.PreambleLen+1)
	for i := 0; i < r.cfg.PreambleLen; i++ {
		hdr = append(hdr, 0x55)
	}
	hdr = append(hdr, sof)
	return r.lineCode(bits.Unpack(hdr))
}

// Preamble implements phy.Technology.
func (r *Radio) Preamble(fs float64) []complex128 {
	w, err := r.modem.ModulateBits(r.headerAirBits(), fs)
	if err != nil {
		panic(err)
	}
	return dsp.Mix(w, r.cfg.CenterOffset, 0, fs)
}

// mpdu assembles the G.9959-style MPDU for a payload: HomeID(4) SrcID(1)
// FrameControl(2) Length(1) DstID(1) payload checksum(1). Length covers the
// whole MPDU including the checksum.
func (r *Radio) mpdu(payload []byte, dst byte) []byte {
	total := 4 + 1 + 2 + 1 + 1 + len(payload) + 1
	out := make([]byte, 0, total)
	out = append(out,
		byte(r.cfg.HomeID>>24), byte(r.cfg.HomeID>>16), byte(r.cfg.HomeID>>8), byte(r.cfg.HomeID),
		r.cfg.NodeID,
		0x41, 0x01, // frame control: singlecast, sequence 1
		byte(total),
		dst,
	)
	out = append(out, payload...)
	out = append(out, bits.CRC8XOR(0xFF, out))
	return out
}

// Modulate implements phy.Technology. Frames are addressed to node 0xFF
// (broadcast).
func (r *Radio) Modulate(payload []byte, fs float64) ([]complex128, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("zwave: empty payload")
	}
	if len(payload) > r.cfg.MaxPayload {
		return nil, fmt.Errorf("zwave: payload %d exceeds max %d", len(payload), r.cfg.MaxPayload)
	}
	return r.modulateMPDU(r.mpdu(payload, 0xFF), fs)
}

// modulateMPDU produces the waveform of an already-assembled MPDU; it is
// used both by Modulate and to reconstruct a received frame bit-exactly
// (including its original HomeID) for interference cancellation.
func (r *Radio) modulateMPDU(mpdu []byte, fs float64) ([]complex128, error) {
	air := append([]byte{}, r.headerAirBits()...)
	air = append(air, r.lineCode(bits.Unpack(mpdu))...)
	w, err := r.modem.ModulateBits(air, fs)
	if err != nil {
		return nil, err
	}
	return dsp.Mix(w, r.cfg.CenterOffset, 0, fs), nil
}

// modulateBaseMPDU is modulateMPDU without the center-offset shift, used
// for gain estimation against a downshifted receive window.
func (r *Radio) modulateBaseMPDU(mpdu []byte, fs float64) ([]complex128, error) {
	air := append([]byte{}, r.headerAirBits()...)
	air = append(air, r.lineCode(bits.Unpack(mpdu))...)
	return r.modem.ModulateBits(air, fs)
}

// MaxPacketSamples implements phy.Technology.
func (r *Radio) MaxPacketSamples(fs float64) int {
	mpduBytes := 4 + 1 + 2 + 1 + 1 + r.cfg.MaxPayload + 1
	nAir := len(r.headerAirBits()) + 8*mpduBytes*r.airBitsPerLogical()
	return r.modem.NumSamples(nAir, fs)
}

// Demodulate implements phy.Technology.
func (r *Radio) Demodulate(rx []complex128, fs float64) (*phy.Frame, error) {
	if err := r.modem.Validate(fs); err != nil {
		return nil, err
	}
	if r.cfg.CenterOffset != 0 {
		rx = dsp.Mix(dsp.Clone(rx), -r.cfg.CenterOffset, 0, fs)
	}
	pre, err := r.modem.ModulateBits(r.headerAirBits(), fs)
	if err != nil {
		return nil, err
	}
	minMPDU := 10 * 8 * r.airBitsPerLogical()
	if len(rx) < len(pre)+r.modem.NumSamples(minMPDU, fs) {
		return nil, fmt.Errorf("%w: zwave window too short", phy.ErrNoFrame)
	}
	disc := r.modem.Discriminate(rx, fs)
	start, quality := r.modem.SyncDisc(disc, r.headerAirBits(), fs)
	if quality < 0.35 {
		return nil, fmt.Errorf("%w: zwave preamble not found (quality %.3f)", phy.ErrNoFrame, quality)
	}
	cfo := r.modem.EstimateCFO(disc, start, 8*r.cfg.PreambleLen*r.airBitsPerLogical(), fs)

	hdrAir := len(r.headerAirBits())
	mpduStart := start + r.modem.NumSamples(hdrAir, fs)
	minLen := 4 + 1 + 2 + 1 + 1 + 1

	// parse runs the MPDU state machine over one bit-decision strategy.
	parse := func(demodBits func(at, n int) []byte) (mpdu []byte, crcOK bool, err error) {
		// Demodulate the fixed 8-byte MPDU prefix to learn the length.
		prefixAir := 8 * 8 * r.airBitsPerLogical()
		rawPrefix := demodBits(mpduStart, prefixAir)
		prefix := bits.Pack(r.lineDecode(rawPrefix))
		if len(prefix) < 8 {
			return nil, false, fmt.Errorf("%w: zwave prefix truncated", phy.ErrNoFrame)
		}
		total := int(prefix[7])
		if total < minLen || total > minLen+r.cfg.MaxPayload {
			return nil, false, fmt.Errorf("%w: zwave MPDU length %d invalid", phy.ErrNoFrame, total)
		}
		mpduAir := 8 * total * r.airBitsPerLogical()
		raw := demodBits(mpduStart, mpduAir)
		mpdu = bits.Pack(r.lineDecode(raw))
		if len(mpdu) < total {
			return nil, false, fmt.Errorf("%w: zwave MPDU truncated", phy.ErrNoFrame)
		}
		mpdu = mpdu[:total]
		return mpdu, bits.CRC8XOR(0xFF, mpdu[:total-1]) == mpdu[total-1], nil
	}
	// Primary: FM discriminator; fallback: noncoherent tone detection
	// (robust to kill-filter residue from collided technologies).
	mpdu, crcOK, perr := parse(func(at, n int) []byte {
		return r.modem.DemodulateBits(disc, at, n, fs, cfo)
	})
	if perr != nil || !crcOK {
		m2, ok2, err2 := parse(func(at, n int) []byte {
			return r.modem.DemodulateBitsTone(rx, at, n, fs, cfo)
		})
		if err2 == nil && ok2 {
			mpdu, crcOK, perr = m2, ok2, nil
		}
	}
	if perr != nil {
		return nil, perr
	}
	total := len(mpdu)
	payload := mpdu[9 : total-1]

	frame := &phy.Frame{
		Tech:    "zwave",
		Payload: append([]byte{}, payload...),
		CRCOK:   crcOK,
		Bits:    len(payload) * 8,
		Offset:  start,
		CFO:     cfo,
	}
	if crcOK {
		// rx is the downshifted view here, so reconstruct at baseband.
		if ref, err := r.modulateBaseMPDU(mpdu, fs); err == nil {
			end := start + len(ref)
			if end > len(rx) {
				end = len(rx)
			}
			seg := rx[start:end]
			refSeg := ref[:len(seg)]
			var proj complex128
			for i := range seg {
				proj += seg[i] * complex(real(refSeg[i]), -imag(refSeg[i]))
			}
			if e := dsp.Energy(refSeg); e > 0 {
				frame.Gain = proj / complex(e, 0)
			}
			frame.SNRdB = dsp.DB(dsp.EstimateSNR(seg, refSeg))
		}
	}
	return frame, nil
}

var _ phy.ToneTechnology = (*Radio)(nil)
