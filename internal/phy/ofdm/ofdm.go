// Package ofdm implements a WiFi HaLow-class (IEEE 802.11ah 1 MHz mode)
// OFDM PHY: a 32-point FFT at 31.25 kHz subcarrier spacing (so one symbol
// spans exactly the gateway's 1 MHz capture), quarter-length cyclic
// prefix, BPSK data subcarriers, two pilot subcarriers for common-phase
// tracking, and a repeated long-training-field preamble used for
// synchronization, carrier recovery and per-subcarrier channel
// equalization.
//
// Documented simplifications versus 802.11ah: no convolutional coding (the
// frame carries a CRC-16 instead; MCS0's rate-1/2 coding would halve the
// bit rate), no short training field (the detector's correlation replaces
// AGC-oriented STF use), and a one-byte SIG field protected by repetition.
// These keep the package focused on what the paper needs OFDM for — a
// Table-1 technology whose energy is spread across many subcarriers,
// outside the reach of the three kill-filter classes.
package ofdm

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/bits"
	"repro/internal/dsp"
	"repro/internal/phy"
)

// PHY constants for the 1 MHz (32-FFT) mode.
const (
	nFFT    = 32
	cpLen   = 8 // quarter symbol
	symLen  = nFFT + cpLen
	nPilots = 2
)

// dataCarriers lists the signed subcarrier indices carrying BPSK data
// (DC and band edges are null, ±7 carry pilots): 24 data subcarriers, as
// in the 802.11ah 1 MHz mode.
var dataCarriers = []int{
	-13, -12, -11, -10, -9, -8, -6, -5, -4, -3, -2, -1,
	1, 2, 3, 4, 5, 6, 8, 9, 10, 11, 12, 13,
}

// pilotCarriers are the pilot subcarrier indices; both carry +1 BPSK.
var pilotCarriers = []int{-7, 7}

// Config parameterizes the PHY. Zero values take defaults via New.
type Config struct {
	Bandwidth  float64 // subcarrier spacing × nFFT; default 1e6 (the 1 MHz mode)
	MaxPayload int     // bytes (default 96)
	LTFRepeats int     // repeated known training symbols in the preamble (default 4)
}

// Radio is an OFDM PHY instance, safe for concurrent use.
type Radio struct {
	cfg Config
	ltf []complex128 // frequency-domain training values on data+pilot carriers
}

// New validates cfg, fills defaults, and returns a Radio.
func New(cfg Config) (*Radio, error) {
	if cfg.Bandwidth == 0 {
		cfg.Bandwidth = 1e6
	}
	if cfg.MaxPayload == 0 {
		cfg.MaxPayload = 96
	}
	if cfg.LTFRepeats == 0 {
		cfg.LTFRepeats = 4
	}
	if cfg.Bandwidth <= 0 {
		return nil, fmt.Errorf("ofdm: bandwidth must be positive")
	}
	if cfg.MaxPayload < 1 || cfg.MaxPayload > 255 {
		return nil, fmt.Errorf("ofdm: max payload %d out of range", cfg.MaxPayload)
	}
	if cfg.LTFRepeats < 2 {
		return nil, fmt.Errorf("ofdm: need at least 2 LTF repeats for CFO estimation")
	}
	r := &Radio{cfg: cfg}
	// Deterministic ±1 training sequence on every used carrier (an
	// 802.11-style LTF): generated from a small LFSR so it is balanced and
	// spectrally flat.
	w := bits.NewDC9Whitener()
	used := len(dataCarriers) + nPilots
	r.ltf = make([]complex128, used)
	for i := range r.ltf {
		if w.NextBit() == 1 {
			r.ltf[i] = 1
		} else {
			r.ltf[i] = -1
		}
	}
	return r, nil
}

// Default returns the 1 MHz-mode configuration.
func Default() *Radio {
	r, err := New(Config{})
	if err != nil {
		panic(err)
	}
	return r
}

// Name implements phy.Technology.
func (r *Radio) Name() string { return "halow" }

// Class implements phy.Technology.
func (r *Radio) Class() phy.Class { return phy.ClassOFDM }

// Config returns the active configuration.
func (r *Radio) Config() Config { return r.cfg }

// Info implements phy.Technology.
func (r *Radio) Info() phy.Info {
	return phy.Info{
		Name:       "wifi-halow",
		Modulation: "BPSK-OFDM",
		Sync:       "configuration specific",
		Preamble:   "configuration specific",
		MaxPayload: r.cfg.MaxPayload,
	}
}

// BitRate implements phy.Technology: 24 BPSK bits per (nFFT+cp)/BW seconds.
func (r *Radio) BitRate() float64 {
	symDur := float64(symLen) / r.cfg.Bandwidth
	return float64(len(dataCarriers)) / symDur
}

// osr returns the integer oversampling ratio of the capture relative to
// the OFDM bandwidth.
func (r *Radio) osr(fs float64) (int, error) {
	ratio := fs / r.cfg.Bandwidth
	o := int(math.Round(ratio))
	if o < 1 || math.Abs(ratio-float64(o)) > 1e-9 {
		return 0, fmt.Errorf("ofdm: sample rate %g is not an integer multiple of bandwidth %g", fs, r.cfg.Bandwidth)
	}
	return o, nil
}

// carrierBin maps a signed subcarrier index to an FFT bin of size n.
func carrierBin(c, n int) int {
	return ((c % n) + n) % n
}

// synthesizeSymbol renders one OFDM symbol (CP + body) from frequency-
// domain values on the used carriers, at the base rate, then the caller
// interpolates if oversampled.
func synthesizeSymbol(values []complex128) []complex128 {
	spec := make([]complex128, nFFT)
	idx := 0
	for _, c := range dataCarriers {
		spec[carrierBin(c, nFFT)] = values[idx]
		idx++
	}
	for _, c := range pilotCarriers {
		spec[carrierBin(c, nFFT)] = values[idx]
		idx++
	}
	body := dsp.IFFT(spec)
	out := make([]complex128, 0, symLen)
	out = append(out, body[nFFT-cpLen:]...)
	out = append(out, body...)
	return out
}

// frameBits assembles the transmitted bit stream: SIG (length byte
// repeated 3×, majority-protected) + payload + CRC16, whitened.
func (r *Radio) frameBits(payload []byte) []byte {
	crc := bits.CRC16CCITT(payload)
	frame := []byte{byte(len(payload)), byte(len(payload)), byte(len(payload))}
	frame = append(frame, payload...)
	frame = append(frame, byte(crc>>8), byte(crc))
	w := bits.NewLoRaWhitener()
	return w.Apply(bits.Unpack(frame))
}

// Modulate implements phy.Technology.
func (r *Radio) Modulate(payload []byte, fs float64) ([]complex128, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("ofdm: empty payload")
	}
	if len(payload) > r.cfg.MaxPayload {
		return nil, fmt.Errorf("ofdm: payload %d exceeds max %d", len(payload), r.cfg.MaxPayload)
	}
	osr, err := r.osr(fs)
	if err != nil {
		return nil, err
	}
	stream := r.frameBits(payload)
	nData := len(dataCarriers)
	var base []complex128
	// LTF preamble: repeated known symbols.
	for k := 0; k < r.cfg.LTFRepeats; k++ {
		base = append(base, synthesizeSymbol(r.ltf)...)
	}
	// Data symbols: BPSK on data carriers, +1 pilots.
	for at := 0; at < len(stream); at += nData {
		values := make([]complex128, nData+nPilots)
		for i := 0; i < nData; i++ {
			bit := byte(0)
			if at+i < len(stream) {
				bit = stream[at+i]
			}
			if bit == 1 {
				values[i] = -1
			} else {
				values[i] = 1
			}
		}
		values[nData] = 1
		values[nData+1] = 1
		base = append(base, synthesizeSymbol(values)...)
	}
	out := base
	if osr > 1 {
		out = dsp.Interpolate(base, osr, r.cfg.Bandwidth)
	}
	dsp.Normalize(out)
	return out, nil
}

// Preamble implements phy.Technology: the LTF train.
func (r *Radio) Preamble(fs float64) []complex128 {
	osr, err := r.osr(fs)
	if err != nil {
		panic(err)
	}
	var base []complex128
	for k := 0; k < r.cfg.LTFRepeats; k++ {
		base = append(base, synthesizeSymbol(r.ltf)...)
	}
	out := base
	if osr > 1 {
		out = dsp.Interpolate(base, osr, r.cfg.Bandwidth)
	}
	dsp.Normalize(out)
	return out
}

// MaxPacketSamples implements phy.Technology.
func (r *Radio) MaxPacketSamples(fs float64) int {
	osr, err := r.osr(fs)
	if err != nil {
		return 0
	}
	bitsTotal := 8 * (3 + r.cfg.MaxPayload + 2)
	symbols := r.cfg.LTFRepeats + (bitsTotal+len(dataCarriers)-1)/len(dataCarriers)
	return symbols * symLen * osr
}

// Demodulate implements phy.Technology.
func (r *Radio) Demodulate(rx []complex128, fs float64) (*phy.Frame, error) {
	osr, err := r.osr(fs)
	if err != nil {
		return nil, err
	}
	pre := r.Preamble(fs)
	minSyms := r.cfg.LTFRepeats + 2
	if len(rx) < minSyms*symLen*osr {
		return nil, fmt.Errorf("%w: ofdm window too short", phy.ErrNoFrame)
	}
	metric := dsp.NormalizedCorrelate(rx, pre)
	pk := dsp.MaxPeak(metric)
	if pk.Index < 0 || pk.Value < 0.2 {
		return nil, fmt.Errorf("%w: ofdm preamble not found (peak %.3f)", phy.ErrNoFrame, pk.Value)
	}
	start := pk.Index

	// Decimate the frame region to the base rate for processing.
	work := rx[start:]
	if osr > 1 {
		work = dsp.Decimate(work, osr, fs)
	} else {
		work = dsp.Clone(work)
	}

	// CFO from the phase drift between consecutive LTF repeats.
	var acc complex128
	for k := 0; k+1 < r.cfg.LTFRepeats; k++ {
		a := work[k*symLen : (k+1)*symLen]
		b := work[(k+1)*symLen : (k+2)*symLen]
		for i := 0; i < symLen && i < len(a) && i < len(b); i++ {
			acc += b[i] * complex(real(a[i]), -imag(a[i]))
		}
	}
	symDur := float64(symLen) / r.cfg.Bandwidth
	cfo := math.Atan2(imag(acc), real(acc)) / (2 * math.Pi * symDur)
	dsp.Mix(work, -cfo, 0, r.cfg.Bandwidth)

	// fftSymbol extracts the frequency-domain used-carrier values of the
	// k-th symbol (skipping the CP).
	fftSymbol := func(k int) ([]complex128, bool) {
		from := k*symLen + cpLen
		to := from + nFFT
		if to > len(work) {
			return nil, false
		}
		spec := dsp.FFT(work[from:to])
		out := make([]complex128, len(dataCarriers)+nPilots)
		idx := 0
		for _, c := range dataCarriers {
			out[idx] = spec[carrierBin(c, nFFT)]
			idx++
		}
		for _, c := range pilotCarriers {
			out[idx] = spec[carrierBin(c, nFFT)]
			idx++
		}
		return out, true
	}

	// Channel estimation: average the LTF repeats, divide by the known
	// training values.
	used := len(dataCarriers) + nPilots
	chanEst := make([]complex128, used)
	for k := 0; k < r.cfg.LTFRepeats; k++ {
		vals, ok := fftSymbol(k)
		if !ok {
			return nil, fmt.Errorf("%w: ofdm LTF truncated", phy.ErrNoFrame)
		}
		for i := range chanEst {
			chanEst[i] += vals[i] / r.ltf[i]
		}
	}
	for i := range chanEst {
		chanEst[i] /= complex(float64(r.cfg.LTFRepeats), 0)
		if chanEst[i] == 0 {
			return nil, fmt.Errorf("%w: ofdm channel estimate degenerate", phy.ErrNoFrame)
		}
	}

	nData := len(dataCarriers)
	// demodSymbols equalizes and slices n data symbols starting at symbol
	// index firstSym, using pilots for common-phase correction.
	demodSymbols := func(firstSym, count int) ([]byte, bool) {
		out := make([]byte, 0, count*nData)
		for k := 0; k < count; k++ {
			vals, ok := fftSymbol(firstSym + k)
			if !ok {
				return nil, false
			}
			for i := range vals {
				vals[i] /= chanEst[i]
			}
			// common phase error from the two pilots (transmitted +1)
			cpe := vals[nData] + vals[nData+1]
			ph := cmplx.Exp(complex(0, -math.Atan2(imag(cpe), real(cpe))))
			for i := 0; i < nData; i++ {
				if real(vals[i]*ph) < 0 {
					out = append(out, 1)
				} else {
					out = append(out, 0)
				}
			}
		}
		return out, true
	}

	// SIG: the first data symbol carries the 3× repeated length byte.
	sigBits, ok := demodSymbols(r.cfg.LTFRepeats, 1)
	if !ok {
		return nil, fmt.Errorf("%w: ofdm SIG truncated", phy.ErrNoFrame)
	}
	wDe := bits.NewLoRaWhitener()
	sigDe := wDe.Apply(append([]byte{}, sigBits...))
	sigBytes := bits.Pack(sigDe)
	length := majority3(sigBytes[0], sigBytes[1], sigBytes[2])
	if int(length) == 0 || int(length) > r.cfg.MaxPayload {
		return nil, fmt.Errorf("%w: ofdm length %d invalid", phy.ErrNoFrame, length)
	}
	bitsTotal := 8 * (3 + int(length) + 2)
	nSyms := (bitsTotal + nData - 1) / nData
	raw, ok := demodSymbols(r.cfg.LTFRepeats, nSyms)
	if !ok {
		return nil, fmt.Errorf("%w: ofdm frame truncated", phy.ErrNoFrame)
	}
	raw = raw[:bitsTotal]
	w2 := bits.NewLoRaWhitener()
	w2.Apply(raw)
	body := bits.Pack(raw)
	payload := body[3 : 3+int(length)]
	gotCRC := uint16(body[3+int(length)])<<8 | uint16(body[3+int(length)+1])
	crcOK := gotCRC == bits.CRC16CCITT(payload)

	frame := &phy.Frame{
		Tech:    "halow",
		Payload: append([]byte{}, payload...),
		CRCOK:   crcOK,
		Bits:    int(length) * 8,
		Offset:  start,
		CFO:     cfo,
	}
	if crcOK {
		if ref, merr := r.Modulate(frame.Payload, fs); merr == nil {
			end := start + len(ref)
			if end > len(rx) {
				end = len(rx)
			}
			seg := rx[start:end]
			refSeg := ref[:len(seg)]
			var proj complex128
			for i := range seg {
				proj += seg[i] * complex(real(refSeg[i]), -imag(refSeg[i]))
			}
			if e := dsp.Energy(refSeg); e > 0 {
				frame.Gain = proj / complex(e, 0)
			}
			frame.SNRdB = dsp.DB(dsp.EstimateSNR(seg, refSeg))
		}
	}
	return frame, nil
}

// majority3 returns the bitwise majority of three bytes.
func majority3(a, b, c byte) byte {
	return a&b | a&c | b&c
}

var _ phy.Technology = (*Radio)(nil)
