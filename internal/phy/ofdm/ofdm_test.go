package ofdm

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
	"repro/internal/phy"
	"repro/internal/rng"
)

const fs = 1e6 // the 1 MHz mode runs at the gateway rate directly (osr 1)

func TestDefaults(t *testing.T) {
	r := Default()
	if r.Name() != "halow" || r.Class() != phy.ClassOFDM {
		t.Fatal("identity")
	}
	// 24 bits per 40 µs symbol = 600 kb/s raw BPSK
	if math.Abs(r.BitRate()-600e3) > 1 {
		t.Fatalf("bit rate %v", r.BitRate())
	}
	if phy.ClassOFDM.String() != "OFDM" {
		t.Fatal("class name")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{LTFRepeats: 1}); err == nil {
		t.Fatal("1 LTF accepted")
	}
	if _, err := New(Config{MaxPayload: 999}); err == nil {
		t.Fatal("bad payload accepted")
	}
	r := Default()
	if _, err := r.Modulate(nil, fs); err == nil {
		t.Fatal("empty payload")
	}
	if _, err := r.Modulate([]byte{1}, 999999); err == nil {
		t.Fatal("non-integer osr accepted")
	}
	if _, err := r.Demodulate(make([]complex128, 32), fs); !errors.Is(err, phy.ErrNoFrame) {
		t.Fatal("short window")
	}
}

func TestCarrierLayout(t *testing.T) {
	if len(dataCarriers) != 24 {
		t.Fatalf("%d data carriers, want 24 (802.11ah 1 MHz mode)", len(dataCarriers))
	}
	seen := map[int]bool{0: true} // DC must stay null
	for _, c := range append(append([]int{}, dataCarriers...), pilotCarriers...) {
		if c == 0 {
			t.Fatal("DC carrier used")
		}
		if c < -13 || c > 13 {
			t.Fatalf("carrier %d outside ±13", c)
		}
		if seen[c] {
			t.Fatalf("carrier %d reused", c)
		}
		seen[c] = true
	}
}

func TestRoundTripClean(t *testing.T) {
	r := Default()
	payload := []byte("halow ofdm frame")
	sig, err := r.Modulate(payload, fs)
	if err != nil {
		t.Fatal(err)
	}
	rx := make([]complex128, len(sig)+4000)
	dsp.Add(rx, sig, 1500)
	frame, err := r.Demodulate(rx, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
		t.Fatalf("payload %q crc %v", frame.Payload, frame.CRCOK)
	}
	if frame.Offset < 1495 || frame.Offset > 1505 {
		t.Fatalf("offset %d", frame.Offset)
	}
}

func TestRoundTripMultipathChannel(t *testing.T) {
	// OFDM's raison d'être: per-subcarrier equalization flattens a
	// frequency-selective channel that would cripple a single-carrier PHY.
	r := Default()
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	sig, _ := r.Modulate(payload, fs)
	// two-tap channel: direct path + 50% echo 3 samples later (within CP)
	echoed := make([]complex128, len(sig)+3)
	dsp.Add(echoed, sig, 0)
	echo := dsp.ScaleComplex(dsp.Clone(sig), complex(0.35, 0.35))
	dsp.Add(echoed, echo, 3)
	rx := make([]complex128, len(echoed)+3000)
	dsp.Add(rx, echoed, 1000)
	frame, err := r.Demodulate(rx, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
		t.Fatalf("multipath payload %x", frame.Payload)
	}
}

func TestRoundTripNoiseAndCFO(t *testing.T) {
	r := Default()
	gen := rng.New(1)
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	sig, _ := r.Modulate(payload, fs)
	for _, tc := range []struct{ snr, cfo float64 }{{15, 0}, {15, 800}} {
		rx := make([]complex128, len(sig)+3000)
		for i := range rx {
			rx[i] = gen.Complex()
		}
		s := dsp.Mix(dsp.Clone(sig), tc.cfo, 0.2, fs)
		dsp.Scale(s, math.Sqrt(dsp.FromDB(tc.snr)))
		dsp.Add(rx, s, 1000)
		frame, err := r.Demodulate(rx, fs)
		if err != nil {
			t.Fatalf("snr=%v cfo=%v: %v", tc.snr, tc.cfo, err)
		}
		if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
			t.Fatalf("snr=%v cfo=%v: %x", tc.snr, tc.cfo, frame.Payload)
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	r := Default()
	gen := rng.New(2)
	f := func(lenRaw uint8) bool {
		n := int(lenRaw%40) + 1
		payload := make([]byte, n)
		gen.Bytes(payload)
		sig, err := r.Modulate(payload, fs)
		if err != nil {
			return false
		}
		rx := make([]complex128, len(sig)+2000)
		dsp.Add(rx, sig, 700)
		frame, err := r.Demodulate(rx, fs)
		if err != nil {
			return false
		}
		return frame.CRCOK && bytes.Equal(frame.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestOversampledCapture(t *testing.T) {
	// A 2 MHz capture (osr 2) must also round-trip.
	r := Default()
	payload := []byte{7, 7, 7}
	sig, err := r.Modulate(payload, 2e6)
	if err != nil {
		t.Fatal(err)
	}
	rx := make([]complex128, len(sig)+4000)
	dsp.Add(rx, sig, 1200)
	frame, err := r.Demodulate(rx, 2e6)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
		t.Fatalf("osr-2 payload %x", frame.Payload)
	}
}

func TestMajority3(t *testing.T) {
	if majority3(0xFF, 0xFF, 0x00) != 0xFF {
		t.Fatal("majority")
	}
	if majority3(0x0F, 0xF0, 0xFF) != 0xFF {
		t.Fatal("bitwise majority")
	}
	if majority3(0x12, 0x12, 0x34) != 0x12 {
		t.Fatal("two agree")
	}
}

func TestMaxPacketSamplesCovers(t *testing.T) {
	r := Default()
	sig, err := r.Modulate(make([]byte, 96), fs)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxPacketSamples(fs) < len(sig) {
		t.Fatalf("MaxPacketSamples %d < %d", r.MaxPacketSamples(fs), len(sig))
	}
}

func BenchmarkDemodulate16B(b *testing.B) {
	r := Default()
	sig, _ := r.Modulate(make([]byte, 16), fs)
	rx := make([]complex128, len(sig)+500)
	dsp.Add(rx, sig, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Demodulate(rx, fs); err != nil {
			b.Fatal(err)
		}
	}
}
