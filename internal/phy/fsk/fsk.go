// Package fsk implements a generic continuous-phase (G)FSK modem shared by
// the XBee and Z-Wave PHYs: binary frequency-shift keying with optional
// Gaussian pulse shaping, a polar-discriminator demodulator with integrate-
// and-dump bit decisions, and preamble-based synchronization helpers.
//
// The modem supports fractional samples-per-bit: bit boundaries are placed
// at round(i·fs/Rb), so any bit rate can be used at any sample rate.
package fsk

import (
	"fmt"
	"math"

	"repro/internal/dsp"
)

// Modem describes a binary FSK air interface.
type Modem struct {
	BitRate   float64 // bits per second
	Deviation float64 // frequency deviation in Hz: bit 1 → +Deviation, bit 0 → -Deviation
	BT        float64 // Gaussian bandwidth-time product; 0 disables shaping (plain BFSK)
}

// Validate reports whether the modem parameters are usable at fs.
func (m Modem) Validate(fs float64) error {
	if m.BitRate <= 0 {
		return fmt.Errorf("fsk: bit rate must be positive")
	}
	if m.Deviation <= 0 {
		return fmt.Errorf("fsk: deviation must be positive")
	}
	if fs < 4*(m.Deviation+m.BitRate) {
		return fmt.Errorf("fsk: sample rate %g too low for deviation %g / bit rate %g", fs, m.Deviation, m.BitRate)
	}
	return nil
}

// boundary returns the sample index where bit i starts.
func (m Modem) boundary(i int, fs float64) int {
	return int(math.Round(float64(i) * fs / m.BitRate))
}

// NumSamples returns the airtime in samples of nBits bits.
func (m Modem) NumSamples(nBits int, fs float64) int {
	return m.boundary(nBits, fs)
}

// ModulateBits produces the unit-amplitude complex baseband waveform of the
// given bit stream (values 0/1).
func (m Modem) ModulateBits(bitstream []byte, fs float64) ([]complex128, error) {
	if err := m.Validate(fs); err != nil {
		return nil, err
	}
	n := m.NumSamples(len(bitstream), fs)
	// Per-sample NRZ level sequence.
	levels := make([]float64, n)
	for i, b := range bitstream {
		lv := -1.0
		if b != 0 {
			lv = 1.0
		}
		from, to := m.boundary(i, fs), m.boundary(i+1, fs)
		for j := from; j < to && j < n; j++ {
			levels[j] = lv
		}
	}
	if m.BT > 0 {
		sps := int(math.Round(fs / m.BitRate))
		if sps < 2 {
			sps = 2
		}
		g := dsp.Gaussian(m.BT, sps, 4)
		levels = g.ApplyReal(levels)
	}
	out := make([]complex128, n)
	phase := 0.0
	k := 2 * math.Pi * m.Deviation / fs
	for i, lv := range levels {
		s, c := math.Sincos(phase)
		out[i] = complex(c, s)
		phase += k * lv
		if phase > math.Pi {
			phase -= 2 * math.Pi
		} else if phase < -math.Pi {
			phase += 2 * math.Pi
		}
	}
	return out, nil
}

// Discriminate returns the per-sample instantaneous-frequency estimate of
// rx after low-pass filtering to the signal bandwidth (Carson bandwidth).
// The output has len(rx) entries (the first is duplicated).
func (m Modem) Discriminate(rx []complex128, fs float64) []float64 {
	cutoff := m.Deviation + m.BitRate // Carson's rule / 2 per side
	taps := int(fs/m.BitRate)*2 + 1
	if taps > 129 {
		taps = 129
	}
	lp := dsp.LowPass(cutoff, fs, taps)
	filtered := lp.ApplyComplex(rx)
	d := dsp.FreqDiscriminator(filtered, fs)
	out := make([]float64, len(rx))
	if len(d) > 0 {
		out[0] = d[0]
		copy(out[1:], d)
	}
	return out
}

// DemodulateBits slices nBits bit decisions from the discriminator output
// starting at sample start. The cfo argument (Hz) is subtracted from every
// frequency estimate before the sign decision.
func (m Modem) DemodulateBits(disc []float64, start, nBits int, fs float64, cfo float64) []byte {
	out := make([]byte, nBits)
	for i := 0; i < nBits; i++ {
		from := start + m.boundary(i, fs)
		to := start + m.boundary(i+1, fs)
		if from >= len(disc) {
			break
		}
		if to > len(disc) {
			to = len(disc)
		}
		// Integrate and dump over the central 60% of the bit period to
		// avoid inter-symbol transitions.
		span := to - from
		lo := from + span/5
		hi := to - span/5
		if hi <= lo {
			lo, hi = from, to
		}
		var acc float64
		for j := lo; j < hi; j++ {
			acc += disc[j] - cfo
		}
		if acc > 0 {
			out[i] = 1
		}
	}
	return out
}

// DemodulateBitsTone makes per-bit decisions by noncoherent orthogonal FSK
// detection: each bit window is projected (Goertzel) onto the two expected
// tone frequencies cfo±Deviation and the stronger projection wins. Unlike
// the broadband discriminator, this detector only sees interference that
// lands exactly on the two tones, which makes it far more robust when a
// collision has been cleaned by a notch filter that leaves residual
// wideband energy. It is used as a fallback when the discriminator path
// fails a frame's CRC.
func (m Modem) DemodulateBitsTone(rx []complex128, start, nBits int, fs, cfo float64) []byte {
	out := make([]byte, nBits)
	for i := 0; i < nBits; i++ {
		from := start + m.boundary(i, fs)
		to := start + m.boundary(i+1, fs)
		if from >= len(rx) {
			break
		}
		if to > len(rx) {
			to = len(rx)
		}
		span := to - from
		lo := from + span/5
		hi := to - span/5
		if hi <= lo {
			lo, hi = from, to
		}
		seg := rx[lo:hi]
		gp := dsp.Goertzel(seg, cfo+m.Deviation, fs)
		gm := dsp.Goertzel(seg, cfo-m.Deviation, fs)
		pp := real(gp)*real(gp) + imag(gp)*imag(gp)
		pm := real(gm)*real(gm) + imag(gm)*imag(gm)
		if pp > pm {
			out[i] = 1
		}
	}
	return out
}

// EstimateCFO measures the residual carrier offset as the mean
// discriminator value over a DC-balanced stretch (such as a 0101 preamble)
// of nBits bits starting at sample start.
func (m Modem) EstimateCFO(disc []float64, start, nBits int, fs float64) float64 {
	from := start
	to := start + m.NumSamples(nBits, fs)
	if to > len(disc) {
		to = len(disc)
	}
	if to <= from {
		return 0
	}
	var acc float64
	for j := from; j < to; j++ {
		acc += disc[j]
	}
	return acc / float64(to-from)
}

// Sync finds the most likely start of a known preamble waveform within rx
// using normalized correlation, returning the start index and the
// correlation value in [0, 1]. Coherent correlation degrades under carrier
// frequency offset; prefer SyncDisc for frame synchronization and use this
// only when the carrier is known to be accurate.
func Sync(rx, preamble []complex128) (start int, quality float64) {
	metric := dsp.NormalizedCorrelate(rx, preamble)
	pk := dsp.MaxPeak(metric)
	if pk.Index < 0 {
		return 0, 0
	}
	return pk.Index, pk.Value
}

// FreqTemplate returns the expected instantaneous-frequency trajectory (Hz
// per sample) of the given bit stream, including Gaussian shaping. It is
// the matched template for discriminator-domain synchronization.
func (m Modem) FreqTemplate(bitstream []byte, fs float64) []float64 {
	n := m.NumSamples(len(bitstream), fs)
	levels := make([]float64, n)
	for i, b := range bitstream {
		lv := -1.0
		if b != 0 {
			lv = 1.0
		}
		from, to := m.boundary(i, fs), m.boundary(i+1, fs)
		for j := from; j < to && j < n; j++ {
			levels[j] = lv
		}
	}
	if m.BT > 0 {
		sps := int(math.Round(fs / m.BitRate))
		if sps < 2 {
			sps = 2
		}
		g := dsp.Gaussian(m.BT, sps, 4)
		levels = g.ApplyReal(levels)
	}
	for i := range levels {
		levels[i] *= m.Deviation
	}
	return levels
}

// SyncDisc finds the start of a frame whose preamble+SFD bit pattern is
// preBits, by correlating the discriminator output against the expected
// frequency trajectory with local mean removal. Because a carrier offset
// appears in the discriminator as a pure DC bias, this synchronizer is
// CFO-immune. The quality value is the normalized correlation in [-1, 1].
func (m Modem) SyncDisc(disc []float64, preBits []byte, fs float64) (start int, quality float64) {
	tmpl := m.FreqTemplate(preBits, fs)
	metric := dsp.NormalizedCorrelateReal(disc, tmpl)
	if metric == nil {
		return 0, 0
	}
	pk := dsp.MaxPeak(metric)
	if pk.Index < 0 {
		return 0, 0
	}
	return pk.Index, pk.Value
}
