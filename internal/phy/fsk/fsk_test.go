package fsk

import (
	"bytes"
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/dsp"
	"repro/internal/rng"
)

const fs = 1e6

var gfsk = Modem{BitRate: 20e3, Deviation: 10e3, BT: 0.5}
var bfsk = Modem{BitRate: 40e3, Deviation: 20e3}

func TestValidate(t *testing.T) {
	if err := gfsk.Validate(fs); err != nil {
		t.Fatal(err)
	}
	if err := (Modem{BitRate: 0, Deviation: 1e3}).Validate(fs); err == nil {
		t.Fatal("zero bit rate")
	}
	if err := (Modem{BitRate: 1e3, Deviation: 0}).Validate(fs); err == nil {
		t.Fatal("zero deviation")
	}
	if err := (Modem{BitRate: 400e3, Deviation: 300e3}).Validate(fs); err == nil {
		t.Fatal("insufficient sample rate")
	}
}

func TestModulateUnitEnvelope(t *testing.T) {
	sig, err := bfsk.ModulateBits([]byte{1, 0, 1, 1, 0}, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != 125 { // 5 bits at 25 sps
		t.Fatalf("length %d", len(sig))
	}
	for i, v := range sig {
		if math.Abs(cmplx.Abs(v)-1) > 1e-9 {
			t.Fatalf("sample %d magnitude %v", i, cmplx.Abs(v))
		}
	}
}

func TestToneFrequencies(t *testing.T) {
	// A run of identical bits must sit at ±deviation.
	ones, _ := bfsk.ModulateBits(bits.Repeat([]byte{1}, 40), fs)
	zeros, _ := bfsk.ModulateBits(bits.Repeat([]byte{0}, 40), fs)
	if f := dsp.DominantFrequency(ones[100:900], fs); math.Abs(f-20e3) > 1500 {
		t.Fatalf("ones tone at %v", f)
	}
	if f := dsp.DominantFrequency(zeros[100:900], fs); math.Abs(f+20e3) > 1500 {
		t.Fatalf("zeros tone at %v", f)
	}
}

func TestRoundTripClean(t *testing.T) {
	for name, m := range map[string]Modem{"gfsk": gfsk, "bfsk": bfsk} {
		in := []byte{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 1, 0}
		sig, err := m.ModulateBits(in, fs)
		if err != nil {
			t.Fatal(err)
		}
		disc := m.Discriminate(sig, fs)
		got := m.DemodulateBits(disc, 0, len(in), fs, 0)
		if !bytes.Equal(got, in) {
			t.Fatalf("%s: got %v want %v", name, got, in)
		}
	}
}

func TestRoundTripRandomProperty(t *testing.T) {
	gen := rng.New(3)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 8
		in := make([]byte, n)
		for i := range in {
			if gen.Bool() {
				in[i] = 1
			}
		}
		sig, err := gfsk.ModulateBits(in, fs)
		if err != nil {
			return false
		}
		disc := gfsk.Discriminate(sig, fs)
		got := gfsk.DemodulateBits(disc, 0, n, fs, 0)
		return bytes.Equal(got, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripUnderNoise(t *testing.T) {
	gen := rng.New(4)
	in := make([]byte, 64)
	for i := range in {
		if gen.Bool() {
			in[i] = 1
		}
	}
	sig, _ := gfsk.ModulateBits(in, fs)
	// 10 dB SNR over the full 1 MHz band; in-band SNR after the ~30 kHz
	// discriminator filter is ~15 dB higher.
	rx := make([]complex128, len(sig))
	amp := math.Sqrt(dsp.FromDB(10))
	for i := range rx {
		rx[i] = complex(amp, 0)*sig[i] + gen.Complex()
	}
	disc := gfsk.Discriminate(rx, fs)
	got := gfsk.DemodulateBits(disc, 0, len(in), fs, 0)
	if d := bits.HammingDistance(got, in); d > 0 {
		t.Fatalf("%d bit errors at 10 dB", d)
	}
}

func TestCFOEstimateAndCorrection(t *testing.T) {
	pre := bits.Repeat([]byte{0, 1}, 16) // 32-bit 0101 preamble
	in := append(append([]byte{}, pre...), 1, 1, 0, 1, 0, 0, 1, 0)
	sig, _ := gfsk.ModulateBits(in, fs)
	const cfo = 2000.0
	dsp.Mix(sig, cfo, 0, fs)
	disc := gfsk.Discriminate(sig, fs)
	est := gfsk.EstimateCFO(disc, 0, len(pre), fs)
	if math.Abs(est-cfo) > 200 {
		t.Fatalf("cfo estimate %v, want %v", est, cfo)
	}
	got := gfsk.DemodulateBits(disc, 0, len(in), fs, est)
	if !bytes.Equal(got, in) {
		t.Fatalf("cfo-corrected demod failed: %v", got)
	}
}

func TestSyncFindsPreamble(t *testing.T) {
	pre := bits.Repeat([]byte{0, 1}, 16)
	wave, _ := gfsk.ModulateBits(pre, fs)
	gen := rng.New(5)
	rx := make([]complex128, 10000)
	for i := range rx {
		rx[i] = complex(0.01, 0) * gen.Complex()
	}
	dsp.Add(rx, wave, 4321)
	start, q := Sync(rx, wave)
	if start != 4321 {
		t.Fatalf("sync at %d, want 4321", start)
	}
	if q < 0.9 {
		t.Fatalf("sync quality %v", q)
	}
}

func TestNumSamplesFractionalRates(t *testing.T) {
	m := Modem{BitRate: 9600, Deviation: 20e3} // 104.1667 samples per bit
	if err := m.Validate(fs); err != nil {
		t.Fatal(err)
	}
	n := m.NumSamples(96, fs)
	if n != 10000 {
		t.Fatalf("96 bits at 9600 bps / 1 MHz = %d samples, want 10000", n)
	}
	in := bits.Repeat([]byte{1, 0, 0}, 32)
	sig, err := m.ModulateBits(in, fs)
	if err != nil {
		t.Fatal(err)
	}
	disc := m.Discriminate(sig, fs)
	got := m.DemodulateBits(disc, 0, len(in), fs, 0)
	if !bytes.Equal(got, in) {
		t.Fatal("fractional-sps round trip failed")
	}
}

func BenchmarkModulate64Bits(b *testing.B) {
	in := make([]byte, 64)
	for i := range in {
		in[i] = byte(i % 2)
	}
	for i := 0; i < b.N; i++ {
		if _, err := gfsk.ModulateBits(in, fs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscriminate(b *testing.B) {
	in := make([]byte, 256)
	sig, _ := gfsk.ModulateBits(in, fs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gfsk.Discriminate(sig, fs)
	}
}

func TestDemodulateBitsToneCleanAndUnderToneInterference(t *testing.T) {
	in := bits.Repeat([]byte{1, 0, 1, 1, 0}, 8)
	sig, _ := gfsk.ModulateBits(in, fs)
	got := gfsk.DemodulateBitsTone(sig, 0, len(in), fs, 0)
	if !bytes.Equal(got, in) {
		t.Fatalf("clean tone demod: %v", got)
	}
	// Add a strong interferer far from the two tone frequencies: the tone
	// detector must shrug it off while the broadband discriminator breaks.
	rx := dsp.Clone(sig)
	dsp.Add(rx, dsp.Scale(dsp.Tone(len(sig), 200e3, 0, fs), 3), 0)
	gotTone := gfsk.DemodulateBitsTone(rx, 0, len(in), fs, 0)
	if !bytes.Equal(gotTone, in) {
		t.Fatalf("tone demod under out-of-band interference: %v", gotTone)
	}
	disc := gfsk.Discriminate(rx, fs)
	gotDisc := gfsk.DemodulateBits(disc, 0, len(in), fs, 0)
	if d := bits.HammingDistance(gotDisc, in); d == 0 {
		t.Log("discriminator survived too (filter caught the interferer); tone path still validated")
	}
}

func TestDemodulateBitsToneWithCFO(t *testing.T) {
	in := bits.Repeat([]byte{0, 1, 1, 0}, 10)
	sig, _ := gfsk.ModulateBits(in, fs)
	const cfo = 1200.0
	dsp.Mix(sig, cfo, 0, fs)
	got := gfsk.DemodulateBitsTone(sig, 0, len(in), fs, cfo)
	if !bytes.Equal(got, in) {
		t.Fatalf("tone demod with cfo: %v", got)
	}
}

func TestFreqTemplateMatchesModulatedTrajectory(t *testing.T) {
	in := []byte{1, 1, 0, 1, 0, 0, 1, 0}
	tmpl := gfsk.FreqTemplate(in, fs)
	sig, _ := gfsk.ModulateBits(in, fs)
	if len(tmpl) != len(sig) {
		t.Fatalf("template length %d vs signal %d", len(tmpl), len(sig))
	}
	disc := dsp.FreqDiscriminator(sig, fs)
	// Compare interior samples: the discriminator of the synthesized
	// waveform must track the analytic template closely.
	for i := 100; i < len(disc)-100; i += 37 {
		if math.Abs(disc[i]-tmpl[i+1]) > 600 { // 6% of deviation
			t.Fatalf("trajectory mismatch at %d: %v vs %v", i, disc[i], tmpl[i+1])
		}
	}
}

func TestSyncDiscExactness(t *testing.T) {
	pre := bits.Repeat([]byte{0, 1}, 16)
	preWave, _ := gfsk.ModulateBits(pre, fs)
	full := append(dsp.Clone(preWave), dsp.Tone(2000, 0, 0, fs)...)
	rx := make([]complex128, 12000)
	dsp.Add(rx, full, 5000)
	disc := gfsk.Discriminate(rx, fs)
	start, q := gfsk.SyncDisc(disc, pre, fs)
	if start < 4998 || start > 5002 {
		t.Fatalf("sync at %d, want ~5000 (quality %v)", start, q)
	}
	if q < 0.8 {
		t.Fatalf("quality %v", q)
	}
}
