// Package phy defines the common abstractions for IoT radio technologies:
// the Technology interface every PHY implements, the modulation-class
// taxonomy that drives the choice of "kill" filter at the cloud, and a
// registry (in the style of gopacket's layer registry) through which the
// gateway and cloud enumerate the technologies they decode.
//
// A Technology is both a transmitter (Modulate) and a receiver
// (Demodulate). Modulate produces a complex-baseband waveform at a caller-
// chosen sample rate, which keeps every PHY usable at the paper's 1 MHz
// RTL-SDR rate as well as in narrowband unit tests. Demodulate is handed a
// detector-aligned sample window (packet start near the beginning of the
// window) and returns a decoded Frame carrying fine timing and complex-gain
// estimates, which the successive-interference-cancellation engine needs to
// reconstruct and subtract the signal.
package phy

import (
	"fmt"
	"sort"
	"sync"
)

// Class is a modulation family. The cloud decoder picks its cancellation
// strategy ("kill" filter) by class, not by technology, which is what lets
// GalioT scale to new technologies without new cancellation code.
type Class int

// Modulation classes from the paper's taxonomy (Sec. 5).
const (
	ClassFSK  Class = iota // frequency shift keying: energy at discrete tones
	ClassPSK               // phase shift keying: energy in a narrow center band
	ClassCSS               // chirp spread spectrum: energy swept across the band
	ClassDSSS              // direct-sequence: energy spread by orthogonal codes
	ClassOFDM              // multicarrier: energy across many subcarriers (no kill filter in the paper's set)
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassFSK:
		return "FSK"
	case ClassPSK:
		return "PSK"
	case ClassCSS:
		return "CSS"
	case ClassDSSS:
		return "DSSS"
	case ClassOFDM:
		return "OFDM"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Frame is a decoded PHY frame together with the receiver-side estimates
// that interference cancellation needs.
type Frame struct {
	Tech      string     // technology name
	Payload   []byte     // decoded payload (MAC frame body)
	CRCOK     bool       // payload integrity check passed
	Bits      int        // number of payload bits (for throughput accounting)
	Offset    int        // sample index in the demodulated window where the frame starts
	Gain      complex128 // estimated complex channel gain
	CFO       float64    // estimated residual carrier offset in Hz (0 if not measured)
	SNRdB     float64    // estimated post-sync SNR in dB, if available
	Corrected int        // FEC corrections applied
}

// Technology is a complete PHY implementation.
type Technology interface {
	// Name returns a unique, stable identifier ("lora", "xbee", "zwave").
	Name() string
	// Class returns the modulation family, which selects the kill filter.
	Class() Class
	// Info describes the technology for the Table-1 catalog.
	Info() Info
	// BitRate returns the nominal payload bit rate in bits/s.
	BitRate() float64
	// Preamble returns the technology's preamble waveform (including any
	// sync word) at the given sample rate, normalized to unit power.
	Preamble(sampleRate float64) []complex128
	// MaxPacketSamples returns the airtime of a maximum-length frame in
	// samples at the given rate; the gateway ships 2× this around each
	// detection (Sec. 4).
	MaxPacketSamples(sampleRate float64) int
	// Modulate produces the complex-baseband waveform of a frame carrying
	// payload, at unit average power during the burst.
	Modulate(payload []byte, sampleRate float64) ([]complex128, error)
	// Demodulate decodes one frame from a window whose packet start lies
	// within the first searchWindow samples (technology-chosen default if
	// the caller passes the whole capture).
	Demodulate(rx []complex128, sampleRate float64) (*Frame, error)
}

// Info is catalog metadata used to regenerate the paper's Table 1.
type Info struct {
	Name       string
	Modulation string // e.g. "CSS", "GFSK", "BFSK"
	Sync       string // sync word description
	Preamble   string // preamble description
	MaxPayload int    // bytes
}

// ToneTechnology is implemented by FSK-class technologies; it reports the
// discrete tone offsets (Hz from center) where the modulation concentrates
// energy, which KILL-FREQUENCY notches out.
type ToneTechnology interface {
	Technology
	Tones() []float64
}

// ChirpTechnology is implemented by CSS-class technologies; KILL-CSS needs
// the chirp parameters to dechirp, notch and re-chirp.
type ChirpTechnology interface {
	Technology
	SpreadingFactor() int
	ChirpBandwidth() float64 // Hz
}

// CodedTechnology is implemented by DSSS-class technologies; KILL-CODES
// projects received samples off the code subspace.
type CodedTechnology interface {
	Technology
	ChipCodes() [][]byte // one chip sequence (0/1 values) per symbol value
	ChipRate() float64   // chips per second
}

// NarrowbandTechnology is implemented by PSK-class technologies; it reports
// the carrier position and occupied bandwidth (Hz) that KILL-FREQUENCY's
// narrowband variant removes.
type NarrowbandTechnology interface {
	Technology
	// OccupiedBandwidth is the width of the band to notch, in Hz.
	OccupiedBandwidth() float64
	// Center is the carrier offset from the capture center, in Hz.
	Center() float64
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Technology{}
)

// Register adds a technology to the global registry. Registering a
// duplicate name panics: names are the cross-layer identifiers used by the
// backhaul protocol, so collisions are programming errors.
func Register(t Technology) {
	registryMu.Lock()
	defer registryMu.Unlock()
	name := t.Name()
	if _, dup := registry[name]; dup {
		panic("phy: duplicate technology " + name)
	}
	registry[name] = t
}

// Lookup returns the registered technology with the given name.
func Lookup(name string) (Technology, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	t, ok := registry[name]
	return t, ok
}

// All returns the registered technologies sorted by name.
func All() []Technology {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Technology, 0, len(registry))
	//lint:ignore nondeterminism the collected values are sorted by name below
	for _, t := range registry {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Catalog returns Info for well-known IoT technologies: the registered
// (implemented) ones plus the additional entries from the paper's Table 1
// that are cataloged but not prototyped, mirroring the paper.
func Catalog() []Info {
	seen := map[string]bool{}
	var out []Info
	for _, t := range All() {
		out = append(out, t.Info())
		seen[t.Name()] = true
	}
	for _, info := range table1Extras {
		if !seen[info.Name] {
			out = append(out, info)
		}
	}
	return out
}

// Extras returns the Table-1 rows the paper lists but that are not
// prototyped in this repository, for callers that assemble a catalog from
// an explicit technology list instead of the global registry.
func Extras() []Info {
	out := make([]Info, len(table1Extras))
	copy(out, table1Extras)
	return out
}

// table1Extras are the Table-1 rows the paper lists but does not prototype.
var table1Extras = []Info{
	{Name: "ble", Modulation: "GFSK", Sync: "4 bytes", Preamble: "'01010101'"},
	{Name: "wifi-halow", Modulation: "BPSK", Sync: "configuration specific", Preamble: "configuration specific"},
	{Name: "sigfox", Modulation: "D-BPSK", Sync: "4 bytes", Preamble: "unknown"},
	{Name: "thread", Modulation: "QPSK", Sync: "4 bytes", Preamble: "binary 0s"},
	{Name: "wirelesshart", Modulation: "O-QPSK", Sync: "4 bytes", Preamble: "binary 0s"},
	{Name: "weightless", Modulation: "O-QPSK", Sync: "4 bytes", Preamble: "binary 0s"},
	{Name: "nb-iot", Modulation: "OFDMA", Sync: "LTE specific", Preamble: "LTE specific"},
}

// ErrNoFrame is returned (wrapped) by Demodulate when no decodable frame is
// present in the window.
var ErrNoFrame = fmt.Errorf("phy: no decodable frame in window")
