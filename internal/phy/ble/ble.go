// Package ble implements the Bluetooth Low Energy LE 1M uncoded PHY
// (Bluetooth Core Vol 6 Part B): 1 Mb/s GFSK with BT = 0.5 and ±250 kHz
// deviation, a one-byte alternating preamble, a 32-bit access address, a
// 2-byte PDU header, channel-indexed data whitening and the 24-bit CRC.
//
// BLE lives at 2.4 GHz, outside the paper's 868 MHz gateway band — the
// package exists for the paper's first future-work item ("demonstrating a
// large number of IoT technologies") and to show that the Technology
// abstraction, the universal preamble builder and the kill filters carry
// over unchanged to a 2.4 GHz capture. The LE 1M air rate needs a capture
// rate of at least 5 MHz; tests run at 8 MHz.
package ble

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/dsp"
	"repro/internal/phy"
	"repro/internal/phy/fsk"
)

// AdvertisingAccessAddress is the fixed access address of advertising
// channel PDUs.
const AdvertisingAccessAddress = 0x8E89BED6

// Config parameterizes the PHY. Zero values take defaults via New.
type Config struct {
	AccessAddress uint32 // default AdvertisingAccessAddress
	Channel       byte   // whitening channel index (default 37, first advertising channel)
	MaxPayload    int    // PDU payload bytes (default 37, legacy advertising limit)
}

// Radio is a BLE LE 1M PHY instance, safe for concurrent use.
type Radio struct {
	cfg   Config
	modem fsk.Modem
}

// New validates cfg, fills defaults, and returns a Radio.
func New(cfg Config) (*Radio, error) {
	if cfg.AccessAddress == 0 {
		cfg.AccessAddress = AdvertisingAccessAddress
	}
	if cfg.Channel == 0 {
		cfg.Channel = 37
	}
	if cfg.MaxPayload == 0 {
		cfg.MaxPayload = 37
	}
	if cfg.Channel > 39 {
		return nil, fmt.Errorf("ble: channel %d out of range 0..39", cfg.Channel)
	}
	if cfg.MaxPayload < 1 || cfg.MaxPayload > 255 {
		return nil, fmt.Errorf("ble: max payload %d out of range", cfg.MaxPayload)
	}
	return &Radio{
		cfg:   cfg,
		modem: fsk.Modem{BitRate: 1e6, Deviation: 250e3, BT: 0.5},
	}, nil
}

// Default returns the advertising-channel-37 configuration.
func Default() *Radio {
	r, err := New(Config{})
	if err != nil {
		panic(err)
	}
	return r
}

// Name implements phy.Technology.
func (r *Radio) Name() string { return "ble" }

// Class implements phy.Technology.
func (r *Radio) Class() phy.Class { return phy.ClassFSK }

// Config returns the active configuration.
func (r *Radio) Config() Config { return r.cfg }

// Tones implements phy.ToneTechnology.
func (r *Radio) Tones() []float64 { return []float64{-250e3, 250e3} }

// Info implements phy.Technology.
func (r *Radio) Info() phy.Info {
	return phy.Info{
		Name:       "ble",
		Modulation: "GFSK",
		Sync:       "4 bytes",
		Preamble:   "'01010101'",
		MaxPayload: r.cfg.MaxPayload,
	}
}

// BitRate implements phy.Technology.
func (r *Radio) BitRate() float64 { return 1e6 }

// preambleByte returns the alternating preamble whose first bit matches
// the access address LSB, per the spec.
func (r *Radio) preambleByte() byte {
	if r.cfg.AccessAddress&1 == 1 {
		return 0x55
	}
	return 0xAA
}

// headerAirBits returns preamble + access address, LSB first.
func (r *Radio) headerAirBits() []byte {
	aa := r.cfg.AccessAddress
	hdr := []byte{
		r.preambleByte(),
		byte(aa), byte(aa >> 8), byte(aa >> 16), byte(aa >> 24),
	}
	return bits.UnpackLSB(hdr)
}

// Preamble implements phy.Technology: preamble + access address waveform.
func (r *Radio) Preamble(fs float64) []complex128 {
	w, err := r.modem.ModulateBits(r.headerAirBits(), fs)
	if err != nil {
		panic(err)
	}
	return w
}

// pdu assembles the PDU: header (type 0x02 = ADV_NONCONN_IND, length) +
// payload, followed by the CRC24 computed over the PDU.
func (r *Radio) pdu(payload []byte) (pduBytes []byte, crc uint32) {
	pduBytes = append([]byte{0x02, byte(len(payload))}, payload...)
	return pduBytes, bits.CRC24BLE(0x555555, pduBytes)
}

// Modulate implements phy.Technology.
func (r *Radio) Modulate(payload []byte, fs float64) ([]complex128, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("ble: empty payload")
	}
	if len(payload) > r.cfg.MaxPayload {
		return nil, fmt.Errorf("ble: payload %d exceeds max %d", len(payload), r.cfg.MaxPayload)
	}
	pduBytes, crc := r.pdu(payload)
	body := append(append([]byte{}, pduBytes...), byte(crc>>16), byte(crc>>8), byte(crc))
	// Whitening runs over PDU+CRC as LSB-first air bits.
	air := bits.UnpackLSB(body)
	w := bits.NewBLEWhitener(r.cfg.Channel)
	w.Apply(air)
	stream := append(r.headerAirBits(), air...)
	return r.modem.ModulateBits(stream, fs)
}

// MaxPacketSamples implements phy.Technology.
func (r *Radio) MaxPacketSamples(fs float64) int {
	nBits := len(r.headerAirBits()) + 8*(2+r.cfg.MaxPayload+3)
	return r.modem.NumSamples(nBits, fs)
}

// Demodulate implements phy.Technology.
func (r *Radio) Demodulate(rx []complex128, fs float64) (*phy.Frame, error) {
	if err := r.modem.Validate(fs); err != nil {
		return nil, err
	}
	hdrAirBits := r.headerAirBits()
	if len(rx) < r.modem.NumSamples(len(hdrAirBits)+8*5, fs) {
		return nil, fmt.Errorf("%w: ble window too short", phy.ErrNoFrame)
	}
	disc := r.modem.Discriminate(rx, fs)
	start, quality := r.modem.SyncDisc(disc, hdrAirBits, fs)
	if quality < 0.35 {
		return nil, fmt.Errorf("%w: ble preamble not found (quality %.3f)", phy.ErrNoFrame, quality)
	}
	cfo := r.modem.EstimateCFO(disc, start, 8, fs) // preamble byte only

	pduStart := start + r.modem.NumSamples(len(hdrAirBits), fs)
	parse := func(demodBits func(at, n int) []byte) (payload []byte, crcOK bool, err error) {
		// Header (2 bytes) first, to learn the length; de-whiten requires a
		// fresh whitener per pass over a prefix, so demodulate the whole
		// whitened stretch then de-whiten in one go.
		hdrAir := demodBits(pduStart, 16)
		w := bits.NewBLEWhitener(r.cfg.Channel)
		hdrBits := append([]byte{}, hdrAir...)
		w.Apply(hdrBits)
		hdr := bits.PackLSB(hdrBits)
		length := int(hdr[1])
		if length == 0 || length > r.cfg.MaxPayload {
			return nil, false, fmt.Errorf("%w: ble length %d invalid", phy.ErrNoFrame, length)
		}
		totalBits := 8 * (2 + length + 3)
		raw := demodBits(pduStart, totalBits)
		w2 := bits.NewBLEWhitener(r.cfg.Channel)
		w2.Apply(raw)
		body := bits.PackLSB(raw)
		pduBytes := body[:2+length]
		gotCRC := uint32(body[2+length])<<16 | uint32(body[2+length+1])<<8 | uint32(body[2+length+2])
		return pduBytes[2:], gotCRC == bits.CRC24BLE(0x555555, pduBytes), nil
	}
	payload, crcOK, perr := parse(func(at, n int) []byte {
		return r.modem.DemodulateBits(disc, at, n, fs, cfo)
	})
	if perr != nil || !crcOK {
		p2, ok2, err2 := parse(func(at, n int) []byte {
			return r.modem.DemodulateBitsTone(rx, at, n, fs, cfo)
		})
		if err2 == nil && ok2 {
			payload, crcOK, perr = p2, ok2, nil
		}
	}
	if perr != nil {
		return nil, perr
	}

	frame := &phy.Frame{
		Tech:    "ble",
		Payload: append([]byte{}, payload...),
		CRCOK:   crcOK,
		Bits:    len(payload) * 8,
		Offset:  start,
		CFO:     cfo,
	}
	if crcOK {
		if ref, err := r.Modulate(frame.Payload, fs); err == nil {
			end := start + len(ref)
			if end > len(rx) {
				end = len(rx)
			}
			seg := rx[start:end]
			refSeg := ref[:len(seg)]
			var proj complex128
			for i := range seg {
				proj += seg[i] * complex(real(refSeg[i]), -imag(refSeg[i]))
			}
			if e := dsp.Energy(refSeg); e > 0 {
				frame.Gain = proj / complex(e, 0)
			}
			frame.SNRdB = dsp.DB(dsp.EstimateSNR(seg, refSeg))
		}
	}
	return frame, nil
}

var _ phy.ToneTechnology = (*Radio)(nil)
