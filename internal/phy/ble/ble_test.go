package ble

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
	"repro/internal/phy"
	"repro/internal/rng"
)

// BLE LE 1M needs a wide capture; 8 MHz gives 8 samples per bit.
const fs = 8e6

func TestDefaults(t *testing.T) {
	r := Default()
	c := r.Config()
	if c.AccessAddress != AdvertisingAccessAddress || c.Channel != 37 || c.MaxPayload != 37 {
		t.Fatalf("defaults %+v", c)
	}
	if r.Name() != "ble" || r.Class() != phy.ClassFSK || r.BitRate() != 1e6 {
		t.Fatal("identity")
	}
	tones := r.Tones()
	if tones[0] != -250e3 || tones[1] != 250e3 {
		t.Fatalf("tones %v", tones)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{Channel: 45}); err == nil {
		t.Fatal("channel 45 accepted")
	}
	if _, err := New(Config{MaxPayload: 999}); err == nil {
		t.Fatal("payload 999 accepted")
	}
	r := Default()
	if _, err := r.Modulate(nil, fs); err == nil {
		t.Fatal("empty payload")
	}
	if _, err := r.Modulate(make([]byte, 38), fs); err == nil {
		t.Fatal("payload over max")
	}
	if _, err := r.Demodulate(make([]complex128, 64), fs); !errors.Is(err, phy.ErrNoFrame) {
		t.Fatal("short window")
	}
	// LE 1M cannot run at the 868-band gateway rate.
	if _, err := r.Modulate([]byte{1}, 1e6); err == nil {
		t.Fatal("1 MHz capture accepted for a 1 Mb/s PHY")
	}
}

func TestPreambleMatchesAccessAddressLSB(t *testing.T) {
	// 0x8E89BED6 has LSB 0 -> preamble 0xAA
	if Default().preambleByte() != 0xAA {
		t.Fatal("advertising preamble should be 0xAA")
	}
	r, _ := New(Config{AccessAddress: 0x12345679}) // odd LSB
	if r.preambleByte() != 0x55 {
		t.Fatal("odd access address should select 0x55")
	}
}

func TestRoundTripClean(t *testing.T) {
	r := Default()
	payload := []byte("BLE advertisement!")
	sig, err := r.Modulate(payload, fs)
	if err != nil {
		t.Fatal(err)
	}
	rx := make([]complex128, len(sig)+8000)
	dsp.Add(rx, sig, 3000)
	frame, err := r.Demodulate(rx, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
		t.Fatalf("payload %q crc %v", frame.Payload, frame.CRCOK)
	}
	if frame.Offset < 2995 || frame.Offset > 3005 {
		t.Fatalf("offset %d", frame.Offset)
	}
}

func TestRoundTripNoiseAndCFO(t *testing.T) {
	r := Default()
	gen := rng.New(1)
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	sig, _ := r.Modulate(payload, fs)
	for _, tc := range []struct{ snr, cfo float64 }{{12, 0}, {12, 20e3}} {
		rx := make([]complex128, len(sig)+6000)
		for i := range rx {
			rx[i] = gen.Complex()
		}
		s := dsp.Mix(dsp.Clone(sig), tc.cfo, 0.4, fs)
		dsp.Scale(s, math.Sqrt(dsp.FromDB(tc.snr)))
		dsp.Add(rx, s, 2000)
		frame, err := r.Demodulate(rx, fs)
		if err != nil {
			t.Fatalf("snr=%v cfo=%v: %v", tc.snr, tc.cfo, err)
		}
		if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
			t.Fatalf("snr=%v cfo=%v: %x", tc.snr, tc.cfo, frame.Payload)
		}
	}
}

func TestRoundTripRandomChannels(t *testing.T) {
	gen := rng.New(2)
	f := func(chRaw, lenRaw uint8) bool {
		ch := chRaw % 40
		if ch == 0 {
			ch = 38
		}
		r, err := New(Config{Channel: ch})
		if err != nil {
			return false
		}
		n := int(lenRaw%24) + 1
		payload := make([]byte, n)
		gen.Bytes(payload)
		sig, err := r.Modulate(payload, fs)
		if err != nil {
			return false
		}
		rx := make([]complex128, len(sig)+3000)
		dsp.Add(rx, sig, 1000)
		frame, err := r.Demodulate(rx, fs)
		if err != nil {
			return false
		}
		return frame.CRCOK && bytes.Equal(frame.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestWrongChannelFailsCRC(t *testing.T) {
	// De-whitening with the wrong channel index scrambles the PDU.
	tx, _ := New(Config{Channel: 37})
	rxr, _ := New(Config{Channel: 38})
	sig, _ := tx.Modulate([]byte{1, 2, 3, 4}, fs)
	rx := make([]complex128, len(sig)+2000)
	dsp.Add(rx, sig, 500)
	if frame, err := rxr.Demodulate(rx, fs); err == nil && frame.CRCOK {
		t.Fatal("wrong-channel whitening passed CRC")
	}
}

func TestMaxPacketSamplesCovers(t *testing.T) {
	r := Default()
	sig, err := r.Modulate(make([]byte, 37), fs)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxPacketSamples(fs) < len(sig) {
		t.Fatalf("MaxPacketSamples %d < %d", r.MaxPacketSamples(fs), len(sig))
	}
}

func TestUniversalPreambleInteropAt2G4(t *testing.T) {
	// The BLE preamble participates in the universal-preamble machinery at
	// a 2.4 GHz capture rate, showing the abstraction carries over.
	pre := Default().Preamble(fs)
	if len(pre) == 0 {
		t.Fatal("empty preamble")
	}
	if p := dsp.Power(pre); math.Abs(p-1) > 1e-9 {
		t.Fatalf("preamble power %v", p)
	}
}

func BenchmarkDemodulate(b *testing.B) {
	r := Default()
	sig, _ := r.Modulate([]byte{1, 2, 3, 4, 5, 6, 7, 8}, fs)
	rx := make([]complex128, len(sig)+1000)
	dsp.Add(rx, sig, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Demodulate(rx, fs); err != nil {
			b.Fatal(err)
		}
	}
}
