// Package xbee implements an XBee-868-class GFSK PHY in the style of IEEE
// 802.15.4g SUN FSK: a 0x55 preamble, a 16-bit start-of-frame delimiter, a
// one-byte length header, PN9 payload whitening and a CRC-16 frame check
// sequence, transmitted GFSK (BT = 0.5) with ±10 kHz deviation at 20 kb/s.
// Bits go on the air least-significant first, as in 802.15.4.
package xbee

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/dsp"
	"repro/internal/phy"
	"repro/internal/phy/fsk"
)

// Config parameterizes the PHY. Zero values take defaults via New.
type Config struct {
	BitRate     float64 // air bit rate (default 20 kb/s)
	Deviation   float64 // FSK deviation in Hz (default 10 kHz)
	BT          float64 // Gaussian shaping product (default 0.5)
	PreambleLen int     // preamble bytes of 0x55 (default 4, per Table 1)
	MaxPayload  int     // bytes (default 96)
}

// Radio is an XBee PHY instance, safe for concurrent use.
type Radio struct {
	cfg   Config
	modem fsk.Modem
}

// sfd is the 16-bit start-of-frame delimiter (802.15.4g SUN FSK SFD value
// for uncoded frames).
var sfd = [2]byte{0x90, 0x4E}

// New validates cfg, fills defaults, and returns a Radio.
func New(cfg Config) (*Radio, error) {
	if cfg.BitRate == 0 {
		cfg.BitRate = 20e3
	}
	if cfg.Deviation == 0 {
		cfg.Deviation = 10e3
	}
	if cfg.BT == 0 {
		cfg.BT = 0.5
	}
	if cfg.PreambleLen == 0 {
		cfg.PreambleLen = 4
	}
	if cfg.MaxPayload == 0 {
		cfg.MaxPayload = 96
	}
	if cfg.BitRate <= 0 || cfg.Deviation <= 0 {
		return nil, fmt.Errorf("xbee: bit rate and deviation must be positive")
	}
	if cfg.PreambleLen < 2 {
		return nil, fmt.Errorf("xbee: preamble length %d too short", cfg.PreambleLen)
	}
	if cfg.MaxPayload < 1 || cfg.MaxPayload > 255 {
		return nil, fmt.Errorf("xbee: max payload %d out of range", cfg.MaxPayload)
	}
	return &Radio{
		cfg:   cfg,
		modem: fsk.Modem{BitRate: cfg.BitRate, Deviation: cfg.Deviation, BT: cfg.BT},
	}, nil
}

// Default returns the configuration used in the paper reproduction.
func Default() *Radio {
	r, err := New(Config{})
	if err != nil {
		panic(err)
	}
	return r
}

// Name implements phy.Technology.
func (r *Radio) Name() string { return "xbee" }

// Class implements phy.Technology.
func (r *Radio) Class() phy.Class { return phy.ClassFSK }

// Config returns the active configuration.
func (r *Radio) Config() Config { return r.cfg }

// Tones implements phy.ToneTechnology.
func (r *Radio) Tones() []float64 { return []float64{-r.cfg.Deviation, +r.cfg.Deviation} }

// Info implements phy.Technology.
func (r *Radio) Info() phy.Info {
	return phy.Info{
		Name:       "xbee",
		Modulation: "GFSK",
		Sync:       "4 bytes",
		Preamble:   "'01010101'",
		MaxPayload: r.cfg.MaxPayload,
	}
}

// BitRate implements phy.Technology.
func (r *Radio) BitRate() float64 { return r.cfg.BitRate }

// headerAirBits returns the on-air bits of preamble + SFD.
func (r *Radio) headerAirBits() []byte {
	hdr := make([]byte, 0, r.cfg.PreambleLen+2)
	for i := 0; i < r.cfg.PreambleLen; i++ {
		hdr = append(hdr, 0x55)
	}
	hdr = append(hdr, sfd[0], sfd[1])
	return bits.UnpackLSB(hdr)
}

// Preamble implements phy.Technology: the preamble + SFD waveform.
func (r *Radio) Preamble(fs float64) []complex128 {
	w, err := r.modem.ModulateBits(r.headerAirBits(), fs)
	if err != nil {
		panic(err)
	}
	return w
}

// frameAirBits assembles the complete on-air bit stream of a frame.
func (r *Radio) frameAirBits(payload []byte) []byte {
	crc := bits.CRC16IBM(payload)
	body := append(append([]byte{}, payload...), byte(crc), byte(crc>>8))
	w := bits.NewDC9Whitener()
	body = w.ApplyBytes(body)
	frame := append([]byte{byte(len(payload))}, body...)
	air := append([]byte{}, r.headerAirBits()...)
	return append(air, bits.UnpackLSB(frame)...)
}

// Modulate implements phy.Technology.
func (r *Radio) Modulate(payload []byte, fs float64) ([]complex128, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("xbee: empty payload")
	}
	if len(payload) > r.cfg.MaxPayload {
		return nil, fmt.Errorf("xbee: payload %d exceeds max %d", len(payload), r.cfg.MaxPayload)
	}
	return r.modem.ModulateBits(r.frameAirBits(payload), fs)
}

// MaxPacketSamples implements phy.Technology.
func (r *Radio) MaxPacketSamples(fs float64) int {
	nBits := len(r.headerAirBits()) + 8*(1+r.cfg.MaxPayload+2)
	return r.modem.NumSamples(nBits, fs)
}

// Demodulate implements phy.Technology.
func (r *Radio) Demodulate(rx []complex128, fs float64) (*phy.Frame, error) {
	if err := r.modem.Validate(fs); err != nil {
		return nil, err
	}
	hdrAirBits := r.headerAirBits()
	pre := r.Preamble(fs)
	if len(rx) < len(pre)+r.modem.NumSamples(8*3, fs) {
		return nil, fmt.Errorf("%w: xbee window too short", phy.ErrNoFrame)
	}
	disc := r.modem.Discriminate(rx, fs)
	start, quality := r.modem.SyncDisc(disc, hdrAirBits, fs)
	if quality < 0.35 {
		return nil, fmt.Errorf("%w: xbee preamble not found (quality %.3f)", phy.ErrNoFrame, quality)
	}
	// CFO from the DC-balanced 0x55 preamble run.
	cfo := r.modem.EstimateCFO(disc, start, 8*r.cfg.PreambleLen, fs)

	hdrBits := len(hdrAirBits)
	dataStart := start + r.modem.NumSamples(hdrBits, fs)

	// parse runs the frame state machine over one bit-decision strategy.
	parse := func(demodBits func(at, n int) []byte) (payload []byte, length int, crcOK bool, err error) {
		lenBits := demodBits(dataStart, 8)
		length = int(bits.PackLSB(lenBits)[0])
		if length == 0 || length > r.cfg.MaxPayload {
			return nil, 0, false, fmt.Errorf("%w: xbee length %d invalid", phy.ErrNoFrame, length)
		}
		bodyBits := 8 * (length + 2)
		bodyStart := dataStart + r.modem.NumSamples(8, fs)
		raw := demodBits(bodyStart, bodyBits)
		body := bits.PackLSB(raw)
		w := bits.NewDC9Whitener()
		body = w.ApplyBytes(body)
		payload = body[:length]
		gotCRC := uint16(body[length]) | uint16(body[length+1])<<8
		return payload, length, gotCRC == bits.CRC16IBM(payload), nil
	}
	// Primary path: FM discriminator (best in clean AWGN). Fallback:
	// noncoherent tone detection, which survives residual interference
	// left behind by the cloud's kill filters.
	payload, length, crcOK, perr := parse(func(at, n int) []byte {
		return r.modem.DemodulateBits(disc, at, n, fs, cfo)
	})
	if perr != nil || !crcOK {
		p2, l2, ok2, err2 := parse(func(at, n int) []byte {
			return r.modem.DemodulateBitsTone(rx, at, n, fs, cfo)
		})
		if err2 == nil && ok2 {
			payload, length, crcOK, perr = p2, l2, ok2, nil
		}
	}
	if perr != nil {
		return nil, perr
	}

	frame := &phy.Frame{
		Tech:    "xbee",
		Payload: payload,
		CRCOK:   crcOK,
		Bits:    length * 8,
		Offset:  start,
		CFO:     cfo,
	}
	if crcOK {
		if ref, err := r.Modulate(payload, fs); err == nil {
			end := start + len(ref)
			if end > len(rx) {
				end = len(rx)
			}
			seg := rx[start:end]
			refSeg := ref[:len(seg)]
			var proj complex128
			for i := range seg {
				proj += seg[i] * complex(real(refSeg[i]), -imag(refSeg[i]))
			}
			if e := dsp.Energy(refSeg); e > 0 {
				frame.Gain = proj / complex(e, 0)
			}
			frame.SNRdB = dsp.DB(dsp.EstimateSNR(seg, refSeg))
		}
	}
	return frame, nil
}

// Airtime reports the frame duration in seconds for a payload length.
func (r *Radio) Airtime(payloadLen int, fs float64) float64 {
	nBits := len(r.headerAirBits()) + 8*(1+payloadLen+2)
	return float64(r.modem.NumSamples(nBits, fs)) / fs
}

var _ phy.ToneTechnology = (*Radio)(nil)
