package xbee

import (
	"bytes"
	"errors"
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
	"repro/internal/phy"
	"repro/internal/rng"
)

const fs = 1e6

func TestNewDefaults(t *testing.T) {
	r := Default()
	c := r.Config()
	if c.BitRate != 20e3 || c.Deviation != 10e3 || c.BT != 0.5 || c.PreambleLen != 4 || c.MaxPayload != 96 {
		t.Fatalf("defaults %+v", c)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{PreambleLen: 1}); err == nil {
		t.Fatal("preamble 1 should be rejected")
	}
	if _, err := New(Config{MaxPayload: 999}); err == nil {
		t.Fatal("max payload 999 should be rejected")
	}
	if _, err := New(Config{BitRate: -5}); err == nil {
		t.Fatal("negative bit rate should be rejected")
	}
}

func TestIdentity(t *testing.T) {
	r := Default()
	if r.Name() != "xbee" || r.Class() != phy.ClassFSK || r.BitRate() != 20e3 {
		t.Fatal("identity")
	}
	tones := r.Tones()
	if len(tones) != 2 || tones[0] != -10e3 || tones[1] != 10e3 {
		t.Fatalf("tones %v", tones)
	}
	info := r.Info()
	if info.Modulation != "GFSK" || info.Preamble != "'01010101'" {
		t.Fatalf("info %+v", info)
	}
}

func TestRoundTripClean(t *testing.T) {
	r := Default()
	payload := []byte("xbee sensor reading 42")
	sig, err := r.Modulate(payload, fs)
	if err != nil {
		t.Fatal(err)
	}
	rx := make([]complex128, len(sig)+4000)
	dsp.Add(rx, sig, 1777)
	frame, err := r.Demodulate(rx, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
		t.Fatalf("payload %q crc %v", frame.Payload, frame.CRCOK)
	}
	if frame.Offset < 1777-2 || frame.Offset > 1777+2 {
		t.Fatalf("offset %d, want ~1777", frame.Offset)
	}
	if cmplx.Abs(frame.Gain-1) > 0.1 {
		t.Fatalf("gain %v", frame.Gain)
	}
}

func TestRoundTripRandomPayloads(t *testing.T) {
	r := Default()
	gen := rng.New(11)
	f := func(lenRaw uint8) bool {
		n := int(lenRaw%40) + 1
		payload := make([]byte, n)
		gen.Bytes(payload)
		sig, err := r.Modulate(payload, fs)
		if err != nil {
			return false
		}
		rx := make([]complex128, len(sig)+2000)
		dsp.Add(rx, sig, 600)
		frame, err := r.Demodulate(rx, fs)
		if err != nil {
			return false
		}
		return frame.CRCOK && bytes.Equal(frame.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripNoiseAndCFO(t *testing.T) {
	r := Default()
	gen := rng.New(12)
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	sig, _ := r.Modulate(payload, fs)
	for _, tc := range []struct{ snrDB, cfo float64 }{{15, 0}, {10, 1500}, {12, -900}} {
		rx := make([]complex128, len(sig)+3000)
		for i := range rx {
			rx[i] = gen.Complex()
		}
		s := dsp.Mix(dsp.Clone(sig), tc.cfo, 0.2, fs)
		dsp.Scale(s, math.Sqrt(dsp.FromDB(tc.snrDB)))
		dsp.Add(rx, s, 1200)
		frame, err := r.Demodulate(rx, fs)
		if err != nil {
			t.Fatalf("snr=%v cfo=%v: %v", tc.snrDB, tc.cfo, err)
		}
		if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
			t.Fatalf("snr=%v cfo=%v: bad payload %x", tc.snrDB, tc.cfo, frame.Payload)
		}
	}
}

func TestDemodulateNoise(t *testing.T) {
	r := Default()
	gen := rng.New(13)
	rx := make([]complex128, 60000)
	for i := range rx {
		rx[i] = gen.Complex()
	}
	if frame, err := r.Demodulate(rx, fs); err == nil && frame.CRCOK {
		t.Fatal("pure noise produced a CRC-valid frame")
	}
}

func TestDemodulateErrNoFrameWrapped(t *testing.T) {
	r := Default()
	if _, err := r.Demodulate(make([]complex128, 100), fs); !errors.Is(err, phy.ErrNoFrame) {
		t.Fatalf("short window error %v should wrap ErrNoFrame", err)
	}
}

func TestCorruptedCRCDetected(t *testing.T) {
	r := Default()
	payload := []byte{9, 9, 9, 9}
	sig, _ := r.Modulate(payload, fs)
	rx := make([]complex128, len(sig)+1000)
	dsp.Add(rx, sig, 300)
	// Hit a narrow burst in the middle of the payload region with strong
	// interference.
	mid := 300 + len(sig)*3/4
	for i := mid; i < mid+120 && i < len(rx); i++ {
		rx[i] += complex(3, 3)
	}
	frame, err := r.Demodulate(rx, fs)
	if err == nil && frame.CRCOK && !bytes.Equal(frame.Payload, payload) {
		t.Fatal("corrupted frame passed CRC with wrong payload")
	}
}

func TestModulateRejects(t *testing.T) {
	r := Default()
	if _, err := r.Modulate(nil, fs); err == nil {
		t.Fatal("empty payload")
	}
	if _, err := r.Modulate(make([]byte, 97), fs); err == nil {
		t.Fatal("oversized payload")
	}
}

func TestMaxPacketSamplesCoversModulated(t *testing.T) {
	r := Default()
	sig, err := r.Modulate(make([]byte, 96), fs)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxPacketSamples(fs) < len(sig) {
		t.Fatalf("MaxPacketSamples %d < %d", r.MaxPacketSamples(fs), len(sig))
	}
}

func TestAirtime(t *testing.T) {
	r := Default()
	// 4+2 header bytes + 1 len + 8 payload + 2 crc = 17 bytes = 136 bits at
	// 20 kb/s = 6.8 ms
	if at := r.Airtime(8, fs); math.Abs(at-0.0068) > 1e-4 {
		t.Fatalf("airtime %v", at)
	}
}

func TestPreambleUnitPower(t *testing.T) {
	p := Default().Preamble(fs)
	if math.Abs(dsp.Power(p)-1) > 1e-9 {
		t.Fatalf("preamble power %v", dsp.Power(p))
	}
}

func BenchmarkModulate16B(b *testing.B) {
	r := Default()
	payload := make([]byte, 16)
	for i := 0; i < b.N; i++ {
		if _, err := r.Modulate(payload, fs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDemodulate16B(b *testing.B) {
	r := Default()
	payload := make([]byte, 16)
	sig, _ := r.Modulate(payload, fs)
	rx := make([]complex128, len(sig)+500)
	dsp.Add(rx, sig, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Demodulate(rx, fs); err != nil {
			b.Fatal(err)
		}
	}
}
