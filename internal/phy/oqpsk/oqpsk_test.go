package oqpsk

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
	"repro/internal/phy"
	"repro/internal/rng"
)

const fs = 1e6

func TestChipTableProperties(t *testing.T) {
	// All 16 sequences distinct.
	for a := 0; a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			if chipTable[a] == chipTable[b] {
				t.Fatalf("sequences %d and %d identical", a, b)
			}
		}
	}
	// Every sequence is balanced to within a few chips and has low cross-
	// correlation with the others (quasi-orthogonality).
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			if a == b {
				continue
			}
			agree := 0
			for i := 0; i < 32; i++ {
				if chipTable[a][i] == chipTable[b][i] {
					agree++
				}
			}
			// |correlation| = |2*agree-32|; 802.15.4 codes keep this low
			if d := agree - 16; d < -8 || d > 8 {
				t.Fatalf("codes %d,%d agreement %d of 32", a, b, agree)
			}
		}
	}
}

func TestChipCodesAccessor(t *testing.T) {
	codes := Default().ChipCodes()
	if len(codes) != 16 {
		t.Fatalf("%d codes", len(codes))
	}
	for i, c := range codes {
		if len(c) != 32 {
			t.Fatalf("code %d length %d", i, len(c))
		}
	}
	// mutation of the returned slice must not affect the table
	codes[0][0] ^= 1
	if Default().ChipCodes()[0][0] == codes[0][0] {
		t.Fatal("ChipCodes aliases internal table")
	}
}

func TestIdentity(t *testing.T) {
	r := Default()
	if r.Name() != "oqpsk" || r.Class() != phy.ClassDSSS {
		t.Fatal("identity")
	}
	if r.BitRate() != 31250 {
		t.Fatalf("bit rate %v", r.BitRate())
	}
	if r.ChipRate() != 250e3 {
		t.Fatalf("chip rate %v", r.ChipRate())
	}
}

func TestSymbolsBytesRoundTrip(t *testing.T) {
	if err := quick.Check(func(data []byte) bool {
		return bytes.Equal(bytesOfSymbols(symbolsOf(data)), data)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDespreadCleanSymbols(t *testing.T) {
	for sym := 0; sym < 16; sym++ {
		soft := make([]float64, 32)
		for i, c := range chipTable[sym] {
			soft[i] = float64(2*int(c) - 1)
		}
		got, score := despreadSymbol(soft)
		if got != byte(sym) {
			t.Fatalf("symbol %d despread as %d", sym, got)
		}
		if math.Abs(score-1) > 1e-9 {
			t.Fatalf("perfect despread score %v", score)
		}
	}
}

func TestRoundTripClean(t *testing.T) {
	r := Default()
	payload := []byte("thread-style frame")
	sig, err := r.Modulate(payload, fs)
	if err != nil {
		t.Fatal(err)
	}
	rx := make([]complex128, len(sig)+3000)
	dsp.Add(rx, sig, 1234)
	frame, err := r.Demodulate(rx, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
		t.Fatalf("payload %q crc %v", frame.Payload, frame.CRCOK)
	}
	if frame.Offset != 1234 {
		t.Fatalf("offset %d", frame.Offset)
	}
}

func TestRoundTripWithPhaseRotation(t *testing.T) {
	r := Default()
	payload := []byte{0xAA, 0x55, 0x0F}
	sig, _ := r.Modulate(payload, fs)
	rot := dsp.ScaleComplex(dsp.Clone(sig), complex(math.Cos(1.1), math.Sin(1.1)))
	rx := make([]complex128, len(sig)+1000)
	dsp.Add(rx, rot, 300)
	frame, err := r.Demodulate(rx, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
		t.Fatalf("rotated payload %x", frame.Payload)
	}
}

func TestRoundTripNoise(t *testing.T) {
	r := Default()
	gen := rng.New(31)
	payload := []byte{1, 2, 3, 4, 5, 6}
	sig, _ := r.Modulate(payload, fs)
	// DSSS processing gain (32 chips) lets O-QPSK survive low SNR.
	for _, snrDB := range []float64{10, 0} {
		rx := make([]complex128, len(sig)+2000)
		for i := range rx {
			rx[i] = gen.Complex()
		}
		s := dsp.Scale(dsp.Clone(sig), math.Sqrt(dsp.FromDB(snrDB)))
		dsp.Add(rx, s, 700)
		frame, err := r.Demodulate(rx, fs)
		if err != nil {
			t.Fatalf("snr %v: %v", snrDB, err)
		}
		if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
			t.Fatalf("snr %v: payload %x", snrDB, frame.Payload)
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	r := Default()
	gen := rng.New(32)
	f := func(lenRaw uint8) bool {
		n := int(lenRaw%24) + 1
		payload := make([]byte, n)
		gen.Bytes(payload)
		sig, err := r.Modulate(payload, fs)
		if err != nil {
			return false
		}
		rx := make([]complex128, len(sig)+1000)
		dsp.Add(rx, sig, 250)
		frame, err := r.Demodulate(rx, fs)
		if err != nil {
			return false
		}
		return frame.CRCOK && bytes.Equal(frame.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{ChipRate: -1}); err == nil {
		t.Fatal("negative chip rate")
	}
	if _, err := New(Config{PreambleLen: 1}); err == nil {
		t.Fatal("short preamble")
	}
	r := Default()
	if _, err := r.Modulate(nil, fs); err == nil {
		t.Fatal("empty payload")
	}
	if _, err := r.Modulate([]byte{1}, 333333); err == nil {
		t.Fatal("bad sample rate")
	}
	if _, err := r.Demodulate(make([]complex128, 16), fs); !errors.Is(err, phy.ErrNoFrame) {
		t.Fatal("short window should be ErrNoFrame")
	}
}

func TestConstantEnvelopeInterior(t *testing.T) {
	r := Default()
	sig, _ := r.Modulate([]byte{0x12, 0x34, 0x56}, fs)
	// interior samples (skip edges where only one rail is active)
	var minM, maxM = math.Inf(1), 0.0
	for _, v := range sig[200 : len(sig)-200] {
		m := real(v)*real(v) + imag(v)*imag(v)
		if m < minM {
			minM = m
		}
		if m > maxM {
			maxM = m
		}
	}
	if maxM/minM > 1.1 {
		t.Fatalf("envelope ripple %v", maxM/minM)
	}
}

func TestMaxPacketSamplesCovers(t *testing.T) {
	r := Default()
	sig, err := r.Modulate(make([]byte, 96), fs)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxPacketSamples(fs) < len(sig) {
		t.Fatalf("MaxPacketSamples %d < %d", r.MaxPacketSamples(fs), len(sig))
	}
}

func BenchmarkModulate16B(b *testing.B) {
	r := Default()
	payload := make([]byte, 16)
	for i := 0; i < b.N; i++ {
		if _, err := r.Modulate(payload, fs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDemodulate16B(b *testing.B) {
	r := Default()
	payload := make([]byte, 16)
	sig, _ := r.Modulate(payload, fs)
	rx := make([]complex128, len(sig)+500)
	dsp.Add(rx, sig, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Demodulate(rx, fs); err != nil {
			b.Fatal(err)
		}
	}
}
