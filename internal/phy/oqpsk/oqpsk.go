// Package oqpsk implements an IEEE 802.15.4-style O-QPSK DSSS PHY — the
// modulation family of Thread and WirelessHART in the paper's Table 1, and
// the target of the KILL-CODES cancellation filter. Each 4-bit symbol is
// spread to a 32-chip pseudo-noise sequence (the standard 802.15.4 set:
// eight cyclic shifts of a base sequence plus their odd-chip-conjugated
// twins); chips are transmitted offset-QPSK with half-sine pulse shaping
// (even chips on I, odd chips on Q, offset by one chip period), which gives
// a constant-envelope MSK-equivalent waveform.
package oqpsk

import (
	"fmt"
	"math"

	"repro/internal/bits"
	"repro/internal/dsp"
	"repro/internal/phy"
)

// base is the 802.15.4 2.4 GHz chip sequence for symbol 0, chip c0 first.
var base = [32]byte{
	1, 1, 0, 1, 1, 0, 0, 1,
	1, 1, 0, 0, 0, 0, 1, 1,
	0, 1, 0, 1, 0, 0, 1, 0,
	0, 0, 1, 0, 1, 1, 1, 0,
}

// chipTable holds the 16 spreading sequences indexed by symbol value.
var chipTable = buildChipTable()

func buildChipTable() [16][32]byte {
	var tbl [16][32]byte
	for sym := 0; sym < 8; sym++ {
		shift := 4 * sym
		for i := 0; i < 32; i++ {
			tbl[sym][i] = base[(i+32-shift)%32]
		}
	}
	for sym := 8; sym < 16; sym++ {
		tbl[sym] = tbl[sym-8]
		// conjugation: invert the odd-indexed (Q-channel) chips
		for i := 1; i < 32; i += 2 {
			tbl[sym][i] ^= 1
		}
	}
	return tbl
}

// sfd is the start-of-frame delimiter byte (802.15.4 value).
const sfd = 0xA7

// Config parameterizes the PHY. Zero values take defaults via New.
type Config struct {
	ChipRate    float64 // chips per second (default 250e3, giving 31.25 kb/s)
	PreambleLen int     // preamble bytes of 0x00 (default 4, per 802.15.4)
	MaxPayload  int     // bytes (default 96)
}

// Radio is an O-QPSK DSSS PHY instance, safe for concurrent use.
type Radio struct {
	cfg Config
}

// New validates cfg, fills defaults, and returns a Radio.
func New(cfg Config) (*Radio, error) {
	if cfg.ChipRate == 0 {
		cfg.ChipRate = 250e3
	}
	if cfg.PreambleLen == 0 {
		cfg.PreambleLen = 4
	}
	if cfg.MaxPayload == 0 {
		cfg.MaxPayload = 96
	}
	if cfg.ChipRate <= 0 {
		return nil, fmt.Errorf("oqpsk: chip rate must be positive")
	}
	if cfg.PreambleLen < 2 {
		return nil, fmt.Errorf("oqpsk: preamble length %d too short", cfg.PreambleLen)
	}
	if cfg.MaxPayload < 1 || cfg.MaxPayload > 255 {
		return nil, fmt.Errorf("oqpsk: max payload %d out of range", cfg.MaxPayload)
	}
	return &Radio{cfg: cfg}, nil
}

// Default returns the configuration used in the reproduction.
func Default() *Radio {
	r, err := New(Config{})
	if err != nil {
		panic(err)
	}
	return r
}

// Name implements phy.Technology.
func (r *Radio) Name() string { return "oqpsk" }

// Class implements phy.Technology.
func (r *Radio) Class() phy.Class { return phy.ClassDSSS }

// Config returns the active configuration.
func (r *Radio) Config() Config { return r.cfg }

// ChipRate implements phy.CodedTechnology.
func (r *Radio) ChipRate() float64 { return r.cfg.ChipRate }

// ChipCodes implements phy.CodedTechnology.
func (r *Radio) ChipCodes() [][]byte {
	out := make([][]byte, 16)
	for i := range chipTable {
		seq := make([]byte, 32)
		copy(seq, chipTable[i][:])
		out[i] = seq
	}
	return out
}

// Info implements phy.Technology.
func (r *Radio) Info() phy.Info {
	return phy.Info{
		Name:       "oqpsk",
		Modulation: "O-QPSK",
		Sync:       "4 bytes",
		Preamble:   "binary 0s",
		MaxPayload: r.cfg.MaxPayload,
	}
}

// BitRate implements phy.Technology: 4 bits per 32-chip symbol.
func (r *Radio) BitRate() float64 { return r.cfg.ChipRate / 32 * 4 }

// spc returns integer samples per chip at fs.
func (r *Radio) spc(fs float64) (int, error) {
	ratio := fs / r.cfg.ChipRate
	s := int(math.Round(ratio))
	if s < 2 || math.Abs(ratio-float64(s)) > 1e-9 {
		return 0, fmt.Errorf("oqpsk: sample rate %g must be an integer multiple (>=2) of chip rate %g", fs, r.cfg.ChipRate)
	}
	return s, nil
}

// symbolsOf expands bytes to 4-bit symbols, low nibble first (802.15.4
// order).
func symbolsOf(data []byte) []byte {
	out := make([]byte, 0, 2*len(data))
	for _, b := range data {
		out = append(out, b&0x0F, b>>4)
	}
	return out
}

// bytesOfSymbols inverts symbolsOf; a trailing odd symbol is dropped.
func bytesOfSymbols(symbols []byte) []byte {
	out := make([]byte, 0, len(symbols)/2)
	for i := 0; i+1 < len(symbols); i += 2 {
		out = append(out, symbols[i]&0x0F|symbols[i+1]<<4)
	}
	return out
}

// modulateSymbols produces the O-QPSK half-sine waveform of the given 4-bit
// symbols. The output is extended by one chip period for the trailing Q
// pulse; amplitude is normalized so the burst has unit average power.
func (r *Radio) modulateSymbols(symbols []byte, fs float64) ([]complex128, error) {
	spc, err := r.spc(fs)
	if err != nil {
		return nil, err
	}
	nChips := 32 * len(symbols)
	// Each chip occupies spc samples; I pulses start at even-chip
	// boundaries and span 2 chips; Q likewise, delayed by one chip.
	n := nChips*spc + spc
	iCh := make([]float64, n)
	qCh := make([]float64, n)
	pulse := make([]float64, 2*spc)
	for t := range pulse {
		pulse[t] = math.Sin(math.Pi * float64(t) / float64(2*spc))
	}
	chipIdx := 0
	for _, sym := range symbols {
		seq := chipTable[sym&0x0F]
		for i := 0; i < 32; i++ {
			d := float64(2*int(seq[i]) - 1)
			startSample := chipIdx * spc
			if i%2 == 0 {
				for t, p := range pulse {
					if startSample+t < n {
						iCh[startSample+t] += d * p
					}
				}
			} else {
				for t, p := range pulse {
					if startSample+t < n {
						qCh[startSample+t] += d * p
					}
				}
			}
			chipIdx++
		}
	}
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(iCh[i], qCh[i])
	}
	// O-QPSK with half-sine shaping is constant-envelope (|s| = 1) except
	// at the burst edges; normalize to unit average power.
	dsp.Normalize(out)
	return out, nil
}

// headerSymbols returns the preamble+SFD symbol stream.
func (r *Radio) headerSymbols() []byte {
	hdr := make([]byte, r.cfg.PreambleLen)
	hdr = append(hdr, sfd)
	return symbolsOf(hdr)
}

// Preamble implements phy.Technology.
func (r *Radio) Preamble(fs float64) []complex128 {
	w, err := r.modulateSymbols(r.headerSymbols(), fs)
	if err != nil {
		panic(err)
	}
	return w
}

// Modulate implements phy.Technology.
func (r *Radio) Modulate(payload []byte, fs float64) ([]complex128, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("oqpsk: empty payload")
	}
	if len(payload) > r.cfg.MaxPayload {
		return nil, fmt.Errorf("oqpsk: payload %d exceeds max %d", len(payload), r.cfg.MaxPayload)
	}
	crc := bits.CRC16IBM(payload)
	frame := append([]byte{byte(len(payload))}, payload...)
	frame = append(frame, byte(crc), byte(crc>>8))
	symbols := append(r.headerSymbols(), symbolsOf(frame)...)
	return r.modulateSymbols(symbols, fs)
}

// MaxPacketSamples implements phy.Technology.
func (r *Radio) MaxPacketSamples(fs float64) int {
	spc, err := r.spc(fs)
	if err != nil {
		return 0
	}
	nSym := len(r.headerSymbols()) + 2*(1+r.cfg.MaxPayload+2)
	return nSym*32*spc + spc
}

// chipSoft extracts soft chip values (I on even chips, Q on odd) from a
// derotated window starting at the given sample, for nChips chips.
func (r *Radio) chipSoft(rx []complex128, start, nChips, spc int) []float64 {
	out := make([]float64, nChips)
	for i := 0; i < nChips; i++ {
		// The half-sine pulse for chip i peaks one chip period after its
		// start boundary.
		center := start + i*spc + spc
		if center >= len(rx) {
			break
		}
		if i%2 == 0 {
			out[i] = real(rx[center])
		} else {
			out[i] = imag(rx[center])
		}
	}
	return out
}

// despreadSymbol correlates 32 soft chips against the chip table, returning
// the best symbol and its normalized correlation score.
func despreadSymbol(soft []float64) (byte, float64) {
	bestSym, bestScore := byte(0), math.Inf(-1)
	var energy float64
	for _, v := range soft {
		energy += v * v
	}
	for sym := 0; sym < 16; sym++ {
		var acc float64
		for i, v := range soft {
			if chipTable[sym][i] != 0 {
				acc += v
			} else {
				acc -= v
			}
		}
		if acc > bestScore {
			bestScore, bestSym = acc, byte(sym)
		}
	}
	if energy > 0 {
		bestScore /= math.Sqrt(energy * 32)
	}
	return bestSym, bestScore
}

// Demodulate implements phy.Technology.
func (r *Radio) Demodulate(rx []complex128, fs float64) (*phy.Frame, error) {
	spc, err := r.spc(fs)
	if err != nil {
		return nil, err
	}
	pre := r.Preamble(fs)
	minSyms := len(r.headerSymbols()) + 2*3
	if len(rx) < minSyms*32*spc {
		return nil, fmt.Errorf("%w: oqpsk window too short", phy.ErrNoFrame)
	}
	metric := dsp.NormalizedCorrelate(rx, pre)
	pk := dsp.MaxPeak(metric)
	if pk.Index < 0 || pk.Value < 0.15 {
		return nil, fmt.Errorf("%w: oqpsk preamble not found (peak %.3f)", phy.ErrNoFrame, pk.Value)
	}
	start := pk.Index
	// Channel phase from the complex correlation at the peak: derotate.
	corr := dsp.CrossCorrelate(rx[start:start+len(pre)], pre)
	work := dsp.Clone(rx[start:])
	if len(corr) > 0 {
		ph := math.Atan2(imag(corr[0]), real(corr[0]))
		s, c := math.Sincos(-ph)
		dsp.ScaleComplex(work, complex(c, s))
	}

	hdrSyms := len(r.headerSymbols())
	symAt := func(k int) (byte, float64) {
		soft := r.chipSoft(work, k*32*spc, 32, spc)
		return despreadSymbol(soft)
	}
	// length byte = symbols hdrSyms, hdrSyms+1
	lo, _ := symAt(hdrSyms)
	hi, _ := symAt(hdrSyms + 1)
	length := int(lo&0x0F | hi<<4)
	if length == 0 || length > r.cfg.MaxPayload {
		return nil, fmt.Errorf("%w: oqpsk length %d invalid", phy.ErrNoFrame, length)
	}
	bodySyms := 2 * (length + 2)
	if (hdrSyms+2+bodySyms)*32*spc > len(work)+spc {
		return nil, fmt.Errorf("%w: oqpsk window truncated", phy.ErrNoFrame)
	}
	symbols := make([]byte, bodySyms)
	for i := 0; i < bodySyms; i++ {
		symbols[i], _ = symAt(hdrSyms + 2 + i)
	}
	body := bytesOfSymbols(symbols)
	payload := body[:length]
	gotCRC := uint16(body[length]) | uint16(body[length+1])<<8
	crcOK := gotCRC == bits.CRC16IBM(payload)

	frame := &phy.Frame{
		Tech:    "oqpsk",
		Payload: append([]byte{}, payload...),
		CRCOK:   crcOK,
		Bits:    length * 8,
		Offset:  start,
	}
	if crcOK {
		if ref, merr := r.Modulate(frame.Payload, fs); merr == nil {
			end := start + len(ref)
			if end > len(rx) {
				end = len(rx)
			}
			seg := rx[start:end]
			refSeg := ref[:len(seg)]
			var proj complex128
			for i := range seg {
				proj += seg[i] * complex(real(refSeg[i]), -imag(refSeg[i]))
			}
			if e := dsp.Energy(refSeg); e > 0 {
				frame.Gain = proj / complex(e, 0)
			}
			frame.SNRdB = dsp.DB(dsp.EstimateSNR(seg, refSeg))
		}
	}
	return frame, nil
}

var _ phy.CodedTechnology = (*Radio)(nil)
