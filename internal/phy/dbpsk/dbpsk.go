// Package dbpsk implements a SigFox-class ultra-narrowband differential
// BPSK PHY — the PSK row of the paper's Table 1 and the technology class
// handled by KILL-FREQUENCY's narrowband variant. Data is encoded
// differentially (a '1' flips the carrier phase by π, a '0' keeps it), so
// the receiver needs no absolute phase reference; energy stays confined to
// a band of roughly twice the symbol rate around the carrier.
//
// Real SigFox transmits 100 bps uplinks; at the gateway's 1 MHz capture
// rate a single frame would span seconds, so the default profile scales the
// rate to 2 kb/s while preserving the ultra-narrowband character (the
// occupied bandwidth stays below 1 % of the capture).
package dbpsk

import (
	"fmt"
	"math"

	"repro/internal/bits"
	"repro/internal/dsp"
	"repro/internal/phy"
)

// Config parameterizes the PHY. Zero values take defaults via New.
type Config struct {
	BitRate float64 // symbol rate in bits/s (default 2000)
	// CenterOffset places the ultra-narrowband carrier within the capture
	// (default -300 kHz: its own sliver of the band, as UNB systems do).
	CenterOffset float64
	PreambleLen  int // preamble bytes of 0xAA (default 4, per Table 1)
	MaxPayload   int // bytes (default 12, SigFox-style short frames)
}

// Radio is a D-BPSK PHY instance, safe for concurrent use.
type Radio struct {
	cfg Config
}

// syncWord marks the end of the preamble (SigFox frame type marker style).
var syncWord = [2]byte{0xB2, 0x27}

// New validates cfg, fills defaults, and returns a Radio.
func New(cfg Config) (*Radio, error) {
	if cfg.BitRate == 0 {
		cfg.BitRate = 2000
	}
	if cfg.CenterOffset == 0 {
		cfg.CenterOffset = -300e3
	}
	if cfg.PreambleLen == 0 {
		cfg.PreambleLen = 4
	}
	if cfg.MaxPayload == 0 {
		cfg.MaxPayload = 12
	}
	if cfg.BitRate <= 0 {
		return nil, fmt.Errorf("dbpsk: bit rate must be positive")
	}
	if cfg.PreambleLen < 2 {
		return nil, fmt.Errorf("dbpsk: preamble length %d too short", cfg.PreambleLen)
	}
	if cfg.MaxPayload < 1 || cfg.MaxPayload > 64 {
		return nil, fmt.Errorf("dbpsk: max payload %d out of range 1..64", cfg.MaxPayload)
	}
	return &Radio{cfg: cfg}, nil
}

// Default returns the SigFox-class profile used in the reproduction.
func Default() *Radio {
	r, err := New(Config{})
	if err != nil {
		panic(err)
	}
	return r
}

// Name implements phy.Technology.
func (r *Radio) Name() string { return "dbpsk" }

// Class implements phy.Technology.
func (r *Radio) Class() phy.Class { return phy.ClassPSK }

// Config returns the active configuration.
func (r *Radio) Config() Config { return r.cfg }

// OccupiedBandwidth implements phy.NarrowbandTechnology: the main lobe of
// rectangular BPSK spans ±bitRate around the carrier.
func (r *Radio) OccupiedBandwidth() float64 { return 2 * r.cfg.BitRate }

// Center implements phy.NarrowbandTechnology.
func (r *Radio) Center() float64 { return r.cfg.CenterOffset }

// Info implements phy.Technology.
func (r *Radio) Info() phy.Info {
	return phy.Info{
		Name:       "dbpsk",
		Modulation: "D-BPSK",
		Sync:       "4 bytes",
		Preamble:   "unknown",
		MaxPayload: r.cfg.MaxPayload,
	}
}

// BitRate implements phy.Technology.
func (r *Radio) BitRate() float64 { return r.cfg.BitRate }

// sps returns samples per symbol.
func (r *Radio) sps(fs float64) int {
	return int(math.Round(fs / r.cfg.BitRate))
}

// headerBits returns the frame prefix bits (preamble + sync word).
func (r *Radio) headerBits() []byte {
	hdr := make([]byte, 0, r.cfg.PreambleLen+2)
	for i := 0; i < r.cfg.PreambleLen; i++ {
		hdr = append(hdr, 0xAA)
	}
	hdr = append(hdr, syncWord[0], syncWord[1])
	return bits.Unpack(hdr)
}

// modulateBits renders a differentially encoded bit stream at baseband and
// shifts it to the configured center offset.
func (r *Radio) modulateBits(stream []byte, fs float64) ([]complex128, error) {
	sps := r.sps(fs)
	if sps < 4 {
		return nil, fmt.Errorf("dbpsk: sample rate %g too low for %g bits/s", fs, r.cfg.BitRate)
	}
	out := make([]complex128, len(stream)*sps)
	phase := 1.0 // differential state: +1 or -1
	// Smooth the phase flips over an eighth of a symbol to contain
	// spectral splatter, as a real UNB transmitter's pulse shaping does.
	ramp := sps / 8
	if ramp < 1 {
		ramp = 1
	}
	idx := 0
	for _, b := range stream {
		next := phase
		flip := b != 0
		if flip {
			next = -phase
		}
		for i := 0; i < sps; i++ {
			v := next
			if i < ramp && flip {
				// linear crossfade from previous to new phase state
				t := float64(i) / float64(ramp)
				v = phase*(1-t) + next*t
			}
			out[idx] = complex(v, 0)
			idx++
		}
		phase = next
	}
	if r.cfg.CenterOffset != 0 {
		dsp.Mix(out, r.cfg.CenterOffset, 0, fs)
	}
	dsp.Normalize(out)
	return out, nil
}

// Preamble implements phy.Technology.
func (r *Radio) Preamble(fs float64) []complex128 {
	w, err := r.modulateBits(r.headerBits(), fs)
	if err != nil {
		panic(err)
	}
	return w
}

// Modulate implements phy.Technology.
func (r *Radio) Modulate(payload []byte, fs float64) ([]complex128, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("dbpsk: empty payload")
	}
	if len(payload) > r.cfg.MaxPayload {
		return nil, fmt.Errorf("dbpsk: payload %d exceeds max %d", len(payload), r.cfg.MaxPayload)
	}
	crc := bits.CRC16CCITT(payload)
	frame := append([]byte{byte(len(payload))}, payload...)
	frame = append(frame, byte(crc>>8), byte(crc))
	stream := append(r.headerBits(), bits.Unpack(frame)...)
	return r.modulateBits(stream, fs)
}

// MaxPacketSamples implements phy.Technology.
func (r *Radio) MaxPacketSamples(fs float64) int {
	nBits := len(r.headerBits()) + 8*(1+r.cfg.MaxPayload+2)
	return nBits * r.sps(fs)
}

// Demodulate implements phy.Technology.
func (r *Radio) Demodulate(rx []complex128, fs float64) (*phy.Frame, error) {
	sps := r.sps(fs)
	if sps < 4 {
		return nil, fmt.Errorf("dbpsk: sample rate %g too low", fs)
	}
	pre := r.Preamble(fs)
	if len(rx) < len(pre)+8*3*sps {
		return nil, fmt.Errorf("%w: dbpsk window too short", phy.ErrNoFrame)
	}
	// Work at baseband: downshift and low-pass to the occupied band.
	base := dsp.Clone(rx)
	if r.cfg.CenterOffset != 0 {
		dsp.Mix(base, -r.cfg.CenterOffset, 0, fs)
	}
	lp := dsp.LowPass(1.5*r.cfg.BitRate, fs, 129)
	base = lp.ApplyComplex(base)

	basePre := dsp.Clone(pre)
	if r.cfg.CenterOffset != 0 {
		dsp.Mix(basePre, -r.cfg.CenterOffset, 0, fs)
	}
	metric := dsp.NormalizedCorrelate(base, basePre)
	pk := dsp.MaxPeak(metric)
	if pk.Index < 0 || pk.Value < 0.25 {
		return nil, fmt.Errorf("%w: dbpsk preamble not found (peak %.3f)", phy.ErrNoFrame, pk.Value)
	}
	start := pk.Index

	// Differential symbol decisions: integrate each symbol, compare the
	// phase with the previous symbol's integral.
	symbolAt := func(k int) complex128 {
		from := start + k*sps
		to := from + sps
		if from >= len(base) {
			return 0
		}
		if to > len(base) {
			to = len(base)
		}
		// central 60 % avoids the phase-transition ramps
		span := to - from
		lo := from + span/5
		hi := to - span/5
		var acc complex128
		for i := lo; i < hi && i < len(base); i++ {
			acc += base[i]
		}
		return acc
	}
	demodBits := func(firstSym, n int) []byte {
		out := make([]byte, n)
		prev := symbolAt(firstSym - 1)
		for i := 0; i < n; i++ {
			cur := symbolAt(firstSym + i)
			d := cur * complex(real(prev), -imag(prev))
			if real(d) < 0 {
				out[i] = 1
			}
			prev = cur
		}
		return out
	}
	hdrBits := len(r.headerBits())
	lenBits := demodBits(hdrBits, 8)
	length := int(bits.Pack(lenBits)[0])
	if length == 0 || length > r.cfg.MaxPayload {
		return nil, fmt.Errorf("%w: dbpsk length %d invalid", phy.ErrNoFrame, length)
	}
	bodyBits := 8 * (length + 2)
	if (hdrBits+8+bodyBits)*sps+start > len(base)+sps {
		return nil, fmt.Errorf("%w: dbpsk window truncated", phy.ErrNoFrame)
	}
	raw := demodBits(hdrBits+8, bodyBits)
	body := bits.Pack(raw)
	payload := body[:length]
	gotCRC := uint16(body[length])<<8 | uint16(body[length+1])
	crcOK := gotCRC == bits.CRC16CCITT(payload)

	frame := &phy.Frame{
		Tech:    "dbpsk",
		Payload: append([]byte{}, payload...),
		CRCOK:   crcOK,
		Bits:    length * 8,
		Offset:  start,
	}
	if crcOK {
		if ref, err := r.Modulate(payload, fs); err == nil {
			end := start + len(ref)
			if end > len(rx) {
				end = len(rx)
			}
			seg := rx[start:end]
			refSeg := ref[:len(seg)]
			var proj complex128
			for i := range seg {
				proj += seg[i] * complex(real(refSeg[i]), -imag(refSeg[i]))
			}
			if e := dsp.Energy(refSeg); e > 0 {
				frame.Gain = proj / complex(e, 0)
			}
			frame.SNRdB = dsp.DB(dsp.EstimateSNR(seg, refSeg))
		}
	}
	return frame, nil
}

var _ phy.NarrowbandTechnology = (*Radio)(nil)
