package dbpsk

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
	"repro/internal/phy"
	"repro/internal/rng"
)

const fs = 1e6

func TestDefaults(t *testing.T) {
	r := Default()
	c := r.Config()
	if c.BitRate != 2000 || c.CenterOffset != -300e3 || c.PreambleLen != 4 || c.MaxPayload != 12 {
		t.Fatalf("defaults %+v", c)
	}
	if r.Name() != "dbpsk" || r.Class() != phy.ClassPSK {
		t.Fatal("identity")
	}
	if r.OccupiedBandwidth() != 4000 || r.Center() != -300e3 {
		t.Fatal("narrowband params")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{BitRate: -1}); err == nil {
		t.Fatal("negative rate")
	}
	if _, err := New(Config{PreambleLen: 1}); err == nil {
		t.Fatal("short preamble")
	}
	if _, err := New(Config{MaxPayload: 99}); err == nil {
		t.Fatal("oversized payload")
	}
	r := Default()
	if _, err := r.Modulate(nil, fs); err == nil {
		t.Fatal("empty payload")
	}
	if _, err := r.Modulate(make([]byte, 13), fs); err == nil {
		t.Fatal("payload over max")
	}
}

func TestSpectrumIsNarrowband(t *testing.T) {
	r := Default()
	sig, err := r.Modulate([]byte{1, 2, 3, 4}, fs)
	if err != nil {
		t.Fatal(err)
	}
	spec := dsp.AbsSq(dsp.FFT(dsp.PadTo(sig, dsp.NextPow2(len(sig)))))
	n := len(spec)
	inBand, total := 0.0, 0.0
	for i, p := range spec {
		total += p
		f := dsp.BinToFreq(i, n, fs)
		if math.Abs(f-(-300e3)) <= 4000 {
			inBand += p
		}
	}
	if inBand/total < 0.95 {
		t.Fatalf("only %.1f%% of energy within the occupied band", 100*inBand/total)
	}
}

func TestRoundTripClean(t *testing.T) {
	r := Default()
	payload := []byte("sigfoxish")
	sig, err := r.Modulate(payload, fs)
	if err != nil {
		t.Fatal(err)
	}
	rx := make([]complex128, len(sig)+10000)
	dsp.Add(rx, sig, 4000)
	frame, err := r.Demodulate(rx, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
		t.Fatalf("payload %q crc %v", frame.Payload, frame.CRCOK)
	}
	if frame.Offset < 3990 || frame.Offset > 4010 {
		t.Fatalf("offset %d", frame.Offset)
	}
}

func TestRoundTripNoise(t *testing.T) {
	// Ultra-narrowband has enormous processing gain relative to the 1 MHz
	// capture: the matched band is 4 kHz wide, so -10 dB wideband SNR is
	// ~14 dB in-band.
	r := Default()
	gen := rng.New(5)
	payload := []byte{9, 8, 7}
	sig, _ := r.Modulate(payload, fs)
	for _, snr := range []float64{0, -10} {
		rx := make([]complex128, len(sig)+8000)
		for i := range rx {
			rx[i] = gen.Complex()
		}
		s := dsp.Scale(dsp.Clone(sig), math.Sqrt(dsp.FromDB(snr)))
		dsp.Add(rx, s, 3000)
		frame, err := r.Demodulate(rx, fs)
		if err != nil {
			t.Fatalf("snr %v: %v", snr, err)
		}
		if !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
			t.Fatalf("snr %v: payload %x", snr, frame.Payload)
		}
	}
}

func TestRoundTripPhaseRotation(t *testing.T) {
	// Differential encoding must survive an arbitrary carrier phase.
	r := Default()
	payload := []byte{0xAB, 0xCD}
	sig, _ := r.Modulate(payload, fs)
	rot := dsp.ScaleComplex(dsp.Clone(sig), complex(math.Cos(2.2), math.Sin(2.2)))
	rx := make([]complex128, len(sig)+6000)
	dsp.Add(rx, rot, 2500)
	frame, err := r.Demodulate(rx, fs)
	if err != nil || !frame.CRCOK || !bytes.Equal(frame.Payload, payload) {
		t.Fatalf("rotated decode: %v %+v", err, frame)
	}
}

func TestRoundTripRandom(t *testing.T) {
	r := Default()
	gen := rng.New(6)
	f := func(lenRaw uint8) bool {
		n := int(lenRaw%12) + 1
		payload := make([]byte, n)
		gen.Bytes(payload)
		sig, err := r.Modulate(payload, fs)
		if err != nil {
			return false
		}
		rx := make([]complex128, len(sig)+4000)
		dsp.Add(rx, sig, 1500)
		frame, err := r.Demodulate(rx, fs)
		if err != nil {
			return false
		}
		return frame.CRCOK && bytes.Equal(frame.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestShortWindow(t *testing.T) {
	r := Default()
	if _, err := r.Demodulate(make([]complex128, 100), fs); !errors.Is(err, phy.ErrNoFrame) {
		t.Fatalf("want ErrNoFrame, got %v", err)
	}
}

func TestMaxPacketSamplesCovers(t *testing.T) {
	r := Default()
	sig, err := r.Modulate(make([]byte, 12), fs)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxPacketSamples(fs) < len(sig) {
		t.Fatalf("MaxPacketSamples %d < %d", r.MaxPacketSamples(fs), len(sig))
	}
}

func BenchmarkDemodulate(b *testing.B) {
	r := Default()
	sig, _ := r.Modulate([]byte{1, 2, 3, 4}, fs)
	rx := make([]complex128, len(sig)+2000)
	dsp.Add(rx, sig, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Demodulate(rx, fs); err != nil {
			b.Fatal(err)
		}
	}
}
