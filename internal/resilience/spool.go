package resilience

import (
	"sync"

	"repro/internal/backhaul"
	"repro/internal/obs"
)

// Item is one admitted segment waiting to be shipped, carried with the
// trace span that has followed it since detection so the drop/ship outcome
// lands on the same timeline as its detect and edge_decode stages.
type Item struct {
	Seg  backhaul.Segment
	Span *obs.Span
	// WAL is the item's write-ahead-log record id when it was journaled by
	// a DurableSpool (0 = not journaled). Whoever finally handles the item
	// — cloud ack, busy reject, degraded decode — acks this id so the
	// record is not replayed after a restart.
	WAL uint64
	// Recovered marks an item restored from the WAL on restart. Its
	// original detect-time span died with the previous process, so the
	// sender opens a fresh wal_replay span on the segment's original trace
	// (the trace ID rides inside Seg) when it ships.
	Recovered bool
}

// Spool is a bounded drop-oldest FIFO between the detection pipeline and
// the backhaul sender. The producer (the capture feeder) calls Put, which
// never blocks: when the spool is full the oldest queued item is evicted
// and handed back so the caller can route it through the degraded
// edge-only path and count the drop. The consumer receives from C(),
// which lets the sender select over the spool, acks, and session errors
// with the usual nil-channel gating.
//
// Single consumer; any number of producers. Put and Close may race freely:
// both serialize on mu, so a Put that loses the race against Close can
// never hit the closed channel — it reports the item back as dropped, and
// the caller routes it through the degraded path where the drop is
// counted, exactly as an eviction would be. The mu guard also keeps an
// eviction (receive under Put) and the consumer's own receive from C()
// from both claiming the same item without the compensating re-send being
// observed in order.
type Spool struct {
	mu     sync.Mutex
	ch     chan Item
	closed bool
}

// NewSpool builds a spool holding at most capacity items (minimum 1).
func NewSpool(capacity int) *Spool {
	if capacity < 1 {
		capacity = 1
	}
	return &Spool{ch: make(chan Item, capacity)}
}

// Put enqueues it, evicting the oldest queued item when full. The evicted
// item is returned with dropped=true so the caller can fall back to edge
// decode and bump the drop counters. Put on a closed spool reports the
// item itself as dropped.
func (s *Spool) Put(it Item) (evicted Item, dropped bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return it, true
	}
	for {
		select {
		case s.ch <- it:
			return evicted, dropped
		default:
		}
		// Full: evict the oldest. The consumer may win the race for it,
		// in which case the buffer has drained and the retry send wins.
		select {
		case old := <-s.ch:
			evicted, dropped = old, true
		default:
		}
	}
}

// C returns the receive side of the spool. It is closed by Close after the
// producer has finished, so the consumer can range/drain it.
func (s *Spool) C() <-chan Item { return s.ch }

// Len reports how many items are currently queued.
func (s *Spool) Len() int { return len(s.ch) }

// Cap reports the spool capacity.
func (s *Spool) Cap() int { return cap(s.ch) }

// Close marks the spool finished and closes C. Items already queued remain
// receivable. Safe to call once; the producer must not Put afterwards
// (such Puts report dropped).
func (s *Spool) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.ch)
}
