package resilience

import (
	"errors"

	"repro/internal/resilience/wal"
)

// ErrKilled is the sentinel a Dial function returns to simulate SIGKILL in
// crash-recovery tests: the resilient client must abandon all process
// state in place — no degraded drain, no WAL sync or compaction — exactly
// as a killed process would, so a subsequent restart exercises the real
// recovery path.
var ErrKilled = errors.New("resilience: killed")

// DurableSpool is a Spool whose admissions survive a process crash: every
// Put journals the segment to a write-ahead log before it is spooled, and
// the consumer acks the log record once the segment is finally handled. A
// restarted process replays the log's unacked entries (wal.Open returns
// them) ahead of fresh traffic.
//
// The WAL is an at-least-once device: a crash between a cloud ack and the
// ack record reaching disk means the segment replays after restart, and
// the cloud's dedup (or a fresh epoch) absorbs the duplicate. Append
// failures are absorbed too — the segment still ships from memory, it just
// loses its crash insurance, and the wal_append_errors_total counter says
// so.
type DurableSpool struct {
	*Spool
	log *wal.Log
}

// NewDurableSpool wraps a fresh spool of the given capacity around the
// log. The log must be non-nil; callers that want a plain in-memory spool
// use NewSpool.
func NewDurableSpool(capacity int, log *wal.Log) *DurableSpool {
	return &DurableSpool{Spool: NewSpool(capacity), log: log}
}

// Put journals the item's segment and then spools it. The returned
// eviction contract is Spool.Put's; an evicted (or closed-spool-dropped)
// item still carries its WAL id, so the caller's degraded path acks it.
// Items that already carry a WAL id (recovered entries being requeued) are
// not journaled again.
func (d *DurableSpool) Put(it Item) (evicted Item, dropped bool) {
	if it.WAL == 0 {
		if id, err := d.log.Append(it.Seg); err == nil {
			it.WAL = id
		}
	}
	return d.Spool.Put(it)
}

// Ack records that the item has been finally handled (shipped and
// acknowledged, busy-rejected, or drained through the degraded path).
// Items without a WAL id are ignored.
func (d *DurableSpool) Ack(it Item) {
	if it.WAL != 0 {
		d.log.Ack(it.WAL)
	}
}

// Log exposes the underlying write-ahead log (health checks, Close,
// Abandon).
func (d *DurableSpool) Log() *wal.Log { return d.log }
